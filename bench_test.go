// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §3 maps each to its source). Run with:
//
//	go test -bench . -benchtime 1x
//
// Scale with HARPO_SCALE (default 1). Each benchmark prints the
// rows/series the paper reports on its first iteration and exports the
// headline numbers as benchmark metrics.
package harpocrates_test

import (
	"os"
	"sync"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/experiments"
)

var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

func BenchmarkFig1DPPM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries := experiments.Fig1DPPM()
		if len(entries) != 3 {
			b.Fatal("bad Fig. 1 data")
		}
	}
	once("fig1", func() { experiments.FprintFig1(os.Stdout) })
}

func benchBaselineFigure(b *testing.B, name string, fig func(experiments.Params) ([]experiments.Measurement, error)) {
	pp := experiments.DefaultParams()
	var ms []experiments.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		ms, err = fig(pp)
		if err != nil {
			b.Fatal(err)
		}
	}
	once(name, func() {
		experiments.FprintMeasurements(os.Stdout, name+" — coverage and detection per baseline program", ms)
		experiments.FprintSummaries(os.Stdout, name+" — per-framework aggregates", experiments.Summarize(ms))
	})
}

func BenchmarkFig4Baselines(b *testing.B) {
	benchBaselineFigure(b, "Fig. 4 (IRF, L1D)", experiments.Fig4)
}

func BenchmarkFig5Baselines(b *testing.B) {
	benchBaselineFigure(b, "Fig. 5 (IntAdder, IntMul)", experiments.Fig5)
}

func BenchmarkFig6Baselines(b *testing.B) {
	benchBaselineFigure(b, "Fig. 6 (FPAdd, FPMul)", experiments.Fig6)
}

func BenchmarkFig8Scenario(b *testing.B) {
	pp := experiments.DefaultParams()
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8Scenario(pp)
	}
	b.ReportMetric(100*r.ByteInvalidFrac, "%bytes-unusable")
	once("fig8", func() { experiments.FprintFig8(os.Stdout, r) })
}

func BenchmarkFig10Convergence(b *testing.B) {
	pp := experiments.DefaultParams()
	for _, st := range experiments.AllStructures() {
		st := st
		b.Run(st.String(), func(b *testing.B) {
			var c *experiments.Convergence
			var err error
			for i := 0; i < b.N; i++ {
				c, err = experiments.Fig10(st, pp)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*c.FinalCoverage, "%coverage")
			b.ReportMetric(100*c.FinalDetection, "%detection")
			once("fig10-"+st.String(), func() { experiments.FprintConvergence(os.Stdout, c) })
		})
	}
}

func BenchmarkFig11Detection(b *testing.B) {
	pp := experiments.DefaultParams()
	var ss []experiments.Summary
	var err error
	for i := 0; i < b.N; i++ {
		ss, _, err = experiments.Fig11(pp)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range ss {
		if s.Framework == experiments.FwHarpocrates && s.Structure == coverage.IntMul {
			b.ReportMetric(100*s.MaxDet, "%harpo-intmul-det")
		}
	}
	once("fig11", func() { experiments.FprintFig11(os.Stdout, ss) })
}

func BenchmarkTable1StepBreakdown(b *testing.B) {
	pp := experiments.DefaultParams()
	var s experiments.StepBreakdown
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.Table1(pp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.InstrsPerSecond(), "instrs/s")
	once("table1", func() { experiments.FprintTable1(os.Stdout, s) })
}

func BenchmarkGenRate(b *testing.B) {
	pp := experiments.DefaultParams()
	var r *experiments.RateComparison
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.GenRate(pp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Ratio, "x-vs-silifuzz")
	once("rate", func() { experiments.FprintGenRate(os.Stdout, r) })
}

func BenchmarkSFICampaignSpeed(b *testing.B) {
	pp := experiments.DefaultParams()
	var r *experiments.CampaignSpeedResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.CampaignSpeed(pp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SpeedupX, "x-speedup")
	once("sfispeed", func() { experiments.FprintCampaignSpeed(os.Stdout, r) })
}

func BenchmarkDetectionSpeed(b *testing.B) {
	pp := experiments.DefaultParams()
	var r *experiments.SpeedResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.DetectionSpeed(pp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SpeedupX, "x-faster")
	once("speed", func() { experiments.FprintSpeed(os.Stdout, r) })
}
