# Shared jq gates for the CI smoke jobs. Source this file, then call
# the gate functions; every gate exits non-zero on violation so a bare
# call fails the step.
#
#   source ci/gates.sh
#   bench_schema bench.json
#   speedup_gate bench.json core.run.miss-chain.skip speedup_vs_naive 2

set -euo pipefail

# bench_schema FILE — FILE is a non-empty BENCH_*.json array and every
# row carries the BenchResult core fields.
bench_schema() {
  jq -e 'type == "array" and length > 0 and
         all(.[]; (.name | type) == "string" and
                  (.iterations | type) == "number" and
                  (.ns_per_op | type) == "number")' "$1" > /dev/null
}

# speedup_gate FILE ROW FIELD MIN — exactly one row named ROW exists in
# FILE and its FIELD is at least MIN.
speedup_gate() {
  jq -e --arg name "$2" --arg field "$3" --argjson min "$4" \
     '[.[] | select(.name == $name) | .[$field] >= $min]
      | all and length == 1' "$1" > /dev/null
}

# campaign_consistency FILE — a faultsim/harpocrates one-line campaign
# summary's outcome counters are self-consistent: the five outcome
# classes partition the injections, and detected is their non-masked
# sum.
campaign_consistency() {
  jq -e '.masked + .sdc + .crash + .hang + .trap == .n' "$1" > /dev/null
  jq -e '.detected == .sdc + .crash + .hang + .trap' "$1" > /dev/null
}
