module harpocrates

go 1.24
