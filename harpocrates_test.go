package harpocrates_test

import (
	"testing"

	"harpocrates"
)

func TestPublicAPIQuickSession(t *testing.T) {
	// The README quickstart, as a test.
	cfg := harpocrates.DefaultGenConfig()
	cfg.NumInstrs = 200
	p := harpocrates.Generate(&cfg, 42)
	if len(p.Insts) != 200 {
		t.Fatalf("generated %d instructions", len(p.Insts))
	}
	res := harpocrates.Simulate(p, harpocrates.IntAdder)
	if !res.Clean() {
		t.Fatalf("generated program failed: %v", res.Crash)
	}
	if res.IBR[harpocrates.IntAdder] <= 0 {
		t.Fatal("no adder coverage")
	}
	st, err := harpocrates.MeasureDetection(p, harpocrates.IntAdder, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 8 {
		t.Fatalf("campaign N = %d", st.N)
	}
}

func TestPublicAPIEvolve(t *testing.T) {
	o := harpocrates.Preset(harpocrates.IntMul, 1)
	o.Gen.NumInstrs = 150
	o.PopSize, o.TopK, o.MutantsPerParent = 8, 2, 3
	o.Iterations = 5
	o.Seed = 9
	res, err := harpocrates.Evolve(o)
	if err != nil {
		t.Fatal(err)
	}
	best := harpocrates.BestProgram(res, &o)
	if len(best.Insts) != 150 {
		t.Fatal("best program has wrong size")
	}
	sim := harpocrates.Simulate(best, harpocrates.IntMul)
	if sim.Value(harpocrates.IntMul) != res.Best.Fitness {
		t.Fatalf("re-simulated fitness %f != recorded %f",
			sim.Value(harpocrates.IntMul), res.Best.Fitness)
	}
}

func TestPresetsCoverAllStructures(t *testing.T) {
	for _, st := range []harpocrates.Structure{
		harpocrates.IRF, harpocrates.L1D, harpocrates.IntAdder,
		harpocrates.IntMul, harpocrates.FPAdd, harpocrates.FPMul,
	} {
		o := harpocrates.Preset(st, 1)
		if o.Gen.NumInstrs == 0 || o.Iterations == 0 {
			t.Fatalf("empty preset for %v", st)
		}
	}
}
