package harpocrates_test

import (
	"fmt"

	"harpocrates"
)

// ExampleGenerate shows constrained-random program generation: every
// program is valid, deterministic and non-crashing by construction.
func ExampleGenerate() {
	cfg := harpocrates.DefaultGenConfig()
	cfg.NumInstrs = 500
	p := harpocrates.Generate(&cfg, 1)
	fmt.Println(len(p.Insts), "instructions")
	_, _, err := p.GoldenRun(10 * cfg.NumInstrs)
	fmt.Println("crashed:", err != nil)
	// Output:
	// 500 instructions
	// crashed: false
}

// ExampleSimulate grades a program on the out-of-order core model with
// structure-specific coverage tracking.
func ExampleSimulate() {
	cfg := harpocrates.DefaultGenConfig()
	cfg.NumInstrs = 500
	p := harpocrates.Generate(&cfg, 2)
	res := harpocrates.Simulate(p, harpocrates.IntAdder)
	fmt.Println("clean:", res.Clean())
	fmt.Println("adder exercised:", res.UnitUses[harpocrates.IntAdder] > 0)
	fmt.Println("coverage in range:", res.Value(harpocrates.IntAdder) > 0 && res.Value(harpocrates.IntAdder) < 1)
	// Output:
	// clean: true
	// adder exercised: true
	// coverage in range: true
}

// ExampleEvolve runs a miniature Harpocrates loop and verifies the
// coverage of the best program never regresses (elitism).
func ExampleEvolve() {
	o := harpocrates.Preset(harpocrates.IntAdder, 1)
	o.Gen.NumInstrs = 200
	o.PopSize, o.TopK, o.MutantsPerParent = 8, 2, 3
	o.Iterations = 5
	o.Seed = 3
	res, err := harpocrates.Evolve(o)
	if err != nil {
		panic(err)
	}
	h := res.History.Best
	fmt.Println("iterations:", len(h))
	fmt.Println("monotone:", h[len(h)-1] >= h[0])
	// Output:
	// iterations: 5
	// monotone: true
}

// ExampleMeasureDetection runs a small gate-level stuck-at campaign.
func ExampleMeasureDetection() {
	cfg := harpocrates.DefaultGenConfig()
	cfg.NumInstrs = 300
	p := harpocrates.Generate(&cfg, 4)
	st, err := harpocrates.MeasureDetection(p, harpocrates.IntAdder, 10, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println("injections:", st.N)
	fmt.Println("accounted:", st.Masked+st.Detected() == st.N)
	// Output:
	// injections: 10
	// accounted: true
}
