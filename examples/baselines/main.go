// Baselines evaluates the three public-framework stand-ins the paper
// compares against (§III): the MiBench kernels, an OpenDCDiag-style test
// suite, and SiliFuzz-style fuzzed tests — measuring hardware coverage
// and fault detection for a chosen structure, like Figs. 4-6.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"

	"harpocrates"
	"harpocrates/internal/baselines/dcdiag"
	"harpocrates/internal/baselines/mibench"
	"harpocrates/internal/baselines/silifuzz"
	"harpocrates/internal/prog"
)

func main() {
	st := harpocrates.IntAdder
	fmt.Printf("coverage and detection for the %v (permanent gate faults)\n\n", st)

	sf := silifuzz.Run(silifuzz.Options{
		Seed: 5, Rounds: 3000, MaxInputBytes: 100,
		TargetInstrs: 1000, NumTests: 2, SnapshotSteps: 512,
	})
	fmt.Printf("silifuzz session: %d raw inputs, %d runnable (%.0f%% discarded), %d tests\n\n",
		sf.Stats.RawInputs, sf.Stats.Runnable,
		100*float64(sf.Stats.Discarded)/float64(sf.Stats.RawInputs), len(sf.Tests))

	suites := map[string][]*prog.Program{
		"MiBench":    mibench.Programs(1),
		"OpenDCDiag": dcdiag.Programs(1),
		"SiliFuzz":   sf.Tests,
	}
	for fw, ps := range suites {
		fmt.Printf("%s:\n", fw)
		for _, p := range ps {
			sim := harpocrates.Simulate(p, st)
			if !sim.Clean() {
				log.Fatalf("%s failed: %v", p.Name, sim.Crash)
			}
			det, err := harpocrates.MeasureDetection(p, st, 12, 9)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-26s coverage %5.1f%%  detection %5.1f%%  (%d cycles)\n",
				p.Name, 100*sim.Value(st), 100*det.Detection(), sim.Cycles)
		}
	}
}
