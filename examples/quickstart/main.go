// Quickstart: generate a constrained-random functional test program,
// grade it on the microarchitectural model, evolve it with the
// Harpocrates loop, and measure its fault detection capability.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"harpocrates"
)

func main() {
	// 1. Generate one valid, deterministic random test program.
	cfg := harpocrates.DefaultGenConfig()
	cfg.NumInstrs = 1000
	p := harpocrates.Generate(&cfg, 42)
	fmt.Printf("generated %d-instruction program; first instructions:\n", len(p.Insts))
	for i := 0; i < 5; i++ {
		fmt.Printf("  %v\n", p.Insts[i])
	}

	// 2. Grade it: simulate on the out-of-order core with coverage
	//    tracking for the integer multiplier.
	sim := harpocrates.Simulate(p, harpocrates.IntMul)
	fmt.Printf("\nsimulated: %d instructions in %d cycles (IPC %.2f)\n",
		sim.Instructions, sim.Cycles, float64(sim.Instructions)/float64(sim.Cycles))
	fmt.Printf("multiplier coverage (IBR): %.2f%% over %d multiply operations\n",
		100*sim.Value(harpocrates.IntMul), sim.UnitUses[harpocrates.IntMul])

	// 3. Evolve: run a short Harpocrates refinement loop for the
	//    multiplier.
	o := harpocrates.Preset(harpocrates.IntMul, 1)
	o.Gen.NumInstrs = 1000
	o.Iterations = 12
	o.Seed = 42
	res, err := harpocrates.Evolve(o)
	if err != nil {
		log.Fatal(err)
	}
	best := harpocrates.BestProgram(res, &o)
	fmt.Printf("\nafter %d loop iterations: coverage %.2f%% -> %.2f%%\n",
		res.Iterations, 100*res.History.Best[0], 100*res.Best.Fitness)

	// 4. Measure: statistical fault injection with permanent gate-level
	//    stuck-at faults in the multiplier array.
	before, err := harpocrates.MeasureDetection(p, harpocrates.IntMul, 24, 7)
	if err != nil {
		log.Fatal(err)
	}
	after, err := harpocrates.MeasureDetection(best, harpocrates.IntMul, 24, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault detection capability (24 injected gate faults):\n")
	fmt.Printf("  random program:  %v\n", before)
	fmt.Printf("  evolved program: %v\n", after)
}
