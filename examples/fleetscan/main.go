// Fleetscan demonstrates the two fleet-screening deployment modes of
// §IV-B (after Meta's Ripple and Fleetscanner):
//
//   - Ripple: in-production periodic scans need *short* programs — the
//     loop is constrained to a small instruction budget and maximizes
//     detection under it;
//
//   - Fleetscanner: out-of-production scans run until a (very high)
//     detection target is reached, without an execution-time constraint.
//
//     go run ./examples/fleetscan
package main

import (
	"fmt"
	"log"

	"harpocrates"
)

func main() {
	structures := []harpocrates.Structure{
		harpocrates.IntAdder, harpocrates.IntMul,
	}

	fmt.Println("=== Ripple mode: 400-instruction budget per structure ===")
	for _, st := range structures {
		o := harpocrates.Preset(st, 1)
		o.Gen.NumInstrs = 400 // the duration constraint
		o.Iterations = 10
		o.Seed = 3
		res, err := harpocrates.Evolve(o)
		if err != nil {
			log.Fatal(err)
		}
		best := harpocrates.BestProgram(res, &o)
		sim := harpocrates.Simulate(best, st)
		det, err := harpocrates.MeasureDetection(best, st, 16, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9v %4d instructions, %6d cycles: %s\n",
			st, len(best.Insts), sim.Cycles, det)
	}

	fmt.Println("\n=== Fleetscanner mode: iterate until coverage converges ===")
	st := harpocrates.IntAdder
	o := harpocrates.Preset(st, 1)
	o.Iterations = 200
	o.ConvergeWindow = 8
	o.ConvergeEps = 0.0005 // stop when coverage stops improving
	o.Seed = 4
	res, err := harpocrates.Evolve(o)
	if err != nil {
		log.Fatal(err)
	}
	best := harpocrates.BestProgram(res, &o)
	det, err := harpocrates.MeasureDetection(best, st, 48, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v converged=%v after %d iterations, coverage %.2f%%\n",
		st, res.Converged, res.Iterations, 100*res.Best.Fitness)
	fmt.Printf("  final: %s\n", det)
}
