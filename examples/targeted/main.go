// Targeted shows the flexibility knobs of §IV-B: targeting the L1 data
// cache with cache-aware generation constraints, restricting the
// instruction pool, and optimizing a *custom* quality metric (a weighted
// blend of two structures' coverage — "any 'quality' metric can be used
// to guide the iterative refinement").
//
//	go run ./examples/targeted
package main

import (
	"fmt"
	"log"

	"harpocrates"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
)

func main() {
	// --- L1D with cache-aware constraints (the paper's §VI-B2 setup) ---
	o := harpocrates.Preset(harpocrates.L1D, 1)
	o.Gen.NumInstrs = 4000
	o.Iterations = 8
	o.Seed = 11
	res, err := harpocrates.Evolve(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L1D with cache-aware constraints: coverage %.1f%% -> %.1f%% in %d iterations\n",
		100*res.History.Best[0], 100*res.Best.Fitness, res.Iterations)
	fmt.Println("  (note the high starting point from the cache-sized strided region)")

	// --- custom pool: memory-free ALU-only programs -------------------
	alu := harpocrates.Preset(harpocrates.IntAdder, 1)
	alu.Gen.NumInstrs = 500
	alu.Gen.Allowed = gen.PoolFilter(func(v *isa.Variant) bool {
		return !v.HasMemOperand() && v.Unit == isa.UIntALU
	})
	alu.Iterations = 8
	alu.Seed = 12
	res2, err := harpocrates.Evolve(alu)
	if err != nil {
		log.Fatal(err)
	}
	best := harpocrates.BestProgram(res2, &alu)
	sim := harpocrates.Simulate(best, harpocrates.IntAdder)
	fmt.Printf("\nALU-only pool (%d variants): adder coverage %.1f%%, zero cache traffic: %d accesses\n",
		len(alu.Gen.Allowed), 100*res2.Best.Fitness, sim.CacheHits+sim.CacheMisses)

	// --- custom metric: blend FP adder and FP multiplier coverage -----
	both := harpocrates.Preset(harpocrates.FPAdd, 1)
	both.Gen.NumInstrs = 500
	both.Iterations = 10
	both.Seed = 13
	both.Metric = harpocrates.Metric{
		Name: "fp-add+mul-blend",
		Score: func(s *coverage.Snapshot) float64 {
			return 0.5*s.IBR[coverage.FPAdd] + 0.5*s.IBR[coverage.FPMul]
		},
	}
	res3, err := harpocrates.Evolve(both)
	if err != nil {
		log.Fatal(err)
	}
	snap := res3.Best.Snapshot
	fmt.Printf("\ncustom blended metric: score %.3f (FPAdd IBR %.1f%%, FPMul IBR %.1f%%)\n",
		res3.Best.Fitness, 100*snap.IBR[coverage.FPAdd], 100*snap.IBR[coverage.FPMul])
	fmt.Println("  one program now exercises both FP units simultaneously")
}
