// Ablation benchmarks for the design decisions called out in DESIGN.md
// §4. (The bit-parallel gate evaluation ablation lives next to its
// subject: internal/gates.BenchmarkGateEvalScalarVsParallel.)
package harpocrates_test

import (
	"math/rand/v2"
	"testing"
	"time"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/mutate"
	"harpocrates/internal/uarch"
)

// BenchmarkAblationMutationStrategy compares the paper's uniform
// instruction replacement (§V-B1) against point mutation and k-point
// crossover under identical budgets, reporting the final coverage each
// strategy reaches.
func BenchmarkAblationMutationStrategy(b *testing.B) {
	strategies := []struct {
		name string
		fn   func(*gen.Genotype, *gen.Config, *rand.Rand) *gen.Genotype
	}{
		{"replace-all", mutate.ReplaceAll},
		{"point", mutate.Point},
		{"crossover2", func(g *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
			other := gen.NewRandom(cfg, rng)
			return mutate.CrossoverK(g, other, 2, rng)
		}},
	}
	for _, s := range strategies {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				o := core.PresetFor(coverage.IntAdder, 1)
				o.Gen.NumInstrs = 300
				o.PopSize, o.TopK, o.MutantsPerParent = 12, 3, 4
				o.Iterations = 15
				o.Seed = 4242
				o.Mutate = s.fn
				res, err := core.Run(o)
				if err != nil {
					b.Fatal(err)
				}
				final = res.Best.Fitness
			}
			b.ReportMetric(100*final, "%final-coverage")
		})
	}
}

// BenchmarkAblationAceWidthMask measures the IRF ACE coverage of the
// same program with and without per-read width masks (DESIGN.md §4.3):
// ignoring widths inflates the metric and blunts the signal that rewards
// full-width register traffic.
func BenchmarkAblationAceWidthMask(b *testing.B) {
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 2000
	rng := rand.New(rand.NewPCG(77, 78))
	p := gen.Materialize(gen.NewRandom(&cfg, rng), &cfg)

	for _, mode := range []struct {
		name   string
		ignore bool
	}{{"width-masked", false}, {"ignore-widths", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var vuln float64
			for i := 0; i < b.N; i++ {
				ccfg := uarch.DefaultConfig()
				ccfg.TrackIRF = true
				ccfg.ACEIgnoreWidths = mode.ignore
				r := uarch.Run(p.Insts, p.NewState(), ccfg)
				if !r.Clean() {
					b.Fatal("program failed")
				}
				vuln = r.IRFVuln
			}
			b.ReportMetric(100*vuln, "%irf-coverage")
		})
	}
}

// BenchmarkAblationCheckpointedSFI measures the campaign-level effect of
// checkpointed fast-forward + ACE pre-classification (DESIGN.md §4.7):
// the same transient-IRF campaign is timed with the optimization off
// (every injection simulated from cycle 0) and on, asserting bit-
// identical statistics and reporting the wall-clock ratio.
func BenchmarkAblationCheckpointedSFI(b *testing.B) {
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 1200
	rng := rand.New(rand.NewPCG(55, 56))
	p := gen.Materialize(gen.NewRandom(&cfg, rng), &cfg)
	campaign := func(noFF bool) *inject.Campaign {
		return &inject.Campaign{
			Prog: p.Insts, Init: p.InitFunc(),
			Target: coverage.IRF, Type: inject.Transient,
			N: 96, Seed: 9, Cfg: uarch.DefaultConfig(),
			NoFastForward: noFF,
		}
	}
	var fromZeroNS, fastForwardNS int64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		slow, err := campaign(true).Run()
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		fast, err := campaign(false).Run()
		if err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		if !slow.Equal(fast) {
			b.Fatalf("fast-forward changed campaign statistics: %+v vs %+v", slow, fast)
		}
		fromZeroNS += t1.Sub(t0).Nanoseconds()
		fastForwardNS += t2.Sub(t1).Nanoseconds()
	}
	b.ReportMetric(float64(fromZeroNS)/float64(fastForwardNS), "x-speedup")
}

// BenchmarkAblationL1DConstraints quantifies the cache-aware generation
// constraints of the L1D preset (fixed-stride sequential references in a
// region intentionally sized to the 32 KB cache, memory-heavy
// selection): the initial random population starts at far higher L1D
// coverage than generation over an oversized region — the paper's ~77%
// starting-point phenomenon (§VI-B2).
func BenchmarkAblationL1DConstraints(b *testing.B) {
	mean := func(cfg gen.Config, seed uint64) float64 {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		total := 0.0
		n := 6
		for k := 0; k < n; k++ {
			p := gen.Materialize(gen.NewRandom(&cfg, rng), &cfg)
			ccfg := uarch.DefaultConfig()
			ccfg.TrackL1D = true
			r := uarch.Run(p.Insts, p.NewState(), ccfg)
			if !r.Clean() {
				b.Fatal("program failed")
			}
			total += r.L1DVuln
		}
		return total / float64(n)
	}
	b.Run("cache-aware", func(b *testing.B) {
		o := core.PresetFor(coverage.L1D, 1)
		var v float64
		for i := 0; i < b.N; i++ {
			v = mean(o.Gen, 91)
		}
		b.ReportMetric(100*v, "%initial-l1d-coverage")
	})
	b.Run("oversized-region", func(b *testing.B) {
		o := core.PresetFor(coverage.L1D, 1)
		cfg := o.Gen
		cfg.Weights = nil
		cfg.Mem.RegionBytes = 256 * 1024 // 8x the cache
		var v float64
		for i := 0; i < b.N; i++ {
			v = mean(cfg, 91)
		}
		b.ReportMetric(100*v, "%initial-l1d-coverage")
	})
}
