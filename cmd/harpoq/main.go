// Command harpoq is the Harpocrates campaign-as-a-service coordinator:
// a durable job queue that accepts fault-injection campaigns and GA
// evaluation batches over HTTP, shards them, serves every shard it can
// from a cluster-wide content-addressed result cache, and hands the
// rest to pulling harpod workers (work-stealing) or legacy push-mode
// workers.
//
// Usage:
//
//	harpoq -addr 0.0.0.0:9900 -data /var/lib/harpoq
//	harpoq -addr 0.0.0.0:9900 -data ./q -workers host1:9090,host2:9090
//	harpoq -addr 0.0.0.0:9900 -data ./q -local 4
//
// Every job and shard completion is persisted to an append-only
// CRC-checked write-ahead log under -data; kill -9 the coordinator
// mid-campaign, restart it, and the queue resumes exactly where it was
// (in-flight shards are re-queued; cached and logged shards are not
// re-run). On SIGINT/SIGTERM the coordinator drains outstanding
// leases, snapshots its state atomically and exits cleanly.
//
// GET /metrics serves the Prometheus text exposition of every queue,
// cache and simulator counter on the same listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harpocrates/internal/obs"
	"harpocrates/internal/queue"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9900", "address to listen on")
		dataDir      = flag.String("data", "harpoq-data", "durable state directory (WAL, snapshot, cache)")
		cacheDir     = flag.String("cache", "", "result cache directory (default <data>/cache)")
		cacheEntries = flag.Int("cache-entries", 0, "in-memory cache entries (0 = default)")
		shardSize    = flag.Int("shard-size", 32, "campaign specs per shard")
		evalShard    = flag.Int("eval-shard-size", 8, "genotypes per eval shard")
		leaseTimeout = flag.Duration("lease-timeout", 2*time.Minute, "re-queue a leased shard after this long")
		workers      = flag.String("workers", "", "comma-separated legacy push-mode harpod URLs")
		localExec    = flag.Int("local", 0, "in-process executor goroutines (work with no fleet)")
		compactWAL   = flag.Int64("compact-wal", 64<<20, "snapshot state and reset the WAL once it exceeds this many bytes (0 disables)")
		drain        = flag.Duration("drain", 30*time.Second, "shutdown lease-drain budget")
		tracePath    = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics      = flag.Bool("metrics", false, "print a metrics summary at exit")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address")
	)
	flag.Parse()

	ob, obFinish, err := obs.SetupCLI(*tracePath, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The coordinator always carries a registry: /metrics must work even
	// without -metrics.
	if ob.Registry() == nil {
		ob = obs.New(obs.NewRegistry(), ob.Tracer())
	}

	var workerURLs []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workerURLs = append(workerURLs, w)
		}
	}
	if *compactWAL <= 0 {
		*compactWAL = -1 // flag 0 means "off", Options 0 means "default"
	}
	coord, err := queue.NewCoordinator(queue.Options{
		DataDir:         *dataDir,
		CacheDir:        *cacheDir,
		CacheEntries:    *cacheEntries,
		ShardSize:       *shardSize,
		EvalShardSize:   *evalShard,
		LeaseTimeout:    *leaseTimeout,
		PushWorkers:     workerURLs,
		LocalExec:       *localExec,
		CompactWALBytes: *compactWAL,
		Obs:             ob,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           queue.NewServer(coord).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("harpoq coordinator listening on http://%s (data: %s)\n", ln.Addr(), *dataDir)

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	exitCode := 0
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "harpoq: %v, draining\n", s)
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 1
		}
	}

	// Graceful shutdown: stop accepting HTTP, drain outstanding leases,
	// snapshot and flush the durable state.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	if err := coord.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "harpoq: shutdown:", err)
		exitCode = 1
	}
	cancel()
	if err := obFinish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exitCode = 1
	}
	os.Exit(exitCode)
}
