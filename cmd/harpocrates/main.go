// Command harpocrates runs the program-refinement loop for a target
// hardware structure and reports the evolved test program's coverage and
// fault detection capability.
//
// Usage:
//
//	harpocrates -structure intmul -scale 1 -detect 50 -dump 20
//	harpocrates -structure irf -corpus corpus/ -resume
//	harpocrates -load best.hxpg -structure irf -detect 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"harpocrates"
	"harpocrates/internal/core"
	"harpocrates/internal/corpus"
	"harpocrates/internal/coverage"
	"harpocrates/internal/dist"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/queue"
)

func main() {
	var (
		structure  = flag.String("structure", "intadd", "target structure: irf, l1d, fprf, intadd, intmul, fpadd, fpmul")
		scale      = flag.Int("scale", 1, "experiment scale factor (1 = laptop scale)")
		iterations = flag.Int("iterations", 0, "override the preset iteration count")
		seed       = flag.Uint64("seed", 1, "random seed")
		detect     = flag.Int("detect", 0, "run a final fault-injection campaign with N injections")
		dump       = flag.Int("dump", 0, "print the first N instructions of the best program")
		save       = flag.String("save", "", "save the best program to a .hxpg file")
		load       = flag.String("load", "", "skip evolution: load a saved .hxpg program and re-evaluate it")
		corpusDir  = flag.String("corpus", "", "persistent corpus directory: seed the run from archived elites and auto-archive each iteration's survivors")
		corpusMax  = flag.Int("corpus-max", 64, "per-structure corpus archive bound (0 = unbounded)")
		resume     = flag.Bool("resume", false, "resume an interrupted run from the checkpoint in the corpus directory (requires -corpus)")
		adaptive   = flag.Bool("adaptive", false, "bandit-scheduled mutation portfolio (UCB1 over replaceall/point/blockswap/splice/crossoverk) and marginal-coverage corpus seed scheduling")
		pareto     = flag.Bool("pareto", false, "evolve one population against all six paper structures at once, maintaining a Pareto archive (exported to -corpus under each member's best structure)")
		jsonOut    = flag.Bool("json", false, "print a deterministic one-line JSON run summary as the last line of output")
		workers    = flag.String("workers", "", "comma-separated harpod worker URLs to shard evaluation across (e.g. http://host1:9090,http://host2:9090)")
		queueURL   = flag.String("queue", "", "harpoq coordinator URL: shard evaluation through the durable job queue (and its result cache) instead of direct push")
		tracePath  = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics    = flag.Bool("metrics", false, "print a metrics summary at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	st, err := coverage.Parse(*structure)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ob, obFinish, err := obs.SetupCLI(*tracePath, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *load != "" {
		// Re-evaluation path: grade a saved program instead of evolving
		// one (-save output is no longer write-only).
		p, err := prog.Load(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reEvaluate(p, st, *detect, *dump, *seed, ob)
		if err := obFinish(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	o := harpocrates.Preset(st, *scale)
	o.Seed = *seed
	o.Obs = ob
	o.Adaptive = *adaptive
	o.Pareto = *pareto
	if *iterations > 0 {
		o.Iterations = *iterations
	}
	switch {
	case *queueURL != "":
		client := queue.NewClient(*queueURL)
		if err := client.Healthz(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("queue: coordinator %s healthy\n", *queueURL)
		o.Evaluator = client.Evaluator()
	case *workers != "":
		pool := dist.New(strings.Split(*workers, ","), dist.Options{Obs: ob})
		fmt.Printf("fleet: %d/%d workers healthy\n", pool.Probe(), pool.Size())
		o.Evaluator = pool.Evaluator()
	}

	var store *corpus.Store
	if *corpusDir != "" {
		store, err = corpus.Open(*corpusDir, ob)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store.SetBound(*corpusMax)
		// Warm-start from archived elites (cold start when the archive is
		// empty) and auto-archive each iteration's survivor set. Adaptive
		// runs schedule seeds by marginal detected-fault coverage instead
		// of raw fitness; the static path keeps the fitness order (and
		// its bit-identical trajectories).
		var seeds []*harpocrates.Genotype
		if *adaptive {
			seeds, err = store.ScheduledElites(st.String(), o.TopK)
		} else {
			seeds, err = store.Elites(st.String(), o.TopK)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o.Seeds = seeds
		gcfg := o.Gen
		if !*pareto {
			// Pareto runs export the final front instead: per-iteration
			// survivors carry mean-objective fitnesses that would not rank
			// meaningfully against single-structure entries.
			o.OnTopK = func(it int, top []*harpocrates.Individual) {
				for _, ind := range top {
					_, err := store.Add(ind.Program(&gcfg), ind.G, corpus.Meta{
						Structure: st.String(),
						Fitness:   ind.Fitness,
						Iteration: it,
					})
					if err != nil {
						fmt.Fprintf(os.Stderr, "warning: corpus archive: %v\n", err)
						return
					}
				}
			}
		}
		o.CheckpointPath = filepath.Join(*corpusDir, "checkpoint-"+strings.ToLower(st.String())+".hxck")
		o.Resume = *resume
		if len(seeds) > 0 && !*resume {
			fmt.Printf("corpus: seeding %d of %d population slots from archived elites\n", len(seeds), o.PopSize)
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "-resume requires -corpus")
		os.Exit(2)
	}

	fmt.Printf("Harpocrates loop: structure=%v programs=%d instructions=%d topK=%d iterations=%d\n",
		st, o.PopSize, o.Gen.NumInstrs, o.TopK, o.Iterations)
	res, err := harpocrates.Evolve(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	h := res.History
	for it := 0; it < len(h.Best); it += max(1, len(h.Best)/20) {
		fmt.Printf("  it %4d  best coverage %6.2f%%  (top-%d mean %6.2f%%)\n",
			it, 100*h.Best[it], o.TopK, 100*h.MeanTopK[it])
	}
	fmt.Printf("converged=%v after %d iterations; best %v coverage %.2f%%\n",
		res.Converged, res.Iterations, st, 100*res.Best.Fitness)
	fmt.Printf("loop step breakdown: mutation %v, generation %v, compilation %v, evaluation %v (totals)\n",
		h.Times.Mutation, h.Times.Generation, h.Times.Compilation, h.Times.Evaluation)
	fmt.Printf("throughput: %d programs, %d instructions generated and evaluated\n",
		h.EvaluatedPrograms, h.EvaluatedInstructions)
	if len(res.Front) > 0 {
		fmt.Printf("pareto: %d non-dominated programs on the archive front\n", len(res.Front))
		if store != nil {
			exportFront(store, res, &o)
		}
	}
	if store != nil {
		fmt.Printf("corpus: %d programs archived in %s\n", store.Len(), store.Dir())
	}

	best := harpocrates.BestProgram(res, &o)
	if *dump > 0 {
		lines := strings.Split(best.Disassemble(), "\n")
		n := min(*dump, len(lines))
		fmt.Printf("best program (first %d of %d instructions):\n%s\n",
			n, len(best.Insts), strings.Join(lines[:n], "\n"))
	}
	if *save != "" {
		if err := best.Save(*save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved best program to %s (%d instructions)\n", *save, len(best.Insts))
	}
	var detStats *harpocrates.DetectionStats
	if *detect > 0 {
		detProg := best
		if *pareto && len(res.Front) > 0 {
			// The front member strongest on the -structure objective is
			// the campaign target; the scalar best optimizes the mean.
			cand := res.Best
			for _, ind := range res.Front {
				if ind.Snapshot.Value(st) > cand.Snapshot.Value(st) {
					cand = ind
				}
			}
			detProg = cand.Program(&o.Gen)
		}
		detStats = runDetection(detProg, st, *detect, *seed, ob)
	}
	if *jsonOut {
		printSummary(res, st, &o, *adaptive, *pareto, *detect, detStats)
	}
	if err := obFinish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// exportFront archives each Pareto front member under the objective
// structure it is strongest on, so a single multi-structure run feeds
// all six per-structure corpora.
func exportFront(store *corpus.Store, res *harpocrates.LoopResult, o *harpocrates.LoopOptions) {
	gcfg := o.Gen
	exported := 0
	for _, ind := range res.Front {
		bestSt, bestVal := core.ParetoObjectives()[0], -1.0
		for _, ost := range core.ParetoObjectives() {
			if v := ind.Snapshot.Value(ost); v > bestVal {
				bestSt, bestVal = ost, v
			}
		}
		if _, err := store.Add(ind.Program(&gcfg), ind.G, corpus.Meta{
			Structure: bestSt.String(),
			Fitness:   bestVal,
			Iteration: res.Iterations,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "warning: corpus front export: %v\n", err)
			return
		}
		exported++
	}
	fmt.Printf("corpus: exported %d Pareto front members\n", exported)
}

// runSummary is the -json output schema: one deterministic object (no
// wall-clock fields), printed as the final stdout line so CI gates can
// `tail -n 1 | jq` it. BestHash fingerprints the winning genotype, so
// two runs printing equal summaries evolved the identical program.
type runSummary struct {
	Structure   string  `json:"structure"`
	Adaptive    bool    `json:"adaptive"`
	Pareto      bool    `json:"pareto"`
	Seed        uint64  `json:"seed"`
	Iterations  int     `json:"iterations"`
	Converged   bool    `json:"converged"`
	Evaluated   int     `json:"evaluated"`
	CacheHits   int     `json:"cache_hits"`
	BestFitness float64 `json:"best_fitness"`
	BestHash    string  `json:"best_hash"`
	FrontSize   int     `json:"front_size,omitempty"`
	DetectN     int     `json:"detect_n,omitempty"`
	Detected    int     `json:"detected,omitempty"`
	Masked      int     `json:"masked,omitempty"`
	SDC         int     `json:"sdc,omitempty"`
	Crash       int     `json:"crash,omitempty"`
	Hang        int     `json:"hang,omitempty"`
	Trap        int     `json:"trap,omitempty"`
	Detection   float64 `json:"detection,omitempty"`
}

func printSummary(res *harpocrates.LoopResult, st harpocrates.Structure, o *harpocrates.LoopOptions, adaptive, pareto bool, detect int, stats *harpocrates.DetectionStats) {
	s := runSummary{
		Structure:   st.String(),
		Adaptive:    adaptive,
		Pareto:      pareto,
		Seed:        o.Seed,
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		Evaluated:   res.History.EvaluatedPrograms,
		CacheHits:   res.History.CacheHits,
		BestFitness: res.Best.Fitness,
		BestHash:    fmt.Sprintf("%016x", res.Best.G.Hash()),
		FrontSize:   len(res.Front),
	}
	if stats != nil {
		s.DetectN = detect
		s.Detected = stats.Detected()
		s.Masked = stats.Masked
		s.SDC = stats.SDC
		s.Crash = stats.Crash
		s.Hang = stats.Hang
		s.Trap = stats.Trap
		s.Detection = stats.Detection()
	}
	out, err := json.Marshal(&s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// reEvaluate grades a loaded program: coverage on the core model, an
// optional disassembly dump and an optional SFI campaign.
func reEvaluate(p *harpocrates.Program, st harpocrates.Structure, detect, dump int, seed uint64, ob *obs.Observer) {
	res := harpocrates.Simulate(p, st)
	if !res.Clean() {
		fmt.Fprintf(os.Stderr, "warning: program does not run cleanly\n")
	}
	ipc := 0.0
	if res.Cycles > 0 {
		ipc = float64(res.Instructions) / float64(res.Cycles)
	}
	fmt.Printf("program %s: %d instructions, %d cycles, IPC %.2f\n",
		p.Name, len(p.Insts), res.Cycles, ipc)
	fmt.Printf("%v coverage: %.2f%%\n", st, 100*res.Snapshot.Value(st))
	if dump > 0 {
		lines := strings.Split(p.Disassemble(), "\n")
		n := min(dump, len(lines))
		fmt.Printf("program (first %d of %d instructions):\n%s\n",
			n, len(p.Insts), strings.Join(lines[:n], "\n"))
	}
	if detect > 0 {
		runDetection(p, st, detect, seed, ob)
	}
}

func runDetection(p *harpocrates.Program, st harpocrates.Structure, injections int, seed uint64, ob *obs.Observer) *harpocrates.DetectionStats {
	fmt.Printf("running %v SFI campaign (%d injections, %s faults)...\n",
		st, injections, faultName(st))
	c := harpocrates.NewDetectionCampaign(p, st, injections, seed)
	c.Obs = ob
	stats, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  %v\n", stats)
	return stats
}

func faultName(st harpocrates.Structure) string {
	if st.IsFunctionalUnit() {
		return "permanent gate-level stuck-at"
	}
	return "transient bit-flip"
}
