// Command harpocrates runs the program-refinement loop for a target
// hardware structure and reports the evolved test program's coverage and
// fault detection capability.
//
// Usage:
//
//	harpocrates -structure intmul -scale 1 -detect 50 -dump 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harpocrates"
	"harpocrates/internal/obs"
)

func parseStructure(s string) (harpocrates.Structure, error) {
	switch strings.ToLower(s) {
	case "irf":
		return harpocrates.IRF, nil
	case "l1d":
		return harpocrates.L1D, nil
	case "fprf":
		return harpocrates.FPRF, nil
	case "intadd", "intadder", "adder":
		return harpocrates.IntAdder, nil
	case "intmul", "multiplier":
		return harpocrates.IntMul, nil
	case "fpadd":
		return harpocrates.FPAdd, nil
	case "fpmul":
		return harpocrates.FPMul, nil
	}
	return 0, fmt.Errorf("unknown structure %q (irf, l1d, fprf, intadd, intmul, fpadd, fpmul)", s)
}

func main() {
	var (
		structure  = flag.String("structure", "intadd", "target structure: irf, l1d, fprf, intadd, intmul, fpadd, fpmul")
		scale      = flag.Int("scale", 1, "experiment scale factor (1 = laptop scale)")
		iterations = flag.Int("iterations", 0, "override the preset iteration count")
		seed       = flag.Uint64("seed", 1, "random seed")
		detect     = flag.Int("detect", 0, "run a final fault-injection campaign with N injections")
		dump       = flag.Int("dump", 0, "print the first N instructions of the best program")
		save       = flag.String("save", "", "save the best program to a .hxpg file")
		tracePath  = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics    = flag.Bool("metrics", false, "print a metrics summary at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	st, err := parseStructure(*structure)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ob, obFinish, err := obs.SetupCLI(*tracePath, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	o := harpocrates.Preset(st, *scale)
	o.Seed = *seed
	o.Obs = ob
	if *iterations > 0 {
		o.Iterations = *iterations
	}

	fmt.Printf("Harpocrates loop: structure=%v programs=%d instructions=%d topK=%d iterations=%d\n",
		st, o.PopSize, o.Gen.NumInstrs, o.TopK, o.Iterations)
	res, err := harpocrates.Evolve(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	h := res.History
	for it := 0; it < len(h.Best); it += max(1, len(h.Best)/20) {
		fmt.Printf("  it %4d  best coverage %6.2f%%  (top-%d mean %6.2f%%)\n",
			it, 100*h.Best[it], o.TopK, 100*h.MeanTopK[it])
	}
	fmt.Printf("converged=%v after %d iterations; best %v coverage %.2f%%\n",
		res.Converged, res.Iterations, st, 100*res.Best.Fitness)
	fmt.Printf("loop step breakdown: mutation %v, generation %v, compilation %v, evaluation %v (totals)\n",
		h.Times.Mutation, h.Times.Generation, h.Times.Compilation, h.Times.Evaluation)
	fmt.Printf("throughput: %d programs, %d instructions generated and evaluated\n",
		h.EvaluatedPrograms, h.EvaluatedInstructions)

	best := harpocrates.BestProgram(res, &o)
	if *dump > 0 {
		lines := strings.Split(best.Disassemble(), "\n")
		n := min(*dump, len(lines))
		fmt.Printf("best program (first %d of %d instructions):\n%s\n",
			n, len(best.Insts), strings.Join(lines[:n], "\n"))
	}
	if *save != "" {
		if err := best.Save(*save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved best program to %s (%d instructions)\n", *save, len(best.Insts))
	}
	if *detect > 0 {
		fmt.Printf("running %v SFI campaign (%d injections, %s faults)...\n",
			st, *detect, faultName(st))
		c := harpocrates.NewDetectionCampaign(best, st, *detect, *seed)
		c.Obs = ob
		stats, err := c.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %v\n", stats)
	}
	if err := obFinish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func faultName(st harpocrates.Structure) string {
	if st.IsFunctionalUnit() {
		return "permanent gate-level stuck-at"
	}
	return "transient bit-flip"
}
