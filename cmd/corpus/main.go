// Command corpus manages a persistent archive of Harpocrates test
// programs: list and import entries, measure their fault-detection
// capability, distill the archive to a minimal covering subset, and
// export ranked programs for fleet deployment.
//
// Usage:
//
//	corpus ls      -dir corpus
//	corpus add     -dir corpus -file best.hxpg -structure irf
//	corpus rank    -dir corpus -structure irf -n 100 -seed 1
//	corpus distill -dir corpus -structure irf -apply
//	corpus export  -dir corpus -structure irf -out fleet/ -top 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harpocrates"
	"harpocrates/internal/corpus"
	"harpocrates/internal/coverage"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: corpus <command> [flags]

commands:
  ls       list archived programs (hash, structure, fitness, detection)
  add      import a .hxpg program file into the archive
  rank     run fault-injection campaigns over the archive, recording
           each program's detection rate and detected-fault set
  distill  minimize the archive to the smallest subset preserving the
           union of detected-fault sets (greedy set cover)
  export   copy the top-ranked programs out as .hxpg files

run "corpus <command> -h" for command flags
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func openStore(dir string, ob *obs.Observer) *corpus.Store {
	if dir == "" {
		fatal(fmt.Errorf("corpus: -dir is required"))
	}
	s, err := corpus.Open(dir, ob)
	if err != nil {
		fatal(err)
	}
	return s
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "ls":
		cmdLs(args)
	case "add":
		cmdAdd(args)
	case "rank":
		cmdRank(args)
	case "distill":
		cmdDistill(args)
	case "export":
		cmdExport(args)
	default:
		usage()
	}
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("corpus ls", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	structure := fs.String("structure", "", "restrict to one structure")
	fs.Parse(args)
	st := openStore(*dir, nil)

	metas := st.List()
	if *structure != "" {
		c, err := coverage.Parse(*structure)
		if err != nil {
			fatal(err)
		}
		metas = st.ListStructure(c.String())
	}
	fmt.Printf("%-16s %-10s %8s %8s %9s %6s %s\n",
		"HASH", "STRUCTURE", "FITNESS", "DETECT", "FAULTS", "INSTS", "NAME")
	for _, m := range metas {
		det, faults := "-", "-"
		if m.Ranked() {
			det = fmt.Sprintf("%.1f%%", 100*m.Detection)
			faults = fmt.Sprintf("%d/%d", len(m.Detected), m.FaultN)
		}
		fmt.Printf("%-16s %-10s %8.4f %8s %9s %6d %s\n",
			m.Hash, m.Structure, m.Fitness, det, faults, m.Insts, m.Name)
	}
	fmt.Printf("%d programs\n", len(metas))
}

func cmdAdd(args []string) {
	fs := flag.NewFlagSet("corpus add", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	file := fs.String("file", "", ".hxpg program file to import")
	structure := fs.String("structure", "", "target structure the program tests")
	bound := fs.Int("max", 0, "per-structure archive bound (0 = unbounded)")
	fs.Parse(args)
	if *file == "" || *structure == "" {
		fatal(fmt.Errorf("corpus add: -file and -structure are required"))
	}
	c, err := coverage.Parse(*structure)
	if err != nil {
		fatal(err)
	}
	p, err := prog.Load(*file)
	if err != nil {
		fatal(err)
	}
	st := openStore(*dir, nil)
	st.SetBound(*bound)

	// Grade the import so it lands fitness-ranked alongside evolved
	// entries.
	sim := harpocrates.Simulate(p, c)
	fitness := 0.0
	if sim.Clean() {
		fitness = sim.Snapshot.Value(c)
	} else {
		fmt.Fprintf(os.Stderr, "warning: program does not run cleanly; archiving with fitness 0\n")
	}
	res, err := st.Add(p, nil, corpus.Meta{
		Structure: c.String(),
		Fitness:   fitness,
		Iteration: -1,
	})
	if err != nil {
		fatal(err)
	}
	if res.Added {
		fmt.Printf("added %s (%s, fitness %.4f, %d instructions)\n",
			res.Hash, c, fitness, len(p.Insts))
	} else {
		fmt.Printf("not retained: %s (duplicate or below the fitness bound)\n", res.Hash)
	}
	for _, h := range res.Evicted {
		fmt.Printf("evicted %s\n", h)
	}
}

func cmdRank(args []string) {
	fs := flag.NewFlagSet("corpus rank", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	structure := fs.String("structure", "", "structure to rank")
	n := fs.Int("n", 100, "injections per program")
	seed := fs.Uint64("seed", 1, "campaign seed")
	ftype := fs.String("type", "", "fault type: transient, intermittent, permanent (default per structure)")
	window := fs.Uint64("window", 100, "intermittent fault window (cycles)")
	force := fs.Bool("force", false, "re-rank entries already measured with this configuration")
	metrics := fs.Bool("metrics", false, "print a metrics summary at exit")
	fs.Parse(args)
	if *structure == "" {
		fatal(fmt.Errorf("corpus rank: -structure is required"))
	}
	c, err := coverage.Parse(*structure)
	if err != nil {
		fatal(err)
	}
	ob, obFinish, err := obs.SetupCLI("", *metrics, "")
	if err != nil {
		fatal(err)
	}
	st := openStore(*dir, ob)

	ft := inject.DefaultFaultType(c)
	switch strings.ToLower(*ftype) {
	case "transient":
		ft = inject.Transient
	case "intermittent":
		ft = inject.Intermittent
	case "permanent":
		ft = inject.Permanent
	case "":
	default:
		fatal(fmt.Errorf("unknown fault type %q", *ftype))
	}

	ranked, skipped, err := st.Rank(corpus.RankOptions{
		Structure:       c,
		Type:            ft,
		N:               *n,
		Seed:            *seed,
		IntermittentLen: *window,
		Force:           *force,
		Obs:             ob,
		Progress: func(m *corpus.Meta, s *inject.Stats) {
			fmt.Printf("  %s  %s\n", m.Hash, s)
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ranked %d programs (%d already measured, skipped)\n", ranked, skipped)
	if err := obFinish(os.Stdout); err != nil {
		fatal(err)
	}
}

func cmdDistill(args []string) {
	fs := flag.NewFlagSet("corpus distill", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	structure := fs.String("structure", "", "structure to distill")
	apply := fs.Bool("apply", false, "actually remove redundant entries (default: dry run)")
	fs.Parse(args)
	if *structure == "" {
		fatal(fmt.Errorf("corpus distill: -structure is required"))
	}
	c, err := coverage.Parse(*structure)
	if err != nil {
		fatal(err)
	}
	st := openStore(*dir, nil)

	kept, dropped, err := st.Distill(c.String(), *apply)
	if err != nil {
		fatal(err)
	}
	union := corpus.DetectedUnion(kept)
	for _, m := range kept {
		fmt.Printf("keep %s  detects %d/%d  fitness %.4f\n",
			m.Hash, len(m.Detected), m.FaultN, m.Fitness)
	}
	for _, m := range dropped {
		verb := "would drop"
		if *apply {
			verb = "dropped"
		}
		fmt.Printf("%s %s  detects %d/%d (all covered by kept set)\n",
			verb, m.Hash, len(m.Detected), m.FaultN)
	}
	fmt.Printf("distilled %d -> %d programs, union of detected faults preserved (%d faults)\n",
		len(kept)+len(dropped), len(kept), len(union))
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("corpus export", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	structure := fs.String("structure", "", "structure to export")
	out := fs.String("out", "", "output directory")
	top := fs.Int("top", 0, "export only the top K by fitness (0 = all)")
	fs.Parse(args)
	if *structure == "" || *out == "" {
		fatal(fmt.Errorf("corpus export: -structure and -out are required"))
	}
	c, err := coverage.Parse(*structure)
	if err != nil {
		fatal(err)
	}
	st := openStore(*dir, nil)
	paths, err := st.Export(c.String(), *top, *out)
	if err != nil {
		fatal(err)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Printf("exported %d programs to %s\n", len(paths), *out)
}
