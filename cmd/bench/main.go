// Command bench regenerates the paper's tables and figures (the same
// harnesses as the repository-level Go benchmarks, in CLI form).
//
// Usage:
//
//	bench -fig 4          # one figure
//	bench -table 1
//	bench -rate -speed
//	bench -all            # everything (Table I, Figs 1,4,5,6,8,10,11, §VI-A, §VI-C)
//
// Scale with HARPO_SCALE.
package main

import (
	"flag"
	"fmt"
	"os"

	"harpocrates/internal/coverage"
	"harpocrates/internal/experiments"
	"harpocrates/internal/obs"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number: 1, 4, 5, 6, 8, 10, 11")
		table     = flag.Int("table", 0, "table number: 1")
		rate      = flag.Bool("rate", false, "§VI-A generation-rate comparison")
		interplay = flag.Bool("interplay", false, "fault-type interplay sweep (§II-D, Fig. 2)")
		speed     = flag.Bool("speed", false, "§VI-C detection-speed comparison")
		sfi       = flag.Bool("sfi", false, "SFI campaign fast-forward timing (checkpointed resume vs from-cycle-0)")
		micro     = flag.Bool("micro", false, "run-loop microbenchmarks (naive vs event-driven cycle skipping)")
		adapt     = flag.Bool("adaptive", false, "adaptive-vs-static schedule ablation (bandit portfolio + Pareto archive)")
		all       = flag.Bool("all", false, "run everything")

		jsonPath = flag.String("json", "", "write machine-readable benchmark results (name, ns/op, speedup) to this file")

		tracePath = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics   = flag.Bool("metrics", false, "print a metrics summary at exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ob, obFinish, err := obs.SetupCLI(*tracePath, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pp := experiments.DefaultParams()
	pp.Obs = ob
	fmt.Printf("scale=%d (HARPO_SCALE), injections per campaign: bit-array=%d adder=%d mul=%d fp=%d\n\n",
		pp.Scale, pp.InjBitArray, pp.InjAdder, pp.InjMul, pp.InjFP)

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	figBase := func(title string, f func(experiments.Params) ([]experiments.Measurement, error)) {
		ms, err := f(pp)
		die(err)
		experiments.FprintMeasurements(os.Stdout, title, ms)
		experiments.FprintSummaries(os.Stdout, title+" — aggregates", experiments.Summarize(ms))
		fmt.Println()
	}

	if *all || *fig == 1 {
		experiments.FprintFig1(os.Stdout)
		fmt.Println()
	}
	if *all || *fig == 4 {
		figBase("Fig. 4 — IRF and L1D (transient faults)", experiments.Fig4)
	}
	if *all || *fig == 5 {
		figBase("Fig. 5 — Integer adder and multiplier (permanent gate faults)", experiments.Fig5)
	}
	if *all || *fig == 6 {
		figBase("Fig. 6 — SSE FP adder and multiplier (permanent gate faults)", experiments.Fig6)
	}
	if *all || *fig == 8 {
		experiments.FprintFig8(os.Stdout, experiments.Fig8Scenario(pp))
		fmt.Println()
	}
	if *all || *fig == 10 {
		for _, st := range experiments.AllStructures() {
			c, err := experiments.Fig10(st, pp)
			die(err)
			experiments.FprintConvergence(os.Stdout, c)
			fmt.Println()
		}
	}
	if *all || *fig == 11 {
		ss, _, err := experiments.Fig11(pp)
		die(err)
		experiments.FprintFig11(os.Stdout, ss)
		fmt.Println()
	}
	if *all || *table == 1 {
		s, err := experiments.Table1(pp)
		die(err)
		experiments.FprintTable1(os.Stdout, s)
		fmt.Println()
	}
	if *all || *interplay {
		for _, st := range []coverage.Structure{coverage.IRF, coverage.L1D} {
			r, err := experiments.Interplay(st, pp)
			die(err)
			experiments.FprintInterplay(os.Stdout, r)
			fmt.Println()
		}
	}
	if *all || *rate {
		r, err := experiments.GenRate(pp)
		die(err)
		experiments.FprintGenRate(os.Stdout, r)
		fmt.Println()
	}
	if *all || *speed {
		r, err := experiments.DetectionSpeed(pp)
		die(err)
		experiments.FprintSpeed(os.Stdout, r)
		fmt.Println()
	}
	var jsonResults []experiments.BenchResult
	if *all || *sfi {
		r, err := experiments.CampaignSpeed(pp)
		die(err)
		experiments.FprintCampaignSpeed(os.Stdout, r)
		fmt.Println()
		jsonResults = append(jsonResults,
			experiments.BenchResult{Name: "sfi.campaign.fastforward.off", Iterations: 1,
				NsPerOp: float64(r.FromZero.Nanoseconds())},
			experiments.BenchResult{Name: "sfi.campaign.fastforward.on", Iterations: 1,
				NsPerOp: float64(r.FastForward.Nanoseconds()), SpeedupVsNaive: r.SpeedupX})
	}
	if *all || *micro {
		rs, err := experiments.Microbench(pp)
		die(err)
		experiments.FprintMicrobench(os.Stdout, rs)
		fmt.Println()
		jsonResults = append(jsonResults, rs...)
	}
	if *all || *adapt {
		rs, err := experiments.AdaptiveAblation(pp)
		die(err)
		experiments.FprintAdaptiveAblation(os.Stdout, rs)
		fmt.Println()
		jsonResults = append(jsonResults, rs...)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		die(err)
		die(experiments.WriteBenchJSON(f, jsonResults))
		die(f.Close())
		fmt.Printf("wrote %d benchmark results to %s\n", len(jsonResults), *jsonPath)
	}
	die(obFinish(os.Stdout))
}
