// Command faultsim runs a statistical fault-injection campaign (the
// GeFIN-style evaluation of §II-E) on a chosen test program: a baseline
// suite workload or a freshly generated random program.
//
// Usage:
//
//	faultsim -list
//	faultsim -suite mibench -prog mibench/qsort -target l1d -n 100
//	faultsim -random 2000 -target intadd -type intermittent -n 50
//	faultsim -corpus corpus/ -target irf -n 100 -resume
//	faultsim -queue http://queue-host:9900 -suite mibench -prog mibench/qsort -n 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"harpocrates"
	"harpocrates/internal/baselines/dcdiag"
	"harpocrates/internal/baselines/mibench"
	"harpocrates/internal/corpus"
	"harpocrates/internal/coverage"
	"harpocrates/internal/dist"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/queue"
	"harpocrates/internal/uarch"
)

func main() {
	var (
		suite  = flag.String("suite", "mibench", "program source: mibench, dcdiag")
		name   = flag.String("prog", "", "program name within the suite")
		random = flag.Int("random", 0, "use a freshly generated random program of N instructions instead")
		load   = flag.String("load", "", "load a saved .hxpg program file instead")
		target = flag.String("target", "irf", "target structure (see coverage names: irf, l1d, fprf, intadd, intmul, fpadd, fpmul, decoder, gshare, lsq, rob, l2tags)")
		ftype  = flag.String("type", "", "fault type: transient, intermittent, permanent (default per structure)")
		n      = flag.Int("n", 50, "number of injections")
		seed   = flag.Uint64("seed", 1, "random seed")
		scale  = flag.Int("scale", 1, "workload scale")
		window = flag.Uint64("window", 100, "intermittent fault window (cycles)")
		burst  = flag.Int("burst", 1, "multi-bit upset width for bit-array targets (adjacent bits per injection)")
		asJSON = flag.Bool("json", false, "print the campaign result as one JSON object on stdout")
		list   = flag.Bool("list", false, "list available programs and exit")

		noGoldenCache = flag.Bool("no-golden-cache", false, "disable golden artifact reuse: every campaign (and every worker shard) recomputes its instrumented golden run (ablation)")

		corpusDir = flag.String("corpus", "", "rank a corpus archive: run the campaign on every archived program of the target structure and record detection metadata")
		resume    = flag.Bool("resume", false, "with -corpus: skip entries already measured with this campaign configuration (resume an interrupted sweep)")

		workers  = flag.String("workers", "", "comma-separated harpod worker URLs to shard the campaign across (e.g. http://host1:9090,http://host2:9090)")
		queueURL = flag.String("queue", "", "harpoq coordinator URL: submit the campaign as a durable queue job and await the merged result")
		priority = flag.Int("priority", 0, "with -queue: job priority (higher leases first)")

		tracePath = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics   = flag.Bool("metrics", false, "print a metrics summary at exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ob, obFinish, err := obs.SetupCLI(*tracePath, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The -json output always reports the golden-cache counters; when
	// the CLI observer carries no registry (no -metrics), attach one so
	// the campaign has somewhere to count.
	if ob.Registry() == nil {
		ob = obs.New(obs.NewRegistry(), ob.Tracer())
	}

	suites := map[string][]*prog.Program{
		"mibench": mibench.Programs(*scale),
		"dcdiag":  dcdiag.Programs(*scale),
	}
	if *list {
		for s, ps := range suites {
			for _, p := range ps {
				fmt.Printf("%-8s %s (%d instructions)\n", s, p.Name, len(p.Insts))
			}
		}
		return
	}

	st, err := coverage.Parse(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ft := inject.DefaultFaultType(st)
	if *ftype != "" {
		var err error
		if ft, err = inject.ParseFaultType(*ftype); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *corpusDir != "" {
		// Corpus mode: rank the archive instead of one program. With
		// -resume, entries already measured under this configuration are
		// skipped, so an interrupted sweep picks up where it stopped.
		store, err := corpus.Open(*corpusDir, ob)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("ranking corpus %s: target=%v faults=%v injections=%d\n", *corpusDir, st, ft, *n)
		ranked, skipped, err := store.Rank(corpus.RankOptions{
			Structure:       st,
			Type:            ft,
			N:               *n,
			Seed:            *seed,
			IntermittentLen: *window,
			Force:           !*resume,
			NoGoldenCache:   *noGoldenCache,
			Obs:             ob,
			Progress: func(m *corpus.Meta, s *inject.Stats) {
				fmt.Printf("  %s  %s\n", m.Hash, s)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("ranked %d programs (%d already measured, skipped)\n", ranked, skipped)
		if err := obFinish(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var p *prog.Program
	switch {
	case *load != "":
		var err error
		p, err = prog.Load(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *random > 0:
		cfg := harpocrates.DefaultGenConfig()
		cfg.NumInstrs = *random
		p = harpocrates.Generate(&cfg, *seed)
		p.Name = fmt.Sprintf("random-%d", *random)
	default:
		for _, cand := range suites[*suite] {
			if *name == "" || cand.Name == *name {
				p = cand
				break
			}
		}
		if p == nil {
			fmt.Fprintf(os.Stderr, "program %q not found in suite %q (try -list)\n", *name, *suite)
			os.Exit(2)
		}
	}

	c := &inject.Campaign{
		Prog:            p.Insts,
		Init:            p.InitFunc(),
		Target:          st,
		Type:            ft,
		N:               *n,
		IntermittentLen: *window,
		BurstLen:        *burst,
		Seed:            *seed,
		Cfg:             uarch.DefaultConfig(),
		GoldenCache:     inject.SharedGoldenCache(),
		ProgramHash:     corpus.HashProgram(p),
		NoGoldenCache:   *noGoldenCache,
		Obs:             ob,
	}
	golden := c.Golden()
	fmt.Printf("program %s: %d instructions, %d cycles golden, IPC %.2f\n",
		p.Name, golden.Instructions, golden.Cycles,
		float64(golden.Instructions)/float64(golden.Cycles))
	fmt.Printf("campaign: target=%v faults=%v injections=%d\n", st, ft, *n)
	var stats *inject.Stats
	switch {
	case *queueURL != "":
		// Queue mode: the campaign becomes a durable job; progress goes
		// to stderr so -json keeps a jq-stable stdout.
		client := queue.NewClient(*queueURL)
		sub, err := client.SubmitCampaign(c, p, *priority)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "queued %s: %d shards (%d served from cache)\n", sub.ID, sub.Shards, sub.CacheHits)
		lastDone := -1
		res, err := client.Await(sub.ID, func(st *dist.JobStatus) {
			if st.Done != lastDone {
				lastDone = st.Done
				fmt.Fprintf(os.Stderr, "  %s: %d/%d shards done (%d cached)\n", st.ID, st.Done, st.Shards, st.Cached)
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if res.State != dist.JobStateDone || res.Stats == nil {
			fmt.Fprintf(os.Stderr, "job %s ended %s without stats\n", sub.ID, res.State)
			os.Exit(1)
		}
		stats = res.Stats
	case *workers != "":
		pool := dist.New(strings.Split(*workers, ","), dist.Options{Obs: ob})
		fmt.Printf("fleet: %d/%d workers healthy\n", pool.Probe(), pool.Size())
		stats, err = pool.RunCampaign(c, p)
	default:
		stats, err = c.Run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(campaignJSON(p.Name, st, ft, *seed, stats, ob)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Println(" ", stats)
	}
	if err := obFinish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// campaignResult is the -json output schema: one object per campaign,
// stable field names for jq-based CI gates.
type campaignResult struct {
	Program      string  `json:"program"`
	Target       string  `json:"target"`
	Type         string  `json:"type"`
	Seed         uint64  `json:"seed"`
	N            int     `json:"n"`
	Masked       int     `json:"masked"`
	SDC          int     `json:"sdc"`
	Crash        int     `json:"crash"`
	Hang         int     `json:"hang"`
	Trap         int     `json:"trap"`
	Detected     int     `json:"detected"`
	Detection    float64 `json:"detection"`
	GoldenCycles uint64  `json:"golden_cycles"`
	// Golden-cache counters for this process (always present, so jq
	// gates can assert reuse without guarding missing fields; 0 in
	// queue/workers modes, where golden runs happen remotely).
	GoldenCacheHits   int64 `json:"golden_cache_hits"`
	GoldenCacheMisses int64 `json:"golden_cache_misses"`
}

func campaignJSON(name string, st coverage.Structure, ft inject.FaultType, seed uint64, s *inject.Stats, ob *obs.Observer) campaignResult {
	return campaignResult{
		Program:           name,
		Target:            st.String(),
		Type:              ft.String(),
		Seed:              seed,
		N:                 s.N,
		Masked:            s.Masked,
		SDC:               s.SDC,
		Crash:             s.Crash,
		Hang:              s.Hang,
		Trap:              s.Trap,
		Detected:          s.Detected(),
		Detection:         s.Detection(),
		GoldenCycles:      s.GoldenCycles,
		GoldenCacheHits:   ob.Counter("inject.golden.cache.hits").Load(),
		GoldenCacheMisses: ob.Counter("inject.golden.cache.misses").Load(),
	}
}
