// Command harpod is the Harpocrates fleet worker: a small HTTP server
// that grades evaluation batches and runs fault-injection shards on
// behalf of a coordinator (faultsim -workers / harpocrates -workers).
//
// Usage:
//
//	harpod -addr 0.0.0.0:9090
//
// The worker is stateless — every request carries the full campaign or
// evaluation configuration — so workers can join, die and be replaced
// at any point without coordination.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harpocrates/internal/dist"
	"harpocrates/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9090", "address to listen on")
		tracePath = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics   = flag.Bool("metrics", false, "print a metrics summary at exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ob, obFinish, err := obs.SetupCLI(*tracePath, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           dist.NewServer(ob).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("harpod worker listening on http://%s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "harpod: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
		cancel()
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := obFinish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
