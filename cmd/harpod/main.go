// Command harpod is the Harpocrates fleet worker: a small HTTP server
// that grades evaluation batches and runs fault-injection shards on
// behalf of a coordinator (faultsim -workers / harpocrates -workers),
// and — with -pull — a work-stealing client of a harpoq job queue:
// idle workers long-poll the coordinator for the next ready shard, so
// heterogeneous fleets self-balance with no tuning.
//
// Usage:
//
//	harpod -addr 0.0.0.0:9090
//	harpod -addr 0.0.0.0:9090 -pull http://queue-host:9900 -cache /shared/cache
//
// The worker is stateless — every request carries the full campaign or
// evaluation configuration — so workers can join, die and be replaced
// at any point without coordination. The optional -cache directory
// holds a content-addressed result cache consulted before every
// simulate; point several workers at one shared filesystem to pool it.
//
// GET /metrics serves the Prometheus text exposition on the same
// listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harpocrates/internal/dist"
	"harpocrates/internal/obs"
	"harpocrates/internal/queue"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9090", "address to listen on")
		pull         = flag.String("pull", "", "harpoq coordinator URL to pull shards from (work-stealing mode)")
		name         = flag.String("name", "", "worker name reported in leases (default addr)")
		cacheDir     = flag.String("cache", "", "worker-side content-addressed result cache directory")
		cacheEntries = flag.Int("cache-entries", 0, "in-memory cache entries (0 = default)")

		goldenCacheDir     = flag.String("golden-cache", "", "persist golden artifact bundles in this directory (restarted workers skip recomputing golden runs)")
		goldenCacheEntries = flag.Int("golden-cache-entries", 0, "in-memory golden bundles (0 = default)")
		noGoldenCache      = flag.Bool("no-golden-cache", false, "disable golden artifact reuse on this worker (ablation)")
		tracePath          = flag.String("trace", "", "write a JSONL event trace to this file")
		metrics            = flag.Bool("metrics", false, "print a metrics summary at exit")
		pprofAddr          = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ob, obFinish, err := obs.SetupCLI(*tracePath, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The worker always carries a registry: /metrics must work even
	// without -metrics.
	if ob.Registry() == nil {
		ob = obs.New(obs.NewRegistry(), ob.Tracer())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           dist.NewServer(ob).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("harpod worker listening on http://%s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	// Pull mode: work-steal from the queue coordinator alongside the
	// legacy push endpoint.
	pullCtx, pullCancel := context.WithCancel(context.Background())
	pullDone := make(chan struct{})
	var worker *queue.Worker
	if *pull != "" {
		wname := *name
		if wname == "" {
			wname = ln.Addr().String()
		}
		worker, err = queue.NewWorker(*pull, queue.WorkerOptions{
			Name:               wname,
			CacheDir:           *cacheDir,
			CacheEntries:       *cacheEntries,
			GoldenCacheDir:     *goldenCacheDir,
			GoldenCacheEntries: *goldenCacheEntries,
			NoGoldenCache:      *noGoldenCache,
			Obs:                ob,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("harpod pulling shards from %s as %q\n", *pull, wname)
		go func() {
			defer close(pullDone)
			worker.Run(pullCtx)
		}()
	} else {
		close(pullDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "harpod: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
		cancel()
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	pullCancel()
	<-pullDone
	if worker != nil {
		if err := worker.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "harpod: close cache:", err)
		}
	}
	if err := obFinish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
