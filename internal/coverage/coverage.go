// Package coverage defines the hardware-coverage metrics Harpocrates
// optimizes (paper §II-C/D): ACE-based vulnerability for bit-array
// structures and the Input Bit Ratio (IBR) for functional units, plus
// the mapping from instruction variants to the functional unit whose
// datapath they exercise.
package coverage

import (
	"fmt"
	"math/bits"
	"strings"

	"harpocrates/internal/isa"
)

// Structure identifies one of the six target hardware structures of the
// paper's evaluation (§III-B2), in the paper's order.
type Structure int

// Target structures: the paper's six plus the FP physical register
// file, an extension target demonstrating that the methodology applies
// to "any other hardware structure" (§III-B2), and the post-paper
// microarchitectural sites (decoder, branch predictor, store buffer,
// ROB metadata, L2 tags). ACE-tracked bit arrays come first, then the
// functional units, then the new sites. Order is part of the dist wire
// protocol (names travel, but Snapshot arrays index by Structure), so
// new structures must only ever be appended.
const (
	IRF      Structure = iota // physical (integer) register file
	L1D                       // L1 data cache
	FPRF                      // physical FP (XMM) register file (extension)
	IntAdder                  // integer adder
	IntMul                    // integer multiplier
	FPAdd                     // SSE FP adder
	FPMul                     // SSE FP multiplier
	Decoder                   // instruction-fetch bytes before decode
	Gshare                    // branch-predictor pattern-history table
	LSQ                       // store-buffer (captured store data/address)
	ROBMeta                   // ROB next-PC metadata
	L2Tags                    // L2 tag array

	NumStructures
)

var structNames = [NumStructures]string{
	"IRF", "L1D", "FPRF", "IntAdder", "IntMul", "SSE-FPAdd", "SSE-FPMul",
	"Decoder", "Gshare", "LSQ", "ROBMeta", "L2Tags",
}

func (s Structure) String() string {
	if s >= 0 && s < NumStructures {
		return structNames[s]
	}
	return fmt.Sprintf("struct?%d", int(s))
}

// structAliases is the single parsing table behind Parse: every name,
// canonical or alias, is stored lowercased. The canonical String()
// forms are added programmatically so a newly appended Structure parses
// without touching this table.
var structAliases = map[string]Structure{
	"intadd":      IntAdder,
	"adder":       IntAdder,
	"intmul":      IntMul,
	"multiplier":  IntMul,
	"fpadd":       FPAdd,
	"fpmul":       FPMul,
	"dec":         Decoder,
	"decode":      Decoder,
	"bpred":       Gshare,
	"bp":          Gshare,
	"sq":          LSQ,
	"storebuffer": LSQ,
	"rob":         ROBMeta,
	"l2":          L2Tags,
	"l2tag":       L2Tags,
}

func init() {
	for s := Structure(0); s < NumStructures; s++ {
		structAliases[strings.ToLower(structNames[s])] = s
	}
}

// ValidNames returns the canonical structure names, comma-separated —
// shared by every parser error message that lists them.
func ValidNames() string {
	names := make([]string, NumStructures)
	for s := Structure(0); s < NumStructures; s++ {
		names[s] = structNames[s]
	}
	return strings.Join(names, ", ")
}

// Parse maps a structure name to its Structure, case-insensitively. It
// accepts the canonical String() form plus the short aliases the
// command-line tools use (irf, l1d, fprf, intadd, adder, intmul,
// multiplier, fpadd, fpmul, dec, bpred, sq, rob, l2, ...).
func Parse(name string) (Structure, error) {
	if s, ok := structAliases[strings.ToLower(strings.TrimSpace(name))]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("unknown structure %q (valid: %s)", name, ValidNames())
}

// IsFunctionalUnit reports whether the structure is a functional unit
// (graded with IBR and permanent gate faults) rather than a bit array
// or microarchitectural site (graded with ACE/SFI and transient
// faults).
func (s Structure) IsFunctionalUnit() bool { return s >= IntAdder && s <= FPMul }

// Snapshot is the per-run coverage summary produced by the
// microarchitectural simulator. It is the quantitative feedback the
// Harpocrates loop grades candidates with.
type Snapshot struct {
	Cycles       uint64
	Instructions uint64

	// IRFVuln, L1DVuln and FPRFVuln are the ACE vulnerability of the
	// physical integer register file, the L1D data array and the FP
	// register file (0..1), when tracking was enabled.
	IRFVuln  float64
	L1DVuln  float64
	FPRFVuln float64

	// IBR is the Input Bit Ratio per functional-unit structure
	// (IntAdder..FPMul indices; bit-array slots stay zero).
	IBR [NumStructures]float64

	// UnitUses counts operations executed on each structure's datapath.
	UnitUses [NumStructures]uint64
}

// Value returns the paper's coverage metric for the given structure:
// ACE vulnerability for IRF/L1D, IBR for the functional units.
func (s *Snapshot) Value(st Structure) float64 {
	switch st {
	case IRF:
		return s.IRFVuln
	case L1D:
		return s.L1DVuln
	case FPRF:
		return s.FPRFVuln
	default:
		return s.IBR[st]
	}
}

// Metric is a named objective function over a coverage snapshot: the
// fitness function of the Harpocrates loop. Any function of the snapshot
// qualifies (paper §IV-B: "any 'quality' metric can be used").
type Metric struct {
	Name  string
	Score func(*Snapshot) float64
}

// MetricFor returns the default coverage metric for a target structure.
func MetricFor(st Structure) Metric {
	return Metric{
		Name:  st.String() + "-coverage",
		Score: func(s *Snapshot) float64 { return s.Value(st) },
	}
}

// FUOf maps an instruction variant to the functional-unit structure whose
// arithmetic datapath it exercises, or ok=false for variants that drive
// none of the four modelled units. Only value-computing operations count:
// a MOV issued to an integer ALU port does not toggle the adder array.
func FUOf(v *isa.Variant) (Structure, bool) {
	switch v.Op {
	case isa.OpADD, isa.OpSUB, isa.OpADC, isa.OpSBB, isa.OpCMP,
		isa.OpINC, isa.OpDEC, isa.OpNEG,
		isa.OpXADD, isa.OpADCX, isa.OpADOX, isa.OpCMPXCHG:
		return IntAdder, true
	case isa.OpMUL, isa.OpIMUL, isa.OpIMULRR, isa.OpIMULRRI:
		return IntMul, true
	// Only the double-precision datapath operations count for the SSE FP
	// units: they are exactly the operations routed through the
	// gate-level unit models during fault campaigns, so IBR stays a
	// faithful proxy of fault-detecting utilization. (Single-precision
	// and compare operations execute on separate paths that the
	// injection target does not model.)
	case isa.OpADDSD, isa.OpSUBSD, isa.OpADDPD, isa.OpSUBPD:
		return FPAdd, true
	case isa.OpMULSD, isa.OpMULPD:
		return FPMul, true
	}
	return 0, false
}

// FUInputBits is the input datapath width (bits per use) of each
// functional-unit structure: two 64-bit operands.
const FUInputBits = 128

// SigBits returns the number of significant bits of a 64-bit operand
// pattern (position of the highest set bit). This is the "effective input
// bits" measure of IBR (paper footnote 5): a unit fed narrow values
// toggles fewer input bits.
func SigBits(v uint64) int { return 64 - bits.LeadingZeros64(v) }

// IBRCounter accumulates effective input bits for one functional unit.
type IBRCounter struct {
	EffBits uint64
	Uses    uint64
}

// OnUse records one use of the unit with two operand patterns.
func (c *IBRCounter) OnUse(a, b uint64) {
	c.EffBits += uint64(SigBits(a) + SigBits(b))
	c.Uses++
}

// Value computes IBR over a run of totalCycles: accumulated effective
// input bits divided by the theoretical maximum (full-width inputs every
// cycle).
func (c *IBRCounter) Value(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 0
	}
	return float64(c.EffBits) / (FUInputBits * float64(totalCycles))
}
