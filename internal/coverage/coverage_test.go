package coverage

import (
	"strings"
	"testing"

	"harpocrates/internal/isa"
)

func TestFUOfMapping(t *testing.T) {
	cases := []struct {
		op   isa.Op
		want Structure
		ok   bool
	}{
		{isa.OpADD, IntAdder, true},
		{isa.OpSBB, IntAdder, true},
		{isa.OpCMP, IntAdder, true},
		{isa.OpIMULRR, IntMul, true},
		{isa.OpMUL, IntMul, true},
		{isa.OpADDSD, FPAdd, true},
		{isa.OpSUBPD, FPAdd, true},
		{isa.OpMULSD, FPMul, true},
		{isa.OpMULPD, FPMul, true},
		{isa.OpADDSS, 0, false}, // single-precision path is not the injection target
		{isa.OpUCOMISD, 0, false},
		{isa.OpMINSD, 0, false},
		{isa.OpMOV, 0, false}, // moves do not toggle the adder array
		{isa.OpAND, 0, false},
		{isa.OpLEA, 0, false},
		{isa.OpPXOR, 0, false},
	}
	for _, c := range cases {
		ids := isa.ByOp(c.op)
		if len(ids) == 0 {
			t.Fatalf("no variants for op %d", c.op)
		}
		st, ok := FUOf(isa.Lookup(ids[0]))
		if ok != c.ok || (ok && st != c.want) {
			t.Errorf("FUOf(%v) = %v,%v, want %v,%v", isa.Lookup(ids[0]), st, ok, c.want, c.ok)
		}
	}
}

func TestSigBits(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {0xff, 8}, {1 << 63, 64}, {0x8000, 16},
	}
	for _, c := range cases {
		if got := SigBits(c.v); got != c.want {
			t.Errorf("SigBits(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestIBRCounter(t *testing.T) {
	var c IBRCounter
	c.OnUse(^uint64(0), ^uint64(0)) // 128 effective bits
	if v := c.Value(1); v != 1.0 {
		t.Fatalf("full-width use every cycle: IBR = %f, want 1", v)
	}
	if v := c.Value(10); v != 0.1 {
		t.Fatalf("one use in ten cycles: IBR = %f, want 0.1", v)
	}
}

func TestSnapshotValue(t *testing.T) {
	s := &Snapshot{IRFVuln: 0.25, L1DVuln: 0.5}
	s.IBR[IntAdder] = 0.1
	if s.Value(IRF) != 0.25 || s.Value(L1D) != 0.5 || s.Value(IntAdder) != 0.1 {
		t.Fatal("Value routing broken")
	}
}

func TestMetricFor(t *testing.T) {
	for st := Structure(0); st < NumStructures; st++ {
		m := MetricFor(st)
		if m.Name == "" || m.Score == nil {
			t.Fatalf("bad metric for %v", st)
		}
		s := &Snapshot{}
		if m.Score(s) != 0 {
			t.Fatalf("empty snapshot must score 0 for %v", st)
		}
	}
}

func TestStructureProperties(t *testing.T) {
	if IRF.IsFunctionalUnit() || L1D.IsFunctionalUnit() {
		t.Fatal("bit arrays flagged as functional units")
	}
	for st := IntAdder; st <= FPMul; st++ {
		if !st.IsFunctionalUnit() {
			t.Fatalf("%v not flagged as functional unit", st)
		}
	}
	for st := Decoder; st < NumStructures; st++ {
		if st.IsFunctionalUnit() {
			t.Fatalf("microarchitectural site %v flagged as functional unit", st)
		}
	}
}

// TestParseStructures: Parse must accept every canonical String() form
// case-insensitively, the documented command-line aliases, and reject
// unknown names with an error that lists the valid ones.
func TestParseStructures(t *testing.T) {
	for s := Structure(0); s < NumStructures; s++ {
		for _, name := range []string{s.String(), strings.ToUpper(s.String()), strings.ToLower(s.String())} {
			got, err := Parse(name)
			if err != nil || got != s {
				t.Fatalf("Parse(%q) = %v, %v; want %v", name, got, err, s)
			}
		}
	}
	aliases := map[string]Structure{
		"intadd": IntAdder, "adder": IntAdder, "intmul": IntMul, "multiplier": IntMul,
		"fpadd": FPAdd, "fpmul": FPMul,
		"dec": Decoder, "decode": Decoder, "bpred": Gshare, "bp": Gshare,
		"sq": LSQ, "storebuffer": LSQ, "rob": ROBMeta, "l2": L2Tags, "l2tag": L2Tags,
		"DEC": Decoder, "Bpred": Gshare, " rob ": ROBMeta,
	}
	for name, want := range aliases {
		got, err := Parse(name)
		if err != nil || got != want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := Parse("tlb")
	if err == nil {
		t.Fatal("unknown structure accepted")
	}
	for s := Structure(0); s < NumStructures; s++ {
		if !strings.Contains(err.Error(), s.String()) {
			t.Fatalf("error %q does not list valid name %q", err, s)
		}
	}
}
