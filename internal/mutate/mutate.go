// Package mutate implements MuSeqGen's program mutation engine (paper
// §V-B1). The engine operates on genotypes (variant sequences);
// re-materialization by the generator guarantees every mutant is valid
// assembly, because mutations "comply with ISA constraints" by
// construction.
//
// The paper's production strategy is ReplaceAll: replace every
// occurrence of one randomly selected instruction variant with another
// uniformly random variant. Point mutation and k-point crossover are
// provided for the mutation-strategy ablation.
package mutate

import (
	"math/rand/v2"

	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
)

// ReplaceAll returns a mutant in which all occurrences of one randomly
// chosen variant present in the sequence are replaced by a uniformly
// random *other* variant from the pool ("the same mnemonics with
// different operand types are handled as distinct instructions"). The
// paper replaces a variant with another variant (§V-B1), so the
// replacement is resampled until it differs from the target — a draw of
// repl == target would produce a no-op mutant that burns an evaluation
// slot without exploring anything. When the pool holds no variant
// distinct from the target (single-variant pools), the clone is
// returned unchanged rather than looping forever.
func ReplaceAll(g *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
	m := g.Clone()
	if len(m.Variants) == 0 {
		return m
	}
	target := m.Variants[rng.IntN(len(m.Variants))]
	repl := cfg.Allowed[rng.IntN(len(cfg.Allowed))]
	for repl == target {
		if !poolHasDistinct(cfg.Allowed, target) {
			return m
		}
		repl = cfg.Allowed[rng.IntN(len(cfg.Allowed))]
	}
	for i, v := range m.Variants {
		if v == target {
			m.Variants[i] = repl
		}
	}
	return m
}

// poolHasDistinct reports whether the pool offers any variant other
// than target (checked lazily, only after a colliding draw).
func poolHasDistinct(pool []isa.VariantID, target isa.VariantID) bool {
	for _, v := range pool {
		if v != target {
			return true
		}
	}
	return false
}

// Point returns a mutant with a single position replaced by a random
// pool variant.
func Point(g *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
	m := g.Clone()
	if len(m.Variants) == 0 {
		return m
	}
	m.Variants[rng.IntN(len(m.Variants))] = cfg.Allowed[rng.IntN(len(cfg.Allowed))]
	return m
}

// CrossoverK performs k-point crossover between two parents of equal
// length, returning one child (segments alternate between parents). The
// k cut points are distinct, so k < n always yields exactly k segment
// boundaries; k is clamped to the sequence length.
func CrossoverK(a, b *gen.Genotype, k int, rng *rand.Rand) *gen.Genotype {
	n := len(a.Variants)
	if len(b.Variants) != n {
		panic("mutate: crossover requires equal-length genotypes")
	}
	child := a.Clone()
	if n == 0 || k <= 0 {
		return child
	}
	if k > n {
		k = n
	}
	// Sample k *distinct* cut points (partial Fisher-Yates over the
	// index space). Sampling with replacement would let duplicate cuts
	// cancel — two toggles at the same index — silently degrading
	// k-point crossover to fewer cuts.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	isCut := make([]bool, n)
	for i := 0; i < k; i++ {
		j := i + rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		isCut[idx[i]] = true
	}
	// Walk the sequence, toggling the source parent at each cut.
	useB := false
	for i := 0; i < n; i++ {
		if isCut[i] {
			useB = !useB
		}
		if useB {
			child.Variants[i] = b.Variants[i]
		}
	}
	// The child inherits a fresh operand seed derived from both parents.
	child.Seed = a.Seed*0x9e3779b97f4a7c15 ^ b.Seed
	return child
}

// BlockSwap exchanges two non-overlapping, equal-length blocks of the
// variant sequence — a structure-preserving reordering: the mutant
// executes the same multiset of instruction variants in a different
// order, perturbing dependency chains and unit scheduling without
// changing pool usage. Sequences shorter than two variants are cloned
// unchanged.
func BlockSwap(g *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
	m := g.Clone()
	n := len(m.Variants)
	if n < 2 {
		return m
	}
	// Block length 1..n/2 biased short (uniform over 1..max(1,n/4)).
	bl := 1 + rng.IntN(max(1, n/4))
	if 2*bl > n {
		bl = n / 2
	}
	i := rng.IntN(n - 2*bl + 1)
	j := i + bl + rng.IntN(n-2*bl-i+1)
	for k := 0; k < bl; k++ {
		m.Variants[i+k], m.Variants[j+k] = m.Variants[j+k], m.Variants[i+k]
	}
	return m
}

// Splice copies one randomly chosen block of a donor genotype into the
// same positions of the child — block-level uniform crossover. The
// child takes a fresh operand seed mixed from both parents (the same
// SplitMix64 folding CrossoverK uses, offset so identical parent pairs
// decorrelate between the two operators), so splicing a genotype onto
// itself still explores the operand space. A donor of different length
// cannot be spliced positionally; the clone is returned with only the
// reseed applied.
func Splice(g, donor *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
	m := g.Clone()
	m.Seed = g.Seed*0x9e3779b97f4a7c15 ^ (donor.Seed + 0xd1b54a32d192ed03)
	n := len(m.Variants)
	if n == 0 || len(donor.Variants) != n {
		return m
	}
	bl := 1 + rng.IntN(max(1, n/2))
	i := rng.IntN(n - bl + 1)
	copy(m.Variants[i:i+bl], donor.Variants[i:i+bl])
	return m
}

// Distinct returns the distinct variant IDs present in a genotype (a
// small helper used by analyses and tests).
func Distinct(g *gen.Genotype) []isa.VariantID {
	seen := make(map[isa.VariantID]bool, 64)
	var out []isa.VariantID
	for _, v := range g.Variants {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
