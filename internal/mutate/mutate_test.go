package mutate

import (
	"math/rand/v2"
	"testing"

	"harpocrates/internal/gen"
)

func cfg() gen.Config {
	c := gen.DefaultConfig()
	c.NumInstrs = 400
	return c
}

func TestReplaceAllReplacesEveryOccurrence(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		g := gen.NewRandom(&c, rng)
		m := ReplaceAll(g, &c, rng)
		if len(m.Variants) != len(g.Variants) {
			t.Fatal("mutation changed program length")
		}
		// Find which variant was replaced (positions that differ).
		var removed, added int32 = -1, -1
		for i := range g.Variants {
			if g.Variants[i] != m.Variants[i] {
				if removed == -1 {
					removed = int32(g.Variants[i])
					added = int32(m.Variants[i])
				}
				if int32(g.Variants[i]) != removed || int32(m.Variants[i]) != added {
					t.Fatal("more than one variant class changed")
				}
			}
		}
		if removed == -1 {
			continue // replacement happened to equal the target
		}
		// Every original occurrence must be gone.
		for i, v := range m.Variants {
			if int32(v) == removed && int32(g.Variants[i]) == removed && removed != added {
				t.Fatal("an occurrence survived ReplaceAll")
			}
		}
	}
}

func TestReplaceAllProducesValidMutants(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(3, 4))
	g := gen.NewRandom(&c, rng)
	for i := 0; i < 30; i++ {
		g = ReplaceAll(g, &c, rng)
		p := gen.Materialize(g, &c)
		if _, _, err := p.GoldenRun(10 * c.NumInstrs); err != nil {
			t.Fatalf("mutant %d crashed: %v", i, err)
		}
	}
}

func TestReplaceAllDoesNotMutateParent(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(5, 6))
	g := gen.NewRandom(&c, rng)
	orig := g.Clone()
	_ = ReplaceAll(g, &c, rng)
	for i := range g.Variants {
		if g.Variants[i] != orig.Variants[i] {
			t.Fatal("parent genotype mutated in place")
		}
	}
}

func TestPointChangesAtMostOnePosition(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(7, 8))
	g := gen.NewRandom(&c, rng)
	m := Point(g, &c, rng)
	diff := 0
	for i := range g.Variants {
		if g.Variants[i] != m.Variants[i] {
			diff++
		}
	}
	if diff > 1 {
		t.Fatalf("point mutation changed %d positions", diff)
	}
}

func TestCrossoverChildMixesParents(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(9, 10))
	a := gen.NewRandom(&c, rng)
	b := gen.NewRandom(&c, rng)
	child := CrossoverK(a, b, 3, rng)
	fromA, fromB := 0, 0
	for i := range child.Variants {
		switch child.Variants[i] {
		case a.Variants[i]:
			fromA++
		case b.Variants[i]:
			fromB++
		default:
			t.Fatal("child position matches neither parent")
		}
	}
	if fromA == 0 || fromB == 0 {
		t.Skip("degenerate cut placement") // rare, acceptable
	}
}

func TestCrossoverMutantsValid(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(11, 12))
	a := gen.NewRandom(&c, rng)
	b := gen.NewRandom(&c, rng)
	for i := 0; i < 10; i++ {
		child := CrossoverK(a, b, 1+i%5, rng)
		p := gen.Materialize(child, &c)
		if _, _, err := p.GoldenRun(10 * c.NumInstrs); err != nil {
			t.Fatalf("crossover child crashed: %v", err)
		}
	}
}

func TestDistinct(t *testing.T) {
	c := cfg()
	g := &gen.Genotype{Variants: nil, Seed: 1}
	g.Variants = append(g.Variants, c.Allowed[0], c.Allowed[1], c.Allowed[0], c.Allowed[2])
	d := Distinct(g)
	if len(d) != 3 {
		t.Fatalf("distinct = %d, want 3", len(d))
	}
}
