package mutate

import (
	"math/rand/v2"
	"testing"

	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
)

func cfg() gen.Config {
	c := gen.DefaultConfig()
	c.NumInstrs = 400
	return c
}

func TestReplaceAllReplacesEveryOccurrence(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		g := gen.NewRandom(&c, rng)
		m := ReplaceAll(g, &c, rng)
		if len(m.Variants) != len(g.Variants) {
			t.Fatal("mutation changed program length")
		}
		// Find which variant was replaced (positions that differ).
		var removed, added int32 = -1, -1
		for i := range g.Variants {
			if g.Variants[i] != m.Variants[i] {
				if removed == -1 {
					removed = int32(g.Variants[i])
					added = int32(m.Variants[i])
				}
				if int32(g.Variants[i]) != removed || int32(m.Variants[i]) != added {
					t.Fatal("more than one variant class changed")
				}
			}
		}
		if removed == -1 {
			// The replacement is resampled until distinct from the
			// target, so every draw must change at least one position.
			t.Fatal("ReplaceAll produced a no-op mutant")
		}
		// Every original occurrence must be gone.
		for i, v := range m.Variants {
			if int32(v) == removed && int32(g.Variants[i]) == removed && removed != added {
				t.Fatal("an occurrence survived ReplaceAll")
			}
		}
	}
}

func TestReplaceAllProducesValidMutants(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(3, 4))
	g := gen.NewRandom(&c, rng)
	for i := 0; i < 30; i++ {
		g = ReplaceAll(g, &c, rng)
		p := gen.Materialize(g, &c)
		if _, _, err := p.GoldenRun(10 * c.NumInstrs); err != nil {
			t.Fatalf("mutant %d crashed: %v", i, err)
		}
	}
}

func TestReplaceAllDoesNotMutateParent(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(5, 6))
	g := gen.NewRandom(&c, rng)
	orig := g.Clone()
	_ = ReplaceAll(g, &c, rng)
	for i := range g.Variants {
		if g.Variants[i] != orig.Variants[i] {
			t.Fatal("parent genotype mutated in place")
		}
	}
}

func TestPointChangesAtMostOnePosition(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(7, 8))
	g := gen.NewRandom(&c, rng)
	m := Point(g, &c, rng)
	diff := 0
	for i := range g.Variants {
		if g.Variants[i] != m.Variants[i] {
			diff++
		}
	}
	if diff > 1 {
		t.Fatalf("point mutation changed %d positions", diff)
	}
}

func TestCrossoverChildMixesParents(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(9, 10))
	a := gen.NewRandom(&c, rng)
	b := gen.NewRandom(&c, rng)
	child := CrossoverK(a, b, 3, rng)
	fromA, fromB := 0, 0
	for i := range child.Variants {
		switch child.Variants[i] {
		case a.Variants[i]:
			fromA++
		case b.Variants[i]:
			fromB++
		default:
			t.Fatal("child position matches neither parent")
		}
	}
	if fromA == 0 || fromB == 0 {
		t.Skip("degenerate cut placement") // rare, acceptable
	}
}

func TestCrossoverMutantsValid(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(11, 12))
	a := gen.NewRandom(&c, rng)
	b := gen.NewRandom(&c, rng)
	for i := 0; i < 10; i++ {
		child := CrossoverK(a, b, 1+i%5, rng)
		p := gen.Materialize(child, &c)
		if _, _, err := p.GoldenRun(10 * c.NumInstrs); err != nil {
			t.Fatalf("crossover child crashed: %v", err)
		}
	}
}

func TestReplaceAllNeverNoOp(t *testing.T) {
	// Regression: the replacement used to be drawn uniformly from the
	// whole pool, so repl == target produced a no-op mutant that burned
	// an evaluation slot. With a 2-variant pool the collision rate was
	// ~50% per draw, so the pre-fix code fails this immediately.
	c := cfg()
	c.Allowed = c.Allowed[:2]
	c.NumInstrs = 50
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 500; trial++ {
		g := gen.NewRandom(&c, rng)
		m := ReplaceAll(g, &c, rng)
		same := true
		for i := range g.Variants {
			if g.Variants[i] != m.Variants[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("trial %d: ReplaceAll returned a no-op mutant", trial)
		}
	}
}

func TestReplaceAllSingleVariantPool(t *testing.T) {
	// A pool with one variant cannot offer a distinct replacement: the
	// mutant is the parent's clone, and the call must terminate.
	c := cfg()
	c.Allowed = c.Allowed[:1]
	c.NumInstrs = 20
	rng := rand.New(rand.NewPCG(15, 16))
	g := gen.NewRandom(&c, rng)
	m := ReplaceAll(g, &c, rng)
	for i := range g.Variants {
		if m.Variants[i] != g.Variants[i] {
			t.Fatal("single-variant pool produced a changed mutant")
		}
	}
}

func TestCrossoverKDistinctCuts(t *testing.T) {
	// Regression: cut points used to be sampled with replacement, so
	// duplicate cuts cancelled (two toggles at the same index) and
	// k-point crossover silently degraded to fewer cuts. With distinct
	// cuts, k < n must always produce exactly k segment boundaries.
	c := cfg()
	rng := rand.New(rand.NewPCG(17, 18))
	n := 8
	a := &gen.Genotype{Variants: make([]isa.VariantID, n), Seed: 1}
	b := &gen.Genotype{Variants: make([]isa.VariantID, n), Seed: 2}
	for i := 0; i < n; i++ {
		a.Variants[i] = c.Allowed[0]
		b.Variants[i] = c.Allowed[1]
	}
	for trial := 0; trial < 200; trial++ {
		k := 1 + trial%(n-1) // k in [1, n)
		child := CrossoverK(a, b, k, rng)
		// Count segment boundaries: positions where the source parent
		// changes, with the implicit source before position 0 being A.
		boundaries := 0
		prevB := false
		for i := 0; i < n; i++ {
			curB := child.Variants[i] == b.Variants[i]
			if curB != prevB {
				boundaries++
			}
			prevB = curB
		}
		if boundaries != k {
			t.Fatalf("trial %d: k=%d cuts produced %d segment boundaries", trial, k, boundaries)
		}
	}
}

func TestCrossoverKClampsToLength(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(19, 20))
	n := 4
	a := &gen.Genotype{Variants: make([]isa.VariantID, n), Seed: 1}
	b := &gen.Genotype{Variants: make([]isa.VariantID, n), Seed: 2}
	for i := 0; i < n; i++ {
		a.Variants[i] = c.Allowed[0]
		b.Variants[i] = c.Allowed[1]
	}
	child := CrossoverK(a, b, 100, rng) // k > n: every index is a cut
	for i := 0; i < n; i++ {
		want := b.Variants[i]
		if i%2 == 1 {
			want = a.Variants[i]
		}
		if child.Variants[i] != want {
			t.Fatalf("k=n crossover: position %d from wrong parent", i)
		}
	}
}

func TestDistinct(t *testing.T) {
	c := cfg()
	g := &gen.Genotype{Variants: nil, Seed: 1}
	g.Variants = append(g.Variants, c.Allowed[0], c.Allowed[1], c.Allowed[0], c.Allowed[2])
	d := Distinct(g)
	if len(d) != 3 {
		t.Fatalf("distinct = %d, want 3", len(d))
	}
}

func TestBlockSwapPreservesMultiset(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 200; trial++ {
		g := gen.NewRandom(&c, rng)
		m := BlockSwap(g, &c, rng)
		if len(m.Variants) != len(g.Variants) {
			t.Fatal("block swap changed program length")
		}
		// A block swap permutes positions: the variant multiset is
		// invariant.
		count := map[isa.VariantID]int{}
		for i := range g.Variants {
			count[g.Variants[i]]++
			count[m.Variants[i]]--
		}
		for v, n := range count {
			if n != 0 {
				t.Fatalf("variant %d multiset count off by %d after block swap", v, n)
			}
		}
	}
}

func TestBlockSwapMutantsValid(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(23, 24))
	g := gen.NewRandom(&c, rng)
	for i := 0; i < 20; i++ {
		g = BlockSwap(g, &c, rng)
		p := gen.Materialize(g, &c)
		if _, _, err := p.GoldenRun(10 * c.NumInstrs); err != nil {
			t.Fatalf("block-swap mutant %d crashed: %v", i, err)
		}
	}
}

func TestBlockSwapShortGenotype(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(25, 26))
	g := &gen.Genotype{Variants: []isa.VariantID{c.Allowed[0]}, Seed: 1}
	m := BlockSwap(g, &c, rng)
	if len(m.Variants) != 1 || m.Variants[0] != g.Variants[0] {
		t.Fatal("single-instruction block swap must be a clone")
	}
}

func TestSpliceCopiesDonorBlock(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(27, 28))
	for trial := 0; trial < 200; trial++ {
		g := gen.NewRandom(&c, rng)
		d := gen.NewRandom(&c, rng)
		m := Splice(g, d, &c, rng)
		if len(m.Variants) != len(g.Variants) {
			t.Fatal("splice changed program length")
		}
		// Every position comes from the parent or the donor, and the
		// donor-sourced positions form one contiguous block.
		for i := range m.Variants {
			if m.Variants[i] != g.Variants[i] && m.Variants[i] != d.Variants[i] {
				t.Fatal("splice position matches neither parent nor donor")
			}
		}
	}
}

func TestSpliceLengthMismatchGraceful(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(29, 30))
	g := gen.NewRandom(&c, rng)
	d := &gen.Genotype{Variants: g.Variants[:10], Seed: 7}
	m := Splice(g, d, &c, rng)
	if len(m.Variants) != len(g.Variants) {
		t.Fatal("mismatched splice changed program length")
	}
	for i := range m.Variants {
		if m.Variants[i] != g.Variants[i] {
			t.Fatal("mismatched splice must leave the parent's variants intact")
		}
	}
	if m.Seed == g.Seed {
		t.Fatal("splice must perturb the operand seed even on length mismatch")
	}
}

func TestSpliceMutantsValid(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewPCG(31, 32))
	g := gen.NewRandom(&c, rng)
	d := gen.NewRandom(&c, rng)
	for i := 0; i < 20; i++ {
		g = Splice(g, d, &c, rng)
		p := gen.Materialize(g, &c)
		if _, _, err := p.GoldenRun(10 * c.NumInstrs); err != nil {
			t.Fatalf("splice mutant %d crashed: %v", i, err)
		}
	}
}
