package silifuzz

import (
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/uarch"
)

func smallOptions() Options {
	o := DefaultOptions()
	o.Rounds = 4000
	o.TargetInstrs = 1500
	o.NumTests = 3
	return o
}

func TestFuzzerProducesRunnableTests(t *testing.T) {
	res := Run(smallOptions())
	if res.Stats.RawInputs != 4000 {
		t.Fatalf("raw inputs = %d", res.Stats.RawInputs)
	}
	if res.Stats.Runnable == 0 {
		t.Fatal("no runnable snapshots produced")
	}
	if len(res.Tests) == 0 {
		t.Fatal("no aggregated tests produced")
	}
	for _, p := range res.Tests {
		if len(p.Insts) < smallOptions().TargetInstrs/2 {
			t.Fatalf("%s too short: %d instructions", p.Name, len(p.Insts))
		}
		s := p.NewState()
		if _, err := arch.Run(p.Insts, s, 20*len(p.Insts)+10000); err != nil {
			t.Fatalf("aggregated test %s crashes: %v", p.Name, err)
		}
		if !p.Deterministic(20*len(p.Insts) + 10000) {
			t.Fatalf("aggregated test %s is nondeterministic", p.Name)
		}
	}
	t.Logf("stats: %+v", res.Stats)
}

func TestDiscardRateIsSubstantial(t *testing.T) {
	// Paper Fig. 8: "more than 2 out of 3 produced sequences being
	// eventually unusable" — our raw-byte mutation must likewise discard
	// a large share and keep a meaningful share.
	res := Run(smallOptions())
	frac := float64(res.Stats.Discarded) / float64(res.Stats.RawInputs)
	if frac < 0.25 || frac > 0.95 {
		t.Fatalf("discard rate %.2f outside plausible band", frac)
	}
	t.Logf("discard rate: %.2f (runnable %d / raw %d)",
		frac, res.Stats.Runnable, res.Stats.RawInputs)
}

func TestCoverageGrowsCorpus(t *testing.T) {
	res := Run(smallOptions())
	if res.Stats.CorpusSize <= 32 {
		t.Fatal("coverage feedback never retained an input")
	}
	if res.Stats.CoverageFeatures == 0 {
		t.Fatal("no coverage features recorded")
	}
}

func TestDeterministicSessions(t *testing.T) {
	a := Run(smallOptions())
	b := Run(smallOptions())
	if a.Stats.Runnable != b.Stats.Runnable || a.Stats.CorpusSize != b.Stats.CorpusSize {
		t.Fatal("identical seeds produced different sessions")
	}
	if len(a.Tests) != len(b.Tests) {
		t.Fatal("test counts differ")
	}
	for i := range a.Tests {
		if len(a.Tests[i].Insts) != len(b.Tests[i].Insts) {
			t.Fatal("aggregated tests differ")
		}
	}
}

func TestAggregatedTestsRunOnCore(t *testing.T) {
	res := Run(smallOptions())
	cfg := uarch.DefaultConfig()
	for _, p := range res.Tests {
		s := p.NewState()
		_, gerr := arch.Run(p.Insts, s, 20*len(p.Insts)+10000)
		if gerr != nil {
			t.Fatalf("%s: emulator crash %v", p.Name, gerr)
		}
		r := uarch.Run(p.Insts, p.NewState(), cfg)
		if r.Crash != nil || r.TimedOut {
			t.Fatalf("%s: core crash=%v timeout=%v", p.Name, r.Crash, r.TimedOut)
		}
		if r.Signature != s.Signature() {
			t.Fatalf("%s: core/emulator mismatch", p.Name)
		}
	}
}
