// Package silifuzz reimplements the SiliFuzz methodology (paper §III-A1)
// against the HX86 stack: a coverage-guided fuzzer mutates raw byte
// strings with no notion of the instruction encoding, runs them on a
// software proxy (the ISA decoder plus the functional emulator), and
// retains inputs that exercise new proxy coverage. Inputs are then
// filtered to valid, deterministic, non-crashing snapshots, and snapshots
// are aggregated into fixed-length test programs for SFI evaluation
// ("instructions from multiple snapshots are aggregated into a single
// 10K instruction test").
//
// Consistent with the paper's observation (Fig. 8), the majority of raw
// mutants are unusable: they fail to decode, fault on wild memory
// addresses, execute privileged or nondeterministic instructions, or
// hang. The usable part of an input is its longest clean deterministic
// prefix; inputs with an empty prefix are discarded.
//
// The corpus is seeded with both random bytes and a handful of encoded
// valid sequences (the corpus-bootstrapping role the published SiliFuzz
// corpus plays), which lets byte-level mutation discover memory-touching
// snapshots at a realistic rate.
package silifuzz

import (
	"fmt"
	"math/rand/v2"
	"time"

	"harpocrates/internal/arch"
	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
	"harpocrates/internal/stats"
)

// Options configures a fuzzing session.
type Options struct {
	Seed uint64
	// Rounds is the number of mutation/evaluation iterations.
	Rounds int
	// MaxInputBytes caps raw inputs (paper: "maximum of 100 bytes of
	// binary code each").
	MaxInputBytes int
	// TargetInstrs is the aggregated test length (paper: 10K).
	TargetInstrs int
	// NumTests is how many aggregated tests to build.
	NumTests int
	// SnapshotSteps bounds proxy execution per snapshot.
	SnapshotSteps int
}

// DefaultOptions returns a CI-scale configuration.
func DefaultOptions() Options {
	return Options{
		Seed:          1,
		Rounds:        30000,
		MaxInputBytes: 100,
		TargetInstrs:  10000,
		NumTests:      8,
		SnapshotSteps: 512,
	}
}

// Stats summarizes a session (drives the §VI-A generation-rate
// comparison).
type Stats struct {
	RawInputs        int
	Runnable         int // inputs with a non-empty clean prefix
	Discarded        int
	SnapshotInstrs   int // total runnable instructions across snapshots
	CorpusSize       int
	CoverageFeatures int
	Elapsed          time.Duration
}

// InstrsPerSecond returns the runnable-instruction production rate.
func (s *Stats) InstrsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.SnapshotInstrs) / s.Elapsed.Seconds()
}

// Result is the outcome of a fuzzing session.
type Result struct {
	Tests []*prog.Program
	Stats Stats
}

// proxyStack is the snapshot stack size (small enough to clone cheaply
// during aggregation).
const proxyStack = 64 * 1024

// proxyProgram builds the fixed snapshot execution environment: a 32 KB
// data page (matching the generator's layout so seeded valid sequences
// resolve) and a stack.
func proxyProgram(insts []isa.Inst) *prog.Program {
	p := &prog.Program{
		Name:  "silifuzz",
		Insts: insts,
		Regions: []prog.RegionSpec{
			{Name: "data", Base: prog.DataBase, Size: 32 * 1024, Writable: true},
			{Name: "stack", Base: prog.StackBase, Size: proxyStack, Writable: true},
		},
	}
	for r := 0; r < isa.NumGPR; r++ {
		p.InitGPR[r] = uint64(r) * 0x0101010101010101
	}
	p.InitGPR[isa.RSP] = prog.StackBase + proxyStack/2
	p.InitGPR[gen.BaseReg] = prog.DataBase
	return p
}

type fuzzer struct {
	o        Options
	rng      *rand.Rand
	corpus   [][]byte
	features map[uint64]struct{}
	snaps    [][]isa.Inst
	st       Stats
}

// Run executes a fuzzing session.
func Run(o Options) *Result {
	if o.Rounds <= 0 {
		o = DefaultOptions()
	}
	f := &fuzzer{
		o:        o,
		rng:      stats.Derive(o.Seed, 0),
		features: make(map[uint64]struct{}),
	}
	start := time.Now()
	f.seed()
	for round := 0; round < o.Rounds; round++ {
		input := f.mutate(f.corpus[f.rng.IntN(len(f.corpus))])
		f.evaluate(input)
	}
	f.st.Elapsed = time.Since(start)
	f.st.CorpusSize = len(f.corpus)
	f.st.CoverageFeatures = len(f.features)

	res := &Result{Stats: f.st}
	for i := 0; i < o.NumTests; i++ {
		if t := f.aggregate(i); t != nil {
			res.Tests = append(res.Tests, t)
		}
	}
	return res
}

// seed initializes the corpus with random bytes and encoded valid
// sequences.
func (f *fuzzer) seed() {
	for i := 0; i < 16; i++ {
		b := make([]byte, 8+f.rng.IntN(f.o.MaxInputBytes-8))
		for k := range b {
			b[k] = byte(f.rng.Uint32())
		}
		f.corpus = append(f.corpus, b)
	}
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 8
	for i := 0; i < 16; i++ {
		g := gen.NewRandom(&cfg, f.rng)
		p := gen.Materialize(g, &cfg)
		var buf []byte
		for _, in := range p.Insts {
			buf = isa.Encode(buf, in)
		}
		if len(buf) > f.o.MaxInputBytes {
			buf = buf[:f.o.MaxInputBytes]
		}
		f.corpus = append(f.corpus, buf)
	}
}

// mutate applies a random byte-level mutation (the raw-byte operations
// of Fig. 8: SiliFuzz has "no internal notion of x86 encoding").
func (f *fuzzer) mutate(in []byte) []byte {
	out := append([]byte(nil), in...)
	switch f.rng.IntN(5) {
	case 0: // bit flip
		if len(out) > 0 {
			i := f.rng.IntN(len(out))
			out[i] ^= 1 << f.rng.IntN(8)
		}
	case 1: // byte overwrite
		if len(out) > 0 {
			out[f.rng.IntN(len(out))] = byte(f.rng.Uint32())
		}
	case 2: // insert
		i := f.rng.IntN(len(out) + 1)
		out = append(out[:i], append([]byte{byte(f.rng.Uint32())}, out[i:]...)...)
	case 3: // delete
		if len(out) > 1 {
			i := f.rng.IntN(len(out))
			out = append(out[:i], out[i+1:]...)
		}
	case 4: // splice with another corpus entry
		other := f.corpus[f.rng.IntN(len(f.corpus))]
		if len(other) > 0 && len(out) > 0 {
			cut := f.rng.IntN(len(out))
			take := f.rng.IntN(len(other))
			out = append(out[:cut], other[take:]...)
		}
	}
	if len(out) > f.o.MaxInputBytes {
		out = out[:f.o.MaxInputBytes]
	}
	return out
}

// evaluate runs an input on the proxy, records coverage, and extracts
// the snapshot prefix.
func (f *fuzzer) evaluate(input []byte) {
	f.st.RawInputs++
	insts, _ := isa.DecodeAll(input)
	newCov := false
	record := func(feat uint64) {
		if _, ok := f.features[feat]; !ok {
			f.features[feat] = struct{}{}
			newCov = true
		}
	}
	prev := uint64(0)
	for _, in := range insts {
		record(1<<32 | uint64(in.V))
		record(2<<32 | prev<<16 | uint64(in.V))
		prev = uint64(in.V)
	}

	// Snapshot selection (paper §III-A1: "only the test inputs that are
	// non-crashing and deterministic are picked out"): the decodable
	// prefix is the candidate program (trailing undecodable bytes are
	// not part of the test); it must run to completion deterministically.
	if len(insts) > 0 && f.cleanRun(insts) {
		f.st.Runnable++
		f.st.SnapshotInstrs += len(insts)
		f.snaps = append(f.snaps, insts)
		record(3<<32 | uint64(len(insts)))
	} else {
		f.st.Discarded++
	}
	if newCov {
		f.corpus = append(f.corpus, input)
	}
}

func (f *fuzzer) cleanRun(insts []isa.Inst) bool {
	p := proxyProgram(insts)
	s1 := p.NewState()
	s1.NondetSalt = 1
	n1, e1 := arch.Run(insts, s1, f.o.SnapshotSteps)
	if e1 != nil {
		return false
	}
	s2 := p.NewState()
	s2.NondetSalt = 2
	n2, e2 := arch.Run(insts, s2, f.o.SnapshotSteps)
	return e2 == nil && n1 == n2 && s1.Signature() == s2.Signature()
}

// aggregate greedily concatenates snapshots into one test of about
// TargetInstrs instructions. Validation is incremental: the architectural
// end states (for two nondeterminism salts) are carried forward, and a
// candidate snapshot is accepted only if execution continues cleanly and
// deterministically through it — so the final aggregate is itself a
// runnable, deterministic program.
func (f *fuzzer) aggregate(idx int) *prog.Program {
	if len(f.snaps) == 0 {
		return nil
	}
	rng := stats.Derive(f.o.Seed^0x51f1, idx)
	var agg []isa.Inst
	base := proxyProgram(nil)
	s1 := base.NewState()
	s1.NondetSalt = 1
	s2 := base.NewState()
	s2.NondetSalt = 2

	budgetTries := 2 * f.o.TargetInstrs
	for len(agg) < f.o.TargetInstrs && budgetTries > 0 {
		budgetTries--
		snap := f.snaps[rng.IntN(len(f.snaps))]
		cand := append(append([]isa.Inst(nil), agg...), snap...)
		limit := 4*len(snap) + f.o.SnapshotSteps
		c1 := s1.Clone()
		c2 := s2.Clone()
		n1, e1 := arch.Run(cand, c1, limit)
		if e1 != nil {
			continue
		}
		n2, e2 := arch.Run(cand, c2, limit)
		if e2 != nil || n1 != n2 || c1.Signature() != c2.Signature() {
			continue
		}
		agg = cand
		s1, s2 = c1, c2
	}
	if len(agg) == 0 {
		return nil
	}
	p := proxyProgram(agg)
	p.Name = fmt.Sprintf("silifuzz/test-%d", idx)
	return p
}
