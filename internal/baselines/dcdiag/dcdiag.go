// Package dcdiag implements an OpenDCDiag-style test suite in HX86
// assembly (paper §III-A2): data-sensitive algorithmic kernels —
// compression, CRC, a block cipher, integer and floating-point matrix
// multiplication, a Jacobi SVD sweep, a memory pattern test and an
// arithmetic stress loop — where corruption of inputs or intermediate
// results is highly likely to corrupt the output.
package dcdiag

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"

	"harpocrates/internal/baselines/kasm"
	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
)

// Programs returns the full suite at the given scale.
func Programs(scale int) []*prog.Program {
	if scale < 1 {
		scale = 1
	}
	return []*prog.Program{
		Compress(scale),
		CRC32(scale),
		Cipher(scale),
		MxMInt(scale),
		MxMFP(scale),
		SVD(scale),
		Memtest(scale),
		Stress(scale),
	}
}

func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }

// Compress: run-length encoding of a run-rich byte buffer (the suite's
// zlib-style compression stand-in).
func Compress(scale int) *prog.Program {
	n := 1536 * scale
	rng := rand.New(rand.NewPCG(0xc0de, 1))
	data := make([]byte, n+2*n+16+64)
	for i := 0; i < n; {
		run := 1 + rng.IntN(40)
		v := byte(rng.Uint32())
		for k := 0; k < run && i < n; k++ {
			data[i] = v
			i++
		}
	}
	outOff := n
	lenOff := n + 2*n
	lenOff += (8 - lenOff%8) % 8

	b := kasm.New()
	b.MovRI(isa.RSI, 0) // in pos
	b.MovRI(isa.RDI, 0) // out pos
	b.Label("outer")
	b.LoadBZXIdx(isa.RAX, isa.R15, isa.RSI, 1, 0) // current byte
	b.MovRI(isa.RCX, 1)                           // run length
	b.Label("run")
	b.MovRR(isa.RBX, isa.RSI)
	b.AddRR(isa.RBX, isa.RCX)
	b.CmpRI(isa.RBX, int64(n))
	b.Jcc(isa.CondAE, "emit")
	b.LoadBZXIdx(isa.RDX, isa.R15, isa.RBX, 1, 0)
	b.CmpRR(isa.RDX, isa.RAX)
	b.Jcc(isa.CondNE, "emit")
	b.CmpRI(isa.RCX, 255)
	b.Jcc(isa.CondE, "emit")
	b.Inc(isa.RCX)
	b.Jmp("run")
	b.Label("emit")
	b.StoreBIdx(isa.R15, isa.RDI, 1, int32(outOff), isa.RCX)
	b.Inc(isa.RDI)
	b.StoreBIdx(isa.R15, isa.RDI, 1, int32(outOff), isa.RAX)
	b.Inc(isa.RDI)
	b.AddRR(isa.RSI, isa.RCX)
	b.CmpRI(isa.RSI, int64(n))
	b.Jcc(isa.CondB, "outer")
	b.Store(isa.R15, int32(lenOff), isa.RDI)
	return kasm.Kernel("dcdiag/compress", b.Build(), data)
}

// CRC32: bitwise CRC-32 (poly 0xEDB88320) over a buffer, one bit per
// iteration with a conditional-move poly fold.
func CRC32(scale int) *prog.Program {
	n := 768 * scale
	rng := rand.New(rand.NewPCG(0xcc32, 2))
	data := make([]byte, n+8+64)
	for i := 0; i < n; i++ {
		data[i] = byte(rng.Uint32())
	}
	b := kasm.New()
	b.MovRI(isa.R8, 0xffffffff) // crc
	b.MovRI(isa.R9, 0xedb88320) // poly
	b.MovRI(isa.RSI, 0)
	b.Label("byte")
	b.LoadBZXIdx(isa.RAX, isa.R15, isa.RSI, 1, 0)
	b.XorRR(isa.R8, isa.RAX)
	for k := 0; k < 8; k++ {
		b.MovRR(isa.RBX, isa.R8)
		b.ShrRI(isa.RBX, 1)
		b.MovRR(isa.RCX, isa.RBX)
		b.XorRR(isa.RCX, isa.R9) // shifted ^ poly
		b.I(kasm.Find(isa.OpBT, isa.W64, isa.KReg, isa.KImm), isa.RegOp(isa.R8), isa.ImmOp(0))
		b.CmovRR(isa.CondB, isa.RBX, isa.RCX) // CF set: take folded value
		b.MovRR(isa.R8, isa.RBX)
	}
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(n))
	b.Jcc(isa.CondNE, "byte")
	b.XorRI(isa.R8, -1)
	b.I(kasm.Find(isa.OpAND, isa.W64, isa.KReg, isa.KImm), isa.RegOp(isa.R8), isa.ImmOp(0xffffffff))
	b.Store(isa.R15, int32(n), isa.R8)
	return kasm.Kernel("dcdiag/crc32", b.Build(), data)
}

// Cipher: XTEA block encryption (32 rounds, 32-bit arithmetic).
func Cipher(scale int) *prog.Program {
	numBlocks := 24 * scale
	rng := rand.New(rand.NewPCG(0x7ea, 3))
	// layout: key[4] at 0, blocks (v0,v1 pairs) at 32.
	blkOff := 32
	data := make([]byte, blkOff+numBlocks*16+64)
	for i := 0; i < 4; i++ {
		putU64(data, i*8, uint64(rng.Uint32()))
	}
	for i := 0; i < numBlocks*2; i++ {
		putU64(data, blkOff+i*8, uint64(rng.Uint32()))
	}
	const mask32 = 0xffffffff
	const delta = 0x9e3779b9

	b := kasm.New()
	b.MovRI(isa.RSI, 0)
	b.Label("blk")
	b.MovRR(isa.RBX, isa.RSI)
	b.ShlRI(isa.RBX, 4)
	b.LoadIdx(isa.R8, isa.R15, isa.RBX, 1, int32(blkOff))   // v0
	b.LoadIdx(isa.R9, isa.R15, isa.RBX, 1, int32(blkOff+8)) // v1
	b.MovRI(isa.R10, 0)                                     // sum
	for round := 0; round < 32; round++ {
		// v0 += (((v1<<4) ^ (v1>>5)) + v1) ^ (sum + key[sum&3])
		b.MovRR(isa.RAX, isa.R9)
		b.ShlRI(isa.RAX, 4)
		b.AndRI(isa.RAX, mask32)
		b.MovRR(isa.RCX, isa.R9)
		b.ShrRI(isa.RCX, 5)
		b.XorRR(isa.RAX, isa.RCX)
		b.AddRR(isa.RAX, isa.R9)
		b.AndRI(isa.RAX, mask32)
		b.MovRR(isa.RCX, isa.R10)
		b.AndRI(isa.RCX, 3)
		b.LoadIdx(isa.RDX, isa.R15, isa.RCX, 8, 0) // key[sum&3]
		b.AddRR(isa.RDX, isa.R10)
		b.AndRI(isa.RDX, mask32)
		b.XorRR(isa.RAX, isa.RDX)
		b.AddRR(isa.R8, isa.RAX)
		b.AndRI(isa.R8, mask32)
		// sum += delta
		b.MovRI(isa.RAX, delta)
		b.AddRR(isa.R10, isa.RAX)
		b.AndRI(isa.R10, mask32)
		// v1 += (((v0<<4) ^ (v0>>5)) + v0) ^ (sum + key[(sum>>11)&3])
		b.MovRR(isa.RAX, isa.R8)
		b.ShlRI(isa.RAX, 4)
		b.AndRI(isa.RAX, mask32)
		b.MovRR(isa.RCX, isa.R8)
		b.ShrRI(isa.RCX, 5)
		b.XorRR(isa.RAX, isa.RCX)
		b.AddRR(isa.RAX, isa.R8)
		b.AndRI(isa.RAX, mask32)
		b.MovRR(isa.RCX, isa.R10)
		b.ShrRI(isa.RCX, 11)
		b.AndRI(isa.RCX, 3)
		b.LoadIdx(isa.RDX, isa.R15, isa.RCX, 8, 0)
		b.AddRR(isa.RDX, isa.R10)
		b.AndRI(isa.RDX, mask32)
		b.XorRR(isa.RAX, isa.RDX)
		b.AddRR(isa.R9, isa.RAX)
		b.AndRI(isa.R9, mask32)
	}
	b.StoreIdx(isa.R15, isa.RBX, 1, int32(blkOff), isa.R8)
	b.StoreIdx(isa.R15, isa.RBX, 1, int32(blkOff+8), isa.R9)
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(numBlocks))
	b.Jcc(isa.CondNE, "blk")
	return kasm.Kernel("dcdiag/cipher", b.Build(), data)
}

// MxMInt: integer matrix multiplication C = A x B (the suite's MxM test,
// integer flavour).
func MxMInt(scale int) *prog.Program {
	n := 12
	reps := scale
	rng := rand.New(rand.NewPCG(0x3a3a, 4))
	aOff, bOff, cOff := 0, n*n*8, 2*n*n*8
	data := make([]byte, 3*n*n*8+64)
	for i := 0; i < n*n; i++ {
		putU64(data, aOff+i*8, uint64(int64(rng.Uint32()%1000)-500))
		putU64(data, bOff+i*8, uint64(int64(rng.Uint32()%1000)-500))
	}
	b := kasm.New()
	b.MovRI(isa.R13, 0)
	b.Label("rep")
	b.MovRI(isa.RSI, 0) // i
	b.Label("iloop")
	b.MovRI(isa.RDI, 0) // j
	b.Label("jloop")
	b.MovRI(isa.RAX, 0) // acc
	b.MovRI(isa.RCX, 0) // k
	b.MovRR(isa.R10, isa.RSI)
	b.ImulRRI(isa.R10, isa.RSI, int64(n)) // i*n
	b.Label("kloop")
	b.MovRR(isa.RBX, isa.R10)
	b.AddRR(isa.RBX, isa.RCX)
	b.LoadIdx(isa.RDX, isa.R15, isa.RBX, 8, int32(aOff)) // A[i][k]
	b.MovRR(isa.RBX, isa.RCX)
	b.ImulRRI(isa.RBX, isa.RCX, int64(n))
	b.AddRR(isa.RBX, isa.RDI)
	b.LoadIdx(isa.R11, isa.R15, isa.RBX, 8, int32(bOff)) // B[k][j]
	b.ImulRR(isa.RDX, isa.R11)
	b.AddRR(isa.RAX, isa.RDX)
	b.Inc(isa.RCX)
	b.CmpRI(isa.RCX, int64(n))
	b.Jcc(isa.CondNE, "kloop")
	b.MovRR(isa.RBX, isa.R10)
	b.AddRR(isa.RBX, isa.RDI)
	b.StoreIdx(isa.R15, isa.RBX, 8, int32(cOff), isa.RAX)
	b.Inc(isa.RDI)
	b.CmpRI(isa.RDI, int64(n))
	b.Jcc(isa.CondNE, "jloop")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(n))
	b.Jcc(isa.CondNE, "iloop")
	b.Inc(isa.R13)
	b.CmpRI(isa.R13, int64(reps))
	b.Jcc(isa.CondNE, "rep")
	return kasm.Kernel("dcdiag/mxm-int", b.Build(), data)
}

// MxMFP: double-precision matrix multiplication (the suite's FP-heavy
// MxM flavour).
func MxMFP(scale int) *prog.Program {
	n := 10
	reps := scale
	rng := rand.New(rand.NewPCG(0xf9f9, 5))
	aOff, bOff, cOff := 0, n*n*8, 2*n*n*8
	data := make([]byte, 3*n*n*8+64)
	for i := 0; i < n*n; i++ {
		putU64(data, aOff+i*8, math.Float64bits(rng.Float64()*2-1))
		putU64(data, bOff+i*8, math.Float64bits(rng.Float64()*2-1))
	}
	b := kasm.New()
	b.MovRI(isa.R13, 0)
	b.Label("rep")
	b.MovRI(isa.RSI, 0)
	b.Label("iloop")
	b.MovRI(isa.RDI, 0)
	b.Label("jloop")
	b.XorRR(isa.RAX, isa.RAX)
	b.CvtSI2SD(0, isa.RAX) // acc = 0.0
	b.MovRI(isa.RCX, 0)
	b.MovRR(isa.R10, isa.RSI)
	b.ImulRRI(isa.R10, isa.RSI, int64(n))
	b.Label("kloop")
	b.MovRR(isa.RBX, isa.R10)
	b.AddRR(isa.RBX, isa.RCX)
	b.LoadSDIdx(1, isa.R15, isa.RBX, 8, int32(aOff))
	b.MovRR(isa.RBX, isa.RCX)
	b.ImulRRI(isa.RBX, isa.RCX, int64(n))
	b.AddRR(isa.RBX, isa.RDI)
	b.LoadSDIdx(2, isa.R15, isa.RBX, 8, int32(bOff))
	b.MulSD(1, 2)
	b.AddSD(0, 1)
	b.Inc(isa.RCX)
	b.CmpRI(isa.RCX, int64(n))
	b.Jcc(isa.CondNE, "kloop")
	b.MovRR(isa.RBX, isa.R10)
	b.AddRR(isa.RBX, isa.RDI)
	b.StoreSDIdx(isa.R15, isa.RBX, 8, int32(cOff), 0)
	b.Inc(isa.RDI)
	b.CmpRI(isa.RDI, int64(n))
	b.Jcc(isa.CondNE, "jloop")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(n))
	b.Jcc(isa.CondNE, "iloop")
	b.Inc(isa.R13)
	b.CmpRI(isa.R13, int64(reps))
	b.Jcc(isa.CondNE, "rep")
	return kasm.Kernel("dcdiag/mxm-fp", b.Build(), data)
}

// Stress: a mixed integer/FP arithmetic stress loop with data-dependent
// FP branches (dcdiag's arithmetic stress tests flavour).
func Stress(scale int) *prog.Program {
	iters := int64(1200 * scale)
	// layout: consts 1.0 and 1e-3 then two result slots.
	data := make([]byte, 64)
	putU64(data, 0, math.Float64bits(1.0))
	putU64(data, 8, math.Float64bits(1e-3))

	b := kasm.New()
	b.MovRI(isa.R8, 0x123456789)
	b.MovRI(isa.RSI, 0)
	b.LoadSD(0, isa.R15, 0) // x = 1.0
	b.LoadSD(3, isa.R15, 8) // eps
	b.Label("loop")
	// Integer mix.
	b.MovRR(isa.RAX, isa.R8)
	b.ImulRRI(isa.RAX, isa.R8, 6364136223846793005>>32) // golden-ratio-ish
	b.RorRI(isa.RAX, 13)
	b.AddRR(isa.R8, isa.RAX)
	// FP mix: x = x*1.0000xxx + eps; occasionally renormalize.
	b.CvtSI2SD(1, isa.RSI)
	b.MulSD(1, 3) // i * eps
	b.AddSD(0, 1)
	b.LoadSD(2, isa.R15, 0) // 1.0
	b.UcomiSD(0, 2)
	b.Jcc(isa.CondB, "small")
	b.SqrtSD(0, 0) // pull large values back
	b.Label("small")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, iters)
	b.Jcc(isa.CondNE, "loop")
	b.Store(isa.R15, 16, isa.R8)
	b.StoreSD(isa.R15, 24, 0)
	return kasm.Kernel("dcdiag/stress", b.Build(), data)
}

// label helper for generated per-pair labels.
func lbl(base string, p, q int) string { return fmt.Sprintf("%s_%d_%d", base, p, q) }
