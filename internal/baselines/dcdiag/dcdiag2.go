package dcdiag

import (
	"math"
	"math/rand/v2"

	"harpocrates/internal/baselines/kasm"
	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
)

// SVD: one-sided Jacobi rotation sweeps on a square matrix — the suite's
// singular-value-decomposition test and its most FP-intensive kernel
// (multiplies, divides and square roots on data-dependent paths).
func SVD(scale int) *prog.Program {
	const n = 6
	sweeps := 2 * scale
	rng := rand.New(rand.NewPCG(0x57d, 6))
	oneOff := int32(n * n * 8)
	data := make([]byte, n*n*8+16+64)
	for i := 0; i < n*n; i++ {
		putU64(data, i*8, math.Float64bits(rng.Float64()*4-2))
	}
	putU64(data, int(oneOff), math.Float64bits(1.0))
	putU64(data, int(oneOff)+8, math.Float64bits(0.0))

	at := func(i, j int) int32 { return int32((i*n + j) * 8) }

	b := kasm.New()
	b.LoadSD(10, isa.R15, oneOff)   // xmm10 = 1.0
	b.LoadSD(11, isa.R15, oneOff+8) // xmm11 = 0.0
	b.MovRI(isa.R13, 0)
	b.Label("sweep")
	for p := 0; p < n-1; p++ {
		for q := p + 1; q < n; q++ {
			skip := lbl("skip", p, q)
			neg := lbl("neg", p, q)
			tdone := lbl("tdone", p, q)
			// alpha, beta, gamma over column pair (p, q).
			b.MovSDxx(0, 11)
			b.MovSDxx(1, 11)
			b.MovSDxx(2, 11)
			for i := 0; i < n; i++ {
				b.LoadSD(3, isa.R15, at(i, p))
				b.LoadSD(4, isa.R15, at(i, q))
				b.MovSDxx(5, 3)
				b.MulSD(5, 3)
				b.AddSD(0, 5)
				b.MovSDxx(5, 4)
				b.MulSD(5, 4)
				b.AddSD(1, 5)
				b.MovSDxx(5, 3)
				b.MulSD(5, 4)
				b.AddSD(2, 5)
			}
			// Columns already orthogonal: skip.
			b.UcomiSD(2, 11)
			b.Jcc(isa.CondE, skip)
			// zeta = (beta - alpha) / (2 gamma)
			b.MovSDxx(9, 1)
			b.SubSD(9, 0)
			b.MovSDxx(5, 2)
			b.AddSD(5, 2)
			b.DivSD(9, 5)
			// t = sign(zeta) / (|zeta| + sqrt(1 + zeta^2))
			b.MovSDxx(5, 9)
			b.MulSD(5, 9)
			b.AddSD(5, 10)
			b.SqrtSD(5, 5)
			b.UcomiSD(9, 11)
			b.Jcc(isa.CondB, neg)
			b.AddSD(5, 9) // zeta + sqrt
			b.MovSDxx(6, 10)
			b.DivSD(6, 5)
			b.Jmp(tdone)
			b.Label(neg)
			b.MovSDxx(6, 9)
			b.SubSD(6, 5) // zeta - sqrt (negative)
			b.MovSDxx(3, 10)
			b.DivSD(3, 6)
			b.MovSDxx(6, 3)
			b.Label(tdone)
			// c = 1/sqrt(1+t^2); s = c*t
			b.MovSDxx(7, 6)
			b.MulSD(7, 6)
			b.AddSD(7, 10)
			b.SqrtSD(7, 7)
			b.MovSDxx(5, 10)
			b.DivSD(5, 7)
			b.MovSDxx(7, 5)
			b.MovSDxx(8, 7)
			b.MulSD(8, 6)
			// Rotate columns p and q.
			for i := 0; i < n; i++ {
				b.LoadSD(3, isa.R15, at(i, p))
				b.LoadSD(4, isa.R15, at(i, q))
				b.MovSDxx(5, 3)
				b.MulSD(5, 7) // c*ap
				b.MovSDxx(9, 4)
				b.MulSD(9, 8) // s*aq
				b.SubSD(5, 9)
				b.StoreSD(isa.R15, at(i, p), 5)
				b.MovSDxx(5, 3)
				b.MulSD(5, 8) // s*ap
				b.MovSDxx(9, 4)
				b.MulSD(9, 7) // c*aq
				b.AddSD(5, 9)
				b.StoreSD(isa.R15, at(i, q), 5)
			}
			b.Label(skip)
		}
	}
	b.Inc(isa.R13)
	b.CmpRI(isa.R13, int64(sweeps))
	b.Jcc(isa.CondNE, "sweep")
	return kasm.Kernel("dcdiag/svd", b.Build(), data)
}

// Memtest: address-dependent pattern write / read-back verification over
// a buffer (dcdiag's memory subsystem tests; heavy L1D exercise).
func Memtest(scale int) *prog.Program {
	words := 1024 * scale
	// layout: buffer, then mismatch counter.
	data := make([]byte, words*8+8+64)
	kMul := uint64(0x9e3779b97f4a7c15)

	b := kasm.New()
	b.MovRI(isa.R8, 0) // mismatch count
	for pass, pattern := range []int64{0, -1, 0x5555555555555555} {
		wl := lbl("w", pass, 0)
		rl := lbl("r", pass, 0)
		b.MovRI(isa.R9, int64(kMul)) // multiplier (movabs)
		b.MovRI(isa.R10, pattern)
		// Write pass.
		b.MovRI(isa.RSI, 0)
		b.Label(wl)
		b.MovRR(isa.RAX, isa.RSI)
		b.ImulRR(isa.RAX, isa.R9)
		b.XorRR(isa.RAX, isa.R10)
		b.StoreIdx(isa.R15, isa.RSI, 8, 0, isa.RAX)
		b.Inc(isa.RSI)
		b.CmpRI(isa.RSI, int64(words))
		b.Jcc(isa.CondNE, wl)
		// Read-back verify pass.
		b.MovRI(isa.RSI, 0)
		b.Label(rl)
		b.MovRR(isa.RAX, isa.RSI)
		b.ImulRR(isa.RAX, isa.R9)
		b.XorRR(isa.RAX, isa.R10)
		b.LoadIdx(isa.RBX, isa.R15, isa.RSI, 8, 0)
		b.MovRI(isa.RDX, 1)
		b.MovRI(isa.RCX, 0)
		b.CmpRR(isa.RBX, isa.RAX)
		b.CmovRR(isa.CondE, isa.RDX, isa.RCX) // 0 when equal
		b.AddRR(isa.R8, isa.RDX)
		b.Inc(isa.RSI)
		b.CmpRI(isa.RSI, int64(words))
		b.Jcc(isa.CondNE, rl)
	}
	b.Store(isa.R15, int32(words*8), isa.R8)
	return kasm.Kernel("dcdiag/memtest", b.Build(), data)
}
