package dcdiag

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

func runKernel(t *testing.T, p *prog.Program) []byte {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.NewState()
	if _, err := arch.Run(p.Insts, s, 200_000_000); err != nil {
		t.Fatalf("%s crashed: %v", p.Name, err)
	}
	return s.Mem.(*arch.Memory).Region("data").Data
}

func getU64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

func TestCompressRoundTrips(t *testing.T) {
	p := Compress(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	n := 1536
	outOff := n
	lenOff := n + 2*n
	lenOff += (8 - lenOff%8) % 8
	mem := runKernel(t, p)
	outLen := int(getU64(mem, lenOff))
	if outLen <= 0 || outLen >= 2*n {
		t.Fatalf("implausible compressed length %d", outLen)
	}
	// Decode the RLE stream and compare with the input.
	var dec []byte
	for i := 0; i < outLen; i += 2 {
		run := int(mem[outOff+i])
		v := mem[outOff+i+1]
		for k := 0; k < run; k++ {
			dec = append(dec, v)
		}
	}
	if len(dec) != n {
		t.Fatalf("decoded %d bytes, want %d", len(dec), n)
	}
	for i := range dec {
		if dec[i] != in[i] {
			t.Fatalf("decode mismatch at %d", i)
		}
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	p := CRC32(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	n := 768
	mem := runKernel(t, p)
	want := uint64(crc32.ChecksumIEEE(in[:n]))
	if got := getU64(mem, n); got != want {
		t.Fatalf("crc32 = %#x, want %#x", got, want)
	}
}

func TestCipherXTEA(t *testing.T) {
	p := Cipher(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	numBlocks := 24
	blkOff := 32
	var key [4]uint32
	for i := range key {
		key[i] = uint32(getU64(in, i*8))
	}
	mem := runKernel(t, p)
	for blk := 0; blk < numBlocks; blk++ {
		v0 := uint32(getU64(in, blkOff+blk*16))
		v1 := uint32(getU64(in, blkOff+blk*16+8))
		var sum uint32
		for r := 0; r < 32; r++ {
			v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum&3])
			sum += 0x9e3779b9
			v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum>>11)&3])
		}
		if uint32(getU64(mem, blkOff+blk*16)) != v0 || uint32(getU64(mem, blkOff+blk*16+8)) != v1 {
			t.Fatalf("xtea block %d mismatch", blk)
		}
	}
}

func TestMxMInt(t *testing.T) {
	p := MxMInt(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	n := 12
	mem := runKernel(t, p)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := int64(0)
			for k := 0; k < n; k++ {
				acc += int64(getU64(in, (i*n+k)*8)) * int64(getU64(in, n*n*8+(k*n+j)*8))
			}
			if got := int64(getU64(mem, 2*n*n*8+(i*n+j)*8)); got != acc {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, acc)
			}
		}
	}
}

func TestMxMFP(t *testing.T) {
	p := MxMFP(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	n := 10
	mem := runKernel(t, p)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < n; k++ {
				a := math.Float64frombits(getU64(in, (i*n+k)*8))
				bb := math.Float64frombits(getU64(in, n*n*8+(k*n+j)*8))
				acc += a * bb
			}
			got := math.Float64frombits(getU64(mem, 2*n*n*8+(i*n+j)*8))
			if got != acc {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, got, acc)
			}
		}
	}
}

func TestSVDOrthogonalizes(t *testing.T) {
	p := SVD(4) // extra sweeps for convergence
	const n = 6
	mem := runKernel(t, p)
	a := make([]float64, n*n)
	for i := range a {
		a[i] = math.Float64frombits(getU64(mem, i*8))
	}
	// After Jacobi sweeps, columns must be (nearly) pairwise orthogonal.
	for pCol := 0; pCol < n-1; pCol++ {
		for q := pCol + 1; q < n; q++ {
			dot, np, nq := 0.0, 0.0, 0.0
			for i := 0; i < n; i++ {
				dot += a[i*n+pCol] * a[i*n+q]
				np += a[i*n+pCol] * a[i*n+pCol]
				nq += a[i*n+q] * a[i*n+q]
			}
			cosang := math.Abs(dot) / math.Sqrt(np*nq)
			if cosang > 1e-6 {
				t.Fatalf("columns %d,%d not orthogonal after sweeps: cos=%g", pCol, q, cosang)
			}
		}
	}
}

func TestSVDPreservesFrobeniusNorm(t *testing.T) {
	p := SVD(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	const n = 6
	before := 0.0
	for i := 0; i < n*n; i++ {
		v := math.Float64frombits(getU64(in, i*8))
		before += v * v
	}
	mem := runKernel(t, p)
	after := 0.0
	for i := 0; i < n*n; i++ {
		v := math.Float64frombits(getU64(mem, i*8))
		after += v * v
	}
	if math.Abs(before-after) > 1e-9*before {
		t.Fatalf("rotations changed the Frobenius norm: %g -> %g", before, after)
	}
}

func TestMemtestFindsNoErrors(t *testing.T) {
	p := Memtest(1)
	words := 1024
	mem := runKernel(t, p)
	if got := getU64(mem, words*8); got != 0 {
		t.Fatalf("memtest reported %d mismatches on healthy memory", got)
	}
	// The buffer must hold the final pattern.
	const k = 0x9e3779b97f4a7c15
	for i := 0; i < words; i++ {
		want := uint64(i)*k ^ 0x5555555555555555
		if getU64(mem, i*8) != want {
			t.Fatalf("word %d = %#x, want %#x", i, getU64(mem, i*8), want)
		}
	}
}

func TestStressRuns(t *testing.T) {
	p := Stress(1)
	mem := runKernel(t, p)
	if getU64(mem, 16) == 0x123456789 {
		t.Fatal("integer accumulator unchanged")
	}
	x := math.Float64frombits(getU64(mem, 24))
	if math.IsNaN(x) || math.IsInf(x, 0) {
		t.Fatalf("fp accumulator degenerated: %g", x)
	}
}

func TestSuiteOnCore(t *testing.T) {
	cfg := uarch.DefaultConfig()
	for _, p := range Programs(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			s := p.NewState()
			if _, err := arch.Run(p.Insts, s, 200_000_000); err != nil {
				t.Fatalf("emulator: %v", err)
			}
			res := uarch.Run(p.Insts, p.NewState(), cfg)
			if res.Crash != nil || res.TimedOut {
				t.Fatalf("core failed: %v timeout=%v", res.Crash, res.TimedOut)
			}
			if res.Signature != s.Signature() {
				t.Fatal("core/emulator signature mismatch")
			}
			t.Logf("%s: %d instructions, %d cycles, IPC %.2f",
				p.Name, res.Instructions, res.Cycles,
				float64(res.Instructions)/float64(res.Cycles))
		})
	}
}

func TestSuiteDeterministic(t *testing.T) {
	for _, p := range Programs(1) {
		if !p.Deterministic(200_000_000) {
			t.Fatalf("%s is nondeterministic", p.Name)
		}
	}
}

func TestSuiteAtScale2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range Programs(2) {
		s := p.NewState()
		if _, err := arch.Run(p.Insts, s, 400_000_000); err != nil {
			t.Fatalf("%s at scale 2 crashed: %v", p.Name, err)
		}
	}
}
