package mibench

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// runKernel executes a kernel on the functional emulator and returns the
// final data region contents.
func runKernel(t *testing.T, p *prog.Program) []byte {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.NewState()
	if _, err := arch.Run(p.Insts, s, 100_000_000); err != nil {
		t.Fatalf("%s crashed: %v", p.Name, err)
	}
	return s.Mem.(*arch.Memory).Region("data").Data
}

func getU64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

func TestBasicmath(t *testing.T) {
	p := Basicmath(1)
	mem := runKernel(t, p)
	if got, want := getU64(mem, 0), basicmathRef(1); got != want {
		t.Fatalf("basicmath = %#x, want %#x", got, want)
	}
}

func TestBitcount(t *testing.T) {
	p := Bitcount(1)
	in := p.Regions[0].Data
	n := 256
	want := uint64(0)
	for i := 0; i < n; i++ {
		v := getU64(in, i*8)
		for v != 0 {
			v &= v - 1
			want++
		}
	}
	mem := runKernel(t, p)
	if got := getU64(mem, n*8); got != want {
		t.Fatalf("bitcount = %d, want %d", got, want)
	}
}

func TestQsortSorts(t *testing.T) {
	p := Qsort(1)
	in := p.Regions[0].Data
	n := 192
	want := make([]uint64, n)
	for i := range want {
		want[i] = getU64(in, i*8)
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	mem := runKernel(t, p)
	for i := 0; i < n; i++ {
		if got := getU64(mem, i*8); got != want[i] {
			t.Fatalf("qsort[%d] = %d, want %d", i, got, want[i])
		}
	}
}

func TestSusan(t *testing.T) {
	p := Susan(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	side := 32
	mem := runKernel(t, p)
	for y := 1; y < side-1; y++ {
		for x := 1; x < side-1; x++ {
			sum := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					sum += int(in[(y+dy)*side+(x+dx)])
				}
			}
			want := byte(sum >> 3)
			if got := mem[side*side+y*side+x]; got != want {
				t.Fatalf("susan(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestDCT(t *testing.T) {
	p := DCT(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	blocks := 4
	outBase := 512 + blocks*512
	mem := runKernel(t, p)
	coeff := func(k, j int) int64 { return int64(getU64(in, (k*8+j)*8)) }
	for blk := 0; blk < blocks; blk++ {
		base := 512 + blk*512
		for k := 0; k < 8; k++ {
			for c := 0; c < 8; c++ {
				acc := int64(0)
				for j := 0; j < 8; j++ {
					acc += coeff(k, j) * int64(getU64(in, base+(j*8+c)*8))
				}
				want := uint64(acc >> 3)
				if got := getU64(mem, outBase+blk*512+(k*8+c)*8); got != want {
					t.Fatalf("dct blk %d out[%d][%d] = %d, want %d", blk, k, c, got, want)
				}
			}
		}
	}
}

func TestDijkstra(t *testing.T) {
	p := Dijkstra(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	nodes := 16
	rounds := nodes
	const inf = uint64(1) << 40
	dist := make([]uint64, nodes)
	for v := 1; v < nodes; v++ {
		dist[v] = inf
	}
	for r := 0; r < rounds; r++ {
		for u := 0; u < nodes; u++ {
			du := dist[u]
			for v := 0; v < nodes; v++ {
				cand := du + getU64(in, (u*nodes+v)*8)
				if cand < dist[v] {
					dist[v] = cand
				}
			}
		}
	}
	mem := runKernel(t, p)
	for v := 0; v < nodes; v++ {
		if got := getU64(mem, nodes*nodes*8+v*8); got != dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got, dist[v])
		}
	}
}

func TestPatricia(t *testing.T) {
	p := Patricia(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	const nodes = 127
	numQ := 200
	qOff := nodes * 32
	resOff := qOff + numQ*8
	acc := uint64(0)
	for q := 0; q < numQ; q++ {
		key := getU64(in, qOff+q*8)
		idx := uint64(0)
		for idx != ^uint64(0) {
			base := int(idx) * 32
			nk := getU64(in, base)
			if key == nk {
				acc ^= getU64(in, base+24)
				break
			}
			if key > nk {
				idx = getU64(in, base+16)
			} else {
				idx = getU64(in, base+8)
			}
		}
	}
	mem := runKernel(t, p)
	if got := getU64(mem, resOff); got != acc {
		t.Fatalf("patricia acc = %#x, want %#x", got, acc)
	}
}

func TestStringsearch(t *testing.T) {
	p := Stringsearch(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	n := 1024
	pat := in[n : n+8]
	want := uint64(0)
	for pos := 0; pos < n-8; pos++ {
		match := true
		for k := 0; k < 8; k++ {
			if in[pos+k] != pat[k] {
				match = false
				break
			}
		}
		if match {
			want++
		}
	}
	if want == 0 {
		t.Fatal("test setup: no planted matches survive")
	}
	mem := runKernel(t, p)
	if got := getU64(mem, n+8); got != want {
		t.Fatalf("stringsearch = %d, want %d", got, want)
	}
}

func TestBlowfish(t *testing.T) {
	p := Blowfish(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	numBlocks := 24
	sOff := 18 * 8
	blkOff := sOff + 4*256*8
	pArr := make([]uint64, 18)
	for i := range pArr {
		pArr[i] = getU64(in, i*8)
	}
	sArr := make([]uint64, 4*256)
	for i := range sArr {
		sArr[i] = getU64(in, sOff+i*8)
	}
	mem := runKernel(t, p)
	for blk := 0; blk < numBlocks; blk++ {
		l := getU64(in, blkOff+blk*16)
		r := getU64(in, blkOff+blk*16+8)
		for round := 0; round < 16; round++ {
			l ^= pArr[round]
			r ^= blowfishF(pArr, sArr, l)
			l, r = r, l
		}
		r ^= pArr[16]
		l ^= pArr[17]
		if getU64(mem, blkOff+blk*16) != l || getU64(mem, blkOff+blk*16+8) != r {
			t.Fatalf("blowfish block %d mismatch", blk)
		}
	}
}

func TestSHA(t *testing.T) {
	p := SHA(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	numBlocks := 3
	blkOff := 128
	digOff := blkOff + numBlocks*16*8
	a, b, c, d, e := uint64(0x67452301), uint64(0xefcdab89), uint64(0x98badcfe), uint64(0x10325476), uint64(0xc3d2e1f0)
	rol := func(x uint64, n uint) uint64 { return (x<<n | x>>(32-n)) & 0xffffffff }
	for blk := 0; blk < numBlocks; blk++ {
		var w [16]uint64
		for i := 0; i < 16; i++ {
			w[i] = getU64(in, blkOff+(blk*16+i)*8)
		}
		for i := 0; i < 80; i++ {
			var wi uint64
			if i >= 16 {
				wi = rol(w[(i+13)%16]^w[(i+8)%16]^w[(i+2)%16]^w[i%16], 1)
				w[i%16] = wi
			} else {
				wi = w[i]
			}
			var f, k uint64
			switch {
			case i < 20:
				f = (b & c) | (^b & d)
				k = 0x5a827999
			case i < 40:
				f = b ^ c ^ d
				k = 0x6ed9eba1
			case i < 60:
				f = (b & c) | (b & d) | (c & d)
				k = 0x8f1bbcdc
			default:
				f = b ^ c ^ d
				k = 0xca62c1d6
			}
			// NOTE: the kernel's ^b is a 64-bit NOT; the AND with d (a
			// 32-bit value) discards the high garbage, matching Go's ^b
			// over 64 bits ANDed with d.
			tmp := (rol(a, 5) + f + e + k + wi) & 0xffffffff
			e, d, c, b, a = d, c, rol(b, 30), a, tmp
		}
	}
	mem := runKernel(t, p)
	got := []uint64{getU64(mem, digOff), getU64(mem, digOff+8), getU64(mem, digOff+16), getU64(mem, digOff+24), getU64(mem, digOff+32)}
	want := []uint64{a, b, c, d, e}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sha digest[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestADPCM(t *testing.T) {
	p := ADPCM(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	n := 512
	idxOff := 89 * 8
	nibOff := idxOff + 16*8
	outOff := nibOff + n
	if rem := outOff % 8; rem != 0 {
		outOff += 8 - rem
	}
	step := make([]uint64, 89)
	for i := range step {
		step[i] = getU64(in, i*8)
	}
	idxTab := make([]int64, 16)
	for i := range idxTab {
		idxTab[i] = int64(getU64(in, idxOff+i*8))
	}
	pred := uint64(0)
	index := int64(0)
	mem := runKernel(t, p)
	for i := 0; i < n; i++ {
		nib := uint64(in[nibOff+i])
		st := step[index]
		diff := st >> 3
		if nib&4 != 0 {
			diff += st
		}
		if nib&2 != 0 {
			diff += st >> 1
		}
		if nib&1 != 0 {
			diff += st >> 2
		}
		if nib&8 != 0 {
			pred -= diff
		} else {
			pred += diff
		}
		index += idxTab[nib]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		if got := getU64(mem, outOff+i*8); got != pred {
			t.Fatalf("adpcm sample %d = %#x, want %#x", i, got, pred)
		}
	}
}

func TestFFT(t *testing.T) {
	p := FFT(1)
	in := append([]byte(nil), p.Regions[0].Data...)
	const n = 32
	x := make([]float64, n)
	cosT := make([]float64, n)
	sinT := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = math.Float64frombits(getU64(in, i*8))
		cosT[i] = math.Float64frombits(getU64(in, n*8+i*8))
		sinT[i] = math.Float64frombits(getU64(in, 2*n*8+i*8))
	}
	mem := runKernel(t, p)
	for k := 0; k < n; k++ {
		re, im := 0.0, 0.0
		for j := 0; j < n; j++ {
			idx := (k * j) & (n - 1)
			re += x[j] * cosT[idx]
			im -= x[j] * sinT[idx]
		}
		gotRe := math.Float64frombits(getU64(mem, 3*n*8+k*8))
		gotIm := math.Float64frombits(getU64(mem, 4*n*8+k*8))
		if gotRe != re || gotIm != im {
			t.Fatalf("fft[%d] = (%g, %g), want (%g, %g)", k, gotRe, gotIm, re, im)
		}
	}
}

// All twelve kernels must also run identically on the out-of-order core.
func TestKernelsOnCore(t *testing.T) {
	cfg := uarch.DefaultConfig()
	for _, p := range Programs(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			s := p.NewState()
			if _, err := arch.Run(p.Insts, s, 100_000_000); err != nil {
				t.Fatalf("emulator: %v", err)
			}
			res := uarch.Run(p.Insts, p.NewState(), cfg)
			if res.Crash != nil || res.TimedOut {
				t.Fatalf("core failed: %v timeout=%v", res.Crash, res.TimedOut)
			}
			if res.Signature != s.Signature() {
				t.Fatal("core/emulator signature mismatch")
			}
			if res.Branches == 0 {
				t.Fatal("kernel committed no branches")
			}
			t.Logf("%s: %d instructions, %d cycles, IPC %.2f, %d mispredicts",
				p.Name, res.Instructions, res.Cycles,
				float64(res.Instructions)/float64(res.Cycles), res.Mispredicts)
		})
	}
}

func TestProgramsDeterministic(t *testing.T) {
	for _, p := range Programs(1) {
		if !p.Deterministic(100_000_000) {
			t.Fatalf("%s is nondeterministic", p.Name)
		}
	}
}

// Larger scales must still run cleanly and deterministically (their Go
// references are pinned to scale 1; behavioural checks suffice here).
func TestKernelsAtScale2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range Programs(2) {
		s := p.NewState()
		if _, err := arch.Run(p.Insts, s, 400_000_000); err != nil {
			t.Fatalf("%s at scale 2 crashed: %v", p.Name, err)
		}
		if !p.Deterministic(400_000_000) {
			t.Fatalf("%s at scale 2 nondeterministic", p.Name)
		}
	}
}
