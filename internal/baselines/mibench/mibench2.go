package mibench

import (
	"math"
	"math/rand/v2"

	"harpocrates/internal/baselines/kasm"
	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
)

// Patricia: pointer-chasing lookups over a binary search tree stored as
// node records (the suite's patricia-trie routing-table workload).
func Patricia(scale int) *prog.Program {
	const nodes = 127 // perfectly balanced over sorted keys
	numQ := 200 * scale
	rng := rand.New(rand.NewPCG(0x9a7, 6))

	keys := make([]uint64, nodes)
	seen := map[uint64]bool{}
	for i := range keys {
		k := rng.Uint64() >> 8
		for seen[k] {
			k = rng.Uint64() >> 8
		}
		seen[k] = true
		keys[i] = k
	}
	// Sort keys (insertion sort; n is tiny).
	for i := 1; i < nodes; i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	// Build a balanced BST: node records {key, left, right, value},
	// 32 bytes each; index -1 encodes nil. Node 0 is the root.
	type node struct{ key, left, right, value uint64 }
	recs := make([]node, 0, nodes)
	var build func(lo, hi int) int64
	build = func(lo, hi int) int64 {
		if lo > hi {
			return -1
		}
		mid := (lo + hi) / 2
		idx := len(recs)
		recs = append(recs, node{key: keys[mid], value: keys[mid] * 0x9e3779b97f4a7c15})
		l := build(lo, mid-1)
		r := build(mid+1, hi)
		recs[idx].left = uint64(l)
		recs[idx].right = uint64(r)
		return int64(idx)
	}
	build(0, nodes-1)

	qOff := nodes * 32
	resOff := qOff + numQ*8
	data := make([]byte, resOff+64)
	for i, r := range recs {
		putU64(data, i*32, r.key)
		putU64(data, i*32+8, r.left)
		putU64(data, i*32+16, r.right)
		putU64(data, i*32+24, r.value)
	}
	for i := 0; i < numQ; i++ {
		if rng.IntN(2) == 0 {
			putU64(data, qOff+i*8, keys[rng.IntN(nodes)]) // hit
		} else {
			putU64(data, qOff+i*8, rng.Uint64()>>8) // likely miss
		}
	}

	b := kasm.New()
	b.MovRI(isa.R8, 0)  // acc
	b.MovRI(isa.RSI, 0) // query index
	b.Label("qloop")
	b.LoadIdx(isa.RAX, isa.R15, isa.RSI, 8, int32(qOff))
	b.MovRI(isa.RDI, 0) // node index (root)
	b.Label("walk")
	b.CmpRI(isa.RDI, -1)
	b.Jcc(isa.CondE, "nextq")
	b.MovRR(isa.RBX, isa.RDI)
	b.ShlRI(isa.RBX, 5)                        // node byte offset
	b.LoadIdx(isa.RCX, isa.R15, isa.RBX, 1, 0) // node key
	b.CmpRR(isa.RAX, isa.RCX)
	b.Jcc(isa.CondE, "found")
	b.MovRI(isa.RDX, 8) // left child offset
	b.MovRI(isa.R9, 16) // right child offset
	b.CmovRR(isa.CondA, isa.RDX, isa.R9)
	b.AddRR(isa.RBX, isa.RDX)
	b.LoadIdx(isa.RDI, isa.R15, isa.RBX, 1, 0)
	b.Jmp("walk")
	b.Label("found")
	b.LoadIdx(isa.RDX, isa.R15, isa.RBX, 1, 24)
	b.XorRR(isa.R8, isa.RDX)
	b.Label("nextq")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(numQ))
	b.Jcc(isa.CondNE, "qloop")
	b.Store(isa.R15, int32(resOff), isa.R8)
	return kasm.Kernel("mibench/patricia", b.Build(), data)
}

// Stringsearch: naive substring search counting occurrences of an 8-byte
// pattern in a text buffer.
func Stringsearch(scale int) *prog.Program {
	n := 1024 * scale
	rng := rand.New(rand.NewPCG(0x57a7, 7))
	pattern := []byte("HARPOCRA")
	data := make([]byte, n+len(pattern)+8+64)
	for i := 0; i < n; i++ {
		data[i] = byte('a' + rng.IntN(26))
	}
	// Plant a handful of matches.
	for i := 0; i < 5; i++ {
		copy(data[rng.IntN(n-8):], pattern)
	}
	patOff := n
	resOff := n + len(pattern)
	copy(data[patOff:], pattern)

	b := kasm.New()
	b.MovRI(isa.R8, 0)  // match count
	b.MovRI(isa.RSI, 0) // position
	b.Label("pos")
	b.MovRI(isa.RDI, 0) // k
	b.Label("cmp")
	b.MovRR(isa.RBX, isa.RSI)
	b.AddRR(isa.RBX, isa.RDI)
	b.LoadBZXIdx(isa.RAX, isa.R15, isa.RBX, 1, 0)
	b.LoadBZXIdx(isa.RCX, isa.R15, isa.RDI, 1, int32(patOff))
	b.CmpRR(isa.RAX, isa.RCX)
	b.Jcc(isa.CondNE, "miss")
	b.Inc(isa.RDI)
	b.CmpRI(isa.RDI, int64(len(pattern)))
	b.Jcc(isa.CondNE, "cmp")
	b.Inc(isa.R8) // full match
	b.Label("miss")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(n-len(pattern)))
	b.Jcc(isa.CondNE, "pos")
	b.Store(isa.R15, int32(resOff), isa.R8)
	return kasm.Kernel("mibench/stringsearch", b.Build(), data)
}

// Blowfish: a 16-round Feistel cipher with four 256-entry S-boxes and a
// P-array (blowfish_encrypt's structure; 32-bit arithmetic emulated with
// masked 64-bit operations).
func Blowfish(scale int) *prog.Program {
	numBlocks := 24 * scale
	rng := rand.New(rand.NewPCG(0xb10f, 8))
	// layout: P[18] at 0, S[4][256] at 144, blocks (L,R pairs) after.
	sOff := 18 * 8
	blkOff := sOff + 4*256*8
	data := make([]byte, blkOff+numBlocks*16+64)
	for i := 0; i < 18; i++ {
		putU64(data, i*8, uint64(rng.Uint32()))
	}
	for i := 0; i < 4*256; i++ {
		putU64(data, sOff+i*8, uint64(rng.Uint32()))
	}
	for i := 0; i < numBlocks*2; i++ {
		putU64(data, blkOff+i*8, uint64(rng.Uint32()))
	}

	const mask32 = 0xffffffff
	b := kasm.New()
	b.MovRI(isa.RSI, 0) // block index
	b.Label("blk")
	b.MovRR(isa.RBX, isa.RSI)
	b.ShlRI(isa.RBX, 4)                                     // block byte offset
	b.LoadIdx(isa.R8, isa.R15, isa.RBX, 1, int32(blkOff))   // L
	b.LoadIdx(isa.R9, isa.R15, isa.RBX, 1, int32(blkOff+8)) // R
	for r := 0; r < 16; r++ {
		// L ^= P[r]
		b.Load(isa.RAX, isa.R15, int32(r*8))
		b.XorRR(isa.R8, isa.RAX)
		// F(L): split bytes a,b,c,d
		b.MovRR(isa.RAX, isa.R8)
		b.ShrRI(isa.RAX, 24)
		b.AndRI(isa.RAX, 0xff)
		b.LoadIdx(isa.RDX, isa.R15, isa.RAX, 8, int32(sOff)) // S0[a]
		b.MovRR(isa.RAX, isa.R8)
		b.ShrRI(isa.RAX, 16)
		b.AndRI(isa.RAX, 0xff)
		b.AddRMIdx(isa.RDX, isa.R15, isa.RAX, 8, int32(sOff+256*8)) // + S1[b]
		b.AndRI(isa.RDX, mask32)
		b.MovRR(isa.RAX, isa.R8)
		b.ShrRI(isa.RAX, 8)
		b.AndRI(isa.RAX, 0xff)
		b.LoadIdx(isa.RCX, isa.R15, isa.RAX, 8, int32(sOff+512*8)) // S2[c]
		b.XorRR(isa.RDX, isa.RCX)
		b.MovRR(isa.RAX, isa.R8)
		b.AndRI(isa.RAX, 0xff)
		b.AddRMIdx(isa.RDX, isa.R15, isa.RAX, 8, int32(sOff+768*8)) // + S3[d]
		b.AndRI(isa.RDX, mask32)
		// R ^= F; swap
		b.XorRR(isa.R9, isa.RDX)
		b.MovRR(isa.RAX, isa.R8)
		b.MovRR(isa.R8, isa.R9)
		b.MovRR(isa.R9, isa.RAX)
	}
	// Final P mixing: R ^= P[16], L ^= P[17].
	b.Load(isa.RAX, isa.R15, 16*8)
	b.XorRR(isa.R9, isa.RAX)
	b.Load(isa.RAX, isa.R15, 17*8)
	b.XorRR(isa.R8, isa.RAX)
	b.StoreIdx(isa.R15, isa.RBX, 1, int32(blkOff), isa.R8)
	b.StoreIdx(isa.R15, isa.RBX, 1, int32(blkOff+8), isa.R9)
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(numBlocks))
	b.Jcc(isa.CondNE, "blk")
	return kasm.Kernel("mibench/blowfish", b.Build(), data)
}

// blowfishRef mirrors the kernel for verification.
func blowfishF(p, s []uint64, l uint64) uint64 {
	a := l >> 24 & 0xff
	bb := l >> 16 & 0xff
	c := l >> 8 & 0xff
	d := l & 0xff
	f := (s[a] + s[256+bb]) & 0xffffffff
	f ^= s[512+c]
	f = (f + s[768+d]) & 0xffffffff
	return f
}

// SHA: SHA-1-style 80-round compression over 512-bit blocks (32-bit
// arithmetic with rotates, the suite's sha workload).
func SHA(scale int) *prog.Program {
	numBlocks := 3 * scale
	rng := rand.New(rand.NewPCG(0x5a1, 9))
	// layout: w[16] scratch at 0, blocks at 128 (one 32-bit word per
	// 8-byte slot), digest (5 words) after.
	blkOff := 128
	digOff := blkOff + numBlocks*16*8
	data := make([]byte, digOff+5*8+64)
	for i := 0; i < numBlocks*16; i++ {
		putU64(data, blkOff+i*8, uint64(rng.Uint32()))
	}

	const mask32 = 0xffffffff
	vNot := kasm.Find(isa.OpNOT, isa.W64, isa.KReg)
	vXorRM := kasm.Find(isa.OpXOR, isa.W64, isa.KReg, isa.KMem)

	b := kasm.New()
	// emitRol32 rotates a 32-bit value held zero-extended in dst.
	emitRol32 := func(dst, tmp isa.Reg, n int64) {
		b.MovRR(tmp, dst)
		b.ShlRI(tmp, n)
		b.ShrRI(dst, 32-n)
		b.OrRR(dst, tmp)
		b.AndRI(dst, mask32)
	}
	// a..e in R8..R12 (64-bit MovRI emits movabs for wide constants).
	b.MovRI(isa.R8, 0x67452301)
	b.MovRI(isa.R9, 0xefcdab89)
	b.MovRI(isa.R10, 0x98badcfe)
	b.MovRI(isa.R11, 0x10325476)
	b.MovRI(isa.R12, 0xc3d2e1f0)

	b.MovRI(isa.R13, 0) // block counter
	b.Label("blk")
	// Load the block's 16 words into the w[] scratch area.
	b.MovRR(isa.RBX, isa.R13)
	b.ShlRI(isa.RBX, 4) // block word offset (16 words per block)
	b.MovRI(isa.RSI, 0)
	b.Label("ldw")
	b.MovRR(isa.RCX, isa.RBX)
	b.AddRR(isa.RCX, isa.RSI)
	b.LoadIdx(isa.RAX, isa.R15, isa.RCX, 8, int32(blkOff))
	b.StoreIdx(isa.R15, isa.RSI, 8, 0, isa.RAX)
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, 16)
	b.Jcc(isa.CondNE, "ldw")

	for i := 0; i < 80; i++ {
		if i >= 16 {
			// w[i%16] = rol1(w[(i+13)%16] ^ w[(i+8)%16] ^ w[(i+2)%16] ^ w[i%16])
			b.Load(isa.RAX, isa.R15, int32((i+13)%16*8))
			b.I(vXorRM, isa.RegOp(isa.RAX), isa.MemOp(isa.R15, int32((i+8)%16*8)))
			b.I(vXorRM, isa.RegOp(isa.RAX), isa.MemOp(isa.R15, int32((i+2)%16*8)))
			b.I(vXorRM, isa.RegOp(isa.RAX), isa.MemOp(isa.R15, int32(i%16*8)))
			emitRol32(isa.RAX, isa.RDX, 1)
			b.Store(isa.R15, int32(i%16*8), isa.RAX)
		} else {
			b.Load(isa.RAX, isa.R15, int32(i*8))
		}
		// Round function f and constant k by phase.
		var k int64
		switch {
		case i < 20:
			k = 0x5a827999
			// f = (b & c) | (^b & d)
			b.MovRR(isa.RCX, isa.R9)
			b.AndRR(isa.RCX, isa.R10)
			b.MovRR(isa.RDX, isa.R9)
			b.I(vNot, isa.RegOp(isa.RDX))
			b.AndRR(isa.RDX, isa.R11)
			b.OrRR(isa.RCX, isa.RDX)
		case i < 40:
			k = 0x6ed9eba1
			b.MovRR(isa.RCX, isa.R9)
			b.XorRR(isa.RCX, isa.R10)
			b.XorRR(isa.RCX, isa.R11)
		case i < 60:
			k = 0x8f1bbcdc
			// f = (b&c) | (b&d) | (c&d)
			b.MovRR(isa.RCX, isa.R9)
			b.AndRR(isa.RCX, isa.R10)
			b.MovRR(isa.RDX, isa.R9)
			b.AndRR(isa.RDX, isa.R11)
			b.OrRR(isa.RCX, isa.RDX)
			b.MovRR(isa.RDX, isa.R10)
			b.AndRR(isa.RDX, isa.R11)
			b.OrRR(isa.RCX, isa.RDX)
		default:
			k = 0xca62c1d6
			b.MovRR(isa.RCX, isa.R9)
			b.XorRR(isa.RCX, isa.R10)
			b.XorRR(isa.RCX, isa.R11)
		}
		// tmp = rol5(a) + f + e + k + w
		b.MovRR(isa.RDI, isa.R8)
		emitRol32(isa.RDI, isa.RDX, 5)
		b.AddRR(isa.RDI, isa.RCX)
		b.AddRR(isa.RDI, isa.R12)
		b.MovRI(isa.RDX, k)
		b.AddRR(isa.RDI, isa.RDX)
		b.AddRR(isa.RDI, isa.RAX)
		b.AndRI(isa.RDI, mask32)
		// e=d d=c c=rol30(b) b=a a=tmp
		b.MovRR(isa.R12, isa.R11)
		b.MovRR(isa.R11, isa.R10)
		b.MovRR(isa.R10, isa.R9)
		emitRol32(isa.R10, isa.RDX, 30)
		b.MovRR(isa.R9, isa.R8)
		b.MovRR(isa.R8, isa.RDI)
	}
	b.Inc(isa.R13)
	b.CmpRI(isa.R13, int64(numBlocks))
	b.Jcc(isa.CondNE, "blk")
	b.Store(isa.R15, int32(digOff), isa.R8)
	b.Store(isa.R15, int32(digOff+8), isa.R9)
	b.Store(isa.R15, int32(digOff+16), isa.R10)
	b.Store(isa.R15, int32(digOff+24), isa.R11)
	b.Store(isa.R15, int32(digOff+32), isa.R12)
	return kasm.Kernel("mibench/sha", b.Build(), data)
}

// ADPCM: IMA-ADPCM-style decode of 4-bit samples with step/index tables
// and clamping via conditional moves.
func ADPCM(scale int) *prog.Program {
	n := 512 * scale
	rng := rand.New(rand.NewPCG(0xadc, 10))
	// layout: stepTable[89] at 0, indexTable[16] at 712, nibbles (one per
	// byte) at 840, samples after.
	stepOff := 0
	idxOff := 89 * 8
	nibOff := idxOff + 16*8
	outOff := nibOff + n
	if rem := outOff % 8; rem != 0 {
		outOff += 8 - rem
	}
	data := make([]byte, outOff+n*8+64)
	step := 7.0
	for i := 0; i < 89; i++ {
		putU64(data, stepOff+i*8, uint64(int64(step)))
		step *= 1.1
	}
	idxTab := []int64{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}
	for i, v := range idxTab {
		putU64(data, idxOff+i*8, uint64(v))
	}
	for i := 0; i < n; i++ {
		data[nibOff+i] = byte(rng.IntN(16))
	}

	b := kasm.New()
	b.MovRI(isa.R8, 0)  // predicted value
	b.MovRI(isa.R9, 0)  // index
	b.MovRI(isa.RSI, 0) // sample counter
	b.Label("loop")
	b.LoadBZXIdx(isa.RAX, isa.R15, isa.RSI, 1, int32(nibOff)) // nibble
	b.LoadIdx(isa.RBX, isa.R15, isa.R9, 8, int32(stepOff))    // step
	// diff = step>>3 + (bit2?step:0) + (bit1?step>>1:0) + (bit0?step>>2:0)
	b.MovRR(isa.RCX, isa.RBX)
	b.ShrRI(isa.RCX, 3)
	b.MovRI(isa.RDI, 0)
	b.I(kasm.Find(isa.OpBT, isa.W64, isa.KReg, isa.KImm), isa.RegOp(isa.RAX), isa.ImmOp(2))
	b.CmovRR(isa.CondB, isa.RDI, isa.RBX) // CF set by BT
	b.AddRR(isa.RCX, isa.RDI)
	b.MovRR(isa.RDX, isa.RBX)
	b.ShrRI(isa.RDX, 1)
	b.MovRI(isa.RDI, 0)
	b.I(kasm.Find(isa.OpBT, isa.W64, isa.KReg, isa.KImm), isa.RegOp(isa.RAX), isa.ImmOp(1))
	b.CmovRR(isa.CondB, isa.RDI, isa.RDX)
	b.AddRR(isa.RCX, isa.RDI)
	b.MovRR(isa.RDX, isa.RBX)
	b.ShrRI(isa.RDX, 2)
	b.MovRI(isa.RDI, 0)
	b.I(kasm.Find(isa.OpBT, isa.W64, isa.KReg, isa.KImm), isa.RegOp(isa.RAX), isa.ImmOp(0))
	b.CmovRR(isa.CondB, isa.RDI, isa.RDX)
	b.AddRR(isa.RCX, isa.RDI)
	// sign (bit 3): predicted +/- diff
	b.MovRR(isa.RDX, isa.R8)
	b.SubRR(isa.RDX, isa.RCX)
	b.AddRR(isa.RCX, isa.R8)
	b.I(kasm.Find(isa.OpBT, isa.W64, isa.KReg, isa.KImm), isa.RegOp(isa.RAX), isa.ImmOp(3))
	b.CmovRR(isa.CondB, isa.RCX, isa.RDX)
	b.MovRR(isa.R8, isa.RCX)
	// index += indexTable[nibble]; clamp to [0, 88]
	b.LoadIdx(isa.RDX, isa.R15, isa.RAX, 8, int32(idxOff))
	b.AddRR(isa.R9, isa.RDX)
	b.MovRI(isa.RDI, 0)
	b.CmpRI(isa.R9, 0)
	b.CmovRR(isa.CondL, isa.R9, isa.RDI)
	b.MovRI(isa.RDI, 88)
	b.CmpRI(isa.R9, 88)
	b.CmovRR(isa.CondG, isa.R9, isa.RDI)
	// store sample
	b.StoreIdx(isa.R15, isa.RSI, 8, int32(outOff), isa.R8)
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(n))
	b.Jcc(isa.CondNE, "loop")
	return kasm.Kernel("mibench/adpcm", b.Build(), data)
}

// FFT: a direct DFT over a power-of-two-length real signal with
// precomputed twiddle tables (the suite's FFT workload; FP heavy).
func FFT(scale int) *prog.Program {
	const n = 32
	passes := scale
	rng := rand.New(rand.NewPCG(0xff7, 11))
	// layout: x[n] at 0, cos[n], sin[n], re[n], im[n].
	cosOff := n * 8
	sinOff := 2 * n * 8
	reOff := 3 * n * 8
	imOff := 4 * n * 8
	data := make([]byte, 5*n*8+64)
	for i := 0; i < n; i++ {
		putU64(data, i*8, math.Float64bits(rng.Float64()*2-1))
		putU64(data, cosOff+i*8, math.Float64bits(math.Cos(2*math.Pi*float64(i)/n)))
		putU64(data, sinOff+i*8, math.Float64bits(math.Sin(2*math.Pi*float64(i)/n)))
	}

	b := kasm.New()
	b.MovRI(isa.R13, 0) // pass
	b.Label("pass")
	b.MovRI(isa.RSI, 0) // k
	b.Label("kloop")
	b.XorRR(isa.RAX, isa.RAX)
	b.CvtSI2SD(0, isa.RAX) // xmm0 = sumRe = 0
	b.MovSDxx(1, 0)        // xmm1 = sumIm = 0
	b.MovRI(isa.RDI, 0)    // index
	b.Label("nloop")
	// idx = (k*index) & (n-1)
	b.MovRR(isa.RBX, isa.RSI)
	b.ImulRR(isa.RBX, isa.RDI)
	b.AndRI(isa.RBX, n-1)
	b.LoadSDIdx(2, isa.R15, isa.RDI, 8, 0)             // xmm2 = x[index]
	b.LoadSDIdx(3, isa.R15, isa.RBX, 8, int32(cosOff)) // xmm3 = cos
	b.MulSD(3, 2)
	b.AddSD(0, 3) // sumRe += x*cos
	b.LoadSDIdx(3, isa.R15, isa.RBX, 8, int32(sinOff))
	b.MulSD(3, 2)
	b.SubSD(1, 3) // sumIm -= x*sin
	b.Inc(isa.RDI)
	b.CmpRI(isa.RDI, n)
	b.Jcc(isa.CondNE, "nloop")
	b.StoreSDIdx(isa.R15, isa.RSI, 8, int32(reOff), 0)
	b.StoreSDIdx(isa.R15, isa.RSI, 8, int32(imOff), 1)
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, n)
	b.Jcc(isa.CondNE, "kloop")
	b.Inc(isa.R13)
	b.CmpRI(isa.R13, int64(passes))
	b.Jcc(isa.CondNE, "pass")
	return kasm.Kernel("mibench/fft", b.Build(), data)
}
