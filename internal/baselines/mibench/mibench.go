// Package mibench implements twelve embedded-benchmark-style kernels in
// HX86 assembly, standing in for the MiBench suite the paper uses as its
// general-purpose baseline (§III-C). Each kernel computes a real result
// into its data region (verified against a Go reference in the tests),
// so fault effects propagate — or get masked — the way they do in real
// workloads.
package mibench

import (
	"encoding/binary"
	"math/rand/v2"

	"harpocrates/internal/baselines/kasm"
	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
)

// Programs returns all twelve kernels at the given scale (1 = CI-sized).
func Programs(scale int) []*prog.Program {
	if scale < 1 {
		scale = 1
	}
	return []*prog.Program{
		Basicmath(scale),
		Bitcount(scale),
		Qsort(scale),
		Susan(scale),
		DCT(scale),
		Dijkstra(scale),
		Patricia(scale),
		Stringsearch(scale),
		Blowfish(scale),
		SHA(scale),
		ADPCM(scale),
		FFT(scale),
	}
}

func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }

// Basicmath: integer arithmetic loop mixing multiply, shift and rotate
// (basicmath's square/cube root loops flavour).
func Basicmath(scale int) *prog.Program {
	n := int64(1500 * scale)
	b := kasm.New()
	b.MovRI(isa.RAX, 0) // acc
	b.MovRI(isa.RCX, 1) // i
	b.Label("loop")
	b.MovRR(isa.RBX, isa.RCX)
	b.ImulRR(isa.RBX, isa.RCX)     // i*i
	b.ImulRRI(isa.RDX, isa.RCX, 3) // 3*i
	b.AddRR(isa.RBX, isa.RDX)
	b.RolRI(isa.RBX, 7)
	b.XorRR(isa.RAX, isa.RBX)
	b.Inc(isa.RCX)
	b.CmpRI(isa.RCX, n+1)
	b.Jcc(isa.CondNE, "loop")
	b.Store(isa.R15, 0, isa.RAX)
	return kasm.Kernel("mibench/basicmath", b.Build(), make([]byte, 64))
}

// basicmathRef mirrors Basicmath for verification.
func basicmathRef(scale int) uint64 {
	n := uint64(1500 * scale)
	acc := uint64(0)
	for i := uint64(1); i <= n; i++ {
		t := i*i + 3*i
		t = t<<7 | t>>(64-7)
		acc ^= t
	}
	return acc
}

// Bitcount: Kernighan population count over an array of words.
func Bitcount(scale int) *prog.Program {
	n := 256 * scale
	rng := rand.New(rand.NewPCG(0xb17c0, 1))
	data := make([]byte, n*8+64)
	for i := 0; i < n; i++ {
		putU64(data, i*8, rng.Uint64())
	}
	b := kasm.New()
	b.MovRI(isa.R8, 0)  // total
	b.MovRI(isa.RSI, 0) // index
	b.Label("outer")
	b.LoadIdx(isa.RAX, isa.R15, isa.RSI, 8, 0)
	b.Label("inner")
	b.TestRR(isa.RAX, isa.RAX)
	b.Jcc(isa.CondE, "next")
	b.MovRR(isa.RBX, isa.RAX)
	b.SubRI(isa.RBX, 1)
	b.AndRR(isa.RAX, isa.RBX) // clear lowest set bit
	b.Inc(isa.R8)
	b.Jmp("inner")
	b.Label("next")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(n))
	b.Jcc(isa.CondNE, "outer")
	b.StoreIdx(isa.R15, isa.RSI, 8, 0, isa.R8) // data[n] = total
	return kasm.Kernel("mibench/bitcount", b.Build(), data)
}

// Qsort: shellsort over an int64 array (the suite's sorting workload).
func Qsort(scale int) *prog.Program {
	n := 192 * scale
	rng := rand.New(rand.NewPCG(0x9507, 2))
	data := make([]byte, n*8)
	for i := 0; i < n; i++ {
		putU64(data, i*8, rng.Uint64()>>16)
	}
	b := kasm.New()
	// gaps: 64, 16, 4, 1 (powers so scaling keeps correctness)
	for _, gap := range []int64{64, 16, 4, 1} {
		g := gap
		lbl := func(s string) string { return s + string(rune('a'+g%26)) + itoa(g) }
		b.MovRI(isa.RSI, g) // i = gap
		b.Label(lbl("outer"))
		b.LoadIdx(isa.RAX, isa.R15, isa.RSI, 8, 0) // tmp = a[i]
		b.MovRR(isa.RDI, isa.RSI)                  // j = i
		b.Label(lbl("inner"))
		b.CmpRI(isa.RDI, g)
		b.Jcc(isa.CondL, lbl("place")) // j < gap: stop
		b.MovRR(isa.RBX, isa.RDI)
		b.SubRI(isa.RBX, g)                        // j-gap
		b.LoadIdx(isa.RCX, isa.R15, isa.RBX, 8, 0) // a[j-gap]
		b.CmpRR(isa.RCX, isa.RAX)
		b.Jcc(isa.CondBE, lbl("place")) // a[j-gap] <= tmp (unsigned)
		b.StoreIdx(isa.R15, isa.RDI, 8, 0, isa.RCX)
		b.MovRR(isa.RDI, isa.RBX)
		b.Jmp(lbl("inner"))
		b.Label(lbl("place"))
		b.StoreIdx(isa.R15, isa.RDI, 8, 0, isa.RAX)
		b.Inc(isa.RSI)
		b.CmpRI(isa.RSI, int64(n))
		b.Jcc(isa.CondNE, lbl("outer"))
	}
	return kasm.Kernel("mibench/qsort", b.Build(), data)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	s := ""
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}

// Susan: 3x3 box smoothing over a byte image (susan's smoothing stage).
func Susan(scale int) *prog.Program {
	side := 24 + 8*scale // image is side x side
	rng := rand.New(rand.NewPCG(0x5a5a, 3))
	data := make([]byte, side*side+side*side+64)
	for i := 0; i < side*side; i++ {
		data[i] = byte(rng.Uint32())
	}
	outOff := int32(side * side)
	b := kasm.New()
	b.MovRI(isa.RSI, 1) // y
	b.Label("rows")
	b.MovRI(isa.RDI, 1) // x
	b.Label("cols")
	// base index = y*side + x
	b.MovRR(isa.RBX, isa.RSI)
	b.ImulRRI(isa.RBX, isa.RSI, int64(side))
	b.AddRR(isa.RBX, isa.RDI)
	b.MovRI(isa.RAX, 0) // sum
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			b.LoadBZXIdx(isa.RCX, isa.R15, isa.RBX, 1, int32(dy*side+dx))
			b.AddRR(isa.RAX, isa.RCX)
		}
	}
	b.ShrRI(isa.RAX, 3) // /8 approximation of /9
	b.StoreBIdx(isa.R15, isa.RBX, 1, outOff, isa.RAX)
	b.Inc(isa.RDI)
	b.CmpRI(isa.RDI, int64(side-1))
	b.Jcc(isa.CondNE, "cols")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(side-1))
	b.Jcc(isa.CondNE, "rows")
	return kasm.Kernel("mibench/susan", b.Build(), data)
}

// DCT: 8x8 integer transform via a coefficient table (jpeg's forward DCT
// flavour: multiply-accumulate rows then columns).
func DCT(scale int) *prog.Program {
	blocks := 4 * scale
	rng := rand.New(rand.NewPCG(0xdc7, 4))
	// layout: coeff table 8x8 int64 at 0, input blocks at 512, output
	// blocks after the inputs.
	outBase := int64(512 + blocks*512)
	data := make([]byte, 512+2*blocks*512+64)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			putU64(data, (k*8+j)*8, uint64(int64((k+1)*(j+2)%13-6)))
		}
	}
	for i := 0; i < blocks*64; i++ {
		putU64(data, 512+i*8, uint64(int64(rng.Uint32()%256)-128))
	}
	b := kasm.New()
	b.MovRI(isa.R9, 0) // block index
	b.Label("blocks")
	b.MovRR(isa.R10, isa.R9)
	b.ShlRI(isa.R10, 9) // block offset = blk*512
	b.MovRI(isa.RSI, 0) // k (output row)
	b.Label("rows")
	b.MovRI(isa.RDI, 0) // column c
	b.Label("cols")
	b.MovRI(isa.RAX, 0) // acc
	// acc = sum_j coeff[k][j] * in[j][c]
	b.MovRI(isa.RCX, 0) // j
	b.Label("mac")
	b.MovRR(isa.RBX, isa.RSI)
	b.ShlRI(isa.RBX, 3)
	b.AddRR(isa.RBX, isa.RCX)                  // k*8+j
	b.LoadIdx(isa.RDX, isa.R15, isa.RBX, 8, 0) // coeff
	b.MovRR(isa.RBX, isa.RCX)
	b.ShlRI(isa.RBX, 3)
	b.AddRR(isa.RBX, isa.RDI) // element j*8+c
	b.ShlRI(isa.RBX, 3)       // byte offset within block
	b.AddRR(isa.RBX, isa.R10) // + block byte offset
	b.LoadIdx(isa.R11, isa.R15, isa.RBX, 1, 512)
	b.ImulRR(isa.RDX, isa.R11)
	b.AddRR(isa.RAX, isa.RDX)
	b.Inc(isa.RCX)
	b.CmpRI(isa.RCX, 8)
	b.Jcc(isa.CondNE, "mac")
	b.SarRI(isa.RAX, 3)
	// out[k][c] into the output area.
	b.MovRR(isa.RBX, isa.RSI)
	b.ShlRI(isa.RBX, 3)
	b.AddRR(isa.RBX, isa.RDI)
	b.ShlRI(isa.RBX, 3)
	b.AddRR(isa.RBX, isa.R10)
	b.StoreIdx(isa.R15, isa.RBX, 1, int32(outBase), isa.RAX)
	b.Inc(isa.RDI)
	b.CmpRI(isa.RDI, 8)
	b.Jcc(isa.CondNE, "cols")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, 8)
	b.Jcc(isa.CondNE, "rows")
	b.Inc(isa.R9)
	b.CmpRI(isa.R9, int64(blocks))
	b.Jcc(isa.CondNE, "blocks")
	return kasm.Kernel("mibench/dct", b.Build(), data)
}

// Dijkstra: Bellman-Ford-style relaxation over an adjacency matrix (the
// suite's shortest-path network workload).
func Dijkstra(scale int) *prog.Program {
	nodes := 16
	rounds := nodes * scale
	rng := rand.New(rand.NewPCG(0xd1d1, 5))
	// layout: adj[n][n] uint64 at 0, dist[n] after.
	data := make([]byte, nodes*nodes*8+nodes*8+64)
	for u := 0; u < nodes; u++ {
		for v := 0; v < nodes; v++ {
			w := uint64(1 + rng.IntN(100))
			if u == v {
				w = 0
			}
			putU64(data, (u*nodes+v)*8, w)
		}
	}
	distOff := int32(nodes * nodes * 8)
	const inf = int64(1) << 40
	b := kasm.New()
	// init dist: dist[0]=0, others INF
	b.MovRI(isa.RAX, inf)
	for v := 1; v < nodes; v++ {
		b.Store(isa.R15, distOff+int32(v*8), isa.RAX)
	}
	b.MovRI(isa.RAX, 0)
	b.Store(isa.R15, distOff, isa.RAX)
	b.MovRI(isa.R9, 0) // round
	b.Label("round")
	b.MovRI(isa.RSI, 0) // u
	b.Label("uloop")
	b.LoadIdx(isa.RAX, isa.R15, isa.RSI, 8, distOff) // dist[u]
	b.MovRR(isa.R10, isa.RSI)
	b.ImulRRI(isa.R10, isa.RSI, int64(nodes)) // u*nodes
	b.MovRI(isa.RDI, 0)                       // v
	b.Label("vloop")
	b.MovRR(isa.RBX, isa.R10)
	b.AddRR(isa.RBX, isa.RDI)
	b.LoadIdx(isa.RCX, isa.R15, isa.RBX, 8, 0) // w(u,v)
	b.AddRR(isa.RCX, isa.RAX)                  // cand = dist[u]+w
	b.LoadIdx(isa.RDX, isa.R15, isa.RDI, 8, distOff)
	b.CmpRR(isa.RCX, isa.RDX)
	b.CmovRR(isa.CondAE, isa.RCX, isa.RDX) // keep min
	b.StoreIdx(isa.R15, isa.RDI, 8, distOff, isa.RCX)
	b.Inc(isa.RDI)
	b.CmpRI(isa.RDI, int64(nodes))
	b.Jcc(isa.CondNE, "vloop")
	b.Inc(isa.RSI)
	b.CmpRI(isa.RSI, int64(nodes))
	b.Jcc(isa.CondNE, "uloop")
	b.Inc(isa.R9)
	b.CmpRI(isa.R9, int64(rounds))
	b.Jcc(isa.CondNE, "round")
	return kasm.Kernel("mibench/dijkstra", b.Build(), data)
}
