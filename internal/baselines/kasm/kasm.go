// Package kasm is a tiny assembler for writing HX86 kernels by hand:
// labels, branch fixups, and mnemonic helpers over the variant table.
// The MiBench and OpenDCDiag baseline workloads are written with it.
package kasm

import (
	"fmt"

	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
)

// Find locates a variant by family, width and operand kinds; it panics
// if no such variant exists (kernel construction is static).
func Find(op isa.Op, w isa.Width, kinds ...isa.OpKind) isa.VariantID {
	for _, id := range isa.ByOp(op) {
		v := isa.Lookup(id)
		if v.Width != w || len(v.Ops) != len(kinds) {
			continue
		}
		ok := true
		for i, k := range kinds {
			if v.Ops[i].Kind != k {
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	panic(fmt.Sprintf("kasm: no variant op=%d w=%v kinds=%v", op, w, kinds))
}

// FindCond locates a conditional variant (Jcc/SETcc/CMOVcc) by condition
// code, width and operand kinds.
func FindCond(op isa.Op, c isa.Cond, w isa.Width, kinds ...isa.OpKind) isa.VariantID {
	for _, id := range isa.ByOp(op) {
		v := isa.Lookup(id)
		if v.Cond != c || v.Width != w || len(v.Ops) != len(kinds) {
			continue
		}
		ok := true
		for i, k := range kinds {
			if v.Ops[i].Kind != k {
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	panic(fmt.Sprintf("kasm: no cond variant op=%d cond=%v", op, c))
}

// Common variant IDs, resolved once.
var (
	vMovRR    = Find(isa.OpMOV, isa.W64, isa.KReg, isa.KReg)
	vMovRI    = Find(isa.OpMOV, isa.W64, isa.KReg, isa.KImm) // imm32 sign-extended
	vMovAbs   isa.VariantID
	vMovRM    = Find(isa.OpMOV, isa.W64, isa.KReg, isa.KMem)
	vMovMR    = Find(isa.OpMOV, isa.W64, isa.KMem, isa.KReg)
	vMovRM8   = Find(isa.OpMOV, isa.W8, isa.KReg, isa.KMem)
	vMovMR8   = Find(isa.OpMOV, isa.W8, isa.KMem, isa.KReg)
	vMovRM32  = Find(isa.OpMOV, isa.W32, isa.KReg, isa.KMem)
	vMovMR32  = Find(isa.OpMOV, isa.W32, isa.KMem, isa.KReg)
	vMovzxB64 isa.VariantID
	vAddRR    = Find(isa.OpADD, isa.W64, isa.KReg, isa.KReg)
	vAddRI    = Find(isa.OpADD, isa.W64, isa.KReg, isa.KImm)
	vAddRM    = Find(isa.OpADD, isa.W64, isa.KReg, isa.KMem)
	vSubRR    = Find(isa.OpSUB, isa.W64, isa.KReg, isa.KReg)
	vSubRI    = Find(isa.OpSUB, isa.W64, isa.KReg, isa.KImm)
	vAndRI    = Find(isa.OpAND, isa.W64, isa.KReg, isa.KImm)
	vAndRR    = Find(isa.OpAND, isa.W64, isa.KReg, isa.KReg)
	vOrRR     = Find(isa.OpOR, isa.W64, isa.KReg, isa.KReg)
	vXorRR    = Find(isa.OpXOR, isa.W64, isa.KReg, isa.KReg)
	vXorRI    = Find(isa.OpXOR, isa.W64, isa.KReg, isa.KImm)
	vCmpRR    = Find(isa.OpCMP, isa.W64, isa.KReg, isa.KReg)
	vCmpRI    = Find(isa.OpCMP, isa.W64, isa.KReg, isa.KImm)
	vTestRR   = Find(isa.OpTEST, isa.W64, isa.KReg, isa.KReg)
	vShlRI    = Find(isa.OpSHL, isa.W64, isa.KReg, isa.KImm)
	vShrRI    = Find(isa.OpSHR, isa.W64, isa.KReg, isa.KImm)
	vSarRI    = Find(isa.OpSAR, isa.W64, isa.KReg, isa.KImm)
	vRolRI    = Find(isa.OpROL, isa.W64, isa.KReg, isa.KImm)
	vRorRI    = Find(isa.OpROR, isa.W64, isa.KReg, isa.KImm)
	vIncR     = Find(isa.OpINC, isa.W64, isa.KReg)
	vDecR     = Find(isa.OpDEC, isa.W64, isa.KReg)
	vNegR     = Find(isa.OpNEG, isa.W64, isa.KReg)
	vImulRR   = Find(isa.OpIMULRR, isa.W64, isa.KReg, isa.KReg)
	vImulRRI  = Find(isa.OpIMULRRI, isa.W64, isa.KReg, isa.KReg, isa.KImm)
	vJmp      = Find(isa.OpJMP, isa.W32, isa.KImm)
	vLeaQ     = Find(isa.OpLEA, isa.W64, isa.KReg, isa.KMem)

	vAddSD     = Find(isa.OpADDSD, isa.W64, isa.KXmm, isa.KXmm)
	vSubSD     = Find(isa.OpSUBSD, isa.W64, isa.KXmm, isa.KXmm)
	vMulSD     = Find(isa.OpMULSD, isa.W64, isa.KXmm, isa.KXmm)
	vDivSD     = Find(isa.OpDIVSD, isa.W64, isa.KXmm, isa.KXmm)
	vSqrtSD    = Find(isa.OpSQRTSD, isa.W64, isa.KXmm, isa.KXmm)
	vMovSDxm   = Find(isa.OpMOVSD, isa.W64, isa.KXmm, isa.KMem)
	vMovSDmx   = Find(isa.OpMOVSD, isa.W64, isa.KMem, isa.KXmm)
	vMovSDxx   = Find(isa.OpMOVSD, isa.W64, isa.KXmm, isa.KXmm)
	vUcomiSD   = Find(isa.OpUCOMISD, isa.W64, isa.KXmm, isa.KXmm)
	vCvtSI2SDq isa.VariantID
)

func init() {
	// movabsq is the MOV variant with a 64-bit immediate spec.
	for _, id := range isa.ByOp(isa.OpMOV) {
		v := isa.Lookup(id)
		if len(v.Ops) == 2 && v.Ops[1].Kind == isa.KImm && v.Ops[1].Width == isa.W64 {
			vMovAbs = id
		}
	}
	for _, id := range isa.ByOp(isa.OpMOVZX) {
		v := isa.Lookup(id)
		if v.Width == isa.W64 && v.Ops[1].Width == isa.W8 && v.Ops[1].Kind == isa.KMem {
			vMovzxB64 = id
		}
	}
	for _, id := range isa.ByOp(isa.OpCVTSI2SD) {
		v := isa.Lookup(id)
		if len(v.Ops) == 2 && v.Ops[1].Kind == isa.KReg && v.Ops[1].Width == isa.W64 {
			vCvtSI2SDq = id
		}
	}
}

// Builder assembles a kernel.
type Builder struct {
	insts  []isa.Inst
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	idx   int
	label string
}

// New returns an empty builder.
func New() *Builder {
	return &Builder{labels: map[string]int{}}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// I emits a raw instruction.
func (b *Builder) I(v isa.VariantID, ops ...isa.Operand) {
	b.insts = append(b.insts, isa.MakeInst(v, ops...))
}

// Label defines a jump target at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("kasm: duplicate label " + name)
	}
	b.labels[name] = len(b.insts)
}

// Build patches branch targets and returns the instruction sequence.
func (b *Builder) Build() []isa.Inst {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic("kasm: undefined label " + f.label)
		}
		b.insts[f.idx].Ops[0].Imm = int64(target - (f.idx + 1))
	}
	b.fixups = nil
	return b.insts
}

// --- control flow ------------------------------------------------------

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.I(vJmp, isa.ImmOp(0))
}

// Jcc emits a conditional jump to a label.
func (b *Builder) Jcc(c isa.Cond, label string) {
	id := FindCond(isa.OpJcc, c, isa.W32, isa.KImm)
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.I(id, isa.ImmOp(0))
}

// --- integer helpers -----------------------------------------------------

// MovRI loads a 64-bit constant (movabsq when it does not fit a
// sign-extended imm32).
func (b *Builder) MovRI(r isa.Reg, v int64) {
	if v == int64(int32(v)) {
		b.I(vMovRI, isa.RegOp(r), isa.ImmOp(v))
	} else {
		b.I(vMovAbs, isa.RegOp(r), isa.ImmOp(v))
	}
}

func (b *Builder) MovRR(d, s isa.Reg)       { b.I(vMovRR, isa.RegOp(d), isa.RegOp(s)) }
func (b *Builder) AddRR(d, s isa.Reg)       { b.I(vAddRR, isa.RegOp(d), isa.RegOp(s)) }
func (b *Builder) AddRI(d isa.Reg, v int64) { b.I(vAddRI, isa.RegOp(d), isa.ImmOp(v)) }
func (b *Builder) SubRR(d, s isa.Reg)       { b.I(vSubRR, isa.RegOp(d), isa.RegOp(s)) }
func (b *Builder) SubRI(d isa.Reg, v int64) { b.I(vSubRI, isa.RegOp(d), isa.ImmOp(v)) }
func (b *Builder) AndRI(d isa.Reg, v int64) { b.I(vAndRI, isa.RegOp(d), isa.ImmOp(v)) }
func (b *Builder) AndRR(d, s isa.Reg)       { b.I(vAndRR, isa.RegOp(d), isa.RegOp(s)) }
func (b *Builder) OrRR(d, s isa.Reg)        { b.I(vOrRR, isa.RegOp(d), isa.RegOp(s)) }
func (b *Builder) XorRR(d, s isa.Reg)       { b.I(vXorRR, isa.RegOp(d), isa.RegOp(s)) }
func (b *Builder) XorRI(d isa.Reg, v int64) { b.I(vXorRI, isa.RegOp(d), isa.ImmOp(v)) }
func (b *Builder) CmpRR(a, c isa.Reg)       { b.I(vCmpRR, isa.RegOp(a), isa.RegOp(c)) }
func (b *Builder) CmpRI(a isa.Reg, v int64) { b.I(vCmpRI, isa.RegOp(a), isa.ImmOp(v)) }
func (b *Builder) TestRR(a, c isa.Reg)      { b.I(vTestRR, isa.RegOp(a), isa.RegOp(c)) }
func (b *Builder) ShlRI(d isa.Reg, n int64) { b.I(vShlRI, isa.RegOp(d), isa.ImmOp(n)) }
func (b *Builder) ShrRI(d isa.Reg, n int64) { b.I(vShrRI, isa.RegOp(d), isa.ImmOp(n)) }
func (b *Builder) SarRI(d isa.Reg, n int64) { b.I(vSarRI, isa.RegOp(d), isa.ImmOp(n)) }
func (b *Builder) RolRI(d isa.Reg, n int64) { b.I(vRolRI, isa.RegOp(d), isa.ImmOp(n)) }
func (b *Builder) RorRI(d isa.Reg, n int64) { b.I(vRorRI, isa.RegOp(d), isa.ImmOp(n)) }
func (b *Builder) Inc(d isa.Reg)            { b.I(vIncR, isa.RegOp(d)) }
func (b *Builder) Dec(d isa.Reg)            { b.I(vDecR, isa.RegOp(d)) }
func (b *Builder) Neg(d isa.Reg)            { b.I(vNegR, isa.RegOp(d)) }
func (b *Builder) ImulRR(d, s isa.Reg)      { b.I(vImulRR, isa.RegOp(d), isa.RegOp(s)) }
func (b *Builder) ImulRRI(d, s isa.Reg, v int64) {
	b.I(vImulRRI, isa.RegOp(d), isa.RegOp(s), isa.ImmOp(v))
}

// CmovRR emits a conditional move.
func (b *Builder) CmovRR(c isa.Cond, d, s isa.Reg) {
	b.I(FindCond(isa.OpCMOVcc, c, isa.W64, isa.KReg, isa.KReg), isa.RegOp(d), isa.RegOp(s))
}

// --- memory helpers ----------------------------------------------------

// Load emits mov r64 <- [base+disp].
func (b *Builder) Load(r, base isa.Reg, disp int32) {
	b.I(vMovRM, isa.RegOp(r), isa.MemOp(base, disp))
}

// LoadIdx emits mov r64 <- [base+index*scale+disp].
func (b *Builder) LoadIdx(r, base, index isa.Reg, scale uint8, disp int32) {
	b.I(vMovRM, isa.RegOp(r), isa.MemIdxOp(base, index, scale, disp))
}

// Store emits mov [base+disp] <- r64.
func (b *Builder) Store(base isa.Reg, disp int32, r isa.Reg) {
	b.I(vMovMR, isa.MemOp(base, disp), isa.RegOp(r))
}

// StoreIdx emits mov [base+index*scale+disp] <- r64.
func (b *Builder) StoreIdx(base, index isa.Reg, scale uint8, disp int32, r isa.Reg) {
	b.I(vMovMR, isa.MemIdxOp(base, index, scale, disp), isa.RegOp(r))
}

// LoadB / StoreB move single bytes; LoadBZX zero-extends into 64 bits.
func (b *Builder) LoadB(r, base isa.Reg, disp int32) {
	b.I(vMovRM8, isa.RegOp(r), isa.MemOp(base, disp))
}

func (b *Builder) LoadBZXIdx(r, base, index isa.Reg, scale uint8, disp int32) {
	b.I(vMovzxB64, isa.RegOp(r), isa.MemIdxOp(base, index, scale, disp))
}

func (b *Builder) StoreBIdx(base, index isa.Reg, scale uint8, disp int32, r isa.Reg) {
	b.I(vMovMR8, isa.MemIdxOp(base, index, scale, disp), isa.RegOp(r))
}

// Load32/Store32 move 32-bit words.
func (b *Builder) Load32Idx(r, base, index isa.Reg, scale uint8, disp int32) {
	b.I(vMovRM32, isa.RegOp(r), isa.MemIdxOp(base, index, scale, disp))
}

func (b *Builder) Store32Idx(base, index isa.Reg, scale uint8, disp int32, r isa.Reg) {
	b.I(vMovMR32, isa.MemIdxOp(base, index, scale, disp), isa.RegOp(r))
}

// AddRM emits add r64, [base+idx*scale+disp].
func (b *Builder) AddRMIdx(r, base, index isa.Reg, scale uint8, disp int32) {
	b.I(vAddRM, isa.RegOp(r), isa.MemIdxOp(base, index, scale, disp))
}

// Lea emits lea r64, [base+index*scale+disp].
func (b *Builder) Lea(r, base, index isa.Reg, scale uint8, disp int32) {
	b.I(vLeaQ, isa.RegOp(r), isa.MemIdxOp(base, index, scale, disp))
}

// --- floating point ------------------------------------------------------

func (b *Builder) AddSD(d, s isa.XReg)  { b.I(vAddSD, isa.XmmOp(d), isa.XmmOp(s)) }
func (b *Builder) SubSD(d, s isa.XReg)  { b.I(vSubSD, isa.XmmOp(d), isa.XmmOp(s)) }
func (b *Builder) MulSD(d, s isa.XReg)  { b.I(vMulSD, isa.XmmOp(d), isa.XmmOp(s)) }
func (b *Builder) DivSD(d, s isa.XReg)  { b.I(vDivSD, isa.XmmOp(d), isa.XmmOp(s)) }
func (b *Builder) SqrtSD(d, s isa.XReg) { b.I(vSqrtSD, isa.XmmOp(d), isa.XmmOp(s)) }
func (b *Builder) MovSDxx(d, s isa.XReg) {
	b.I(vMovSDxx, isa.XmmOp(d), isa.XmmOp(s))
}
func (b *Builder) UcomiSD(a, c isa.XReg) { b.I(vUcomiSD, isa.XmmOp(a), isa.XmmOp(c)) }

// LoadSD emits movsd xmm <- [base+disp].
func (b *Builder) LoadSD(x isa.XReg, base isa.Reg, disp int32) {
	b.I(vMovSDxm, isa.XmmOp(x), isa.MemOp(base, disp))
}

// LoadSDIdx emits movsd xmm <- [base+index*scale+disp].
func (b *Builder) LoadSDIdx(x isa.XReg, base, index isa.Reg, scale uint8, disp int32) {
	b.I(vMovSDxm, isa.XmmOp(x), isa.MemIdxOp(base, index, scale, disp))
}

// StoreSDIdx emits movsd [base+index*scale+disp] <- xmm.
func (b *Builder) StoreSDIdx(base, index isa.Reg, scale uint8, disp int32, x isa.XReg) {
	b.I(vMovSDmx, isa.MemIdxOp(base, index, scale, disp), isa.XmmOp(x))
}

// StoreSD emits movsd [base+disp] <- xmm.
func (b *Builder) StoreSD(base isa.Reg, disp int32, x isa.XReg) {
	b.I(vMovSDmx, isa.MemOp(base, disp), isa.XmmOp(x))
}

// CvtSI2SD converts a 64-bit integer register to double.
func (b *Builder) CvtSI2SD(x isa.XReg, r isa.Reg) {
	b.I(vCvtSI2SDq, isa.XmmOp(x), isa.RegOp(r))
}

// --- program assembly -----------------------------------------------------

// Kernel wraps a built instruction sequence and a data region into a
// runnable program. The data region starts at prog.DataBase; a standard
// stack is attached. R15 is conventionally the kernel's data base
// pointer.
func Kernel(name string, insts []isa.Inst, data []byte) *prog.Program {
	// Pad the region to cache-line alignment.
	if rem := len(data) % 64; rem != 0 {
		data = append(data, make([]byte, 64-rem)...)
	}
	p := &prog.Program{
		Name:  name,
		Insts: insts,
		Regions: []prog.RegionSpec{
			{Name: "data", Base: prog.DataBase, Data: data, Writable: true},
			{Name: "stack", Base: prog.StackBase, Size: prog.StackSize, Writable: true},
		},
	}
	p.InitGPR[isa.RSP] = prog.StackBase + prog.StackSize
	p.InitGPR[isa.R15] = prog.DataBase
	return p
}
