package kasm

import (
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

func TestFindPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Find must panic for impossible variants")
		}
	}()
	Find(isa.OpADD, isa.W128, isa.KXmm, isa.KXmm, isa.KXmm)
}

func TestLabelsAndFixups(t *testing.T) {
	b := New()
	b.MovRI(isa.RAX, 0)
	b.Label("top")
	b.Inc(isa.RAX)
	b.CmpRI(isa.RAX, 3)
	b.Jcc(isa.CondNE, "top")
	b.Jmp("end")
	b.Inc(isa.RAX) // skipped
	b.Label("end")
	insts := b.Build()

	p := Kernel("kasm-test", insts, make([]byte, 64))
	s := p.NewState()
	if _, err := arch.Run(p.Insts, s, 1000); err != nil {
		t.Fatal(err)
	}
	if s.GPR[isa.RAX] != 3 {
		t.Fatalf("rax = %d, want 3 (loop ran wrong count or skip failed)", s.GPR[isa.RAX])
	}
}

func TestBackwardAndForwardOffsets(t *testing.T) {
	b := New()
	b.Label("l0")
	b.Jmp("l1") // forward: offset +0? l1 is next instruction
	b.Label("l1")
	b.Jmp("l0") // backward
	insts := b.Build()
	if insts[0].Ops[0].Imm != 0 {
		t.Fatalf("forward jump to next: offset %d, want 0", insts[0].Ops[0].Imm)
	}
	if insts[1].Ops[0].Imm != -2 {
		t.Fatalf("backward jump: offset %d, want -2", insts[1].Ops[0].Imm)
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label must panic")
		}
	}()
	b := New()
	b.Label("x")
	b.Label("x")
}

func TestUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undefined label must panic at Build")
		}
	}()
	b := New()
	b.Jmp("nowhere")
	b.Build()
}

func TestMovRIWideConstant(t *testing.T) {
	b := New()
	b.MovRI(isa.RAX, 0x0123456789abcdef)
	b.MovRI(isa.RBX, -5)
	insts := b.Build()
	p := Kernel("kasm-movri", insts, make([]byte, 64))
	s := p.NewState()
	if _, err := arch.Run(p.Insts, s, 10); err != nil {
		t.Fatal(err)
	}
	if s.GPR[isa.RAX] != 0x0123456789abcdef {
		t.Fatalf("movabs: %#x", s.GPR[isa.RAX])
	}
	if int64(s.GPR[isa.RBX]) != -5 {
		t.Fatalf("imm32 sign extension: %d", int64(s.GPR[isa.RBX]))
	}
}

func TestKernelLayout(t *testing.T) {
	p := Kernel("layout", nil, make([]byte, 100)) // unaligned payload
	if err := p.Validate(); err != nil {
		t.Fatalf("kernel region not padded: %v", err)
	}
	if p.InitGPR[isa.R15] == 0 || p.InitGPR[isa.RSP] == 0 {
		t.Fatal("base/stack registers not initialized")
	}
}
