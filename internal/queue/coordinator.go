package queue

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"harpocrates/internal/dist"
	"harpocrates/internal/obs"
)

// Options tunes a coordinator.
type Options struct {
	// DataDir is the durable state directory: wal.log, snapshot.json and
	// (by default) the result cache live under it.
	DataDir string
	// CacheDir overrides the result-cache directory (default
	// DataDir/cache). The cache may be shared read-write with pull-mode
	// workers on the same filesystem.
	CacheDir string
	// CacheEntries bounds the in-memory LRU (entries; 0 = default).
	CacheEntries int

	// ShardSize is the number of campaign specs per shard (default 32);
	// EvalShardSize the number of genotypes per eval shard (default 8).
	// Bounds are fixed per job at submit time, so changing these between
	// restarts never re-shards persisted jobs.
	ShardSize     int
	EvalShardSize int

	// LeaseTimeout is how long a worker may sit on a leased shard before
	// it is re-queued for the others (default 2 minutes).
	LeaseTimeout time.Duration

	// PushWorkers lists legacy push-mode harpod URLs; the coordinator
	// runs an internal dispatcher that leases shards like any pull
	// worker and pushes them over the PR 4 request/response protocol.
	PushWorkers []string
	// PushOptions tunes the push pool (retries, timeouts).
	PushOptions dist.Options

	// LocalExec runs that many in-process executor goroutines — the
	// zero-worker fallback that keeps a fleetless coordinator (or a test)
	// completing jobs.
	LocalExec int

	// CompactWALBytes triggers online WAL compaction: once the log
	// outgrows this many bytes, the full state is snapshotted atomically
	// and the log reset — so a long-lived coordinator's recovery cost
	// stays bounded instead of only shrinking at graceful shutdown.
	// 0 = default (64 MiB), negative disables.
	CompactWALBytes int64

	// Obs receives queue.* counters, gauges and histograms; may be nil.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.CacheDir == "" {
		o.CacheDir = filepath.Join(o.DataDir, "cache")
	}
	if o.ShardSize <= 0 {
		o.ShardSize = 32
	}
	if o.EvalShardSize <= 0 {
		o.EvalShardSize = 8
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 2 * time.Minute
	}
	if o.CompactWALBytes == 0 {
		o.CompactWALBytes = 64 << 20
	}
	return o
}

// Coordinator is the campaign-as-a-service job queue: it accepts
// durable jobs, serves them to pulling workers shard by shard
// (work-stealing: idle workers lease the next ready shard, so
// heterogeneous machines self-balance), re-queues expired leases,
// persists every transition to the WAL, and serves every shard it can
// from the content-addressed result cache instead of dispatching it.
type Coordinator struct {
	opts  Options
	ob    *obs.Observer
	wal   *WAL
	cache *Cache
	push  *dist.Pool

	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // submit order
	nextSeq   int
	nextLease uint64
	pulse     chan struct{} // closed + replaced on every state change
	draining  bool

	stop chan struct{}
	bg   sync.WaitGroup
}

// NewCoordinator opens (creating if needed) the durable state under
// opts.DataDir, replays the snapshot + WAL — re-queuing every shard
// that was leased or pending when the previous process died, so no
// work is lost — and starts the background dispatchers.
func NewCoordinator(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, fmt.Errorf("queue: coordinator needs a data dir")
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	cache, err := OpenCache(opts.CacheDir, opts.CacheEntries, opts.Obs)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:  opts,
		ob:    opts.Obs,
		cache: cache,
		jobs:  make(map[string]*job),
		pulse: make(chan struct{}),
		stop:  make(chan struct{}),
	}
	if err := c.recover(); err != nil {
		cache.Close()
		return nil, err
	}
	if len(opts.PushWorkers) > 0 {
		po := opts.PushOptions
		if po.Obs == nil {
			po.Obs = opts.Obs
		}
		c.push = dist.New(opts.PushWorkers, po)
		n := max(1, c.push.Probe()*2)
		for i := 0; i < n; i++ {
			c.bg.Add(1)
			go c.executorLoop(fmt.Sprintf("push-%d", i), c.execPush)
		}
	}
	for i := 0; i < opts.LocalExec; i++ {
		c.bg.Add(1)
		go c.executorLoop(fmt.Sprintf("local-%d", i), c.execLocal)
	}
	c.bg.Add(1)
	go c.expiryLoop()
	return c, nil
}

// recover loads snapshot.json, replays the WAL on top, serves cached
// shards, and re-queues everything else.
func (c *Coordinator) recover() error {
	snapPath := filepath.Join(c.opts.DataDir, "snapshot.json")
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("queue: parse snapshot: %w", err)
		}
		if snap.Version != snapshotVersion {
			return fmt.Errorf("queue: unsupported snapshot version %d", snap.Version)
		}
		c.nextSeq = snap.NextSeq
		for i := range snap.Jobs {
			sj := &snap.Jobs[i]
			j := newJob(sj.ID, sj.Seq, sj.Req, sj.Bounds)
			j.state = sj.State
			j.errMsg = sj.Error
			for _, d := range sj.Done {
				if d.Shard < 0 || d.Shard >= len(j.shards) {
					return fmt.Errorf("queue: snapshot job %s: shard %d out of range", sj.ID, d.Shard)
				}
				c.applyDone(j, d.Shard, d.Value, d.Cached, d.Worker, false)
			}
			c.jobs[j.id] = j
			c.order = append(c.order, j)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("queue: read snapshot: %w", err)
	}

	wal, recs, err := OpenWAL(filepath.Join(c.opts.DataDir, "wal.log"))
	if err != nil {
		return err
	}
	c.wal = wal
	for _, rec := range recs {
		if err := c.replayRecord(rec); err != nil {
			return err
		}
	}
	c.ob.Counter("queue.wal.replayed").Add(int64(len(recs)))

	// Re-derive job states and serve whatever the cache already knows:
	// a restart with a warm cache re-completes shards without a single
	// simulate call.
	for _, j := range c.order {
		if j.terminal() {
			continue
		}
		c.serveFromCache(j)
		c.refreshState(j)
	}
	c.ob.Gauge("queue.jobs.open").Set(float64(c.openJobs()))
	return nil
}

// replayRecord applies one WAL record to the in-memory state.
func (c *Coordinator) replayRecord(rec Record) error {
	switch rec.Kind {
	case recSubmit:
		var ws walSubmit
		if err := json.Unmarshal(rec.Payload, &ws); err != nil {
			return fmt.Errorf("queue: replay submit: %w", err)
		}
		if _, ok := c.jobs[ws.ID]; ok {
			// A crash between the compaction snapshot write and the WAL
			// reset legitimately leaves records the snapshot already
			// covers; replay is idempotent, not suspicious.
			c.ob.Counter("queue.wal.replay_duplicates").Inc()
			return nil
		}
		if err := ws.Req.Validate(); err != nil {
			return fmt.Errorf("queue: replay job %s: %w", ws.ID, err)
		}
		j := newJob(ws.ID, ws.Seq, ws.Req, ws.Bounds)
		c.jobs[j.id] = j
		c.order = append(c.order, j)
		if ws.Seq >= c.nextSeq {
			c.nextSeq = ws.Seq + 1
		}
	case recShardDone:
		var wd walShardDone
		if err := json.Unmarshal(rec.Payload, &wd); err != nil {
			return fmt.Errorf("queue: replay shard done: %w", err)
		}
		j, ok := c.jobs[wd.ID]
		if !ok {
			return fmt.Errorf("queue: replay: shard done for unknown job %s", wd.ID)
		}
		if wd.Shard < 0 || wd.Shard >= len(j.shards) {
			return fmt.Errorf("queue: replay: job %s shard %d out of range", wd.ID, wd.Shard)
		}
		if j.shards[wd.Shard].state != shardDone {
			c.applyDone(j, wd.Shard, wd.Value, wd.Cached, wd.Worker, false)
		}
	case recCancel:
		var wc walCancel
		if err := json.Unmarshal(rec.Payload, &wc); err != nil {
			return fmt.Errorf("queue: replay cancel: %w", err)
		}
		if j, ok := c.jobs[wc.ID]; ok && !j.terminal() {
			j.state = dist.JobStateCancelled
		}
	default:
		return fmt.Errorf("queue: replay: unknown record kind %d", rec.Kind)
	}
	return nil
}

// applyDone marks one shard complete and emits its stream event.
// Caller holds c.mu (or is single-threaded recovery).
func (c *Coordinator) applyDone(j *job, i int, value []byte, cached bool, worker string, put bool) {
	s := j.shards[i]
	s.state = shardDone
	s.value = value
	s.cached = cached
	s.worker = worker
	j.done++
	if cached {
		j.cached++
	}
	if put {
		if err := c.cache.Put(j.shardKey(i), value); err != nil {
			c.ob.Counter("queue.cache.put_errors").Inc()
		}
	}
	j.events = append(j.events, dist.StreamEvent{
		JobID: j.id, Shard: i, Lo: s.lo, Hi: s.hi, Cached: cached, Worker: worker,
	})
}

// serveFromCache completes every still-ready shard whose key the cache
// holds. Caller holds c.mu (or recovery).
func (c *Coordinator) serveFromCache(j *job) {
	for i, s := range j.shards {
		if s.state != shardReady {
			continue
		}
		value, ok := c.cache.Get(j.shardKey(i))
		if !ok {
			continue
		}
		if err := j.decodeShardValue(i, value); err != nil {
			// A corrupt or mismatched cache entry is treated as a miss;
			// the shard simulates normally.
			c.ob.Counter("queue.cache.decode_errors").Inc()
			continue
		}
		c.ob.Counter("queue.shards.cached").Inc()
		c.walShardDone(j, i, value, true, "")
		c.applyDone(j, i, value, true, "", false)
	}
}

// refreshState finalizes a job whose shards are all done. Caller holds
// c.mu (or recovery).
func (c *Coordinator) refreshState(j *job) {
	if j.terminal() {
		return
	}
	if j.done == len(j.shards) {
		j.state = dist.JobStateDone
		j.events = append(j.events, dist.StreamEvent{JobID: j.id, Done: true, State: j.state})
		c.ob.Counter("queue.jobs.completed").Inc()
		return
	}
	if j.done > 0 || anyLeased(j) {
		j.state = dist.JobStateRunning
	}
}

func anyLeased(j *job) bool {
	for _, s := range j.shards {
		if s.state == shardLeased {
			return true
		}
	}
	return false
}

// openJobs counts non-terminal jobs. Caller holds c.mu (or recovery).
func (c *Coordinator) openJobs() int {
	n := 0
	for _, j := range c.order {
		if !j.terminal() {
			n++
		}
	}
	return n
}

// walAppend marshals and appends one record.
func (c *Coordinator) walAppend(kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("queue: marshal wal record: %w", err)
	}
	return c.wal.Append(kind, payload)
}

func (c *Coordinator) walShardDone(j *job, i int, value []byte, cached bool, worker string) {
	if err := c.walAppend(recShardDone, &walShardDone{
		ID: j.id, Shard: i, Cached: cached, Worker: worker, Value: value,
	}); err != nil {
		// A failed durability write must not lose the in-memory result;
		// the job still completes, only crash-resume would re-run it.
		c.ob.Counter("queue.wal.errors").Inc()
	}
}

// broadcast wakes every lease long-poller and stream follower. Caller
// holds c.mu.
func (c *Coordinator) broadcast() {
	close(c.pulse)
	c.pulse = make(chan struct{})
}

// pulseChan returns the current pulse under the lock.
func (c *Coordinator) pulseChan() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pulse
}

// Submit validates, persists and enqueues one job, serving every shard
// it can from the result cache before any dispatch. It returns once the
// job is durable.
func (c *Coordinator) Submit(req *dist.JobRequest) (*dist.JobSubmitResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var bounds [][2]int
	if req.Kind == dist.JobCampaign {
		bounds = planBounds(req.Inject.N, c.opts.ShardSize)
	} else {
		bounds = planBounds(len(req.Eval.Genotypes), c.opts.EvalShardSize)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, fmt.Errorf("queue: coordinator is shutting down")
	}
	seq := c.nextSeq
	c.nextSeq++
	id := fmt.Sprintf("j-%06d", seq)
	j := newJob(id, seq, req, bounds)
	if err := c.walAppend(recSubmit, &walSubmit{ID: id, Seq: seq, Req: req, Bounds: bounds}); err != nil {
		c.nextSeq = seq // roll back the unused sequence number
		return nil, err
	}
	c.jobs[id] = j
	c.order = append(c.order, j)
	c.ob.Counter("queue.jobs.submitted").Inc()

	c.serveFromCache(j)
	c.refreshState(j)
	c.maybeCompactLocked()
	c.ob.Gauge("queue.jobs.open").Set(float64(c.openJobs()))
	c.broadcast()
	return &dist.JobSubmitResponse{ID: id, Shards: len(j.shards), CacheHits: j.cached}, nil
}

// Lease hands the calling worker the next ready shard, long-polling up
// to wait for one to appear. The pick order is (priority desc, submit
// order asc, shard index asc): work-stealing with a deterministic
// frontier. An empty response (JobID == "") means nothing was ready.
func (c *Coordinator) Lease(worker string, wait time.Duration) (*dist.LeaseResponse, error) {
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if c.draining {
			c.mu.Unlock()
			return &dist.LeaseResponse{}, nil
		}
		c.expireLocked(time.Now())
		if resp := c.leaseLocked(worker); resp != nil {
			c.mu.Unlock()
			return resp, nil
		}
		pulse := c.pulse
		c.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return &dist.LeaseResponse{}, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-pulse:
			timer.Stop()
		case <-timer.C:
			return &dist.LeaseResponse{}, nil
		case <-c.stop:
			timer.Stop()
			return &dist.LeaseResponse{}, nil
		}
	}
}

// leaseLocked picks and leases the next ready shard, or returns nil.
// Caller holds c.mu.
func (c *Coordinator) leaseLocked(worker string) *dist.LeaseResponse {
	j, i := c.nextReadyLocked()
	if j == nil {
		return nil
	}
	s := j.shards[i]
	c.nextLease++
	s.state = shardLeased
	s.lease = c.nextLease
	s.worker = worker
	s.leasedAt = time.Now()
	s.deadline = s.leasedAt.Add(c.opts.LeaseTimeout)
	if j.state == dist.JobStatePending {
		j.state = dist.JobStateRunning
	}
	c.ob.Counter("queue.leases.granted").Inc()
	resp := &dist.LeaseResponse{JobID: j.id, Shard: i, Lease: s.lease, Kind: j.req.Kind}
	if j.req.Kind == dist.JobCampaign {
		resp.Inject = j.shardInjectReq(i)
	} else {
		resp.Eval = j.shardEvalReq(i)
	}
	return resp
}

// nextReadyLocked scans for the first ready shard of the best job by
// (priority desc, submit order asc). The order slice stays
// submit-ordered; priority is applied by the scan. Caller holds c.mu.
func (c *Coordinator) nextReadyLocked() (*job, int) {
	var bestJob *job
	bestShard := -1
	for _, j := range c.order {
		if j.terminal() {
			continue
		}
		if bestJob != nil && (j.prio < bestJob.prio) {
			continue
		}
		if bestJob != nil && j.prio == bestJob.prio && j.seq > bestJob.seq {
			continue
		}
		for i, s := range j.shards {
			if s.state == shardReady {
				if bestJob == nil || j.prio > bestJob.prio ||
					(j.prio == bestJob.prio && j.seq < bestJob.seq) {
					bestJob, bestShard = j, i
				}
				break
			}
		}
	}
	return bestJob, bestShard
}

// expireLocked re-queues every leased shard past its deadline. Caller
// holds c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	expired := 0
	for _, j := range c.order {
		if j.terminal() {
			continue
		}
		for _, s := range j.shards {
			if s.state == shardLeased && now.After(s.deadline) {
				s.state = shardReady
				s.lease = 0
				s.worker = ""
				expired++
			}
		}
	}
	if expired > 0 {
		c.ob.Counter("queue.lease.expirations").Add(int64(expired))
		c.broadcast()
	}
}

// Complete accepts a leased shard's result (or failure). Stale leases —
// expired and possibly re-assigned — are acknowledged and discarded;
// the re-lease's result is the one that counts, and values are
// content-determined so the discard can never lose information.
func (c *Coordinator) Complete(req *dist.CompleteRequest) (*dist.CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[req.JobID]
	if !ok {
		return nil, fmt.Errorf("queue: no job %s", req.JobID)
	}
	if req.Shard < 0 || req.Shard >= len(j.shards) {
		return nil, fmt.Errorf("queue: job %s has no shard %d", req.JobID, req.Shard)
	}
	if j.terminal() {
		// Cancelled (or already finished) while the worker was busy.
		return &dist.CompleteResponse{OK: true, Stale: true}, nil
	}
	s := j.shards[req.Shard]
	if s.state != shardLeased || s.lease != req.Lease {
		c.ob.Counter("queue.complete.stale").Inc()
		return &dist.CompleteResponse{OK: true, Stale: true}, nil
	}
	if req.Err != "" {
		s.state = shardReady
		s.lease = 0
		s.worker = ""
		c.ob.Counter("queue.shard.failures").Inc()
		c.broadcast()
		return &dist.CompleteResponse{OK: true}, nil
	}
	value, err := j.encodeShardResult(req.Shard, req)
	if err != nil {
		// A malformed result is a worker bug: re-queue the shard and
		// reject the completion.
		s.state = shardReady
		s.lease = 0
		s.worker = ""
		c.ob.Counter("queue.shard.failures").Inc()
		c.broadcast()
		return nil, err
	}
	c.ob.Histogram("queue.shard.ns").ObserveDuration(time.Since(s.leasedAt))
	c.ob.Counter("queue.shards.completed").Inc()
	if req.Cached {
		c.ob.Counter("queue.shards.worker_cached").Inc()
	}
	c.walShardDone(j, req.Shard, value, req.Cached, req.Worker)
	c.applyDone(j, req.Shard, value, req.Cached, req.Worker, true)
	c.refreshState(j)
	c.maybeCompactLocked()
	c.ob.Gauge("queue.jobs.open").Set(float64(c.openJobs()))
	c.broadcast()
	return &dist.CompleteResponse{OK: true}, nil
}

// Cancel moves a non-terminal job to cancelled; in-flight leases are
// discarded at completion.
func (c *Coordinator) Cancel(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("queue: no job %s", id)
	}
	if j.terminal() {
		return fmt.Errorf("queue: job %s is already %s", id, j.state)
	}
	if err := c.walAppend(recCancel, &walCancel{ID: id}); err != nil {
		return err
	}
	j.state = dist.JobStateCancelled
	j.events = append(j.events, dist.StreamEvent{JobID: id, Done: true, State: j.state})
	c.ob.Counter("queue.jobs.cancelled").Inc()
	c.ob.Gauge("queue.jobs.open").Set(float64(c.openJobs()))
	c.broadcast()
	return nil
}

// Status returns one job's externally visible state.
func (c *Coordinator) Status(id string) (*dist.JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	st := j.status()
	return &st, true
}

// List returns every job's status in submit order.
func (c *Coordinator) List() []dist.JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]dist.JobStatus, 0, len(c.order))
	for _, j := range c.order {
		out = append(out, j.status())
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Result returns the merged terminal result of a done job (an error
// for unknown jobs; nil result with the job's state for unfinished or
// cancelled ones).
func (c *Coordinator) Result(id string) (*dist.JobResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("queue: no job %s", id)
	}
	return j.result()
}

// EventsSince returns a copy of a job's stream events from index `from`
// plus whether the job is terminal.
func (c *Coordinator) EventsSince(id string, from int) ([]dist.StreamEvent, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, false, false
	}
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	events := append([]dist.StreamEvent(nil), j.events[from:]...)
	return events, j.terminal(), true
}

// Wait blocks until the job reaches a terminal state and returns its
// merged result (in-process convenience used by tests and embedded
// callers; remote clients follow the stream endpoint).
func (c *Coordinator) Wait(id string) (*dist.JobResult, error) {
	for {
		c.mu.Lock()
		j, ok := c.jobs[id]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("queue: no job %s", id)
		}
		if j.terminal() {
			res, err := j.result()
			c.mu.Unlock()
			return res, err
		}
		pulse := c.pulse
		c.mu.Unlock()
		select {
		case <-pulse:
		case <-c.stop:
			return nil, fmt.Errorf("queue: coordinator closed while waiting for %s", id)
		}
	}
}

// expiryLoop re-queues expired leases in the background so stalled
// workers cannot wedge a job even with no lease traffic arriving.
func (c *Coordinator) expiryLoop() {
	defer c.bg.Done()
	interval := max(c.opts.LeaseTimeout/4, 50*time.Millisecond)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// executorLoop is the shared skeleton of the in-process and push-mode
// dispatchers: lease, execute, complete, repeat.
func (c *Coordinator) executorLoop(name string, exec func(*dist.LeaseResponse) *dist.CompleteRequest) {
	defer c.bg.Done()
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		lease, err := c.Lease(name, 500*time.Millisecond)
		if err != nil || lease.JobID == "" {
			continue
		}
		comp := exec(lease)
		comp.Worker = name
		comp.JobID = lease.JobID
		comp.Shard = lease.Shard
		comp.Lease = lease.Lease
		if _, err := c.Complete(comp); err != nil {
			c.ob.Counter("queue.executor.complete_errors").Inc()
		}
		if comp.Err != "" {
			// Executor failure (likely every push worker gone): back off
			// instead of spinning on the same shard.
			select {
			case <-c.stop:
				return
			case <-time.After(200 * time.Millisecond):
			}
		}
	}
}

// execLocal runs one leased shard in process.
func (c *Coordinator) execLocal(lease *dist.LeaseResponse) *dist.CompleteRequest {
	comp := &dist.CompleteRequest{}
	if lease.Kind == dist.JobCampaign {
		st, err := dist.RunInject(lease.Inject, c.ob)
		if err != nil {
			comp.Err = err.Error()
			return comp
		}
		comp.Stats = st
	} else {
		res, err := dist.RunEval(lease.Eval)
		if err != nil {
			comp.Err = err.Error()
			return comp
		}
		comp.Results = res
	}
	c.ob.Counter("queue.shards.executed_local").Inc()
	return comp
}

// execPush forwards one leased shard to a legacy push-mode worker.
func (c *Coordinator) execPush(lease *dist.LeaseResponse) *dist.CompleteRequest {
	comp := &dist.CompleteRequest{}
	if lease.Kind == dist.JobCampaign {
		st, err := c.push.PostInject(lease.Inject)
		if err != nil {
			comp.Err = err.Error()
			return comp
		}
		comp.Stats = st
	} else {
		res, err := c.push.PostEval(lease.Eval)
		if err != nil {
			comp.Err = err.Error()
			return comp
		}
		comp.Results = res
	}
	c.ob.Counter("queue.shards.executed_push").Inc()
	return comp
}

// Close gracefully shuts the coordinator down: new submits and leases
// are refused, in-flight leases get until ctx's deadline to complete
// (a lease that misses it is simply re-queued on the next start — the
// WAL already has everything else), the full state is snapshotted
// atomically, the WAL is reset and every file is flushed and closed.
func (c *Coordinator) Close(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.broadcast()
	c.mu.Unlock()

	// Drain: wait for outstanding leases to come home.
	for {
		c.mu.Lock()
		outstanding := 0
		for _, j := range c.order {
			if j.terminal() {
				continue
			}
			for _, s := range j.shards {
				if s.state == shardLeased {
					outstanding++
				}
			}
		}
		pulse := c.pulse
		c.mu.Unlock()
		if outstanding == 0 {
			break
		}
		select {
		case <-ctx.Done():
			c.ob.Counter("queue.close.undrained_leases").Add(int64(outstanding))
			goto drained
		case <-pulse:
		case <-time.After(100 * time.Millisecond):
		}
	}
drained:
	close(c.stop)
	c.bg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	if err := c.snapshotAndResetLocked(); err != nil {
		firstErr = err
	}
	if err := c.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := c.cache.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// snapshotAndResetLocked atomically writes snapshot.json capturing the
// full in-memory state, then truncates the WAL — the shared tail of
// graceful shutdown and online compaction. A crash between the two
// steps is safe: recovery replays the (now-duplicate) WAL records
// idempotently on top of the snapshot. Caller holds c.mu.
func (c *Coordinator) snapshotAndResetLocked() error {
	snap := snapshot{Version: snapshotVersion, NextSeq: c.nextSeq}
	for _, j := range c.order {
		sj := snapJob{
			walSubmit: walSubmit{ID: j.id, Seq: j.seq, Req: j.req, Bounds: boundsOf(j)},
			State:     j.state,
			Error:     j.errMsg,
		}
		for i, s := range j.shards {
			if s.state == shardDone {
				sj.Done = append(sj.Done, snapShard{Shard: i, Cached: s.cached, Worker: s.worker, Value: s.value})
			}
		}
		snap.Jobs = append(snap.Jobs, sj)
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("queue: marshal snapshot: %w", err)
	}
	if err := atomicWrite(filepath.Join(c.opts.DataDir, "snapshot.json"), data); err != nil {
		return err
	}
	return c.wal.Reset()
}

// maybeCompactLocked runs online WAL compaction once the log outgrows
// the configured bound. Failures are counted, not fatal: the WAL still
// holds everything the snapshot would have captured. Caller holds c.mu.
func (c *Coordinator) maybeCompactLocked() {
	if c.opts.CompactWALBytes <= 0 || c.wal.Size() < c.opts.CompactWALBytes {
		return
	}
	if err := c.snapshotAndResetLocked(); err != nil {
		c.ob.Counter("queue.wal.compact_errors").Inc()
		return
	}
	c.ob.Counter("queue.wal.compactions").Inc()
}

// boundsOf re-derives the persisted bounds slice of a job.
func boundsOf(j *job) [][2]int {
	out := make([][2]int, len(j.shards))
	for i, s := range j.shards {
		out[i] = [2]int{s.lo, s.hi}
	}
	return out
}

// Cache exposes the coordinator's result cache (worker-side lookups in
// tests; the CLI surfaces it for inspection).
func (c *Coordinator) Cache() *Cache { return c.cache }
