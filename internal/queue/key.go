package queue

import (
	"encoding/json"

	"harpocrates/internal/corpus"
	"harpocrates/internal/dist"
	"harpocrates/internal/stats"
)

// Cache key derivation. All three key components use the corpus
// hashing conventions (stats.Mix64 chains seeded with stats.HashInit,
// the same scheme behind corpus filenames and the evaluator's fitness
// memo), so "same content" means the same thing everywhere in the
// system:
//
//   - Program: the Mix64 fold of the HXPG program bytes (campaign
//     shards) or of the length-prefixed HXGT genotype batch (eval
//     shards);
//   - Config: the fold of the canonical JSON of the scalar
//     configuration(s) — hook and event fields carry json:"-" and so
//     are excluded by construction, exactly as on the wire;
//   - Spec: the fold of the fault or evaluation parameters, including
//     the shard bounds.
//
// Perf-only knobs (CheckpointInterval, NoFastForward,
// NoDeltaTermination, DeltaInterval) are deliberately excluded from
// the spec hash: the repo's differential tests prove campaign outcome
// vectors are bit-identical across all of them, so a result computed
// under any knob setting is valid for every other.

// foldU64 mixes one 64-bit word into a Mix64 chain.
func foldU64(h, v uint64) uint64 { return stats.Mix64(h, v) }

// foldBytes mixes a length-prefixed byte string into a Mix64 chain
// (the length prefix keeps concatenations unambiguous).
func foldBytes(h uint64, b []byte) uint64 {
	h = stats.Mix64(h, uint64(len(b)))
	for _, c := range b {
		h = stats.Mix64(h, uint64(c))
	}
	return h
}

// hashJSON content-hashes a value's canonical JSON encoding
// (encoding/json emits struct fields in declaration order, so the
// encoding is deterministic for a fixed type).
func hashJSON(v any) uint64 {
	data, err := json.Marshal(v)
	if err != nil {
		// Configuration types are plain scalar structs; marshal cannot
		// fail for them. An impossible failure degrades to a constant,
		// which only costs cache hits, never correctness.
		return stats.HashInit
	}
	return corpus.HashBytes(data)
}

// CampaignShardKey derives the content-addressed cache key of one
// campaign shard request ([Lo, Hi) of the campaign's N specs).
func CampaignShardKey(req *dist.InjectRequest) CacheKey {
	spec := stats.HashInit
	spec = foldBytes(spec, []byte(req.Target))
	spec = foldBytes(spec, []byte(req.Type))
	spec = foldU64(spec, uint64(req.N))
	spec = foldU64(spec, req.Seed)
	spec = foldU64(spec, req.IntermittentLen)
	spec = foldU64(spec, uint64(req.BurstLen))
	spec = foldU64(spec, uint64(req.Lo))
	spec = foldU64(spec, uint64(req.Hi))
	return CacheKey{
		Program: corpus.HashBytes(req.Program),
		Config:  hashJSON(req.Cfg),
		Spec:    spec,
	}
}

// EvalShardKey derives the content-addressed cache key of one
// evaluation shard request (its genotype slice).
func EvalShardKey(req *dist.EvalRequest) CacheKey {
	prog := stats.HashInit
	for _, g := range req.Genotypes {
		prog = foldBytes(prog, g)
	}
	cfg := stats.HashInit
	cfg = foldU64(cfg, hashJSON(req.Gen))
	cfg = foldU64(cfg, hashJSON(req.Core))
	spec := stats.HashInit
	spec = foldBytes(spec, []byte(req.Structure))
	spec = foldU64(spec, uint64(len(req.Genotypes)))
	return CacheKey{Program: prog, Config: cfg, Spec: spec}
}
