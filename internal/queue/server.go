package queue

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"harpocrates/internal/dist"
	"harpocrates/internal/obs"
)

// Server exposes the coordinator over HTTP: the v1 job endpoints, the
// work-stealing lease/complete pair for pulling workers, and the
// Prometheus exposition on the same listener.
//
//	POST /v1/jobs            submit a campaign or eval job
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}       one job's status (partial stats included)
//	GET  /v1/jobs/{id}/stream  JSONL shard-completion events until done
//	POST /v1/jobs/{id}/cancel  cancel a job
//	POST /v1/lease           long-poll for the next ready shard
//	POST /v1/complete        return a leased shard's result
//	GET  /v1/healthz         liveness
//	GET  /metrics            Prometheus text exposition
type Server struct {
	coord *Coordinator
}

// NewServer wraps a coordinator.
func NewServer(c *Coordinator) *Server { return &Server{coord: c} }

// Handler returns the coordinator's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(dist.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc(dist.PathJobs, s.handleJobs)
	mux.HandleFunc(dist.PathJobs+"/", s.handleJob)
	mux.HandleFunc(dist.PathLease, s.handleLease)
	mux.HandleFunc(dist.PathComplete, s.handleComplete)
	mux.Handle(dist.PathMetrics, obs.PromHandler(s.coord.ob.Registry()))
	return mux
}

// maxJobRequestBytes bounds one submitted job (programs are KBs;
// genotype batches can reach MBs).
const maxJobRequestBytes = 256 << 20

func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequestBytes))
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeBody(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleJobs serves POST (submit) and GET (list) on /v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeBody(w, &dist.JobListResponse{Jobs: s.coord.List()})
	case http.MethodPost:
		var req dist.JobRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequestBytes))
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.coord.Submit(&req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeBody(w, resp)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleJob routes /v1/jobs/{id}, /v1/jobs/{id}/stream and
// /v1/jobs/{id}/cancel.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, dist.PathJobs+"/")
	id, verb, _ := strings.Cut(rest, "/")
	if id == "" {
		http.Error(w, "missing job id", http.StatusBadRequest)
		return
	}
	switch verb {
	case "":
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st, ok := s.coord.Status(id)
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		writeBody(w, st)
	case "result":
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		res, err := s.coord.Result(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if res.State != dist.JobStateDone && res.State != dist.JobStateCancelled {
			http.Error(w, fmt.Sprintf("job %s is %s", id, res.State), http.StatusConflict)
			return
		}
		writeBody(w, res)
	case "cancel":
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if err := s.coord.Cancel(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeBody(w, map[string]bool{"ok": true})
	case "stream":
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.streamJob(w, r, id)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// streamJob writes the job's shard-completion events as JSON lines,
// following new events until the job is terminal or the client leaves.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, id string) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/jsonl")
	enc := json.NewEncoder(w)
	from := 0
	for {
		events, terminal, ok := s.coord.EventsSince(id, from)
		if !ok {
			if from == 0 {
				http.Error(w, "no such job", http.StatusNotFound)
			}
			return
		}
		for _, ev := range events {
			if err := enc.Encode(&ev); err != nil {
				return
			}
		}
		from += len(events)
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		pulse := s.coord.pulseChan()
		select {
		case <-r.Context().Done():
			return
		case <-s.coord.stop:
			return
		case <-pulse:
		case <-time.After(5 * time.Second):
			// Periodic re-check also doubles as a keep-alive bound.
		}
	}
}

// handleLease serves the work-stealing long poll.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req dist.LeaseRequest
	if !readBody(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait > 5*time.Minute {
		wait = 5 * time.Minute
	}
	resp, err := s.coord.Lease(req.Worker, wait)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, resp)
}

// handleComplete accepts a worker's shard result.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req dist.CompleteRequest
	if !readBody(w, r, &req) {
		return
	}
	resp, err := s.coord.Complete(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeBody(w, resp)
}
