package queue

import (
	"encoding/json"
	"fmt"
	"time"

	"harpocrates/internal/dist"
	"harpocrates/internal/inject"
)

// shardState is one shard's lifecycle position.
type shardState int

const (
	shardReady shardState = iota
	shardLeased
	shardDone
)

// shardRec is the coordinator's record of one planned shard. Bounds are
// fixed at submit time and persisted with the job, so a coordinator
// restarted with different sharding options still completes (and
// cache-keys) an old job exactly as planned.
type shardRec struct {
	lo, hi int
	state  shardState

	lease    uint64
	worker   string
	leasedAt time.Time
	deadline time.Time

	cached bool
	// value is the encoded result of a done shard: HXSR stats bytes for
	// campaign shards, JSON-encoded []dist.WireEvalResult for eval
	// shards — the same bytes the WAL records and the cache stores.
	value []byte
}

// job is one durable queue entry.
type job struct {
	id   string
	seq  int
	prio int
	req  *dist.JobRequest

	shards []*shardRec
	done   int
	cached int

	state  string
	errMsg string

	events []dist.StreamEvent
}

// planBounds cuts n work items into contiguous shards of at most size
// items (the last may be smaller).
func planBounds(n, size int) [][2]int {
	if size <= 0 {
		size = 1
	}
	var out [][2]int
	for lo := 0; lo < n; lo += size {
		out = append(out, [2]int{lo, min(lo+size, n)})
	}
	return out
}

// newJob builds the in-memory job for a validated request and planned
// bounds.
func newJob(id string, seq int, req *dist.JobRequest, bounds [][2]int) *job {
	j := &job{id: id, seq: seq, prio: req.Priority, req: req, state: dist.JobStatePending}
	for _, b := range bounds {
		j.shards = append(j.shards, &shardRec{lo: b[0], hi: b[1]})
	}
	return j
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	switch j.state {
	case dist.JobStateDone, dist.JobStateCancelled, dist.JobStateFailed:
		return true
	}
	return false
}

// shardInjectReq materializes shard i's self-contained wire request.
func (j *job) shardInjectReq(i int) *dist.InjectRequest {
	req := *j.req.Inject
	req.Lo, req.Hi = j.shards[i].lo, j.shards[i].hi
	return &req
}

// shardEvalReq materializes shard i's genotype slice request.
func (j *job) shardEvalReq(i int) *dist.EvalRequest {
	req := *j.req.Eval
	req.Genotypes = j.req.Eval.Genotypes[j.shards[i].lo:j.shards[i].hi]
	return &req
}

// shardKey is shard i's content-addressed cache key.
func (j *job) shardKey(i int) CacheKey {
	if j.req.Kind == dist.JobCampaign {
		return CampaignShardKey(j.shardInjectReq(i))
	}
	return EvalShardKey(j.shardEvalReq(i))
}

// encodeShardResult validates and encodes a completion's payload into
// the job's value format.
func (j *job) encodeShardResult(i int, req *dist.CompleteRequest) ([]byte, error) {
	s := j.shards[i]
	if j.req.Kind == dist.JobCampaign {
		if req.Stats == nil {
			return nil, fmt.Errorf("queue: campaign shard completed without stats")
		}
		if req.Stats.N != s.hi-s.lo || len(req.Stats.Outcomes) != req.Stats.N {
			return nil, fmt.Errorf("queue: shard [%d,%d) returned %d outcomes",
				s.lo, s.hi, len(req.Stats.Outcomes))
		}
		return inject.EncodeStats(req.Stats), nil
	}
	if len(req.Results) != s.hi-s.lo {
		return nil, fmt.Errorf("queue: eval shard [%d,%d) returned %d results",
			s.lo, s.hi, len(req.Results))
	}
	return json.Marshal(req.Results)
}

// decodeShardValue validates an encoded shard value (a cache hit or a
// WAL replay) against shard i's bounds; an undecodable or mis-sized
// value is reported so the caller can treat it as a miss.
func (j *job) decodeShardValue(i int, value []byte) error {
	s := j.shards[i]
	if j.req.Kind == dist.JobCampaign {
		st, err := inject.DecodeStats(value)
		if err != nil {
			return err
		}
		if st.N != s.hi-s.lo || len(st.Outcomes) != st.N {
			return fmt.Errorf("queue: cached shard [%d,%d) holds %d outcomes", s.lo, s.hi, st.N)
		}
		return nil
	}
	var res []dist.WireEvalResult
	if err := json.Unmarshal(value, &res); err != nil {
		return err
	}
	if len(res) != s.hi-s.lo {
		return fmt.Errorf("queue: cached eval shard [%d,%d) holds %d results", s.lo, s.hi, len(res))
	}
	return nil
}

// status renders the externally visible state. Caller holds the
// coordinator lock.
func (j *job) status() dist.JobStatus {
	st := dist.JobStatus{
		ID:       j.id,
		Kind:     j.req.Kind,
		State:    j.state,
		Priority: j.prio,
		Error:    j.errMsg,
		Shards:   len(j.shards),
		Done:     j.done,
		Cached:   j.cached,
	}
	if j.req.Kind == dist.JobCampaign && j.done > 0 {
		// Partial stats: the shard-order merge of the shards done so
		// far (the full merge once the job is done).
		var parts []*inject.Stats
		for _, s := range j.shards {
			if s.state != shardDone {
				continue
			}
			if dec, err := inject.DecodeStats(s.value); err == nil {
				parts = append(parts, dec)
			}
		}
		if merged, err := inject.MergeStats(parts); err == nil {
			st.Stats = merged
		}
	}
	return st
}

// result renders the merged terminal result. Caller holds the
// coordinator lock; the job must be done.
func (j *job) result() (*dist.JobResult, error) {
	out := &dist.JobResult{ID: j.id, Kind: j.req.Kind, State: j.state}
	if j.state != dist.JobStateDone {
		return out, nil
	}
	if j.req.Kind == dist.JobCampaign {
		parts := make([]*inject.Stats, len(j.shards))
		for i, s := range j.shards {
			dec, err := inject.DecodeStats(s.value)
			if err != nil {
				return nil, fmt.Errorf("queue: job %s shard %d: %w", j.id, i, err)
			}
			parts[i] = dec
		}
		merged, err := inject.MergeStats(parts)
		if err != nil {
			return nil, fmt.Errorf("queue: job %s: %w", j.id, err)
		}
		out.Stats = merged
		return out, nil
	}
	for i, s := range j.shards {
		var res []dist.WireEvalResult
		if err := json.Unmarshal(s.value, &res); err != nil {
			return nil, fmt.Errorf("queue: job %s shard %d: %w", j.id, i, err)
		}
		out.Results = append(out.Results, res...)
	}
	return out, nil
}

// WAL record kinds.
const (
	recSubmit    byte = 1
	recShardDone byte = 2
	recCancel    byte = 3
)

// walSubmit persists everything needed to rebuild a job: the full
// request and the planned shard bounds (so replay never depends on the
// restarted coordinator's sharding options).
type walSubmit struct {
	ID     string           `json:"id"`
	Seq    int              `json:"seq"`
	Req    *dist.JobRequest `json:"req"`
	Bounds [][2]int         `json:"bounds"`
}

// walShardDone persists one shard completion with its encoded value.
type walShardDone struct {
	ID     string `json:"id"`
	Shard  int    `json:"shard"`
	Cached bool   `json:"cached,omitempty"`
	Worker string `json:"worker,omitempty"`
	Value  []byte `json:"value"`
}

type walCancel struct {
	ID string `json:"id"`
}

// snapshot is the atomic full-state capture written at graceful
// shutdown (and after WAL-heavy replays); the WAL is reset right after
// a snapshot lands, so restart state = snapshot + WAL suffix.
type snapshot struct {
	Version int       `json:"version"`
	NextSeq int       `json:"next_seq"`
	Jobs    []snapJob `json:"jobs"`
}

const snapshotVersion = 1

type snapJob struct {
	walSubmit
	State string      `json:"state"`
	Error string      `json:"error,omitempty"`
	Done  []snapShard `json:"done,omitempty"`
}

type snapShard struct {
	Shard  int    `json:"shard"`
	Cached bool   `json:"cached,omitempty"`
	Worker string `json:"worker,omitempty"`
	Value  []byte `json:"value"`
}
