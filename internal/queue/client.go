package queue

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/dist"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// Client talks to a coordinator. It survives coordinator restarts: the
// durable queue means a submitted job keeps its identity across a
// crash, so Await simply re-polls until the restarted coordinator
// answers again.
type Client struct {
	base   string
	client *http.Client

	// PollInterval is the status re-poll cadence while awaiting
	// (default 200ms).
	PollInterval time.Duration
	// RetryWindow bounds how long transport errors are tolerated while
	// awaiting — the window a coordinator restart may take
	// (default 2 minutes).
	RetryWindow time.Duration
}

// NewClient builds a client for a coordinator base URL ("http://host:port";
// a bare "host:port" gets the scheme prefixed).
func NewClient(base string) *Client {
	base = strings.TrimSpace(base)
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base:         strings.TrimRight(base, "/"),
		client:       &http.Client{},
		PollInterval: 200 * time.Millisecond,
		RetryWindow:  2 * time.Minute,
	}
}

func (c *Client) post(path string, reqBody, respBody any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("queue: marshal request: %w", err)
	}
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("queue: %s: %w", path, err)
	}
	return decodeResp(resp, path, respBody)
}

func (c *Client) get(path string, respBody any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("queue: %s: %w", path, err)
	}
	return decodeResp(resp, path, respBody)
}

func decodeResp(resp *http.Response, path string, respBody any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("queue: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxJobRequestBytes)).Decode(respBody); err != nil {
		return fmt.Errorf("queue: %s: parse response: %w", path, err)
	}
	return nil
}

// Healthz probes the coordinator.
func (c *Client) Healthz() error {
	resp, err := c.client.Get(c.base + dist.PathHealthz)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("queue: healthz status %s", resp.Status)
	}
	return nil
}

// Submit posts one job.
func (c *Client) Submit(req *dist.JobRequest) (*dist.JobSubmitResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var resp dist.JobSubmitResponse
	if err := c.post(dist.PathJobs, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitCampaign wraps a local campaign + program into a queue job.
func (c *Client) SubmitCampaign(camp *inject.Campaign, p *prog.Program, priority int) (*dist.JobSubmitResponse, error) {
	ireq, err := dist.NewInjectRequest(camp, p)
	if err != nil {
		return nil, err
	}
	return c.Submit(&dist.JobRequest{Kind: dist.JobCampaign, Priority: priority, Inject: &ireq})
}

// Status fetches one job's status.
func (c *Client) Status(id string) (*dist.JobStatus, error) {
	var st dist.JobStatus
	if err := c.get(dist.PathJobs+"/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every job's status.
func (c *Client) List() ([]dist.JobStatus, error) {
	var resp dist.JobListResponse
	if err := c.get(dist.PathJobs, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Cancel cancels one job.
func (c *Client) Cancel(id string) error {
	var resp map[string]bool
	return c.post(dist.PathJobs+"/"+id+"/cancel", struct{}{}, &resp)
}

// Result fetches a terminal job's merged result.
func (c *Client) Result(id string) (*dist.JobResult, error) {
	var res dist.JobResult
	if err := c.get(dist.PathJobs+"/"+id+"/result", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Await polls a job to a terminal state and returns its merged result.
// Transport errors inside RetryWindow are retried — a coordinator
// restart mid-job resumes the durable queue, and the client just keeps
// asking. onEvent, if non-nil, receives each newly observed
// shard-completion count (for progress display).
func (c *Client) Await(id string, onEvent func(st *dist.JobStatus)) (*dist.JobResult, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	var lastErr error
	errSince := time.Time{}
	for {
		st, err := c.Status(id)
		if err != nil {
			// Distinguish "job unknown" (fatal: the coordinator lost its
			// state, or the id is wrong) from transport errors (retry:
			// the coordinator is restarting).
			if strings.Contains(err.Error(), "no such job") {
				return nil, err
			}
			if errSince.IsZero() {
				errSince = time.Now()
			}
			lastErr = err
			if time.Since(errSince) > c.RetryWindow {
				return nil, fmt.Errorf("queue: coordinator unreachable for %s: %w", c.RetryWindow, lastErr)
			}
			time.Sleep(interval)
			continue
		}
		errSince = time.Time{}
		if onEvent != nil {
			onEvent(st)
		}
		switch st.State {
		case dist.JobStateDone:
			return c.Result(id)
		case dist.JobStateCancelled, dist.JobStateFailed:
			res := &dist.JobResult{ID: id, Kind: st.Kind, State: st.State}
			if st.State == dist.JobStateFailed && st.Error != "" {
				return res, fmt.Errorf("queue: job %s failed: %s", id, st.Error)
			}
			return res, nil
		}
		time.Sleep(interval)
	}
}

// RunCampaign submits a campaign and awaits its merged statistics —
// the queue-backed drop-in for dist.Pool.RunCampaign, with the same
// bit-identity guarantee (shard-index-order merge of deterministic
// shard results).
func (c *Client) RunCampaign(camp *inject.Campaign, p *prog.Program) (*inject.Stats, error) {
	sub, err := c.SubmitCampaign(camp, p, 0)
	if err != nil {
		return nil, err
	}
	res, err := c.Await(sub.ID, nil)
	if err != nil {
		return nil, err
	}
	if res.State != dist.JobStateDone || res.Stats == nil {
		return nil, fmt.Errorf("queue: job %s ended %s without stats", sub.ID, res.State)
	}
	return res.Stats, nil
}

// clientEvaluator adapts the client to core.Evaluator: each evaluation
// batch becomes one queue job, sharded, cached and graded by the
// fleet, reassembled in input order.
type clientEvaluator struct {
	c *Client

	mu    sync.Mutex
	st    coverage.Structure
	gen   gen.Config
	core  uarch.Config
	ready bool
}

// Evaluator returns a core.Evaluator backed by the queue (set it as
// core.Options.Evaluator).
func (c *Client) Evaluator() core.Evaluator { return &clientEvaluator{c: c} }

func (e *clientEvaluator) Configure(st coverage.Structure, gcfg gen.Config, ccfg uarch.Config) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st = st
	e.gen = gcfg
	e.core = ccfg
	e.ready = true
	return nil
}

func (e *clientEvaluator) EvaluateBatch(gs []*gen.Genotype) ([]core.EvalResult, error) {
	e.mu.Lock()
	if !e.ready {
		e.mu.Unlock()
		return nil, fmt.Errorf("queue: evaluator used before Configure")
	}
	st, gcfg, ccfg := e.st, e.gen, e.core
	e.mu.Unlock()
	if len(gs) == 0 {
		return nil, nil
	}
	req := &dist.JobRequest{
		Kind: dist.JobEval,
		Eval: &dist.EvalRequest{
			Structure: st.String(),
			Gen:       gcfg,
			Core:      ccfg,
			Genotypes: dist.EncodeGenotypes(gs),
		},
	}
	sub, err := e.c.Submit(req)
	if err != nil {
		return nil, err
	}
	res, err := e.c.Await(sub.ID, nil)
	if err != nil {
		return nil, err
	}
	if res.State != dist.JobStateDone || len(res.Results) != len(gs) {
		return nil, fmt.Errorf("queue: eval job %s ended %s with %d/%d results",
			sub.ID, res.State, len(res.Results), len(gs))
	}
	out := make([]core.EvalResult, len(gs))
	for i, r := range res.Results {
		out[i] = core.EvalResult{Fitness: r.Fitness, Snapshot: r.Snapshot}
	}
	return out, nil
}
