package queue

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: 1, Payload: []byte(`{"id":"j-1"}`)},
		{Kind: 2, Payload: []byte{}},
		{Kind: 3, Payload: bytes.Repeat([]byte{0xab}, 1000)},
	}
	for _, r := range want {
		if err := w.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Kind != want[i].Kind || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	// Appending after replay must extend, not clobber.
	if err := w2.Append(4, []byte("post-replay")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || string(recs[3].Payload) != "post-replay" {
		t.Fatalf("after reopen+append: %d records", len(recs))
	}
}

// A torn tail (partial frame or payload from a crashed append) must be
// truncated, preserving every record before it.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, []byte("intact-one"))
	w.Append(2, []byte("intact-two"))
	w.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 15; cut++ {
		if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, recs, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		w2.Close()
		if len(recs) != 1 || string(recs[0].Payload) != "intact-one" {
			t.Fatalf("cut %d: replayed %d records", cut, len(recs))
		}
	}
}

// A flipped payload byte fails the CRC; replay stops before the corrupt
// record.
func TestWALCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, []byte("good"))
	w.Append(2, []byte("soon-corrupt"))
	w.Close()

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "good" {
		t.Fatalf("replayed %d records past a CRC failure", len(recs))
	}
	// The corrupt tail was truncated: appends go after the good record.
	if err := w2.Append(3, []byte("after")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs, _ = OpenWAL(path)
	if len(recs) != 2 || string(recs[1].Payload) != "after" {
		t.Fatalf("append after corruption: %d records", len(recs))
	}
}

func TestWALNotAWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("opened a non-WAL file without error")
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, []byte("pre-snapshot"))
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	w.Append(2, []byte("post-snapshot"))
	w.Close()
	_, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != 2 {
		t.Fatalf("after reset: %d records, kind %d", len(recs), recs[0].Kind)
	}
}
