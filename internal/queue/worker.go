package queue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"harpocrates/internal/dist"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
)

// WorkerOptions tunes a pull-mode worker.
type WorkerOptions struct {
	// Name identifies the worker in leases and metrics (default the
	// process hostname is NOT consulted — pass something meaningful).
	Name string
	// CacheDir, if set, opens a worker-side content-addressed result
	// cache: a leased shard whose key is already cached completes
	// without simulating, and fresh results are stored for the next
	// lease. Point several workers at a shared filesystem to pool it.
	CacheDir string
	// CacheEntries bounds the worker cache's in-memory LRU.
	CacheEntries int
	// WaitMs is the long-poll wait per lease request (default 30s).
	WaitMs int
	// GoldenCacheDir, if set, persists encoded golden artifact bundles
	// (inject golden runs: result, checkpoints, trajectory, interval
	// logs) across worker restarts; empty keeps the golden cache
	// memory-only. Independent of CacheDir — the result cache skips
	// whole shards, the golden cache skips the fixed cost of shards
	// that still simulate.
	GoldenCacheDir string
	// GoldenCacheEntries bounds the decoded golden bundles held in
	// memory (<= 0 means inject.DefaultGoldenCacheEntries).
	GoldenCacheEntries int
	// NoGoldenCache disables golden artifact reuse on this worker even
	// for campaigns that allow it (ablation knob).
	NoGoldenCache bool
	// Obs receives worker counters; may be nil.
	Obs *obs.Observer
}

// Worker pulls shards from a coordinator until its context ends: the
// work-stealing half of the queue. An idle worker long-polls
// POST /v1/lease; the coordinator hands it the next ready shard by
// priority and submit order. Faster machines simply come back sooner —
// load balance emerges with no tuning.
type Worker struct {
	base   string
	opts   WorkerOptions
	ob     *obs.Observer
	client *http.Client
	cache  *Cache
	golden *inject.GoldenCache
}

// NewWorker builds a worker against a coordinator base URL, opening the
// optional worker-side cache.
func NewWorker(base string, opts WorkerOptions) (*Worker, error) {
	base = strings.TrimSpace(base)
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if opts.Name == "" {
		opts.Name = "harpod"
	}
	if opts.WaitMs <= 0 {
		opts.WaitMs = 30_000
	}
	w := &Worker{
		base:   strings.TrimRight(base, "/"),
		opts:   opts,
		ob:     opts.Obs,
		client: &http.Client{},
	}
	if opts.CacheDir != "" {
		cache, err := OpenCache(opts.CacheDir, opts.CacheEntries, opts.Obs)
		if err != nil {
			return nil, err
		}
		w.cache = cache
	}
	if !opts.NoGoldenCache {
		golden, err := inject.NewGoldenCache(opts.GoldenCacheEntries, opts.GoldenCacheDir)
		if err != nil {
			w.cache.Close()
			return nil, err
		}
		w.golden = golden
	}
	return w, nil
}

// Cache exposes the worker-side cache (nil when none was configured).
func (w *Worker) Cache() *Cache { return w.cache }

// Close releases the worker caches.
func (w *Worker) Close() error {
	err := w.cache.Close()
	if gerr := w.golden.Close(); err == nil {
		err = gerr
	}
	return err
}

// Run pulls and executes shards until ctx is cancelled. Transport
// errors (coordinator restarting) back off and retry; the loop only
// ends with the context.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		lease, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.ob.Counter("queue.worker.lease_errors").Inc()
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(time.Second):
			}
			continue
		}
		if lease.JobID == "" {
			continue // nothing ready within the long poll
		}
		comp := w.execute(lease)
		comp.Worker = w.opts.Name
		comp.JobID = lease.JobID
		comp.Shard = lease.Shard
		comp.Lease = lease.Lease
		if err := w.complete(ctx, comp); err != nil {
			// The coordinator will expire the lease and re-queue; nothing
			// for the worker to do but move on.
			w.ob.Counter("queue.worker.complete_errors").Inc()
		}
	}
}

// lease long-polls the coordinator for one shard.
func (w *Worker) lease(ctx context.Context) (*dist.LeaseResponse, error) {
	req := dist.LeaseRequest{Worker: w.opts.Name, WaitMs: w.opts.WaitMs}
	var resp dist.LeaseResponse
	if err := w.post(ctx, dist.PathLease, &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// complete returns one shard result.
func (w *Worker) complete(ctx context.Context, comp *dist.CompleteRequest) error {
	var resp dist.CompleteResponse
	if err := w.post(ctx, dist.PathComplete, comp, &resp); err != nil {
		return err
	}
	if resp.Stale {
		w.ob.Counter("queue.worker.stale_completes").Inc()
	}
	return nil
}

// execute runs one leased shard, consulting the worker-side cache
// before simulating and feeding it after.
func (w *Worker) execute(lease *dist.LeaseResponse) *dist.CompleteRequest {
	comp := &dist.CompleteRequest{}
	if lease.Kind == dist.JobCampaign {
		key := CampaignShardKey(lease.Inject)
		if value, ok := w.cache.Get(key); ok {
			if st, err := inject.DecodeStats(value); err == nil &&
				st.N == lease.Inject.Hi-lease.Inject.Lo {
				w.ob.Counter("queue.worker.cache_hits").Inc()
				comp.Stats = st
				comp.Cached = true
				return comp
			}
		}
		st, err := dist.RunInjectCached(lease.Inject, w.ob, w.golden)
		if err != nil {
			comp.Err = err.Error()
			return comp
		}
		comp.Stats = st
		w.cachePut(key, inject.EncodeStats(st))
		return comp
	}

	key := EvalShardKey(lease.Eval)
	if value, ok := w.cache.Get(key); ok {
		var res []dist.WireEvalResult
		if err := json.Unmarshal(value, &res); err == nil && len(res) == len(lease.Eval.Genotypes) {
			w.ob.Counter("queue.worker.cache_hits").Inc()
			comp.Results = res
			comp.Cached = true
			return comp
		}
	}
	res, err := dist.RunEval(lease.Eval)
	if err != nil {
		comp.Err = err.Error()
		return comp
	}
	comp.Results = res
	if value, err := json.Marshal(res); err == nil {
		w.cachePut(key, value)
	}
	return comp
}

func (w *Worker) cachePut(key CacheKey, value []byte) {
	if err := w.cache.Put(key, value); err != nil {
		w.ob.Counter("queue.worker.cache_put_errors").Inc()
	}
}

// post sends one JSON request to the coordinator.
func (w *Worker) post(ctx context.Context, path string, reqBody, respBody any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("queue: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("queue: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("queue: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("queue: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxJobRequestBytes)).Decode(respBody); err != nil {
		return fmt.Errorf("queue: %s: parse response: %w", path, err)
	}
	return nil
}
