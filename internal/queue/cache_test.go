package queue

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"harpocrates/internal/obs"
)

func testKey(i int) CacheKey {
	return CacheKey{Program: uint64(i) * 7, Config: uint64(i) * 13, Spec: uint64(i) * 31}
}

func TestCachePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Put(testKey(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := c.Get(testKey(i))
		if !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := c.Get(testKey(n + 1)); ok {
		t.Fatal("hit for never-written key")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the on-disk index must serve everything back.
	c2, err := OpenCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", c2.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := c2.Get(testKey(i))
		if !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("reopened Get(%d) = %q, %v", i, v, ok)
		}
	}
}

// First write wins; a duplicate Put never changes a stored value.
func TestCacheFirstWriteWins(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := testKey(1)
	c.Put(k, []byte("first"))
	c.Put(k, []byte("second"))
	if v, _ := c.Get(k); string(v) != "first" {
		t.Fatalf("Get = %q, want first write", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// Values evicted from the in-memory LRU are still served from disk.
func TestCacheLRUReadThrough(t *testing.T) {
	reg := obs.NewRegistry()
	// memCap = max(1, 16/16) = 1 entry per shard: heavy eviction.
	c, err := OpenCache(t.TempDir(), 16, obs.New(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Put(testKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := c.Get(testKey(i))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if reg.Counter("queue.cache.mem_evictions").Load() == 0 {
		t.Fatal("no LRU evictions despite tiny capacity")
	}
	if reg.Counter("queue.cache.disk_hits").Load() == 0 {
		t.Fatal("no disk read-throughs despite tiny capacity")
	}
	if got := reg.Counter("queue.cache.hits").Load(); got != n {
		t.Fatalf("hits = %d, want %d", got, n)
	}
}

// A torn segment tail (crashed writer) loses only the torn record.
func TestCacheTornSegmentTail(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey(1), testKey(2)
	c.Put(k1, []byte("keep-me"))
	c.Put(k2, []byte("tear-me"))
	c.Close()

	// Both keys landed in some segment; tear the last 3 bytes off every
	// non-empty segment file.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil || len(data) == 0 {
			continue
		}
		if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := OpenCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Every surviving entry must still decode exactly; the torn ones are
	// simply gone.
	for _, k := range []CacheKey{k1, k2} {
		if v, ok := c2.Get(k); ok && string(v) != "keep-me" && string(v) != "tear-me" {
			t.Fatalf("corrupt value %q survived", v)
		}
	}
	// And the cache accepts fresh writes after the truncated tail.
	if err := c2.Put(testKey(3), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if v, ok := c2.Get(testKey(3)); !ok || string(v) != "fresh" {
		t.Fatalf("post-truncation Put/Get = %q, %v", v, ok)
	}
}

// The concurrency contract: parallel Puts and Gets of identical and
// distinct keys are race-clean and never serve a wrong value. Run under
// -race in CI.
func TestCacheConcurrent(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const (
		workers = 8
		keys    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := testKey(i)
				want := []byte(fmt.Sprintf("value-%d", i))
				// Same key written by every worker (identical bytes) plus
				// a worker-distinct key.
				if err := c.Put(k, want); err != nil {
					t.Error(err)
					return
				}
				if v, ok := c.Get(k); !ok || !bytes.Equal(v, want) {
					t.Errorf("worker %d: Get(%d) = %q, %v", w, i, v, ok)
					return
				}
				own := CacheKey{Program: uint64(w), Config: uint64(i), Spec: 99}
				ownVal := []byte(fmt.Sprintf("own-%d-%d", w, i))
				if err := c.Put(own, ownVal); err != nil {
					t.Error(err)
					return
				}
				if v, ok := c.Get(own); !ok || !bytes.Equal(v, ownVal) {
					t.Errorf("worker %d: own Get(%d) = %q, %v", w, i, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Len(), keys+workers*keys; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestCacheNil(t *testing.T) {
	var c *Cache
	if err := c.Put(testKey(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 || c.Contains(testKey(1)) || c.Sync() != nil || c.Close() != nil {
		t.Fatal("nil cache misbehaves")
	}
}
