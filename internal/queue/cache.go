package queue

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"harpocrates/internal/obs"
)

// Cache is the cluster-wide content-addressed result cache: a 16-way
// sharded on-disk index of encoded shard results keyed by
// (program hash, config hash, fault-spec hash), with an in-memory LRU
// of decoded values in front. Each shard owns one append-only segment
// file guarded by its own lock — there is no manifest.json-style
// single-file rewrite anywhere on the Put path, so millions of
// concurrent hits contend only on 1/16th of the keyspace and a Put is
// one appended record. Segment records are CRC-framed like the WAL's,
// and a torn tail from a crashed writer is truncated at open.
//
// Values for a key are byte-identical by construction (the key hashes
// every input the computation depends on), so first-write-wins is
// sound and concurrent Puts of the same key are harmless.
type Cache struct {
	dir    string
	ob     *obs.Observer
	memCap int // per-shard LRU capacity (entries)
	shards [cacheShards]cacheShard
}

const (
	cacheShards = 16

	// segKeySize + len + crc, before the payload.
	segFrameSize = 3*8 + 4 + 4

	// maxCacheValue bounds one decoded record (a shard result is KBs).
	maxCacheValue = 64 << 20

	// DefaultCacheEntries is the default in-memory LRU capacity.
	DefaultCacheEntries = 4096
)

// CacheKey addresses one shard result by content: the corpus-convention
// (Mix64 chain) hashes of the program bytes, the scalar configuration
// and the fault/evaluation spec. Perf-only knobs (checkpointing, cycle
// skipping, delta termination) are deliberately *not* part of the spec
// hash: the repo's differential tests prove they never change outcomes,
// so results are shared across them.
type CacheKey struct {
	Program uint64
	Config  uint64
	Spec    uint64
}

func (k CacheKey) String() string {
	return fmt.Sprintf("%016x-%016x-%016x", k.Program, k.Config, k.Spec)
}

// segRef locates one value inside a shard's segment file.
type segRef struct {
	off int64
	n   int32
}

// memEntry is one LRU element.
type memEntry struct {
	key CacheKey
	val []byte
}

type cacheShard struct {
	mu    sync.Mutex
	f     *os.File
	size  int64
	index map[CacheKey]segRef
	mem   map[CacheKey]*list.Element
	lru   *list.List // front = most recently used
}

// OpenCache opens (creating if needed) the cache at dir, replaying each
// shard's segment file into its index. memEntries bounds the decoded
// values held in memory across all shards (<= 0 means
// DefaultCacheEntries); the on-disk index is never bounded — evicted
// values are re-read from their segment on the next hit. The observer
// may be nil.
func OpenCache(dir string, memEntries int, ob *obs.Observer) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	if memEntries <= 0 {
		memEntries = DefaultCacheEntries
	}
	c := &Cache{dir: dir, ob: ob, memCap: max(1, memEntries/cacheShards)}
	for i := range c.shards {
		if err := c.shards[i].open(filepath.Join(dir, fmt.Sprintf("seg-%02x.log", i))); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.ob.Gauge("queue.cache.entries").Set(float64(c.Len()))
	return c, nil
}

// open replays one segment file, truncating any torn tail.
func (s *cacheShard) open(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("queue: open cache segment: %w", err)
	}
	s.f = f
	s.index = make(map[CacheKey]segRef)
	s.mem = make(map[CacheKey]*list.Element)
	s.lru = list.New()

	le := binary.LittleEndian
	var frame [segFrameSize]byte
	var off int64
	for {
		if _, err := f.ReadAt(frame[:], off); err != nil {
			break // EOF or torn frame
		}
		key := CacheKey{
			Program: le.Uint64(frame[0:8]),
			Config:  le.Uint64(frame[8:16]),
			Spec:    le.Uint64(frame[16:24]),
		}
		n := le.Uint32(frame[24:28])
		crc := le.Uint32(frame[28:32])
		if n > maxCacheValue {
			break
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+segFrameSize); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		if _, ok := s.index[key]; !ok { // first write wins
			s.index[key] = segRef{off: off + segFrameSize, n: int32(n)}
		}
		off += segFrameSize + int64(n)
	}
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("queue: truncate cache segment tail: %w", err)
	}
	s.size = off
	return nil
}

// shardFor maps a key to its shard (low bits of the spec hash, which
// already mixes every component).
func (c *Cache) shardFor(k CacheKey) *cacheShard {
	return &c.shards[(k.Program^k.Config^k.Spec)%cacheShards]
}

// Get returns the cached value for k, reading through to the segment
// file when the value has been evicted from memory.
func (c *Cache) Get(k CacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.mem[k]; ok {
		s.lru.MoveToFront(e)
		c.ob.Counter("queue.cache.hits").Inc()
		return e.Value.(*memEntry).val, true
	}
	ref, ok := s.index[k]
	if !ok {
		c.ob.Counter("queue.cache.misses").Inc()
		return nil, false
	}
	val := make([]byte, ref.n)
	if _, err := s.f.ReadAt(val, ref.off); err != nil {
		// The index said it was there; treat an unreadable segment as a
		// miss rather than failing the campaign.
		c.ob.Counter("queue.cache.read_errors").Inc()
		c.ob.Counter("queue.cache.misses").Inc()
		return nil, false
	}
	s.insertMemLocked(c, k, val)
	c.ob.Counter("queue.cache.hits").Inc()
	c.ob.Counter("queue.cache.disk_hits").Inc()
	return val, true
}

// Contains reports whether k is cached, without touching LRU order or
// the hit/miss counters.
func (c *Cache) Contains(k CacheKey) bool {
	if c == nil {
		return false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k]
	return ok
}

// Put stores a value for k. The first write wins; a Put of an already
// cached key is a no-op (values are content-determined, so they cannot
// differ).
func (c *Cache) Put(k CacheKey, val []byte) error {
	if c == nil {
		return nil
	}
	if len(val) > maxCacheValue {
		return fmt.Errorf("queue: cache value of %d bytes exceeds limit", len(val))
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if _, ok := s.index[k]; ok {
		s.mu.Unlock()
		return nil
	}
	buf := make([]byte, segFrameSize+len(val))
	le := binary.LittleEndian
	le.PutUint64(buf[0:8], k.Program)
	le.PutUint64(buf[8:16], k.Config)
	le.PutUint64(buf[16:24], k.Spec)
	le.PutUint32(buf[24:28], uint32(len(val)))
	le.PutUint32(buf[28:32], crc32.ChecksumIEEE(val))
	copy(buf[segFrameSize:], val)
	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("queue: cache append: %w", err)
	}
	s.index[k] = segRef{off: s.size + segFrameSize, n: int32(len(val))}
	s.size += int64(len(buf))
	s.insertMemLocked(c, k, append([]byte(nil), val...))
	s.mu.Unlock()
	c.ob.Counter("queue.cache.puts").Inc()
	// Gauge update happens outside the shard lock (Len re-takes it).
	c.ob.Gauge("queue.cache.entries").Set(float64(c.Len()))
	return nil
}

// insertMemLocked adds a value to the shard's LRU, evicting the least
// recently used entries past the capacity. Caller holds s.mu.
func (s *cacheShard) insertMemLocked(c *Cache, k CacheKey, val []byte) {
	if e, ok := s.mem[k]; ok {
		s.lru.MoveToFront(e)
		return
	}
	s.mem[k] = s.lru.PushFront(&memEntry{key: k, val: val})
	for s.lru.Len() > c.memCap {
		back := s.lru.Back()
		ent := back.Value.(*memEntry)
		s.lru.Remove(back)
		delete(s.mem, ent.key)
		c.ob.Counter("queue.cache.mem_evictions").Inc()
	}
}

// Len returns the number of cached entries (disk index, all shards).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}

// Sync flushes every segment file.
func (c *Cache) Sync() error {
	if c == nil {
		return nil
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		err := error(nil)
		if s.f != nil {
			err = s.f.Sync()
		}
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("queue: cache sync: %w", err)
		}
	}
	return nil
}

// Close syncs and closes every segment file.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	var first error
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if s.f != nil {
			if err := s.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := s.f.Close(); err != nil && first == nil {
				first = err
			}
			s.f = nil
		}
		s.mu.Unlock()
	}
	return first
}
