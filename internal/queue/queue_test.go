package queue

import (
	"context"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/dist"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// testCampaign builds a small deterministic campaign plus the program's
// serializable form (mirrors internal/dist's fixture so queue results
// are comparable with push-mode results).
func testCampaign(t *testing.T, n int) (*inject.Campaign, *prog.Program) {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 300
	rng := rand.New(rand.NewPCG(99, 100))
	p := gen.Materialize(gen.NewRandom(&cfg, rng), &cfg)
	c := &inject.Campaign{
		Prog:   p.Insts,
		Init:   p.InitFunc(),
		Target: coverage.IRF,
		Type:   inject.Transient,
		N:      n,
		Seed:   7,
		Cfg:    uarch.DefaultConfig(),
	}
	return c, p
}

func campaignJob(t *testing.T, c *inject.Campaign, p *prog.Program) *dist.JobRequest {
	t.Helper()
	ireq, err := dist.NewInjectRequest(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return &dist.JobRequest{Kind: dist.JobCampaign, Inject: &ireq}
}

// newTestCoordinator opens a coordinator over a temp data dir with fast
// lease handling and the given number of in-process executors.
func newTestCoordinator(t *testing.T, dir string, localExec int, reg *obs.Registry) *Coordinator {
	t.Helper()
	var ob *obs.Observer
	if reg != nil {
		ob = obs.New(reg, nil)
	}
	coord, err := NewCoordinator(Options{
		DataDir:      dir,
		ShardSize:    8,
		LeaseTimeout: 30 * time.Second,
		LocalExec:    localExec,
		Obs:          ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

func closeCoordinator(t *testing.T, c *Coordinator) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// crashCoordinator simulates a kill -9: background goroutines stop and
// every file handle is dropped with NO drain, NO snapshot and NO WAL
// reset — recovery must come entirely from the on-disk log.
func crashCoordinator(c *Coordinator) {
	close(c.stop)
	c.bg.Wait()
	c.wal.Close()
	c.cache.Close()
}

// The acceptance property: a campaign submitted through the queue is
// bit-identical to the in-process run.
func TestQueueCampaignBitIdentical(t *testing.T) {
	c, p := testCampaign(t, 40)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	coord := newTestCoordinator(t, t.TempDir(), 3, nil)
	defer closeCoordinator(t, coord)

	sub, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Shards != 5 || sub.CacheHits != 0 {
		t.Fatalf("submit = %+v, want 5 shards, 0 cache hits", sub)
	}
	res, err := coord.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != dist.JobStateDone || !res.Stats.Equal(local) {
		t.Fatalf("queue result %+v != local %+v", res.Stats, local)
	}
}

// Re-submitting an identical campaign must be served entirely from the
// result cache: every shard a cache hit, zero new executions, and the
// merged stats still bit-identical.
func TestQueueResubmitFullyCached(t *testing.T) {
	c, p := testCampaign(t, 32)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord := newTestCoordinator(t, t.TempDir(), 2, reg)
	defer closeCoordinator(t, coord)

	sub1, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Wait(sub1.ID); err != nil {
		t.Fatal(err)
	}
	executed := reg.Counter("queue.shards.executed_local").Load()

	sub2, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	if sub2.CacheHits != sub2.Shards {
		t.Fatalf("resubmit: %d/%d shards cached", sub2.CacheHits, sub2.Shards)
	}
	res, err := coord.Wait(sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Equal(local) {
		t.Fatalf("cached result %+v != local %+v", res.Stats, local)
	}
	if got := reg.Counter("queue.shards.executed_local").Load(); got != executed {
		t.Fatalf("resubmit executed %d new shards", got-executed)
	}
	if reg.Counter("queue.cache.hits").Load() == 0 {
		t.Fatal("no cache hits counted")
	}
	st, _ := coord.Status(sub2.ID)
	if st.Cached != st.Shards {
		t.Fatalf("status reports %d/%d cached", st.Cached, st.Shards)
	}
}

// An eval job through the queue grades bit-identically to in-process
// grading.
func TestQueueEvalBitIdentical(t *testing.T) {
	gcfg := gen.DefaultConfig()
	gcfg.NumInstrs = 200
	rng := rand.New(rand.NewPCG(5, 6))
	var gs []*gen.Genotype
	for i := 0; i < 10; i++ {
		gs = append(gs, gen.NewRandom(&gcfg, rng))
	}
	st := coverage.IRF
	metric := coverage.MetricFor(st)
	ccfg := uarch.DefaultConfig()
	want := make([]core.EvalResult, len(gs))
	for i, g := range gs {
		want[i] = core.GradeGenotype(g, &gcfg, ccfg, metric)
	}

	coord := newTestCoordinator(t, t.TempDir(), 2, nil)
	defer closeCoordinator(t, coord)
	req := &dist.JobRequest{
		Kind: dist.JobEval,
		Eval: &dist.EvalRequest{
			Structure: st.String(),
			Gen:       gcfg,
			Core:      ccfg,
			Genotypes: dist.EncodeGenotypes(gs),
		},
	}
	sub, err := coord.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(gs) {
		t.Fatalf("got %d results, want %d", len(res.Results), len(gs))
	}
	for i, r := range res.Results {
		if r.Fitness != want[i].Fitness {
			t.Fatalf("genotype %d: fitness %v != local %v", i, r.Fitness, want[i].Fitness)
		}
	}
}

// Kill the coordinator mid-campaign (no drain, no snapshot), restart it
// over the same directory, and the job must finish with bit-identical
// merged stats — partly from WAL-replayed shards, partly re-run.
func TestQueueCrashRestartMidCampaign(t *testing.T) {
	c, p := testCampaign(t, 40)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	coord := newTestCoordinator(t, dir, 0, nil) // no executors: we drive shards by hand
	sub, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	// Complete two shards, leave one leased (in flight), two untouched.
	for i := 0; i < 2; i++ {
		lease, err := coord.Lease("w1", time.Second)
		if err != nil || lease.JobID == "" {
			t.Fatalf("lease %d: %+v, %v", i, lease, err)
		}
		st, err := dist.RunInject(lease.Inject, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := coord.Complete(&dist.CompleteRequest{
			Worker: "w1", JobID: lease.JobID, Shard: lease.Shard, Lease: lease.Lease, Stats: st,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if lease, err := coord.Lease("w1", time.Second); err != nil || lease.JobID == "" {
		t.Fatalf("in-flight lease: %+v, %v", lease, err)
	}
	crashCoordinator(coord)

	// Restart: the WAL has the submit + 2 shard completions; the
	// in-flight lease was never logged, so its shard must be re-queued.
	reg := obs.NewRegistry()
	coord2 := newTestCoordinator(t, dir, 2, reg)
	defer closeCoordinator(t, coord2)
	if got := reg.Counter("queue.wal.replayed").Load(); got < 3 {
		t.Fatalf("replayed %d WAL records, want >= 3", got)
	}
	res, err := coord2.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Equal(local) {
		t.Fatalf("post-crash result %+v != local %+v", res.Stats, local)
	}
}

// A crash that tears the WAL tail (a partially flushed record) must
// lose only the torn record: restart re-runs that shard and the final
// stats stay bit-identical.
func TestQueueCrashTruncatedWAL(t *testing.T) {
	c, p := testCampaign(t, 24)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	coord := newTestCoordinator(t, dir, 0, nil)
	sub, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		lease, err := coord.Lease("w1", time.Second)
		if err != nil || lease.JobID == "" {
			t.Fatalf("lease %d: %+v, %v", i, lease, err)
		}
		st, err := dist.RunInject(lease.Inject, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := coord.Complete(&dist.CompleteRequest{
			Worker: "w1", JobID: lease.JobID, Shard: lease.Shard, Lease: lease.Lease, Stats: st,
		}); err != nil {
			t.Fatal(err)
		}
	}
	crashCoordinator(coord)

	// Tear the last 5 bytes off the WAL: the second completion record is
	// now torn and must be dropped at replay.
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	// The torn shard's result is also in the cache — wipe the cache too,
	// to force a genuine re-run rather than a cache rescue.
	if err := os.RemoveAll(filepath.Join(dir, "cache")); err != nil {
		t.Fatal(err)
	}

	coord2 := newTestCoordinator(t, dir, 2, nil)
	defer closeCoordinator(t, coord2)
	res, err := coord2.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Equal(local) {
		t.Fatalf("post-truncation result %+v != local %+v", res.Stats, local)
	}
}

// A graceful Close snapshots the state and resets the WAL; a restart
// serves the finished job from the snapshot alone.
func TestQueueGracefulShutdownSnapshot(t *testing.T) {
	c, p := testCampaign(t, 16)
	dir := t.TempDir()
	coord := newTestCoordinator(t, dir, 2, nil)
	sub, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := coord.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	closeCoordinator(t, coord)

	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after graceful close: %v", err)
	}
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != walHeaderSize {
		t.Fatalf("WAL not reset after snapshot: %d bytes", fi.Size())
	}

	coord2 := newTestCoordinator(t, dir, 0, nil)
	defer closeCoordinator(t, coord2)
	res2, err := coord2.Result(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.State != dist.JobStateDone || !res2.Stats.Equal(res1.Stats) {
		t.Fatalf("snapshot-restored result %+v != original %+v", res2.Stats, res1.Stats)
	}
}

// An expired lease re-queues its shard for the next worker; the late
// completion from the original holder is discarded as stale.
func TestQueueLeaseExpiryRequeue(t *testing.T) {
	c, p := testCampaign(t, 8)
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(Options{
		DataDir:      t.TempDir(),
		ShardSize:    8, // one shard
		LeaseTimeout: 50 * time.Millisecond,
		Obs:          obs.New(reg, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCoordinator(t, coord)
	if _, err := coord.Submit(campaignJob(t, c, p)); err != nil {
		t.Fatal(err)
	}
	lease1, err := coord.Lease("slow", time.Second)
	if err != nil || lease1.JobID == "" {
		t.Fatalf("lease: %+v, %v", lease1, err)
	}
	time.Sleep(100 * time.Millisecond)

	// The shard must be leasable again.
	lease2, err := coord.Lease("fast", 2*time.Second)
	if err != nil || lease2.JobID != lease1.JobID || lease2.Shard != lease1.Shard {
		t.Fatalf("re-lease: %+v, %v", lease2, err)
	}
	if reg.Counter("queue.lease.expirations").Load() == 0 {
		t.Fatal("no expiration counted")
	}
	st, err := dist.RunInject(lease2.Inject, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The slow worker's late completion is stale.
	resp, err := coord.Complete(&dist.CompleteRequest{
		Worker: "slow", JobID: lease1.JobID, Shard: lease1.Shard, Lease: lease1.Lease, Stats: st,
	})
	if err != nil || !resp.Stale {
		t.Fatalf("late complete = %+v, %v; want stale", resp, err)
	}
	// The re-lease completes normally.
	resp, err = coord.Complete(&dist.CompleteRequest{
		Worker: "fast", JobID: lease2.JobID, Shard: lease2.Shard, Lease: lease2.Lease, Stats: st,
	})
	if err != nil || resp.Stale {
		t.Fatalf("re-lease complete = %+v, %v", resp, err)
	}
	status, _ := coord.Status(lease2.JobID)
	if status.State != dist.JobStateDone {
		t.Fatalf("job state %s after completion", status.State)
	}
}

// Cancelled jobs stop leasing and report their state.
func TestQueueCancel(t *testing.T) {
	c, p := testCampaign(t, 16)
	reg := obs.NewRegistry()
	coord := newTestCoordinator(t, t.TempDir(), 0, reg)
	defer closeCoordinator(t, coord)
	sub, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	if err := coord.Cancel(sub.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if lease, _ := coord.Lease("w", 50*time.Millisecond); lease.JobID != "" {
		t.Fatalf("leased shard %d of a cancelled job", lease.Shard)
	}
	st, _ := coord.Status(sub.ID)
	if st.State != dist.JobStateCancelled {
		t.Fatalf("state = %s", st.State)
	}
	if reg.Counter("queue.jobs.cancelled").Load() != 1 {
		t.Fatal("cancel not counted")
	}
	res, err := coord.Wait(sub.ID)
	if err != nil || res.State != dist.JobStateCancelled {
		t.Fatalf("wait on cancelled job = %+v, %v", res, err)
	}
}

// Higher-priority jobs lease first regardless of submit order.
func TestQueuePriorityOrder(t *testing.T) {
	c, p := testCampaign(t, 8)
	coord := newTestCoordinator(t, t.TempDir(), 0, nil)
	defer closeCoordinator(t, coord)
	low, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	highReq := campaignJob(t, c, p)
	highReq.Priority = 5
	// Identical campaign — but the first job's shards aren't done yet, so
	// nothing is cached and both jobs need leases.
	high, err := coord.Submit(highReq)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := coord.Lease("w", time.Second)
	if err != nil || lease.JobID != high.ID {
		t.Fatalf("first lease went to %s, want high-priority %s (%v)", lease.JobID, high.ID, err)
	}
	// Cancel both jobs so Close doesn't wait out the un-returned lease.
	for _, id := range []string{low.ID, high.ID} {
		if err := coord.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
}

// Full HTTP round trip: coordinator behind httptest, a pulling Worker
// with a worker-side cache, a Client submitting and awaiting. The
// merged result is bit-identical; a second identical job is served by
// the coordinator cache without the worker seeing a single lease.
func TestQueueHTTPEndToEnd(t *testing.T) {
	cmp, p := testCampaign(t, 40)
	local, err := cmp.Run()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord := newTestCoordinator(t, t.TempDir(), 0, reg)
	defer closeCoordinator(t, coord)
	srv := httptest.NewServer(NewServer(coord).Handler())
	defer srv.Close()

	wreg := obs.NewRegistry()
	worker, err := NewWorker(srv.URL, WorkerOptions{
		Name:     "puller",
		CacheDir: t.TempDir(),
		WaitMs:   200,
		Obs:      obs.New(wreg, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); worker.Run(ctx) }()

	client := NewClient(srv.URL)
	client.PollInterval = 20 * time.Millisecond
	sub, err := client.SubmitCampaign(cmp, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawProgress bool
	res, err := client.Await(sub.ID, func(st *dist.JobStatus) {
		if st.Done > 0 {
			sawProgress = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Equal(local) {
		t.Fatalf("HTTP result %+v != local %+v", res.Stats, local)
	}
	if !sawProgress {
		t.Fatal("Await never reported progress")
	}

	// Second identical submit: pure coordinator-cache hits.
	sub2, err := client.SubmitCampaign(cmp, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.CacheHits != sub2.Shards {
		t.Fatalf("resubmit over HTTP: %d/%d cached", sub2.CacheHits, sub2.Shards)
	}
	res2, err := client.Await(sub2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.Equal(local) {
		t.Fatalf("cached HTTP result %+v != local %+v", res2.Stats, local)
	}

	// Job list over HTTP sees both jobs.
	jobs, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(jobs))
	}
	cancel()
	<-workerDone
}

// The worker-side cache short-circuits simulation: a worker that
// already holds a shard's result completes it as Cached without
// executing, and the coordinator counts it.
func TestQueueWorkerSideCache(t *testing.T) {
	cmp, p := testCampaign(t, 16)
	reg := obs.NewRegistry()
	coord := newTestCoordinator(t, t.TempDir(), 0, reg)
	defer closeCoordinator(t, coord)
	srv := httptest.NewServer(NewServer(coord).Handler())
	defer srv.Close()

	cacheDir := t.TempDir()
	worker, err := NewWorker(srv.URL, WorkerOptions{Name: "w", CacheDir: cacheDir, WaitMs: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	// Pre-warm the worker cache by hand: execute the job's shard
	// requests directly and Put them under their keys.
	sub, err := NewClient(srv.URL).Submit(campaignJob(t, cmp, p))
	if err != nil {
		t.Fatal(err)
	}
	// Hold every shard's lease at once (a failed lease would re-queue
	// and be handed right back), warm the cache, then fail them all so
	// the shards re-queue for the real worker.
	var leases []*dist.LeaseResponse
	for {
		lease, err := coord.Lease("warmer", 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if lease.JobID == "" {
			break
		}
		leases = append(leases, lease)
	}
	if len(leases) != sub.Shards {
		t.Fatalf("warmed %d leases, want %d", len(leases), sub.Shards)
	}
	for _, lease := range leases {
		st, err := dist.RunInject(lease.Inject, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := worker.Cache().Put(CampaignShardKey(lease.Inject), inject.EncodeStats(st)); err != nil {
			t.Fatal(err)
		}
		if _, err := coord.Complete(&dist.CompleteRequest{
			Worker: "warmer", JobID: lease.JobID, Shard: lease.Shard, Lease: lease.Lease,
			Err: "warm-up only",
		}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); worker.Run(ctx) }()
	if _, err := coord.Wait(sub.ID); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-workerDone

	if got := reg.Counter("queue.shards.worker_cached").Load(); got != int64(sub.Shards) {
		t.Fatalf("worker-cached completions = %d, want %d", got, sub.Shards)
	}
	st, _ := coord.Status(sub.ID)
	if st.State != dist.JobStateDone {
		t.Fatalf("job state %s", st.State)
	}
}

// The JSONL stream endpoint delivers one event per shard plus the
// terminal event.
func TestQueueStreamEvents(t *testing.T) {
	cmp, p := testCampaign(t, 16)
	coord := newTestCoordinator(t, t.TempDir(), 2, nil)
	defer closeCoordinator(t, coord)

	sub, err := coord.Submit(campaignJob(t, cmp, p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Wait(sub.ID); err != nil {
		t.Fatal(err)
	}
	events, terminal, ok := coord.EventsSince(sub.ID, 0)
	if !ok || !terminal {
		t.Fatalf("EventsSince: ok=%v terminal=%v", ok, terminal)
	}
	if len(events) != sub.Shards+1 {
		t.Fatalf("%d events, want %d shard events + terminal", len(events), sub.Shards)
	}
	last := events[len(events)-1]
	if !last.Done || last.State != dist.JobStateDone {
		t.Fatalf("terminal event = %+v", last)
	}
	seen := map[int]bool{}
	for _, ev := range events[:len(events)-1] {
		seen[ev.Shard] = true
	}
	if len(seen) != sub.Shards {
		t.Fatalf("events cover %d distinct shards, want %d", len(seen), sub.Shards)
	}
}

// The queue-backed evaluator is a drop-in for core.Evaluator: results
// arrive in input order with in-process fitness values.
func TestQueueClientEvaluator(t *testing.T) {
	gcfg := gen.DefaultConfig()
	gcfg.NumInstrs = 150
	rng := rand.New(rand.NewPCG(8, 9))
	var gs []*gen.Genotype
	for i := 0; i < 6; i++ {
		gs = append(gs, gen.NewRandom(&gcfg, rng))
	}
	st := coverage.IRF
	metric := coverage.MetricFor(st)
	ccfg := uarch.DefaultConfig()

	coord := newTestCoordinator(t, t.TempDir(), 2, nil)
	defer closeCoordinator(t, coord)
	srv := httptest.NewServer(NewServer(coord).Handler())
	defer srv.Close()

	client := NewClient(srv.URL)
	client.PollInterval = 20 * time.Millisecond
	ev := client.Evaluator()
	if err := ev.Configure(st, gcfg, ccfg); err != nil {
		t.Fatal(err)
	}
	got, err := ev.EvaluateBatch(gs)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		want := core.GradeGenotype(g, &gcfg, ccfg, metric)
		if got[i].Fitness != want.Fitness {
			t.Fatalf("genotype %d: queue fitness %v != local %v", i, got[i].Fitness, want.Fitness)
		}
	}
}

// Online WAL compaction: with a 1-byte threshold every submit and
// completion trips a snapshot + log reset, so the WAL never grows past
// one durable write and the counter records each compaction.
func TestWALCompactionBySize(t *testing.T) {
	c, p := testCampaign(t, 40)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(Options{
		DataDir:         dir,
		ShardSize:       8,
		LeaseTimeout:    30 * time.Second,
		LocalExec:       2,
		CompactWALBytes: 1,
		Obs:             obs.New(reg, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Equal(local) {
		t.Fatalf("compacted-queue result %+v != local %+v", res.Stats, local)
	}
	if got := reg.Counter("queue.wal.compactions").Load(); got < int64(1+sub.Shards) {
		t.Fatalf("compactions = %d, want >= %d (submit + every completion)", got, 1+sub.Shards)
	}
	if got := reg.Counter("queue.wal.compact_errors").Load(); got != 0 {
		t.Fatalf("compact_errors = %d", got)
	}
	// The final completion's compaction left the log at its bare header.
	info, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != walHeaderSize {
		t.Fatalf("wal.log is %d bytes after compaction, want header-only %d", info.Size(), walHeaderSize)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("compaction wrote no snapshot: %v", err)
	}

	// Crash (no graceful drain): recovery must come from the compaction
	// snapshot alone, with the finished job and its result intact.
	crashCoordinator(coord)
	reg2 := obs.NewRegistry()
	coord2, err := NewCoordinator(Options{
		DataDir:      dir,
		ShardSize:    8,
		LeaseTimeout: 30 * time.Second,
		LocalExec:    2,
		Obs:          obs.New(reg2, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCoordinator(t, coord2)
	res2, err := coord2.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.State != dist.JobStateDone || !res2.Stats.Equal(local) {
		t.Fatalf("post-crash result %+v (%v) != local %+v", res2.Stats, res2.State, local)
	}
}

// A crash between the compaction snapshot write and the WAL reset
// leaves log records the snapshot already covers. Replay must apply
// them idempotently (counted, not fatal) and the recovered state must
// still be correct.
func TestWALCompactionCrashBetweenSnapshotAndReset(t *testing.T) {
	c, p := testCampaign(t, 24)
	local, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")

	// Phase 1: compaction off — the WAL accumulates job 1's full record
	// stream, which we save as the "stale" log.
	coord, err := NewCoordinator(Options{
		DataDir:         dir,
		ShardSize:       8,
		LeaseTimeout:    30 * time.Second,
		LocalExec:       2,
		CompactWALBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := coord.Submit(campaignJob(t, c, p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Wait(sub.ID); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	crashCoordinator(coord)

	// Phase 2: compaction on — recovery replays the log, and the next
	// state change snapshots everything and resets it.
	coord2, err := NewCoordinator(Options{
		DataDir:         dir,
		ShardSize:       8,
		LeaseTimeout:    30 * time.Second,
		LocalExec:       2,
		CompactWALBytes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c2, p2 := testCampaign(t, 8)
	sub2, err := coord2.Submit(campaignJob(t, c2, p2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord2.Wait(sub2.ID); err != nil {
		t.Fatal(err)
	}
	crashCoordinator(coord2)

	// Simulate the crash window: the snapshot is on disk, but the WAL
	// still holds job 1's records (all covered by the snapshot).
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord3, err := NewCoordinator(Options{
		DataDir:      dir,
		ShardSize:    8,
		LeaseTimeout: 30 * time.Second,
		LocalExec:    2,
		Obs:          obs.New(reg, nil),
	})
	if err != nil {
		t.Fatalf("recovery with a stale pre-compaction WAL failed: %v", err)
	}
	defer closeCoordinator(t, coord3)
	if got := reg.Counter("queue.wal.replay_duplicates").Load(); got < 1 {
		t.Fatalf("replay_duplicates = %d, want >= 1 (job 1's submit is in both snapshot and WAL)", got)
	}
	res, err := coord3.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Equal(local) {
		t.Fatalf("post-duplicate-replay result %+v != local %+v", res.Stats, local)
	}
	if _, err := coord3.Wait(sub2.ID); err != nil {
		t.Fatal(err)
	}
}

// An adaptive+Pareto refinement run grading through the queue-backed
// evaluator must stay bit-identical to the all-local run (the operator
// portfolio and Pareto selection both consume only locally drawn
// randomness; remote grading returns the same fitness values).
func TestQueueAdaptiveEvaluatorBitIdentical(t *testing.T) {
	opts := func() core.Options {
		o := core.Options{Structure: coverage.IntAdder, Seed: 42}
		o.Gen = gen.DefaultConfig()
		o.Gen.NumInstrs = 150
		o.PopSize = 8
		o.TopK = 2
		o.MutantsPerParent = 3
		o.Iterations = 4
		o.Adaptive = true
		o.Pareto = true
		return o
	}
	local, err := core.Run(opts())
	if err != nil {
		t.Fatal(err)
	}

	coord := newTestCoordinator(t, t.TempDir(), 2, nil)
	defer closeCoordinator(t, coord)
	srv := httptest.NewServer(NewServer(coord).Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	client.PollInterval = 20 * time.Millisecond

	qo := opts()
	qo.Evaluator = client.Evaluator()
	remote, err := core.Run(qo)
	if err != nil {
		t.Fatal(err)
	}

	if !equalFloats(remote.History.Best, local.History.Best) ||
		!equalFloats(remote.History.MeanTopK, local.History.MeanTopK) {
		t.Errorf("queue-evaluated adaptive history diverged:\nremote: %v\nlocal:  %v",
			remote.History.Best, local.History.Best)
	}
	if remote.Best.G.Hash() != local.Best.G.Hash() {
		t.Errorf("queue-evaluated adaptive best diverged: %#x != %#x",
			remote.Best.G.Hash(), local.Best.G.Hash())
	}
	if len(remote.Front) != len(local.Front) {
		t.Fatalf("front size %d != local %d", len(remote.Front), len(local.Front))
	}
	for i := range remote.Front {
		if remote.Front[i].G.Hash() != local.Front[i].G.Hash() {
			t.Errorf("front[%d] diverged: %#x != %#x",
				i, remote.Front[i].G.Hash(), local.Front[i].G.Hash())
		}
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
