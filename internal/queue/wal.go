// Package queue is the campaign-as-a-service layer of the Harpocrates
// reproduction: a durable job coordinator (submit / status / stream /
// cancel over the internal/dist v1 wire protocol) with work-stealing
// lease dispatch across heterogeneous pull-mode workers, a push-mode
// fallback for legacy workers, crash-safe append-only WAL + snapshot
// persistence of every job and shard, and a cluster-wide
// content-addressed result cache keyed by (program hash, config hash,
// fault-spec hash) so no identical fault is ever simulated twice
// fleet-wide.
//
// Determinism: a job's merged result is assembled from shard results in
// shard-index order (inject.MergeStats for campaigns, positional
// concatenation for evaluation batches), shard bounds are fixed at
// submit time and persisted, and cache values are the byte-exact
// encoded results of an identical shard request — so queue-path
// results are bit-identical to single-process runs across worker
// death, coordinator restart and warm-cache replay alike.
package queue

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// WAL container format: an 8-byte header (magic "HQWL", u32 version),
// then a sequence of CRC-framed records
//
//	[1B kind][4B payload len LE][4B crc32(payload) LE][payload]
//
// appended with a single write each. Replay reads records until EOF, a
// torn tail (short frame or payload) or a CRC mismatch; everything
// after the last intact record is truncated away, so a coordinator
// killed mid-append restarts from a consistent prefix.
const (
	walMagic   = 0x4851574c // "HQWL"
	walVersion = 1

	walHeaderSize = 8
	walFrameSize  = 9 // kind + len + crc

	// maxWALPayload bounds one record (job submits carry whole program
	// images; shard results are small).
	maxWALPayload = 256 << 20
)

// Record is one replayed WAL entry.
type Record struct {
	Kind    byte
	Payload []byte
}

// WAL is an append-only, CRC-checked write-ahead log. Append is safe
// for concurrent use.
type WAL struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// OpenWAL opens (creating if needed) the log at path and replays it,
// returning every intact record in append order. A torn or corrupt
// tail is truncated; a corrupt header is an error (the file is not a
// WAL — refusing to overwrite beats silently destroying foreign data).
func OpenWAL(path string) (*WAL, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("queue: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("queue: open wal: %w", err)
	}
	w := &WAL{path: path, f: f}
	recs, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("queue: truncate wal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("queue: seek wal: %w", err)
	}
	return w, recs, nil
}

// replay scans the whole file, returning the intact records and the
// offset of the first byte past the last intact record.
func replay(f *os.File) ([]Record, int64, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("queue: stat wal: %w", err)
	}
	le := binary.LittleEndian
	if info.Size() < walHeaderSize {
		// Empty or torn header: (re)write it.
		var hdr [walHeaderSize]byte
		le.PutUint32(hdr[0:], walMagic)
		le.PutUint32(hdr[4:], walVersion)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return nil, 0, fmt.Errorf("queue: write wal header: %w", err)
		}
		return nil, walHeaderSize, nil
	}
	var hdr [walHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, 0, fmt.Errorf("queue: read wal header: %w", err)
	}
	if le.Uint32(hdr[0:]) != walMagic {
		return nil, 0, fmt.Errorf("queue: %s is not a WAL (bad magic %#x)", f.Name(), le.Uint32(hdr[0:]))
	}
	if v := le.Uint32(hdr[4:]); v != walVersion {
		return nil, 0, fmt.Errorf("queue: unsupported WAL version %d", v)
	}

	var recs []Record
	off := int64(walHeaderSize)
	var frame [walFrameSize]byte
	for {
		if _, err := f.ReadAt(frame[:], off); err != nil {
			break // EOF or torn frame: stop at the last intact record
		}
		n := le.Uint32(frame[1:5])
		crc := le.Uint32(frame[5:9])
		if n > maxWALPayload {
			break
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+walFrameSize); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt record: everything after it is suspect too
		}
		recs = append(recs, Record{Kind: frame[0], Payload: payload})
		off += walFrameSize + int64(n)
	}
	return recs, off, nil
}

// Append durably appends one record: the frame and payload go out in a
// single write followed by an fsync, so a record either replays intact
// or is truncated as a torn tail — never half-applied.
func (w *WAL) Append(kind byte, payload []byte) error {
	if len(payload) > maxWALPayload {
		return fmt.Errorf("queue: wal record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, walFrameSize+len(payload))
	buf[0] = kind
	le := binary.LittleEndian
	le.PutUint32(buf[1:5], uint32(len(payload)))
	le.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[walFrameSize:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("queue: wal closed")
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("queue: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("queue: wal sync: %w", err)
	}
	return nil
}

// Reset truncates the log back to its header — called right after a
// snapshot has atomically captured everything the log recorded.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("queue: wal closed")
	}
	if err := w.f.Truncate(walHeaderSize); err != nil {
		return fmt.Errorf("queue: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("queue: wal reset: %w", err)
	}
	return w.f.Sync()
}

// Size returns the log's current byte length, header included (0 once
// closed). The write offset always sits at end-of-file, so the seek
// position is the size.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0
	}
	off, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0
	}
	return off
}

// Sync flushes the log to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// atomicWrite writes data to path via temp file + rename (the corpus
// store's crash-safety idiom).
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("queue: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("queue: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("queue: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("queue: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("queue: write %s: %w", path, err)
	}
	return nil
}
