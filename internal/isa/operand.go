package isa

import "fmt"

// OpKind classifies an operand slot.
type OpKind uint8

// Operand kinds.
const (
	KNone OpKind = iota
	KReg         // general-purpose register
	KXmm         // vector register
	KImm         // immediate
	KMem         // memory reference (base + optional index*scale + disp)
)

func (k OpKind) String() string {
	switch k {
	case KNone:
		return "none"
	case KReg:
		return "reg"
	case KXmm:
		return "xmm"
	case KImm:
		return "imm"
	case KMem:
		return "mem"
	}
	return fmt.Sprintf("kind?%d", uint8(k))
}

// Access describes how a variant uses an operand slot.
type Access uint8

// Access modes.
const (
	AccR  Access = 1 << iota // read
	AccW                     // written
	AccRW = AccR | AccW
)

// OperandSpec describes one operand slot of an instruction variant.
type OperandSpec struct {
	Kind  OpKind
	Width Width
	Acc   Access
}

// MemRef is a resolved memory reference: [base + index*scale + disp].
type MemRef struct {
	Base     Reg
	HasIndex bool
	Index    Reg
	Scale    uint8 // 1, 2, 4 or 8
	Disp     int32
}

func (m MemRef) String() string {
	s := fmt.Sprintf("%d(%%%s", m.Disp, m.Base)
	if m.HasIndex {
		s += fmt.Sprintf(",%%%s,%d", m.Index, m.Scale)
	}
	return s + ")"
}

// Operand is a concrete, resolved operand of an instruction instance.
// Exactly one of the payload fields is meaningful depending on Kind.
type Operand struct {
	Kind OpKind
	Reg  Reg
	X    XReg
	Imm  int64
	Mem  MemRef
}

func (o Operand) String() string {
	switch o.Kind {
	case KReg:
		return "%" + o.Reg.String()
	case KXmm:
		return "%" + o.X.String()
	case KImm:
		return fmt.Sprintf("$%d", o.Imm)
	case KMem:
		return o.Mem.String()
	}
	return "?"
}

// RegOp builds a GPR operand.
func RegOp(r Reg) Operand { return Operand{Kind: KReg, Reg: r} }

// XmmOp builds a vector-register operand.
func XmmOp(x XReg) Operand { return Operand{Kind: KXmm, X: x} }

// ImmOp builds an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KImm, Imm: v} }

// MemOp builds a base+disp memory operand.
func MemOp(base Reg, disp int32) Operand {
	return Operand{Kind: KMem, Mem: MemRef{Base: base, Disp: disp, Scale: 1}}
}

// MemIdxOp builds a base+index*scale+disp memory operand.
func MemIdxOp(base, index Reg, scale uint8, disp int32) Operand {
	return Operand{Kind: KMem, Mem: MemRef{Base: base, HasIndex: true, Index: index, Scale: scale, Disp: disp}}
}

// MaxOperands is the maximum number of explicit operands of any variant.
const MaxOperands = 3

// Inst is a concrete instruction instance: a variant plus resolved
// operands. It is the unit stored in generated programs and executed by
// both the functional emulator and the out-of-order core model.
type Inst struct {
	V    VariantID
	Ops  [MaxOperands]Operand
	NOps uint8
}

// MakeInst builds an instruction from a variant and operands.
func MakeInst(v VariantID, ops ...Operand) Inst {
	in := Inst{V: v, NOps: uint8(len(ops))}
	copy(in.Ops[:], ops)
	return in
}

// Variant returns the instruction's variant descriptor.
func (in Inst) Variant() *Variant { return Lookup(in.V) }

// String renders the instruction in an AT&T-flavoured syntax
// ("mnemonic src, dst" order is NOT used; we print dst-first Intel-style
// for readability).
func (in Inst) String() string {
	v := Lookup(in.V)
	s := v.Mnemonic
	for i := 0; i < int(in.NOps); i++ {
		if i == 0 {
			s += " "
		} else {
			s += ", "
		}
		s += in.Ops[i].String()
	}
	return s
}
