package isa

import "testing"

// FuzzDecode asserts the decoder is total and canonicalizing: arbitrary
// bytes never panic, the consumed length stays within the buffer, and
// decoding is idempotent — re-encoding a decoded instruction and
// decoding again yields the identical instruction. (Byte-identity does
// not hold in general: selector and register fields decode modulo their
// table sizes, like ignored prefix bits in dense CISC encodings.)
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x00, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff})
	// A valid encoded instruction as seed.
	det := Deterministic()
	f.Add(Encode(nil, MakeInst(det[0])))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, n, err := Decode(data)
		if n < 0 || (err == nil && n > len(data)) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if err != nil {
			return
		}
		re := Encode(nil, in)
		in2, n2, err2 := Decode(re)
		if err2 != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err2)
		}
		if n2 != len(re) {
			t.Fatalf("canonical decode consumed %d of %d", n2, len(re))
		}
		if in2.V != in.V || in2.NOps != in.NOps || in2.Ops != in.Ops {
			t.Fatalf("decode not idempotent: %v vs %v", in, in2)
		}
	})
}
