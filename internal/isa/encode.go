package isa

import (
	"errors"
	"fmt"
)

// Decoding errors. The SiliFuzz baseline depends on decode failures being
// distinguishable: random byte strings must frequently fail to decode,
// mirroring how raw-byte mutation produces illegal x86 (paper Fig. 8:
// "more than 2 out of 3 produced sequences being eventually unusable").
var (
	ErrInvalidOpcode = errors.New("isa: invalid opcode")
	ErrTruncated     = errors.New("isa: truncated instruction")
)

// idxInFam[id] is the variant's selector index within its family.
var idxInFam []uint8

func buildEncoding() {
	for i := range opcodeOf {
		opcodeOf[i] = -1
	}
	for i := range familyOf {
		familyOf[i] = OpINVALID
	}
	next := 1 // opcode 0x00 stays invalid
	for op := Op(1); op < NumOpsExt; op++ {
		if len(byOp[op]) == 0 {
			continue
		}
		if next >= 256 {
			panic("isa: opcode space exhausted")
		}
		opcodeOf[op] = next
		familyOf[next] = op
		next++
	}
	numILP = next - 1

	idxInFam = make([]uint8, len(table))
	for op := Op(1); op < NumOpsExt; op++ {
		for i, id := range byOp[op] {
			if i > 255 {
				panic("isa: family too large for one-byte selector")
			}
			idxInFam[id] = uint8(i)
		}
	}
}

// NumOpcodeSlots returns how many of the 256 first-byte opcode slots are
// assigned (the rest decode as invalid).
func NumOpcodeSlots() int { return numILP }

// EncodedLen returns the encoded size of an instruction in bytes.
func EncodedLen(in Inst) int {
	v := Lookup(in.V)
	n := 2
	for i := 0; i < int(in.NOps); i++ {
		n += operandLen(v.Ops[i], in.Ops[i])
	}
	return n
}

func operandLen(spec OperandSpec, op Operand) int {
	switch spec.Kind {
	case KReg, KXmm:
		return 1
	case KImm:
		w := spec.Width
		if w > W64 {
			w = W64
		}
		return int(w)
	case KMem:
		n := 1 + 4
		if op.Mem.HasIndex {
			n++
		}
		return n
	}
	return 0
}

// Encode appends the byte encoding of in to dst and returns the extended
// slice. The encoding is: [family opcode byte] [variant selector byte]
// then one field per explicit operand (registers one byte; immediates in
// little-endian at the operand-spec width; memory as a mode byte, an
// optional index byte, and a 32-bit displacement).
func Encode(dst []byte, in Inst) []byte {
	v := Lookup(in.V)
	oc := opcodeOf[v.Op]
	if oc < 0 {
		panic(fmt.Sprintf("isa: op %d has no opcode", v.Op))
	}
	dst = append(dst, byte(oc), idxInFam[in.V])
	for i := 0; i < int(in.NOps); i++ {
		dst = encodeOperand(dst, v.Ops[i], in.Ops[i])
	}
	return dst
}

func encodeOperand(dst []byte, spec OperandSpec, op Operand) []byte {
	switch spec.Kind {
	case KReg:
		return append(dst, byte(op.Reg))
	case KXmm:
		return append(dst, byte(op.X))
	case KImm:
		w := spec.Width
		if w > W64 {
			w = W64
		}
		u := uint64(op.Imm)
		for i := 0; i < int(w); i++ {
			dst = append(dst, byte(u>>(8*i)))
		}
		return dst
	case KMem:
		m := op.Mem
		mode := byte(m.Base) & 0x0f
		if m.HasIndex {
			mode |= 0x10
			mode |= scaleLog2(m.Scale) << 5
		}
		dst = append(dst, mode)
		if m.HasIndex {
			dst = append(dst, byte(m.Index))
		}
		u := uint32(m.Disp)
		return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return dst
}

func scaleLog2(s uint8) byte {
	switch s {
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	default:
		return 0
	}
}

// Decode decodes one instruction from buf. It returns the instruction,
// the number of bytes consumed, and an error for invalid opcodes or a
// truncated buffer. Register fields decode modulo the register count, so
// any register byte is valid (invalidity comes from unassigned opcode
// slots and truncation, as in dense CISC encodings).
func Decode(buf []byte) (Inst, int, error) {
	if len(buf) < 2 {
		return Inst{}, 0, ErrTruncated
	}
	fam := familyOf[buf[0]]
	if fam == OpINVALID {
		return Inst{}, 1, ErrInvalidOpcode
	}
	vars := byOp[fam]
	v := Lookup(vars[int(buf[1])%len(vars)])
	in := Inst{V: v.ID, NOps: uint8(len(v.Ops))}
	pos := 2
	for i, spec := range v.Ops {
		var op Operand
		var n int
		var err error
		op, n, err = decodeOperand(buf[pos:], spec)
		if err != nil {
			return Inst{}, pos, err
		}
		in.Ops[i] = op
		pos += n
	}
	return in, pos, nil
}

func decodeOperand(buf []byte, spec OperandSpec) (Operand, int, error) {
	switch spec.Kind {
	case KReg:
		if len(buf) < 1 {
			return Operand{}, 0, ErrTruncated
		}
		return Operand{Kind: KReg, Reg: Reg(buf[0] % NumGPR)}, 1, nil
	case KXmm:
		if len(buf) < 1 {
			return Operand{}, 0, ErrTruncated
		}
		return Operand{Kind: KXmm, X: XReg(buf[0] % NumXMM)}, 1, nil
	case KImm:
		w := spec.Width
		if w > W64 {
			w = W64
		}
		if len(buf) < int(w) {
			return Operand{}, 0, ErrTruncated
		}
		var u uint64
		for i := 0; i < int(w); i++ {
			u |= uint64(buf[i]) << (8 * i)
		}
		// Sign-extend.
		shift := 64 - 8*uint(w)
		v := int64(u<<shift) >> shift
		return Operand{Kind: KImm, Imm: v}, int(w), nil
	case KMem:
		if len(buf) < 1 {
			return Operand{}, 0, ErrTruncated
		}
		mode := buf[0]
		m := MemRef{Base: Reg(mode & 0x0f), Scale: 1}
		pos := 1
		if mode&0x10 != 0 {
			if len(buf) < 2 {
				return Operand{}, 0, ErrTruncated
			}
			m.HasIndex = true
			m.Index = Reg(buf[1] % NumGPR)
			m.Scale = 1 << ((mode >> 5) & 3)
			pos = 2
		}
		if len(buf) < pos+4 {
			return Operand{}, 0, ErrTruncated
		}
		m.Disp = int32(uint32(buf[pos]) | uint32(buf[pos+1])<<8 | uint32(buf[pos+2])<<16 | uint32(buf[pos+3])<<24)
		return Operand{Kind: KMem, Mem: m}, pos + 4, nil
	}
	return Operand{}, 0, nil
}

// DecodeAll decodes a whole buffer into an instruction sequence, stopping
// at the first error. It returns the instructions decoded so far and the
// error (nil if the buffer was fully consumed).
func DecodeAll(buf []byte) ([]Inst, error) {
	var out []Inst
	for len(buf) > 0 {
		in, n, err := Decode(buf)
		if err != nil {
			return out, err
		}
		out = append(out, in)
		buf = buf[n:]
	}
	return out, nil
}
