package isa

// Extended instruction families: BMI-style bit manipulation, double
// shifts, exchange-and-op, byte-order moves, carry-chain arithmetic,
// explicit flag manipulation, packed-single floating point, vector
// shifts/compares/shuffles, and single-precision conversions. Together
// with the base table this brings the generator's reach to ~800 distinct
// variants — the breadth MuSeqGen's x86-64 support gives the paper's
// generator.

// Extended operation families (appended to the base enumeration).
const (
	// Double-precision shifts.
	OpSHLD Op = NumOps + iota
	OpSHRD

	// BMI-style bit manipulation.
	OpANDN
	OpBEXTR
	OpBLSI
	OpBLSR
	OpBLSMSK
	OpRORX
	OpSHLX
	OpSHRX
	OpSARX
	OpBZHI

	// Exchange-and-add / compare-and-exchange / byte-order move.
	OpXADD
	OpMOVBE
	OpCMPXCHG

	// Carry-chain arithmetic (ADX).
	OpADCX
	OpADOX

	// Sign extensions within/out of RAX.
	OpCSEX   // cbw/cwde/cdqe: RAX(w) = sign-extend(RAX(w/2))
	OpCSPLIT // cwd/cdq/cqo:   RDX(w) = sign-fill(RAX(w))

	// Flag register manipulation.
	OpLAHF
	OpSAHF
	OpCLC
	OpSTC
	OpCMC

	// Packed single (4 x 32-bit lanes).
	OpADDPS
	OpSUBPS
	OpMULPS
	OpDIVPS
	OpMINPS
	OpMAXPS

	// Scalar single extras.
	OpMINSS
	OpMAXSS
	OpSQRTSS

	// Bitwise FP logicals.
	OpANDPD
	OpANDNPD
	OpORPD
	OpXORPD

	// Vector shifts by immediate.
	OpPSLLQ
	OpPSRLQ
	OpPSLLD
	OpPSRLD

	// Vector integer extras.
	OpPSUBD
	OpPMULUDQ
	OpPCMPEQD
	OpPCMPEQQ
	OpPCMPGTD
	OpPSHUFD

	// Single-precision conversions and compare.
	OpCVTSI2SS
	OpCVTSS2SI
	OpCVTTSS2SI
	OpCVTPS2PD
	OpCVTPD2PS
	OpUCOMISS

	// Mask extraction and 32-bit GPR<->XMM moves.
	OpMOVMSKPD
	OpMOVMSKPS
	OpPMOVMSKB
	OpMOVD
	OpMOVSS
	OpMOVUPD

	// NumOpsExt is the end of the extended enumeration.
	NumOpsExt
)

func buildTable2() {
	// --- double shifts: shld/shrd r, r, imm8 ---------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
	}{{OpSHLD, "shld"}, {OpSHRD, "shrd"}} {
		for _, w := range wideWidths {
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 2,
				Ops:       []OperandSpec{rspec(w, AccRW), rspec(w, AccR), ispec(W8)},
				FlagsRead: AllFlags, FlagsWritten: AllFlags})
		}
	}

	// --- BMI ------------------------------------------------------------
	bmiW := []Width{W32, W64}
	for _, w := range bmiW {
		addVariant(Variant{Op: OpANDN, Mnemonic: "andn" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), rspec(w, AccR)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpBEXTR, Mnemonic: "bextr" + w.String(), Width: w, Unit: UIntALU, Latency: 2,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), rspec(w, AccR)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpBLSI, Mnemonic: "blsi" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpBLSR, Mnemonic: "blsr" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpBLSMSK, Mnemonic: "blsmsk" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpRORX, Mnemonic: "rorx" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), ispec(W8)}})
		addVariant(Variant{Op: OpSHLX, Mnemonic: "shlx" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), rspec(w, AccR)}})
		addVariant(Variant{Op: OpSHRX, Mnemonic: "shrx" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), rspec(w, AccR)}})
		addVariant(Variant{Op: OpSARX, Mnemonic: "sarx" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), rspec(w, AccR)}})
		addVariant(Variant{Op: OpBZHI, Mnemonic: "bzhi" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), rspec(w, AccR)}, FlagsWritten: AllFlags})
	}

	// --- xadd / movbe / cmpxchg ------------------------------------------
	for _, w := range intWidths {
		addVariant(Variant{Op: OpXADD, Mnemonic: "xadd" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccRW), rspec(w, AccRW)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpXADD, Mnemonic: "xadd" + w.String(), Width: w, Unit: UIntALU, Latency: 2,
			Ops: []OperandSpec{mspec(w, AccRW), rspec(w, AccRW)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpCMPXCHG, Mnemonic: "cmpxchg" + w.String(), Width: w, Unit: UIntALU, Latency: 2,
			Ops:        []OperandSpec{rspec(w, AccRW), rspec(w, AccR)},
			ImplicitIn: []Reg{RAX}, ImplicitOut: []Reg{RAX}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpCMPXCHG, Mnemonic: "cmpxchg" + w.String(), Width: w, Unit: UIntALU, Latency: 2,
			Ops:        []OperandSpec{mspec(w, AccRW), rspec(w, AccR)},
			ImplicitIn: []Reg{RAX}, ImplicitOut: []Reg{RAX}, FlagsWritten: AllFlags})
	}
	for _, w := range wideWidths {
		addVariant(Variant{Op: OpMOVBE, Mnemonic: "movbe" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccW), mspec(w, AccR)}})
		addVariant(Variant{Op: OpMOVBE, Mnemonic: "movbe" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{mspec(w, AccW), rspec(w, AccR)}})
	}

	// --- ADX carry chains -------------------------------------------------
	for _, w := range bmiW {
		addVariant(Variant{Op: OpADCX, Mnemonic: "adcx" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccRW), rspec(w, AccR)}, FlagsRead: CF, FlagsWritten: CF})
		addVariant(Variant{Op: OpADCX, Mnemonic: "adcx" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccRW), mspec(w, AccR)}, FlagsRead: CF, FlagsWritten: CF})
		addVariant(Variant{Op: OpADOX, Mnemonic: "adox" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccRW), rspec(w, AccR)}, FlagsRead: OF, FlagsWritten: OF})
		addVariant(Variant{Op: OpADOX, Mnemonic: "adox" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccRW), mspec(w, AccR)}, FlagsRead: OF, FlagsWritten: OF})
	}

	// --- sign extensions ----------------------------------------------------
	for _, fam := range []struct {
		op    Op
		mnems [3]string
	}{
		{OpCSEX, [3]string{"cbw", "cwde", "cdqe"}},
		{OpCSPLIT, [3]string{"cwd", "cdq", "cqo"}},
	} {
		for i, w := range wideWidths {
			out := []Reg{RAX}
			if fam.op == OpCSPLIT {
				out = []Reg{RDX}
			}
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnems[i], Width: w, Unit: UIntALU, Latency: 1,
				ImplicitIn: []Reg{RAX}, ImplicitOut: out})
		}
	}

	// --- flag manipulation ----------------------------------------------------
	addVariant(Variant{Op: OpLAHF, Mnemonic: "lahf", Width: W8, Unit: UIntALU, Latency: 1,
		ImplicitIn: []Reg{RAX}, ImplicitOut: []Reg{RAX}, FlagsRead: AllFlags})
	addVariant(Variant{Op: OpSAHF, Mnemonic: "sahf", Width: W8, Unit: UIntALU, Latency: 1,
		ImplicitIn: []Reg{RAX}, FlagsWritten: CF | PF | ZF | SF})
	addVariant(Variant{Op: OpCLC, Mnemonic: "clc", Width: W8, Unit: UIntALU, Latency: 1, FlagsWritten: CF})
	addVariant(Variant{Op: OpSTC, Mnemonic: "stc", Width: W8, Unit: UIntALU, Latency: 1, FlagsWritten: CF})
	addVariant(Variant{Op: OpCMC, Mnemonic: "cmc", Width: W8, Unit: UIntALU, Latency: 1,
		FlagsRead: CF, FlagsWritten: CF})

	// --- packed single -----------------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		unit Unit
		lat  int
	}{
		{OpADDPS, "addps", UFPAdd, 3}, {OpSUBPS, "subps", UFPAdd, 3},
		{OpMULPS, "mulps", UFPMul, 4}, {OpDIVPS, "divps", UFPDiv, 11},
		{OpMINPS, "minps", UFPAdd, 3}, {OpMAXPS, "maxps", UFPAdd, 3},
	} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR)}})
	}

	// --- scalar single extras ------------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		unit Unit
		lat  int
	}{{OpMINSS, "minss", UFPAdd, 3}, {OpMAXSS, "maxss", UFPAdd, 3}, {OpSQRTSS, "sqrtss", UFPDiv, 15}} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W32, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W32, AccRW), xspec(W32, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W32, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W32, AccRW), mspec(W32, AccR)}})
	}

	// --- bitwise FP logicals ----------------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
	}{{OpANDPD, "andpd"}, {OpANDNPD, "andnpd"}, {OpORPD, "orpd"}, {OpXORPD, "xorpd"}} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: UVecALU, Latency: 1,
			Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: UVecALU, Latency: 1,
			Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR)}})
	}

	// --- vector shifts by immediate ------------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
	}{{OpPSLLQ, "psllq"}, {OpPSRLQ, "psrlq"}, {OpPSLLD, "pslld"}, {OpPSRLD, "psrld"}} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: UVecALU, Latency: 1,
			Ops: []OperandSpec{xspec(W128, AccRW), ispec(W8)}})
	}

	// --- vector integer extras -----------------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		lat  int
	}{
		{OpPSUBD, "psubd", 1}, {OpPMULUDQ, "pmuludq", 4},
		{OpPCMPEQD, "pcmpeqd", 1}, {OpPCMPEQQ, "pcmpeqq", 1}, {OpPCMPGTD, "pcmpgtd", 1},
	} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: UVecALU, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: UVecALU, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR)}})
	}
	addVariant(Variant{Op: OpPSHUFD, Mnemonic: "pshufd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccW), xspec(W128, AccR), ispec(W8)}})
	addVariant(Variant{Op: OpPSHUFD, Mnemonic: "pshufd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccW), mspec(W128, AccR), ispec(W8)}})

	// --- single-precision conversions and compare ---------------------------------------------
	addVariant(Variant{Op: OpCVTSI2SS, Mnemonic: "cvtsi2ssl", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W32, AccRW), rspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTSI2SS, Mnemonic: "cvtsi2ssq", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W32, AccRW), rspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTSS2SI, Mnemonic: "cvtss2sil", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W32, AccW), xspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTSS2SI, Mnemonic: "cvtss2siq", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTTSS2SI, Mnemonic: "cvttss2sil", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W32, AccW), xspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTTSS2SI, Mnemonic: "cvttss2siq", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTPS2PD, Mnemonic: "cvtps2pd", Width: W128, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W128, AccW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTPD2PS, Mnemonic: "cvtpd2ps", Width: W128, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W128, AccW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpUCOMISS, Mnemonic: "ucomiss", Width: W32, Unit: UFPAdd, Latency: 2,
		Ops: []OperandSpec{xspec(W32, AccR), xspec(W32, AccR)}, FlagsWritten: AllFlags})
	addVariant(Variant{Op: OpUCOMISS, Mnemonic: "ucomiss", Width: W32, Unit: UFPAdd, Latency: 2,
		Ops: []OperandSpec{xspec(W32, AccR), mspec(W32, AccR)}, FlagsWritten: AllFlags})

	// --- mask extraction and GPR<->XMM moves ------------------------------------------------------
	addVariant(Variant{Op: OpMOVMSKPD, Mnemonic: "movmskpd", Width: W64, Unit: UVecALU, Latency: 2,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpMOVMSKPS, Mnemonic: "movmskps", Width: W64, Unit: UVecALU, Latency: 2,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpPMOVMSKB, Mnemonic: "pmovmskb", Width: W64, Unit: UVecALU, Latency: 2,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpMOVD, Mnemonic: "movd", Width: W32, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W32, AccW), rspec(W32, AccR)}})
	addVariant(Variant{Op: OpMOVD, Mnemonic: "movd", Width: W32, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{rspec(W32, AccW), xspec(W32, AccR)}})
	addVariant(Variant{Op: OpMOVSS, Mnemonic: "movss", Width: W32, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W32, AccRW), xspec(W32, AccR)}})
	addVariant(Variant{Op: OpMOVSS, Mnemonic: "movss", Width: W32, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W32, AccW), mspec(W32, AccR)}})
	addVariant(Variant{Op: OpMOVSS, Mnemonic: "movss", Width: W32, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{mspec(W32, AccW), xspec(W32, AccR)}})
	// movupd performs unaligned 128-bit moves (the executor bypasses the
	// movapd alignment check).
	addVariant(Variant{Op: OpMOVUPD, Mnemonic: "movupd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccW), mspec(W128, AccR)}})
	addVariant(Variant{Op: OpMOVUPD, Mnemonic: "movupd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{mspec(W128, AccW), xspec(W128, AccR)}})
}
