// Package isa defines HX86, a synthetic x86-64-flavoured instruction set
// used throughout the Harpocrates reproduction.
//
// HX86 deliberately mirrors the properties of x86-64 that matter for
// hardware-aware functional test generation (paper §V-B): CISC-style
// implicit operands (MUL/DIV clobber RAX:RDX, variable shifts read CL),
// partial register widths (8/16/32/64-bit forms with x86 merge and
// zero-extension rules), a flags register threaded through arithmetic,
// stack discipline (PUSH/POP against RSP), base+displacement memory
// addressing, nondeterministic instructions that must be excluded from
// deterministic test programs (RDTSC, RDRAND, CPUID), privileged
// instructions that fault in user mode, and an SSE-style scalar/packed
// floating-point extension.
//
// The package provides the instruction variant table (~670 variants, each
// a distinct mnemonic × operand-form × width combination, mirroring how
// MuSeqGen treats "the same mnemonics with different operand types as
// distinct instructions"), a byte encoder/decoder (used by the SiliFuzz
// baseline's proxy), and the concrete instruction representation shared by
// the functional emulator, the out-of-order core model, and the program
// generator.
package isa

import "fmt"

// Reg is a general-purpose (integer) architectural register.
type Reg uint8

// General-purpose registers. Names follow x86-64.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumGPR is the number of architectural integer registers.
	NumGPR = 16
)

var gprNames = [NumGPR]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if int(r) < len(gprNames) {
		return gprNames[r]
	}
	return fmt.Sprintf("gpr?%d", uint8(r))
}

// XReg is an SSE-style 128-bit vector register.
type XReg uint8

// NumXMM is the number of architectural vector registers.
const NumXMM = 16

func (x XReg) String() string { return fmt.Sprintf("xmm%d", uint8(x)) }

// Width is an operand width in bytes.
type Width uint8

// Operand widths.
const (
	W8   Width = 1
	W16  Width = 2
	W32  Width = 4
	W64  Width = 8
	W128 Width = 16
)

// Bits returns the width in bits.
func (w Width) Bits() int { return int(w) * 8 }

// Mask returns the value mask for integer widths up to 64 bits.
func (w Width) Mask() uint64 {
	if w >= W64 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * uint(w))) - 1
}

// SignBit returns the sign-bit mask for integer widths up to 64 bits.
func (w Width) SignBit() uint64 { return uint64(1) << (8*uint(w) - 1) }

func (w Width) String() string {
	switch w {
	case W8:
		return "b"
	case W16:
		return "w"
	case W32:
		return "l"
	case W64:
		return "q"
	case W128:
		return "x"
	}
	return fmt.Sprintf("w?%d", uint8(w))
}

// Flags is a bitmask of the HX86 status flags (a subset of RFLAGS).
type Flags uint8

// Status flags.
const (
	CF Flags = 1 << iota // carry
	PF                   // parity (of low byte)
	ZF                   // zero
	SF                   // sign
	OF                   // overflow

	AllFlags = CF | PF | ZF | SF | OF
)

func (f Flags) String() string {
	s := ""
	add := func(m Flags, n string) {
		if f&m != 0 {
			s += n
		} else {
			s += "-"
		}
	}
	add(OF, "O")
	add(SF, "S")
	add(ZF, "Z")
	add(PF, "P")
	add(CF, "C")
	return s
}

// Cond is an x86-style condition code used by Jcc, SETcc and CMOVcc.
type Cond uint8

// Condition codes (x86 encoding order).
const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below (CF)
	CondAE             // above or equal (!CF)
	CondE              // equal (ZF)
	CondNE             // not equal (!ZF)
	CondBE             // below or equal (CF||ZF)
	CondA              // above (!CF && !ZF)
	CondS              // sign (SF)
	CondNS             // not sign (!SF)
	CondP              // parity (PF)
	CondNP             // not parity (!PF)
	CondL              // less (SF!=OF)
	CondGE             // greater or equal (SF==OF)
	CondLE             // less or equal (ZF || SF!=OF)
	CondG              // greater (!ZF && SF==OF)

	NumCond = 16
)

var condNames = [NumCond]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// Reads returns the flags a condition code depends on.
func (c Cond) Reads() Flags {
	switch c {
	case CondO, CondNO:
		return OF
	case CondB, CondAE:
		return CF
	case CondE, CondNE:
		return ZF
	case CondBE, CondA:
		return CF | ZF
	case CondS, CondNS:
		return SF
	case CondP, CondNP:
		return PF
	case CondL, CondGE:
		return SF | OF
	case CondLE, CondG:
		return ZF | SF | OF
	}
	return 0
}

// Eval evaluates a condition code against a flags value.
func (c Cond) Eval(f Flags) bool {
	switch c {
	case CondO:
		return f&OF != 0
	case CondNO:
		return f&OF == 0
	case CondB:
		return f&CF != 0
	case CondAE:
		return f&CF == 0
	case CondE:
		return f&ZF != 0
	case CondNE:
		return f&ZF == 0
	case CondBE:
		return f&(CF|ZF) != 0
	case CondA:
		return f&(CF|ZF) == 0
	case CondS:
		return f&SF != 0
	case CondNS:
		return f&SF == 0
	case CondP:
		return f&PF != 0
	case CondNP:
		return f&PF == 0
	case CondL:
		return (f&SF != 0) != (f&OF != 0)
	case CondGE:
		return (f&SF != 0) == (f&OF != 0)
	case CondLE:
		return f&ZF != 0 || (f&SF != 0) != (f&OF != 0)
	case CondG:
		return f&ZF == 0 && (f&SF != 0) == (f&OF != 0)
	}
	return false
}
