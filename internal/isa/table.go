package isa

import "fmt"

// The global variant table is built once at package init. It is
// read-only after construction.
var (
	table     []Variant
	byOp      [NumOpsExt][]VariantID
	opcodeOf  [NumOpsExt]int // family -> first-byte opcode, -1 if none
	familyOf  [256]Op        // first-byte opcode -> family (OpINVALID if unassigned)
	numILP    int
	detCached []VariantID
)

// Lookup returns the variant descriptor for an ID. It panics on an
// out-of-range ID (IDs come from the table itself, so this indicates a
// programming error, not bad input; untrusted input goes through Decode).
func Lookup(id VariantID) *Variant {
	return &table[id]
}

// NumVariants returns the size of the variant table.
func NumVariants() int { return len(table) }

// ByOp returns the variant IDs of a family. The returned slice must not
// be modified.
func ByOp(op Op) []VariantID { return byOp[op] }

// Deterministic returns all variants that are safe for deterministic
// user-mode test programs (no RDTSC/RDRAND/CPUID, no privileged ops).
// The returned slice must not be modified.
func Deterministic() []VariantID { return detCached }

func addVariant(v Variant) VariantID {
	if len(v.Ops) > MaxOperands {
		panic(fmt.Sprintf("isa: variant %s has %d operands", v.Mnemonic, len(v.Ops)))
	}
	id := VariantID(len(table))
	v.ID = id
	table = append(table, v)
	byOp[v.Op] = append(byOp[v.Op], id)
	return id
}

func rspec(w Width, a Access) OperandSpec { return OperandSpec{Kind: KReg, Width: w, Acc: a} }
func xspec(w Width, a Access) OperandSpec { return OperandSpec{Kind: KXmm, Width: w, Acc: a} }
func ispec(w Width) OperandSpec           { return OperandSpec{Kind: KImm, Width: w, Acc: AccR} }
func mspec(w Width, a Access) OperandSpec { return OperandSpec{Kind: KMem, Width: w, Acc: a} }

// immWidthFor returns the encoded immediate width for an ALU operation of
// width w (x86 rule: 64-bit forms take a sign-extended 32-bit immediate).
func immWidthFor(w Width) Width {
	if w == W64 {
		return W32
	}
	return w
}

var intWidths = []Width{W8, W16, W32, W64}
var wideWidths = []Width{W16, W32, W64}

type aluFam struct {
	op    Op
	mnem  string
	fr    Flags // flags read
	fw    Flags // flags written
	dstRW Access
}

func buildTable() {
	table = make([]Variant, 0, 720)
	// Variant 0 is the invalid instruction.
	addVariant(Variant{Op: OpINVALID, Mnemonic: "(invalid)", Unit: UNone, Latency: 1})

	// --- Binary integer ALU -------------------------------------------
	binFams := []aluFam{
		{OpADD, "add", 0, AllFlags, AccRW},
		{OpSUB, "sub", 0, AllFlags, AccRW},
		{OpADC, "adc", CF, AllFlags, AccRW},
		{OpSBB, "sbb", CF, AllFlags, AccRW},
		{OpAND, "and", 0, AllFlags, AccRW},
		{OpOR, "or", 0, AllFlags, AccRW},
		{OpXOR, "xor", 0, AllFlags, AccRW},
		{OpCMP, "cmp", 0, AllFlags, AccR},
		{OpTEST, "test", 0, AllFlags, AccR},
		{OpMOV, "mov", 0, 0, AccW},
	}
	for _, f := range binFams {
		for _, w := range intWidths {
			iw := immWidthFor(w)
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, f.dstRW), rspec(w, AccR)}, FlagsRead: f.fr, FlagsWritten: f.fw})
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, f.dstRW), ispec(iw)}, FlagsRead: f.fr, FlagsWritten: f.fw})
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, f.dstRW), mspec(w, AccR)}, FlagsRead: f.fr, FlagsWritten: f.fw})
			memAcc := f.dstRW
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{mspec(w, memAcc), rspec(w, AccR)}, FlagsRead: f.fr, FlagsWritten: f.fw})
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{mspec(w, memAcc), ispec(iw)}, FlagsRead: f.fr, FlagsWritten: f.fw})
		}
	}
	// mov r64, imm64 (the only 8-byte-immediate form).
	addVariant(Variant{Op: OpMOV, Mnemonic: "movabsq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{rspec(W64, AccW), ispec(W64)}})

	// --- Unary integer ALU --------------------------------------------
	unFams := []aluFam{
		{OpINC, "inc", 0, PF | ZF | SF | OF, AccRW},
		{OpDEC, "dec", 0, PF | ZF | SF | OF, AccRW},
		{OpNEG, "neg", 0, AllFlags, AccRW},
		{OpNOT, "not", 0, 0, AccRW},
	}
	for _, f := range unFams {
		for _, w := range intWidths {
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, AccRW)}, FlagsRead: f.fr, FlagsWritten: f.fw})
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{mspec(w, AccRW)}, FlagsRead: f.fr, FlagsWritten: f.fw})
		}
	}

	// --- Shifts and rotates -------------------------------------------
	type shFam struct {
		op   Op
		mnem string
		fr   Flags
		fw   Flags
	}
	shFams := []shFam{
		{OpSHL, "shl", 0, AllFlags},
		{OpSHR, "shr", 0, AllFlags},
		{OpSAR, "sar", 0, AllFlags},
		{OpROL, "rol", 0, CF | OF},
		{OpROR, "ror", 0, CF | OF},
		{OpRCL, "rcl", CF, CF | OF},
		{OpRCR, "rcr", CF, CF | OF},
	}
	for _, f := range shFams {
		for _, w := range intWidths {
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, AccRW), ispec(W8)}, FlagsRead: f.fr, FlagsWritten: f.fw})
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String() + "_cl", Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, AccRW)}, ImplicitIn: []Reg{RCX},
				FlagsRead: f.fr, FlagsWritten: f.fw})
			addVariant(Variant{Op: f.op, Mnemonic: f.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{mspec(w, AccRW), ispec(W8)}, FlagsRead: f.fr, FlagsWritten: f.fw})
		}
	}

	// --- LEA, width conversion, exchange ------------------------------
	addVariant(Variant{Op: OpLEA, Mnemonic: "leal", Width: W32, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{rspec(W32, AccW), mspec(W32, AccR)}})
	addVariant(Variant{Op: OpLEA, Mnemonic: "leaq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{rspec(W64, AccW), mspec(W64, AccR)}})

	type wpair struct{ dst, src Width }
	wpairs := []wpair{{W16, W8}, {W32, W8}, {W32, W16}, {W64, W8}, {W64, W16}, {W64, W32}}
	for _, fam := range []struct {
		op   Op
		mnem string
	}{{OpMOVZX, "movzx"}, {OpMOVSX, "movsx"}} {
		for _, p := range wpairs {
			n := fmt.Sprintf("%s%s%s", fam.mnem, p.src.String(), p.dst.String())
			addVariant(Variant{Op: fam.op, Mnemonic: n, Width: p.dst, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(p.dst, AccW), rspec(p.src, AccR)}})
			addVariant(Variant{Op: fam.op, Mnemonic: n, Width: p.dst, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(p.dst, AccW), mspec(p.src, AccR)}})
		}
	}
	for _, w := range intWidths {
		addVariant(Variant{Op: OpXCHG, Mnemonic: "xchg" + w.String(), Width: w, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(w, AccRW), rspec(w, AccRW)}})
		addVariant(Variant{Op: OpXCHG, Mnemonic: "xchg" + w.String(), Width: w, Unit: UIntALU, Latency: 2,
			Ops: []OperandSpec{rspec(w, AccRW), mspec(w, AccRW)}})
	}

	// --- Wide multiply / divide (implicit RAX:RDX) ---------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		unit Unit
		lat  int
	}{{OpMUL, "mul", UIntMul, 3}, {OpIMUL, "imul", UIntMul, 3}, {OpDIV, "div", UIntDiv, 20}, {OpIDIV, "idiv", UIntDiv, 20}} {
		for _, w := range intWidths {
			iIn := []Reg{RAX}
			if fam.op == OpDIV || fam.op == OpIDIV {
				iIn = []Reg{RAX, RDX}
			}
			fw := Flags(0)
			if fam.unit == UIntMul {
				fw = AllFlags
			}
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem + w.String(), Width: w, Unit: fam.unit, Latency: fam.lat,
				Ops: []OperandSpec{rspec(w, AccR)}, ImplicitIn: iIn, ImplicitOut: []Reg{RAX, RDX}, FlagsWritten: fw})
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem + w.String(), Width: w, Unit: fam.unit, Latency: fam.lat,
				Ops: []OperandSpec{mspec(w, AccR)}, ImplicitIn: iIn, ImplicitOut: []Reg{RAX, RDX}, FlagsWritten: fw})
		}
	}
	for _, w := range wideWidths {
		addVariant(Variant{Op: OpIMULRR, Mnemonic: "imul" + w.String(), Width: w, Unit: UIntMul, Latency: 3,
			Ops: []OperandSpec{rspec(w, AccRW), rspec(w, AccR)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpIMULRR, Mnemonic: "imul" + w.String(), Width: w, Unit: UIntMul, Latency: 3,
			Ops: []OperandSpec{rspec(w, AccRW), mspec(w, AccR)}, FlagsWritten: AllFlags})
		addVariant(Variant{Op: OpIMULRRI, Mnemonic: "imul" + w.String(), Width: w, Unit: UIntMul, Latency: 3,
			Ops: []OperandSpec{rspec(w, AccW), rspec(w, AccR), ispec(immWidthFor(w))}, FlagsWritten: AllFlags})
	}

	// --- Stack ----------------------------------------------------------
	addVariant(Variant{Op: OpPUSH, Mnemonic: "pushq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{rspec(W64, AccR)}, ImplicitIn: []Reg{RSP}, ImplicitOut: []Reg{RSP}, MemImplicit: true})
	addVariant(Variant{Op: OpPUSH, Mnemonic: "pushq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{ispec(W32)}, ImplicitIn: []Reg{RSP}, ImplicitOut: []Reg{RSP}, MemImplicit: true})
	addVariant(Variant{Op: OpPUSH, Mnemonic: "pushq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{mspec(W64, AccR)}, ImplicitIn: []Reg{RSP}, ImplicitOut: []Reg{RSP}, MemImplicit: true})
	addVariant(Variant{Op: OpPOP, Mnemonic: "popq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{rspec(W64, AccW)}, ImplicitIn: []Reg{RSP}, ImplicitOut: []Reg{RSP}, MemImplicit: true})
	addVariant(Variant{Op: OpPOP, Mnemonic: "popq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{mspec(W64, AccW)}, ImplicitIn: []Reg{RSP}, ImplicitOut: []Reg{RSP}, MemImplicit: true})

	// --- Conditionals ---------------------------------------------------
	for c := Cond(0); c < NumCond; c++ {
		addVariant(Variant{Op: OpSETcc, Mnemonic: "set" + c.String(), Width: W8, Cond: c, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{rspec(W8, AccW)}, FlagsRead: c.Reads()})
		addVariant(Variant{Op: OpSETcc, Mnemonic: "set" + c.String(), Width: W8, Cond: c, Unit: UIntALU, Latency: 1,
			Ops: []OperandSpec{mspec(W8, AccW)}, FlagsRead: c.Reads()})
	}
	for c := Cond(0); c < NumCond; c++ {
		for _, w := range wideWidths {
			addVariant(Variant{Op: OpCMOVcc, Mnemonic: "cmov" + c.String() + w.String(), Width: w, Cond: c, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, AccRW), rspec(w, AccR)}, FlagsRead: c.Reads()})
			addVariant(Variant{Op: OpCMOVcc, Mnemonic: "cmov" + c.String() + w.String(), Width: w, Cond: c, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, AccRW), mspec(w, AccR)}, FlagsRead: c.Reads()})
		}
	}
	for c := Cond(0); c < NumCond; c++ {
		addVariant(Variant{Op: OpJcc, Mnemonic: "j" + c.String(), Width: W32, Cond: c, Unit: UBranch, Latency: 1,
			Ops: []OperandSpec{ispec(W32)}, FlagsRead: c.Reads(), IsBranch: true})
	}
	addVariant(Variant{Op: OpJMP, Mnemonic: "jmp", Width: W32, Unit: UBranch, Latency: 1,
		Ops: []OperandSpec{ispec(W32)}, IsBranch: true})

	// --- Bit manipulation ------------------------------------------------
	addVariant(Variant{Op: OpBSWAP, Mnemonic: "bswapl", Width: W32, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{rspec(W32, AccRW)}})
	addVariant(Variant{Op: OpBSWAP, Mnemonic: "bswapq", Width: W64, Unit: UIntALU, Latency: 1,
		Ops: []OperandSpec{rspec(W64, AccRW)}})
	for _, fam := range []struct {
		op   Op
		mnem string
		fw   Flags
		acc  Access
	}{
		// BSF/BSR leave the destination unchanged on a zero source, so
		// the destination is architecturally read-modify-write.
		{OpBSF, "bsf", ZF, AccRW}, {OpBSR, "bsr", ZF, AccRW},
		{OpPOPCNT, "popcnt", AllFlags, AccW}, {OpLZCNT, "lzcnt", CF | ZF, AccW}, {OpTZCNT, "tzcnt", CF | ZF, AccW},
	} {
		for _, w := range wideWidths {
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 2,
				Ops: []OperandSpec{rspec(w, fam.acc), rspec(w, AccR)}, FlagsWritten: fam.fw})
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 2,
				Ops: []OperandSpec{rspec(w, fam.acc), mspec(w, AccR)}, FlagsWritten: fam.fw})
		}
	}
	for _, fam := range []struct {
		op   Op
		mnem string
		acc  Access
	}{{OpBT, "bt", AccR}, {OpBTS, "bts", AccRW}, {OpBTR, "btr", AccRW}, {OpBTC, "btc", AccRW}} {
		for _, w := range wideWidths {
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, fam.acc), rspec(w, AccR)}, FlagsWritten: CF})
			addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem + w.String(), Width: w, Unit: UIntALU, Latency: 1,
				Ops: []OperandSpec{rspec(w, fam.acc), ispec(W8)}, FlagsWritten: CF})
		}
	}

	addVariant(Variant{Op: OpNOP, Mnemonic: "nop", Width: W8, Unit: UIntALU, Latency: 1})

	// --- Nondeterministic and privileged ---------------------------------
	addVariant(Variant{Op: OpRDTSC, Mnemonic: "rdtsc", Width: W64, Unit: UIntALU, Latency: 20,
		ImplicitOut: []Reg{RAX, RDX}, NonDeterministic: true})
	addVariant(Variant{Op: OpRDRAND, Mnemonic: "rdrandq", Width: W64, Unit: UIntALU, Latency: 20,
		Ops: []OperandSpec{rspec(W64, AccW)}, FlagsWritten: CF, NonDeterministic: true})
	addVariant(Variant{Op: OpCPUID, Mnemonic: "cpuid", Width: W64, Unit: UIntALU, Latency: 30,
		ImplicitIn: []Reg{RAX}, ImplicitOut: []Reg{RAX, RBX, RCX, RDX}, NonDeterministic: true})
	addVariant(Variant{Op: OpHLT, Mnemonic: "hlt", Width: W8, Unit: UNone, Latency: 1, Privileged: true})
	addVariant(Variant{Op: OpINB, Mnemonic: "inb", Width: W8, Unit: UNone, Latency: 1,
		ImplicitOut: []Reg{RAX}, Privileged: true})
	addVariant(Variant{Op: OpOUTB, Mnemonic: "outb", Width: W8, Unit: UNone, Latency: 1,
		ImplicitIn: []Reg{RAX}, Privileged: true})

	// --- SSE scalar double ------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		unit Unit
		lat  int
	}{
		{OpADDSD, "addsd", UFPAdd, 3}, {OpSUBSD, "subsd", UFPAdd, 3},
		{OpMULSD, "mulsd", UFPMul, 4}, {OpDIVSD, "divsd", UFPDiv, 13},
		{OpMINSD, "minsd", UFPAdd, 3}, {OpMAXSD, "maxsd", UFPAdd, 3},
	} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W64, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W64, AccRW), xspec(W64, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W64, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W64, AccRW), mspec(W64, AccR)}})
	}
	addVariant(Variant{Op: OpSQRTSD, Mnemonic: "sqrtsd", Width: W64, Unit: UFPDiv, Latency: 20,
		Ops: []OperandSpec{xspec(W64, AccW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpSQRTSD, Mnemonic: "sqrtsd", Width: W64, Unit: UFPDiv, Latency: 20,
		Ops: []OperandSpec{xspec(W64, AccW), mspec(W64, AccR)}})

	// --- SSE scalar single -------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		unit Unit
		lat  int
	}{
		{OpADDSS, "addss", UFPAdd, 3}, {OpSUBSS, "subss", UFPAdd, 3},
		{OpMULSS, "mulss", UFPMul, 4}, {OpDIVSS, "divss", UFPDiv, 11},
	} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W32, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W32, AccRW), xspec(W32, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W32, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W32, AccRW), mspec(W32, AccR)}})
	}

	// --- SSE packed double ---------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		unit Unit
		lat  int
	}{
		{OpADDPD, "addpd", UFPAdd, 3}, {OpSUBPD, "subpd", UFPAdd, 3},
		{OpMULPD, "mulpd", UFPMul, 4}, {OpDIVPD, "divpd", UFPDiv, 13},
	} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: fam.unit, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR)}})
	}

	// --- Conversions -----------------------------------------------------------
	addVariant(Variant{Op: OpCVTSI2SD, Mnemonic: "cvtsi2sdl", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W64, AccRW), rspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTSI2SD, Mnemonic: "cvtsi2sdq", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W64, AccRW), rspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTSI2SD, Mnemonic: "cvtsi2sdl", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W64, AccRW), mspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTSI2SD, Mnemonic: "cvtsi2sdq", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W64, AccRW), mspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTSD2SI, Mnemonic: "cvtsd2sil", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W32, AccW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTSD2SI, Mnemonic: "cvtsd2siq", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTTSD2SI, Mnemonic: "cvttsd2sil", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W32, AccW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTTSD2SI, Mnemonic: "cvttsd2siq", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTSD2SS, Mnemonic: "cvtsd2ss", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W32, AccRW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTSD2SS, Mnemonic: "cvtsd2ss", Width: W32, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W32, AccRW), mspec(W64, AccR)}})
	addVariant(Variant{Op: OpCVTSS2SD, Mnemonic: "cvtss2sd", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W64, AccRW), xspec(W32, AccR)}})
	addVariant(Variant{Op: OpCVTSS2SD, Mnemonic: "cvtss2sd", Width: W64, Unit: UFPAdd, Latency: 4,
		Ops: []OperandSpec{xspec(W64, AccRW), mspec(W32, AccR)}})

	// --- Vector moves ---------------------------------------------------------
	addVariant(Variant{Op: OpMOVSD, Mnemonic: "movsd", Width: W64, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W64, AccRW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpMOVSD, Mnemonic: "movsd", Width: W64, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W64, AccW), mspec(W64, AccR)}})
	addVariant(Variant{Op: OpMOVSD, Mnemonic: "movsd", Width: W64, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{mspec(W64, AccW), xspec(W64, AccR)}})
	addVariant(Variant{Op: OpMOVAPD, Mnemonic: "movapd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpMOVAPD, Mnemonic: "movapd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccW), mspec(W128, AccR)}})
	addVariant(Variant{Op: OpMOVAPD, Mnemonic: "movapd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{mspec(W128, AccW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpMOVQXR, Mnemonic: "movq", Width: W64, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W64, AccW), rspec(W64, AccR)}})
	addVariant(Variant{Op: OpMOVQRX, Mnemonic: "movq", Width: W64, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{rspec(W64, AccW), xspec(W64, AccR)}})

	// --- Vector integer ---------------------------------------------------------
	for _, fam := range []struct {
		op   Op
		mnem string
		lat  int
	}{
		{OpPXOR, "pxor", 1}, {OpPAND, "pand", 1}, {OpPOR, "por", 1},
		{OpPADDQ, "paddq", 1}, {OpPADDD, "paddd", 1}, {OpPSUBQ, "psubq", 1},
		{OpPMULLD, "pmulld", 4},
	} {
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: UVecALU, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR)}})
		addVariant(Variant{Op: fam.op, Mnemonic: fam.mnem, Width: W128, Unit: UVecALU, Latency: fam.lat,
			Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR)}})
	}

	// --- Vector compare and shuffle -----------------------------------------------
	addVariant(Variant{Op: OpUCOMISD, Mnemonic: "ucomisd", Width: W64, Unit: UFPAdd, Latency: 2,
		Ops: []OperandSpec{xspec(W64, AccR), xspec(W64, AccR)}, FlagsWritten: AllFlags})
	addVariant(Variant{Op: OpUCOMISD, Mnemonic: "ucomisd", Width: W64, Unit: UFPAdd, Latency: 2,
		Ops: []OperandSpec{xspec(W64, AccR), mspec(W64, AccR)}, FlagsWritten: AllFlags})
	addVariant(Variant{Op: OpSHUFPD, Mnemonic: "shufpd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR), ispec(W8)}})
	addVariant(Variant{Op: OpSHUFPD, Mnemonic: "shufpd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR), ispec(W8)}})
	addVariant(Variant{Op: OpUNPCKLPD, Mnemonic: "unpcklpd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpUNPCKLPD, Mnemonic: "unpcklpd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR)}})
	addVariant(Variant{Op: OpUNPCKHPD, Mnemonic: "unpckhpd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccRW), xspec(W128, AccR)}})
	addVariant(Variant{Op: OpUNPCKHPD, Mnemonic: "unpckhpd", Width: W128, Unit: UVecALU, Latency: 1,
		Ops: []OperandSpec{xspec(W128, AccRW), mspec(W128, AccR)}})

	buildTable2()
	buildEncoding()

	detCached = nil
	for i := 1; i < len(table); i++ {
		if table[i].Deterministic() {
			detCached = append(detCached, VariantID(i))
		}
	}
}

func init() { buildTable() }
