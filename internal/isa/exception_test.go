package isa

import (
	"strings"
	"testing"
)

// TestExceptionTable pins the x86 vector numbers and mnemonics: they are
// architectural constants, and the trap-outcome reports and wire
// protocol carry them by value.
func TestExceptionTable(t *testing.T) {
	cases := []struct {
		exc    Exception
		name   string
		vector uint8
	}{
		{ExcNone, "none", 0xFF},
		{ExcDivide, "#DE", 0},
		{ExcInvalidOpcode, "#UD", 6},
		{ExcStackFault, "#SS", 12},
		{ExcGeneralProtection, "#GP", 13},
		{ExcPageFault, "#PF", 14},
		{ExcAlignment, "#AC", 17},
	}
	for _, tc := range cases {
		if tc.exc.String() != tc.name {
			t.Fatalf("%d.String() = %q; want %q", tc.exc, tc.exc.String(), tc.name)
		}
		if tc.exc.Vector() != tc.vector {
			t.Fatalf("%v.Vector() = %d; want %d", tc.exc, tc.exc.Vector(), tc.vector)
		}
	}
	if Exception(200).Vector() != 0xFF {
		t.Fatal("out-of-range exception must report vector 0xFF")
	}
}

// TestParseException: round-trips every String() form, accepts names
// case-insensitively with or without the '#', and lists the valid names
// when rejecting.
func TestParseException(t *testing.T) {
	for e := ExcNone; e < numExceptions; e++ {
		for _, name := range []string{
			e.String(),
			strings.ToLower(e.String()),
			strings.TrimPrefix(e.String(), "#"),
			" " + strings.ToUpper(e.String()) + " ",
		} {
			got, err := ParseException(name)
			if err != nil || got != e {
				t.Fatalf("ParseException(%q) = %v, %v; want %v", name, got, err, e)
			}
		}
	}
	_, err := ParseException("#XF")
	if err == nil {
		t.Fatal("unknown exception accepted")
	}
	if !strings.Contains(err.Error(), "#DE") || !strings.Contains(err.Error(), "#AC") {
		t.Fatalf("error %q does not list the valid names", err)
	}
}
