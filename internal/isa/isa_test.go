package isa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWidthMask(t *testing.T) {
	cases := []struct {
		w    Width
		want uint64
	}{
		{W8, 0xff},
		{W16, 0xffff},
		{W32, 0xffffffff},
		{W64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := c.w.Mask(); got != c.want {
			t.Errorf("Mask(%v) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

func TestWidthSignBit(t *testing.T) {
	if W8.SignBit() != 0x80 {
		t.Errorf("W8 sign bit = %#x", W8.SignBit())
	}
	if W64.SignBit() != 1<<63 {
		t.Errorf("W64 sign bit = %#x", W64.SignBit())
	}
}

func TestCondEvalPairs(t *testing.T) {
	// Every even/odd condition pair must be complementary.
	for c := Cond(0); c < NumCond; c += 2 {
		for f := Flags(0); f <= AllFlags; f++ {
			if c.Eval(f) == (c + 1).Eval(f) {
				t.Fatalf("cond %v and %v agree on flags %v", c, c+1, f)
			}
		}
	}
}

func TestCondReadsCoverEval(t *testing.T) {
	// Eval must only depend on the flags that Reads reports.
	for c := Cond(0); c < NumCond; c++ {
		reads := c.Reads()
		for f := Flags(0); f <= AllFlags; f++ {
			for bit := Flags(1); bit <= OF; bit <<= 1 {
				if reads&bit != 0 {
					continue
				}
				if c.Eval(f) != c.Eval(f^bit) {
					t.Fatalf("cond %v depends on unreported flag %v", c, bit)
				}
			}
		}
	}
}

func TestTableSize(t *testing.T) {
	n := NumVariants()
	if n < 600 {
		t.Fatalf("variant table has %d entries, want >= 600 (paper-scale ISA)", n)
	}
	t.Logf("variant table: %d variants, %d opcode slots assigned", n, NumOpcodeSlots())
}

func TestTableInvariantZeroIsInvalid(t *testing.T) {
	if Lookup(0).Op != OpINVALID {
		t.Fatal("variant 0 must be the invalid instruction")
	}
}

func TestTableOperandSpecsWellFormed(t *testing.T) {
	for i := 1; i < NumVariants(); i++ {
		v := Lookup(VariantID(i))
		if len(v.Ops) > MaxOperands {
			t.Fatalf("%s: too many operands", v)
		}
		for _, s := range v.Ops {
			if s.Kind == KNone {
				t.Fatalf("%s: KNone operand in spec", v)
			}
			if s.Acc == 0 {
				t.Fatalf("%s: operand with no access mode", v)
			}
			if s.Kind == KImm && s.Acc != AccR {
				t.Fatalf("%s: writable immediate", v)
			}
		}
		if v.Unit == UNone && !v.Privileged {
			t.Fatalf("%s: no functional unit", v)
		}
		if v.Latency <= 0 {
			t.Fatalf("%s: nonpositive latency", v)
		}
	}
}

func TestTableMemoryOperandLimit(t *testing.T) {
	// Like x86, at most one explicit memory operand per instruction.
	for i := 1; i < NumVariants(); i++ {
		v := Lookup(VariantID(i))
		n := 0
		for _, s := range v.Ops {
			if s.Kind == KMem {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("%s: %d memory operands", v, n)
		}
	}
}

func TestTableBranchesAreBranchUnit(t *testing.T) {
	for i := 1; i < NumVariants(); i++ {
		v := Lookup(VariantID(i))
		if v.IsBranch != (v.Unit == UBranch) {
			t.Fatalf("%s: IsBranch=%v but unit=%v", v, v.IsBranch, v.Unit)
		}
	}
}

func TestDeterministicExcludesMarked(t *testing.T) {
	for _, id := range Deterministic() {
		v := Lookup(id)
		if v.NonDeterministic || v.Privileged {
			t.Fatalf("%s leaked into Deterministic()", v)
		}
	}
	// And the full set minus exclusions equals the deterministic set.
	n := 0
	for i := 1; i < NumVariants(); i++ {
		if Lookup(VariantID(i)).Deterministic() {
			n++
		}
	}
	if n != len(Deterministic()) {
		t.Fatalf("Deterministic() has %d entries, want %d", len(Deterministic()), n)
	}
}

func TestImplicitOperandsOnWideMul(t *testing.T) {
	// Paper §V-B: MUL variants implicitly clobber RAX (and RDX); the
	// generator must be able to see this to avoid corrupting base
	// registers.
	for _, op := range []Op{OpMUL, OpIMUL, OpDIV, OpIDIV} {
		for _, id := range ByOp(op) {
			v := Lookup(id)
			foundRAX := false
			for _, r := range v.ImplicitOut {
				if r == RAX {
					foundRAX = true
				}
			}
			if !foundRAX {
				t.Fatalf("%s: missing implicit RAX output", v)
			}
		}
	}
}

func TestRotateThroughCarryReadsCF(t *testing.T) {
	for _, op := range []Op{OpRCL, OpRCR, OpADC, OpSBB} {
		for _, id := range ByOp(op) {
			if v := Lookup(id); v.FlagsRead&CF == 0 {
				t.Fatalf("%s: must read CF", v)
			}
		}
	}
}

func randomInst(rng *rand.Rand) Inst {
	det := Deterministic()
	v := Lookup(det[rng.IntN(len(det))])
	in := Inst{V: v.ID, NOps: uint8(len(v.Ops))}
	for i, s := range v.Ops {
		switch s.Kind {
		case KReg:
			in.Ops[i] = RegOp(Reg(rng.IntN(NumGPR)))
		case KXmm:
			in.Ops[i] = XmmOp(XReg(rng.IntN(NumXMM)))
		case KImm:
			w := s.Width
			if w > W64 {
				w = W64
			}
			// Value representable at the encoded width.
			shift := 64 - 8*uint(w)
			in.Ops[i] = ImmOp(int64(rng.Uint64()<<shift) >> shift)
		case KMem:
			m := MemRef{Base: Reg(rng.IntN(NumGPR)), Scale: 1, Disp: int32(rng.Int32())}
			if rng.IntN(2) == 0 {
				m.HasIndex = true
				m.Index = Reg(rng.IntN(NumGPR))
				m.Scale = 1 << rng.IntN(4)
			}
			in.Ops[i] = Operand{Kind: KMem, Mem: m}
		}
	}
	return in
}

func instEqual(a, b Inst) bool {
	if a.V != b.V || a.NOps != b.NOps {
		return false
	}
	for i := 0; i < int(a.NOps); i++ {
		if a.Ops[i] != b.Ops[i] {
			return false
		}
	}
	return true
}

// Property: Decode(Encode(x)) == x for every encodable instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20000; trial++ {
		in := randomInst(rng)
		enc := Encode(nil, in)
		if len(enc) != EncodedLen(in) {
			t.Fatalf("%v: EncodedLen=%d, got %d bytes", in, EncodedLen(in), len(enc))
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: decode error %v (bytes %x)", in, err, enc)
		}
		if n != len(enc) {
			t.Fatalf("%v: decode consumed %d of %d bytes", in, n, len(enc))
		}
		if !instEqual(got, in) {
			t.Fatalf("round trip: encoded %v, decoded %v", in, got)
		}
	}
}

// Property: Decode never panics and never reads past the buffer,
// whatever the input bytes.
func TestDecodeArbitraryBytesSafe(t *testing.T) {
	f := func(buf []byte) bool {
		in, n, err := Decode(buf)
		if err == nil {
			// Consumed bytes must re-encode to the same prefix.
			re := Encode(nil, in)
			if n != len(re) {
				return false
			}
		}
		return n <= len(buf) || (err == ErrTruncated || err == ErrInvalidOpcode)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalidOpcodeByte(t *testing.T) {
	// Byte 0x00 and all unassigned slots must decode as invalid.
	_, _, err := Decode([]byte{0x00, 0x00, 0x00, 0x00})
	if err != ErrInvalidOpcode {
		t.Fatalf("opcode 0: err = %v, want ErrInvalidOpcode", err)
	}
	for b := NumOpcodeSlots() + 1; b < 256; b++ {
		_, _, err := Decode([]byte{byte(b), 0, 0, 0, 0, 0, 0, 0, 0, 0})
		if err != ErrInvalidOpcode {
			t.Fatalf("opcode %#x: err = %v, want ErrInvalidOpcode", b, err)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 2000; trial++ {
		in := randomInst(rng)
		enc := Encode(nil, in)
		if len(enc) < 3 {
			continue
		}
		_, _, err := Decode(enc[:len(enc)-1])
		if err != ErrTruncated {
			t.Fatalf("%v truncated: err=%v, want ErrTruncated", in, err)
		}
	}
}

func TestDecodeAllSequence(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var insts []Inst
	var buf []byte
	for i := 0; i < 100; i++ {
		in := randomInst(rng)
		insts = append(insts, in)
		buf = Encode(buf, in)
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(insts))
	}
	for i := range insts {
		if !instEqual(got[i], insts[i]) {
			t.Fatalf("inst %d: got %v, want %v", i, got[i], insts[i])
		}
	}
}

func TestInstString(t *testing.T) {
	adds := ByOp(OpADD)
	if len(adds) == 0 {
		t.Fatal("no ADD variants")
	}
	in := MakeInst(adds[0], RegOp(RAX), RegOp(RBX))
	if s := in.String(); s == "" {
		t.Fatal("empty instruction string")
	}
}

func TestRandomByteValidityFraction(t *testing.T) {
	// Sanity-check the CISC-density property the SiliFuzz baseline relies
	// on: a substantial fraction of random byte strings must fail to
	// decode, and a substantial fraction must succeed.
	rng := rand.New(rand.NewPCG(7, 8))
	ok, bad := 0, 0
	for trial := 0; trial < 5000; trial++ {
		buf := make([]byte, 16)
		for i := range buf {
			buf[i] = byte(rng.Uint32())
		}
		if _, _, err := Decode(buf); err != nil {
			bad++
		} else {
			ok++
		}
	}
	frac := float64(ok) / float64(ok+bad)
	if frac < 0.10 || frac > 0.80 {
		t.Fatalf("random-byte decode validity = %.2f, want within [0.10, 0.80]", frac)
	}
	t.Logf("random-byte single-instruction decode validity: %.2f", frac)
}
