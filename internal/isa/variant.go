package isa

import "fmt"

// Op is a semantic operation family. A family combined with an operand
// form and a width yields a Variant.
type Op uint16

// Operation families.
const (
	OpINVALID Op = iota

	// Integer ALU (binary).
	OpADD
	OpSUB
	OpADC
	OpSBB
	OpAND
	OpOR
	OpXOR
	OpCMP
	OpTEST
	OpMOV

	// Integer ALU (unary).
	OpINC
	OpDEC
	OpNEG
	OpNOT

	// Shifts and rotates.
	OpSHL
	OpSHR
	OpSAR
	OpROL
	OpROR
	OpRCL
	OpRCR

	// Address computation and width conversion.
	OpLEA
	OpMOVZX
	OpMOVSX
	OpXCHG

	// Wide multiply/divide with implicit RAX:RDX.
	OpMUL
	OpIMUL
	OpDIV
	OpIDIV
	OpIMULRR  // imul r, r/m (two-operand form)
	OpIMULRRI // imul r, r, imm

	// Stack.
	OpPUSH
	OpPOP

	// Conditionals.
	OpSETcc
	OpCMOVcc
	OpJcc
	OpJMP

	// Bit manipulation.
	OpBSWAP
	OpBSF
	OpBSR
	OpPOPCNT
	OpLZCNT
	OpTZCNT
	OpBT
	OpBTS
	OpBTR
	OpBTC

	OpNOP

	// Nondeterministic (excluded from deterministic test programs).
	OpRDTSC
	OpRDRAND
	OpCPUID

	// Privileged (fault in user mode).
	OpHLT
	OpINB
	OpOUTB

	// SSE scalar double.
	OpADDSD
	OpSUBSD
	OpMULSD
	OpDIVSD
	OpMINSD
	OpMAXSD
	OpSQRTSD

	// SSE scalar single.
	OpADDSS
	OpSUBSS
	OpMULSS
	OpDIVSS

	// SSE packed double (2 x 64-bit lanes).
	OpADDPD
	OpSUBPD
	OpMULPD
	OpDIVPD

	// Conversions.
	OpCVTSI2SD
	OpCVTSD2SI
	OpCVTTSD2SI
	OpCVTSD2SS
	OpCVTSS2SD

	// Vector moves.
	OpMOVSD
	OpMOVAPD
	OpMOVQXR // movq xmm <- r64
	OpMOVQRX // movq r64 <- xmm

	// Vector integer.
	OpPXOR
	OpPAND
	OpPOR
	OpPADDQ
	OpPADDD
	OpPSUBQ
	OpPMULLD

	// Vector compare / shuffle.
	OpUCOMISD
	OpSHUFPD
	OpUNPCKLPD
	OpUNPCKHPD

	NumOps
)

// Unit identifies the functional unit class an operation executes on.
type Unit uint8

// Functional units of the modelled core.
const (
	UNone   Unit = iota
	UIntALU      // integer adder/logic (the paper's "Integer Adder" target)
	UIntMul      // integer multiplier
	UIntDiv      // integer divider
	UFPAdd       // SSE FP adder
	UFPMul       // SSE FP multiplier
	UFPDiv       // SSE FP divider / sqrt
	ULoad        // load port (address generation + cache access)
	UStore       // store port
	UBranch      // branch unit
	UVecALU      // vector integer ALU

	NumUnits
)

var unitNames = [NumUnits]string{
	"none", "int-alu", "int-mul", "int-div", "fp-add", "fp-mul", "fp-div",
	"load", "store", "branch", "vec-alu",
}

func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("unit?%d", uint8(u))
}

// VariantID indexes the global variant table.
type VariantID uint16

// Variant is one distinct instruction: a mnemonic with a specific operand
// form and width. MuSeqGen's mutation engine treats each variant as a
// distinct gene (paper §V-B1: "the same mnemonics with different operand
// types are handled as distinct instructions").
type Variant struct {
	ID       VariantID
	Op       Op
	Mnemonic string
	Ops      []OperandSpec
	Width    Width // operation width (result width for int ops)
	Cond     Cond  // for Jcc / SETcc / CMOVcc
	Unit     Unit
	Latency  int // execute latency in cycles

	// Implicit register operands (beyond the explicit operand list).
	ImplicitIn  []Reg
	ImplicitOut []Reg

	FlagsRead    Flags
	FlagsWritten Flags

	NonDeterministic bool
	Privileged       bool
	IsBranch         bool
	// MemImplicit marks stack ops that access memory through RSP without
	// an explicit memory operand.
	MemImplicit bool
}

// ReadsMem reports whether the variant reads from memory (explicitly or
// via the stack).
func (v *Variant) ReadsMem() bool {
	if v.Op == OpPOP {
		return true
	}
	if v.Op == OpLEA {
		return false // address computation only
	}
	for i, s := range v.Ops {
		if s.Kind == KMem && s.Acc&AccR != 0 {
			_ = i
			return true
		}
	}
	return false
}

// WritesMem reports whether the variant writes to memory.
func (v *Variant) WritesMem() bool {
	if v.Op == OpPUSH {
		return true
	}
	if v.Op == OpLEA {
		return false
	}
	for _, s := range v.Ops {
		if s.Kind == KMem && s.Acc&AccW != 0 {
			return true
		}
	}
	return false
}

// HasMemOperand reports whether any explicit operand is a memory
// reference (LEA included).
func (v *Variant) HasMemOperand() bool {
	for _, s := range v.Ops {
		if s.Kind == KMem {
			return true
		}
	}
	return false
}

// Deterministic reports whether the variant is safe for deterministic
// test programs (paper §V-B: nondeterministic instructions are excluded
// by the generator, as SiliFuzz also does).
func (v *Variant) Deterministic() bool { return !v.NonDeterministic && !v.Privileged }

func (v *Variant) String() string {
	s := v.Mnemonic
	for i, o := range v.Ops {
		if i == 0 {
			s += " "
		} else {
			s += ","
		}
		switch o.Kind {
		case KReg:
			s += fmt.Sprintf("r%d", o.Width.Bits())
		case KXmm:
			s += "xmm"
		case KImm:
			s += fmt.Sprintf("imm%d", o.Width.Bits())
		case KMem:
			s += fmt.Sprintf("m%d", o.Width.Bits())
		}
	}
	return s
}
