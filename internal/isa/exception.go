package isa

import (
	"fmt"
	"strings"
)

// Exception identifies an HX86 architectural exception: the trap a real
// x86 core would raise for the same fault. Exceptions are the model's
// "detected by trap" channel — a fault that turns a valid instruction
// into one of these is observable on real hardware through the
// machine-check / #DE / #UD / #GP machinery without any software
// signature comparison, so fault-injection campaigns grade it as a
// distinct (and cheaper to observe) outcome class than a silent
// corruption or a wild-branch crash.
type Exception uint8

// Architectural exception codes. The zero value means "no exception":
// the run either completed cleanly or failed in a way with no
// architectural trap semantics (wild branch out of the program image,
// watchdog timeout).
const (
	ExcNone              Exception = iota
	ExcDivide                      // #DE: divide error (divide by zero / quotient overflow)
	ExcInvalidOpcode               // #UD: invalid or undecodable opcode
	ExcGeneralProtection           // #GP: privileged or ill-formed operation
	ExcPageFault                   // #PF: access outside the mapped data image
	ExcStackFault                  // #SS: push/pop outside the stack segment
	ExcAlignment                   // #AC: misaligned access with alignment checking
	numExceptions
)

// excInfo is the single source of truth for exception naming and x86
// vector numbers; String, Vector and ParseException all derive from it.
var excInfo = [numExceptions]struct {
	name   string
	vector uint8
}{
	ExcNone:              {"none", 0xFF},
	ExcDivide:            {"#DE", 0},
	ExcInvalidOpcode:     {"#UD", 6},
	ExcGeneralProtection: {"#GP", 13},
	ExcPageFault:         {"#PF", 14},
	ExcStackFault:        {"#SS", 12},
	ExcAlignment:         {"#AC", 17},
}

// String returns the conventional x86 mnemonic ("#DE", "#UD", ...), or
// "none" for ExcNone.
func (e Exception) String() string {
	if e < numExceptions {
		return excInfo[e].name
	}
	return fmt.Sprintf("exc?%d", uint8(e))
}

// Vector returns the x86 interrupt vector number the exception would be
// delivered on. ExcNone (and out-of-range values) report 0xFF.
func (e Exception) Vector() uint8 {
	if e < numExceptions {
		return excInfo[e].vector
	}
	return 0xFF
}

// ParseException resolves an exception name, case-insensitively and
// with or without the leading '#' ("de", "#UD", "pf"...).
func ParseException(s string) (Exception, error) {
	t := strings.TrimPrefix(strings.ToLower(strings.TrimSpace(s)), "#")
	for e := ExcNone; e < numExceptions; e++ {
		if t == strings.TrimPrefix(strings.ToLower(excInfo[e].name), "#") {
			return e, nil
		}
	}
	return ExcNone, fmt.Errorf("isa: unknown exception %q (valid: %s)", s, exceptionNames())
}

func exceptionNames() string {
	names := make([]string, numExceptions)
	for e := ExcNone; e < numExceptions; e++ {
		names[e] = excInfo[e].name
	}
	return strings.Join(names, ", ")
}
