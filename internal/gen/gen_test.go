package gen

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumInstrs = 300
	return cfg
}

// The central generator guarantee (paper §V-B): every generated program
// is valid, deterministic and non-crashing.
func TestGeneratedProgramsNeverCrash(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 60; trial++ {
		g := NewRandom(&cfg, rng)
		p := Materialize(g, &cfg)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		n, _, err := p.GoldenRun(10 * cfg.NumInstrs)
		if err != nil {
			t.Fatalf("trial %d: generated program crashed: %v", trial, err)
		}
		if n != cfg.NumInstrs {
			t.Fatalf("trial %d: retired %d instructions, want %d", trial, n, cfg.NumInstrs)
		}
		if !p.Deterministic(10 * cfg.NumInstrs) {
			t.Fatalf("trial %d: generated program is nondeterministic", trial)
		}
	}
}

func TestGeneratedProgramsRunOnCore(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewPCG(3, 4))
	ccfg := uarch.DefaultConfig()
	ccfg.DebugScrub = true
	for trial := 0; trial < 20; trial++ {
		g := NewRandom(&cfg, rng)
		p := Materialize(g, &cfg)
		_, gsig, gerr := p.GoldenRun(10 * cfg.NumInstrs)
		if gerr != nil {
			t.Fatal(gerr)
		}
		res := uarch.Run(p.Insts, p.NewState(), ccfg)
		if res.Crash != nil || res.TimedOut {
			t.Fatalf("trial %d: core run failed: %v %v", trial, res.Crash, res.TimedOut)
		}
		if res.Signature != gsig {
			t.Fatalf("trial %d: core/emulator signature mismatch", trial)
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewPCG(5, 6))
	g := NewRandom(&cfg, rng)
	p1 := Materialize(g, &cfg)
	p2 := Materialize(g, &cfg)
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatal("length mismatch")
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Fatalf("instruction %d differs between materializations", i)
		}
	}
	if p1.InitGPR != p2.InitGPR {
		t.Fatal("initial GPRs differ")
	}
	_, s1, _ := p1.GoldenRun(10 * cfg.NumInstrs)
	_, s2, _ := p2.GoldenRun(10 * cfg.NumInstrs)
	if s1 != s2 {
		t.Fatal("signatures differ")
	}
}

func TestReservedRegistersNeverClobbered(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 20; trial++ {
		g := NewRandom(&cfg, rng)
		p := Materialize(g, &cfg)
		for i, in := range p.Insts {
			v := isa.Lookup(in.V)
			for k, spec := range v.Ops {
				if spec.Kind == isa.KReg && spec.Acc&isa.AccW != 0 {
					r := in.Ops[k].Reg
					if r == isa.RSP || r == BaseReg {
						t.Fatalf("instruction %d (%v) writes reserved register %v", i, in, r)
					}
				}
				if spec.Kind == isa.KMem && in.Ops[k].Mem.Base != BaseReg {
					t.Fatalf("instruction %d (%v) uses non-reserved base", i, in)
				}
			}
		}
	}
}

func TestBranchesResolveToNext(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewPCG(9, 10))
	g := NewRandom(&cfg, rng)
	p := Materialize(g, &cfg)
	for i, in := range p.Insts {
		if isa.Lookup(in.V).IsBranch && in.Ops[0].Imm != 0 {
			t.Fatalf("branch at %d targets %d, want 0 (next instruction)", i, in.Ops[0].Imm)
		}
	}
}

func TestMemOperandsAlignedAndInRegion(t *testing.T) {
	cfg := smallConfig()
	cfg.Mem = MemPolicy{RegionBytes: 4096, Stride: 24}
	rng := rand.New(rand.NewPCG(11, 12))
	g := NewRandom(&cfg, rng)
	p := Materialize(g, &cfg)
	for i, in := range p.Insts {
		v := isa.Lookup(in.V)
		for k, spec := range v.Ops {
			if spec.Kind != isa.KMem {
				continue
			}
			d := in.Ops[k].Mem.Disp
			if d < 0 || int(d) > 4096-16 {
				t.Fatalf("instruction %d: displacement %d out of region", i, d)
			}
			if spec.Width == isa.W128 && d%16 != 0 {
				t.Fatalf("instruction %d: 128-bit operand misaligned (%d)", i, d)
			}
			if int(d)%int(min(spec.Width, 16)) != 0 {
				t.Fatalf("instruction %d: operand misaligned for width %v", i, spec.Width)
			}
		}
	}
}

func min(a isa.Width, b int) int {
	if int(a) < b {
		return int(a)
	}
	return b
}

func TestWeightedSelection(t *testing.T) {
	cfg := smallConfig()
	cfg.NumInstrs = 3000
	// Weight one variant overwhelmingly.
	cfg.Weights = make([]float64, len(cfg.Allowed))
	for i := range cfg.Weights {
		cfg.Weights[i] = 0.001
	}
	cfg.Weights[7] = 1000
	rng := rand.New(rand.NewPCG(13, 14))
	g := NewRandom(&cfg, rng)
	count := 0
	for _, v := range g.Variants {
		if v == cfg.Allowed[7] {
			count++
		}
	}
	if count < cfg.NumInstrs/2 {
		t.Fatalf("heavily weighted variant selected only %d/%d times", count, cfg.NumInstrs)
	}
}

func TestAllocationPoliciesDiffer(t *testing.T) {
	policies := []RegAllocPolicy{AllocMaxDistance, AllocRoundRobin, AllocRandom}
	var sigs []string
	for _, pol := range policies {
		cfg := smallConfig()
		cfg.RegAlloc = pol
		g := &Genotype{Seed: 42}
		for i := 0; i < 100; i++ {
			g.Variants = append(g.Variants, cfg.Allowed[i%50])
		}
		p := Materialize(g, &cfg)
		sigs = append(sigs, p.Disassemble())
	}
	if sigs[0] == sigs[1] && sigs[1] == sigs[2] {
		t.Fatal("all allocation policies produced identical programs")
	}
}

func TestPoolExcludesUnsafeVariants(t *testing.T) {
	for _, id := range DefaultPool() {
		v := isa.Lookup(id)
		if v.NonDeterministic || v.Privileged {
			t.Fatalf("pool contains unsafe variant %v", v)
		}
		if v.Op == isa.OpDIV || v.Op == isa.OpIDIV {
			t.Fatalf("pool contains wide division %v", v)
		}
	}
	if len(DefaultPool()) < 500 {
		t.Fatalf("default pool suspiciously small: %d", len(DefaultPool()))
	}
}

func TestPoolFilter(t *testing.T) {
	fp := PoolFilter(func(v *isa.Variant) bool { return v.Unit == isa.UFPAdd })
	if len(fp) == 0 {
		t.Fatal("no FP-add variants in pool")
	}
	for _, id := range fp {
		if isa.Lookup(id).Unit != isa.UFPAdd {
			t.Fatal("filter leaked wrong unit")
		}
	}
}

// Stack-heavy mutants must stay in bounds: an all-PUSH and an all-POP
// program of paper-scale length must not crash.
func TestStackImbalanceStaysInBounds(t *testing.T) {
	var push, pop isa.VariantID
	for _, id := range isa.ByOp(isa.OpPUSH) {
		if isa.Lookup(id).Ops[0].Kind == isa.KReg {
			push = id
		}
	}
	for _, id := range isa.ByOp(isa.OpPOP) {
		if isa.Lookup(id).Ops[0].Kind == isa.KReg {
			pop = id
		}
	}
	cfg := smallConfig()
	cfg.NumInstrs = 30000
	for _, vid := range []isa.VariantID{push, pop} {
		g := &Genotype{Seed: 1}
		for i := 0; i < cfg.NumInstrs; i++ {
			g.Variants = append(g.Variants, vid)
		}
		p := Materialize(g, &cfg)
		if _, _, err := p.GoldenRun(2 * cfg.NumInstrs); err != nil {
			t.Fatalf("stack-only program (%v) crashed: %v", isa.Lookup(vid), err)
		}
	}
}

func TestInitialStateUsesLayout(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewPCG(15, 16))
	p := Materialize(NewRandom(&cfg, rng), &cfg)
	if p.InitGPR[BaseReg] != prog.DataBase {
		t.Fatal("base register not initialized to data region")
	}
	if p.InitGPR[isa.RSP] != prog.StackBase+StackBytes/2 {
		t.Fatal("stack pointer not initialized mid-stack")
	}
	st := p.NewState()
	if _, err := st.Mem.(*arch.Memory).Read(prog.DataBase, 8); err != nil {
		t.Fatal("data region unreadable")
	}
}

// Property: materialization must produce valid runnable programs for
// ARBITRARY variant sequences drawn from the pool (the mutation engine
// may synthesize any such sequence).
func TestMaterializeArbitrarySequencesProperty(t *testing.T) {
	cfg := smallConfig()
	f := func(seed uint64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		g := &Genotype{Seed: seed}
		for _, r := range raw {
			g.Variants = append(g.Variants, cfg.Allowed[int(r)%len(cfg.Allowed)])
		}
		p := Materialize(g, &cfg)
		if err := p.Validate(); err != nil {
			return false
		}
		n, _, err := p.GoldenRun(10*len(g.Variants) + 100)
		return err == nil && n == len(g.Variants)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolUsage(t *testing.T) {
	cfg := smallConfig()
	pool := cfg.Allowed
	if len(pool) < 3 {
		t.Skip("pool too small")
	}
	// A genotype using exactly two pool variants.
	g := &Genotype{Variants: []isa.VariantID{pool[0], pool[1], pool[0]}}
	want := 2.0 / float64(len(pool))
	if got := PoolUsage(&cfg, []*Genotype{g}); got != want {
		t.Fatalf("PoolUsage = %f, want %f", got, want)
	}
	// Out-of-pool variants must not count.
	var outside isa.VariantID
	for v := isa.VariantID(0); int(v) < isa.NumVariants(); v++ {
		found := false
		for _, p := range pool {
			if p == v {
				found = true
				break
			}
		}
		if !found {
			outside = v
			break
		}
	}
	g2 := &Genotype{Variants: []isa.VariantID{outside}}
	if got := PoolUsage(&cfg, []*Genotype{g, g2}); got != want {
		t.Fatalf("out-of-pool variant counted: %f, want %f", got, want)
	}
	// Empty pool reports zero.
	empty := Config{}
	if got := PoolUsage(&empty, []*Genotype{g}); got != 0 {
		t.Fatalf("empty pool usage %f, want 0", got)
	}
}
