// Package gen is the MuSeqGen analogue: configurable constrained-random
// generation of valid, deterministic, non-crashing HX86 test programs
// (paper §V).
//
// A program's genotype is its variant sequence plus an operand-resolution
// seed; materialization runs the pass pipeline (instruction fill,
// register allocation, memory-operand resolution, immediate sampling,
// branch resolution, state initialization) to produce the runnable
// phenotype. The mutation engine edits genotypes; re-materialization
// re-resolves operands deterministically, guaranteeing every mutant is
// still valid — the ISA-awareness that separates Harpocrates from raw
// byte fuzzing (paper Fig. 8).
//
// Validity constraints encoded here (paper §V-B):
//   - nondeterministic and privileged variants are excluded;
//   - a reserved base register (R14) anchors all memory operands inside
//     a designated region, so implicit-output clobbers (MUL writing
//     RAX:RDX) can never corrupt an address base;
//   - RSP is reserved for the stack, which is sized so that any PUSH/POP
//     imbalance a mutation can produce stays in bounds;
//   - 128-bit memory operands resolve to 16-byte-aligned addresses;
//   - branches resolve to the next instruction (taken and not-taken
//     paths coincide, §V-D);
//   - wide division is excluded from the default pool (its quotient-
//     overflow trap depends on runtime data and cannot be guaranteed
//     crash-free by construction).
package gen

import (
	"math/rand/v2"

	"harpocrates/internal/isa"
	"harpocrates/internal/prog"
	"harpocrates/internal/stats"
)

// BaseReg is the reserved memory base register.
const BaseReg = isa.R14

// StackBytes is the generated programs' stack size: large enough that no
// mutation can push or pop out of bounds (30K single-push instructions
// move RSP by 240 KB; we budget 512 KB each way).
const StackBytes = 1 << 20

// RegAllocPolicy selects the register-allocation pass.
type RegAllocPolicy int

// Register allocation policies (paper §V-D: "constant register
// dependency distance, random allocation subject to ISA constraints,
// round-robin, etc.").
const (
	// AllocMaxDistance maximizes dependency distance: destinations and
	// sources pick the least-recently-written register, balancing ILP
	// and data-flow propagation (the paper's choice).
	AllocMaxDistance RegAllocPolicy = iota
	// AllocRoundRobin cycles through the allowed registers.
	AllocRoundRobin
	// AllocRandom picks uniformly among allowed registers.
	AllocRandom
)

// MemPolicy configures memory-operand resolution: a cursor walking a
// region with a fixed stride (paper §V-D: "memory operands are always
// resolved in a round-robin fashion and within a cache-sized designated
// memory space with a fixed stride").
type MemPolicy struct {
	RegionBytes int
	Stride      int
}

// Config parameterizes generation.
type Config struct {
	// NumInstrs is the program length (5K/10K/30K in the paper).
	NumInstrs int
	// Allowed is the variant pool for instruction fill and mutation.
	// Defaults to DefaultPool().
	Allowed []isa.VariantID
	// Weights optionally biases instruction selection (parallel to
	// Allowed; nil = uniform).
	Weights  []float64
	RegAlloc RegAllocPolicy
	Mem      MemPolicy
}

// DefaultConfig returns the generator configuration used for the
// register-file target (10K instructions, uniform selection, max
// dependency distance, 32 KB region with a 64-byte stride).
func DefaultConfig() Config {
	return Config{
		NumInstrs: 10000,
		Allowed:   DefaultPool(),
		RegAlloc:  AllocMaxDistance,
		Mem:       MemPolicy{RegionBytes: 32 * 1024, Stride: 64},
	}
}

var defaultPool []isa.VariantID

// DefaultPool returns the default variant pool: every deterministic
// variant except wide division (runtime-data-dependent traps).
func DefaultPool() []isa.VariantID {
	if defaultPool == nil {
		for _, id := range isa.Deterministic() {
			switch isa.Lookup(id).Op {
			case isa.OpDIV, isa.OpIDIV:
				continue
			}
			defaultPool = append(defaultPool, id)
		}
	}
	return defaultPool
}

// PoolFilter returns the subset of DefaultPool satisfying keep.
func PoolFilter(keep func(*isa.Variant) bool) []isa.VariantID {
	var out []isa.VariantID
	for _, id := range DefaultPool() {
		if keep(isa.Lookup(id)) {
			out = append(out, id)
		}
	}
	return out
}

// PoolUsage reports the fraction of the configured variant pool that
// appears in at least one of the given genotypes (0..1). A refinement
// loop whose survivors exercise a shrinking slice of the pool has
// collapsed onto a few instruction kinds — a diversity signal surfaced
// by the observability layer.
func PoolUsage(cfg *Config, gs []*Genotype) float64 {
	if len(cfg.Allowed) == 0 {
		return 0
	}
	present := make(map[isa.VariantID]struct{}, len(cfg.Allowed))
	for _, g := range gs {
		for _, v := range g.Variants {
			present[v] = struct{}{}
		}
	}
	// Count only variants actually in the pool: mutation cannot introduce
	// out-of-pool variants, but seeded genotypes might carry them.
	n := 0
	for _, v := range cfg.Allowed {
		if _, ok := present[v]; ok {
			n++
		}
	}
	return float64(n) / float64(len(cfg.Allowed))
}

// Genotype is the heritable representation: the variant sequence plus
// the operand-resolution seed. Mutation edits Variants; materialization
// is a pure function of the genotype and config.
type Genotype struct {
	Variants []isa.VariantID
	Seed     uint64
}

// Hash returns the genotype's content hash: the materialization seed and
// every variant folded in a fixed order. Because materialization is a
// pure function of (genotype, config), the hash identifies the phenotype
// too — it keys the evaluator's fitness memo and the corpus store's
// content-addressed filenames.
func (g *Genotype) Hash() uint64 {
	h := stats.Mix64(stats.HashInit, g.Seed)
	for _, v := range g.Variants {
		h = stats.Mix64(h, uint64(v))
	}
	return h
}

// Clone deep-copies the genotype.
func (g *Genotype) Clone() *Genotype {
	c := &Genotype{Variants: make([]isa.VariantID, len(g.Variants)), Seed: g.Seed}
	copy(c.Variants, g.Variants)
	return c
}

// NewRandom samples a fresh random genotype.
func NewRandom(cfg *Config, rng *rand.Rand) *Genotype {
	g := &Genotype{Variants: make([]isa.VariantID, cfg.NumInstrs), Seed: rng.Uint64()}
	for i := range g.Variants {
		g.Variants[i] = cfg.pick(rng)
	}
	return g
}

func (cfg *Config) pick(rng *rand.Rand) isa.VariantID {
	if len(cfg.Weights) != len(cfg.Allowed) || cfg.Weights == nil {
		return cfg.Allowed[rng.IntN(len(cfg.Allowed))]
	}
	total := 0.0
	for _, w := range cfg.Weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range cfg.Weights {
		x -= w
		if x <= 0 {
			return cfg.Allowed[i]
		}
	}
	return cfg.Allowed[len(cfg.Allowed)-1]
}

// allocatable integer registers: everything except RSP (stack) and the
// reserved memory base.
var intAllocOrder = func() []isa.Reg {
	var out []isa.Reg
	for r := isa.Reg(0); r < isa.NumGPR; r++ {
		if r == isa.RSP || r == BaseReg {
			continue
		}
		out = append(out, r)
	}
	return out
}()

// allocator implements the register-allocation policies over one
// register class.
type allocator struct {
	policy RegAllocPolicy
	order  []uint8 // register ids, least-recently-written first
	rrNext int
}

func newAllocator(policy RegAllocPolicy, regs []uint8) *allocator {
	o := make([]uint8, len(regs))
	copy(o, regs)
	return &allocator{policy: policy, order: o}
}

// src picks a source register (read).
func (a *allocator) src(rng *rand.Rand, i int) uint8 {
	switch a.policy {
	case AllocMaxDistance:
		// Oldest-written registers give the longest producer→consumer
		// distance.
		return a.order[i%len(a.order)]
	case AllocRoundRobin:
		r := a.order[a.rrNext%len(a.order)]
		a.rrNext++
		return r
	default:
		return a.order[rng.IntN(len(a.order))]
	}
}

// dst picks a destination register (write) and updates recency.
func (a *allocator) dst(rng *rand.Rand) uint8 {
	var idx int
	switch a.policy {
	case AllocMaxDistance:
		idx = 0 // least recently written: maximal overwrite distance
	case AllocRoundRobin:
		idx = a.rrNext % len(a.order)
		a.rrNext++
	default:
		idx = rng.IntN(len(a.order))
	}
	r := a.order[idx]
	copy(a.order[idx:], a.order[idx+1:])
	a.order[len(a.order)-1] = r
	return r
}

// Materialize resolves operands and initial state, producing the
// runnable program. It is deterministic in (genotype, config).
func Materialize(g *Genotype, cfg *Config) *prog.Program {
	rng := rand.New(rand.NewPCG(g.Seed, g.Seed^0x9e3779b97f4a7c15))

	regionBytes := cfg.Mem.RegionBytes
	if regionBytes <= 0 {
		regionBytes = 32 * 1024
	}
	stride := cfg.Mem.Stride
	if stride <= 0 {
		stride = 64
	}

	p := &prog.Program{
		Name:  "museqgen",
		Insts: make([]isa.Inst, 0, len(g.Variants)),
		Regions: []prog.RegionSpec{
			{Name: "data", Base: prog.DataBase, Data: randomBytes(rng, regionBytes), Writable: true},
			{Name: "stack", Base: prog.StackBase, Size: StackBytes, Writable: true},
		},
	}

	intRegs := make([]uint8, len(intAllocOrder))
	for i, r := range intAllocOrder {
		intRegs[i] = uint8(r)
	}
	xmmRegs := make([]uint8, isa.NumXMM)
	for i := range xmmRegs {
		xmmRegs[i] = uint8(i)
	}
	ialloc := newAllocator(cfg.RegAlloc, intRegs)
	xalloc := newAllocator(cfg.RegAlloc, xmmRegs)

	cursor := 0
	nsrc := 0
	for _, vid := range g.Variants {
		v := isa.Lookup(vid)
		in := isa.Inst{V: vid, NOps: uint8(len(v.Ops))}
		nsrc = 0
		for i, spec := range v.Ops {
			switch spec.Kind {
			case isa.KReg:
				var r uint8
				if spec.Acc == isa.AccR {
					r = ialloc.src(rng, nsrc)
					nsrc++
				} else {
					r = ialloc.dst(rng)
				}
				in.Ops[i] = isa.RegOp(isa.Reg(r))
			case isa.KXmm:
				var r uint8
				if spec.Acc == isa.AccR {
					r = xalloc.src(rng, nsrc)
					nsrc++
				} else {
					r = xalloc.dst(rng)
				}
				in.Ops[i] = isa.XmmOp(isa.XReg(r))
			case isa.KImm:
				if v.IsBranch {
					in.Ops[i] = isa.ImmOp(0) // resolve to next instruction
					break
				}
				w := spec.Width
				if w > isa.W64 {
					w = isa.W64
				}
				sh := 64 - 8*uint(w)
				in.Ops[i] = isa.ImmOp(int64(rng.Uint64()<<sh) >> sh)
			case isa.KMem:
				align := int(spec.Width)
				if align > 16 {
					align = 16
				}
				disp := cursor &^ (align - 1)
				if disp > regionBytes-16 {
					disp = 0
				}
				in.Ops[i] = isa.MemOp(BaseReg, int32(disp))
				cursor += stride
				if cursor > regionBytes-16 {
					cursor = 0
				}
			}
		}
		p.Insts = append(p.Insts, in)
	}

	// Initial architectural state (the "wrapper" initialization).
	for r := 0; r < isa.NumGPR; r++ {
		p.InitGPR[r] = rng.Uint64()
	}
	p.InitGPR[isa.RSP] = prog.StackBase + StackBytes/2
	p.InitGPR[BaseReg] = prog.DataBase
	for x := 0; x < isa.NumXMM; x++ {
		p.InitXMM[x] = [2]uint64{randFiniteDouble(rng), randFiniteDouble(rng)}
	}
	return p
}

func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := 0; i+8 <= n; i += 8 {
		v := rng.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * uint(k)))
		}
	}
	return b
}

// randFiniteDouble returns the bits of a finite, normal double with a
// moderate exponent, so FP sequences stay numerically interesting
// instead of saturating to Inf/NaN immediately.
func randFiniteDouble(rng *rand.Rand) uint64 {
	mant := rng.Uint64() & (1<<52 - 1)
	exp := uint64(1023 - 30 + rng.IntN(61))
	sign := uint64(rng.IntN(2)) << 63
	return sign | exp<<52 | mant
}
