package experiments

import (
	"fmt"
	"io"
	"time"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// CampaignSpeedResult compares SFI campaign wall-clock with and without
// checkpointed fast-forward + ACE pre-classification (DESIGN.md §4.7) on
// the same program, seed and injection count. The optimization is exact,
// so both sides must report identical per-outcome counts — a mismatch is
// returned as an error.
type CampaignSpeedResult struct {
	Structure    coverage.Structure
	N            int
	GoldenCycles uint64
	FromZero     time.Duration // every injection simulated from cycle 0
	FastForward  time.Duration // checkpoint resume + pre-classification
	SpeedupX     float64
	Stats        *inject.Stats
}

// CampaignSpeed times one transient IRF campaign both ways.
func CampaignSpeed(pp Params) (*CampaignSpeedResult, error) {
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 1000 * pp.Scale
	p := gen.Materialize(gen.NewRandom(&cfg, stats.Derive(pp.Seed, 5)), &cfg)

	campaign := func(noFF bool) *inject.Campaign {
		return &inject.Campaign{
			Prog: p.Insts, Init: p.InitFunc(),
			Target: coverage.IRF, Type: inject.Transient,
			N: pp.InjBitArray, Seed: pp.Seed, Cfg: uarch.DefaultConfig(),
			NoFastForward: noFF,
			Obs:           pp.Obs,
		}
	}
	t0 := time.Now()
	slow, err := campaign(true).Run()
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	fast, err := campaign(false).Run()
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	if !slow.Equal(fast) {
		return nil, fmt.Errorf("experiments: fast-forward changed campaign statistics: %+v vs %+v", slow, fast)
	}

	r := &CampaignSpeedResult{
		Structure:    coverage.IRF,
		N:            pp.InjBitArray,
		GoldenCycles: slow.GoldenCycles,
		FromZero:     t1.Sub(t0),
		FastForward:  t2.Sub(t1),
		Stats:        fast,
	}
	if r.FastForward > 0 {
		r.SpeedupX = float64(r.FromZero) / float64(r.FastForward)
	}
	return r, nil
}

// FprintCampaignSpeed renders the comparison.
func FprintCampaignSpeed(w io.Writer, r *CampaignSpeedResult) {
	fmt.Fprintf(w, "SFI campaign fast-forward — %v, %d transient injections, golden run %d cycles\n",
		r.Structure, r.N, r.GoldenCycles)
	fmt.Fprintf(w, "  from cycle 0:   %v\n", r.FromZero.Round(time.Millisecond))
	fmt.Fprintf(w, "  fast-forward:   %v  (checkpoint resume + ACE pre-classification)\n",
		r.FastForward.Round(time.Millisecond))
	fmt.Fprintf(w, "  speedup: %.1fx with bit-identical statistics (%s)\n", r.SpeedupX, r.Stats)
}
