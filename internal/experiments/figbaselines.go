package experiments

import (
	"fmt"
	"io"
	"sort"

	"harpocrates/internal/coverage"
	"harpocrates/internal/prog"
)

// BaselineFigure reproduces the shared shape of paper Figs. 4, 5 and 6:
// hardware coverage and SFI detection capability of every baseline
// program for a pair of target structures.
//
//	Fig. 4: IRF + L1D (transient faults, ACE coverage)
//	Fig. 5: integer adder + multiplier (permanent gate faults, IBR)
//	Fig. 6: SSE FP adder + multiplier (permanent gate faults, IBR)
func BaselineFigure(structs []coverage.Structure, pp Params) ([]Measurement, error) {
	suites := BaselinePrograms()
	type task struct {
		fw string
		p  *prog.Program
		st coverage.Structure
	}
	var tasks []task
	for _, fw := range []string{FwMiBench, FwSiliFuzz, FwOpenDCDiag} {
		for _, p := range suites[fw] {
			for _, st := range structs {
				tasks = append(tasks, task{fw, p, st})
			}
		}
	}
	out := make([]Measurement, len(tasks))
	errs := make([]error, len(tasks))
	// Campaigns parallelize internally across all cores; tasks run
	// serially to bound memory.
	for i, t := range tasks {
		m, err := Measure(t.p, t.st, pp)
		m.Framework = t.fw
		out[i] = m
		errs[i] = err
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Fig4 measures the IRF and L1D (bit arrays, transient faults).
func Fig4(pp Params) ([]Measurement, error) {
	return BaselineFigure([]coverage.Structure{coverage.IRF, coverage.L1D}, pp)
}

// Fig5 measures the integer adder and multiplier (permanent gate
// faults).
func Fig5(pp Params) ([]Measurement, error) {
	return BaselineFigure([]coverage.Structure{coverage.IntAdder, coverage.IntMul}, pp)
}

// Fig6 measures the SSE FP adder and multiplier (permanent gate faults).
func Fig6(pp Params) ([]Measurement, error) {
	return BaselineFigure([]coverage.Structure{coverage.FPAdd, coverage.FPMul}, pp)
}

// Summary aggregates per framework and structure.
type Summary struct {
	Framework string
	Structure coverage.Structure
	MaxDet    float64
	AvgDet    float64
	MaxCov    float64
	AvgCov    float64
	Programs  int
}

// Summarize groups measurements by (framework, structure).
func Summarize(ms []Measurement) []Summary {
	type key struct {
		fw string
		st coverage.Structure
	}
	agg := map[key]*Summary{}
	var order []key
	for _, m := range ms {
		k := key{m.Framework, m.Structure}
		s, ok := agg[k]
		if !ok {
			s = &Summary{Framework: m.Framework, Structure: m.Structure}
			agg[k] = s
			order = append(order, k)
		}
		s.Programs++
		s.AvgDet += m.Detection
		s.AvgCov += m.Coverage
		if m.Detection > s.MaxDet {
			s.MaxDet = m.Detection
		}
		if m.Coverage > s.MaxCov {
			s.MaxCov = m.Coverage
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].st != order[b].st {
			return order[a].st < order[b].st
		}
		return order[a].fw < order[b].fw
	})
	var out []Summary
	for _, k := range order {
		s := agg[k]
		s.AvgDet /= float64(s.Programs)
		s.AvgCov /= float64(s.Programs)
		out = append(out, *s)
	}
	return out
}

// FprintSummaries renders framework/structure aggregates.
func FprintSummaries(w io.Writer, title string, ss []Summary) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %-12s %5s %9s %9s %9s %9s\n",
		"structure", "framework", "progs", "avg cov", "max cov", "avg det", "max det")
	for _, s := range ss {
		fmt.Fprintf(w, "%-10s %-12s %5d %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			s.Structure, s.Framework, s.Programs,
			100*s.AvgCov, 100*s.MaxCov, 100*s.AvgDet, 100*s.MaxDet)
	}
}
