package experiments

import (
	"fmt"
	"io"
)

// DPPMEntry is one hyperscaler disclosure from the paper's Fig. 1.
type DPPMEntry struct {
	Source     string
	Disclosure string
	DPPM       float64
}

// Fig1DPPM returns the reported CPU defective-parts-per-million values
// (paper Fig. 1 and §I).
func Fig1DPPM() []DPPMEntry {
	return []DPPMEntry{
		{"Meta [1]", "hundreds of CPUs detected for SDCs in hundreds of thousands of machines", 1000},
		{"Google [2]", "a few mercurial cores per several thousand machines", 1000},
		{"Alibaba [3]", "3.61 CPUs per 10,000", 361},
	}
}

// ReferenceDPPM gives context thresholds quoted in §I.
func ReferenceDPPM() []DPPMEntry {
	return []DPPMEntry{
		{"automotive (safety-critical) [15]", "required", 10},
		{"cloud / HPC (tolerable)", "few hundreds", 300},
	}
}

// FprintFig1 renders the DPPM chart as rows plus an ASCII bar chart.
func FprintFig1(w io.Writer) {
	fmt.Fprintln(w, "Fig. 1 — Reported CPU defective parts per million (DPPM) by hyperscalers")
	entries := Fig1DPPM()
	for _, e := range entries {
		bar := ""
		for i := 0.0; i < e.DPPM; i += 25 {
			bar += "#"
		}
		fmt.Fprintf(w, "  %-14s %6.0f DPPM  %s\n", e.Source, e.DPPM, bar)
	}
	fmt.Fprintln(w, "  reference thresholds:")
	for _, e := range ReferenceDPPM() {
		fmt.Fprintf(w, "  %-34s %6.0f DPPM\n", e.Source, e.DPPM)
	}
}
