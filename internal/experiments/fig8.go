package experiments

import (
	"fmt"
	"io"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
	"harpocrates/internal/mutate"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// Fig8Result quantifies the paper's Fig. 8 single-step contrast between
// SiliFuzz-style raw-byte mutation and Harpocrates' ISA-aware mutation.
type Fig8Result struct {
	// Byte-level mutation of a valid encoded sequence:
	ByteMutants     int
	ByteInvalid     int // fail to decode fully
	ByteInvalidFrac float64
	// ISA-aware ReplaceAll mutation:
	IsaMutants     int
	IsaValid       int // always materialize to valid programs
	ParentAdderOps uint64
	// Distribution of target-unit utilization across mutants (the
	// fitness signal the evaluator feeds back).
	MutantAdderOpsMin uint64
	MutantAdderOpsMax uint64
}

// Fig8Scenario mirrors the example: a short valid sequence is mutated
// (a) as raw bytes, where most mutants become unusable, and (b) through
// the ISA-aware mutation engine, where every mutant is valid and the
// hardware feedback (operations executed on the target unit — the
// paper's "ALU #0") differentiates them.
func Fig8Scenario(pp Params) *Fig8Result {
	rng := stats.Derive(pp.Seed, 8)
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 64
	parent := gen.NewRandom(&cfg, rng)
	p := gen.Materialize(parent, &cfg)

	r := &Fig8Result{}

	// (a) Raw-byte mutation, SiliFuzz style.
	encoded := p.Encode()
	n := 3000
	r.ByteMutants = n
	for i := 0; i < n; i++ {
		buf := append([]byte(nil), encoded...)
		for k := 0; k < 1+rng.IntN(4); k++ {
			buf[rng.IntN(len(buf))] ^= 1 << rng.IntN(8)
		}
		insts, err := isa.DecodeAll(buf)
		usable := err == nil && len(insts) == len(p.Insts)
		if usable {
			// Decoded, but may still be non-runnable: privileged or
			// nondeterministic instructions, wild memory operands, bad
			// branch targets. Run it on the proxy to find out.
			mp := p.Clone()
			mp.Insts = insts
			if _, _, rerr := mp.GoldenRun(8 * len(insts)); rerr != nil {
				usable = false
			} else if !mp.Deterministic(8 * len(insts)) {
				usable = false
			}
		}
		if !usable {
			r.ByteInvalid++
		}
	}
	r.ByteInvalidFrac = float64(r.ByteInvalid) / float64(n)

	// (b) ISA-aware mutation with hardware feedback.
	ccfg := uarch.DefaultConfig()
	ccfg.TrackIBR = true
	adderOps := func(g *gen.Genotype) uint64 {
		pp := gen.Materialize(g, &cfg)
		res := uarch.Run(pp.Insts, pp.NewState(), ccfg)
		if !res.Clean() {
			return 0
		}
		return res.UnitUses[coverage.IntAdder]
	}
	r.ParentAdderOps = adderOps(parent)
	m := 32
	r.IsaMutants = m
	for i := 0; i < m; i++ {
		child := mutate.ReplaceAll(parent, &cfg, rng)
		ops := adderOps(child)
		r.IsaValid++ // materialization guarantees validity
		if i == 0 || ops < r.MutantAdderOpsMin {
			r.MutantAdderOpsMin = ops
		}
		if ops > r.MutantAdderOpsMax {
			r.MutantAdderOpsMax = ops
		}
	}
	return r
}

// FprintFig8 renders the scenario comparison.
func FprintFig8(w io.Writer, r *Fig8Result) {
	fmt.Fprintln(w, "Fig. 8 — Harpocrates vs SiliFuzz, single mutation step")
	fmt.Fprintf(w, "  raw-byte mutation:  %d/%d mutants unusable (%.0f%%; paper: \"more than 2 out of 3\")\n",
		r.ByteInvalid, r.ByteMutants, 100*r.ByteInvalidFrac)
	fmt.Fprintf(w, "  ISA-aware mutation: %d/%d mutants valid (100%% by construction)\n",
		r.IsaValid, r.IsaMutants)
	fmt.Fprintf(w, "  hardware feedback:  parent executes %d adder ops; mutants span [%d, %d]\n",
		r.ParentAdderOps, r.MutantAdderOpsMin, r.MutantAdderOpsMax)
	fmt.Fprintln(w, "  -> the evaluator advances the mutant maximizing target-unit operations")
}
