// Adaptive-vs-static schedule ablation: does the bandit-scheduled
// operator portfolio plus the multi-structure Pareto archive buy more
// detected faults per evaluation than the paper's fixed ReplaceAll
// schedule at the same budget?
package experiments

import (
	"fmt"
	"io"
	"time"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/uarch"
)

// adaptiveAblationSeed pins the ablation run (and the CI adaptive-smoke
// gate riding the same configuration) to one deterministic trajectory.
const adaptiveAblationSeed = 3

// AdaptiveAblation evolves an IntAdder-targeted program twice at one
// fixed evaluation budget — once with the static schedule, once with
// -adaptive -pareto semantics — and grades each winner with the same
// fixed SFI campaign. The returned rows carry detected faults,
// evaluated programs and detection-per-thousand-evaluations; the
// adaptive row also carries its detected ratio over static.
func AdaptiveAblation(pp Params) ([]BenchResult, error) {
	base := func() core.Options {
		o := core.PresetFor(coverage.IntAdder, pp.Scale)
		o.Iterations = 6
		o.Seed = adaptiveAblationSeed
		o.Obs = pp.Obs
		return o
	}
	grade := func(p core.Options, adaptive bool) (detected, evaluated int, wall time.Duration, err error) {
		t0 := time.Now()
		res, err := core.Run(p)
		if err != nil {
			return 0, 0, 0, err
		}
		wall = time.Since(t0)
		best := res.Best
		if adaptive {
			// Mirror the CLI: the front member strongest on the target
			// objective faces the campaign.
			for _, ind := range res.Front {
				if ind.Snapshot.Value(coverage.IntAdder) > best.Snapshot.Value(coverage.IntAdder) {
					best = ind
				}
			}
		}
		prog := gen.Materialize(best.G, &p.Gen)
		c := &inject.Campaign{
			Prog:   prog.Insts,
			Init:   prog.InitFunc(),
			Target: coverage.IntAdder,
			Type:   inject.DefaultFaultType(coverage.IntAdder),
			N:      120,
			Seed:   adaptiveAblationSeed,
			Cfg:    uarch.DefaultConfig(),
			Obs:    pp.Obs,
		}
		stats, err := c.Run()
		if err != nil {
			return 0, 0, 0, err
		}
		return stats.Detected(), res.History.EvaluatedPrograms, wall, nil
	}

	static := base()
	sDet, sEval, sWall, err := grade(static, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: static schedule: %w", err)
	}
	adaptive := base()
	adaptive.Adaptive = true
	adaptive.Pareto = true
	aDet, aEval, aWall, err := grade(adaptive, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: adaptive schedule: %w", err)
	}

	perK := func(det, eval int) float64 {
		if eval == 0 {
			return 0
		}
		return float64(det) * 1000 / float64(eval)
	}
	rows := []BenchResult{
		{
			Name: "ga.schedule.static", Iterations: 1,
			NsPerOp:  float64(sWall.Nanoseconds()),
			Detected: sDet, EvaluatedPrograms: sEval,
			DetectionPerKEval: perK(sDet, sEval),
		},
		{
			Name: "ga.schedule.adaptive", Iterations: 1,
			NsPerOp:  float64(aWall.Nanoseconds()),
			Detected: aDet, EvaluatedPrograms: aEval,
			DetectionPerKEval: perK(aDet, aEval),
		},
	}
	if sDet > 0 {
		rows[1].DetectionVsStatic = float64(aDet) / float64(sDet)
	}
	return rows, nil
}

// FprintAdaptiveAblation renders the ablation rows.
func FprintAdaptiveAblation(w io.Writer, rows []BenchResult) {
	fmt.Fprintln(w, "Adaptive-vs-static schedule (IntAdder, equal evaluation budget)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s detected %3d/120  evaluated %4d  det/keval %6.1f",
			r.Name, r.Detected, r.EvaluatedPrograms, r.DetectionPerKEval)
		if r.DetectionVsStatic > 0 {
			fmt.Fprintf(w, "  vs-static %.3fx", r.DetectionVsStatic)
		}
		fmt.Fprintln(w)
	}
}
