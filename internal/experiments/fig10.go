package experiments

import (
	"fmt"
	"io"
	"sync"

	"harpocrates/internal/core"
	"harpocrates/internal/corpus"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/uarch"
)

// ConvergencePoint is one sampled iteration of a Harpocrates run:
// coverage of the best survivor and (at checkpoints) its SFI-measured
// detection capability.
type ConvergencePoint struct {
	Iteration int
	Coverage  float64
	Detection float64 // -1 when not sampled at this iteration
}

// Convergence is a Fig. 10 panel for one structure.
type Convergence struct {
	Structure coverage.Structure
	Points    []ConvergencePoint
	// FinalCoverage / FinalDetection are the converged values.
	FinalCoverage  float64
	FinalDetection float64
	Iterations     int
	Result         *core.Result
	GenCfg         gen.Config
}

// Fig10 results are cached per structure so Fig. 11 and §VI-C reuse the
// same optimization runs.
var (
	fig10Mu    sync.Mutex
	fig10Cache = map[coverage.Structure]*Convergence{}
)

// Fig10 runs the Harpocrates loop for one structure and samples coverage
// every iteration plus detection at ~8 checkpoints — the paper's
// "coverage and detection measured across Harpocrates optimization".
func Fig10(st coverage.Structure, pp Params) (*Convergence, error) {
	fig10Mu.Lock()
	if c, ok := fig10Cache[st]; ok {
		fig10Mu.Unlock()
		return c, nil
	}
	fig10Mu.Unlock()
	c, err := fig10(st, pp)
	if err == nil {
		fig10Mu.Lock()
		fig10Cache[st] = c
		fig10Mu.Unlock()
	}
	return c, err
}

func fig10(st coverage.Structure, pp Params) (*Convergence, error) {
	o := core.PresetFor(st, pp.Scale)
	o.Seed = pp.Seed
	o.Obs = pp.Obs

	nCheck := 8
	every := o.Iterations / nCheck
	if every < 1 {
		every = 1
	}
	type checkpoint struct {
		it int
		g  *gen.Genotype
	}
	var checks []checkpoint
	o.OnIteration = func(it int, best *core.Individual) {
		if it%every == 0 || it == o.Iterations-1 {
			checks = append(checks, checkpoint{it, best.G.Clone()})
		}
	}
	res, err := core.Run(o)
	if err != nil {
		return nil, err
	}

	conv := &Convergence{Structure: st, Iterations: res.Iterations, Result: res, GenCfg: o.Gen}
	det := make(map[int]float64)
	detStats := make(map[int]*inject.Stats)
	for _, c := range checks {
		p := gen.Materialize(c.g, &o.Gen)
		camp := &inject.Campaign{
			Prog:   p.Insts,
			Init:   p.InitFunc(),
			Target: st,
			Type:   inject.DefaultFaultType(st),
			N:      pp.Injections(st),
			Seed:   pp.Seed,
			Cfg:    uarch.DefaultConfig(),
			Obs:    pp.Obs,
		}
		s, err := camp.Run()
		if err != nil {
			return nil, fmt.Errorf("fig10 %v checkpoint %d: %w", st, c.it, err)
		}
		det[c.it] = s.Detection()
		detStats[c.it] = s
	}
	for it, cov := range res.History.Best {
		p := ConvergencePoint{Iteration: it, Coverage: cov, Detection: -1}
		if d, ok := det[it]; ok {
			p.Detection = d
		}
		conv.Points = append(conv.Points, p)
	}
	conv.FinalCoverage = res.Best.Fitness
	if len(checks) > 0 {
		conv.FinalDetection = det[checks[len(checks)-1].it]
	}

	// Feed the persistent corpus: the evolved best program (with its
	// genotype, so it can seed later runs) plus the final checkpoint's
	// detection measurement when it belongs to the same genotype.
	if pp.Corpus != nil {
		add, err := pp.Corpus.Add(gen.Materialize(res.Best.G, &o.Gen), res.Best.G, corpus.Meta{
			Structure: st.String(),
			Fitness:   res.Best.Fitness,
			Iteration: res.Iterations - 1,
		})
		if err != nil {
			return nil, fmt.Errorf("fig10 %v: archive: %w", st, err)
		}
		if last := checks[len(checks)-1]; len(checks) > 0 && add.Added && last.g.Hash() == res.Best.G.Hash() {
			s := detStats[last.it]
			if err := pp.Corpus.SetDetection(add.Hash, inject.DefaultFaultType(st).String(),
				s.N, pp.Seed, s.Detection(), s.DetectedSet()); err != nil {
				return nil, fmt.Errorf("fig10 %v: archive detection: %w", st, err)
			}
		}
	}
	return conv, nil
}

// FprintConvergence renders a Fig. 10 panel as a text series.
func FprintConvergence(w io.Writer, c *Convergence) {
	fmt.Fprintf(w, "Fig. 10 — %v: coverage (and detection at checkpoints) across optimization\n", c.Structure)
	for _, p := range c.Points {
		bar := ""
		for i := 0.0; i < p.Coverage*50; i++ {
			bar += "*"
		}
		if p.Detection >= 0 {
			fmt.Fprintf(w, "  it %4d  cov %6.2f%%  det %6.2f%%  %s\n",
				p.Iteration, 100*p.Coverage, 100*p.Detection, bar)
		} else {
			fmt.Fprintf(w, "  it %4d  cov %6.2f%%              %s\n", p.Iteration, 100*p.Coverage, bar)
		}
	}
	fmt.Fprintf(w, "  converged after %d iterations: coverage %.2f%%, detection %.2f%%\n",
		c.Iterations, 100*c.FinalCoverage, 100*c.FinalDetection)
}
