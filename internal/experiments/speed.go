package experiments

import (
	"fmt"
	"io"

	"harpocrates/internal/coverage"
)

// SpeedSide is one contender of the §VI-C detection-speed comparison.
type SpeedSide struct {
	Program   string
	Detection float64
	Cycles    uint64
}

// SpeedResult compares the best general-purpose benchmark against the
// Harpocrates-generated program on the integer adder: the paper's point
// is that comparable detection is reached in orders of magnitude fewer
// cycles (~50K vs >11M, ~220x).
type SpeedResult struct {
	BestBaseline SpeedSide
	Harpocrates  SpeedSide
	SpeedupX     float64
}

// DetectionSpeed runs the comparison for the integer adder.
func DetectionSpeed(pp Params) (*SpeedResult, error) {
	r := &SpeedResult{}

	// Best baseline for the adder (by detection, across MiBench).
	suites := BaselinePrograms()
	for _, p := range suites[FwMiBench] {
		m, err := Measure(p, coverage.IntAdder, pp)
		if err != nil {
			return nil, err
		}
		better := m.Detection > r.BestBaseline.Detection ||
			(m.Detection == r.BestBaseline.Detection && r.BestBaseline.Cycles > 0 && m.Cycles < r.BestBaseline.Cycles)
		if r.BestBaseline.Program == "" || better {
			r.BestBaseline = SpeedSide{Program: m.Program, Detection: m.Detection, Cycles: m.Cycles}
		}
	}

	harpo, err := HarpocratesPrograms(pp)
	if err != nil {
		return nil, err
	}
	m, err := Measure(harpo[coverage.IntAdder], coverage.IntAdder, pp)
	if err != nil {
		return nil, err
	}
	r.Harpocrates = SpeedSide{Program: m.Program, Detection: m.Detection, Cycles: m.Cycles}
	if r.Harpocrates.Cycles > 0 {
		r.SpeedupX = float64(r.BestBaseline.Cycles) / float64(r.Harpocrates.Cycles)
	}
	return r, nil
}

// FprintSpeed renders the comparison.
func FprintSpeed(w io.Writer, r *SpeedResult) {
	fmt.Fprintln(w, "§VI-C — Detection speed on the integer adder")
	fmt.Fprintf(w, "  best baseline: %-24s detection %5.1f%% in %d cycles\n",
		r.BestBaseline.Program, 100*r.BestBaseline.Detection, r.BestBaseline.Cycles)
	fmt.Fprintf(w, "  Harpocrates:   %-24s detection %5.1f%% in %d cycles\n",
		r.Harpocrates.Program, 100*r.Harpocrates.Detection, r.Harpocrates.Cycles)
	fmt.Fprintf(w, "  Harpocrates reaches comparable detection %.0fx faster (paper: ~220x)\n", r.SpeedupX)
}
