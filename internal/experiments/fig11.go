package experiments

import (
	"fmt"
	"io"
	"sync"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/prog"
)

// AllStructures lists the six evaluation targets in paper order.
func AllStructures() []coverage.Structure {
	return []coverage.Structure{
		coverage.IRF, coverage.L1D,
		coverage.IntAdder, coverage.IntMul,
		coverage.FPAdd, coverage.FPMul,
	}
}

var (
	harpoOnce sync.Once
	harpoErr  error
	harpoSet  map[coverage.Structure]*prog.Program
)

// HarpocratesPrograms evolves (and caches) one final Harpocrates test
// program per structure at the current scale, reusing the Fig. 10
// optimization runs.
func HarpocratesPrograms(pp Params) (map[coverage.Structure]*prog.Program, error) {
	harpoOnce.Do(func() {
		harpoSet = map[coverage.Structure]*prog.Program{}
		for _, st := range AllStructures() {
			c, err := Fig10(st, pp)
			if err != nil {
				harpoErr = err
				return
			}
			p := gen.Materialize(c.Result.Best.G, &c.GenCfg)
			p.Name = fmt.Sprintf("harpocrates/%v", st)
			harpoSet[st] = p
		}
	})
	return harpoSet, harpoErr
}

// Fig11 reproduces the paper's headline comparison: maximum and average
// detection capability of every framework for all six structures.
func Fig11(pp Params) ([]Summary, []Measurement, error) {
	ms, err := BaselineFigure(AllStructures(), pp)
	if err != nil {
		return nil, nil, err
	}
	harpo, err := HarpocratesPrograms(pp)
	if err != nil {
		return nil, nil, err
	}
	for _, st := range AllStructures() {
		m, err := Measure(harpo[st], st, pp)
		if err != nil {
			return nil, nil, err
		}
		m.Framework = FwHarpocrates
		ms = append(ms, m)
	}
	return Summarize(ms), ms, nil
}

// FprintFig11 renders the Fig. 11 bar data.
func FprintFig11(w io.Writer, ss []Summary) {
	fmt.Fprintln(w, "Fig. 11 — Maximum and average detection per method and structure")
	FprintSummaries(w, "", ss)
}
