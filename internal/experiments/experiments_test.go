package experiments

import (
	"bytes"
	"strings"
	"testing"

	"harpocrates/internal/baselines/mibench"
	"harpocrates/internal/corpus"
	"harpocrates/internal/coverage"
)

func tinyParams() Params {
	return Params{
		Scale:       1,
		InjBitArray: 16,
		InjAdder:    12,
		InjMul:      6,
		InjFP:       8,
		Seed:        1,
	}
}

func TestFig1Data(t *testing.T) {
	entries := Fig1DPPM()
	if len(entries) != 3 {
		t.Fatal("Fig. 1 must list the three hyperscaler disclosures")
	}
	if entries[2].DPPM != 361 {
		t.Fatalf("Alibaba DPPM = %v, want 361", entries[2].DPPM)
	}
	var buf bytes.Buffer
	FprintFig1(&buf)
	if !strings.Contains(buf.String(), "DPPM") {
		t.Fatal("Fig. 1 rendering empty")
	}
}

func TestMeasureBitArrayAndFU(t *testing.T) {
	pp := tinyParams()
	p := mibench.Basicmath(1)
	for _, st := range []coverage.Structure{coverage.IRF, coverage.IntAdder, coverage.IntMul} {
		m, err := Measure(p, st, pp)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if m.Coverage < 0 || m.Coverage > 1 || m.Detection < 0 || m.Detection > 1 {
			t.Fatalf("%v: out-of-range measurement %+v", st, m)
		}
		if m.Cycles == 0 {
			t.Fatalf("%v: no cycles", st)
		}
	}
	// Basicmath is multiply-heavy: it must detect some multiplier faults.
	m, err := Measure(p, coverage.IntMul, pp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Detection == 0 {
		t.Fatal("multiply-heavy kernel detected no multiplier faults")
	}
}

func TestMeasureMemoized(t *testing.T) {
	pp := tinyParams()
	p := mibench.Bitcount(1)
	m1, err := Measure(p, coverage.IRF, pp)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Measure(p, coverage.IRF, pp)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("memoized measurement differs")
	}
}

func TestFig8Scenario(t *testing.T) {
	r := Fig8Scenario(tinyParams())
	if r.ByteInvalidFrac < 0.3 {
		t.Fatalf("byte mutation invalid fraction %.2f implausibly low", r.ByteInvalidFrac)
	}
	if r.IsaValid != r.IsaMutants {
		t.Fatal("ISA-aware mutation produced invalid mutants")
	}
	if r.MutantAdderOpsMax == r.MutantAdderOpsMin {
		t.Fatal("mutation produced no fitness diversity")
	}
	var buf bytes.Buffer
	FprintFig8(&buf, r)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestTable1Breakdown(t *testing.T) {
	s, err := Table1(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Evaluation <= 0 || s.Generation <= 0 || s.Mutation <= 0 || s.Compilation <= 0 {
		t.Fatalf("missing phases: %+v", s)
	}
	if s.InstrsPerSecond() <= 0 {
		t.Fatal("no throughput")
	}
	var buf bytes.Buffer
	FprintTable1(&buf, s)
	if !strings.Contains(buf.String(), "Evaluation") {
		t.Fatal("bad rendering")
	}
}

func TestSummarize(t *testing.T) {
	ms := []Measurement{
		{Framework: "A", Structure: coverage.IRF, Detection: 0.2, Coverage: 0.3},
		{Framework: "A", Structure: coverage.IRF, Detection: 0.6, Coverage: 0.1},
		{Framework: "B", Structure: coverage.IRF, Detection: 0.4, Coverage: 0.4},
	}
	ss := Summarize(ms)
	if len(ss) != 2 {
		t.Fatalf("summaries = %d, want 2", len(ss))
	}
	for _, s := range ss {
		if s.Framework == "A" {
			if s.MaxDet != 0.6 || s.AvgDet != 0.4 || s.Programs != 2 {
				t.Fatalf("bad A summary: %+v", s)
			}
		}
	}
}

func TestFig10SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pp := tinyParams()
	// Attach a corpus store: the harness must archive the evolved best
	// program with its genotype and detection measurement.
	store, err := corpus.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pp.Corpus = store
	// Override the preset with a very small run via scale 1; the preset
	// for IntAdder is already the cheapest.
	c, err := Fig10(coverage.IntAdder, pp)
	if err != nil {
		t.Fatal(err)
	}
	archived := store.ListStructure(coverage.IntAdder.String())
	if len(archived) != 1 {
		t.Fatalf("corpus holds %d IntAdder entries, want 1", len(archived))
	}
	if m := archived[0]; !m.Genotype || m.Fitness != c.FinalCoverage || !m.Ranked() {
		t.Fatalf("archived entry incomplete: %+v", m)
	}
	if len(c.Points) == 0 {
		t.Fatal("no convergence points")
	}
	first, last := c.Points[0].Coverage, c.Points[len(c.Points)-1].Coverage
	if last < first {
		t.Fatalf("coverage regressed: %f -> %f", first, last)
	}
	sampledDet := 0
	for _, p := range c.Points {
		if p.Detection >= 0 {
			sampledDet++
		}
	}
	if sampledDet < 2 {
		t.Fatal("too few detection checkpoints")
	}
	var buf bytes.Buffer
	FprintConvergence(&buf, c)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestScaleEnv(t *testing.T) {
	t.Setenv("HARPO_SCALE", "3")
	if Scale() != 3 {
		t.Fatal("HARPO_SCALE not honoured")
	}
	t.Setenv("HARPO_SCALE", "bogus")
	if Scale() != 1 {
		t.Fatal("bad HARPO_SCALE must default to 1")
	}
}

func TestInterplayOrdering(t *testing.T) {
	pp := tinyParams()
	r, err := Interplay(coverage.IRF, pp)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Whole-run stuck-at faults must detect at least as well as
	// single-cycle transients (Fig. 2 containment), modulo CI noise.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.Detection+0.10 < first.Detection {
		t.Fatalf("stuck-at detection %.2f below transient %.2f", last.Detection, first.Detection)
	}
	if _, err := Interplay(coverage.IntAdder, pp); err == nil {
		t.Fatal("interplay accepted a functional unit")
	}
}
