// Package experiments contains one harness per table and figure of the
// paper's evaluation (§III-C and §VI). Each harness returns structured
// results and can print the rows/series the paper reports. DESIGN.md §3
// maps every experiment to its harness; EXPERIMENTS.md records
// paper-versus-measured outcomes.
//
// All harnesses scale with the HARPO_SCALE environment variable
// (default 1 = CI scale, minutes of CPU; larger values approach the
// paper's full parameters).
package experiments

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"harpocrates/internal/baselines/dcdiag"
	"harpocrates/internal/baselines/mibench"
	"harpocrates/internal/baselines/silifuzz"
	"harpocrates/internal/corpus"
	"harpocrates/internal/coverage"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/uarch"
)

// Scale reads the HARPO_SCALE experiment scale factor (>= 1).
func Scale() int {
	if v, err := strconv.Atoi(os.Getenv("HARPO_SCALE")); err == nil && v >= 1 {
		return v
	}
	return 1
}

// Params bundles the knobs shared by the harnesses.
type Params struct {
	Scale int
	// Injections per SFI campaign by target class; the integer
	// multiplier is the most expensive netlist, so it gets fewer at CI
	// scale.
	InjBitArray int
	InjAdder    int
	InjMul      int
	InjFP       int
	Seed        uint64

	// Obs, if set, is threaded into every refinement loop and SFI
	// campaign a harness runs (purely observational; nil disables).
	Obs *obs.Observer

	// Corpus, if set, archives the programs the harnesses evolve: Fig10
	// adds each structure's final best program (with genotype and
	// detection metadata) to the persistent store, so experiment runs
	// feed the same corpus the CLI workflow uses.
	Corpus *corpus.Store
}

// DefaultParams derives campaign sizes from the scale factor.
func DefaultParams() Params {
	s := Scale()
	capped := func(v, cap int) int {
		if v > cap {
			return cap
		}
		return v
	}
	return Params{
		Scale:       s,
		InjBitArray: capped(96*s, 960),
		InjAdder:    capped(32*s, 600),
		InjMul:      capped(12*s, 300),
		InjFP:       capped(24*s, 400),
		Seed:        20240704,
	}
}

// Injections returns the campaign size for a structure.
func (p Params) Injections(st coverage.Structure) int {
	switch st {
	case coverage.IRF, coverage.L1D, coverage.FPRF:
		return p.InjBitArray
	case coverage.IntAdder:
		return p.InjAdder
	case coverage.IntMul:
		return p.InjMul
	default:
		return p.InjFP
	}
}

// Framework names, in the paper's presentation order.
const (
	FwMiBench     = "MiBench"
	FwSiliFuzz    = "SiliFuzz"
	FwOpenDCDiag  = "OpenDCDiag"
	FwHarpocrates = "Harpocrates"
)

var (
	baselineOnce sync.Once
	baselineSet  map[string][]*prog.Program
)

// BaselinePrograms returns the three baseline suites at the current
// scale (SiliFuzz runs a fuzzing session on first use; results are
// cached for the process).
func BaselinePrograms() map[string][]*prog.Program {
	baselineOnce.Do(func() {
		s := Scale()
		sf := silifuzz.Run(silifuzz.Options{
			Seed:          7,
			Rounds:        8000 * s,
			MaxInputBytes: 100,
			TargetInstrs:  1250 * s,
			NumTests:      8,
			SnapshotSteps: 512,
		})
		baselineSet = map[string][]*prog.Program{
			FwMiBench:    mibench.Programs(s),
			FwSiliFuzz:   sf.Tests,
			FwOpenDCDiag: dcdiag.Programs(s),
		}
	})
	return baselineSet
}

// Measurement is one (program, structure) evaluation: the hardware
// coverage metric and the SFI-measured detection capability.
type Measurement struct {
	Framework string
	Program   string
	Structure coverage.Structure
	Coverage  float64
	Detection float64
	DetLo     float64
	DetHi     float64
	Cycles    uint64
	Uses      uint64 // operations on the target FU (0 for bit arrays)
}

// Measurements are memoized so overlapping harnesses (Fig. 4/5/6 and
// Fig. 11) never repeat a campaign within a process.
var (
	measMu    sync.Mutex
	measCache = map[string]Measurement{}
)

// Measure evaluates one program against one structure: a tracked run for
// the coverage metric and an SFI campaign for detection (§II-C/§II-E).
func Measure(p *prog.Program, st coverage.Structure, pp Params) (Measurement, error) {
	key := fmt.Sprintf("%s|%d|%d|%d", p.Name, st, pp.Injections(st), pp.Seed)
	measMu.Lock()
	if m, ok := measCache[key]; ok {
		measMu.Unlock()
		return m, nil
	}
	measMu.Unlock()
	m, err := measure(p, st, pp)
	if err == nil {
		measMu.Lock()
		measCache[key] = m
		measMu.Unlock()
	}
	return m, err
}

func measure(p *prog.Program, st coverage.Structure, pp Params) (Measurement, error) {
	m := Measurement{Program: p.Name, Structure: st}

	cfg := uarch.DefaultConfig()
	switch st {
	case coverage.IRF:
		cfg.TrackIRF = true
	case coverage.L1D:
		cfg.TrackL1D = true
	case coverage.FPRF:
		cfg.TrackFPRF = true
	default:
		cfg.TrackIBR = true
	}
	r := uarch.Run(p.Insts, p.NewState(), cfg)
	if !r.Clean() {
		return m, fmt.Errorf("experiments: %s failed: crash=%v timeout=%v", p.Name, r.Crash, r.TimedOut)
	}
	m.Coverage = r.Value(st)
	m.Cycles = r.Cycles
	m.Uses = r.UnitUses[st]

	c := &inject.Campaign{
		Prog:   p.Insts,
		Init:   p.InitFunc(),
		Target: st,
		Type:   inject.DefaultFaultType(st),
		N:      pp.Injections(st),
		Seed:   pp.Seed,
		Cfg:    uarch.DefaultConfig(),
		Obs:    pp.Obs,
	}
	stt, err := c.Run()
	if err != nil {
		return m, err
	}
	m.Detection = stt.Detection()
	m.DetLo, m.DetHi = stt.CI()
	return m, nil
}

// FprintMeasurements renders a measurement table.
func FprintMeasurements(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %-24s %-10s %9s %9s %14s %10s\n",
		"framework", "program", "structure", "coverage", "detect", "95%CI", "cycles")
	for _, m := range ms {
		fmt.Fprintf(w, "%-12s %-24s %-10s %8.1f%% %8.1f%% [%4.1f,%5.1f]%% %10d\n",
			m.Framework, m.Program, m.Structure,
			100*m.Coverage, 100*m.Detection, 100*m.DetLo, 100*m.DetHi, m.Cycles)
	}
}
