package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/isa"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// BenchResult is one machine-readable microbenchmark measurement, the
// row format of cmd/bench -json (and the checked-in BENCH_5.json).
type BenchResult struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// SpeedupVsNaive is set on event-driven ("skip") variants: the ns/op
	// ratio against the naive cycle-by-cycle loop of the same workload.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
	// SpeedupVsOff is set on the delta-termination ablation's "on" row:
	// the ns/op ratio against the same campaign with NoDeltaTermination
	// set (every faulty run simulated to completion).
	SpeedupVsOff float64 `json:"speedup_vs_off,omitempty"`
	// Detected, EvaluatedPrograms and DetectionPerKEval are set on the
	// adaptive-vs-static schedule ablation rows: faults detected by the
	// evolved program under one fixed SFI campaign, programs evaluated
	// to evolve it, and detected faults per thousand evaluations.
	Detected          int     `json:"detected,omitempty"`
	EvaluatedPrograms int     `json:"evaluated,omitempty"`
	DetectionPerKEval float64 `json:"detection_per_keval,omitempty"`
	// DetectionVsStatic is set on the adaptive row: its detected count
	// over the static schedule's at the same evaluation budget.
	DetectionVsStatic float64 `json:"detection_vs_static,omitempty"`
}

// timeOp measures op's wall clock: one calibration run sizes the
// iteration count to a ~300 ms budget, then the timed loop reports the
// mean. Coarse by design — the point is the naive-vs-skip ratio, which
// is far larger than scheduler noise on the workloads measured here.
func timeOp(name string, op func() error) (BenchResult, error) {
	t0 := time.Now()
	if err := op(); err != nil {
		return BenchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	once := time.Since(t0)
	iters := 1
	if once > 0 {
		iters = int(300 * time.Millisecond / once)
	}
	iters = min(max(iters, 3), 2000)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return BenchResult{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	total := time.Since(t0)
	return BenchResult{
		Name:       name,
		Iterations: iters,
		NsPerOp:    float64(total.Nanoseconds()) / float64(iters),
	}, nil
}

const (
	mbDataBase  = 0x10000
	mbDataSize  = 32 * 1024
	mbStackBase = 0x60000
	mbStackSize = 8 * 1024
)

// missChainProgram builds the stall-dominated workload the event-driven
// loop targets: n copies of add rax, [rsi+disp], every one dependent on
// the previous through RAX and striding whole cache lines, so execution
// serializes into a chain of load-use latencies.
func missChainProgram(n int) ([]isa.Inst, error) {
	var id isa.VariantID
	for _, cand := range isa.ByOp(isa.OpADD) {
		v := isa.Lookup(cand)
		if v.Width == isa.W64 && len(v.Ops) == 2 &&
			v.Ops[0].Kind == isa.KReg && v.Ops[1].Kind == isa.KMem {
			id = cand
			break
		}
	}
	if id == 0 {
		return nil, fmt.Errorf("experiments: no add r64, m64 variant")
	}
	prog := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		disp := int32((i * 64 * 7) % (mbDataSize - 64))
		disp &^= 15
		in := isa.Inst{V: id, NOps: 2}
		in.Ops[0] = isa.RegOp(isa.RAX)
		in.Ops[1] = isa.MemOp(isa.RSI, disp)
		prog = append(prog, in)
	}
	return prog, nil
}

// missChainState builds a deterministic initial state for the miss
// chain (fresh memory each call; the simulator mutates it).
func missChainState(seed uint64) (*arch.State, error) {
	rng := stats.Derive(seed, 77)
	data := make([]byte, mbDataSize)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	mem := arch.NewMemory()
	if err := mem.AddRegion(&arch.Region{Name: "data", Base: mbDataBase, Data: data, Writable: true}); err != nil {
		return nil, err
	}
	if err := mem.AddRegion(&arch.Region{Name: "stack", Base: mbStackBase, Data: make([]byte, mbStackSize), Writable: true}); err != nil {
		return nil, err
	}
	s := arch.NewState(mem)
	s.GPR[isa.RSP] = mbStackBase + mbStackSize/2
	s.GPR[isa.RSI] = mbDataBase
	s.GPR[isa.RDI] = mbDataBase + mbDataSize/2
	return s, nil
}

// missChainConfig shrinks the L1D to 1 KB (L2 off) so the 32 KB data
// footprint thrashes it and nearly every chain link pays MissLatency.
func missChainConfig() uarch.Config {
	cfg := uarch.DefaultConfig()
	cfg.L1D.SizeBytes = 1024
	cfg.L1D.Ways = 2
	cfg.L2 = uarch.CacheConfig{}
	cfg.EnablePrefetch = false
	return cfg
}

// benchPair times one workload under the naive reference loop and the
// event-driven skipping loop and annotates the skip row with the
// speedup.
func benchPair(name string, run func(noSkip bool) error) ([]BenchResult, error) {
	naive, err := timeOp(name+".naive", func() error { return run(true) })
	if err != nil {
		return nil, err
	}
	skip, err := timeOp(name+".skip", func() error { return run(false) })
	if err != nil {
		return nil, err
	}
	if skip.NsPerOp > 0 {
		skip.SpeedupVsNaive = naive.NsPerOp / skip.NsPerOp
	}
	return []BenchResult{naive, skip}, nil
}

// Microbench measures the run-loop and campaign optimizations on four
// workload classes:
//
//   - core.run.miss-chain: a serialized load-miss chain, almost all
//     stall cycles — the case cycle skipping collapses;
//   - core.run.dense: a generated random program with high ILP, almost
//     no idle cycles — the no-regression guard;
//   - sfi.campaign.irf-transient: a whole SFI campaign, where faulty
//     runs ride the sparse event schedule;
//   - sfi.campaign.delta: the delta-resimulation ablation — the same
//     campaign with reconvergence-based early termination off vs on;
//   - sfi.rank.multi-structure: the golden-artifact-reuse ablation —
//     one program ranked against six structures with the golden cache
//     off (six instrumented golden runs) vs on (one, shared).
//
// Each *.skip row carries its speedup over the matching *.naive row;
// each ablation *.on row carries its speedup over its *.off row.
func Microbench(pp Params) ([]BenchResult, error) {
	var out []BenchResult

	chain, err := missChainProgram(500)
	if err != nil {
		return nil, err
	}
	chainCfg := missChainConfig()
	rs, err := benchPair("core.run.miss-chain", func(noSkip bool) error {
		cfg := chainCfg
		cfg.NoCycleSkip = noSkip
		st, err := missChainState(pp.Seed)
		if err != nil {
			return err
		}
		if r := uarch.Run(chain, st, cfg); !r.Clean() {
			return fmt.Errorf("miss chain run not clean: %v %v", r.Crash, r.TimedOut)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, rs...)

	gcfg := gen.DefaultConfig()
	gcfg.NumInstrs = 500 * pp.Scale
	dense := gen.Materialize(gen.NewRandom(&gcfg, stats.Derive(pp.Seed, 5)), &gcfg)
	rs, err = benchPair("core.run.dense", func(noSkip bool) error {
		cfg := uarch.DefaultConfig()
		cfg.NoCycleSkip = noSkip
		uarch.Run(dense.Insts, dense.NewState(), cfg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, rs...)

	camp := gen.Materialize(gen.NewRandom(&gcfg, stats.Derive(pp.Seed, 6)), &gcfg)
	rs, err = benchPair("sfi.campaign.irf-transient", func(noSkip bool) error {
		cfg := uarch.DefaultConfig()
		cfg.NoCycleSkip = noSkip
		c := &inject.Campaign{
			Prog: camp.Insts, Init: camp.InitFunc(),
			Target: coverage.IRF, Type: inject.Transient,
			N: min(pp.InjBitArray, 96), Seed: pp.Seed, Cfg: cfg,
			Obs: pp.Obs,
		}
		_, err := c.Run()
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, rs...)

	rs, err = benchDeltaPair(pp)
	if err != nil {
		return nil, err
	}
	out = append(out, rs...)

	rs, err = benchGoldenReusePair(pp)
	if err != nil {
		return nil, err
	}
	out = append(out, rs...)
	return out, nil
}

// benchDeltaPair measures the delta-resimulation ablation: one SFI
// campaign with NoDeltaTermination (every faulty run simulated to
// completion) against the identical campaign with reconvergence-based
// early termination — both on the event-driven loop, so the ratio
// isolates delta termination itself. An untimed pass first proves the
// two produce bit-identical outcome vectors (the soundness claim the
// speedup rides on); the timed "on" row then carries the ratio. The
// workload is longer and denser in injections than the other campaign
// rows: delta's win is the simulated tail after a masked fault's last
// architectural trace, which grows with golden-run length, and it only
// shows once enough injections survive ACE pre-classification for
// faulty-run simulation to dominate the campaign.
func benchDeltaPair(pp Params) ([]BenchResult, error) {
	gcfg := gen.DefaultConfig()
	gcfg.NumInstrs = 4000 * pp.Scale
	p := gen.Materialize(gen.NewRandom(&gcfg, stats.Derive(pp.Seed, 7)), &gcfg)
	campaign := func(noDelta bool) *inject.Campaign {
		return &inject.Campaign{
			Prog: p.Insts, Init: p.InitFunc(),
			Target: coverage.IRF, Type: inject.Transient,
			N: 256, Seed: pp.Seed,
			Cfg:                uarch.DefaultConfig(),
			NoDeltaTermination: noDelta,
			Obs:                pp.Obs,
		}
	}
	stOff, err := campaign(true).Run()
	if err != nil {
		return nil, err
	}
	stOn, err := campaign(false).Run()
	if err != nil {
		return nil, err
	}
	if !stOff.Equal(stOn) {
		return nil, fmt.Errorf(
			"experiments: delta termination changed campaign statistics: off %+v vs on %+v", stOff, stOn)
	}
	off, err := timeOp("sfi.campaign.delta.off", func() error {
		_, err := campaign(true).Run()
		return err
	})
	if err != nil {
		return nil, err
	}
	on, err := timeOp("sfi.campaign.delta.on", func() error {
		_, err := campaign(false).Run()
		return err
	})
	if err != nil {
		return nil, err
	}
	if on.NsPerOp > 0 {
		on.SpeedupVsOff = off.NsPerOp / on.NsPerOp
	}
	return []BenchResult{off, on}, nil
}

// benchGoldenReusePair measures the golden artifact cache ablation on
// the workload it exists for: one program ranked against six structures
// (the corpus.Rank / multi-structure sweep shape). With the cache off,
// every campaign recomputes the instrumented golden run; with it on,
// the first campaign computes the bundle and the other five reuse it,
// so the ratio isolates golden reuse (fault-injection work is
// identical on both sides). An untimed pass per structure first proves
// cached and uncached campaigns produce bit-identical statistics — the
// soundness claim the speedup rides on. The timed "on" op constructs a
// fresh cache each iteration so it measures one cold compute plus five
// warm hits, not an ever-warm steady state.
func benchGoldenReusePair(pp Params) ([]BenchResult, error) {
	gcfg := gen.DefaultConfig()
	gcfg.NumInstrs = 4000 * pp.Scale
	p := gen.Materialize(gen.NewRandom(&gcfg, stats.Derive(pp.Seed, 8)), &gcfg)
	progHash := stats.Mix64(stats.HashInit, pp.Seed|1)
	// The six per-structure campaigns of one sweep: all plain golden
	// class, so a single bundle serves every one.
	targets := []coverage.Structure{
		coverage.IRF, coverage.FPRF, coverage.L1D,
		coverage.Decoder, coverage.Gshare, coverage.LSQ,
	}
	campaign := func(target coverage.Structure, gc *inject.GoldenCache) *inject.Campaign {
		return &inject.Campaign{
			Prog: p.Insts, Init: p.InitFunc(),
			Target: target, Type: inject.Transient,
			N: 8, Seed: pp.Seed,
			Cfg:           uarch.DefaultConfig(),
			GoldenCache:   gc,
			ProgramHash:   progHash,
			NoGoldenCache: gc == nil,
			Obs:           pp.Obs,
		}
	}
	sweep := func(gc *inject.GoldenCache) ([]*inject.Stats, error) {
		out := make([]*inject.Stats, 0, len(targets))
		for _, target := range targets {
			st, err := campaign(target, gc).Run()
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
		return out, nil
	}

	soundCache, err := inject.NewGoldenCache(0, "")
	if err != nil {
		return nil, err
	}
	stOff, err := sweep(nil)
	if err != nil {
		return nil, err
	}
	stOn, err := sweep(soundCache)
	if err != nil {
		return nil, err
	}
	for i, target := range targets {
		if !stOff[i].Equal(stOn[i]) {
			return nil, fmt.Errorf(
				"experiments: golden reuse changed %v campaign statistics: off %+v vs on %+v",
				target, stOff[i], stOn[i])
		}
	}
	soundCache.Purge()

	off, err := timeOp("sfi.rank.multi-structure.off", func() error {
		_, err := sweep(nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	on, err := timeOp("sfi.rank.multi-structure.on", func() error {
		gc, err := inject.NewGoldenCache(0, "")
		if err != nil {
			return err
		}
		defer func() {
			gc.Purge()
			gc.Close()
		}()
		_, err = sweep(gc)
		return err
	})
	if err != nil {
		return nil, err
	}
	if on.NsPerOp > 0 {
		on.SpeedupVsOff = off.NsPerOp / on.NsPerOp
	}
	return []BenchResult{off, on}, nil
}

// FprintMicrobench renders microbenchmark rows for humans.
func FprintMicrobench(w io.Writer, rs []BenchResult) {
	fmt.Fprintln(w, "Run-loop microbenchmarks (naive cycle-by-cycle vs event-driven skipping)")
	for _, r := range rs {
		line := fmt.Sprintf("  %-36s %12.0f ns/op  (%d iters)", r.Name, r.NsPerOp, r.Iterations)
		if r.SpeedupVsNaive > 0 {
			line += fmt.Sprintf("  %.2fx vs naive", r.SpeedupVsNaive)
		}
		if r.SpeedupVsOff > 0 {
			line += fmt.Sprintf("  %.2fx vs off", r.SpeedupVsOff)
		}
		fmt.Fprintln(w, line)
	}
}

// WriteBenchJSON writes rows in the machine-readable cmd/bench -json
// format: a JSON array of BenchResult, indented for diff-friendliness.
func WriteBenchJSON(w io.Writer, rs []BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}
