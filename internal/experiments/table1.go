package experiments

import (
	"fmt"
	"io"
	"time"

	"harpocrates/internal/core"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
)

// StepBreakdown is Table I: the duration of one
// mutation/generation/compilation/evaluation loop step.
type StepBreakdown struct {
	Mutation    time.Duration
	Generation  time.Duration
	Compilation time.Duration
	Evaluation  time.Duration
	Programs    int // programs per step
	Instrs      int // instructions per program
	Steps       int // steps averaged over
}

// Total returns the single-step total.
func (s StepBreakdown) Total() time.Duration {
	return s.Mutation + s.Generation + s.Compilation + s.Evaluation
}

// InstrsPerSecond returns the generated-and-evaluated instruction rate
// (the §VI-A throughput figure).
func (s StepBreakdown) InstrsPerSecond() float64 {
	t := s.Total().Seconds()
	if t <= 0 {
		return 0
	}
	return float64(s.Programs*s.Instrs) / t
}

// Table1 measures the loop-step breakdown at (scaled) paper parameters:
// 96 programs of 5K instructions per step.
func Table1(pp Params) (StepBreakdown, error) {
	o := core.Options{Structure: coverage.IntAdder, Seed: pp.Seed, Obs: pp.Obs}
	o.Gen = gen.DefaultConfig()
	o.Gen.NumInstrs = minI(5000, 1250*pp.Scale)
	o.PopSize = minI(96, 24*pp.Scale)
	o.TopK = o.PopSize / 6
	o.MutantsPerParent = 6
	o.Iterations = 4
	res, err := core.Run(o)
	if err != nil {
		return StepBreakdown{}, err
	}
	h := res.History
	steps := res.Iterations
	return StepBreakdown{
		Mutation:    h.Times.Mutation / time.Duration(steps),
		Generation:  h.Times.Generation / time.Duration(steps),
		Compilation: h.Times.Compilation / time.Duration(steps),
		Evaluation:  h.Times.Evaluation / time.Duration(steps),
		Programs:    o.PopSize,
		Instrs:      o.Gen.NumInstrs,
		Steps:       steps,
	}, nil
}

// FprintTable1 renders Table I.
func FprintTable1(w io.Writer, s StepBreakdown) {
	fmt.Fprintf(w, "Table I — Harpocrates single loop step duration breakdown (%d programs x %d instructions, avg of %d steps)\n",
		s.Programs, s.Instrs, s.Steps)
	fmt.Fprintf(w, "  %-12s %-12s %-12s %-12s %-12s\n", "Mutation", "Generation", "Compilation", "Evaluation", "Total")
	fmt.Fprintf(w, "  %-12v %-12v %-12v %-12v %-12v\n",
		s.Mutation.Round(time.Microsecond), s.Generation.Round(time.Microsecond),
		s.Compilation.Round(time.Microsecond), s.Evaluation.Round(time.Microsecond),
		s.Total().Round(time.Microsecond))
	fmt.Fprintf(w, "  throughput: %.0f generated-and-evaluated instructions/second\n", s.InstrsPerSecond())
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
