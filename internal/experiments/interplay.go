package experiments

import (
	"fmt"
	"io"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/inject"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// InterplayPoint is the detection capability of one fault duration.
type InterplayPoint struct {
	Label     string
	Type      inject.FaultType
	WindowLen uint64 // cycles; 0 for single-cycle transients
	Detection float64
	Lo, Hi    float64
}

// InterplayResult quantifies the paper's §II-D fault-type containment
// (Fig. 2): transients are single (bit, cycle) events, intermittents
// persist for a window, and a whole-run window behaves like a permanent
// stuck-at. Detection capability is expected to grow with fault
// duration — "a program that detects all transient faults is also very
// likely to detect the other two types".
type InterplayResult struct {
	Structure coverage.Structure
	Program   string
	Points    []InterplayPoint
}

// Interplay measures detection of transient, windowed-intermittent and
// whole-run stuck-at faults in one bit-array structure using one
// Harpocrates-style random program.
func Interplay(st coverage.Structure, pp Params) (*InterplayResult, error) {
	if st.IsFunctionalUnit() {
		return nil, fmt.Errorf("experiments: interplay targets bit arrays (got %v)", st)
	}
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 1000 * pp.Scale
	p := gen.Materialize(gen.NewRandom(&cfg, stats.Derive(pp.Seed, 2)), &cfg)

	golden := (&inject.Campaign{
		Prog: p.Insts, Init: p.InitFunc(), Target: st,
		Type: inject.Transient, N: 1, Seed: pp.Seed, Cfg: uarch.DefaultConfig(),
	}).Golden()
	if !golden.Clean() {
		return nil, fmt.Errorf("experiments: interplay program failed")
	}

	res := &InterplayResult{Structure: st, Program: p.Name}
	cases := []InterplayPoint{
		{Label: "transient (1 cycle)", Type: inject.Transient},
		{Label: "intermittent (16 cycles)", Type: inject.Intermittent, WindowLen: 16},
		{Label: "intermittent (256 cycles)", Type: inject.Intermittent, WindowLen: 256},
		{Label: "stuck-at (whole run)", Type: inject.Intermittent, WindowLen: 4*golden.Cycles + 200_000},
	}
	for _, c := range cases {
		camp := &inject.Campaign{
			Prog: p.Insts, Init: p.InitFunc(), Target: st,
			Type: c.Type, IntermittentLen: c.WindowLen,
			N: pp.Injections(st), Seed: pp.Seed, Cfg: uarch.DefaultConfig(),
		}
		s, err := camp.Run()
		if err != nil {
			return nil, err
		}
		c.Detection = s.Detection()
		c.Lo, c.Hi = s.CI()
		res.Points = append(res.Points, c)
	}
	return res, nil
}

// FprintInterplay renders the duration sweep.
func FprintInterplay(w io.Writer, r *InterplayResult) {
	fmt.Fprintf(w, "Fault-type interplay (§II-D, Fig. 2) — %v, program %s\n", r.Structure, r.Program)
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-26s detection %5.1f%%  [%4.1f, %5.1f]%%\n",
			p.Label, 100*p.Detection, 100*p.Lo, 100*p.Hi)
	}
	fmt.Fprintln(w, "  -> longer-lived faults are easier to detect; single-cycle transients are the hard case")
}
