package experiments

import (
	"fmt"
	"io"

	"harpocrates/internal/baselines/silifuzz"
)

// RateComparison is the §VI-A generation-throughput comparison: runnable
// (and, for Harpocrates, evaluated) instructions produced per second.
type RateComparison struct {
	SiliFuzz struct {
		RawInputs      int
		Runnable       int
		SnapshotInstrs int
		InstrsPerSec   float64
	}
	Harpocrates struct {
		Programs     int
		Instrs       uint64
		InstrsPerSec float64
	}
	// Ratio is Harpocrates / SiliFuzz (the paper reports ~30x).
	Ratio float64
}

// GenRate measures both pipelines' effective instruction production
// rates on this machine.
func GenRate(pp Params) (*RateComparison, error) {
	r := &RateComparison{}

	sf := silifuzz.Run(silifuzz.Options{
		Seed:          11,
		Rounds:        6000 * pp.Scale,
		MaxInputBytes: 100,
		TargetInstrs:  1000,
		NumTests:      1,
		SnapshotSteps: 512,
	})
	r.SiliFuzz.RawInputs = sf.Stats.RawInputs
	r.SiliFuzz.Runnable = sf.Stats.Runnable
	r.SiliFuzz.SnapshotInstrs = sf.Stats.SnapshotInstrs
	r.SiliFuzz.InstrsPerSec = sf.Stats.InstrsPerSecond()

	tb, err := Table1(pp)
	if err != nil {
		return nil, err
	}
	r.Harpocrates.Programs = tb.Programs
	r.Harpocrates.Instrs = uint64(tb.Programs * tb.Instrs)
	r.Harpocrates.InstrsPerSec = tb.InstrsPerSecond()
	if r.SiliFuzz.InstrsPerSec > 0 {
		r.Ratio = r.Harpocrates.InstrsPerSec / r.SiliFuzz.InstrsPerSec
	}
	return r, nil
}

// FprintGenRate renders the comparison.
func FprintGenRate(w io.Writer, r *RateComparison) {
	fmt.Fprintln(w, "§VI-A — Effective (runnable) instruction generation rate")
	fmt.Fprintf(w, "  SiliFuzz:    %d raw inputs -> %d runnable snapshots, %d instructions (%.0f instr/s)\n",
		r.SiliFuzz.RawInputs, r.SiliFuzz.Runnable, r.SiliFuzz.SnapshotInstrs, r.SiliFuzz.InstrsPerSec)
	fmt.Fprintf(w, "  Harpocrates: %d programs x evaluated per step (%.0f instr/s, generated AND evaluated)\n",
		r.Harpocrates.Programs, r.Harpocrates.InstrsPerSec)
	fmt.Fprintf(w, "  ratio: %.1fx (paper reports ~30x)\n", r.Ratio)
}
