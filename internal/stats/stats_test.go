package stats

import (
	"testing"
	"testing/quick"
)

func TestWilsonBounds(t *testing.T) {
	lo, hi := Wilson(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson(50,100) = [%f,%f] must bracket 0.5", lo, hi)
	}
	lo, hi = Wilson(0, 100)
	if lo != 0 || hi < 0.01 || hi > 0.1 {
		t.Fatalf("Wilson(0,100) = [%f,%f]", lo, hi)
	}
	lo, hi = Wilson(100, 100)
	// Mathematically the upper bound at k=n is exactly 1; allow float
	// rounding. The lower bound at n=100 is ~0.963.
	if hi < 1-1e-9 || lo > 0.99 || lo < 0.9 {
		t.Fatalf("Wilson(100,100) = [%.12f,%.12f]", lo, hi)
	}
	lo, hi = Wilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0,0) = [%f,%f], want [0,1]", lo, hi)
	}
}

func TestWilsonProperty(t *testing.T) {
	f := func(k, n uint16) bool {
		kk := int(k % 1000)
		nn := kk + int(n%1000)
		lo, hi := Wilson(kk, nn)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		if nn > 0 {
			p := float64(kk) / float64(nn)
			return lo <= p+1e-12 && hi >= p-1e-12
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonNarrowsWithN(t *testing.T) {
	lo1, hi1 := Wilson(5, 10)
	lo2, hi2 := Wilson(500, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval must narrow with sample size")
	}
}

func TestSummaries(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 || Max(xs) != 4 || Min(xs) != 1 {
		t.Fatal("summary stats wrong")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty summaries must be 0")
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, 7).Uint64()
	b := Derive(42, 7).Uint64()
	c := Derive(42, 8).Uint64()
	if a != b {
		t.Fatal("Derive not deterministic")
	}
	if a == c {
		t.Fatal("Derive does not separate subtasks")
	}
}

func TestMix64(t *testing.T) {
	if Mix64(HashInit, 1) == Mix64(HashInit, 2) {
		t.Fatal("Mix64 collides on adjacent words")
	}
	// Order sensitivity: folding (a, b) must differ from (b, a).
	ab := Mix64(Mix64(HashInit, 3), 4)
	ba := Mix64(Mix64(HashInit, 4), 3)
	if ab == ba {
		t.Fatal("Mix64 chain is order-insensitive")
	}
	if Mix64(HashInit, 5) != Mix64(HashInit, 5) {
		t.Fatal("Mix64 not deterministic")
	}
	// Dispersion sanity: single-bit input changes flip ~half the bits.
	f := func(v uint64) bool {
		d := Mix64(HashInit, v) ^ Mix64(HashInit, v^1)
		n := 0
		for ; d != 0; d &= d - 1 {
			n++
		}
		return n >= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThin(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	th := Thin(xs, 10)
	if len(th) != 10 || th[0] != 0 || th[9] != 90 {
		t.Fatalf("Thin = %v", th)
	}
	if len(Thin(xs, 1000)) != 100 {
		t.Fatal("Thin must not pad")
	}
}
