// Package stats provides the small statistical toolkit used by the
// fault-injection campaigns and experiment harnesses: Wilson confidence
// intervals for detection-capability estimates (the paper's SFI follows
// the statistical methodology of Leveugle et al. [50]), summary
// statistics, and deterministic per-task RNG derivation.
package stats

import (
	"math"
	"math/rand/v2"
)

// Wilson returns the Wilson score interval for k successes out of n at
// ~95% confidence (z = 1.96).
func Wilson(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for an empty slice).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (0 for an empty slice).
func Min(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Derive returns a deterministic RNG for subtask i of a seeded job, so
// parallel campaigns are reproducible regardless of scheduling.
func Derive(seed uint64, i int) *rand.Rand {
	return rand.New(DeriveSource(seed, i))
}

// DeriveSource returns the PCG source behind Derive. Callers that need
// to persist and restore the generator state (campaign checkpointing)
// hold on to the source — *rand.PCG implements encoding.BinaryMarshaler
// — and wrap it in rand.New themselves; the stream is bit-identical to
// Derive(seed, i).
func DeriveSource(seed uint64, i int) *rand.PCG {
	return rand.NewPCG(seed, splitmix(seed^uint64(i)*0x9e3779b97f4a7c15))
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashInit is the starting value for Mix64 chains (the 64-bit FNV-1a
// offset basis).
const HashInit uint64 = 14695981039346656037

// Mix64 folds v into the running content hash h (FNV-1a over v's eight
// bytes). Used to key memoization caches by value identity: start from
// HashInit and fold each word of the structure in a fixed order.
func Mix64(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// HashBytes folds arbitrary bytes with the Mix64 chain — the single
// content-hashing convention shared by corpus filenames, the queue
// result-cache keys and the golden artifact cache, so every subsystem
// agrees about what "same content" means.
func HashBytes(data []byte) uint64 {
	h := HashInit
	for _, b := range data {
		h = Mix64(h, uint64(b))
	}
	return h
}

// Thin returns at most k evenly spaced elements of xs (for plotting long
// convergence series at the paper's sampling intervals).
func Thin(xs []float64, k int) []float64 {
	if len(xs) <= k || k <= 0 {
		return xs
	}
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, xs[i*len(xs)/k])
	}
	return out
}
