package core

import (
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
)

func tinyOptions(st coverage.Structure) Options {
	o := Options{Structure: st, Seed: 42}
	o.Gen = gen.DefaultConfig()
	o.Gen.NumInstrs = 150
	o.PopSize = 8
	o.TopK = 2
	o.MutantsPerParent = 3
	o.Iterations = 6
	return o
}

func TestLoopImprovesIntAdderCoverage(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 12
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h.Best) != res.Iterations {
		t.Fatalf("history length %d != iterations %d", len(h.Best), res.Iterations)
	}
	first, last := h.Best[0], h.Best[len(h.Best)-1]
	if last < first {
		t.Fatalf("best fitness regressed: %f -> %f (elitism broken)", first, last)
	}
	if last <= first {
		t.Fatalf("no improvement over %d iterations: %f -> %f", res.Iterations, first, last)
	}
	t.Logf("IntAdder IBR: %.4f -> %.4f over %d iterations", first, last, res.Iterations)
}

func TestLoopBestFitnessMonotone(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History.Best); i++ {
		if res.History.Best[i] < res.History.Best[i-1]-1e-12 {
			t.Fatalf("best fitness dropped at iteration %d: %f -> %f",
				i, res.History.Best[i-1], res.History.Best[i])
		}
	}
}

func TestLoopDeterministic(t *testing.T) {
	r1, err := Run(tinyOptions(coverage.IntMul))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tinyOptions(coverage.IntMul))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.History.Best) != len(r2.History.Best) {
		t.Fatal("iteration counts differ")
	}
	for i := range r1.History.Best {
		if r1.History.Best[i] != r2.History.Best[i] {
			t.Fatalf("runs diverged at iteration %d", i)
		}
	}
}

func TestLoopConvergenceStop(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 200
	o.ConvergeWindow = 3
	o.ConvergeEps = 2.0 // impossible improvement: stops immediately
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("loop did not report convergence")
	}
	if res.Iterations >= 200 {
		t.Fatal("early stop did not trigger")
	}
}

func TestLoopRecordsTimings(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IntAdder))
	if err != nil {
		t.Fatal(err)
	}
	ts := res.History.Times
	if ts.Generation <= 0 || ts.Evaluation <= 0 || ts.Mutation <= 0 || ts.Compilation <= 0 {
		t.Fatalf("missing phase timings: %+v", ts)
	}
	if res.History.EvaluatedPrograms == 0 || res.History.EvaluatedInstructions == 0 {
		t.Fatal("throughput counters empty")
	}
}

func TestLoopTopKOrdered(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Fitness > res.TopK[i-1].Fitness {
			t.Fatal("TopK not sorted by fitness")
		}
	}
	if res.Best.Fitness != res.TopK[0].Fitness {
		t.Fatal("Best is not TopK[0]")
	}
}

func TestLoopBestProgramValid(t *testing.T) {
	o := tinyOptions(coverage.FPAdd)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Best.Program(&o.Gen)
	if _, _, err := p.GoldenRun(10 * o.Gen.NumInstrs); err != nil {
		t.Fatalf("evolved best program crashes: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for st := coverage.Structure(0); st < coverage.NumStructures; st++ {
		o := PresetFor(st, 1)
		if o.Gen.NumInstrs <= 0 || o.PopSize <= 0 || o.Iterations <= 0 {
			t.Fatalf("bad preset for %v: %+v", st, o)
		}
		if err := o.normalize(); err != nil {
			t.Fatal(err)
		}
	}
	// L1D preset carries the cache-aware constraints: a region sized to
	// the cache, fixed-stride sequential references, memory-heavy
	// selection.
	l1d := PresetFor(coverage.L1D, 1)
	if l1d.Gen.Mem.RegionBytes != 32*1024 || l1d.Gen.Mem.Stride == 0 {
		t.Fatal("L1D preset missing cache-sized strided-region constraint")
	}
	if l1d.Gen.Weights == nil {
		t.Fatal("L1D preset missing memory-heavy weighting")
	}
}

func TestOnIterationCallback(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	var seen []float64
	o.OnIteration = func(it int, best *Individual) {
		seen = append(seen, best.Fitness)
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Iterations {
		t.Fatalf("callback fired %d times, want %d", len(seen), res.Iterations)
	}
}

func TestBadOptionsRejected(t *testing.T) {
	o := tinyOptions(coverage.IRF)
	o.TopK = 100
	if _, err := Run(o); err == nil {
		t.Fatal("TopK > PopSize accepted")
	}
}
