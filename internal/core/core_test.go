package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
)

func tinyOptions(st coverage.Structure) Options {
	o := Options{Structure: st, Seed: 42}
	o.Gen = gen.DefaultConfig()
	o.Gen.NumInstrs = 150
	o.PopSize = 8
	o.TopK = 2
	o.MutantsPerParent = 3
	o.Iterations = 6
	return o
}

func TestLoopImprovesIntAdderCoverage(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 12
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h.Best) != res.Iterations {
		t.Fatalf("history length %d != iterations %d", len(h.Best), res.Iterations)
	}
	first, last := h.Best[0], h.Best[len(h.Best)-1]
	if last < first {
		t.Fatalf("best fitness regressed: %f -> %f (elitism broken)", first, last)
	}
	if last <= first {
		t.Fatalf("no improvement over %d iterations: %f -> %f", res.Iterations, first, last)
	}
	t.Logf("IntAdder IBR: %.4f -> %.4f over %d iterations", first, last, res.Iterations)
}

func TestLoopBestFitnessMonotone(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History.Best); i++ {
		if res.History.Best[i] < res.History.Best[i-1]-1e-12 {
			t.Fatalf("best fitness dropped at iteration %d: %f -> %f",
				i, res.History.Best[i-1], res.History.Best[i])
		}
	}
}

func TestLoopDeterministic(t *testing.T) {
	r1, err := Run(tinyOptions(coverage.IntMul))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tinyOptions(coverage.IntMul))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.History.Best) != len(r2.History.Best) {
		t.Fatal("iteration counts differ")
	}
	for i := range r1.History.Best {
		if r1.History.Best[i] != r2.History.Best[i] {
			t.Fatalf("runs diverged at iteration %d", i)
		}
	}
}

func TestLoopConvergenceStop(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 200
	o.ConvergeWindow = 3
	o.ConvergeEps = 2.0 // impossible improvement: stops immediately
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("loop did not report convergence")
	}
	if res.Iterations >= 200 {
		t.Fatal("early stop did not trigger")
	}
}

func TestLoopRecordsTimings(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IntAdder))
	if err != nil {
		t.Fatal(err)
	}
	ts := res.History.Times
	if ts.Generation <= 0 || ts.Evaluation <= 0 || ts.Mutation <= 0 || ts.Compilation <= 0 {
		t.Fatalf("missing phase timings: %+v", ts)
	}
	if res.History.EvaluatedPrograms == 0 || res.History.EvaluatedInstructions == 0 {
		t.Fatal("throughput counters empty")
	}
}

func TestLoopTopKOrdered(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Fitness > res.TopK[i-1].Fitness {
			t.Fatal("TopK not sorted by fitness")
		}
	}
	if res.Best.Fitness != res.TopK[0].Fitness {
		t.Fatal("Best is not TopK[0]")
	}
}

func TestLoopBestProgramValid(t *testing.T) {
	o := tinyOptions(coverage.FPAdd)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Best.Program(&o.Gen)
	if _, _, err := p.GoldenRun(10 * o.Gen.NumInstrs); err != nil {
		t.Fatalf("evolved best program crashes: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for st := coverage.Structure(0); st < coverage.NumStructures; st++ {
		o := PresetFor(st, 1)
		if o.Gen.NumInstrs <= 0 || o.PopSize <= 0 || o.Iterations <= 0 {
			t.Fatalf("bad preset for %v: %+v", st, o)
		}
		if err := o.normalize(); err != nil {
			t.Fatal(err)
		}
	}
	// L1D preset carries the cache-aware constraints: a region sized to
	// the cache, fixed-stride sequential references, memory-heavy
	// selection.
	l1d := PresetFor(coverage.L1D, 1)
	if l1d.Gen.Mem.RegionBytes != 32*1024 || l1d.Gen.Mem.Stride == 0 {
		t.Fatal("L1D preset missing cache-sized strided-region constraint")
	}
	if l1d.Gen.Weights == nil {
		t.Fatal("L1D preset missing memory-heavy weighting")
	}
}

func TestOnIterationCallback(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	var seen []float64
	o.OnIteration = func(it int, best *Individual) {
		seen = append(seen, best.Fitness)
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Iterations {
		t.Fatalf("callback fired %d times, want %d", len(seen), res.Iterations)
	}
}

func TestBadOptionsRejected(t *testing.T) {
	o := tinyOptions(coverage.IRF)
	o.TopK = 100
	if _, err := Run(o); err == nil {
		t.Fatal("TopK > PopSize accepted")
	}
}

func TestNaNFitnessDiscarded(t *testing.T) {
	// A metric returning NaN must not poison selection: NaN compares
	// false against everything, which would make the fitness sort
	// order-dependent garbage. NaN clamps to 0, like a crash.
	o := tinyOptions(coverage.IRF)
	o.Workers = 1 // the counting metric below is not thread-safe
	calls := 0
	o.Metric = coverage.Metric{Name: "nan", Score: func(s *coverage.Snapshot) float64 {
		calls++
		if calls%2 == 0 {
			return math.NaN()
		}
		return 0.5
	}}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range res.TopK {
		if math.IsNaN(ind.Fitness) {
			t.Fatal("NaN fitness survived into the population")
		}
	}
	if math.IsNaN(res.Best.Fitness) || res.Best.Fitness != 0.5 {
		t.Fatalf("best fitness %f, want 0.5 (NaN individuals discarded)", res.Best.Fitness)
	}
}

func TestFitnessMemoization(t *testing.T) {
	// A no-op "mutation" reproduces the parent genotype exactly, so every
	// offspring after the first generation must be served from the memo.
	o := tinyOptions(coverage.IntAdder)
	o.Mutate = func(parent *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
		return parent.Clone()
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	wantHits := (res.Iterations - 1) * o.TopK * o.MutantsPerParent
	if h.CacheHits != wantHits {
		t.Fatalf("cache hits %d, want %d (every clone offspring memoized)", h.CacheHits, wantHits)
	}
	// Cached fitness must equal a fresh evaluation's: the trajectory is
	// flat under no-op mutation.
	for i := 1; i < len(h.Best); i++ {
		if h.Best[i] != h.Best[0] {
			t.Fatalf("best fitness drifted under no-op mutation: %v", h.Best)
		}
	}
}

func TestMemoizationPreservesTrajectory(t *testing.T) {
	// Memoization serves bit-identical fitness values, so two identical
	// runs (which share every genotype) must agree point for point.
	a, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.History.Best) != len(b.History.Best) {
		t.Fatal("iteration counts diverged")
	}
	for i := range a.History.Best {
		if a.History.Best[i] != b.History.Best[i] {
			t.Fatalf("trajectory diverged at %d: %v vs %v", i, a.History.Best[i], b.History.Best[i])
		}
	}
	if a.History.CacheHits != b.History.CacheHits {
		t.Fatalf("cache hits diverged: %d vs %d", a.History.CacheHits, b.History.CacheHits)
	}
}
