package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
	"harpocrates/internal/obs"
	"harpocrates/internal/uarch"
)

func tinyOptions(st coverage.Structure) Options {
	o := Options{Structure: st, Seed: 42}
	o.Gen = gen.DefaultConfig()
	o.Gen.NumInstrs = 150
	o.PopSize = 8
	o.TopK = 2
	o.MutantsPerParent = 3
	o.Iterations = 6
	return o
}

func TestLoopImprovesIntAdderCoverage(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 12
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h.Best) != res.Iterations {
		t.Fatalf("history length %d != iterations %d", len(h.Best), res.Iterations)
	}
	first, last := h.Best[0], h.Best[len(h.Best)-1]
	if last < first {
		t.Fatalf("best fitness regressed: %f -> %f (elitism broken)", first, last)
	}
	if last <= first {
		t.Fatalf("no improvement over %d iterations: %f -> %f", res.Iterations, first, last)
	}
	t.Logf("IntAdder IBR: %.4f -> %.4f over %d iterations", first, last, res.Iterations)
}

func TestLoopBestFitnessMonotone(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History.Best); i++ {
		if res.History.Best[i] < res.History.Best[i-1]-1e-12 {
			t.Fatalf("best fitness dropped at iteration %d: %f -> %f",
				i, res.History.Best[i-1], res.History.Best[i])
		}
	}
}

func TestLoopDeterministic(t *testing.T) {
	r1, err := Run(tinyOptions(coverage.IntMul))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tinyOptions(coverage.IntMul))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.History.Best) != len(r2.History.Best) {
		t.Fatal("iteration counts differ")
	}
	for i := range r1.History.Best {
		if r1.History.Best[i] != r2.History.Best[i] {
			t.Fatalf("runs diverged at iteration %d", i)
		}
	}
}

func TestLoopConvergenceStop(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 200
	o.ConvergeWindow = 3
	o.ConvergeEps = 2.0 // impossible improvement: stops immediately
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("loop did not report convergence")
	}
	if res.Iterations >= 200 {
		t.Fatal("early stop did not trigger")
	}
}

func TestLoopRecordsTimings(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IntAdder))
	if err != nil {
		t.Fatal(err)
	}
	ts := res.History.Times
	if ts.Generation <= 0 || ts.Evaluation <= 0 || ts.Mutation <= 0 || ts.Compilation <= 0 {
		t.Fatalf("missing phase timings: %+v", ts)
	}
	if res.History.EvaluatedPrograms == 0 || res.History.EvaluatedInstructions == 0 {
		t.Fatal("throughput counters empty")
	}
}

func TestLoopTopKOrdered(t *testing.T) {
	res, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Fitness > res.TopK[i-1].Fitness {
			t.Fatal("TopK not sorted by fitness")
		}
	}
	if res.Best.Fitness != res.TopK[0].Fitness {
		t.Fatal("Best is not TopK[0]")
	}
}

func TestLoopBestProgramValid(t *testing.T) {
	o := tinyOptions(coverage.FPAdd)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Best.Program(&o.Gen)
	if _, _, err := p.GoldenRun(10 * o.Gen.NumInstrs); err != nil {
		t.Fatalf("evolved best program crashes: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for st := coverage.Structure(0); st < coverage.NumStructures; st++ {
		o := PresetFor(st, 1)
		if o.Gen.NumInstrs <= 0 || o.PopSize <= 0 || o.Iterations <= 0 {
			t.Fatalf("bad preset for %v: %+v", st, o)
		}
		if err := o.normalize(); err != nil {
			t.Fatal(err)
		}
	}
	// L1D preset carries the cache-aware constraints: a region sized to
	// the cache, fixed-stride sequential references, memory-heavy
	// selection.
	l1d := PresetFor(coverage.L1D, 1)
	if l1d.Gen.Mem.RegionBytes != 32*1024 || l1d.Gen.Mem.Stride == 0 {
		t.Fatal("L1D preset missing cache-sized strided-region constraint")
	}
	if l1d.Gen.Weights == nil {
		t.Fatal("L1D preset missing memory-heavy weighting")
	}
}

func TestOnIterationCallback(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	var seen []float64
	o.OnIteration = func(it int, best *Individual) {
		seen = append(seen, best.Fitness)
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Iterations {
		t.Fatalf("callback fired %d times, want %d", len(seen), res.Iterations)
	}
}

func TestBadOptionsRejected(t *testing.T) {
	o := tinyOptions(coverage.IRF)
	o.TopK = 100
	if _, err := Run(o); err == nil {
		t.Fatal("TopK > PopSize accepted")
	}
}

func TestNaNFitnessDiscarded(t *testing.T) {
	// A metric returning NaN must not poison selection: NaN compares
	// false against everything, which would make the fitness sort
	// order-dependent garbage. NaN clamps to 0, like a crash.
	o := tinyOptions(coverage.IRF)
	o.Workers = 1 // the counting metric below is not thread-safe
	calls := 0
	o.Metric = coverage.Metric{Name: "nan", Score: func(s *coverage.Snapshot) float64 {
		calls++
		if calls%2 == 0 {
			return math.NaN()
		}
		return 0.5
	}}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range res.TopK {
		if math.IsNaN(ind.Fitness) {
			t.Fatal("NaN fitness survived into the population")
		}
	}
	if math.IsNaN(res.Best.Fitness) || res.Best.Fitness != 0.5 {
		t.Fatalf("best fitness %f, want 0.5 (NaN individuals discarded)", res.Best.Fitness)
	}
}

func TestFitnessMemoization(t *testing.T) {
	// A no-op "mutation" reproduces the parent genotype exactly, so every
	// offspring after the first generation must be served from the memo.
	o := tinyOptions(coverage.IntAdder)
	o.Mutate = func(parent *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
		return parent.Clone()
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	wantHits := (res.Iterations - 1) * o.TopK * o.MutantsPerParent
	if h.CacheHits != wantHits {
		t.Fatalf("cache hits %d, want %d (every clone offspring memoized)", h.CacheHits, wantHits)
	}
	// Cached fitness must equal a fresh evaluation's: the trajectory is
	// flat under no-op mutation.
	for i := 1; i < len(h.Best); i++ {
		if h.Best[i] != h.Best[0] {
			t.Fatalf("best fitness drifted under no-op mutation: %v", h.Best)
		}
	}
}

func TestNormalizePreservesCustomGenFields(t *testing.T) {
	// Regression: normalize used to replace the entire Gen config with
	// DefaultConfig whenever NumInstrs was zero, silently discarding a
	// caller-set variant pool (or weights, or memory policy).
	pool := gen.DefaultPool()[:5]
	o := Options{Structure: coverage.IntAdder}
	o.Gen.Allowed = pool
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(o.Gen.Allowed) != 5 {
		t.Fatalf("custom pool clobbered: %d variants, want 5", len(o.Gen.Allowed))
	}
	for i, v := range pool {
		if o.Gen.Allowed[i] != v {
			t.Fatalf("custom pool rewritten at %d", i)
		}
	}
	d := gen.DefaultConfig()
	if o.Gen.NumInstrs != d.NumInstrs {
		t.Fatalf("NumInstrs not defaulted: %d", o.Gen.NumInstrs)
	}
	if o.Gen.Mem.RegionBytes != d.Mem.RegionBytes || o.Gen.Mem.Stride != d.Mem.Stride {
		t.Fatalf("memory policy not defaulted: %+v", o.Gen.Mem)
	}
}

func TestNormalizePreservesCustomCoreFields(t *testing.T) {
	// Regression: normalize used to replace the entire Core config with
	// uarch.DefaultConfig whenever ROBSize was zero, silently discarding
	// a caller-set cache geometry.
	o := tinyOptions(coverage.L1D)
	o.Core.L1D.SizeBytes = 16 * 1024
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	if o.Core.L1D.SizeBytes != 16*1024 {
		t.Fatalf("custom L1D size clobbered: %d", o.Core.L1D.SizeBytes)
	}
	if o.Core.ROBSize == 0 || o.Core.IntPRF == 0 || o.Core.L1D.Ways == 0 {
		t.Fatalf("unset core fields not defaulted: %+v", o.Core)
	}
	if !o.Core.TrackL1D {
		t.Fatal("structure tracking flag not enabled")
	}
}

func TestIterationAccountingConverged(t *testing.T) {
	// The history must have exactly one entry per reported iteration on
	// the early-converged exit path.
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 200
	o.ConvergeWindow = 3
	o.ConvergeEps = 2.0 // impossible improvement: stops at the window edge
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected convergence")
	}
	if len(res.History.Best) != res.Iterations {
		t.Fatalf("history %d entries, reported %d iterations", len(res.History.Best), res.Iterations)
	}
	if len(res.History.MeanTopK) != res.Iterations {
		t.Fatalf("MeanTopK %d entries, reported %d iterations", len(res.History.MeanTopK), res.Iterations)
	}
}

func TestIterationAccountingExhausted(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("unexpected convergence flag")
	}
	if res.Iterations != o.Iterations {
		t.Fatalf("ran %d iterations, want %d", res.Iterations, o.Iterations)
	}
	if len(res.History.Best) != res.Iterations {
		t.Fatalf("history %d entries, reported %d iterations", len(res.History.Best), res.Iterations)
	}
}

func TestConvergeZeroEpsNeverFiresOnMonotoneElite(t *testing.T) {
	// With eps 0, convergence requires the windowed best to *decrease* —
	// impossible under elitism (the best is monotone non-decreasing), so
	// the loop must run to exhaustion, never falsely triggering on a
	// plateau.
	o := tinyOptions(coverage.IntAdder)
	o.ConvergeWindow = 2
	o.ConvergeEps = 0
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("eps=0 convergence fired on a monotone trajectory")
	}
	if res.Iterations != o.Iterations {
		t.Fatalf("stopped after %d iterations, want %d", res.Iterations, o.Iterations)
	}
}

func TestRunEmitsTraceAndPhaseTimings(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	tr := obs.NewTracer(&buf)
	o := tinyOptions(coverage.IntAdder)
	o.Obs = obs.New(reg, tr)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	// Every line must parse; iteration end-spans must match the reported
	// iteration count exactly (both exit paths end the span).
	type rec struct {
		Ev     string         `json:"ev"`
		Name   string         `json:"name"`
		Fields map[string]any `json:"fields"`
	}
	itEnds, runEnds := 0, 0
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("trace line %d unparseable: %v\n%s", i, err, line)
		}
		if r.Ev == "end" && r.Name == "iteration" {
			itEnds++
			if _, ok := r.Fields["best"]; !ok {
				t.Fatalf("iteration end-span missing best fitness: %s", line)
			}
		}
		if r.Ev == "end" && r.Name == "run" {
			runEnds++
		}
	}
	if itEnds != res.Iterations {
		t.Fatalf("%d iteration end-spans, want %d", itEnds, res.Iterations)
	}
	if runEnds != 1 {
		t.Fatalf("%d run end-spans, want 1", runEnds)
	}

	// Phase wall-clock timings must account for (nearly) the whole run:
	// everything outside the named phases is bookkeeping.
	phases := []string{
		"core.phase.generate.wall_ns", "core.phase.evaluate.wall_ns",
		"core.phase.select.wall_ns", "core.phase.mutate.wall_ns",
	}
	var sum int64
	for _, ph := range phases {
		v := reg.Counter(ph).Load()
		if v <= 0 {
			t.Fatalf("phase %s recorded no time", ph)
		}
		sum += v
	}
	run := reg.Counter("core.run.wall_ns").Load()
	if run <= 0 {
		t.Fatal("core.run.wall_ns empty")
	}
	if float64(sum) < 0.90*float64(run) || float64(sum) > 1.01*float64(run) {
		t.Fatalf("phase timings sum %d ns vs run %d ns (%.1f%% accounted)",
			sum, run, 100*float64(sum)/float64(run))
	}
	if got := reg.Counter("core.iterations").Load(); got != int64(res.Iterations) {
		t.Fatalf("core.iterations %d, want %d", got, res.Iterations)
	}
	if reg.Counter("core.sim.cycles").Load() <= 0 || reg.Counter("core.sim.instructions").Load() <= 0 {
		t.Fatal("simulator counters empty")
	}
}

func TestObservationDoesNotPerturbTrajectory(t *testing.T) {
	// Attaching an Observer must not change a single fitness value.
	plain, err := Run(tinyOptions(coverage.IntAdder))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := tinyOptions(coverage.IntAdder)
	o.Obs = obs.New(obs.NewRegistry(), obs.NewTracer(&buf))
	observed, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.History.Best) != len(observed.History.Best) {
		t.Fatal("iteration counts diverged under observation")
	}
	for i := range plain.History.Best {
		if plain.History.Best[i] != observed.History.Best[i] {
			t.Fatalf("trajectory diverged at iteration %d under observation", i)
		}
	}
}

func TestDiversity(t *testing.T) {
	g1 := &gen.Genotype{Variants: []isa.VariantID{1, 2, 3}, Seed: 1}
	g2 := &gen.Genotype{Variants: []isa.VariantID{1, 2, 3}, Seed: 1} // duplicate content
	g3 := &gen.Genotype{Variants: []isa.VariantID{1, 2, 4}, Seed: 1}
	pop := []*Individual{{G: g1}, {G: g2}, {G: g3}}
	if d := diversity(pop); d != 2.0/3.0 {
		t.Fatalf("diversity %f, want 2/3", d)
	}
	if d := diversity(nil); d != 0 {
		t.Fatalf("diversity of empty population %f, want 0", d)
	}
}

func TestMemoizationPreservesTrajectory(t *testing.T) {
	// Memoization serves bit-identical fitness values, so two identical
	// runs (which share every genotype) must agree point for point.
	a, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyOptions(coverage.IRF))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.History.Best) != len(b.History.Best) {
		t.Fatal("iteration counts diverged")
	}
	for i := range a.History.Best {
		if a.History.Best[i] != b.History.Best[i] {
			t.Fatalf("trajectory diverged at %d: %v vs %v", i, a.History.Best[i], b.History.Best[i])
		}
	}
	if a.History.CacheHits != b.History.CacheHits {
		t.Fatalf("cache hits diverged: %d vs %d", a.History.CacheHits, b.History.CacheHits)
	}
}

// stubEvaluator implements Evaluator with the same in-process grading
// the local path uses, plus call accounting. A run through it must be
// bit-identical to a run without it.
type stubEvaluator struct {
	st      coverage.Structure
	gen     gen.Config
	core    uarch.Config
	batches int
	graded  int
}

func (e *stubEvaluator) Configure(st coverage.Structure, gcfg gen.Config, ccfg uarch.Config) error {
	e.st, e.gen, e.core = st, gcfg, ccfg
	return nil
}

func (e *stubEvaluator) EvaluateBatch(gs []*gen.Genotype) ([]EvalResult, error) {
	e.batches++
	e.graded += len(gs)
	out := make([]EvalResult, len(gs))
	metric := coverage.MetricFor(e.st)
	for i, g := range gs {
		out[i] = GradeGenotype(g, &e.gen, e.core, metric)
	}
	return out, nil
}

func TestEvaluatorPathBitIdentical(t *testing.T) {
	local, err := Run(tinyOptions(coverage.IntAdder))
	if err != nil {
		t.Fatal(err)
	}
	ev := &stubEvaluator{}
	o := tinyOptions(coverage.IntAdder)
	o.Evaluator = ev
	remote, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if ev.batches == 0 || ev.graded == 0 {
		t.Fatal("evaluator was never used")
	}
	if remote.Best.Fitness != local.Best.Fitness {
		t.Fatalf("best fitness %v != %v", remote.Best.Fitness, local.Best.Fitness)
	}
	if remote.Best.G.Hash() != local.Best.G.Hash() {
		t.Fatalf("best genotype %016x != %016x", remote.Best.G.Hash(), local.Best.G.Hash())
	}
	if !slicesEqualFloat(remote.History.Best, local.History.Best) {
		t.Fatalf("best trajectory diverged:\n evaluator %v\n local     %v",
			remote.History.Best, local.History.Best)
	}
	if remote.History.EvaluatedPrograms != local.History.EvaluatedPrograms {
		t.Fatalf("evaluated %d programs, local %d",
			remote.History.EvaluatedPrograms, local.History.EvaluatedPrograms)
	}
}

func slicesEqualFloat(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// failingEvaluator errors on the first batch; Run must surface it.
type failingEvaluator struct{}

func (failingEvaluator) Configure(coverage.Structure, gen.Config, uarch.Config) error { return nil }
func (failingEvaluator) EvaluateBatch([]*gen.Genotype) ([]EvalResult, error) {
	return nil, fmt.Errorf("fleet on fire")
}

func TestEvaluatorErrorPropagates(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Evaluator = failingEvaluator{}
	if _, err := Run(o); err == nil {
		t.Fatal("evaluator failure swallowed")
	}
}
