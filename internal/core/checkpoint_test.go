package core

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
)

// historyEqual compares two trajectories excluding the wall-clock Times
// (the one field that legitimately differs across a resume).
func historyEqual(a, b *History) bool {
	ac, bc := *a, *b
	ac.Times, bc.Times = StepTimes{}, StepTimes{}
	return reflect.DeepEqual(ac, bc)
}

// TestResumeBitIdentical is the checkpoint/resume acceptance gate: an
// interrupted-then-resumed run must replay the identical trajectory —
// History (fitness series, evaluation counters, cache hits), the best
// genotype and the iteration count all bit-identical to the same run
// left uninterrupted.
func TestResumeBitIdentical(t *testing.T) {
	const full = 6

	// Reference: the uninterrupted run.
	ref := tinyOptions(coverage.IntAdder)
	ref.Iterations = full
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: same configuration, cut off mid-way by a smaller
	// iteration budget, checkpointing every iteration.
	ck := filepath.Join(t.TempDir(), "run.hxck")
	part := tinyOptions(coverage.IntAdder)
	part.Iterations = full / 2
	part.CheckpointPath = ck
	if _, err := Run(part); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Resume with the full budget restored.
	res := tinyOptions(coverage.IntAdder)
	res.Iterations = full
	res.CheckpointPath = ck
	res.Resume = true
	got, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}

	if !historyEqual(got.History, want.History) {
		t.Errorf("resumed history diverged:\nresumed:       %+v\nuninterrupted: %+v",
			got.History, want.History)
	}
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Errorf("resumed run shape: iterations %d/%v, want %d/%v",
			got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	if got.Best.Fitness != want.Best.Fitness || got.Best.G.Hash() != want.Best.G.Hash() {
		t.Errorf("resumed best diverged: fitness %v hash %#x, want %v hash %#x",
			got.Best.Fitness, got.Best.G.Hash(), want.Best.Fitness, want.Best.G.Hash())
	}
	if got.Best.Snapshot != want.Best.Snapshot {
		t.Errorf("resumed best snapshot diverged")
	}
}

// TestResumeWithoutCheckpointIsFreshStart: Resume with no checkpoint on
// disk must run from scratch, not fail.
func TestResumeWithoutCheckpointIsFreshStart(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.CheckpointPath = filepath.Join(t.TempDir(), "absent.hxck")
	o.Resume = true
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.Best) != o.Iterations {
		t.Fatalf("fresh start ran %d iterations, want %d", len(res.History.Best), o.Iterations)
	}
}

// TestResumeRejectsMismatchedOptions: a snapshot written under one
// configuration must refuse to resume under another (silently diverging
// would defeat the bit-identity guarantee).
func TestResumeRejectsMismatchedOptions(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.hxck")
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 3
	o.CheckpointPath = ck
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}

	bad := tinyOptions(coverage.IntAdder)
	bad.Seed++
	bad.CheckpointPath = ck
	bad.Resume = true
	if _, err := Run(bad); err == nil {
		t.Fatal("resume with a different seed succeeded; want options-mismatch error")
	}

	// A larger iteration budget and a different seed list are legitimate
	// resumes, not mismatches: the budget may grow, and a corpus-backed
	// caller's elite set grows between interruption and resume (seeds
	// only shape the initial population, which the snapshot captures).
	more := tinyOptions(coverage.IntAdder)
	more.Iterations = 5
	more.CheckpointPath = ck
	more.Resume = true
	more.Seeds = []*gen.Genotype{gen.NewRandom(&more.Gen, rand.New(rand.NewPCG(9, 9)))}
	if _, err := Run(more); err != nil {
		t.Fatalf("resume with larger budget: %v", err)
	}
}

// TestResumeRejectsCorruptCheckpoint: flipped or truncated checkpoint
// bytes must surface as an error, never as a silent fresh start or a
// huge allocation.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.hxck")
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 3
	o.CheckpointPath = ck
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}

	for name, mut := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bad-magic": func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c },
		"huge-length": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// The RNG-state length field sits right after magic, version,
			// optsHash and nextIt.
			off := 4 + 4 + 8 + 4
			c[off], c[off+1], c[off+2], c[off+3] = 0xff, 0xff, 0xff, 0xff
			return c
		},
	} {
		if _, err := readSnapshot(bytes.NewReader(mut(raw))); err == nil {
			t.Errorf("%s checkpoint decoded without error", name)
		}
	}
}

// TestSnapshotRoundTrip: writeSnapshot → readSnapshot is the identity on
// every persisted field.
func TestSnapshotRoundTrip(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.hxck")
	o := tinyOptions(coverage.IRF)
	o.Iterations = 2
	o.CheckpointPath = ck
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ck)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := readSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	ck2 := filepath.Join(t.TempDir(), "copy.hxck")
	if err := writeSnapshot(ck2, snap); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(ck)
	b, _ := os.ReadFile(ck2)
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot re-serialization is not byte-identical")
	}
	if snap.nextIt != 1 {
		t.Fatalf("nextIt = %d, want 1 (checkpoint after the first full body)", snap.nextIt)
	}
	if len(snap.pop) == 0 || len(snap.memo) == 0 || len(snap.rng) == 0 {
		t.Fatalf("snapshot missing state: pop=%d memo=%d rng=%d",
			len(snap.pop), len(snap.memo), len(snap.rng))
	}
}

// TestSeededPopulation: corpus seeds fill the first population slots, so
// the first iteration's best fitness is at least the seeded elite's.
func TestSeededPopulation(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	elite := base.Best

	seeded := tinyOptions(coverage.IntAdder)
	seeded.Seed = 777 // different random remainder; the elite still leads
	seeded.Seeds = []*gen.Genotype{elite.G.Clone()}
	res, err := Run(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Best[0] < elite.Fitness {
		t.Fatalf("seeded run starts at %v, below the seeded elite's %v",
			res.History.Best[0], elite.Fitness)
	}
}
