// Campaign checkpoint/resume: the refinement loop persists a snapshot
// of its complete optimization state — population with fitnesses and
// coverage snapshots, RNG source state, iteration counter, history and
// the fitness memo — at the end of each iteration, and can restart from
// it after an interruption. The snapshot point is chosen so that a
// resumed run replays the identical trajectory: History, the best
// genotype, convergence behaviour and the evaluation counters are all
// bit-identical to the same run left uninterrupted (only the wall-clock
// Times restart from zero).
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"

	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
	"harpocrates/internal/sched"
	"harpocrates/internal/stats"
)

// Binary container format for loop snapshots ("HXCK"). Version 1 is
// the static-schedule format; version 2 appends the adaptive sections
// (bandit arm state, Pareto archive) and is written only by runs with
// Adaptive or Pareto set, so static checkpoints stay byte-identical
// across releases.
const (
	snapMagic           = 0x4858434b // "HXCK"
	snapVersion         = 1
	snapVersionAdaptive = 2
)

// snapshot is the persisted loop state.
type snapshot struct {
	optsHash uint64
	nextIt   int
	rng      []byte
	hist     *History
	pop      []*Individual
	memo     map[uint64]evalEntry

	// Adaptive sections (version 2; nil/empty on static snapshots).
	bandit  *sched.State
	archive []*Individual
}

// resumeHash fingerprints every option that shapes the optimization
// trajectory, so a snapshot cannot silently resume under a different
// configuration. Excluded on purpose: Iterations and the convergence
// knobs (extending the iteration budget of an interrupted run is a
// legitimate resume) and Seeds (they only shape the initial population,
// which the snapshot captures in full — and a corpus-backed caller's
// elite set legitimately grows between interruption and resume). (A
// custom Mutate function cannot be fingerprinted; callers overriding it
// must keep it stable across resume themselves.)
func (o *Options) resumeHash() uint64 {
	h := stats.Mix64(stats.HashInit, uint64(o.Structure))
	h = stats.Mix64(h, uint64(o.PopSize))
	h = stats.Mix64(h, uint64(o.TopK))
	h = stats.Mix64(h, uint64(o.MutantsPerParent))
	h = stats.Mix64(h, o.Seed)
	h = stats.Mix64(h, uint64(o.Gen.NumInstrs))
	h = stats.Mix64(h, uint64(o.Gen.RegAlloc))
	h = stats.Mix64(h, uint64(o.Gen.Mem.RegionBytes))
	h = stats.Mix64(h, uint64(o.Gen.Mem.Stride))
	h = stats.Mix64(h, uint64(len(o.Gen.Allowed)))
	for _, v := range o.Gen.Allowed {
		h = stats.Mix64(h, uint64(v))
	}
	for _, w := range o.Gen.Weights {
		h = stats.Mix64(h, math.Float64bits(w))
	}
	for _, b := range []byte(o.Metric.Name) {
		h = stats.Mix64(h, uint64(b))
	}
	// The adaptive flags reshape the trajectory (operator dispatch,
	// selection order), so they are folded in — but only when set, which
	// keeps every pre-existing static hash unchanged and makes a static
	// snapshot refuse an adaptive resume (and vice versa).
	if o.Adaptive {
		h = stats.Mix64(h, 0xada7d1fe)
		h = stats.Mix64(h, math.Float64bits(o.Sched.Explore))
		h = stats.Mix64(h, math.Float64bits(o.Sched.UCBC))
	}
	if o.Pareto {
		h = stats.Mix64(h, 0x9a4e7000)
		h = stats.Mix64(h, uint64(o.ParetoBound))
	}
	return h
}

// maybeResume loads the snapshot at CheckpointPath when resume is
// requested and one exists. A missing file is a fresh start, not an
// error; a corrupt file or an options mismatch is an error (resuming
// anyway would silently diverge).
func maybeResume(o *Options) (*snapshot, error) {
	if !o.Resume || o.CheckpointPath == "" {
		return nil, nil
	}
	f, err := os.Open(o.CheckpointPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: open checkpoint: %w", err)
	}
	defer f.Close()
	snap, err := readSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint %s: %w", o.CheckpointPath, err)
	}
	if snap.optsHash != o.resumeHash() {
		return nil, fmt.Errorf("core: checkpoint %s was written by a run with different options (seed/population/generator config); refusing to resume", o.CheckpointPath)
	}
	return snap, nil
}

// mustMarshalRNG marshals the PCG source state. The PCG marshaler
// cannot fail; the wrapper keeps the call site clean.
func mustMarshalRNG(src interface{ MarshalBinary() ([]byte, error) }) []byte {
	b, err := src.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("core: marshal rng: %v", err))
	}
	return b
}

// writeSnapshot serializes the snapshot and atomically replaces path
// (temp file + rename), so an interruption mid-write never corrupts the
// previous checkpoint.
func writeSnapshot(path string, s *snapshot) error {
	var buf bytes.Buffer
	le := binary.LittleEndian
	put := func(v any) { _ = binary.Write(&buf, le, v) }
	putInd := func(ind *Individual) {
		put(ind.Fitness)
		put(ind.Snapshot)
		put(ind.G.Seed)
		put(uint32(len(ind.G.Variants)))
		for _, v := range ind.G.Variants {
			put(uint16(v))
		}
	}

	version := uint32(snapVersion)
	if s.bandit != nil || len(s.archive) > 0 {
		version = snapVersionAdaptive
	}
	put(uint32(snapMagic))
	put(version)
	put(s.optsHash)
	put(uint32(s.nextIt))
	put(uint32(len(s.rng)))
	buf.Write(s.rng)

	put(uint32(len(s.hist.Best)))
	for _, v := range s.hist.Best {
		put(v)
	}
	put(uint32(len(s.hist.MeanTopK)))
	for _, v := range s.hist.MeanTopK {
		put(v)
	}
	put(uint64(s.hist.EvaluatedPrograms))
	put(s.hist.EvaluatedInstructions)
	put(uint64(s.hist.CacheHits))

	put(uint32(len(s.pop)))
	for _, ind := range s.pop {
		putInd(ind)
	}

	// The fitness memo makes the resumed run's cache behaviour (and so
	// History.CacheHits / EvaluatedInstructions) identical, not just the
	// trajectory. Keys are written sorted so the same state always
	// serializes to the same bytes.
	keys := make([]uint64, 0, len(s.memo))
	for k := range s.memo {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	put(uint32(len(keys)))
	for _, k := range keys {
		e := s.memo[k]
		put(k)
		put(e.fitness)
		put(e.snap)
	}

	if version >= snapVersionAdaptive {
		// Bandit arm state, positional over the portfolio (0 arms when
		// the run is Pareto-only).
		if s.bandit != nil {
			put(uint32(len(s.bandit.Pulls)))
			for i := range s.bandit.Pulls {
				put(s.bandit.Pulls[i])
				put(s.bandit.Rewards[i])
			}
		} else {
			put(uint32(0))
		}
		// Pareto archive members; vectors are recomputed from the stored
		// coverage snapshots on restore.
		put(uint32(len(s.archive)))
		for _, ind := range s.archive {
			putInd(ind)
		}
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// Decoder bounds: a snapshot is machine-written, but it still travels
// through filesystems; a corrupt length field must produce an error,
// not an arbitrarily large allocation.
const (
	maxSnapRNGBytes = 1 << 12
	maxSnapSeries   = 1 << 24
	maxSnapPop      = 1 << 20
	maxSnapVariants = 1 << 24
	maxSnapMemo     = 1 << 26
	maxSnapArms     = 1 << 8
)

// readSnapshot deserializes a snapshot written by writeSnapshot.
func readSnapshot(r io.Reader) (*snapshot, error) {
	le := binary.LittleEndian
	get := func(v any) error { return binary.Read(r, le, v) }
	getLen := func(limit uint32, what string) (uint32, error) {
		var n uint32
		if err := get(&n); err != nil {
			return 0, err
		}
		if n > limit {
			return 0, fmt.Errorf("unreasonable %s count %d", what, n)
		}
		return n, nil
	}
	getFloats := func(what string) ([]float64, error) {
		n, err := getLen(maxSnapSeries, what)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			if err := get(&out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	getInd := func() (*Individual, error) {
		ind := &Individual{G: &gen.Genotype{}}
		if err := get(&ind.Fitness); err != nil {
			return nil, err
		}
		if err := get(&ind.Snapshot); err != nil {
			return nil, err
		}
		if err := get(&ind.G.Seed); err != nil {
			return nil, err
		}
		nVar, err := getLen(maxSnapVariants, "variant")
		if err != nil {
			return nil, err
		}
		ind.G.Variants = make([]isa.VariantID, nVar)
		for j := range ind.G.Variants {
			var v uint16
			if err := get(&v); err != nil {
				return nil, err
			}
			ind.G.Variants[j] = isa.VariantID(v)
		}
		return ind, nil
	}

	var magic, version uint32
	if err := get(&magic); err != nil {
		return nil, err
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("bad magic %#x", magic)
	}
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != snapVersion && version != snapVersionAdaptive {
		return nil, fmt.Errorf("unsupported version %d", version)
	}

	s := &snapshot{hist: &History{}, memo: make(map[uint64]evalEntry)}
	if err := get(&s.optsHash); err != nil {
		return nil, err
	}
	var nextIt uint32
	if err := get(&nextIt); err != nil {
		return nil, err
	}
	s.nextIt = int(nextIt)
	nRNG, err := getLen(maxSnapRNGBytes, "rng state")
	if err != nil {
		return nil, err
	}
	s.rng = make([]byte, nRNG)
	if _, err := io.ReadFull(r, s.rng); err != nil {
		return nil, err
	}

	if s.hist.Best, err = getFloats("history"); err != nil {
		return nil, err
	}
	if s.hist.MeanTopK, err = getFloats("history"); err != nil {
		return nil, err
	}
	var evalProgs, cacheHits uint64
	if err := get(&evalProgs); err != nil {
		return nil, err
	}
	if err := get(&s.hist.EvaluatedInstructions); err != nil {
		return nil, err
	}
	if err := get(&cacheHits); err != nil {
		return nil, err
	}
	s.hist.EvaluatedPrograms = int(evalProgs)
	s.hist.CacheHits = int(cacheHits)

	nPop, err := getLen(maxSnapPop, "population")
	if err != nil {
		return nil, err
	}
	s.pop = make([]*Individual, nPop)
	for i := range s.pop {
		ind, err := getInd()
		if err != nil {
			return nil, err
		}
		s.pop[i] = ind
	}

	nMemo, err := getLen(maxSnapMemo, "memo")
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nMemo; i++ {
		var k uint64
		var e evalEntry
		if err := get(&k); err != nil {
			return nil, err
		}
		if err := get(&e.fitness); err != nil {
			return nil, err
		}
		if err := get(&e.snap); err != nil {
			return nil, err
		}
		s.memo[k] = e
	}

	if version >= snapVersionAdaptive {
		nArms, err := getLen(maxSnapArms, "bandit arm")
		if err != nil {
			return nil, err
		}
		if nArms > 0 {
			st := &sched.State{
				Pulls:   make([]uint64, nArms),
				Rewards: make([]float64, nArms),
			}
			for i := uint32(0); i < nArms; i++ {
				if err := get(&st.Pulls[i]); err != nil {
					return nil, err
				}
				if err := get(&st.Rewards[i]); err != nil {
					return nil, err
				}
			}
			s.bandit = st
		}
		nArch, err := getLen(maxSnapPop, "archive")
		if err != nil {
			return nil, err
		}
		s.archive = make([]*Individual, nArch)
		for i := range s.archive {
			ind, err := getInd()
			if err != nil {
				return nil, err
			}
			s.archive[i] = ind
		}
	}
	return s, nil
}
