package core

import (
	"fmt"
	"math"
	"time"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/uarch"
)

// EvalResult is one genotype's grade: the fitness the selection step
// sorts on plus the coverage snapshot it was derived from. The struct is
// JSON-serializable so batches of grades can travel over the
// internal/dist wire protocol.
type EvalResult struct {
	Fitness  float64           `json:"fitness"`
	Snapshot coverage.Snapshot `json:"snapshot"`
}

// Evaluator is a pluggable grading backend for the refinement loop.
// When Options.Evaluator is set, every batch of not-yet-memoized
// genotypes is handed to EvaluateBatch instead of the in-process
// materialize-encode-simulate pipeline; results must be positionally
// aligned with the input. Grading is a pure function of (genotype,
// configuration), so any backend that implements the contract of
// GradeGenotype — the distributed worker pool in internal/dist does by
// construction — keeps the GA trajectory bit-identical to a local run.
//
// Configure is called once per Run, after option normalization, with
// the exact generator and core configurations the local path would use.
// Remote backends grade with the structure's default coverage metric
// (coverage.MetricFor); a custom Options.Metric cannot be shipped over
// the wire and must be graded in process.
type Evaluator interface {
	Configure(st coverage.Structure, gcfg gen.Config, ccfg uarch.Config) error
	EvaluateBatch(gs []*gen.Genotype) ([]EvalResult, error)
}

// gradeTiming is the per-stage cost of one grading (Table I accounting).
type gradeTiming struct {
	genNS, compNS, evalNS int64
	insts                 int64
}

// gradeTimed materializes, encodes ("compiles") and simulates one
// genotype, returning its grade, the raw simulator result and the
// per-stage wall-clock split. This is THE grading function: the local
// evaluate loop and the distributed worker both call it, so the two
// paths cannot disagree about fitness semantics (crashing candidates
// and NaN metric values are clamped to fitness 0 here, in one place).
func gradeTimed(g *gen.Genotype, gcfg *gen.Config, ccfg uarch.Config, metric coverage.Metric) (EvalResult, *uarch.Result, gradeTiming) {
	t0 := time.Now()
	p := gen.Materialize(g, gcfg)
	t1 := time.Now()
	// "Compilation": lower to the byte encoding, as the C wrapper +
	// compiler step does in the paper's toolchain.
	_ = p.Encode()
	t2 := time.Now()
	r := uarch.Run(p.Insts, p.NewState(), ccfg)
	t3 := time.Now()

	res := EvalResult{Snapshot: r.Snapshot}
	if r.Clean() {
		res.Fitness = metric.Score(&r.Snapshot)
	}
	if math.IsNaN(res.Fitness) {
		// A pathological metric value must not poison the sort (NaN
		// compares false to everything, corrupting selection); discard
		// like a crash.
		res.Fitness = 0
	}
	return res, r, gradeTiming{
		genNS:  t1.Sub(t0).Nanoseconds(),
		compNS: t2.Sub(t1).Nanoseconds(),
		evalNS: t3.Sub(t2).Nanoseconds(),
		insts:  int64(len(p.Insts)),
	}
}

// GradeGenotype grades one genotype under an explicit evaluation
// configuration, with exactly the semantics of the in-process loop
// (crash/NaN clamping included). Remote workers and local fallbacks use
// it to stay bit-compatible with Run. Coverage grading runs one
// tracker-instrumented simulation per genotype with no fault-free
// reference to share, so the golden artifact cache (inject.GoldenCache)
// does not apply here — its gate excludes tracker configs by design;
// reuse across repeated grades of identical genotypes is the evalCache
// memo's job.
func GradeGenotype(g *gen.Genotype, gcfg *gen.Config, ccfg uarch.Config, metric coverage.Metric) EvalResult {
	res, _, _ := gradeTimed(g, gcfg, ccfg, metric)
	return res
}

// evaluateRemote grades a set of individuals through Options.Evaluator:
// individuals already memoized are served locally, the remainder is
// deduplicated by genotype hash and shipped as one batch. The whole
// remote round-trip is accounted as evaluation time.
func evaluateRemote(inds []*Individual, o *Options, hist *History, memo *evalCache) error {
	stopEval := o.Obs.Phase("core.phase.evaluate")
	defer stopEval()
	t0 := time.Now()

	seen := make(map[uint64]struct{}, len(inds))
	var batch []*gen.Genotype
	for _, ind := range inds {
		key := hashGenotype(ind.G)
		if _, ok := memo.get(key); ok {
			continue
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		batch = append(batch, ind.G)
	}

	if len(batch) > 0 {
		results, err := o.Evaluator.EvaluateBatch(batch)
		if err != nil {
			return fmt.Errorf("core: remote evaluation: %w", err)
		}
		if len(results) != len(batch) {
			return fmt.Errorf("core: remote evaluation returned %d results for %d genotypes",
				len(results), len(batch))
		}
		var cycles, instrs int64
		for i, g := range batch {
			r := results[i]
			if math.IsNaN(r.Fitness) {
				r.Fitness = 0 // defense in depth; workers already clamp
			}
			memo.put(hashGenotype(g), evalEntry{fitness: r.Fitness, snap: r.Snapshot})
			hist.EvaluatedInstructions += uint64(len(g.Variants))
			cycles += int64(r.Snapshot.Cycles)
			instrs += int64(r.Snapshot.Instructions)
		}
		if o.Obs.Enabled() {
			o.Obs.Counter("core.eval.remote.batches").Inc()
			o.Obs.Counter("core.eval.remote.genotypes").Add(int64(len(batch)))
			o.Obs.Counter("core.sim.cycles").Add(cycles)
			o.Obs.Counter("core.sim.instructions").Add(instrs)
		}
	}

	for _, ind := range inds {
		e, ok := memo.get(hashGenotype(ind.G))
		if !ok {
			return fmt.Errorf("core: remote evaluation left genotype %016x ungraded", hashGenotype(ind.G))
		}
		ind.Fitness = e.fitness
		ind.Snapshot = e.snap
	}
	hist.EvaluatedPrograms += len(inds)
	hist.CacheHits += len(inds) - len(batch)
	hist.Times.Evaluation += time.Since(t0)
	return nil
}
