// Adaptive search: the bandit-scheduled mutation portfolio and the
// multi-structure Pareto machinery behind Options.Adaptive and
// Options.Pareto. Everything here is inert when both flags are off —
// the static loop takes no extra RNG draws and writes version-1
// snapshots, so legacy trajectories stay bit-identical.
package core

import (
	"math/rand/v2"
	"sort"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/mutate"
	"harpocrates/internal/sched"
)

// operator is one arm of the mutation portfolio. Two-parent operators
// draw their mate uniformly from the survivor set.
type operator struct {
	name  string
	apply func(parent *gen.Genotype, top []*Individual, cfg *gen.Config, rng *rand.Rand) *gen.Genotype
}

// defaultPortfolio is the bandit's arm set: the paper's production
// operator, the ablation operators, and the two new structural ones.
// Arm order is part of the checkpoint contract (bandit state is stored
// positionally) — append only.
func defaultPortfolio() []operator {
	return []operator{
		{name: "replaceall", apply: func(p *gen.Genotype, _ []*Individual, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
			return mutate.ReplaceAll(p, cfg, rng)
		}},
		{name: "point", apply: func(p *gen.Genotype, _ []*Individual, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
			return mutate.Point(p, cfg, rng)
		}},
		{name: "blockswap", apply: func(p *gen.Genotype, _ []*Individual, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
			return mutate.BlockSwap(p, cfg, rng)
		}},
		{name: "splice", apply: func(p *gen.Genotype, top []*Individual, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
			donor := top[rng.IntN(len(top))].G
			return mutate.Splice(p, donor, cfg, rng)
		}},
		{name: "crossoverk", apply: func(p *gen.Genotype, top []*Individual, cfg *gen.Config, rng *rand.Rand) *gen.Genotype {
			mate := top[rng.IntN(len(top))].G
			if len(mate.Variants) != len(p.Variants) {
				// Corpus seeds of a different program size cannot cross
				// positionally; self-crossover keeps the draw pattern.
				mate = p
			}
			return mutate.CrossoverK(p, mate, 3, rng)
		}},
	}
}

// paretoObjectives are the six structures of the paper's evaluation,
// maximized jointly in Pareto mode. Order is part of the objective
// vector layout.
var paretoObjectives = []coverage.Structure{
	coverage.IRF, coverage.L1D,
	coverage.IntAdder, coverage.IntMul, coverage.FPAdd, coverage.FPMul,
}

// ParetoObjectives returns the structures Pareto mode optimizes
// jointly (a copy; callers use it to pick per-structure exports from
// the front).
func ParetoObjectives() []coverage.Structure {
	return append([]coverage.Structure(nil), paretoObjectives...)
}

// paretoVector extracts the objective vector from a coverage snapshot.
func paretoVector(s *coverage.Snapshot) []float64 {
	v := make([]float64, len(paretoObjectives))
	for i, st := range paretoObjectives {
		v[i] = s.Value(st)
	}
	return v
}

// paretoScalar is the scalar fitness of a Pareto individual: the mean
// objective. The max-mean individual is always non-dominated (if b
// dominated a, mean(b) > mean(a)), so scalar History entries stay
// meaningful.
func paretoScalar(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// paretoSort orders the population by (non-dominated front asc,
// crowding distance desc); the stable sort plus deterministic input
// order keeps the result reproducible.
func paretoSort(pop []*Individual) {
	vecs := make([][]float64, len(pop))
	for i, ind := range pop {
		vecs[i] = paretoVector(&ind.Snapshot)
	}
	rank, crowd := sched.Rank(vecs)
	type slot struct {
		ind   *Individual
		rank  int
		crowd float64
	}
	slots := make([]slot, len(pop))
	for i := range pop {
		slots[i] = slot{pop[i], rank[i], crowd[i]}
	}
	sort.SliceStable(slots, func(a, b int) bool {
		if slots[a].rank != slots[b].rank {
			return slots[a].rank < slots[b].rank
		}
		return slots[a].crowd > slots[b].crowd
	})
	for i := range slots {
		pop[i] = slots[i].ind
	}
}

// adaptiveState carries the run's bandit and Pareto archive. The zero
// bandit/archive (static runs) make every method a no-op.
type adaptiveState struct {
	o         *Options
	bandit    *sched.Bandit
	portfolio []operator
	archive   *sched.Archive
	members   map[uint64]*Individual // archive key -> individual
}

func newAdaptiveState(o *Options) *adaptiveState {
	ad := &adaptiveState{o: o}
	if o.Adaptive {
		ad.portfolio = defaultPortfolio()
		ad.bandit = sched.NewBandit(len(ad.portfolio), o.Sched)
	}
	if o.Pareto {
		ad.archive = sched.NewArchive(o.ParetoBound)
		ad.members = make(map[uint64]*Individual)
	}
	return ad
}

// observe folds freshly evaluated individuals into the Pareto state:
// scalar fitness becomes the mean objective and the archive absorbs
// every non-dominated newcomer. No-op outside Pareto mode.
func (ad *adaptiveState) observe(inds []*Individual) {
	if ad.archive == nil {
		return
	}
	for _, ind := range inds {
		vec := paretoVector(&ind.Snapshot)
		ind.Fitness = paretoScalar(vec)
		key := hashGenotype(ind.G)
		added, evicted := ad.archive.Add(key, vec)
		if added {
			ad.members[key] = ind
		}
		// The eviction list may include the entry just added (bound
		// pressure), so members are pruned after insertion.
		for _, k := range evicted {
			delete(ad.members, k)
		}
	}
	if ad.o.Obs.Enabled() {
		ad.o.Obs.Gauge("core.pareto.front").Set(float64(ad.archive.Len()))
	}
}

// reward feeds offspring-beats-parent outcomes back to the bandit
// (offspring are parent-major: offspring[p*M+m] descends from top[p]).
// No-op outside Adaptive mode.
func (ad *adaptiveState) reward(offspring, top []*Individual, arms []int, o *Options) {
	if ad.bandit == nil {
		return
	}
	for i, off := range offspring {
		parent := top[i/o.MutantsPerParent]
		r := 0.0
		if off.Fitness > parent.Fitness {
			r = 1.0
		}
		ad.bandit.Update(arms[i], r)
		if o.Obs.Enabled() {
			o.Obs.Histogram("sched.arm.reward." + ad.portfolio[arms[i]].name).Observe(int64(r))
		}
	}
	if o.Obs.Enabled() {
		for i := range ad.portfolio {
			o.Obs.Gauge("sched.arm.mean." + ad.portfolio[i].name).Set(ad.bandit.Mean(i))
		}
	}
}

// snapshotInto attaches the adaptive state to a checkpoint snapshot;
// static runs attach nothing and keep writing version-1 bytes.
func (ad *adaptiveState) snapshotInto(snap *snapshot) {
	if ad.bandit != nil {
		st := ad.bandit.State()
		snap.bandit = &st
	}
	if ad.archive != nil {
		snap.archive = ad.front()
	}
}

// restore rebuilds the adaptive state from a resumed snapshot. Archive
// members re-admit cleanly (the stored set is mutually non-dominated
// and within bound), and their objective vectors are recomputed from
// the persisted coverage snapshots.
func (ad *adaptiveState) restore(snap *snapshot) error {
	if ad.bandit != nil && snap.bandit != nil {
		if err := ad.bandit.Restore(*snap.bandit); err != nil {
			return err
		}
	}
	if ad.archive != nil {
		ad.observe(snap.archive)
	}
	return nil
}

// front returns the archive members sorted by (mean objective desc,
// genotype hash asc); nil outside Pareto mode.
func (ad *adaptiveState) front() []*Individual {
	if ad.archive == nil {
		return nil
	}
	out := make([]*Individual, 0, len(ad.members))
	for _, e := range ad.archive.Entries() {
		if ind, ok := ad.members[e.Key]; ok {
			out = append(out, ind)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Fitness != out[b].Fitness {
			return out[a].Fitness > out[b].Fitness
		}
		return hashGenotype(out[a].G) < hashGenotype(out[b].G)
	})
	return out
}
