package core

import (
	"encoding/binary"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/mutate"
	"harpocrates/internal/sched"
	"harpocrates/internal/stats"
)

// TestStaticPathBitIdentity is the flags-off acceptance gate: with
// Adaptive and Pareto unset, Run must replay the exact legacy
// trajectory. The test replicates the static loop independently —
// same RNG stream, same draw order, same selection and mutation
// schedule — and demands an identical fitness history and final best
// genotype. Any extra RNG draw, reordered selection or changed
// dispatch on the static path breaks this immediately.
func TestStaticPathBitIdentity(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	got, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}

	// Independent replica of the legacy loop.
	ref := tinyOptions(coverage.IntAdder)
	if err := ref.normalize(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(stats.DeriveSource(ref.Seed, 0))
	pop := make([]*Individual, ref.PopSize)
	for i := range pop {
		pop[i] = &Individual{G: gen.NewRandom(&ref.Gen, rng)}
	}
	grade := func(inds []*Individual) {
		for _, ind := range inds {
			res := GradeGenotype(ind.G, &ref.Gen, ref.Core, ref.Metric)
			ind.Fitness, ind.Snapshot = res.Fitness, res.Snapshot
		}
	}
	grade(pop)
	var best []float64
	for it := 0; it < ref.Iterations; it++ {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].Fitness > pop[b].Fitness })
		top := pop[:ref.TopK]
		best = append(best, top[0].Fitness)
		if it == ref.Iterations-1 {
			break
		}
		var offspring []*Individual
		for _, parent := range top {
			for m := 0; m < ref.MutantsPerParent; m++ {
				offspring = append(offspring, &Individual{G: mutate.ReplaceAll(parent.G, &ref.Gen, rng)})
			}
		}
		grade(offspring)
		pop = append(append([]*Individual(nil), top...), offspring...)
	}
	sort.SliceStable(pop, func(a, b int) bool { return pop[a].Fitness > pop[b].Fitness })

	if !reflect.DeepEqual(got.History.Best, best) {
		t.Errorf("static Run fitness history diverged from the legacy loop:\nRun:    %v\nlegacy: %v",
			got.History.Best, best)
	}
	if got.Best.G.Hash() != pop[0].G.Hash() || got.Best.Fitness != pop[0].Fitness {
		t.Errorf("static Run best diverged: hash %#x fitness %v, legacy hash %#x fitness %v",
			got.Best.G.Hash(), got.Best.Fitness, pop[0].G.Hash(), pop[0].Fitness)
	}
	if got.Front != nil {
		t.Error("static run returned a Pareto front")
	}
}

func adaptiveTinyOptions() Options {
	o := tinyOptions(coverage.IntAdder)
	o.Adaptive = true
	o.Pareto = true
	return o
}

// frontFingerprint reduces a Pareto front to a comparable value.
func frontFingerprint(front []*Individual) []uint64 {
	out := make([]uint64, len(front))
	for i, ind := range front {
		out[i] = ind.G.Hash()
	}
	return out
}

// TestAdaptiveDeterministic: adaptive+Pareto runs under a fixed seed
// are bit-reproducible — history, best genotype and the full front.
func TestAdaptiveDeterministic(t *testing.T) {
	a, err := Run(adaptiveTinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(adaptiveTinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !historyEqual(a.History, b.History) {
		t.Errorf("adaptive history not reproducible:\n%+v\n%+v", a.History, b.History)
	}
	if a.Best.G.Hash() != b.Best.G.Hash() {
		t.Errorf("adaptive best not reproducible: %#x vs %#x", a.Best.G.Hash(), b.Best.G.Hash())
	}
	if !reflect.DeepEqual(frontFingerprint(a.Front), frontFingerprint(b.Front)) {
		t.Errorf("adaptive front not reproducible:\n%v\n%v",
			frontFingerprint(a.Front), frontFingerprint(b.Front))
	}
	if len(a.Front) == 0 {
		t.Error("Pareto run returned an empty front")
	}
}

// TestAdaptiveResumeBitIdentical: the checkpoint/resume guarantee
// extends to adaptive runs — the bandit arm state and the Pareto
// archive ride the (version 2) snapshot, so an interrupted adaptive
// run replays the identical trajectory including the exported front.
func TestAdaptiveResumeBitIdentical(t *testing.T) {
	const full = 6

	ref := adaptiveTinyOptions()
	ref.Iterations = full
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(t.TempDir(), "run.hxck")
	part := adaptiveTinyOptions()
	part.Iterations = full / 2
	part.CheckpointPath = ck
	if _, err := Run(part); err != nil {
		t.Fatal(err)
	}

	res := adaptiveTinyOptions()
	res.Iterations = full
	res.CheckpointPath = ck
	res.Resume = true
	got, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}

	if !historyEqual(got.History, want.History) {
		t.Errorf("resumed adaptive history diverged:\nresumed:       %+v\nuninterrupted: %+v",
			got.History, want.History)
	}
	if got.Best.G.Hash() != want.Best.G.Hash() || got.Best.Fitness != want.Best.Fitness {
		t.Errorf("resumed adaptive best diverged: hash %#x fitness %v, want %#x %v",
			got.Best.G.Hash(), got.Best.Fitness, want.Best.G.Hash(), want.Best.Fitness)
	}
	if !reflect.DeepEqual(frontFingerprint(got.Front), frontFingerprint(want.Front)) {
		t.Errorf("resumed adaptive front diverged:\nresumed: %v\nwant:    %v",
			frontFingerprint(got.Front), frontFingerprint(want.Front))
	}
}

// TestCrossModeResumeRefused: a static snapshot must not resume an
// adaptive run and vice versa — the trajectories differ, so silently
// continuing would break the bit-identity guarantee.
func TestCrossModeResumeRefused(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "static.hxck")
	o := tinyOptions(coverage.IntAdder)
	o.Iterations = 3
	o.CheckpointPath = ck
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	bad := adaptiveTinyOptions()
	bad.CheckpointPath = ck
	bad.Resume = true
	if _, err := Run(bad); err == nil {
		t.Fatal("adaptive resume of a static checkpoint succeeded; want mismatch error")
	}

	ck2 := filepath.Join(t.TempDir(), "adaptive.hxck")
	a := adaptiveTinyOptions()
	a.Iterations = 3
	a.CheckpointPath = ck2
	if _, err := Run(a); err != nil {
		t.Fatal(err)
	}
	bad2 := tinyOptions(coverage.IntAdder)
	bad2.CheckpointPath = ck2
	bad2.Resume = true
	if _, err := Run(bad2); err == nil {
		t.Fatal("static resume of an adaptive checkpoint succeeded; want mismatch error")
	}
}

// TestSnapshotVersionByMode: static runs keep writing version-1
// snapshot bytes (the cross-release compatibility contract); adaptive
// or Pareto runs write version 2.
func TestSnapshotVersionByMode(t *testing.T) {
	version := func(o Options) uint32 {
		ck := filepath.Join(t.TempDir(), "run.hxck")
		o.Iterations = 2
		o.CheckpointPath = ck
		if _, err := Run(o); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(ck)
		if err != nil {
			t.Fatal(err)
		}
		return binary.LittleEndian.Uint32(raw[4:8])
	}
	if v := version(tinyOptions(coverage.IntAdder)); v != snapVersion {
		t.Errorf("static snapshot version = %d, want %d", v, snapVersion)
	}
	if v := version(adaptiveTinyOptions()); v != snapVersionAdaptive {
		t.Errorf("adaptive snapshot version = %d, want %d", v, snapVersionAdaptive)
	}
}

// TestParetoFrontNonDominated: the exported front is mutually
// non-dominated over the six-objective vectors, sorted by mean
// objective descending, and its scalar fitness is the mean objective.
func TestParetoFrontNonDominated(t *testing.T) {
	o := tinyOptions(coverage.IntAdder)
	o.Pareto = true // Pareto without the bandit exercises that split too
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	vecs := make([][]float64, len(res.Front))
	for i, ind := range res.Front {
		vecs[i] = paretoVector(&ind.Snapshot)
		if got := paretoScalar(vecs[i]); ind.Fitness != got {
			t.Errorf("front[%d] fitness %v != mean objective %v", i, ind.Fitness, got)
		}
	}
	for i := range vecs {
		for j := range vecs {
			if i != j && sched.Dominates(vecs[i], vecs[j]) {
				t.Errorf("front[%d] dominates front[%d]: %v > %v", i, j, vecs[i], vecs[j])
			}
		}
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i-1].Fitness < res.Front[i].Fitness {
			t.Errorf("front not sorted by mean objective: [%d]=%v < [%d]=%v",
				i-1, res.Front[i-1].Fitness, i, res.Front[i].Fitness)
		}
	}
	if len(res.Front) > 64 {
		t.Errorf("front exceeds the default archive bound: %d members", len(res.Front))
	}
}
