// Package core implements the Harpocrates program-refinement loop
// (paper §IV, Fig. 7): Generator → Evaluator → selection → Mutator,
// iterated until the hardware-coverage metric converges.
//
// The flow mirrors a genetic algorithm: a population of genotypes is
// materialized into programs, each program is graded on the
// microarchitectural simulator with a structure-specific coverage metric
// (the fitness function), the top-K fittest advance, and each survivor
// is mutated M times to produce the next generation. Elites are carried
// over, so the best coverage is monotone (paper Fig. 10: "the maximum
// coverage is retained for subsequent iterations").
package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"time"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
	"harpocrates/internal/mutate"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/sched"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// Options configures one Harpocrates run.
type Options struct {
	// Structure is the target hardware structure.
	Structure coverage.Structure
	// Metric overrides the default coverage metric for the structure.
	Metric coverage.Metric

	// Gen configures the generator (program size, pool, policies).
	Gen gen.Config
	// Core configures the evaluation engine; tracking flags for the
	// target structure are enabled automatically.
	Core uarch.Config

	// PopSize, TopK and MutantsPerParent define the GA shape
	// (paper §VI-B: 96/16/6 for the IRF, 32/8/4 for functional units).
	PopSize          int
	TopK             int
	MutantsPerParent int

	// Iterations is the number of refinement loops.
	Iterations int
	// ConvergeWindow/ConvergeEps stop early when the best fitness
	// improves by less than eps over the window (0 disables).
	ConvergeWindow int
	ConvergeEps    float64

	Seed    uint64
	Workers int

	// OnIteration, if set, observes each completed iteration (used by
	// the experiment harnesses to checkpoint detection measurements).
	OnIteration func(it int, best *Individual)

	// OnTopK, if set, observes the full survivor set of each iteration
	// (the corpus layer uses it to auto-archive elites). Like
	// OnIteration it is purely observational.
	OnTopK func(it int, top []*Individual)

	// Seeds optionally provides initial genotypes (corpus elites from an
	// earlier run). The first len(Seeds) population slots are cloned
	// from the seeds; the rest are generated randomly. Seeds beyond
	// PopSize are ignored.
	Seeds []*gen.Genotype

	// CheckpointPath, if set, persists a campaign snapshot (population,
	// RNG state, iteration counter, history, fitness memo) to this file
	// after every CheckpointEvery-th iteration, via atomic rename.
	CheckpointPath string
	// CheckpointEvery is the snapshot stride in iterations (0 = 1).
	CheckpointEvery int
	// Resume restarts from the snapshot at CheckpointPath when one
	// exists (a fresh run otherwise). The resumed trajectory — History,
	// best genotype, convergence — is bit-identical to the same run
	// left uninterrupted (wall-clock Times excepted). The snapshot
	// records a hash of the run-shaping options; resuming with a
	// mismatched configuration fails rather than silently diverging.
	// Iterations and the convergence knobs are intentionally excluded
	// from the hash so an interrupted run can resume with a larger
	// iteration budget.
	Resume bool

	// Mutate overrides the mutation strategy (default: uniform
	// instruction replacement, mutate.ReplaceAll — the paper's choice,
	// §V-B1). Used by the mutation-strategy ablation. Ignored when
	// Adaptive is set (the bandit owns operator choice).
	Mutate func(parent *gen.Genotype, cfg *gen.Config, rng *rand.Rand) *gen.Genotype

	// Adaptive replaces the fixed mutation schedule with a UCB1 bandit
	// over the operator portfolio (ReplaceAll, Point, BlockSwap, Splice,
	// CrossoverK), rewarded by offspring-beats-parent outcomes. All
	// bandit randomness comes from the loop's single PCG stream and the
	// bandit state rides the checkpoint, so adaptive runs stay
	// deterministic and resume bit-identically. Off (the default) keeps
	// the static schedule bit-identical to previous releases.
	Adaptive bool
	// Sched tunes the bandit (zero value = defaults). Only read when
	// Adaptive is set.
	Sched sched.Config

	// Pareto evolves one population against the paper's six structures
	// at once (IRF, L1D, IntAdder, IntMul, FPAdd, FPMul) instead of six
	// independent runs: selection ranks by non-dominated front then
	// crowding distance, scalar Fitness becomes the mean objective, and
	// a bounded cross-generation Pareto archive is maintained and
	// returned as Result.Front.
	Pareto bool
	// ParetoBound caps the Pareto archive (0 = default 64).
	ParetoBound int

	// Evaluator, if set, replaces in-process grading of uncached
	// individuals with a pluggable backend (the internal/dist worker
	// pool fans batches out over HTTP). The fitness memo stays local;
	// only genotypes without a memoized grade are batched out. Any
	// backend honoring the GradeGenotype contract keeps the trajectory
	// bit-identical to a local run. Nil (the default) grades in process.
	Evaluator Evaluator

	// Obs, if set, receives the run's metrics (per-phase wall-clock
	// timings, simulator counters, population diversity, mutation
	// effectiveness) and a trace span per iteration. Observation is
	// passive: it never perturbs the optimization trajectory. Nil
	// disables all instrumentation.
	Obs *obs.Observer
}

// Individual is one member of the population with its evaluation.
type Individual struct {
	G        *gen.Genotype
	Fitness  float64
	Snapshot coverage.Snapshot
}

// Program materializes the individual's phenotype.
func (ind *Individual) Program(cfg *gen.Config) *prog.Program {
	return gen.Materialize(ind.G, cfg)
}

// StepTimes is the single-loop-step duration breakdown (paper Table I).
type StepTimes struct {
	Mutation    time.Duration
	Generation  time.Duration
	Compilation time.Duration
	Evaluation  time.Duration
}

// Total returns the summed step duration.
func (s StepTimes) Total() time.Duration {
	return s.Mutation + s.Generation + s.Compilation + s.Evaluation
}

// History records the optimization trajectory.
type History struct {
	// Best[i] is the best fitness at iteration i; MeanTopK[i] the mean
	// fitness of the survivors.
	Best     []float64
	MeanTopK []float64
	// Times accumulates the per-phase durations across all iterations.
	Times StepTimes
	// EvaluatedPrograms and EvaluatedInstructions count the grading
	// throughput (paper §VI-A).
	EvaluatedPrograms     int
	EvaluatedInstructions uint64
	// CacheHits counts individuals whose fitness was served from the
	// genotype memo instead of a fresh simulation (mutation can reproduce
	// a genotype already graded in an earlier generation).
	CacheHits int
}

// Result is the outcome of a Harpocrates run.
type Result struct {
	Best       *Individual
	TopK       []*Individual
	History    *History
	Iterations int
	Converged  bool
	// Front is the cross-generation Pareto archive (Options.Pareto runs
	// only; nil otherwise), sorted by mean objective desc then genotype
	// hash for determinism.
	Front []*Individual
}

// normalize fills defaults.
func (o *Options) normalize() error {
	if o.PopSize == 0 {
		o.PopSize = 96
	}
	if o.TopK == 0 {
		o.TopK = 16
	}
	if o.MutantsPerParent == 0 {
		o.MutantsPerParent = o.PopSize / o.TopK
	}
	if o.Iterations == 0 {
		o.Iterations = 100
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	// Defaults apply field-wise: a caller setting only some generator or
	// core fields (a custom variant pool, a custom cache geometry) keeps
	// them, and only the unset fields take defaults. (This used to
	// replace the entire Gen config when NumInstrs was zero and the
	// entire Core config when ROBSize was zero, silently discarding
	// every other caller-set field.)
	genDef := gen.DefaultConfig()
	if o.Gen.NumInstrs == 0 {
		o.Gen.NumInstrs = genDef.NumInstrs
	}
	if len(o.Gen.Allowed) == 0 {
		o.Gen.Allowed = gen.DefaultPool()
	}
	if o.Gen.Mem.RegionBytes == 0 {
		o.Gen.Mem.RegionBytes = genDef.Mem.RegionBytes
	}
	if o.Gen.Mem.Stride == 0 {
		o.Gen.Mem.Stride = genDef.Mem.Stride
	}
	if o.Metric.Score == nil {
		o.Metric = coverage.MetricFor(o.Structure)
	}
	o.Core = o.Core.WithDefaults()
	switch o.Structure {
	case coverage.IRF:
		o.Core.TrackIRF = true
	case coverage.L1D:
		o.Core.TrackL1D = true
	case coverage.FPRF:
		o.Core.TrackFPRF = true
	default:
		o.Core.TrackIBR = true
	}
	if o.Pareto {
		// Multi-structure objectives need every tracker the six paper
		// structures read from.
		o.Core.TrackIRF = true
		o.Core.TrackL1D = true
		o.Core.TrackIBR = true
		if o.ParetoBound <= 0 {
			o.ParetoBound = 64
		}
	}
	if o.Adaptive {
		o.Sched = o.Sched.WithDefaults()
	}
	if o.Mutate == nil {
		o.Mutate = mutate.ReplaceAll
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.TopK > o.PopSize {
		return fmt.Errorf("core: TopK %d > PopSize %d", o.TopK, o.PopSize)
	}
	return nil
}

// evalCache memoizes fitness by genotype content hash. Evaluation is
// deterministic — the same genotype always materializes to the same
// program and grades to the same fitness — so mutation re-creating an
// already-graded genotype (e.g. a no-op mutation draw) need not be
// simulated again. Serving cached values preserves the GA trajectory
// exactly.
type evalCache struct {
	mu sync.Mutex
	m  map[uint64]evalEntry
}

type evalEntry struct {
	fitness float64
	snap    coverage.Snapshot
}

// hashGenotype keys a genotype by content (gen.Genotype.Hash: the
// materialization seed and every variant, folded in order).
func hashGenotype(g *gen.Genotype) uint64 { return g.Hash() }

func (ec *evalCache) get(key uint64) (evalEntry, bool) {
	ec.mu.Lock()
	e, ok := ec.m[key]
	ec.mu.Unlock()
	return e, ok
}

func (ec *evalCache) put(key uint64, e evalEntry) {
	ec.mu.Lock()
	ec.m[key] = e
	ec.mu.Unlock()
}

// Run executes the Harpocrates loop.
func Run(o Options) (*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	if o.Evaluator != nil {
		if err := o.Evaluator.Configure(o.Structure, o.Gen, o.Core); err != nil {
			return nil, fmt.Errorf("core: configure evaluator: %w", err)
		}
	}
	// The RNG source is held explicitly (not just behind *rand.Rand) so
	// checkpoints can marshal and restore the exact generator state.
	src := stats.DeriveSource(o.Seed, 0)
	rng := rand.New(src)
	hist := &History{}
	memo := &evalCache{m: make(map[uint64]evalEntry)}
	ad := newAdaptiveState(&o)

	stopRun := o.Obs.Phase("core.run")
	runSpan := o.Obs.Span("run", obs.Fields{
		"structure": o.Structure.String(), "pop": o.PopSize, "topk": o.TopK,
		"mutants_per_parent": o.MutantsPerParent, "iterations": o.Iterations,
		"num_instrs": o.Gen.NumInstrs, "seed": o.Seed,
	})

	var pop []*Individual
	startIt := 0
	if snap, err := maybeResume(&o); err != nil {
		stopRun()
		runSpan.End(obs.Fields{"error": err.Error()})
		return nil, err
	} else if snap != nil {
		if err := src.UnmarshalBinary(snap.rng); err != nil {
			stopRun()
			runSpan.End(obs.Fields{"error": err.Error()})
			return nil, fmt.Errorf("core: restore rng state: %w", err)
		}
		pop = snap.pop
		*hist = *snap.hist
		memo.m = snap.memo
		startIt = snap.nextIt
		if err := ad.restore(snap); err != nil {
			stopRun()
			runSpan.End(obs.Fields{"error": err.Error()})
			return nil, err
		}
		o.Obs.Counter("core.resumes").Inc()
		runSpan.Event("resume", obs.Fields{"iteration": startIt, "pop": len(pop)})
	} else {
		// Step 0: the Generator bootstraps the initial population. Corpus
		// seeds (archived elites) fill the first slots; the remainder is
		// generated randomly as in a cold start.
		t0 := time.Now()
		stopGen := o.Obs.Phase("core.phase.generate")
		pop = make([]*Individual, o.PopSize)
		for i := range pop {
			if i < len(o.Seeds) {
				pop[i] = &Individual{G: o.Seeds[i].Clone()}
			} else {
				pop[i] = &Individual{G: gen.NewRandom(&o.Gen, rng)}
			}
		}
		stopGen()
		hist.Times.Generation += time.Since(t0)

		if err := evaluate(pop, &o, hist, memo); err != nil {
			stopRun()
			runSpan.End(obs.Fields{"error": err.Error()})
			return nil, err
		}
		ad.observe(pop)
	}

	converged := false
	it := startIt
	for ; it < o.Iterations; it++ {
		itSpan := runSpan.Child("iteration", obs.Fields{"it": it})

		// Step 2: selection — advance the top-K programs. Pareto mode
		// ranks by (non-dominated front, crowding distance) instead of
		// scalar fitness.
		stopSel := o.Obs.Phase("core.phase.select")
		if o.Pareto {
			paretoSort(pop)
		} else {
			sort.SliceStable(pop, func(a, b int) bool { return pop[a].Fitness > pop[b].Fitness })
		}
		top := pop[:o.TopK]

		hist.Best = append(hist.Best, top[0].Fitness)
		mean := 0.0
		for _, ind := range top {
			mean += ind.Fitness
		}
		hist.MeanTopK = append(hist.MeanTopK, mean/float64(len(top)))

		itFields := obs.Fields{
			"best": top[0].Fitness, "mean_topk": mean / float64(len(top)),
			"cache_hits": hist.CacheHits, "evaluated": hist.EvaluatedPrograms,
		}
		if o.Obs.Enabled() {
			o.Obs.Counter("core.iterations").Inc()
			div := diversity(pop)
			gs := make([]*gen.Genotype, len(top))
			for i, ind := range top {
				gs[i] = ind.G
			}
			usage := gen.PoolUsage(&o.Gen, gs)
			o.Obs.Gauge("core.pop.diversity").Set(div)
			o.Obs.Gauge("core.pool.usage").Set(usage)
			itFields["diversity"] = div
			itFields["pool_usage"] = usage
		}
		stopSel()

		if o.OnIteration != nil || o.OnTopK != nil {
			stopCb := o.Obs.Phase("core.phase.callback")
			if o.OnIteration != nil {
				o.OnIteration(it, top[0])
			}
			if o.OnTopK != nil {
				o.OnTopK(it, top)
			}
			stopCb()
		}
		if o.ConvergeWindow > 0 && len(hist.Best) > o.ConvergeWindow {
			prev := hist.Best[len(hist.Best)-1-o.ConvergeWindow]
			if hist.Best[len(hist.Best)-1]-prev < o.ConvergeEps {
				converged = true
				itSpan.End(itFields)
				it++
				break
			}
		}
		if it == o.Iterations-1 {
			itSpan.End(itFields)
			it++
			break
		}

		// Step 3: mutation — each survivor yields M offspring. Under
		// Adaptive the bandit picks each offspring's operator; otherwise
		// the static schedule applies o.Mutate uniformly.
		tm := time.Now()
		stopMut := o.Obs.Phase("core.phase.mutate")
		offspring := make([]*Individual, 0, o.TopK*o.MutantsPerParent)
		var arms []int
		if ad.bandit != nil {
			arms = make([]int, 0, o.TopK*o.MutantsPerParent)
			for _, parent := range top {
				for m := 0; m < o.MutantsPerParent; m++ {
					a := ad.bandit.Select(rng)
					arms = append(arms, a)
					child := ad.portfolio[a].apply(parent.G, top, &o.Gen, rng)
					offspring = append(offspring, &Individual{G: child})
					if o.Obs.Enabled() {
						o.Obs.Counter("sched.arm.selected." + ad.portfolio[a].name).Inc()
					}
				}
			}
		} else {
			for _, parent := range top {
				for m := 0; m < o.MutantsPerParent; m++ {
					offspring = append(offspring, &Individual{G: o.Mutate(parent.G, &o.Gen, rng)})
				}
			}
		}
		stopMut()
		hist.Times.Mutation += time.Since(tm)

		// Step 1 (next cycle): evaluate the offspring; elites keep their
		// cached fitness.
		if err := evaluate(offspring, &o, hist, memo); err != nil {
			itSpan.End(obs.Fields{"error": err.Error()})
			stopRun()
			runSpan.End(obs.Fields{"error": err.Error()})
			return nil, err
		}
		ad.observe(offspring)
		ad.reward(offspring, top, arms, &o)

		if o.Obs.Enabled() {
			// Mutation effectiveness: how offspring fitness moved against
			// the parent (offspring are appended parent-major, so
			// offspring[p*M+m] descends from top[p]).
			improved, neutral, degraded := 0, 0, 0
			for i, off := range offspring {
				parent := top[i/o.MutantsPerParent]
				switch {
				case off.Fitness > parent.Fitness:
					improved++
				case off.Fitness < parent.Fitness:
					degraded++
				default:
					neutral++
				}
			}
			o.Obs.Counter("core.mutation.improved").Add(int64(improved))
			o.Obs.Counter("core.mutation.neutral").Add(int64(neutral))
			o.Obs.Counter("core.mutation.degraded").Add(int64(degraded))
			itFields["mut_improved"] = improved
			itFields["mut_neutral"] = neutral
			itFields["mut_degraded"] = degraded
		}
		itSpan.End(itFields)

		next := make([]*Individual, 0, o.TopK+len(offspring))
		next = append(next, top...)
		next = append(next, offspring...)
		pop = next

		// The end of a full iteration body is the snapshot point: the next
		// population is assembled and evaluated, the RNG has consumed this
		// iteration's mutation draws, and History holds entries 0..it.
		// A run resumed from here is on the identical trajectory.
		if o.CheckpointPath != "" && (it+1)%o.CheckpointEvery == 0 {
			stopCk := o.Obs.Phase("core.phase.checkpoint")
			snap := &snapshot{
				optsHash: o.resumeHash(),
				nextIt:   it + 1,
				rng:      mustMarshalRNG(src),
				hist:     hist,
				pop:      pop,
				memo:     memo.m,
			}
			ad.snapshotInto(snap)
			err := writeSnapshot(o.CheckpointPath, snap)
			stopCk()
			if err != nil {
				stopRun()
				runSpan.End(obs.Fields{"error": err.Error()})
				return nil, err
			}
			o.Obs.Counter("core.checkpoints").Inc()
		}
	}

	if o.Pareto {
		paretoSort(pop)
	} else {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].Fitness > pop[b].Fitness })
	}
	res := &Result{
		Best:       pop[0],
		TopK:       append([]*Individual(nil), pop[:o.TopK]...),
		History:    hist,
		Iterations: it,
		Converged:  converged,
		Front:      ad.front(),
	}
	stopRun()
	runSpan.End(obs.Fields{
		"iterations": it, "converged": converged, "best": res.Best.Fitness,
		"evaluated": hist.EvaluatedPrograms, "cache_hits": hist.CacheHits,
	})
	return res, nil
}

// diversity is the fraction of distinct genotypes in a population
// (content-hashed); 1.0 means no duplicates, low values mean mutation
// keeps reproducing the same candidates.
func diversity(pop []*Individual) float64 {
	if len(pop) == 0 {
		return 0
	}
	seen := make(map[uint64]struct{}, len(pop))
	for _, ind := range pop {
		seen[hashGenotype(ind.G)] = struct{}{}
	}
	return float64(len(seen)) / float64(len(pop))
}

// evaluate materializes and grades a set of individuals in parallel,
// accounting generation/compilation/evaluation time (Table I). Fitness
// is memoized by genotype hash: duplicates are served from memo without
// touching the simulator. When Options.Evaluator is set, uncached
// genotypes are batched to it instead of being graded in process.
func evaluate(inds []*Individual, o *Options, hist *History, memo *evalCache) error {
	if o.Evaluator != nil {
		return evaluateRemote(inds, o, hist, memo)
	}
	stopEval := o.Obs.Phase("core.phase.evaluate")
	defer stopEval()

	var genNS, compNS, evalNS, instrs, hits int64
	var mu sync.Mutex
	var sim simTotals

	work := make(chan *Individual)
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var g, c, e, n, h int64
			var st simTotals
			for ind := range work {
				key := hashGenotype(ind.G)
				if cached, ok := memo.get(key); ok {
					ind.Fitness = cached.fitness
					ind.Snapshot = cached.snap
					h++
					continue
				}
				res, r, tm := gradeTimed(ind.G, &o.Gen, o.Core, o.Metric)
				ind.Fitness = res.Fitness
				ind.Snapshot = res.Snapshot
				memo.put(key, evalEntry{fitness: ind.Fitness, snap: ind.Snapshot})
				g += tm.genNS
				c += tm.compNS
				e += tm.evalNS
				n += tm.insts
				st.add(r)
				if o.Obs.Enabled() {
					o.Obs.Histogram("core.eval.ns").Observe(tm.evalNS)
				}
			}
			mu.Lock()
			genNS += g
			compNS += c
			evalNS += e
			instrs += n
			hits += h
			sim.merge(st)
			mu.Unlock()
		}()
	}
	for _, ind := range inds {
		work <- ind
	}
	close(work)
	wg.Wait()

	hist.Times.Generation += time.Duration(genNS)
	hist.Times.Compilation += time.Duration(compNS)
	hist.Times.Evaluation += time.Duration(evalNS)
	hist.EvaluatedPrograms += len(inds)
	hist.EvaluatedInstructions += uint64(instrs)
	hist.CacheHits += int(hits)

	if o.Obs.Enabled() {
		o.Obs.Counter("core.sim.cycles").Add(sim.cycles)
		o.Obs.Counter("core.sim.instructions").Add(sim.instructions)
		o.Obs.Counter("core.sim.branches").Add(sim.branches)
		o.Obs.Counter("core.sim.mispredicts").Add(sim.mispredicts)
		o.Obs.Counter("core.sim.flushes").Add(sim.flushes)
		o.Obs.Counter("core.sim.cache_hits").Add(sim.cacheHits)
		o.Obs.Counter("core.sim.cache_misses").Add(sim.cacheMisses)
		if sim.cycles > 0 {
			o.Obs.Gauge("core.sim.ipc").Set(float64(sim.instructions) / float64(sim.cycles))
		}
	}
	return nil
}

// simTotals aggregates simulator counters across one evaluate batch.
type simTotals struct {
	cycles, instructions, branches, mispredicts, flushes int64
	cacheHits, cacheMisses                               int64
}

func (s *simTotals) add(r *uarch.Result) {
	s.cycles += int64(r.Cycles)
	s.instructions += int64(r.Instructions)
	s.branches += int64(r.Branches)
	s.mispredicts += int64(r.Mispredicts)
	s.flushes += int64(r.Flushes)
	s.cacheHits += int64(r.CacheHits)
	s.cacheMisses += int64(r.CacheMisses)
}

func (s *simTotals) merge(o simTotals) {
	s.cycles += o.cycles
	s.instructions += o.instructions
	s.branches += o.branches
	s.mispredicts += o.mispredicts
	s.flushes += o.flushes
	s.cacheHits += o.cacheHits
	s.cacheMisses += o.cacheMisses
}

// PresetFor returns the paper's per-structure loop configuration
// (§VI-B), scaled by the given factor: scale 1 is CI-sized; the paper's
// full parameters are reached around scale 8-16 depending on structure.
func PresetFor(st coverage.Structure, scale int) Options {
	if scale < 1 {
		scale = 1
	}
	o := Options{Structure: st}
	o.Gen = gen.DefaultConfig()
	switch st {
	case coverage.IRF:
		// Paper: 10K instructions, 96 programs, top 16 x 6 mutants.
		o.Gen.NumInstrs = min(10000, 1250*scale)
		o.PopSize, o.TopK, o.MutantsPerParent = 24, 4, 6
		o.Iterations = min(5000, 500*scale)
	case coverage.FPRF:
		// Extension target: like the IRF but with selection biased toward
		// XMM-writing variants so random programs populate the FP file.
		o.Gen.NumInstrs = min(10000, 1250*scale)
		o.Gen.Weights = fpHeavyWeights(o.Gen.Allowed)
		o.PopSize, o.TopK, o.MutantsPerParent = 24, 4, 6
		o.Iterations = min(5000, 150*scale)
	case coverage.L1D:
		// Paper: 30K instructions, sequential fixed-stride references in
		// a region intentionally sized to the 32 KB data cache — the
		// cache-aware constraints behind the ~77% starting coverage
		// (§VI-B2). Our sensitivity analysis on this cache model selects
		// a line-granular stride (64 B; the paper's gem5 model preferred
		// 8 B) — see BenchmarkAblationL1DConstraints.
		o.Gen.NumInstrs = min(30000, 8000*scale)
		o.Gen.Mem = gen.MemPolicy{RegionBytes: 32 * 1024, Stride: 64}
		o.Gen.Weights = memHeavyWeights(o.Gen.Allowed)
		o.PopSize, o.TopK, o.MutantsPerParent = 24, 4, 6
		o.Iterations = min(2000, 60*scale)
	default:
		// Functional units: 5K instructions, 32 programs, top 8 x 4.
		o.Gen.NumInstrs = min(5000, 625*scale)
		o.PopSize, o.TopK, o.MutantsPerParent = 16, 4, 4
		o.Iterations = min(1000, 400*scale)
	}
	return o
}

// fpHeavyWeights biases instruction selection toward variants with XMM
// operands (the FPRF preset).
func fpHeavyWeights(allowed []isa.VariantID) []float64 {
	w := make([]float64, len(allowed))
	for i, id := range allowed {
		w[i] = 1
		for _, spec := range isa.Lookup(id).Ops {
			if spec.Kind == isa.KXmm {
				w[i] = 5
				break
			}
		}
	}
	return w
}

// memHeavyWeights biases instruction selection toward memory-bearing
// variants (the L1D preset's cache-aware constraint).
func memHeavyWeights(allowed []isa.VariantID) []float64 {
	w := make([]float64, len(allowed))
	for i, id := range allowed {
		if isa.Lookup(id).HasMemOperand() {
			w[i] = 4
		} else {
			w[i] = 1
		}
	}
	return w
}
