// Package ace implements ACE (Architecturally Correct Execution) lifetime
// analysis for bit-array structures, the hardware-coverage metric the
// paper uses for the physical register file and the L1 data cache
// (§II-D, Fig. 3). A bit is ACE during intervals that must be correct for
// the program's architectural output: write→read and read→read intervals;
// read→write, write→overwrite and clean-eviction tails are un-ACE; a
// dirty cache byte is ACE up to its writeback.
//
// The trackers are driven by the out-of-order core model with events from
// *committed* instructions only. Because commit order is program order
// but event cycles come from out-of-order execution, an event may carry a
// cycle smaller than the bit's last recorded event; intervals are clamped
// at zero in that case (a bounded, documented approximation).
package ace

// RegFileTracker performs per-bit ACE lifetime accounting for a physical
// register file of 64-bit entries.
type RegFileTracker struct {
	numRegs   int
	lastEvent []uint64 // (reg*64 + bit) -> cycle of last write or read
	live      []bool   // reg -> currently allocated and written
	aceCycles uint64   // accumulated ACE bit-cycles

	// IgnoreWidths makes every read credit all 64 bits regardless of the
	// consumer's operand width (the width-mask ablation of DESIGN.md §4).
	IgnoreWidths bool
}

// NewRegFileTracker creates a tracker for numRegs 64-bit registers.
func NewRegFileTracker(numRegs int) *RegFileTracker {
	return &RegFileTracker{
		numRegs:   numRegs,
		lastEvent: make([]uint64, numRegs*64),
		live:      make([]bool, numRegs),
	}
}

// NumRegs returns the tracked register count (for tracker reuse).
func (t *RegFileTracker) NumRegs() int { return t.numRegs }

// Reset returns the tracker to its freshly-constructed state so a pooled
// simulator can reuse its arrays across runs.
func (t *RegFileTracker) Reset() {
	clear(t.lastEvent)
	clear(t.live)
	t.aceCycles = 0
	t.IgnoreWidths = false
}

// CloneInto deep-copies the tracker into dst, reusing dst's arrays when
// the sizes match (simulator checkpoint/restore). Returns dst (or a
// fresh tracker when dst is nil or mismatched).
func (t *RegFileTracker) CloneInto(dst *RegFileTracker) *RegFileTracker {
	if dst == nil || dst.numRegs != t.numRegs {
		dst = NewRegFileTracker(t.numRegs)
	}
	copy(dst.lastEvent, t.lastEvent)
	copy(dst.live, t.live)
	dst.aceCycles = t.aceCycles
	dst.IgnoreWidths = t.IgnoreWidths
	return dst
}

// OnWrite records that physical register p was written at cycle. The
// interval since the previous event is un-ACE (the old value was not
// needed past its last read).
func (t *RegFileTracker) OnWrite(p int, cycle uint64) {
	if p < 0 || p >= t.numRegs {
		return
	}
	base := p * 64
	for b := 0; b < 64; b++ {
		t.lastEvent[base+b] = cycle
	}
	t.live[p] = true
}

// OnRead records a read of the low widthBits of p at cycle, crediting
// the interval since the last event of each read bit as ACE.
func (t *RegFileTracker) OnRead(p int, widthBits int, cycle uint64) {
	if p < 0 || p >= t.numRegs || !t.live[p] {
		return
	}
	if widthBits > 64 || t.IgnoreWidths {
		widthBits = 64
	}
	base := p * 64
	for b := 0; b < widthBits; b++ {
		if cycle > t.lastEvent[base+b] {
			t.aceCycles += cycle - t.lastEvent[base+b]
			t.lastEvent[base+b] = cycle
		}
	}
}

// OnFree records that p returned to the free list. The tail interval is
// un-ACE.
func (t *RegFileTracker) OnFree(p int, cycle uint64) {
	if p < 0 || p >= t.numRegs {
		return
	}
	t.live[p] = false
}

// ACEBitCycles returns the accumulated ACE bit-cycles.
func (t *RegFileTracker) ACEBitCycles() uint64 { return t.aceCycles }

// Vulnerability returns the ACE fraction over the whole structure for a
// run of totalCycles: ACE bit-cycles / (bits × cycles). This is the
// AVF-style hardware coverage value in [0, 1].
func (t *RegFileTracker) Vulnerability(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 0
	}
	return float64(t.aceCycles) / (float64(t.numRegs) * 64 * float64(totalCycles))
}

// byte states for the cache tracker.
const (
	byteInvalid = iota
	byteClean   // filled or read, unmodified since fill
	byteDirty   // written since fill
)

// CacheTracker performs per-byte (×8 bits) ACE lifetime accounting for a
// cache data array.
type CacheTracker struct {
	numBytes  int
	lastEvent []uint64
	state     []uint8
	aceCycles uint64 // ACE byte-cycles (multiply by 8 for bit-cycles)
}

// NewCacheTracker creates a tracker for a data array of numBytes bytes.
func NewCacheTracker(numBytes int) *CacheTracker {
	return &CacheTracker{
		numBytes:  numBytes,
		lastEvent: make([]uint64, numBytes),
		state:     make([]uint8, numBytes),
	}
}

// NumBytes returns the tracked data-array size (for tracker reuse).
func (t *CacheTracker) NumBytes() int { return t.numBytes }

// Reset returns the tracker to its freshly-constructed state so a pooled
// simulator can reuse its arrays across runs.
func (t *CacheTracker) Reset() {
	clear(t.lastEvent)
	clear(t.state)
	t.aceCycles = 0
}

// CloneInto deep-copies the tracker into dst, reusing dst's arrays when
// the sizes match (simulator checkpoint/restore). Returns dst (or a
// fresh tracker when dst is nil or mismatched).
func (t *CacheTracker) CloneInto(dst *CacheTracker) *CacheTracker {
	if dst == nil || dst.numBytes != t.numBytes {
		dst = NewCacheTracker(t.numBytes)
	}
	copy(dst.lastEvent, t.lastEvent)
	copy(dst.state, t.state)
	dst.aceCycles = t.aceCycles
	return dst
}

func (t *CacheTracker) credit(idx int, cycle uint64) {
	if cycle > t.lastEvent[idx] {
		t.aceCycles += cycle - t.lastEvent[idx]
		t.lastEvent[idx] = cycle
	}
}

// OnFill records a line fill covering [first, first+n) at cycle. Filled
// bytes behave like written bytes: they are ACE until read or clean-
// evicted-unread.
func (t *CacheTracker) OnFill(first, n int, cycle uint64) {
	for i := first; i < first+n && i < t.numBytes; i++ {
		t.lastEvent[i] = cycle
		t.state[i] = byteClean
	}
}

// OnRead records an architectural read of bytes [first, first+n).
func (t *CacheTracker) OnRead(first, n int, cycle uint64) {
	for i := first; i < first+n && i < t.numBytes; i++ {
		if t.state[i] == byteInvalid {
			continue
		}
		t.credit(i, cycle)
	}
}

// OnWrite records a store to bytes [first, first+n): the previous
// interval is un-ACE, the bytes become dirty.
func (t *CacheTracker) OnWrite(first, n int, cycle uint64) {
	for i := first; i < first+n && i < t.numBytes; i++ {
		if cycle > t.lastEvent[i] {
			t.lastEvent[i] = cycle
		}
		t.state[i] = byteDirty
	}
}

// OnEvict records an eviction of [first, first+n) at cycle. If the line
// is written back (dirty), every byte's value reaches memory, so the
// whole tail interval is ACE; a clean eviction's tail is un-ACE.
func (t *CacheTracker) OnEvict(first, n int, cycle uint64, writeback bool) {
	for i := first; i < first+n && i < t.numBytes; i++ {
		if t.state[i] == byteInvalid {
			continue
		}
		if writeback {
			t.credit(i, cycle)
		}
		t.state[i] = byteInvalid
	}
}

// Finish treats still-resident dirty lines as written back at endCycle
// (the simulator flushes the cache to compute the memory signature).
// Call exactly once, through the owning simulator.
func (t *CacheTracker) Finish(dirty func(idx int) bool, endCycle uint64) {
	for i := 0; i < t.numBytes; i++ {
		if t.state[i] != byteInvalid && dirty(i) {
			t.credit(i, endCycle)
		}
		t.state[i] = byteInvalid
	}
}

// ACEBitCycles returns accumulated ACE bit-cycles (byte-cycles × 8).
func (t *CacheTracker) ACEBitCycles() uint64 { return t.aceCycles * 8 }

// Vulnerability returns the ACE fraction of the data array over
// totalCycles.
func (t *CacheTracker) Vulnerability(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 0
	}
	return float64(t.aceCycles) / (float64(t.numBytes) * float64(totalCycles))
}
