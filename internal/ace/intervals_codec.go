package ace

import (
	"encoding/binary"
	"fmt"
)

// Binary layout for embedding an IntervalRecorder inside a larger
// container (the golden artifact bundle's HXGA codec): little-endian,
// a uint32 cell count, then per cell the last-write cycle, a span
// count and the (start, end] span pairs. The recorder's fields are
// private to this package, so the marshal helpers live here.

// maxCodecCells bounds a decoded recorder (the largest real recorder —
// the L1D data array — is a quarter-million cells; 1<<28 leaves three
// orders of magnitude of headroom while refusing corrupt lengths).
const maxCodecCells = 1 << 28

// AppendIntervalRecorder appends r's stable binary encoding to buf and
// returns the extended slice. r must be non-nil (the container encodes
// presence itself).
func AppendIntervalRecorder(buf []byte, r *IntervalRecorder) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.lastWrite)))
	for i := range r.lastWrite {
		buf = binary.LittleEndian.AppendUint64(buf, r.lastWrite[i])
		s := r.spans[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		for _, sp := range s {
			buf = binary.LittleEndian.AppendUint64(buf, sp.start)
			buf = binary.LittleEndian.AppendUint64(buf, sp.end)
		}
	}
	return buf
}

// DecodeIntervalRecorder parses one recorder from the front of data,
// returning it (drawn from the recorder pool — release with
// ReleaseIntervalRecorder) and the number of bytes consumed.
func DecodeIntervalRecorder(data []byte) (*IntervalRecorder, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("ace: truncated interval recorder")
	}
	cells := binary.LittleEndian.Uint32(data)
	if cells > maxCodecCells {
		return nil, 0, fmt.Errorf("ace: interval recorder cell count %d too large", cells)
	}
	off := 4
	r := GetIntervalRecorder(int(cells))
	for i := 0; i < int(cells); i++ {
		if len(data)-off < 12 {
			ReleaseIntervalRecorder(r)
			return nil, 0, fmt.Errorf("ace: truncated interval recorder cell %d", i)
		}
		r.lastWrite[i] = binary.LittleEndian.Uint64(data[off:])
		n := binary.LittleEndian.Uint32(data[off+8:])
		off += 12
		if n > maxCodecCells || len(data)-off < 16*int(n) {
			ReleaseIntervalRecorder(r)
			return nil, 0, fmt.Errorf("ace: truncated interval recorder spans for cell %d", i)
		}
		spans := r.spans[i][:0]
		for j := 0; j < int(n); j++ {
			spans = append(spans, ivalSpan{
				start: binary.LittleEndian.Uint64(data[off:]),
				end:   binary.LittleEndian.Uint64(data[off+8:]),
			})
			off += 16
		}
		r.spans[i] = spans
	}
	return r, off, nil
}

// ApproxBytes estimates r's in-memory footprint (for cache accounting).
func (r *IntervalRecorder) ApproxBytes() int {
	if r == nil {
		return 0
	}
	n := 8*len(r.lastWrite) + 24*len(r.spans)
	for _, s := range r.spans {
		n += 16 * cap(s)
	}
	return n
}
