package ace

import "testing"

func TestRegFileWriteReadInterval(t *testing.T) {
	tr := NewRegFileTracker(4)
	tr.OnWrite(0, 10)
	tr.OnRead(0, 64, 30) // W->R: 20 cycles x 64 bits ACE
	if got := tr.ACEBitCycles(); got != 20*64 {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, 20*64)
	}
}

func TestRegFileReadReadInterval(t *testing.T) {
	tr := NewRegFileTracker(4)
	tr.OnWrite(1, 0)
	tr.OnRead(1, 64, 10)
	tr.OnRead(1, 64, 25) // R->R also ACE
	if got := tr.ACEBitCycles(); got != 25*64 {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, 25*64)
	}
}

func TestRegFileWidthMask(t *testing.T) {
	tr := NewRegFileTracker(4)
	tr.OnWrite(2, 0)
	tr.OnRead(2, 8, 100) // only the low byte is ACE
	if got := tr.ACEBitCycles(); got != 100*8 {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, 100*8)
	}
	// A later full-width read credits the upper bits from the write and
	// the low bits from the previous read.
	tr.OnRead(2, 64, 150)
	want := uint64(100*8 + (150-100)*8 + 150*56)
	if got := tr.ACEBitCycles(); got != want {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, want)
	}
}

func TestRegFileOverwriteIsUnACE(t *testing.T) {
	tr := NewRegFileTracker(4)
	tr.OnWrite(0, 0)
	tr.OnWrite(0, 100) // W->W: nothing credited
	if got := tr.ACEBitCycles(); got != 0 {
		t.Fatalf("ACE bit-cycles = %d, want 0", got)
	}
}

func TestRegFileFreeTailUnACE(t *testing.T) {
	tr := NewRegFileTracker(4)
	tr.OnWrite(0, 0)
	tr.OnRead(0, 64, 10)
	tr.OnFree(0, 500)
	if got := tr.ACEBitCycles(); got != 10*64 {
		t.Fatalf("free tail credited: %d", got)
	}
	// Reads of a freed register are ignored until rewritten.
	tr.OnRead(0, 64, 600)
	if got := tr.ACEBitCycles(); got != 10*64 {
		t.Fatalf("read of freed register credited: %d", got)
	}
}

func TestRegFileOutOfOrderClamp(t *testing.T) {
	tr := NewRegFileTracker(4)
	tr.OnWrite(0, 100)
	tr.OnRead(0, 64, 50) // earlier cycle: clamped to zero interval
	if got := tr.ACEBitCycles(); got != 0 {
		t.Fatalf("negative interval credited: %d", got)
	}
}

func TestRegFileVulnerabilityBounds(t *testing.T) {
	tr := NewRegFileTracker(2)
	tr.OnWrite(0, 0)
	tr.OnRead(0, 64, 100)
	v := tr.Vulnerability(100)
	// One of two regs fully ACE for the whole window: 0.5.
	if v != 0.5 {
		t.Fatalf("vulnerability = %f, want 0.5", v)
	}
}

func TestCacheFillReadEvict(t *testing.T) {
	tr := NewCacheTracker(128)
	tr.OnFill(0, 64, 10)
	tr.OnRead(0, 8, 50) // 8 bytes x 40 cycles
	if got := tr.ACEBitCycles(); got != 8*40*8 {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, 8*40*8)
	}
	tr.OnEvict(0, 64, 100, false) // clean eviction: tails un-ACE
	if got := tr.ACEBitCycles(); got != 8*40*8 {
		t.Fatalf("clean evict credited tail: %d", got)
	}
}

func TestCacheDirtyEvictIsACE(t *testing.T) {
	tr := NewCacheTracker(128)
	tr.OnFill(0, 64, 0)
	tr.OnWrite(0, 8, 10)
	tr.OnEvict(0, 64, 50, true)
	// Written bytes: 10->50 ACE. Clean bytes of the dirty line: 0->50 ACE
	// (their values are written back too).
	want := uint64(8*40+56*50) * 8
	if got := tr.ACEBitCycles(); got != want {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, want)
	}
}

func TestCacheWriteOverwriteUnACE(t *testing.T) {
	tr := NewCacheTracker(128)
	tr.OnFill(0, 64, 0)
	tr.OnWrite(0, 8, 10)
	tr.OnWrite(0, 8, 90) // W->W interval un-ACE
	tr.OnRead(0, 8, 100)
	if got := tr.ACEBitCycles(); got != 8*10*8 {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, 8*10*8)
	}
}

func TestCacheFinishFlushesDirty(t *testing.T) {
	tr := NewCacheTracker(64)
	tr.OnFill(0, 64, 0)
	tr.OnWrite(0, 16, 10)
	dirty := func(idx int) bool { return true }
	tr.Finish(dirty, 100)
	// All 64 bytes of the dirty line ACE to the end: 16 written bytes
	// from 10, 48 filled bytes from 0.
	want := uint64(16*90+48*100) * 8
	if got := tr.ACEBitCycles(); got != want {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, want)
	}
}

func TestCacheInvalidBytesIgnored(t *testing.T) {
	tr := NewCacheTracker(64)
	tr.OnRead(0, 8, 50) // read of never-filled bytes: ignored
	if got := tr.ACEBitCycles(); got != 0 {
		t.Fatalf("invalid read credited: %d", got)
	}
}

func TestCacheVulnerabilityBounds(t *testing.T) {
	tr := NewCacheTracker(64)
	tr.OnFill(0, 64, 0)
	tr.OnRead(0, 64, 100)
	if v := tr.Vulnerability(100); v != 1.0 {
		t.Fatalf("vulnerability = %f, want 1", v)
	}
}
