package ace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// IntervalRecorder records, per storage cell, the cycle intervals during
// which the cell's stored value can still reach architectural state — the
// exported counterpart of the lifetime analysis the trackers perform for
// coverage accounting. The fault injector uses it to pre-classify
// transient flips: a flip at a cycle outside every consumed interval of
// its cell is provably masked and never needs to be simulated.
//
// Unlike RegFileTracker/CacheTracker, which are driven from *committed*
// instructions (the AVF accounting of the paper), the recorder is driven
// directly at access time, including wrong-path and squashed work. That
// makes it strictly conservative for pre-classification: any read that
// could observe the cell — even one whose result is later thrown away but
// may have perturbed timing (e.g. a wrong-path load changing cache
// contents) — keeps the interval consumed.
//
// Events must arrive in non-decreasing cycle order (the simulator is
// cycle-driven), which keeps each cell's interval list sorted and
// mergeable in O(1) per event.
type IntervalRecorder struct {
	lastWrite []uint64
	spans     [][]ivalSpan
}

// ivalSpan is one consumed interval (start, end]: a corruption applied at
// cycle t with start < t <= end is (or may be) consumed.
type ivalSpan struct {
	start, end uint64
}

// NewIntervalRecorder creates a recorder for cells storage cells. All
// cells start with an implicit write at cycle 0 (reset state).
func NewIntervalRecorder(cells int) *IntervalRecorder {
	return &IntervalRecorder{
		lastWrite: make([]uint64, cells),
		spans:     make([][]ivalSpan, cells),
	}
}

// NumCells returns the number of tracked cells.
func (r *IntervalRecorder) NumCells() int { return len(r.lastWrite) }

// Write records that the cell's value was overwritten at cycle: a
// corruption of the old value strictly after the previous consumption is
// dead.
func (r *IntervalRecorder) Write(cell int, cycle uint64) {
	r.lastWrite[cell] = cycle
}

// Read records that the cell's value was consumed at cycle: the interval
// (lastWrite, cycle] becomes consumed. Fault hooks fire at the start of a
// cycle, before that cycle's reads and writes, so a corruption at exactly
// the read cycle is observed while one at exactly the write cycle is
// overwritten — hence the half-open-at-start convention.
func (r *IntervalRecorder) Read(cell int, cycle uint64) {
	w := r.lastWrite[cell]
	if cycle <= w {
		return // empty interval (same-cycle write+read: write lands first)
	}
	s := r.spans[cell]
	if n := len(s); n > 0 && w <= s[n-1].end {
		if cycle > s[n-1].end {
			s[n-1].end = cycle
		}
		return
	}
	r.spans[cell] = append(s, ivalSpan{start: w, end: cycle})
}

// WriteRange records a write of n consecutive cells starting at cell —
// equivalent to n Write calls but without the per-call bounds checks and
// function-call overhead on the simulator's hot register/cache paths.
func (r *IntervalRecorder) WriteRange(cell, n int, cycle uint64) {
	lw := r.lastWrite[cell : cell+n]
	for i := range lw {
		lw[i] = cycle
	}
}

// ReadRange records a consumption of n consecutive cells starting at
// cell, the bulk counterpart of Read.
func (r *IntervalRecorder) ReadRange(cell, n int, cycle uint64) {
	for i := cell; i < cell+n; i++ {
		w := r.lastWrite[i]
		if cycle <= w {
			continue
		}
		s := r.spans[i]
		if ln := len(s); ln > 0 && w <= s[ln-1].end {
			if cycle > s[ln-1].end {
				s[ln-1].end = cycle
			}
			continue
		}
		r.spans[i] = append(s, ivalSpan{start: w, end: cycle})
	}
}

// Consumed reports whether a corruption of cell applied at the start of
// cycle can reach architectural state, i.e. whether cycle falls in a
// consumed interval. A false return is a proof of masking.
func (r *IntervalRecorder) Consumed(cell int, cycle uint64) bool {
	s := r.spans[cell]
	i := sort.Search(len(s), func(i int) bool { return s[i].end >= cycle })
	return i < len(s) && s[i].start < cycle
}

// Equal reports whether two recorders captured identical interval logs —
// the bit-identity oracle the naive-vs-skipping differential tests use.
// Nil recorders compare equal to nil and to empty.
func (r *IntervalRecorder) Equal(o *IntervalRecorder) bool {
	if r == nil || o == nil {
		return (r == nil || r.NumCells() == 0) && (o == nil || o.NumCells() == 0)
	}
	if len(r.lastWrite) != len(o.lastWrite) {
		return false
	}
	for i := range r.lastWrite {
		if r.lastWrite[i] != o.lastWrite[i] {
			return false
		}
		a, b := r.spans[i], o.spans[i]
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// Reset returns the recorder to its initial state for cells storage
// cells, reusing the backing arrays when they are large enough. Per-cell
// span slices keep their capacity, so a reused recorder stops allocating
// once it has seen a workload of similar shape.
func (r *IntervalRecorder) Reset(cells int) {
	if cap(r.lastWrite) < cells {
		r.lastWrite = make([]uint64, cells)
		r.spans = make([][]ivalSpan, cells)
		return
	}
	r.lastWrite = r.lastWrite[:cells]
	r.spans = r.spans[:cells]
	for i := range r.lastWrite {
		r.lastWrite[i] = 0
		r.spans[i] = r.spans[i][:0]
	}
}

// recorderPool recycles IntervalRecorders across simulator runs. A
// recorder for the L1D data array alone carries a quarter-million cells;
// reallocating those per pooled-core run dominated campaign allocation
// profiles.
var recorderPool sync.Pool

// liveRecorders counts Get minus Release — the pool-hygiene leak
// detector used by tests.
var liveRecorders atomic.Int64

// GetIntervalRecorder returns a reset recorder for cells storage cells,
// reusing pooled backing storage when available.
func GetIntervalRecorder(cells int) *IntervalRecorder {
	liveRecorders.Add(1)
	v := recorderPool.Get()
	if v == nil {
		return NewIntervalRecorder(cells)
	}
	r := v.(*IntervalRecorder)
	r.Reset(cells)
	return r
}

// ReleaseIntervalRecorder returns a recorder to the pool. The caller must
// not retain references to it afterwards. Nil is a no-op.
func ReleaseIntervalRecorder(r *IntervalRecorder) {
	if r != nil {
		liveRecorders.Add(-1)
		recorderPool.Put(r)
	}
}

// LiveIntervalRecorders returns the number of recorders handed out and
// not yet released (leak-test hook).
func LiveIntervalRecorders() int64 { return liveRecorders.Load() }
