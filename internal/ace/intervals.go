package ace

import "sort"

// IntervalRecorder records, per storage cell, the cycle intervals during
// which the cell's stored value can still reach architectural state — the
// exported counterpart of the lifetime analysis the trackers perform for
// coverage accounting. The fault injector uses it to pre-classify
// transient flips: a flip at a cycle outside every consumed interval of
// its cell is provably masked and never needs to be simulated.
//
// Unlike RegFileTracker/CacheTracker, which are driven from *committed*
// instructions (the AVF accounting of the paper), the recorder is driven
// directly at access time, including wrong-path and squashed work. That
// makes it strictly conservative for pre-classification: any read that
// could observe the cell — even one whose result is later thrown away but
// may have perturbed timing (e.g. a wrong-path load changing cache
// contents) — keeps the interval consumed.
//
// Events must arrive in non-decreasing cycle order (the simulator is
// cycle-driven), which keeps each cell's interval list sorted and
// mergeable in O(1) per event.
type IntervalRecorder struct {
	lastWrite []uint64
	spans     [][]ivalSpan
}

// ivalSpan is one consumed interval (start, end]: a corruption applied at
// cycle t with start < t <= end is (or may be) consumed.
type ivalSpan struct {
	start, end uint64
}

// NewIntervalRecorder creates a recorder for cells storage cells. All
// cells start with an implicit write at cycle 0 (reset state).
func NewIntervalRecorder(cells int) *IntervalRecorder {
	return &IntervalRecorder{
		lastWrite: make([]uint64, cells),
		spans:     make([][]ivalSpan, cells),
	}
}

// NumCells returns the number of tracked cells.
func (r *IntervalRecorder) NumCells() int { return len(r.lastWrite) }

// Write records that the cell's value was overwritten at cycle: a
// corruption of the old value strictly after the previous consumption is
// dead.
func (r *IntervalRecorder) Write(cell int, cycle uint64) {
	r.lastWrite[cell] = cycle
}

// Read records that the cell's value was consumed at cycle: the interval
// (lastWrite, cycle] becomes consumed. Fault hooks fire at the start of a
// cycle, before that cycle's reads and writes, so a corruption at exactly
// the read cycle is observed while one at exactly the write cycle is
// overwritten — hence the half-open-at-start convention.
func (r *IntervalRecorder) Read(cell int, cycle uint64) {
	w := r.lastWrite[cell]
	if cycle <= w {
		return // empty interval (same-cycle write+read: write lands first)
	}
	s := r.spans[cell]
	if n := len(s); n > 0 && w <= s[n-1].end {
		if cycle > s[n-1].end {
			s[n-1].end = cycle
		}
		return
	}
	r.spans[cell] = append(s, ivalSpan{start: w, end: cycle})
}

// Consumed reports whether a corruption of cell applied at the start of
// cycle can reach architectural state, i.e. whether cycle falls in a
// consumed interval. A false return is a proof of masking.
func (r *IntervalRecorder) Consumed(cell int, cycle uint64) bool {
	s := r.spans[cell]
	i := sort.Search(len(s), func(i int) bool { return s[i].end >= cycle })
	return i < len(s) && s[i].start < cycle
}
