package ace

import "testing"

func TestIntervalRecorderBasics(t *testing.T) {
	r := NewIntervalRecorder(4)

	// Implicit reset write at cycle 0, read at 10: (0, 10] consumed.
	r.Read(0, 10)
	for _, tc := range []struct {
		cycle uint64
		want  bool
	}{
		{0, false}, // corruptions start at cycle 1; 0 is outside (0, 10]
		{1, true},
		{10, true},
		{11, false},
	} {
		if got := r.Consumed(0, tc.cycle); got != tc.want {
			t.Errorf("Consumed(0, %d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}

	// Write at 20 kills (10, 20]; read at 30 opens (20, 30].
	r.Write(0, 20)
	r.Read(0, 30)
	for _, tc := range []struct {
		cycle uint64
		want  bool
	}{
		{15, false}, // dead between last read and the overwrite
		{20, false}, // flip at the write cycle is overwritten first
		{21, true},
		{30, true},
		{31, false},
	} {
		if got := r.Consumed(0, tc.cycle); got != tc.want {
			t.Errorf("Consumed(0, %d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}

	// Untouched cell: never consumed.
	if r.Consumed(3, 5) {
		t.Error("untouched cell reported consumed")
	}
}

func TestIntervalRecorderMergesAdjacentReads(t *testing.T) {
	r := NewIntervalRecorder(1)
	// Read-read chains extend a single span instead of stacking up.
	r.Read(0, 5)
	r.Read(0, 9)
	r.Read(0, 9) // duplicate same-cycle read
	if got := len(r.spans[0]); got != 1 {
		t.Fatalf("expected 1 merged span, got %d", got)
	}
	if !r.Consumed(0, 7) || !r.Consumed(0, 9) || r.Consumed(0, 10) {
		t.Fatal("merged span has wrong bounds")
	}
	// Same-cycle write+read: write lands first, so the read interval is
	// empty and must not extend the previous span.
	r.Write(0, 9)
	r.Read(0, 9)
	if r.Consumed(0, 10) {
		t.Fatal("empty write/read interval extended a span")
	}
}

func TestTrackerReset(t *testing.T) {
	rt := NewRegFileTracker(4)
	rt.OnWrite(1, 2)
	rt.OnRead(1, 64, 10)
	if rt.ACEBitCycles() == 0 {
		t.Fatal("tracker accumulated nothing")
	}
	rt.Reset()
	if rt.ACEBitCycles() != 0 || rt.NumRegs() != 4 {
		t.Fatal("RegFileTracker.Reset did not clear state")
	}
	// After reset the tracker behaves like a fresh one.
	rt.OnRead(1, 64, 10) // not live: ignored
	if rt.ACEBitCycles() != 0 {
		t.Fatal("reset tracker retained liveness")
	}

	ct := NewCacheTracker(64)
	ct.OnFill(0, 64, 1)
	ct.OnRead(0, 8, 9)
	if ct.ACEBitCycles() == 0 {
		t.Fatal("cache tracker accumulated nothing")
	}
	ct.Reset()
	if ct.ACEBitCycles() != 0 || ct.NumBytes() != 64 {
		t.Fatal("CacheTracker.Reset did not clear state")
	}
	ct.OnRead(0, 8, 20) // invalid bytes: ignored
	if ct.ACEBitCycles() != 0 {
		t.Fatal("reset cache tracker retained byte state")
	}
}
