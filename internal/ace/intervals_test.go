package ace

import "testing"

func TestIntervalRecorderBasics(t *testing.T) {
	r := NewIntervalRecorder(4)

	// Implicit reset write at cycle 0, read at 10: (0, 10] consumed.
	r.Read(0, 10)
	for _, tc := range []struct {
		cycle uint64
		want  bool
	}{
		{0, false}, // corruptions start at cycle 1; 0 is outside (0, 10]
		{1, true},
		{10, true},
		{11, false},
	} {
		if got := r.Consumed(0, tc.cycle); got != tc.want {
			t.Errorf("Consumed(0, %d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}

	// Write at 20 kills (10, 20]; read at 30 opens (20, 30].
	r.Write(0, 20)
	r.Read(0, 30)
	for _, tc := range []struct {
		cycle uint64
		want  bool
	}{
		{15, false}, // dead between last read and the overwrite
		{20, false}, // flip at the write cycle is overwritten first
		{21, true},
		{30, true},
		{31, false},
	} {
		if got := r.Consumed(0, tc.cycle); got != tc.want {
			t.Errorf("Consumed(0, %d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}

	// Untouched cell: never consumed.
	if r.Consumed(3, 5) {
		t.Error("untouched cell reported consumed")
	}
}

func TestIntervalRecorderMergesAdjacentReads(t *testing.T) {
	r := NewIntervalRecorder(1)
	// Read-read chains extend a single span instead of stacking up.
	r.Read(0, 5)
	r.Read(0, 9)
	r.Read(0, 9) // duplicate same-cycle read
	if got := len(r.spans[0]); got != 1 {
		t.Fatalf("expected 1 merged span, got %d", got)
	}
	if !r.Consumed(0, 7) || !r.Consumed(0, 9) || r.Consumed(0, 10) {
		t.Fatal("merged span has wrong bounds")
	}
	// Same-cycle write+read: write lands first, so the read interval is
	// empty and must not extend the previous span.
	r.Write(0, 9)
	r.Read(0, 9)
	if r.Consumed(0, 10) {
		t.Fatal("empty write/read interval extended a span")
	}
}

// TestIntervalRecorderRangeMatchesScalar: the bulk ReadRange/WriteRange
// fast paths must record exactly what the equivalent per-cell calls do.
func TestIntervalRecorderRangeMatchesScalar(t *testing.T) {
	a := NewIntervalRecorder(256)
	b := NewIntervalRecorder(256)
	type op struct {
		write bool
		cell  int
		n     int
		cycle uint64
	}
	ops := []op{
		{true, 0, 64, 3}, {false, 0, 64, 7}, {false, 16, 32, 9},
		{true, 8, 8, 9}, {false, 0, 64, 9}, {true, 64, 128, 12},
		{false, 100, 28, 20}, {false, 100, 28, 20}, {true, 100, 1, 25},
		{false, 64, 128, 30},
	}
	for _, o := range ops {
		if o.write {
			a.WriteRange(o.cell, o.n, o.cycle)
			for i := 0; i < o.n; i++ {
				b.Write(o.cell+i, o.cycle)
			}
		} else {
			a.ReadRange(o.cell, o.n, o.cycle)
			for i := 0; i < o.n; i++ {
				b.Read(o.cell+i, o.cycle)
			}
		}
	}
	if !a.Equal(b) {
		t.Fatal("range ops diverge from per-cell ops")
	}
}

func TestIntervalRecorderEqual(t *testing.T) {
	a := NewIntervalRecorder(8)
	b := NewIntervalRecorder(8)
	a.Read(2, 5)
	if a.Equal(b) {
		t.Fatal("recorders with different spans compare equal")
	}
	b.Read(2, 5)
	if !a.Equal(b) {
		t.Fatal("identical recorders compare unequal")
	}
	b.Write(3, 7)
	if a.Equal(b) {
		t.Fatal("different lastWrite state compares equal")
	}
	var n *IntervalRecorder
	if !n.Equal(nil) || n.Equal(a) {
		t.Fatal("nil comparison wrong")
	}
	if !n.Equal(NewIntervalRecorder(0)) {
		t.Fatal("nil vs empty should compare equal")
	}
}

// TestIntervalRecorderPoolReuse: a pooled recorder must come back fully
// reset — stale spans or lastWrite state would corrupt the next
// campaign's masking proofs.
func TestIntervalRecorderPoolReuse(t *testing.T) {
	r := GetIntervalRecorder(64)
	r.Read(5, 10)
	r.Write(6, 3)
	ReleaseIntervalRecorder(r)

	r2 := GetIntervalRecorder(64)
	if !r2.Equal(NewIntervalRecorder(64)) {
		t.Fatal("pooled recorder not reset")
	}
	if r2.Consumed(5, 7) {
		t.Fatal("pooled recorder retained consumed intervals")
	}
	// A pooled recorder must also resize when reused for another shape.
	ReleaseIntervalRecorder(r2)
	r3 := GetIntervalRecorder(128)
	if r3.NumCells() != 128 {
		t.Fatalf("pooled recorder kept old size: %d cells", r3.NumCells())
	}
	ReleaseIntervalRecorder(r3)
}

// BenchmarkIntervalRecorderReuse is the allocation-count regression gate
// for recorder pooling: after warmup, a Get/use/Release cycle must not
// allocate backing storage (0 allocs/op steady state).
func BenchmarkIntervalRecorderReuse(b *testing.B) {
	const cells = 32 * 1024 // one L1D worth of byte cells
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := GetIntervalRecorder(cells)
		for c := 0; c < cells; c += 64 {
			r.WriteRange(c, 64, 2)
			r.ReadRange(c, 64, 5)
		}
		ReleaseIntervalRecorder(r)
	}
}

func TestTrackerReset(t *testing.T) {
	rt := NewRegFileTracker(4)
	rt.OnWrite(1, 2)
	rt.OnRead(1, 64, 10)
	if rt.ACEBitCycles() == 0 {
		t.Fatal("tracker accumulated nothing")
	}
	rt.Reset()
	if rt.ACEBitCycles() != 0 || rt.NumRegs() != 4 {
		t.Fatal("RegFileTracker.Reset did not clear state")
	}
	// After reset the tracker behaves like a fresh one.
	rt.OnRead(1, 64, 10) // not live: ignored
	if rt.ACEBitCycles() != 0 {
		t.Fatal("reset tracker retained liveness")
	}

	ct := NewCacheTracker(64)
	ct.OnFill(0, 64, 1)
	ct.OnRead(0, 8, 9)
	if ct.ACEBitCycles() == 0 {
		t.Fatal("cache tracker accumulated nothing")
	}
	ct.Reset()
	if ct.ACEBitCycles() != 0 || ct.NumBytes() != 64 {
		t.Fatal("CacheTracker.Reset did not clear state")
	}
	ct.OnRead(0, 8, 20) // invalid bytes: ignored
	if ct.ACEBitCycles() != 0 {
		t.Fatal("reset cache tracker retained byte state")
	}
}
