// Corpus ranking: measure every archived program of a structure with a
// statistical fault-injection campaign and record its detection rate
// and detected-fault set in the manifest — the measurement distillation
// minimizes over.
package corpus

import (
	"fmt"

	"harpocrates/internal/coverage"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
	"harpocrates/internal/uarch"
)

// RankOptions configures a ranking sweep.
type RankOptions struct {
	// Structure selects the archive slice and the campaign target.
	Structure coverage.Structure
	// Type is the fault model (zero value: the structure's default).
	Type inject.FaultType
	// N is the number of injections per program.
	N int
	// Seed is the campaign seed; together with N and Type it defines
	// the fault universe the detected sets index into.
	Seed uint64
	// IntermittentLen is the intermittent fault window (cycles).
	IntermittentLen uint64
	// Cfg is the core model configuration (zero value: defaults).
	Cfg uarch.Config
	// Force re-ranks entries already measured under the same campaign
	// configuration (default: they are skipped, which is what lets an
	// interrupted ranking sweep resume where it stopped).
	Force bool
	// Workers bounds per-campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// GoldenCache, if set, shares golden artifact bundles across the
	// sweep's campaigns (zero value: inject.SharedGoldenCache()). A
	// multi-structure sweep over one program computes the golden run
	// once instead of once per structure.
	GoldenCache *inject.GoldenCache
	// NoGoldenCache disables golden reuse for the sweep (ablation).
	NoGoldenCache bool
	// Obs receives campaign metrics; nil disables.
	Obs *obs.Observer
	// Progress, if set, observes each ranked entry.
	Progress func(m *Meta, st *inject.Stats)
}

// Rank runs the configured campaign on every archived program of the
// structure, recording detection metadata. Entries already ranked under
// an identical configuration are skipped unless Force is set, so a
// ranking sweep is resumable. Returns the number of entries ranked and
// skipped.
func (s *Store) Rank(opt RankOptions) (ranked, skipped int, err error) {
	if opt.N <= 0 {
		return 0, 0, fmt.Errorf("corpus: rank needs N > 0")
	}
	ft := opt.Type
	if opt.Type == inject.Transient && opt.Structure.IsFunctionalUnit() {
		ft = inject.DefaultFaultType(opt.Structure)
	}
	cfg := opt.Cfg.WithDefaults()
	gc := opt.GoldenCache
	if gc == nil && !opt.NoGoldenCache {
		gc = inject.SharedGoldenCache()
	}

	for _, m := range s.ListStructure(opt.Structure.String()) {
		if !opt.Force && m.Ranked() &&
			m.FaultType == ft.String() && m.FaultN == opt.N && m.FaultSeed == opt.Seed {
			skipped++
			continue
		}
		p, err := s.Get(m.Hash)
		if err != nil {
			return ranked, skipped, fmt.Errorf("corpus: load %s: %w", m.Hash, err)
		}
		c := &inject.Campaign{
			Prog:            p.Insts,
			Init:            p.InitFunc(),
			Target:          opt.Structure,
			Type:            ft,
			N:               opt.N,
			IntermittentLen: opt.IntermittentLen,
			Seed:            opt.Seed,
			Cfg:             cfg,
			Workers:         opt.Workers,
			GoldenCache:     gc,
			// Key by serialized program bytes (not m.Hash, which is the
			// genotype hash for evolved entries) so local sweeps and
			// distributed campaigns on the same program agree on the key.
			ProgramHash:   HashProgram(p),
			NoGoldenCache: opt.NoGoldenCache,
			Obs:           opt.Obs,
		}
		st, err := c.Run()
		if err != nil {
			return ranked, skipped, fmt.Errorf("corpus: rank %s: %w", m.Hash, err)
		}
		if err := s.SetDetection(m.Hash, ft.String(), opt.N, opt.Seed, st.Detection(), st.DetectedSet()); err != nil {
			return ranked, skipped, err
		}
		ranked++
		if opt.Progress != nil {
			mm, _ := s.Entry(m.Hash)
			opt.Progress(mm, st)
		}
	}
	return ranked, skipped, nil
}
