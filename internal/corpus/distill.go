// Corpus distillation: minimize an archive to the smallest subset of
// programs that preserves the union of detected-fault sets — the
// INSTILLER/SiliFuzz observation that a distilled corpus buys the same
// fault coverage for a fraction of the fleet execution time. Minimum
// set cover is NP-hard; the standard greedy algorithm (repeatedly take
// the program covering the most still-uncovered faults) gives the
// ln(n)-approximation and is exact on the small archives a store
// holds.
package corpus

import (
	"fmt"
	"sort"
)

// Distill computes a greedy minimum-set-cover subset of the given
// entries whose combined detected-fault sets equal the union over all
// entries. Entries must have been ranked under the same campaign
// configuration for their fault indices to be comparable (Store.Distill
// enforces this). The returned subset is in pick order (largest
// marginal coverage first); ties break toward higher fitness, then
// lower hash, so the result is deterministic. The second result is the
// size of the covered universe.
func Distill(metas []*Meta) (keep []*Meta, universe int) {
	uncovered := make(map[int]struct{})
	for _, m := range metas {
		for _, f := range m.Detected {
			uncovered[f] = struct{}{}
		}
	}
	universe = len(uncovered)

	remaining := append([]*Meta(nil), metas...)
	// Deterministic scan order regardless of caller ordering.
	sort.Slice(remaining, func(a, b int) bool {
		if remaining[a].Fitness != remaining[b].Fitness {
			return remaining[a].Fitness > remaining[b].Fitness
		}
		return remaining[a].Hash < remaining[b].Hash
	})

	for len(uncovered) > 0 {
		bestIdx, bestGain := -1, 0
		for i, m := range remaining {
			if m == nil {
				continue
			}
			gain := 0
			for _, f := range m.Detected {
				if _, ok := uncovered[f]; ok {
					gain++
				}
			}
			// Strict > keeps the first (highest-fitness, lowest-hash)
			// entry among equal gains.
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break // cannot happen: uncovered is built from these sets
		}
		m := remaining[bestIdx]
		remaining[bestIdx] = nil
		keep = append(keep, m)
		for _, f := range m.Detected {
			delete(uncovered, f)
		}
	}
	return keep, universe
}

// DetectedUnion returns the union of the entries' detected-fault sets.
func DetectedUnion(metas []*Meta) map[int]struct{} {
	u := make(map[int]struct{})
	for _, m := range metas {
		for _, f := range m.Detected {
			u[f] = struct{}{}
		}
	}
	return u
}

// Distill minimizes the structure's ranked entries to the greedy
// set-cover subset. With apply=false it only reports what would be
// kept and dropped; with apply=true the dropped entries are removed
// from the store. Unranked entries of the structure are never touched
// (they carry no measurement to preserve or discard by).
func (s *Store) Distill(structure string, apply bool) (kept, dropped []*Meta, err error) {
	ranked := make([]*Meta, 0)
	for _, m := range s.ListStructure(structure) {
		if m.Ranked() {
			ranked = append(ranked, m)
		}
	}
	if len(ranked) == 0 {
		return nil, nil, fmt.Errorf("corpus: no ranked %s entries to distill (run rank first)", structure)
	}
	// Fault indices are only comparable under one campaign
	// configuration; a mixed archive must be re-ranked first.
	ref := ranked[0]
	for _, m := range ranked[1:] {
		if m.FaultType != ref.FaultType || m.FaultN != ref.FaultN || m.FaultSeed != ref.FaultSeed {
			return nil, nil, fmt.Errorf(
				"corpus: %s entries ranked under mixed campaign configs (%s/%d/%d vs %s/%d/%d); re-rank before distilling",
				structure, ref.FaultType, ref.FaultN, ref.FaultSeed, m.FaultType, m.FaultN, m.FaultSeed)
		}
	}

	kept, _ = Distill(ranked)
	keptSet := make(map[string]struct{}, len(kept))
	for _, m := range kept {
		keptSet[m.Hash] = struct{}{}
	}
	for _, m := range ranked {
		if _, ok := keptSet[m.Hash]; !ok {
			dropped = append(dropped, m)
		}
	}

	if len(ranked) > 0 {
		s.ob.Gauge("corpus.distill.reduction").Set(float64(len(kept)) / float64(len(ranked)))
	}
	if apply {
		s.mu.Lock()
		for _, m := range dropped {
			s.removeLocked(m.Hash)
		}
		ferr := s.flushLocked()
		s.mu.Unlock()
		if ferr != nil {
			return kept, dropped, ferr
		}
		s.setSizeGauge()
	}
	return kept, dropped, nil
}
