package corpus

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"harpocrates/internal/gen"
	"harpocrates/internal/prog"
)

// testCfg is a small generator configuration shared by the tests.
func testCfg() gen.Config {
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 40
	return cfg
}

// testProgram derives a deterministic (genotype, program) pair from a
// seed.
func testProgram(seed uint64) (*gen.Genotype, *prog.Program) {
	cfg := testCfg()
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	g := gen.NewRandom(&cfg, rng)
	return g, gen.Materialize(g, &cfg)
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestManifestRoundTrip: everything Add records must survive a store
// reopen — metadata, the program bytes and the genotype sidecar.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	g, p := testProgram(1)
	res, err := s.Add(p, g, Meta{Structure: "IntAdder", Fitness: 0.5, Iteration: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Added || res.Hash != Key(g.Hash()) {
		t.Fatalf("add: %+v", res)
	}
	if err := s.SetDetection(res.Hash, "permanent", 10, 3, 0.4, []int{4, 1, 8}); err != nil {
		t.Fatal(err)
	}

	// A fresh Store must see the identical archive.
	s2 := mustOpen(t, dir)
	m, ok := s2.Entry(res.Hash)
	if !ok {
		t.Fatalf("entry %s lost across reopen", res.Hash)
	}
	want := &Meta{
		Hash: res.Hash, Name: p.Name, Structure: "IntAdder", Fitness: 0.5,
		Seed: g.Seed, Iteration: 7, Insts: len(p.Insts), Genotype: true,
		FaultType: "permanent", FaultN: 10, FaultSeed: 3, Detection: 0.4,
		Detected: []int{1, 4, 8}, // stored sorted
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("metadata diverged across reopen:\ngot  %+v\nwant %+v", m, want)
	}

	p2, err := s2.Get(res.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if HashProgram(p2) != HashProgram(p) {
		t.Fatal("program bytes diverged across reopen")
	}
	g2, err := s2.Genotype(res.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Hash() != g.Hash() {
		t.Fatal("genotype diverged across reopen")
	}
}

// TestAddDedupConcurrent: concurrent Adds of the same content must
// archive it exactly once (run under -race).
func TestAddDedupConcurrent(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	g, p := testProgram(2)

	const workers = 8
	added := make(chan bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Add(p, g, Meta{Structure: "IRF", Fitness: 0.3})
			if err != nil {
				t.Error(err)
				return
			}
			added <- res.Added
		}()
	}
	wg.Wait()
	close(added)

	n := 0
	for a := range added {
		if a {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d of %d concurrent adds reported Added", n, workers)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", s.Len())
	}
}

// TestBoundedEvictionDeterministic: with a per-structure bound, the
// archive must converge to the fitness top-N regardless of insertion
// order.
func TestBoundedEvictionDeterministic(t *testing.T) {
	type cand struct {
		seed    uint64
		fitness float64
	}
	cands := []cand{{10, 0.1}, {11, 0.9}, {12, 0.5}, {13, 0.7}, {14, 0.3}}
	orders := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}

	var survivors [][]string
	for _, order := range orders {
		s := mustOpen(t, t.TempDir())
		s.SetBound(3)
		for _, i := range order {
			g, p := testProgram(cands[i].seed)
			if _, err := s.Add(p, g, Meta{Structure: "IntMul", Fitness: cands[i].fitness}); err != nil {
				t.Fatal(err)
			}
		}
		var hashes []string
		for _, m := range s.ListStructure("IntMul") {
			hashes = append(hashes, m.Hash)
		}
		if len(hashes) != 3 {
			t.Fatalf("order %v: %d survivors, want 3", order, len(hashes))
		}
		survivors = append(survivors, hashes)
	}
	for _, got := range survivors[1:] {
		if !reflect.DeepEqual(got, survivors[0]) {
			t.Fatalf("survivors depend on insertion order: %v vs %v", got, survivors[0])
		}
	}
	// And they must be the top 3 by fitness: 0.9, 0.7, 0.5.
	s := mustOpen(t, t.TempDir())
	s.SetBound(3)
	for i := range cands {
		g, p := testProgram(cands[i].seed)
		if _, err := s.Add(p, g, Meta{Structure: "IntMul", Fitness: cands[i].fitness}); err != nil {
			t.Fatal(err)
		}
	}
	ms := s.ListStructure("IntMul")
	for i, want := range []float64{0.9, 0.7, 0.5} {
		if ms[i].Fitness != want {
			t.Fatalf("rank %d fitness %v, want %v", i, ms[i].Fitness, want)
		}
	}
}

// TestElites returns genotypes fittest-first, bounded by k.
func TestElites(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	seeds := []uint64{20, 21, 22}
	fits := []float64{0.2, 0.8, 0.5}
	for i := range seeds {
		g, p := testProgram(seeds[i])
		if _, err := s.Add(p, g, Meta{Structure: "FPAdd", Fitness: fits[i]}); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign program without genotype must never be served as a seed.
	_, foreign := testProgram(23)
	if _, err := s.Add(foreign, nil, Meta{Structure: "FPAdd", Fitness: 0.99}); err != nil {
		t.Fatal(err)
	}

	elites, err := s.Elites("FPAdd", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(elites) != 2 {
		t.Fatalf("%d elites, want 2", len(elites))
	}
	g1, _ := testProgram(21)
	g2, _ := testProgram(22)
	if elites[0].Hash() != g1.Hash() || elites[1].Hash() != g2.Hash() {
		t.Fatal("elites not ordered fittest-first")
	}
}

// TestDistillPreservesUnion is the distillation acceptance gate: the
// kept subset's detected-fault union must equal the full archive's, and
// redundant entries must be dropped.
func TestDistillPreservesUnion(t *testing.T) {
	metas := []*Meta{
		{Hash: "a", Fitness: 0.9, Detected: []int{0, 1, 2, 3, 4, 5}},
		{Hash: "b", Fitness: 0.8, Detected: []int{4, 5, 6, 7, 8, 9}},
		{Hash: "c", Fitness: 0.7, Detected: []int{0, 1}}, // fully redundant
	}
	keep, universe := Distill(metas)
	if universe != 10 {
		t.Fatalf("universe %d, want 10", universe)
	}
	if len(keep) != 2 {
		t.Fatalf("kept %d entries, want 2 (a and b cover everything)", len(keep))
	}
	if !reflect.DeepEqual(DetectedUnion(keep), DetectedUnion(metas)) {
		t.Fatal("distillation lost detected faults")
	}
	if keep[0].Hash != "a" || keep[1].Hash != "b" {
		t.Fatalf("kept %s,%s; want a,b", keep[0].Hash, keep[1].Hash)
	}

	// Determinism: shuffled input, same answer.
	shuffled := []*Meta{metas[2], metas[0], metas[1]}
	keep2, _ := Distill(shuffled)
	if len(keep2) != 2 || keep2[0].Hash != "a" || keep2[1].Hash != "b" {
		t.Fatal("distillation depends on input order")
	}
}

// TestStoreDistillApply: Distill(apply) removes the dropped entries from
// the store and the reduction survives a reopen.
func TestStoreDistillApply(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	sets := [][]int{{0, 1, 2}, {2, 3}, {0, 1}}
	seeds := []uint64{30, 31, 32}
	fits := []float64{0.9, 0.8, 0.7}
	for i := range sets {
		g, p := testProgram(seeds[i])
		res, err := s.Add(p, g, Meta{Structure: "IRF", Fitness: fits[i]})
		if err != nil {
			t.Fatal(err)
		}
		det := float64(len(sets[i])) / 10
		if err := s.SetDetection(res.Hash, "transient", 10, 1, det, sets[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := DetectedUnion(s.ListStructure("IRF"))

	kept, dropped, err := s.Distill("IRF", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || len(dropped) != 1 {
		t.Fatalf("kept %d dropped %d, want 2/1", len(kept), len(dropped))
	}

	s2 := mustOpen(t, dir)
	after := s2.ListStructure("IRF")
	if len(after) != 2 {
		t.Fatalf("%d entries after apply+reopen, want 2", len(after))
	}
	if !reflect.DeepEqual(DetectedUnion(after), before) {
		t.Fatal("apply lost detected faults")
	}
	for _, m := range dropped {
		if _, err := os.Stat(filepath.Join(dir, "programs", m.Hash+".hxpg")); !os.IsNotExist(err) {
			t.Fatalf("dropped program %s still on disk", m.Hash)
		}
	}
}

// TestStoreDistillRejectsMixedConfigs: fault indices from different
// campaign configurations are not comparable; distilling across them
// must fail.
func TestStoreDistillRejectsMixedConfigs(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for i, seed := range []uint64{40, 41} {
		g, p := testProgram(seed)
		res, err := s.Add(p, g, Meta{Structure: "L1D", Fitness: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		// Same type, different N: not comparable.
		if err := s.SetDetection(res.Hash, "transient", 10+i, 1, 0.2, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Distill("L1D", false); err == nil {
		t.Fatal("distill across mixed campaign configs succeeded; want error")
	}
}

// TestGenotypeSidecarRejectsCorrupt: a truncated or trailing-garbage
// sidecar must error out of decode.
func TestGenotypeSidecarRejectsCorrupt(t *testing.T) {
	g, _ := testProgram(50)
	data := EncodeGenotype(g)
	if _, err := DecodeGenotype(data[:len(data)-1]); err == nil {
		t.Error("truncated sidecar decoded")
	}
	if _, err := DecodeGenotype(append(data, 0)); err == nil {
		t.Error("sidecar with trailing bytes decoded")
	}
	rt, err := DecodeGenotype(data)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Hash() != g.Hash() {
		t.Fatal("sidecar round-trip changed the genotype")
	}
}

// TestScheduledElites: seeds with detection vectors are ordered by
// greedy marginal detected-fault coverage, with unranked entries
// filling the tail in fitness order.
func TestScheduledElites(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	add := func(seed uint64, fit float64, detected []int) *gen.Genotype {
		t.Helper()
		g, p := testProgram(seed)
		res, err := s.Add(p, g, Meta{Structure: "IntAdder", Fitness: fit})
		if err != nil {
			t.Fatal(err)
		}
		if detected != nil {
			if err := s.SetDetection(res.Hash, "stuckat", 100, 7, float64(len(detected))/100, detected); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	// gBroad covers the most faults; gTop is fitter but redundant with
	// gBroad plus gEdge; gEdge uniquely covers {9}; gRaw is unranked.
	gTop := add(30, 0.9, []int{0, 1, 2})
	gBroad := add(31, 0.5, []int{0, 1, 2, 3, 4})
	gEdge := add(32, 0.4, []int{9})
	gRaw := add(33, 0.95, nil)

	got, err := s.ScheduledElites("IntAdder", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage-greedy picks first (gBroad's 5 faults, then gEdge's
	// unique {9}); the zero-gain remainder fills in fitness order
	// (gRaw 0.95 before gTop 0.9).
	want := []*gen.Genotype{gBroad, gEdge, gRaw, gTop}
	if len(got) != len(want) {
		t.Fatalf("%d seeds, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Hash() != want[i].Hash() {
			t.Fatalf("seed %d: wrong genotype (coverage-greedy order violated)", i)
		}
	}

	// k truncates after scheduling, keeping the coverage-first prefix.
	got2, err := s.ScheduledElites("IntAdder", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 || got2[0].Hash() != gBroad.Hash() || got2[1].Hash() != gEdge.Hash() {
		t.Fatal("k-truncated schedule lost the coverage-first prefix")
	}
}
