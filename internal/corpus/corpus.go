// Package corpus is the persistent program archive of the Harpocrates
// reproduction: a content-addressed, on-disk store of evolved HXPG test
// programs with per-structure metadata, the piece that turns single
// refinement runs into an accumulating production corpus (the
// SiliFuzz-style corpus-centric workflow: archive, dedupe, rank,
// distill, serve).
//
// Layout of a store directory:
//
//	<dir>/manifest.json        versioned index: hash → metadata
//	<dir>/programs/<hash>.hxpg the materialized program (prog container)
//	<dir>/genotypes/<hash>.gt  the genotype (seed + variant sequence),
//	                           present for programs evolved in-repo;
//	                           imported foreign programs have none
//
// Filenames are the 16-hex-digit content hash of the genotype
// (gen.Genotype.Hash — the same key the evaluator's fitness memo uses)
// or, for programs without a genotype, of the serialized program bytes.
// All writes go through a temp file plus atomic rename, so a crashed
// writer never leaves a torn program or manifest behind, and concurrent
// adds of the same content are harmless (last rename wins on identical
// bytes).
package corpus

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"harpocrates/internal/gen"
	"harpocrates/internal/isa"
	"harpocrates/internal/obs"
	"harpocrates/internal/prog"
	"harpocrates/internal/sched"
	"harpocrates/internal/stats"
)

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

const (
	manifestName = "manifest.json"
	programDir   = "programs"
	genotypeDir  = "genotypes"
)

// Genotype sidecar container format ("HXGT").
const (
	genoMagic   = 0x48584754 // "HXGT"
	genoVersion = 1
)

// Meta is one archived program's metadata.
type Meta struct {
	// Hash is the 16-hex-digit content hash (also the filename stem).
	Hash string `json:"hash"`
	// Name is the program's display name.
	Name string `json:"name"`
	// Structure is the canonical target structure name
	// (coverage.Structure.String()).
	Structure string `json:"structure"`
	// Fitness is the structure's coverage metric for this program.
	Fitness float64 `json:"fitness"`
	// Seed is the genotype's materialization seed (0 when unknown).
	Seed uint64 `json:"seed,omitempty"`
	// Iteration is the refinement iteration of origin (-1 for programs
	// imported from outside a refinement run).
	Iteration int `json:"iteration"`
	// Insts is the instruction count.
	Insts int `json:"insts"`
	// Genotype reports whether a genotype sidecar exists (only those
	// entries can seed future refinement runs).
	Genotype bool `json:"genotype,omitempty"`

	// Fault-detection measurement, filled by ranking. Detected holds the
	// sorted injection indices the program detects under the campaign
	// configuration (FaultType, FaultN, FaultSeed); indices are
	// comparable across programs because injection i's fault parameters
	// are a pure function of (FaultSeed, i).
	FaultType string  `json:"fault_type,omitempty"`
	FaultN    int     `json:"fault_n,omitempty"`
	FaultSeed uint64  `json:"fault_seed,omitempty"`
	Detection float64 `json:"detection,omitempty"`
	Detected  []int   `json:"detected,omitempty"`
}

// Ranked reports whether the entry carries a detection measurement.
func (m *Meta) Ranked() bool { return m.FaultN > 0 }

// clone deep-copies the metadata (callers get copies, never the
// store's internal pointers).
func (m *Meta) clone() *Meta {
	c := *m
	c.Detected = append([]int(nil), m.Detected...)
	return &c
}

// manifest is the on-disk index.
type manifest struct {
	Version int              `json:"version"`
	Entries map[string]*Meta `json:"entries"`
}

// Store is an open corpus directory. All methods are safe for
// concurrent use.
type Store struct {
	dir string
	ob  *obs.Observer

	mu      sync.Mutex
	entries map[string]*Meta
	// maxPerStructure bounds the archive per target structure
	// (0 = unbounded); see SetBound.
	maxPerStructure int
}

// Open opens (creating if needed) the corpus store at dir. The observer
// may be nil.
func Open(dir string, ob *obs.Observer) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, programDir), filepath.Join(dir, genotypeDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
	}
	s := &Store{dir: dir, ob: ob, entries: make(map[string]*Meta)}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		s.setSizeGauge()
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("corpus: parse manifest: %w", err)
	}
	if man.Version != ManifestVersion {
		return nil, fmt.Errorf("corpus: unsupported manifest version %d (want %d)", man.Version, ManifestVersion)
	}
	for h, m := range man.Entries {
		if m.Hash == "" {
			m.Hash = h
		}
		s.entries[h] = m
	}
	s.setSizeGauge()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetBound caps the number of archived programs per target structure
// (0 = unbounded). When an Add pushes a structure over the bound, the
// lowest-fitness entries are evicted deterministically (ties broken by
// hash), so the archive is a fitness-ranked top-N per structure
// regardless of insertion order.
func (s *Store) SetBound(n int) {
	s.mu.Lock()
	s.maxPerStructure = n
	s.mu.Unlock()
}

// HashProgram content-hashes a program without a genotype (foreign
// .hxpg imports) by folding its serialized bytes.
func HashProgram(p *prog.Program) uint64 {
	var buf bytes.Buffer
	_, _ = p.WriteTo(&buf)
	return HashBytes(buf.Bytes())
}

// HashBytes folds arbitrary bytes with the store's Mix64 chain — the
// single content-hashing convention shared by the corpus filenames and
// every spec hash derived elsewhere (the internal/queue result cache
// keys programs, configurations and fault specs with it, so cache keys
// and corpus keys agree about what "same content" means).
func HashBytes(data []byte) uint64 { return stats.HashBytes(data) }

// Key renders a content hash as the 16-hex-digit store key.
func Key(h uint64) string { return fmt.Sprintf("%016x", h) }

// AddResult reports what one Add did.
type AddResult struct {
	Hash    string
	Added   bool     // false: content already archived (dedup hit)
	Evicted []string // hashes evicted to keep the structure bound
}

// Add archives a program. The genotype may be nil (foreign programs);
// when present it both supplies the content hash and is persisted so
// the entry can seed future refinement runs. meta's Hash, Insts, Seed
// and Genotype fields are filled by the store; Structure, Fitness,
// Iteration and (optionally) Name come from the caller.
func (s *Store) Add(p *prog.Program, g *gen.Genotype, meta Meta) (AddResult, error) {
	var key string
	if g != nil {
		key = Key(g.Hash())
	} else {
		key = Key(HashProgram(p))
	}
	res := AddResult{Hash: key}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		s.ob.Counter("corpus.dedup.hits").Inc()
		return res, nil
	}

	var pbuf bytes.Buffer
	if _, err := p.WriteTo(&pbuf); err != nil {
		return res, fmt.Errorf("corpus: serialize program: %w", err)
	}
	if err := atomicWrite(filepath.Join(s.dir, programDir, key+".hxpg"), pbuf.Bytes()); err != nil {
		return res, err
	}
	if g != nil {
		if err := atomicWrite(filepath.Join(s.dir, genotypeDir, key+".gt"), EncodeGenotype(g)); err != nil {
			return res, err
		}
		meta.Seed = g.Seed
		meta.Genotype = true
	}
	meta.Hash = key
	meta.Insts = len(p.Insts)
	if meta.Name == "" {
		meta.Name = p.Name
	}
	s.entries[key] = meta.clone()
	res.Added = true

	if s.maxPerStructure > 0 {
		res.Evicted = s.evictLocked(meta.Structure)
		for _, h := range res.Evicted {
			if h == key {
				// The new entry itself was the weakest: it is already gone
				// again, but the add still happened (and dedup of an
				// identical future Add is not wanted for evicted content).
				res.Added = false
			}
		}
	}
	if err := s.flushLocked(); err != nil {
		return res, err
	}
	s.setSizeGauge()
	return res, nil
}

// evictLocked enforces the per-structure bound, removing the
// lowest-fitness entries (ties broken by ascending hash, so eviction is
// deterministic under any insertion order). Caller holds s.mu.
func (s *Store) evictLocked(structure string) []string {
	var sameStruct []*Meta
	for _, m := range s.entries {
		if m.Structure == structure {
			sameStruct = append(sameStruct, m)
		}
	}
	if len(sameStruct) <= s.maxPerStructure {
		return nil
	}
	sort.Slice(sameStruct, func(a, b int) bool {
		if sameStruct[a].Fitness != sameStruct[b].Fitness {
			return sameStruct[a].Fitness < sameStruct[b].Fitness
		}
		return sameStruct[a].Hash < sameStruct[b].Hash
	})
	var evicted []string
	for _, m := range sameStruct[:len(sameStruct)-s.maxPerStructure] {
		s.removeLocked(m.Hash)
		evicted = append(evicted, m.Hash)
	}
	s.ob.Counter("corpus.evictions").Add(int64(len(evicted)))
	return evicted
}

// removeLocked deletes an entry and its files. Caller holds s.mu.
func (s *Store) removeLocked(hash string) {
	delete(s.entries, hash)
	os.Remove(filepath.Join(s.dir, programDir, hash+".hxpg"))
	os.Remove(filepath.Join(s.dir, genotypeDir, hash+".gt"))
}

// Remove deletes an entry and its files, then flushes the manifest.
func (s *Store) Remove(hash string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[hash]; !ok {
		return fmt.Errorf("corpus: no entry %s", hash)
	}
	s.removeLocked(hash)
	if err := s.flushLocked(); err != nil {
		return err
	}
	s.setSizeGauge()
	return nil
}

// Get loads an archived program.
func (s *Store) Get(hash string) (*prog.Program, error) {
	return prog.Load(filepath.Join(s.dir, programDir, hash+".hxpg"))
}

// ProgramPath returns the on-disk path of an archived program.
func (s *Store) ProgramPath(hash string) string {
	return filepath.Join(s.dir, programDir, hash+".hxpg")
}

// Genotype loads an archived genotype.
func (s *Store) Genotype(hash string) (*gen.Genotype, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, genotypeDir, hash+".gt"))
	if err != nil {
		return nil, err
	}
	return DecodeGenotype(data)
}

// Entry returns a copy of one entry's metadata.
func (s *Store) Entry(hash string) (*Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.entries[hash]
	if !ok {
		return nil, false
	}
	return m.clone(), true
}

// Len returns the number of archived programs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// List returns copies of all entries, ordered by structure, then
// fitness descending, then hash — the archive's ranking order.
func (s *Store) List() []*Meta {
	s.mu.Lock()
	out := make([]*Meta, 0, len(s.entries))
	for _, m := range s.entries {
		out = append(out, m.clone())
	}
	s.mu.Unlock()
	sortRanked(out)
	return out
}

// ListStructure returns the ranked entries of one structure.
func (s *Store) ListStructure(structure string) []*Meta {
	var out []*Meta
	for _, m := range s.List() {
		if m.Structure == structure {
			out = append(out, m)
		}
	}
	return out
}

// sortRanked orders metas by (structure, fitness desc, hash).
func sortRanked(ms []*Meta) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Structure != ms[b].Structure {
			return ms[a].Structure < ms[b].Structure
		}
		if ms[a].Fitness != ms[b].Fitness {
			return ms[a].Fitness > ms[b].Fitness
		}
		return ms[a].Hash < ms[b].Hash
	})
}

// Elites returns up to k archived genotypes of the structure, fittest
// first — the seed population for a new refinement run.
func (s *Store) Elites(structure string, k int) ([]*gen.Genotype, error) {
	var out []*gen.Genotype
	for _, m := range s.ListStructure(structure) {
		if !m.Genotype || len(out) >= k {
			continue
		}
		g, err := s.Genotype(m.Hash)
		if err != nil {
			return nil, fmt.Errorf("corpus: load genotype %s: %w", m.Hash, err)
		}
		out = append(out, g)
	}
	return out, nil
}

// ScheduledElites returns up to k archived genotypes of the structure
// ordered by marginal detected-fault coverage (sched.ScheduleSeeds over
// the entries' DetectedSet vectors) instead of raw fitness: the first
// seed is the biggest single detector, each next seed adds the most
// faults the earlier picks missed, and unranked entries fall in behind
// by fitness. Detected indices are only comparable within one campaign
// configuration, so entries ranked under a config different from the
// first ranked entry's compete as unranked rather than poisoning the
// cover.
func (s *Store) ScheduledElites(structure string, k int) ([]*gen.Genotype, error) {
	var metas []*Meta
	for _, m := range s.ListStructure(structure) {
		if m.Genotype {
			metas = append(metas, m)
		}
	}
	var ref *Meta
	for _, m := range metas {
		if m.Ranked() {
			ref = m
			break
		}
	}
	seeds := make([]sched.SeedInfo, len(metas))
	for i, m := range metas {
		seeds[i] = sched.SeedInfo{Key: m.Hash, Fitness: m.Fitness}
		if ref != nil && m.Ranked() &&
			m.FaultType == ref.FaultType && m.FaultN == ref.FaultN && m.FaultSeed == ref.FaultSeed {
			seeds[i].Detected = m.Detected
		}
	}
	var out []*gen.Genotype
	for _, idx := range sched.ScheduleSeeds(seeds, k) {
		g, err := s.Genotype(metas[idx].Hash)
		if err != nil {
			return nil, fmt.Errorf("corpus: load genotype %s: %w", metas[idx].Hash, err)
		}
		out = append(out, g)
	}
	return out, nil
}

// SetDetection records a fault-detection measurement for an entry.
// detected is the campaign's detected-injection index vector
// (inject.Stats.DetectedSet): every injection whose outcome deviated
// from Masked — SDC, crash, hang or detected-by-trap alike.
func (s *Store) SetDetection(hash, faultType string, faultN int, faultSeed uint64, detection float64, detected []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.entries[hash]
	if !ok {
		return fmt.Errorf("corpus: no entry %s", hash)
	}
	m.FaultType = faultType
	m.FaultN = faultN
	m.FaultSeed = faultSeed
	m.Detection = detection
	m.Detected = append([]int(nil), detected...)
	sort.Ints(m.Detected)
	return s.flushLocked()
}

// Export copies the top k programs of a structure (all when k <= 0)
// into outDir as rank-named .hxpg files and returns the written paths —
// the fleet-serving side of the corpus workflow.
func (s *Store) Export(structure string, k int, outDir string) ([]string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	metas := s.ListStructure(structure)
	if k > 0 && len(metas) > k {
		metas = metas[:k]
	}
	var paths []string
	for i, m := range metas {
		data, err := os.ReadFile(s.ProgramPath(m.Hash))
		if err != nil {
			return nil, fmt.Errorf("corpus: export %s: %w", m.Hash, err)
		}
		name := fmt.Sprintf("%s-%03d-%s.hxpg", strings.ToLower(structure), i, m.Hash)
		dst := filepath.Join(outDir, name)
		if err := atomicWrite(dst, data); err != nil {
			return nil, err
		}
		paths = append(paths, dst)
	}
	return paths, nil
}

// flushLocked writes the manifest atomically. Caller holds s.mu.
// Map keys marshal sorted, so the same archive state always produces
// the same manifest bytes.
func (s *Store) flushLocked() error {
	man := manifest{Version: ManifestVersion, Entries: s.entries}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: marshal manifest: %w", err)
	}
	return atomicWrite(filepath.Join(s.dir, manifestName), append(data, '\n'))
}

func (s *Store) setSizeGauge() {
	s.ob.Gauge("corpus.archive.size").Set(float64(len(s.entries)))
}

// atomicWrite writes data to path via temp file + rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: write %s: %w", path, err)
	}
	return nil
}

// EncodeGenotype serializes a genotype into the HXGT sidecar container
// (magic, version, materialization seed, variant sequence). It is also
// the genotype wire format of the internal/dist protocol.
func EncodeGenotype(g *gen.Genotype) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	put := func(v any) { _ = binary.Write(&buf, le, v) }
	put(uint32(genoMagic))
	put(uint32(genoVersion))
	put(g.Seed)
	put(uint32(len(g.Variants)))
	for _, v := range g.Variants {
		put(uint16(v))
	}
	return buf.Bytes()
}

// DecodeGenotype deserializes an HXGT genotype container written by
// EncodeGenotype, rejecting truncated and over-long payloads.
func DecodeGenotype(data []byte) (*gen.Genotype, error) {
	r := bytes.NewReader(data)
	le := binary.LittleEndian
	get := func(v any) error { return binary.Read(r, le, v) }
	var magic, version uint32
	if err := get(&magic); err != nil {
		return nil, err
	}
	if magic != genoMagic {
		return nil, fmt.Errorf("corpus: bad genotype magic %#x", magic)
	}
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != genoVersion {
		return nil, fmt.Errorf("corpus: unsupported genotype version %d", version)
	}
	g := &gen.Genotype{}
	if err := get(&g.Seed); err != nil {
		return nil, err
	}
	var n uint32
	if err := get(&n); err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("corpus: unreasonable variant count %d", n)
	}
	g.Variants = make([]isa.VariantID, n)
	for i := range g.Variants {
		var v uint16
		if err := get(&v); err != nil {
			return nil, err
		}
		g.Variants[i] = isa.VariantID(v)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("corpus: %d trailing genotype bytes", r.Len())
	}
	return g, nil
}
