package corpus

import (
	"sync"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/inject"
	"harpocrates/internal/obs"
)

// TestRankConcurrentSharedGoldenCache: two ranking sweeps over
// different structure slices of one store, racing on a shared golden
// cache, must (a) be data-race free, (b) produce detection results
// identical to sequential uncached sweeps, and (c) compute each
// program's golden run exactly once across both sweeps — the archive
// holds the same three programs under both structures (keyed once by
// genotype hash, once by program hash), so every L1D campaign shares
// its golden bundle with the IRF campaign on the same program. Run
// under -race in CI.
func TestRankConcurrentSharedGoldenCache(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	const nProgs = 3
	for seed := uint64(1); seed <= nProgs; seed++ {
		g, p := testProgram(seed)
		if res, err := s.Add(p, g, Meta{Structure: "IRF"}); err != nil || !res.Added {
			t.Fatalf("add IRF program: %+v, %v", res, err)
		}
		// Same program bytes, no genotype: keyed by program hash, so it
		// coexists as a distinct entry under the second structure.
		if res, err := s.Add(p, nil, Meta{Structure: "L1D"}); err != nil || !res.Added {
			t.Fatalf("add L1D program: %+v, %v", res, err)
		}
	}

	rank := func(st coverage.Structure, gc *inject.GoldenCache, noCache, force bool,
		ob *obs.Observer) map[string]float64 {
		got := make(map[string]float64)
		var mu sync.Mutex
		ranked, _, err := s.Rank(RankOptions{
			Structure:     st,
			Type:          inject.Transient,
			N:             12,
			Seed:          5,
			Force:         force,
			GoldenCache:   gc,
			NoGoldenCache: noCache,
			Obs:           ob,
			Progress: func(m *Meta, st *inject.Stats) {
				mu.Lock()
				got[m.Hash] = m.Detection
				mu.Unlock()
			},
		})
		if err != nil {
			t.Error(err)
		}
		if ranked != nProgs {
			t.Errorf("ranked %d entries of %v, want %d", ranked, st, nProgs)
		}
		return got
	}

	// Sequential uncached reference.
	wantIRF := rank(coverage.IRF, nil, true, false, nil)
	wantL1D := rank(coverage.L1D, nil, true, false, nil)

	gc, err := inject.NewGoldenCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ob := obs.New(reg, nil)
	var wg sync.WaitGroup
	var gotIRF, gotL1D map[string]float64
	wg.Add(2)
	go func() { defer wg.Done(); gotIRF = rank(coverage.IRF, gc, false, true, ob) }()
	go func() { defer wg.Done(); gotL1D = rank(coverage.L1D, gc, false, true, ob) }()
	wg.Wait()

	for hash, want := range wantIRF {
		if gotIRF[hash] != want {
			t.Errorf("IRF detection for %s: cached %v, uncached %v", hash, gotIRF[hash], want)
		}
	}
	for hash, want := range wantL1D {
		if gotL1D[hash] != want {
			t.Errorf("L1D detection for %s: cached %v, uncached %v", hash, gotL1D[hash], want)
		}
	}
	misses := reg.Counter("inject.golden.cache.misses").Load()
	hits := reg.Counter("inject.golden.cache.hits").Load()
	if misses != nProgs {
		t.Errorf("golden computed %d times across both sweeps, want %d (one per program)", misses, nProgs)
	}
	if hits != nProgs {
		t.Errorf("golden cache hits = %d, want %d (second sweep rides the first)", hits, nProgs)
	}
}
