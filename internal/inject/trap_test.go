package inject

import (
	"strings"
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
	"harpocrates/internal/uarch"
)

// TestClassifyTrapPerException: every architectural exception kind a
// fault can raise must classify as Trap — never Crash (the trap IS the
// detection channel) and never SDC (the signature never gets compared
// on a crashed run).
func TestClassifyTrapPerException(t *testing.T) {
	golden := &uarch.Result{Signature: 0xfeed}
	for exc := isa.ExcDivide; exc <= isa.ExcAlignment; exc++ {
		res := &uarch.Result{
			Crash:     &arch.CrashError{Kind: arch.CrashDivide, Exc: exc},
			Trap:      exc,
			Signature: 0xdead, // divergent on purpose: Trap must win over SDC
		}
		if got := classify(res, golden); got != Trap {
			t.Fatalf("exception %v classified %v; want Trap", exc, got)
		}
	}
}

// TestClassifyPrecedence pins the documented outcome precedence:
// Reconverged > TimedOut > Crash(Trap/Crash) > signature > Masked.
func TestClassifyPrecedence(t *testing.T) {
	golden := &uarch.Result{Signature: 0xfeed}
	cases := []struct {
		name string
		res  *uarch.Result
		want Outcome
	}{
		{"reconverged", &uarch.Result{Reconverged: true}, Masked},
		// A timed-out run has a garbage (partial) signature; a divergent
		// signature must NOT turn the hang into an SDC.
		{"timeout-divergent-signature",
			&uarch.Result{TimedOut: true, Signature: 0xdead}, Hang},
		{"timeout-matching-signature",
			&uarch.Result{TimedOut: true, Signature: 0xfeed}, Hang},
		// A crash without trap semantics (wild branch) stays Crash.
		{"crash-no-trap",
			&uarch.Result{Crash: &arch.CrashError{Kind: arch.CrashBadBranch}}, Crash},
		{"sdc", &uarch.Result{Signature: 0xdead}, SDC},
		{"masked", &uarch.Result{Signature: 0xfeed}, Masked},
	}
	for _, tc := range cases {
		if got := classify(tc.res, golden); got != tc.want {
			t.Fatalf("%s: classified %v; want %v", tc.name, got, tc.want)
		}
	}
}

// TestGoldenNotCleanRefused: a campaign whose fault-free run crashes or
// hangs has no valid reference to grade against — RunRange must hard-
// error instead of silently producing garbage statistics.
func TestGoldenNotCleanRefused(t *testing.T) {
	// Golden crash: the loop's back-branch retargeted off the program.
	crash := loopCampaign(t, 300)
	crash.Prog[2].Ops[0] = isa.ImmOp(-100)
	crash.N = 4
	if _, err := crash.Run(); err == nil {
		t.Fatal("campaign with crashing golden run accepted")
	} else if !strings.Contains(err.Error(), "refusing to classify") {
		t.Fatalf("crashing golden error does not refuse classification: %v", err)
	}

	// Golden hang: the loop is longer than the cycle budget.
	hang := loopCampaign(t, 1_000_000)
	hang.Cfg.MaxCycles = 2000
	hang.N = 4
	if _, err := hang.Run(); err == nil {
		t.Fatal("campaign with timed-out golden run accepted")
	} else if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("hanging golden error does not name the timeout: %v", err)
	}
}

// TestDecoderCampaignTrap drives the new decoder target end to end: a
// campaign of fetch-path bit flips over a random program must surface
// the Trap outcome (undecodable bytes alone guarantee #UD events), keep
// the outcome counts summing to N, and count traps as detections.
func TestDecoderCampaignTrap(t *testing.T) {
	c := testProgram(t, 350, nil)
	c.Target = coverage.Decoder
	c.Type = Transient
	c.N = 64
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Masked+st.SDC+st.Crash+st.Hang+st.Trap != st.N {
		t.Fatalf("outcome counts don't sum: %+v", st)
	}
	if st.Trap == 0 {
		t.Fatalf("no trap among %d decoder flips: %+v", st.N, st)
	}
	if det := len(st.DetectedSet()); det != st.Detected() {
		t.Fatalf("DetectedSet has %d entries, Detected() = %d", det, st.Detected())
	}
	t.Log(st)
}

// TestTimingOnlySitesMasked: gshare and L2-tag corruption perturb only
// timing (prediction accuracy, hit/miss patterns) — never architectural
// results. Every injection must come back Masked; anything else is a
// modelling bug where a timing structure leaked into program semantics.
func TestTimingOnlySitesMasked(t *testing.T) {
	for _, target := range []coverage.Structure{coverage.Gshare, coverage.L2Tags} {
		c := testProgram(t, 350, nil)
		c.Target = target
		c.Type = Transient
		c.N = 32
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.Masked != st.N {
			t.Fatalf("%v: timing-only faults detected: %+v", target, st)
		}
	}
}

// TestNewSitesDifferential is the soundness gate for the post-paper
// fault sites: for each new target, campaign statistics must be
// bit-identical with and without each of the three acceleration paths
// (event-driven cycle skipping, checkpointed fast-forward, delta-
// resimulation termination). A divergence means an acceleration path
// mis-simulates the fault.
func TestNewSitesDifferential(t *testing.T) {
	targets := []struct {
		target coverage.Structure
		n      int
	}{
		{coverage.Decoder, 32},
		{coverage.Gshare, 24},
		{coverage.LSQ, 32},
		{coverage.ROBMeta, 32},
		{coverage.L2Tags, 24},
	}
	knobs := []struct {
		name string
		set  func(c *Campaign)
	}{
		{"NoCycleSkip", func(c *Campaign) { c.Cfg.NoCycleSkip = true }},
		{"NoFastForward", func(c *Campaign) { c.NoFastForward = true }},
		{"NoDeltaTermination", func(c *Campaign) { c.NoDeltaTermination = true }},
	}
	for _, tc := range targets {
		tc := tc
		t.Run(tc.target.String(), func(t *testing.T) {
			t.Parallel()
			run := func(set func(c *Campaign)) *Stats {
				c := testProgram(t, 350, nil)
				c.Target = tc.target
				c.Type = Transient
				c.N = tc.n
				c.Seed = 13
				if set != nil {
					set(c)
				}
				st, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			base := run(nil)
			for _, k := range knobs {
				if got := run(k.set); !got.Equal(base) {
					t.Fatalf("%s changed campaign statistics:\nbase: %+v\nknob: %+v",
						k.name, base, got)
				}
			}
		})
	}
}

// TestBurstDifferential pins the multi-bit-upset semantics: BurstLen<=1
// is bit-identical to the pre-burst campaigns (the parameter consumes no
// RNG draws), and a BurstLen=3 campaign is itself bit-identical across
// all three acceleration paths.
func TestBurstDifferential(t *testing.T) {
	run := func(burst int, set func(c *Campaign)) *Stats {
		c := testProgram(t, 350, nil)
		c.Target = coverage.IRF
		c.Type = Transient
		c.N = 32
		c.Seed = 17
		c.BurstLen = burst
		if set != nil {
			set(c)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	zero, one := run(0, nil), run(1, nil)
	if !zero.Equal(one) {
		t.Fatalf("BurstLen=1 diverges from the single-bit default:\n0: %+v\n1: %+v", zero, one)
	}
	base := run(3, nil)
	for _, k := range []struct {
		name string
		set  func(c *Campaign)
	}{
		{"NoCycleSkip", func(c *Campaign) { c.Cfg.NoCycleSkip = true }},
		{"NoFastForward", func(c *Campaign) { c.NoFastForward = true }},
		{"NoDeltaTermination", func(c *Campaign) { c.NoDeltaTermination = true }},
	} {
		if got := run(3, k.set); !got.Equal(base) {
			t.Fatalf("BurstLen=3 %s changed statistics:\nbase: %+v\nknob: %+v", k.name, base, got)
		}
	}
}

// TestNewSitesRejectNonTransient: the microarchitectural sites model
// single-event upsets only; permanent/intermittent requests must be
// rejected up front, and L2Tags must demand an enabled L2.
func TestNewSitesRejectNonTransient(t *testing.T) {
	for _, typ := range []FaultType{Permanent, Intermittent} {
		c := testProgram(t, 100, nil)
		c.Target = coverage.Decoder
		c.Type = typ
		c.N = 4
		if _, err := c.Run(); err == nil {
			t.Fatalf("decoder campaign accepted %v faults", typ)
		}
	}
	c := testProgram(t, 100, nil)
	c.Target = coverage.L2Tags
	c.Type = Transient
	c.N = 4
	c.Cfg.L2 = uarch.CacheConfig{}
	if _, err := c.Run(); err == nil {
		t.Fatal("L2Tags campaign accepted with the L2 disabled")
	}
}

// TestStatsStringIncludesTrap: the human-readable summary must surface
// the trap channel (the dist smoke test diffs these lines).
func TestStatsStringIncludesTrap(t *testing.T) {
	st := &Stats{N: 5, Masked: 1, SDC: 1, Crash: 1, Hang: 1, Trap: 1}
	if s := st.String(); !strings.Contains(s, "trap") {
		t.Fatalf("Stats.String() omits traps: %q", s)
	}
}
