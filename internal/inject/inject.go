// Package inject implements statistical fault injection (SFI) campaigns,
// the paper's GeFIN-style measurement of fault detection capability
// (§II-E): faults are injected at the microarchitecture level and
// outcomes observed at the software level.
//
// Fault models (§III-C):
//   - bit arrays (IRF, L1D): transient single-bit flips with uniformly
//     random (bit, cycle), and intermittent stuck-at windows;
//   - functional units (integer adder/multiplier, SSE FP adder/
//     multiplier): permanent stuck-at-0/1 faults at uniformly sampled
//     gates of the gate-level unit models, simulated to the end of
//     execution.
//
// A fault is *detected* when the faulty run deviates from the fault-free
// run: wrong architectural output (SDC), a crash, or a hang.
package inject

import (
	"fmt"
	"runtime"
	"sync"

	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gates"
	"harpocrates/internal/isa"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// FaultType is the temporal behaviour of injected faults (§II-B).
type FaultType int

// Fault types.
const (
	Transient FaultType = iota
	Intermittent
	Permanent
)

func (t FaultType) String() string {
	switch t {
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	case Permanent:
		return "permanent"
	}
	return fmt.Sprintf("fault?%d", int(t))
}

// DefaultFaultType returns the paper's fault model for each structure:
// transients for bit arrays, gate-level permanents for functional units.
func DefaultFaultType(st coverage.Structure) FaultType {
	if st.IsFunctionalUnit() {
		return Permanent
	}
	return Transient
}

// Outcome classifies one faulty run against the golden run (§II-E).
type Outcome int

// Outcomes.
const (
	Masked Outcome = iota
	SDC
	Crash
	Hang
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	}
	return fmt.Sprintf("outcome?%d", int(o))
}

// Campaign describes one SFI campaign on one program.
type Campaign struct {
	Prog []isa.Inst
	// Init returns a fresh deterministic initial state (with its own
	// memory) for each run.
	Init func() *arch.State

	Target coverage.Structure
	Type   FaultType
	// N is the number of injections.
	N int
	// IntermittentLen is the fault window length in cycles.
	IntermittentLen uint64

	Seed uint64
	Cfg  uarch.Config
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// Stats summarizes a campaign.
type Stats struct {
	N       int
	Masked  int
	SDC     int
	Crash   int
	Hang    int
	Skipped int // golden run failed; campaign aborted

	GoldenCycles uint64
}

// Detected returns the number of detected faults (SDC + crash + hang).
func (s *Stats) Detected() int { return s.SDC + s.Crash + s.Hang }

// Detection returns the detection capability n/N (§II-C).
func (s *Stats) Detection() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Detected()) / float64(s.N)
}

// CI returns the 95% Wilson interval of the detection capability.
func (s *Stats) CI() (lo, hi float64) { return stats.Wilson(s.Detected(), s.N) }

func (s *Stats) String() string {
	lo, hi := s.CI()
	return fmt.Sprintf("detection %.1f%% [%.1f, %.1f] (N=%d: %d sdc, %d crash, %d hang, %d masked)",
		100*s.Detection(), 100*lo, 100*hi, s.N, s.SDC, s.Crash, s.Hang, s.Masked)
}

// FUHooksFor builds the functional-unit hook set routing the target
// unit's operations through its gate-level netlist, optionally carrying
// a stuck-at fault. For the SSE FP units the double-precision datapath is
// the injection target; the single-precision path runs fault-free (both
// golden and faulty runs route identically, so semantics stay
// consistent).
func FUHooksFor(target coverage.Structure, fault *gates.StuckAt) *arch.FUHooks {
	switch target {
	case coverage.IntAdder:
		return &arch.FUHooks{IntAdd: gates.NewIntAdderUnit(fault).Add}
	case coverage.IntMul:
		return &arch.FUHooks{IntMul: gates.NewIntMulUnit(fault).Mul}
	case coverage.FPAdd:
		return &arch.FUHooks{
			FPAdd64: gates.NewFPAdd64Unit(fault).Op64,
			FPAdd32: gates.NewFPAdd32Unit(nil).Op32,
		}
	case coverage.FPMul:
		return &arch.FUHooks{
			FPMul64: gates.NewFPMul64Unit(fault).Op64,
			FPMul32: gates.NewFPMul32Unit(nil).Op32,
		}
	}
	return nil
}

// targetNetlist returns the netlist faults are sampled from.
func targetNetlist(target coverage.Structure) *gates.Netlist {
	switch target {
	case coverage.IntAdder:
		return gates.IntAdder64Netlist()
	case coverage.IntMul:
		return gates.IntMul64Netlist()
	case coverage.FPAdd:
		return gates.FPAdd64Netlist()
	case coverage.FPMul:
		return gates.FPMul64Netlist()
	}
	return nil
}

// goldenConfig prepares the fault-free configuration. FP targets route
// through the fault-free netlists so golden and faulty runs share
// arithmetic semantics; the integer netlists are bit-exact with native
// arithmetic (verified by tests), so the golden run skips them for
// speed.
func (c *Campaign) goldenConfig() uarch.Config {
	cfg := c.Cfg
	cfg.OnCycle = nil
	cfg.FU = nil
	cfg.FUOutside = nil
	cfg.FUWindow = [2]uint64{}
	if c.Target == coverage.FPAdd || c.Target == coverage.FPMul {
		cfg.FU = FUHooksFor(c.Target, nil)
	}
	return cfg
}

// Golden runs the fault-free reference and returns its result.
func (c *Campaign) Golden() *uarch.Result {
	return uarch.Run(c.Prog, c.Init(), c.goldenConfig())
}

// Run executes the campaign and returns aggregate statistics.
func (c *Campaign) Run() (*Stats, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("inject: campaign needs N > 0")
	}
	golden := c.Golden()
	if golden.TimedOut {
		return nil, fmt.Errorf("inject: golden run timed out")
	}
	st := &Stats{N: c.N, GoldenCycles: golden.Cycles}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.N {
		workers = c.N
	}
	outcomes := make([]Outcome, c.N)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = c.runOne(i, golden)
			}
		}()
	}
	for i := 0; i < c.N; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, o := range outcomes {
		switch o {
		case Masked:
			st.Masked++
		case SDC:
			st.SDC++
		case Crash:
			st.Crash++
		case Hang:
			st.Hang++
		}
	}
	return st, nil
}

// runOne executes a single injection run. The fault parameters are
// derived deterministically from (Seed, i).
func (c *Campaign) runOne(i int, golden *uarch.Result) Outcome {
	rng := stats.Derive(c.Seed, i)
	cfg := c.goldenConfig()
	// Give the faulty run headroom before declaring a hang.
	cfg.MaxCycles = golden.Cycles*4 + 100_000

	switch {
	case !c.Target.IsFunctionalUnit():
		cycle := 1 + rng.Uint64N(maxU64(golden.Cycles, 1))
		if c.Type == Transient {
			switch c.Target {
			case coverage.IRF:
				reg := rng.IntN(cfg.IntPRF)
				bit := rng.IntN(64)
				cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
					if cyc == cycle {
						core.FlipIntPRFBit(reg, bit)
					}
				}
			case coverage.FPRF:
				reg := rng.IntN(cfg.FPPRF)
				bit := rng.IntN(128)
				cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
					if cyc == cycle {
						core.FlipFPPRFBit(reg, bit)
					}
				}
			default:
				bit := rng.IntN(cfg.L1D.SizeBytes * 8)
				cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
					if cyc == cycle {
						core.FlipCacheBit(bit)
					}
				}
			}
		} else { // intermittent stuck-at window
			end := cycle + maxU64(c.IntermittentLen, 1)
			val := rng.IntN(2) == 1
			switch c.Target {
			case coverage.IRF:
				reg := rng.IntN(cfg.IntPRF)
				bit := rng.IntN(64)
				cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
					if cyc >= cycle && cyc < end {
						core.ForceIntPRFBit(reg, bit, val)
					}
				}
			case coverage.FPRF:
				reg := rng.IntN(cfg.FPPRF)
				bit := rng.IntN(128)
				cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
					if cyc >= cycle && cyc < end {
						core.ForceFPPRFBit(reg, bit, val)
					}
				}
			default:
				bit := rng.IntN(cfg.L1D.SizeBytes * 8)
				cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
					if cyc >= cycle && cyc < end {
						core.ForceCacheBit(bit, val)
					}
				}
			}
		}

	default: // functional units: gate-level stuck-at
		n := targetNetlist(c.Target)
		fault := &gates.StuckAt{Gate: rng.IntN(n.NumGates()), Value: rng.IntN(2) == 1}
		cfg.FU = FUHooksFor(c.Target, fault)
		if c.Type == Intermittent {
			start := 1 + rng.Uint64N(maxU64(golden.Cycles, 1))
			cfg.FUOutside = FUHooksFor(c.Target, nil)
			cfg.FUWindow = [2]uint64{start, start + maxU64(c.IntermittentLen, 1)}
			if c.Target == coverage.IntAdder || c.Target == coverage.IntMul {
				cfg.FUOutside = nil // native semantics are bit-exact
			}
		}
	}

	res := uarch.Run(c.Prog, c.Init(), cfg)
	switch {
	case res.TimedOut:
		return Hang
	case res.Crash != nil:
		return Crash
	case res.Signature != golden.Signature:
		return SDC
	default:
		return Masked
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
