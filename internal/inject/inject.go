// Package inject implements statistical fault injection (SFI) campaigns,
// the paper's GeFIN-style measurement of fault detection capability
// (§II-E): faults are injected at the microarchitecture level and
// outcomes observed at the software level.
//
// Fault models (§III-C):
//   - bit arrays (IRF, L1D): transient single-bit flips with uniformly
//     random (bit, cycle), and intermittent stuck-at windows;
//   - functional units (integer adder/multiplier, SSE FP adder/
//     multiplier): permanent stuck-at-0/1 faults at uniformly sampled
//     gates of the gate-level unit models, simulated to the end of
//     execution.
//
// A fault is *detected* when the faulty run deviates from the fault-free
// run: wrong architectural output (SDC), an architectural exception
// (Trap — div-zero, invalid opcode, access/alignment faults), a crash
// without trap semantics (wild branch off the program image), or a
// hang. Trap is the cheapest channel to observe on real hardware: the
// exception machinery reports it with no software signature comparison.
package inject

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"harpocrates/internal/ace"
	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/gates"
	"harpocrates/internal/isa"
	"harpocrates/internal/obs"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// FaultType is the temporal behaviour of injected faults (§II-B).
type FaultType int

// Fault types.
const (
	Transient FaultType = iota
	Intermittent
	Permanent
)

// faultTypeNames is the single table behind String and ParseFaultType,
// indexed by FaultType — the same scheme coverage.Parse uses, so names
// cannot drift between the two directions.
var faultTypeNames = [...]string{
	Transient:    "transient",
	Intermittent: "intermittent",
	Permanent:    "permanent",
}

func (t FaultType) String() string {
	if int(t) < len(faultTypeNames) {
		return faultTypeNames[t]
	}
	return fmt.Sprintf("fault?%d", int(t))
}

// ParseFaultType maps a fault-type name (the String() form,
// case-insensitively) back to its FaultType. It is the inverse the
// command-line tools and the wire protocol use.
func ParseFaultType(name string) (FaultType, error) {
	t := strings.ToLower(strings.TrimSpace(name))
	for ft, n := range faultTypeNames {
		if t == n {
			return FaultType(ft), nil
		}
	}
	return 0, fmt.Errorf("inject: unknown fault type %q (valid: %s)",
		name, strings.Join(faultTypeNames[:], ", "))
}

// DefaultFaultType returns the paper's fault model for each structure:
// transients for bit arrays, gate-level permanents for functional units.
func DefaultFaultType(st coverage.Structure) FaultType {
	if st.IsFunctionalUnit() {
		return Permanent
	}
	return Transient
}

// Outcome classifies one faulty run against the golden run (§II-E).
type Outcome int

// Outcomes. The numeric values travel through the dist wire protocol
// (Stats.Outcomes), so existing values are frozen and new outcomes are
// only ever appended — which is why Trap sits after Hang despite being
// logically adjacent to Crash.
const (
	Masked Outcome = iota
	SDC
	Crash
	Hang
	// Trap is detection by architectural exception: the fault turned a
	// valid instruction into a #DE/#UD/#GP/#PF/#SS/#AC trap. On real
	// hardware this is observable through the exception machinery alone,
	// making it a cheaper detection channel than signature comparison
	// (SDC) or a watchdog (Hang).
	Trap
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case Trap:
		return "trap"
	}
	return fmt.Sprintf("outcome?%d", int(o))
}

// Campaign describes one SFI campaign on one program.
type Campaign struct {
	Prog []isa.Inst
	// Init returns a fresh deterministic initial state (with its own
	// memory) for each run.
	Init func() *arch.State

	Target coverage.Structure
	Type   FaultType
	// N is the number of injections.
	N int
	// IntermittentLen is the fault window length in cycles.
	IntermittentLen uint64

	// BurstLen is the multi-bit-upset width for the bit-array targets
	// (IRF, FPRF, L1D): each injection flips (or forces) BurstLen
	// adjacent bits starting at the drawn position, wrapping within the
	// entry. 0 or 1 means the classic single-bit model. Burst width is a
	// campaign parameter, not an RNG draw, so BurstLen=1 campaigns are
	// bit-identical to pre-burst ones for a fixed seed.
	BurstLen int

	Seed uint64
	Cfg  uarch.Config
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int

	// CheckpointInterval is the initial spacing (in cycles) of the
	// fast-forward checkpoints taken during the golden run; the campaign
	// adaptively doubles it to keep at most a fixed number of snapshots.
	// 0 means a sensible default.
	CheckpointInterval uint64
	// NoFastForward disables checkpointed resume and ACE
	// pre-classification, simulating every injection from cycle 0 (the
	// pre-optimization path; kept for ablation and validation).
	NoFastForward bool
	// ValidateAll simulates even provably-masked injections and fails
	// the campaign if the simulated outcome disagrees with the
	// pre-classifier (a soundness self-check; slow). It also re-simulates
	// every delta-terminated run to completion and fails the campaign if
	// the full run is not Masked.
	ValidateAll bool
	// NoDeltaTermination disables delta resimulation (the ablation /
	// soundness knob): every simulated injection runs to program
	// completion instead of stopping at the first compare point where its
	// state reconverges with the golden trajectory. Outcome vectors are
	// bit-identical either way (asserted by differential tests); the knob
	// exists to prove it and to measure the speedup.
	NoDeltaTermination bool
	// DeltaInterval is the spacing (in cycles) of the golden-trajectory
	// compare points; 0 means uarch.DefaultDeltaInterval.
	DeltaInterval uint64

	// GoldenCache, when set together with a non-zero ProgramHash, lets
	// the campaign reuse a previously computed golden bundle (result,
	// checkpoints, delta trajectory, interval logs) keyed by
	// (ProgramHash, golden config) instead of re-simulating the
	// fault-free reference. Outcomes are bit-identical either way
	// (asserted by differential tests); see golden.go.
	GoldenCache *GoldenCache
	// ProgramHash is the content hash (stats.HashBytes) of the encoded
	// program bytes. 0 disables the golden cache — the campaign cannot
	// derive it from Prog alone, since distinct listings could decode
	// to equal Inst slices only by accident of the caller.
	ProgramHash uint64
	// NoGoldenCache disables golden reuse even when a cache is wired
	// (the ablation knob behind the -no-golden-cache flags).
	NoGoldenCache bool

	// Obs, if set, receives campaign metrics (per-phase wall-clock
	// timings, outcome counts, pre-classification and checkpoint-reuse
	// rates) and a trace span per campaign. Purely observational; nil
	// disables all instrumentation.
	Obs *obs.Observer
}

// Stats summarizes a campaign.
type Stats struct {
	N       int
	Masked  int
	SDC     int
	Crash   int
	Hang    int
	Trap    int // detected by architectural exception
	Skipped int // golden run failed; campaign aborted

	GoldenCycles uint64

	// Outcomes is the per-injection outcome, indexed by injection
	// number. Injection i's fault parameters are a pure function of
	// (Seed, i), so for a fixed campaign configuration the index
	// identifies a concrete fault — the detected-fault sets of different
	// programs under the same configuration are directly comparable,
	// which is what corpus distillation minimizes over.
	Outcomes []Outcome
}

// Detected returns the number of detected faults (SDC + crash + hang +
// trap).
func (s *Stats) Detected() int { return s.SDC + s.Crash + s.Hang + s.Trap }

// Equal reports whether two campaigns produced identical statistics,
// including the per-injection outcome vector.
func (s *Stats) Equal(o *Stats) bool {
	return s.N == o.N && s.Masked == o.Masked && s.SDC == o.SDC &&
		s.Crash == o.Crash && s.Hang == o.Hang && s.Trap == o.Trap &&
		s.Skipped == o.Skipped &&
		s.GoldenCycles == o.GoldenCycles && slices.Equal(s.Outcomes, o.Outcomes)
}

// DetectedSet returns the sorted injection indices whose faults were
// detected (outcome SDC, crash, hang or trap).
func (s *Stats) DetectedSet() []int {
	var out []int
	for i, o := range s.Outcomes {
		if o != Masked {
			out = append(out, i)
		}
	}
	return out
}

// MergeStats combines shard partials produced by RunRange back into the
// whole-campaign statistics. Parts must be supplied in ascending shard
// order covering contiguous spec ranges; the merge concatenates outcome
// vectors and sums counts, so for a fixed (seed, config) the result is
// bit-identical to a single Run — merge order is fixed by shard index,
// never by arrival order. Shards of one campaign replay the same
// deterministic golden run; diverging GoldenCycles means the partials
// do not belong to one campaign and the merge refuses.
func MergeStats(parts []*Stats) (*Stats, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("inject: merge: no shard results")
	}
	out := &Stats{GoldenCycles: parts[0].GoldenCycles}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("inject: merge: missing shard %d", i)
		}
		if p.GoldenCycles != out.GoldenCycles {
			return nil, fmt.Errorf("inject: merge: shard %d golden run diverges (%d cycles vs %d)",
				i, p.GoldenCycles, out.GoldenCycles)
		}
		out.N += p.N
		out.Masked += p.Masked
		out.SDC += p.SDC
		out.Crash += p.Crash
		out.Hang += p.Hang
		out.Trap += p.Trap
		out.Skipped += p.Skipped
		out.Outcomes = append(out.Outcomes, p.Outcomes...)
	}
	return out, nil
}

// Detection returns the detection capability n/N (§II-C).
func (s *Stats) Detection() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Detected()) / float64(s.N)
}

// CI returns the 95% Wilson interval of the detection capability.
func (s *Stats) CI() (lo, hi float64) { return stats.Wilson(s.Detected(), s.N) }

func (s *Stats) String() string {
	lo, hi := s.CI()
	return fmt.Sprintf("detection %.1f%% [%.1f, %.1f] (N=%d: %d sdc, %d crash, %d hang, %d trap, %d masked)",
		100*s.Detection(), 100*lo, 100*hi, s.N, s.SDC, s.Crash, s.Hang, s.Trap, s.Masked)
}

// FUHooksFor builds the functional-unit hook set routing the target
// unit's operations through its gate-level netlist, optionally carrying
// a stuck-at fault. For the SSE FP units the double-precision datapath is
// the injection target; the single-precision path runs fault-free (both
// golden and faulty runs route identically, so semantics stay
// consistent).
func FUHooksFor(target coverage.Structure, fault *gates.StuckAt) *arch.FUHooks {
	switch target {
	case coverage.IntAdder:
		return &arch.FUHooks{IntAdd: gates.NewIntAdderUnit(fault).Add}
	case coverage.IntMul:
		return &arch.FUHooks{IntMul: gates.NewIntMulUnit(fault).Mul}
	case coverage.FPAdd:
		return &arch.FUHooks{
			FPAdd64: gates.NewFPAdd64Unit(fault).Op64,
			FPAdd32: gates.NewFPAdd32Unit(nil).Op32,
		}
	case coverage.FPMul:
		return &arch.FUHooks{
			FPMul64: gates.NewFPMul64Unit(fault).Op64,
			FPMul32: gates.NewFPMul32Unit(nil).Op32,
		}
	}
	return nil
}

// targetNetlist returns the netlist faults are sampled from.
func targetNetlist(target coverage.Structure) *gates.Netlist {
	switch target {
	case coverage.IntAdder:
		return gates.IntAdder64Netlist()
	case coverage.IntMul:
		return gates.IntMul64Netlist()
	case coverage.FPAdd:
		return gates.FPAdd64Netlist()
	case coverage.FPMul:
		return gates.FPMul64Netlist()
	}
	return nil
}

// goldenConfig prepares the fault-free configuration. FP targets route
// through the fault-free netlists so golden and faulty runs share
// arithmetic semantics; the integer netlists are bit-exact with native
// arithmetic (verified by tests), so the golden run skips them for
// speed.
func (c *Campaign) goldenConfig() uarch.Config {
	cfg := c.Cfg
	cfg.OnCycle = nil
	cfg.FU = nil
	cfg.FUOutside = nil
	cfg.FUWindow = [2]uint64{}
	cfg.DeltaRecord = nil
	cfg.DeltaCompare = nil
	cfg.DeltaQuiesce = 0
	// A caller-set Record* flag would make every faulty run draw an
	// interval recorder from the pool and never release it (recorders
	// escape through Result, which faulty runs discard): the campaign owns
	// all instrumentation, so clear the flags here and re-enable exactly
	// the golden run's target recorder in goldenInstrumented.
	cfg.RecordIRFIntervals = false
	cfg.RecordFPRFIntervals = false
	cfg.RecordL1DIntervals = false
	if c.Target == coverage.FPAdd || c.Target == coverage.FPMul {
		cfg.FU = FUHooksFor(c.Target, nil)
	}
	return cfg
}

// Golden runs the fault-free reference and returns its result.
func (c *Campaign) Golden() *uarch.Result {
	return uarch.Run(c.Prog, c.Init(), c.goldenConfig())
}

// Checkpointing parameters: the golden run snapshots its state every
// defaultCheckpointInterval cycles, and when maxCheckpoints snapshots
// accumulate, every other one is dropped and the spacing doubles — one
// pass, bounded memory, spacing proportional to program length.
const (
	defaultCheckpointInterval = 512
	maxCheckpoints            = 16
)

// faultSpec is one injection's precomputed parameters. Deriving all
// specs up front (in exactly the RNG order the original per-run code
// used, so outcomes stay bit-identical for a fixed seed) lets the
// campaign sort injections by cycle and resume each from the nearest
// checkpoint.
type faultSpec struct {
	idx   int
	start uint64 // first cycle the fault manifests (0 = active from reset)
	end   uint64 // first cycle past an intermittent window
	reg   int    // PRF entry (bit-array targets)
	bit   int    // bit within the entry / flat cache bit
	val   bool   // stuck-at value (intermittent / FU faults)
	gate  int    // netlist gate (FU faults)
}

// deriveSpec computes injection i's fault parameters from (Seed, i).
func (c *Campaign) deriveSpec(i int, goldenCycles uint64, nl *gates.Netlist) faultSpec {
	rng := stats.Derive(c.Seed, i)
	sp := faultSpec{idx: i}
	if !c.Target.IsFunctionalUnit() {
		sp.start = 1 + rng.Uint64N(max(goldenCycles, 1))
		if c.Type != Transient {
			sp.end = sp.start + max(c.IntermittentLen, 1)
			sp.val = rng.IntN(2) == 1
		}
		switch c.Target {
		case coverage.IRF:
			sp.reg = rng.IntN(c.Cfg.IntPRF)
			sp.bit = rng.IntN(64)
		case coverage.FPRF:
			sp.reg = rng.IntN(c.Cfg.FPPRF)
			sp.bit = rng.IntN(128)
		case coverage.L1D:
			sp.bit = rng.IntN(c.Cfg.L1D.SizeBytes * 8)
		case coverage.Decoder:
			// Reduced modulo the fetched instruction's encoded length at
			// arm-consumption time; drawing a generous range keeps every
			// byte of the longest encoding reachable.
			sp.bit = rng.IntN(1024)
		case coverage.Gshare:
			sp.bit = rng.IntN(2 << uint(c.Cfg.GshareBits))
		case coverage.LSQ:
			sp.reg = rng.IntN(max(c.Cfg.SQSize, 1))
			sp.bit = rng.IntN(256)
		case coverage.ROBMeta:
			sp.reg = rng.IntN(max(c.Cfg.ROBSize, 1))
			sp.bit = rng.IntN(31)
		case coverage.L2Tags:
			sp.reg = rng.IntN(max(c.Cfg.L2.SizeBytes/max(c.Cfg.L2.LineBytes, 1), 1))
			sp.bit = rng.IntN(64)
		default:
			panic(fmt.Sprintf("inject: no fault model for structure %v", c.Target))
		}
		return sp
	}
	sp.gate = rng.IntN(nl.NumGates())
	sp.val = rng.IntN(2) == 1
	if c.Type == Intermittent {
		sp.start = 1 + rng.Uint64N(max(goldenCycles, 1))
		sp.end = sp.start + max(c.IntermittentLen, 1)
	}
	return sp
}

// cfgFor builds the faulty-run configuration for one spec, identical to
// what the pre-optimization per-run code produced.
func (c *Campaign) cfgFor(sp faultSpec, golden *uarch.Result) uarch.Config {
	cfg := c.goldenConfig()
	// Give the faulty run headroom before declaring a hang.
	cfg.MaxCycles = golden.Cycles*4 + 100_000

	if !c.Target.IsFunctionalUnit() {
		// Bit-array faults go on the sparse event schedule rather than an
		// opaque OnCycle hook: a transient flip is a one-shot event at its
		// cycle, an intermittent stuck-at is one window forced every cycle
		// inside. The schedule tells the run loop exactly which cycles
		// matter, so it can fast-forward stalls everywhere else — where the
		// old per-cycle hook forced naive cycle-by-cycle simulation of the
		// entire faulty run.
		reg, bit, val := sp.reg, sp.bit, sp.val
		burst := max(c.BurstLen, 1)
		var fire func(core *uarch.Core, cyc uint64)
		if c.Type == Transient {
			switch c.Target {
			case coverage.IRF:
				fire = func(core *uarch.Core, _ uint64) {
					for j := 0; j < burst; j++ {
						core.FlipIntPRFBit(reg, (bit+j)%64)
					}
				}
			case coverage.FPRF:
				fire = func(core *uarch.Core, _ uint64) {
					for j := 0; j < burst; j++ {
						core.FlipFPPRFBit(reg, (bit+j)%128)
					}
				}
			case coverage.L1D:
				fire = func(core *uarch.Core, _ uint64) {
					for j := 0; j < burst; j++ {
						core.FlipCacheBit((bit + j) % core.NumCacheBits())
					}
				}
			case coverage.Decoder:
				fire = func(core *uarch.Core, _ uint64) { core.ArmDecoderFault(bit) }
			case coverage.Gshare:
				fire = func(core *uarch.Core, _ uint64) { core.FlipGshareBit(bit) }
			case coverage.LSQ:
				fire = func(core *uarch.Core, _ uint64) { core.FlipStoreBufferBit(reg, bit) }
			case coverage.ROBMeta:
				fire = func(core *uarch.Core, _ uint64) { core.FlipROBNextBit(reg, bit) }
			case coverage.L2Tags:
				fire = func(core *uarch.Core, _ uint64) { core.FlipL2TagBit(reg, bit) }
			}
			cfg.Events = []uarch.CycleEvent{{Start: sp.start, Fire: fire}}
			return cfg
		}
		switch c.Target { // intermittent stuck-at window (bit arrays only)
		case coverage.IRF:
			fire = func(core *uarch.Core, _ uint64) {
				for j := 0; j < burst; j++ {
					core.ForceIntPRFBit(reg, (bit+j)%64, val)
				}
			}
		case coverage.FPRF:
			fire = func(core *uarch.Core, _ uint64) {
				for j := 0; j < burst; j++ {
					core.ForceFPPRFBit(reg, (bit+j)%128, val)
				}
			}
		default:
			fire = func(core *uarch.Core, _ uint64) {
				for j := 0; j < burst; j++ {
					core.ForceCacheBit((bit+j)%core.NumCacheBits(), val)
				}
			}
		}
		cfg.Events = []uarch.CycleEvent{{Start: sp.start, End: sp.end, Fire: fire}}
		return cfg
	}

	// Functional units: gate-level stuck-at.
	fault := &gates.StuckAt{Gate: sp.gate, Value: sp.val}
	cfg.FU = FUHooksFor(c.Target, fault)
	if c.Type == Intermittent {
		cfg.FUOutside = FUHooksFor(c.Target, nil)
		cfg.FUWindow = [2]uint64{sp.start, sp.end}
		if c.Target == coverage.IntAdder || c.Target == coverage.IntMul {
			cfg.FUOutside = nil // native semantics are bit-exact
		}
	}
	return cfg
}

// deltaEligible reports whether delta resimulation applies to this
// campaign at all: every fault the campaign injects must quiesce — stop
// mutating state — at a known cycle, after which reconvergence with the
// golden trajectory proves the rest of the run identical. Transient and
// windowed faults quiesce; a permanent functional-unit fault never does
// (cfgFor arms the faulty netlist for the whole run when Type is not
// Intermittent), so those campaigns run every injection to completion.
func (c *Campaign) deltaEligible() bool {
	if c.NoDeltaTermination || c.NoFastForward {
		return false
	}
	if c.Target.IsFunctionalUnit() {
		return c.Type == Intermittent
	}
	return true
}

// deltaQuiesce returns the first cycle at which spec sp's fault can no
// longer mutate state: one past a transient flip, the first cycle after
// a stuck-at window. Compare points before it are ignored (a match
// before the fault finished manifesting proves nothing — for a pending
// one-shot flip it would even skip the fault entirely).
func (c *Campaign) deltaQuiesce(sp faultSpec) uint64 {
	if c.Type == Transient && !c.Target.IsFunctionalUnit() {
		return sp.start + 1
	}
	return sp.end
}

// goldenInstrumented runs the fault-free reference once, collecting
// fast-forward checkpoints, (for transient bit-array campaigns) the
// consumed-interval log of the target structure, and (for delta-eligible
// campaigns) the reconvergence trajectory. The instrumentation is purely
// observational: the result is bit-identical to Golden().
func (c *Campaign) goldenInstrumented() (*uarch.Result, []*uarch.Checkpoint, *uarch.DeltaTrajectory) {
	cfg := c.goldenConfig()
	if c.NoFastForward {
		return uarch.Run(c.Prog, c.Init(), cfg), nil, nil
	}
	if c.Type == Transient && !c.Target.IsFunctionalUnit() {
		// Only the ACE-tracked bit arrays have a consumed-interval
		// pre-classifier; the microarchitectural sites (decoder, gshare,
		// LSQ, ROB metadata, L2 tags) are always simulated.
		switch c.Target {
		case coverage.IRF:
			cfg.RecordIRFIntervals = true
		case coverage.FPRF:
			cfg.RecordFPRFIntervals = true
		case coverage.L1D:
			cfg.RecordL1DIntervals = true
		}
	}
	var traj *uarch.DeltaTrajectory
	if c.deltaEligible() {
		traj = uarch.GetDeltaTrajectory(c.DeltaInterval)
		cfg.DeltaRecord = traj
	}
	var cks []*uarch.Checkpoint
	interval := c.CheckpointInterval
	if interval == 0 {
		interval = defaultCheckpointInterval
	}
	next := interval
	cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
		if cyc != next {
			return
		}
		if len(cks) >= maxCheckpoints {
			kept := cks[:0]
			for j := 1; j < len(cks); j += 2 {
				cks[j-1].Release()
				kept = append(kept, cks[j])
			}
			if len(cks)%2 == 1 {
				cks[len(cks)-1].Release()
			}
			cks = kept
			interval *= 2
		}
		cks = append(cks, core.Checkpoint())
		next = cyc + interval
	}
	golden := uarch.Run(c.Prog, c.Init(), cfg)
	return golden, cks, traj
}

// recorderFor returns the golden run's interval log for the campaign's
// target structure (nil when pre-classification does not apply).
func (c *Campaign) recorderFor(golden *uarch.Result) *ace.IntervalRecorder {
	switch c.Target {
	case coverage.IRF:
		return golden.IRFIntervals
	case coverage.FPRF:
		return golden.FPRFIntervals
	case coverage.L1D:
		return golden.L1DIntervals
	}
	return nil
}

// preMasked reports whether a transient flip is provably masked without
// simulation: the flip either lands at or past the golden run's final
// cycle (the injection hook never fires in a run that stays on the
// golden trajectory) or outside every consumed interval of its cell —
// no access, right- or wrong-path, ever observes the corrupted value, so
// the faulty run is cycle-for-cycle identical to the golden run.
func (c *Campaign) preMasked(sp faultSpec, rec *ace.IntervalRecorder, goldenCycles uint64) bool {
	if sp.start >= goldenCycles {
		return true
	}
	// Every bit of the burst must be unconsumed; one observed bit makes
	// the whole injection simulate.
	for j := 0; j < max(c.BurstLen, 1); j++ {
		var cell int
		switch c.Target {
		case coverage.IRF:
			cell = sp.reg*64 + (sp.bit+j)%64
		case coverage.FPRF:
			b := (sp.bit + j) % 128
			cell = (2*sp.reg+b/64)*64 + b%64
		default:
			cell = ((sp.bit + j) % (c.Cfg.L1D.SizeBytes * 8)) / 8 // the L1D log is per byte
		}
		if rec.Consumed(cell, sp.start) {
			return false
		}
	}
	return true
}

// nearestCheckpoint returns the latest checkpoint at or before cycle
// (cks is in ascending cycle order), or nil.
func nearestCheckpoint(cks []*uarch.Checkpoint, cycle uint64) *uarch.Checkpoint {
	i := sort.Search(len(cks), func(i int) bool { return cks[i].Cycle() > cycle })
	if i == 0 {
		return nil
	}
	return cks[i-1]
}

// simulate runs one injection configuration, resuming from the nearest
// checkpoint preceding the fault's first active cycle when one exists.
// The prefix before that cycle is bit-identical to the golden run (the
// fault has not manifested yet), so resuming cannot change the outcome.
func (c *Campaign) simulate(cfg uarch.Config, sp faultSpec, cks []*uarch.Checkpoint) *uarch.Result {
	if ck := nearestCheckpoint(cks, sp.start); ck != nil && sp.start > 0 {
		c.Obs.Counter("inject.resume.checkpoint").Inc()
		return uarch.RunFromCheckpoint(ck, cfg)
	}
	c.Obs.Counter("inject.resume.reset").Inc()
	return uarch.Run(c.Prog, c.Init(), cfg)
}

// runSpec simulates one injection. When the campaign carries a golden
// delta trajectory (traj non-nil), the faulty run compares itself
// against it from the fault's quiesce cycle on and stops at the first
// full state match — Masked by construction, without simulating the
// tail. Under ValidateAll every such early termination is re-simulated
// to completion and the campaign fails if the full run is not Masked.
func (c *Campaign) runSpec(sp faultSpec, golden *uarch.Result, cks []*uarch.Checkpoint,
	traj *uarch.DeltaTrajectory) (Outcome, error) {
	cfg := c.cfgFor(sp, golden)
	if traj != nil {
		cfg.DeltaCompare = traj
		cfg.DeltaQuiesce = c.deltaQuiesce(sp)
	}
	res := c.simulate(cfg, sp, cks)
	out := classify(res, golden)
	if traj != nil {
		if res.Reconverged {
			c.Obs.Counter("inject.delta.converged").Inc()
			var saved uint64
			if golden.Cycles > res.Cycles {
				saved = golden.Cycles - res.Cycles
			}
			c.Obs.Counter("inject.delta.cycles_saved").Add(int64(saved))
			c.Obs.Histogram("inject.delta.saved_cycles").Observe(int64(saved))
			if c.ValidateAll {
				full := cfg
				full.DeltaCompare = nil
				full.DeltaQuiesce = 0
				if fullOut := classify(c.simulate(full, sp, cks), golden); fullOut != Masked {
					return out, fmt.Errorf(
						"inject: delta termination unsound: injection %d (cycle %d) reconverged at cycle %d but simulates as %v",
						sp.idx, sp.start, res.Cycles, fullOut)
				}
			}
		} else {
			c.Obs.Counter("inject.delta.diverged").Inc()
		}
	}
	return out, nil
}

// classify grades a faulty run against the golden run (§II-E). A
// reconverged run is checked first: it stopped mid-program with its
// machine state equal to the golden run's at the same cycle, so it would
// have finished exactly as the golden run did — Masked by construction
// (requires a clean golden run, which RunRange refuses to proceed
// without). Precedence is deliberate and fixed:
//
//   - TimedOut before everything observable: a run that hit the
//     watchdog is a Hang even when its (partial) signature already
//     diverged — the divergent signature was never delivered as an
//     output, the hang is what the wrapper observes.
//   - A crash with trap semantics (Result.Trap != ExcNone) is Trap:
//     the exception is architecturally reported, a cheaper detection
//     channel than any comparison. Crashes without trap semantics
//     (wild branch off the program image) remain Crash.
//   - Only a run that completed is graded by signature (SDC/Masked).
func classify(res, golden *uarch.Result) Outcome {
	switch {
	case res.Reconverged:
		return Masked
	case res.TimedOut:
		return Hang
	case res.Crash != nil:
		if res.Trap != isa.ExcNone {
			return Trap
		}
		return Crash
	case res.Signature != golden.Signature:
		return SDC
	default:
		return Masked
	}
}

// goldenErr describes why a golden run is not clean.
func goldenErr(golden *uarch.Result) error {
	if golden.Crash != nil {
		return golden.Crash
	}
	return fmt.Errorf("watchdog fired at cycle %d", golden.Cycles)
}

// Run executes the campaign and returns aggregate statistics.
//
// The fast path (default) simulates one instrumented golden run, proves
// un-consumed transient flips masked without simulating them, sorts the
// remaining injections by fault cycle and resumes each from the nearest
// preceding checkpoint. Per-outcome counts are bit-identical to the
// NoFastForward path for a fixed seed (asserted by tests across all
// structures and by ValidateAll).
func (c *Campaign) Run() (*Stats, error) {
	return c.RunRange(0, c.N)
}

// RunRange executes the contiguous shard [lo, hi) of the campaign's N
// injection specs and returns the shard's partial statistics: Stats.N is
// hi-lo and Outcomes[i] is the outcome of injection lo+i. Injection i's
// fault parameters are a pure function of (Seed, i) and the golden run
// is deterministic, so disjoint shards — run in any process, on any
// machine — merge back (MergeStats, in shard order) into statistics
// bit-identical to a single Run. This is the unit of work the
// distributed coordinator (internal/dist) hands to workers.
func (c *Campaign) RunRange(lo, hi int) (*Stats, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("inject: campaign needs N > 0")
	}
	if lo < 0 || hi > c.N || lo >= hi {
		return nil, fmt.Errorf("inject: bad spec range [%d, %d) of %d", lo, hi, c.N)
	}
	if c.Target < 0 || c.Target >= coverage.NumStructures {
		return nil, fmt.Errorf("inject: unknown target structure %d (valid: %s)",
			int(c.Target), coverage.ValidNames())
	}
	if c.Target > coverage.FPMul && c.Type != Transient {
		return nil, fmt.Errorf("inject: target %v supports only transient faults (got %v)",
			c.Target, c.Type)
	}
	if c.Target == coverage.L2Tags && c.Cfg.L2.SizeBytes == 0 {
		return nil, fmt.Errorf("inject: target %v requires an enabled L2 (Cfg.L2.SizeBytes > 0)",
			c.Target)
	}
	n := hi - lo
	stopRun := c.Obs.Phase("inject.run")
	defer stopRun()
	span := c.Obs.Span("campaign", obs.Fields{
		"target": c.Target.String(), "type": c.Type.String(),
		"n": c.N, "lo": lo, "hi": hi, "seed": c.Seed,
	})

	stopGolden := c.Obs.Phase("inject.phase.golden")
	golden, cks, traj, releaseGolden := c.acquireGolden()
	stopGolden()
	// None of the golden instrumentation escapes RunRange (only outcome
	// counts do). On the uncached path the release returns the interval
	// logs' backing arrays, every checkpoint's core snapshot and the
	// delta trajectory to their pools for the next campaign; on the
	// cached path it drops this campaign's reference so the cache can do
	// the same once the bundle is evicted. This defer runs on every exit
	// path, including the golden-timeout and validation-failure errors,
	// after wg.Wait has quiesced the workers.
	defer releaseGolden()
	if !golden.Clean() {
		// A fault-free run that crashes or hangs has no meaningful output
		// signature: grading faulty runs against it would silently call
		// every fault that reproduces the golden crash "Masked" and every
		// fault that dodges it "SDC" — against a garbage reference.
		// Refuse the campaign instead of producing wrong statistics (the
		// deferred release above returns the instrumentation to its
		// pools).
		why := "crashed"
		if golden.TimedOut {
			why = "timed out"
		}
		err := fmt.Errorf("inject: golden (fault-free) run %s: %w; refusing to classify faults against it",
			why, goldenErr(golden))
		span.End(obs.Fields{"error": err.Error()})
		return nil, err
	}
	st := &Stats{N: n, GoldenCycles: golden.Cycles}
	if c.Obs.Enabled() {
		ipc := 0.0
		if golden.Cycles > 0 {
			ipc = float64(golden.Instructions) / float64(golden.Cycles)
		}
		span.Event("golden", obs.Fields{
			"cycles": golden.Cycles, "checkpoints": len(cks), "ipc": ipc,
		})
	}

	stopClassify := c.Obs.Phase("inject.phase.classify")
	var nl *gates.Netlist
	if c.Target.IsFunctionalUnit() {
		nl = targetNetlist(c.Target)
	}
	specs := make([]faultSpec, 0, n)
	for i := lo; i < hi; i++ {
		specs = append(specs, c.deriveSpec(i, golden.Cycles, nl))
	}

	outcomes := make([]Outcome, n)
	pre := make([]bool, n)
	toRun := make([]faultSpec, 0, n)
	for _, sp := range specs {
		if rec := c.recorderFor(golden); rec != nil && c.Type == Transient &&
			golden.Clean() && c.preMasked(sp, rec, golden.Cycles) {
			outcomes[sp.idx-lo] = Masked
			pre[sp.idx-lo] = true
			if !c.ValidateAll {
				continue
			}
		}
		toRun = append(toRun, sp)
	}
	sort.SliceStable(toRun, func(a, b int) bool { return toRun[a].start < toRun[b].start })
	stopClassify()
	if c.Obs.Enabled() {
		premasked := n - len(toRun)
		if c.ValidateAll {
			premasked = 0
			for _, p := range pre {
				if p {
					premasked++
				}
			}
		}
		c.Obs.Counter("inject.premasked").Add(int64(premasked))
		c.Obs.Counter("inject.simulated").Add(int64(len(toRun)))
		c.Obs.Gauge("inject.premask.rate").Set(float64(premasked) / float64(n))
	}

	stopSim := c.Obs.Phase("inject.phase.simulate")
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(toRun) {
		workers = len(toRun)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var valErr error
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sp := toRun[i]
				out, err := c.runSpec(sp, golden, cks, traj)
				if err != nil {
					mu.Lock()
					if valErr == nil {
						valErr = err
					}
					mu.Unlock()
					continue
				}
				if pre[sp.idx-lo] {
					if out != Masked {
						mu.Lock()
						if valErr == nil {
							valErr = fmt.Errorf(
								"inject: pre-classifier unsound: injection %d (cycle %d reg %d bit %d) simulated as %v",
								sp.idx, sp.start, sp.reg, sp.bit, out)
						}
						mu.Unlock()
					}
					continue
				}
				outcomes[sp.idx-lo] = out
			}
		}()
	}
	for i := range toRun {
		next <- i
	}
	close(next)
	wg.Wait()
	stopSim()
	if valErr != nil {
		span.End(obs.Fields{"error": valErr.Error()})
		return nil, valErr
	}

	st.Outcomes = outcomes
	for _, o := range outcomes {
		switch o {
		case Masked:
			st.Masked++
		case SDC:
			st.SDC++
		case Crash:
			st.Crash++
		case Hang:
			st.Hang++
		case Trap:
			st.Trap++
		}
	}
	if c.Obs.Enabled() {
		c.Obs.Counter("inject.outcome.masked").Add(int64(st.Masked))
		c.Obs.Counter("inject.outcome.sdc").Add(int64(st.SDC))
		c.Obs.Counter("inject.outcome.crash").Add(int64(st.Crash))
		c.Obs.Counter("inject.outcome.hang").Add(int64(st.Hang))
		c.Obs.Counter("inject.outcome.trap").Add(int64(st.Trap))
		c.Obs.Counter("inject.campaigns").Inc()
	}
	span.End(obs.Fields{
		"masked": st.Masked, "sdc": st.SDC, "crash": st.Crash, "hang": st.Hang,
		"trap": st.Trap, "detection": st.Detection(), "golden_cycles": st.GoldenCycles,
	})
	return st, nil
}
