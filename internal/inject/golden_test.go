package inject

import (
	"sync"
	"testing"

	"harpocrates/internal/ace"
	"harpocrates/internal/coverage"
	"harpocrates/internal/obs"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// testProgramHash derives a deterministic non-zero content key for a
// test campaign's program (the real plumbing hashes serialized program
// bytes; tests only need "same program, same key").
func testProgramHash(c *Campaign) uint64 {
	h := stats.HashInit
	for _, in := range c.Prog {
		h = stats.Mix64(h, uint64(in.V))
		h = stats.Mix64(h, uint64(in.NOps))
		for _, op := range in.Ops {
			h = stats.Mix64(h, uint64(op.Kind))
			h = stats.Mix64(h, uint64(op.Reg))
			h = stats.Mix64(h, uint64(op.X))
			h = stats.Mix64(h, uint64(op.Imm))
			h = stats.Mix64(h, uint64(op.Mem.Base))
			h = stats.Mix64(h, uint64(op.Mem.Disp))
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// TestGoldenCacheBitIdenticalStats is the acceptance gate of golden
// artifact reuse: for every structure class and fault type, a campaign
// served from the cache (including one served from a warm entry another
// campaign populated) must produce statistics bit-identical to the same
// campaign with NoGoldenCache. The cached golden run carries more
// instrumentation than an uncached one (all three recorders, the
// trajectory, canonical checkpoint spacing), so this pins that all of
// it is purely observational.
func TestGoldenCacheBitIdenticalStats(t *testing.T) {
	cases := []struct {
		target coverage.Structure
		typ    FaultType
		n      int
	}{
		{coverage.IRF, Transient, 48},
		{coverage.FPRF, Transient, 32},
		{coverage.L1D, Transient, 32},
		{coverage.Decoder, Transient, 24},
		{coverage.Gshare, Transient, 24},
		{coverage.LSQ, Transient, 24},
		{coverage.IRF, Intermittent, 12},
		{coverage.L1D, Intermittent, 12},
		{coverage.IntAdder, Permanent, 10},
		{coverage.IntAdder, Intermittent, 8},
		{coverage.FPAdd, Permanent, 8},
		{coverage.FPMul, Intermittent, 6},
	}
	gc, err := NewGoldenCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.target.String()+"/"+tc.typ.String(), func(t *testing.T) {
			t.Parallel()
			run := func(noCache bool) *Stats {
				c := testProgram(t, 350, nil)
				c.Target = tc.target
				c.Type = tc.typ
				c.IntermittentLen = 80
				c.N = tc.n
				c.Seed = 11
				c.GoldenCache = gc
				c.ProgramHash = testProgramHash(c)
				c.NoGoldenCache = noCache
				st, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			cold := run(true)
			cached := run(false)
			warm := run(false)
			if !cold.Equal(cached) {
				t.Fatalf("golden cache changed campaign statistics:\ncold:   %+v\ncached: %+v", cold, cached)
			}
			if !cold.Equal(warm) {
				t.Fatalf("warm golden cache changed campaign statistics:\ncold: %+v\nwarm: %+v", cold, warm)
			}
		})
	}
}

// TestGoldenCacheSingleComputePerProgram: the whole point — six
// per-structure campaigns on one program with one shared configuration
// compute the golden run once. All six targets share the plain golden
// class, so the second through sixth campaigns hit.
func TestGoldenCacheSingleComputePerProgram(t *testing.T) {
	gc, err := NewGoldenCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ob := obs.New(reg, nil)
	targets := []coverage.Structure{
		coverage.IRF, coverage.FPRF, coverage.L1D,
		coverage.Decoder, coverage.Gshare, coverage.LSQ,
	}
	for _, target := range targets {
		c := testProgram(t, 350, nil)
		c.Target = target
		c.Type = Transient
		c.N = 16
		c.Seed = 11
		c.GoldenCache = gc
		c.ProgramHash = testProgramHash(c)
		c.Obs = ob
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("inject.golden.cache.misses").Load(); got != 1 {
		t.Fatalf("six same-program campaigns computed the golden %d times, want 1", got)
	}
	if got := reg.Counter("inject.golden.cache.hits").Load(); got != int64(len(targets)-1) {
		t.Fatalf("golden cache hits = %d, want %d", got, len(targets)-1)
	}
	if reg.Histogram("inject.golden.compute_ns").Count() != 1 {
		t.Fatal("golden compute latency histogram did not observe exactly one compute")
	}
}

// TestGoldenCacheConcurrentCampaigns: many goroutines racing the same
// key must single-flight onto one computation and all produce the
// reference statistics (run under -race in CI).
func TestGoldenCacheConcurrentCampaigns(t *testing.T) {
	newCampaign := func(target coverage.Structure, gc *GoldenCache, ob *obs.Observer) *Campaign {
		c := testProgram(t, 300, nil)
		c.Target = target
		c.Type = Transient
		c.N = 12
		c.Seed = 11
		c.Workers = 2
		c.GoldenCache = gc
		c.ProgramHash = testProgramHash(c)
		c.Obs = ob
		return c
	}
	targets := []coverage.Structure{coverage.IRF, coverage.FPRF, coverage.L1D, coverage.Gshare}
	want := make(map[coverage.Structure]*Stats)
	for _, target := range targets {
		c := newCampaign(target, nil, nil)
		c.NoGoldenCache = true
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		want[target] = st
	}

	gc, err := NewGoldenCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ob := obs.New(reg, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(targets))
	for round := 0; round < 4; round++ {
		for _, target := range targets {
			wg.Add(1)
			go func(target coverage.Structure) {
				defer wg.Done()
				st, err := newCampaign(target, gc, ob).Run()
				if err != nil {
					errs <- err
					return
				}
				if !st.Equal(want[target]) {
					t.Errorf("concurrent cached campaign on %v diverged from reference", target)
				}
			}(target)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := reg.Counter("inject.golden.cache.misses").Load(); got != 1 {
		t.Fatalf("%d golden computes under concurrency, want 1 (single-flight)", got)
	}
}

// TestGoldenCachePoolHygiene: bundles hold pooled resources (interval
// recorders, checkpoint cores, the trajectory) while resident, release
// them exactly once when purged, and never release them while a
// campaign still reads them. Not parallel: compares global live
// counters.
func TestGoldenCachePoolHygiene(t *testing.T) {
	baseRec := ace.LiveIntervalRecorders()
	baseCk := uarch.LiveCheckpoints()
	baseTraj := uarch.LiveDeltaTrajectories()

	gc, err := NewGoldenCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []coverage.Structure{coverage.IRF, coverage.L1D} {
		c := testProgram(t, 350, nil)
		c.Target = target
		c.Type = Transient
		c.N = 16
		c.Seed = 11
		c.GoldenCache = gc
		c.ProgramHash = testProgramHash(c)
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if gc.Len() != 1 {
		t.Fatalf("cache holds %d bundles, want 1", gc.Len())
	}
	// The resident bundle must still hold its pooled resources — a
	// premature release would hand live recorders back to the pool.
	if got := uarch.LiveDeltaTrajectories(); got != baseTraj+1 {
		t.Fatalf("resident bundle holds %d trajectories, want 1", got-baseTraj)
	}
	if got := ace.LiveIntervalRecorders(); got != baseRec+3 {
		t.Fatalf("resident bundle holds %d recorders, want 3", got-baseRec)
	}
	gc.Purge()
	if got := ace.LiveIntervalRecorders(); got != baseRec {
		t.Fatalf("purge leaked %d interval recorders", got-baseRec)
	}
	if got := uarch.LiveCheckpoints(); got != baseCk {
		t.Fatalf("purge leaked %d checkpoints", got-baseCk)
	}
	if got := uarch.LiveDeltaTrajectories(); got != baseTraj {
		t.Fatalf("purge leaked %d delta trajectories", got-baseTraj)
	}
	// Purging twice must not double-release (the pools count lives; a
	// double release would go negative).
	gc.Purge()
	if got := uarch.LiveCheckpoints(); got != baseCk {
		t.Fatalf("double purge corrupted checkpoint accounting by %d", got-baseCk)
	}
}

// TestGoldenCacheEvictionWaitsForReaders: an entry evicted while a
// campaign still holds it must defer the pool release to the last
// reader. Exercised directly against Acquire with synthetic bundles
// whose keys collide onto one shard. Not parallel: counts live
// trajectories.
func TestGoldenCacheEvictionWaitsForReaders(t *testing.T) {
	baseTraj := uarch.LiveDeltaTrajectories()
	gc, err := NewGoldenCache(goldenShards, "") // one entry per shard
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *uarch.GoldenArtifacts {
		return &uarch.GoldenArtifacts{Trajectory: uarch.GetDeltaTrajectory(0)}
	}
	// Same shard (Program % goldenShards == 0), distinct keys.
	k1 := GoldenKey{Program: 1 * goldenShards}
	k2 := GoldenKey{Program: 2 * goldenShards}
	ga1, rel1, err := gc.Acquire(k1, nil, nil, mk)
	if err != nil {
		t.Fatal(err)
	}
	if _, rel2, err := gc.Acquire(k2, nil, nil, mk); err != nil {
		t.Fatal(err)
	} else {
		rel2() // k2 inserted; its arrival evicted k1, which is still held
	}
	if ga1.Trajectory == nil {
		t.Fatal("evicted bundle released while still referenced")
	}
	if got := uarch.LiveDeltaTrajectories(); got != baseTraj+2 {
		t.Fatalf("live trajectories = %d, want 2 (held evictee + resident)", got-baseTraj)
	}
	rel1() // last reader: now the evicted bundle's resources return
	gc.Purge()
	if got := uarch.LiveDeltaTrajectories(); got != baseTraj {
		t.Fatalf("eviction-with-readers leaked %d trajectories", got-baseTraj)
	}
}

// TestGoldenKeySensitivity: knobs that change what the golden run
// computes must change the key; knobs that only steer how faulty runs
// are accelerated must not.
func TestGoldenKeySensitivity(t *testing.T) {
	base := func() *Campaign {
		c := testProgram(t, 120, nil)
		c.Target = coverage.IRF
		c.Type = Transient
		c.N = 8
		c.Seed = 11
		c.ProgramHash = testProgramHash(c)
		return c
	}
	ref := base().goldenKey()

	// Perf-only / fault-spec knobs: same key (bundles interchangeable).
	same := map[string]*Campaign{}
	{
		c := base()
		c.Cfg.NoCycleSkip = true
		same["NoCycleSkip"] = c
	}
	{
		c := base()
		c.CheckpointInterval = 64
		same["CheckpointInterval"] = c
	}
	{
		c := base()
		c.DeltaInterval = 64
		same["DeltaInterval"] = c
	}
	{
		c := base()
		c.Seed = 999
		c.N = 100
		c.Type = Intermittent
		c.IntermittentLen = 50
		c.BurstLen = 4
		same["fault spec"] = c
	}
	{
		c := base()
		c.Target = coverage.Decoder // same plain golden class
		same["plain-class target"] = c
	}
	for name, c := range same {
		if got := c.goldenKey(); got != ref {
			t.Errorf("%s changed the golden key: %x vs %x", name, got, ref)
		}
	}

	// Golden-relevant knobs: distinct keys, pairwise.
	diff := map[string]*Campaign{}
	{
		c := base()
		c.Cfg.MaxCycles = 12345
		diff["MaxCycles"] = c
	}
	{
		c := base()
		c.Cfg.NondetSalt = 7
		diff["NondetSalt"] = c
	}
	{
		c := base()
		c.Cfg.IntPRF = 200
		diff["IntPRF"] = c
	}
	{
		c := base()
		c.Target = coverage.FPAdd // fpadd golden class (netlist hooks)
		diff["FP class"] = c
	}
	{
		c := base()
		c.ProgramHash = 2
		diff["program"] = c
	}
	seen := map[GoldenKey]string{ref: "base"}
	for name, c := range diff {
		k := c.goldenKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s on golden key %x", name, prev, k)
		}
		seen[k] = name
	}
}

// TestGoldenCacheUncacheableConfigs: configurations whose golden cores
// carry per-run instrumentation must bypass the cache (and still
// produce a working campaign).
func TestGoldenCacheUncacheableConfigs(t *testing.T) {
	gc, err := NewGoldenCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	c := testProgram(t, 120, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 8
	c.GoldenCache = gc
	c.ProgramHash = testProgramHash(c)
	c.Cfg.TrackIRF = true
	if c.goldenCacheable() {
		t.Fatal("tracker config must not be cacheable")
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if gc.Len() != 0 {
		t.Fatal("uncacheable campaign populated the cache")
	}
	c2 := testProgram(t, 120, nil)
	c2.Target = coverage.IRF
	c2.Type = Transient
	c2.N = 8
	c2.GoldenCache = gc
	if c2.goldenCacheable() {
		t.Fatal("zero ProgramHash must not be cacheable")
	}
	c2.ProgramHash = 5
	c2.NoFastForward = true
	if c2.goldenCacheable() {
		t.Fatal("NoFastForward must not be cacheable")
	}
}

// TestGoldenDiskTierRestart: a fresh cache over the same directory — a
// restarted worker process — must serve the golden from disk (one
// decode, zero recomputes) and produce bit-identical statistics. This
// is the end-to-end exercise of the HXGA codec: the second campaign
// resumes faulty runs from deserialized checkpoint cores, pre-classifies
// against a deserialized interval log and delta-terminates against a
// deserialized trajectory.
func TestGoldenDiskTierRestart(t *testing.T) {
	dir := t.TempDir()
	run := func(gc *GoldenCache, ob *obs.Observer, noCache bool) *Stats {
		c := testProgram(t, 400, nil)
		c.Target = coverage.IRF
		c.Type = Transient
		c.N = 32
		c.Seed = 11
		c.GoldenCache = gc
		c.ProgramHash = testProgramHash(c)
		c.NoGoldenCache = noCache
		c.Obs = ob
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	want := run(nil, nil, true)

	gc1, err := NewGoldenCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := run(gc1, nil, false)
	if err := gc1.Close(); err != nil {
		t.Fatal(err)
	}
	if !want.Equal(cold) {
		t.Fatalf("disk-backed cache changed statistics:\nwant: %+v\ngot:  %+v", want, cold)
	}

	gc2, err := NewGoldenCache(0, dir) // "restarted process"
	if err != nil {
		t.Fatal(err)
	}
	defer gc2.Close()
	reg := obs.NewRegistry()
	warm := run(gc2, obs.New(reg, nil), false)
	if !want.Equal(warm) {
		t.Fatalf("disk-restored golden changed statistics:\nwant: %+v\ngot:  %+v", want, warm)
	}
	if got := reg.Counter("inject.golden.cache.disk_hits").Load(); got != 1 {
		t.Fatalf("restart took %d disk hits, want 1", got)
	}
	if got := reg.Histogram("inject.golden.compute_ns").Count(); got != 0 {
		t.Fatalf("restart recomputed the golden %d times, want 0", got)
	}

	// Same-process second campaign with the disk bundle resident: pure
	// memory hit (N/Seed/DeltaInterval are excluded from the key), still
	// bit-identical to an uncached run of the same spec, and delta
	// termination must fire — the deserialized trajectory actually
	// terminates faulty runs early.
	deltaRun := func(gc *GoldenCache, ob *obs.Observer, noCache bool) *Stats {
		c := testProgram(t, 400, nil)
		c.Target = coverage.IRF
		c.Type = Transient
		c.N = 64
		c.Seed = 11
		c.DeltaInterval = 64
		c.GoldenCache = gc
		c.ProgramHash = testProgramHash(c)
		c.NoGoldenCache = noCache
		c.Obs = ob
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	wantDelta := deltaRun(nil, nil, true)
	again := deltaRun(gc2, obs.New(reg, nil), false)
	if !wantDelta.Equal(again) {
		t.Fatal("campaign over the disk-restored bundle diverged from uncached reference")
	}
	if got := reg.Histogram("inject.golden.compute_ns").Count(); got != 0 {
		t.Fatalf("resident bundle missed: %d recomputes", got)
	}
	if reg.Counter("inject.delta.converged").Load() == 0 {
		t.Fatal("no faulty run delta-terminated against the deserialized trajectory")
	}
}

// TestGoldenCodecRoundTrip: decode(encode(bundle)) preserves the golden
// result bit-for-bit and re-encodes to the identical byte stream (the
// codec is canonical), and a truncated or corrupted stream fails with
// an error — releasing everything it acquired — rather than panicking.
// Not parallel: counts pool lives around decode failures.
func TestGoldenCodecRoundTrip(t *testing.T) {
	c := testProgram(t, 400, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 8
	ga := c.computeGoldenArtifacts()
	defer ga.Release()
	if len(ga.Checkpoints) == 0 || ga.Trajectory == nil || ga.Result.IRFIntervals == nil {
		t.Fatal("golden bundle missing instrumentation")
	}

	data, err := uarch.EncodeGoldenArtifacts(ga)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := uarch.DecodeGoldenArtifacts(data, c.Prog)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Release()
	if dec.Result.Cycles != ga.Result.Cycles || dec.Result.Signature != ga.Result.Signature ||
		dec.Result.Instructions != ga.Result.Instructions {
		t.Fatalf("decoded golden result diverged: %+v vs %+v", dec.Result, ga.Result)
	}
	if len(dec.Checkpoints) != len(ga.Checkpoints) {
		t.Fatalf("decoded %d checkpoints, want %d", len(dec.Checkpoints), len(ga.Checkpoints))
	}
	if len(dec.Trajectory.Points) != len(ga.Trajectory.Points) {
		t.Fatal("decoded trajectory point count diverged")
	}
	again, err := uarch.EncodeGoldenArtifacts(dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoding a decoded bundle is not byte-identical")
	}

	baseRec := ace.LiveIntervalRecorders()
	baseCk := uarch.LiveCheckpoints()
	baseTraj := uarch.LiveDeltaTrajectories()
	for cut := 0; cut < len(data); cut += 257 {
		if _, err := uarch.DecodeGoldenArtifacts(data[:cut], c.Prog); err == nil {
			t.Fatalf("decode of %d-byte truncation succeeded", cut)
		}
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xff
	if dec, err := uarch.DecodeGoldenArtifacts(corrupt, c.Prog); err == nil {
		// A flipped bit in region payload bytes can decode structurally;
		// only structural corruption must error. Release and move on.
		dec.Release()
	}
	if got := ace.LiveIntervalRecorders(); got != baseRec {
		t.Fatalf("failed decodes leaked %d interval recorders", got-baseRec)
	}
	if got := uarch.LiveCheckpoints(); got != baseCk {
		t.Fatalf("failed decodes leaked %d checkpoints", got-baseCk)
	}
	if got := uarch.LiveDeltaTrajectories(); got != baseTraj {
		t.Fatalf("failed decodes leaked %d trajectories", got-baseTraj)
	}
}
