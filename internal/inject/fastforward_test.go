package inject

import (
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
	"harpocrates/internal/uarch"
)

// TestFastForwardBitIdenticalStats is the optimization's acceptance
// gate: for every structure, a checkpointed + ACE-pre-classified
// campaign must produce per-outcome counts bit-identical to the
// simulate-everything-from-cycle-0 path for the same seed.
func TestFastForwardBitIdenticalStats(t *testing.T) {
	cases := []struct {
		target coverage.Structure
		typ    FaultType
		n      int
	}{
		{coverage.IRF, Transient, 48},
		{coverage.FPRF, Transient, 48},
		{coverage.L1D, Transient, 48},
		{coverage.IRF, Intermittent, 16},
		{coverage.IntAdder, Permanent, 12},
		{coverage.IntMul, Permanent, 8},
		{coverage.IntAdder, Intermittent, 8},
		{coverage.FPAdd, Permanent, 8},
		{coverage.FPMul, Permanent, 8},
		{coverage.FPAdd, Intermittent, 6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.target.String()+"/"+tc.typ.String(), func(t *testing.T) {
			t.Parallel()
			run := func(noFF bool) *Stats {
				c := testProgram(t, 350, nil)
				c.Target = tc.target
				c.Type = tc.typ
				c.IntermittentLen = 80
				c.N = tc.n
				c.CheckpointInterval = 64 // small, to exercise thinning
				c.NoFastForward = noFF
				st, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			slow, fast := run(true), run(false)
			if !slow.Equal(fast) {
				t.Fatalf("fast-forward changed campaign statistics:\nfrom cycle 0:  %+v\nfast-forward: %+v", slow, fast)
			}
		})
	}
}

// TestValidateAllSoundness simulates every pre-classified injection and
// asserts the simulator agrees with the ACE pre-classifier. A
// disagreement fails Campaign.Run with an error.
func TestValidateAllSoundness(t *testing.T) {
	for _, target := range []coverage.Structure{coverage.IRF, coverage.FPRF, coverage.L1D} {
		c := testProgram(t, 300, nil)
		c.Target = target
		c.Type = Transient
		c.N = 40
		c.ValidateAll = true
		st, err := c.Run()
		if err != nil {
			t.Fatalf("%v: pre-classifier contradicted by simulation: %v", target, err)
		}

		c2 := testProgram(t, 300, nil)
		c2.Target = target
		c2.Type = Transient
		c2.N = 40
		st2, err := c2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Equal(st2) {
			t.Fatalf("%v: ValidateAll changed statistics: %+v vs %+v", target, st, st2)
		}
	}
}

func TestIntermittentFPRFCampaign(t *testing.T) {
	c := testProgram(t, 300, nil)
	c.Target = coverage.FPRF
	c.Type = Intermittent
	c.IntermittentLen = 120
	c.N = 24
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Masked+st.Detected() != st.N {
		t.Fatalf("outcome counts don't sum: %+v", st)
	}
	t.Log(st)
}

func TestIntermittentL1DCampaign(t *testing.T) {
	c := testProgram(t, 300, nil)
	c.Target = coverage.L1D
	c.Type = Intermittent
	c.IntermittentLen = 120
	c.N = 24
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Masked+st.Detected() != st.N {
		t.Fatalf("outcome counts don't sum: %+v", st)
	}
	t.Log(st)
}

// findVariant locates an ISA variant by op, width and operand kinds;
// cond additionally filters conditional variants (pass condAny to
// ignore).
const condAny = isa.Cond(isa.NumCond)

func findVariant(t testing.TB, op isa.Op, w isa.Width, cond isa.Cond, kinds ...isa.OpKind) isa.VariantID {
	t.Helper()
	for _, id := range isa.ByOp(op) {
		v := isa.Lookup(id)
		if v.Width != w || len(v.Ops) != len(kinds) {
			continue
		}
		if cond != condAny && v.Cond != cond {
			continue
		}
		ok := true
		for i, k := range kinds {
			if v.Ops[i].Kind != k {
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	t.Fatalf("no variant for op=%d w=%v kinds=%v", op, w, kinds)
	return 0
}

// loopCampaign builds a hand-written counted loop —
//
//	movabsq $iters, %rcx
//	dec     %rcx
//	jne     .-1
//
// whose only liveness is the loop counter. A transient flip of a high
// counter bit mid-loop multiplies the trip count by billions, so the
// faulty run trips the cycle watchdog: the Hang outcome.
func loopCampaign(t *testing.T, iters int64) *Campaign {
	mov := findVariant(t, isa.OpMOV, isa.W64, condAny, isa.KReg, isa.KImm)
	dec := findVariant(t, isa.OpDEC, isa.W64, condAny, isa.KReg)
	jne := findVariant(t, isa.OpJcc, isa.W32, isa.CondNE, isa.KImm)
	prog := []isa.Inst{
		isa.MakeInst(mov, isa.RegOp(isa.RCX), isa.ImmOp(iters)),
		isa.MakeInst(dec, isa.RegOp(isa.RCX)),
		isa.MakeInst(jne, isa.ImmOp(-2)), // back to the dec
	}
	init := func() *arch.State {
		m := arch.NewMemory()
		if err := m.AddRegion(&arch.Region{Name: "stack", Base: 0x20000, Data: make([]byte, 4096), Writable: true}); err != nil {
			t.Fatal(err)
		}
		s := arch.NewState(m)
		s.GPR[isa.RSP] = 0x20000 + 4096
		return s
	}
	cfg := uarch.DefaultConfig()
	cfg.IntPRF = 28 // small PRF: random flips often land on the live counter
	return &Campaign{Prog: prog, Init: init, Cfg: cfg, Target: coverage.IRF, Type: Transient}
}

// TestHangOutcome drives the Hang classification path: flips that blow
// up a loop counter must be reported as hangs, identically with and
// without fast-forward.
func TestHangOutcome(t *testing.T) {
	run := func(noFF bool) *Stats {
		c := loopCampaign(t, 300)
		c.N = 40
		c.Seed = 3
		c.NoFastForward = noFF
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := run(false)
	if st.Hang == 0 {
		t.Fatalf("no hang among %d counter-loop flips: %+v", st.N, st)
	}
	if slow := run(true); !slow.Equal(st) {
		t.Fatalf("hang statistics diverge: from cycle 0 %+v, fast-forward %+v", slow, st)
	}
	t.Log(st)
}

// TestCampaignDeterministicAcrossWorkers asserts (Seed, N) fully
// determines Stats regardless of scheduling.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Stats {
		c := testProgram(t, 300, nil)
		c.Target = coverage.FPRF
		c.Type = Transient
		c.N = 32
		c.Workers = workers
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b, c := run(1), run(4), run(16)
	if !a.Equal(b) || !b.Equal(c) {
		t.Fatalf("worker count changed statistics: %+v / %+v / %+v", a, b, c)
	}
}
