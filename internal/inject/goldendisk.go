package inject

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"harpocrates/internal/obs"
)

// goldenDisk is the golden cache's persistence tier: a 16-way sharded
// on-disk index of encoded HXGA bundles. A pull worker that restarts
// mid-campaign re-leases shards of jobs whose goldens it already
// computed; this tier turns those recomputations into one decode.
//
// The format mirrors the queue result cache's segment files: each
// shard owns one append-only log of CRC-framed records, a torn tail
// from a crashed writer is truncated at open, and first-write-wins is
// sound because a key's value is content-determined. Only the index
// lives in memory — decoded bundles are held (and refcounted) by the
// in-process tier, so this layer never caches payloads.
type goldenDisk struct {
	dir    string
	shards [goldenShards]goldenDiskShard
}

const (
	// goldenFrameSize: two key words + payload length + CRC.
	goldenFrameSize = 2*8 + 4 + 4

	// maxGoldenValue bounds one encoded bundle. Checkpoint cores carry
	// full memory images, so bundles are MBs where shard results are
	// KBs; the bound only rejects corrupt frames.
	maxGoldenValue = 256 << 20
)

type goldenSegRef struct {
	off int64
	n   int32
}

type goldenDiskShard struct {
	mu    sync.Mutex
	f     *os.File
	size  int64
	index map[GoldenKey]goldenSegRef
}

// openGoldenDisk opens (creating if needed) the tier at dir, replaying
// each shard's segment into its index.
func openGoldenDisk(dir string) (*goldenDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("inject: golden cache dir: %w", err)
	}
	d := &goldenDisk{dir: dir}
	for i := range d.shards {
		if err := d.shards[i].open(filepath.Join(dir, fmt.Sprintf("golden-%02x.log", i))); err != nil {
			d.close()
			return nil, err
		}
	}
	return d, nil
}

func (s *goldenDiskShard) open(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("inject: open golden segment: %w", err)
	}
	s.f = f
	s.index = make(map[GoldenKey]goldenSegRef)

	le := binary.LittleEndian
	var frame [goldenFrameSize]byte
	var off int64
	for {
		if _, err := f.ReadAt(frame[:], off); err != nil {
			break // EOF or torn frame
		}
		key := GoldenKey{
			Program: le.Uint64(frame[0:8]),
			Config:  le.Uint64(frame[8:16]),
		}
		n := le.Uint32(frame[16:20])
		crc := le.Uint32(frame[20:24])
		if n > maxGoldenValue {
			break
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+goldenFrameSize); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		if _, ok := s.index[key]; !ok { // first write wins
			s.index[key] = goldenSegRef{off: off + goldenFrameSize, n: int32(n)}
		}
		off += goldenFrameSize + int64(n)
	}
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("inject: truncate golden segment tail: %w", err)
	}
	s.size = off
	return nil
}

func (d *goldenDisk) shardFor(k GoldenKey) *goldenDiskShard {
	return &d.shards[(k.Program^k.Config)%goldenShards]
}

// get reads one encoded bundle. An unreadable segment is a miss, never
// an error — the caller recomputes.
func (d *goldenDisk) get(k GoldenKey) ([]byte, bool) {
	s := d.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.index[k]
	if !ok {
		return nil, false
	}
	val := make([]byte, ref.n)
	if _, err := s.f.ReadAt(val, ref.off); err != nil {
		return nil, false
	}
	return val, true
}

// put appends one encoded bundle; the first write for a key wins.
func (d *goldenDisk) put(k GoldenKey, val []byte, ob *obs.Observer) {
	if len(val) > maxGoldenValue {
		return
	}
	s := d.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[k]; ok {
		return
	}
	buf := make([]byte, goldenFrameSize+len(val))
	le := binary.LittleEndian
	le.PutUint64(buf[0:8], k.Program)
	le.PutUint64(buf[8:16], k.Config)
	le.PutUint32(buf[16:20], uint32(len(val)))
	le.PutUint32(buf[20:24], crc32.ChecksumIEEE(val))
	copy(buf[goldenFrameSize:], val)
	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		// Persisting is best-effort; the in-process tier still serves
		// this process.
		ob.Counter("inject.golden.cache.write_errors").Inc()
		return
	}
	s.index[k] = goldenSegRef{off: s.size + goldenFrameSize, n: int32(len(val))}
	s.size += int64(len(buf))
	ob.Counter("inject.golden.cache.puts").Inc()
}

func (d *goldenDisk) close() error {
	var first error
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		if s.f != nil {
			if err := s.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := s.f.Close(); err != nil && first == nil {
				first = err
			}
			s.f = nil
		}
		s.mu.Unlock()
	}
	return first
}
