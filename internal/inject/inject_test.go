package inject

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"strings"
	"testing"

	"harpocrates/internal/coverage"
	"harpocrates/internal/gen"
	"harpocrates/internal/obs"
	"harpocrates/internal/uarch"
)

func testProgram(t testing.TB, n int, pool func(cfg *gen.Config)) *Campaign {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = n
	if pool != nil {
		pool(&cfg)
	}
	rng := rand.New(rand.NewPCG(99, 100))
	p := gen.Materialize(gen.NewRandom(&cfg, rng), &cfg)
	return &Campaign{
		Prog: p.Insts,
		Init: p.InitFunc(),
		Cfg:  uarch.DefaultConfig(),
		Seed: 7,
	}
}

func TestTransientIRFCampaign(t *testing.T) {
	c := testProgram(t, 400, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 48
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Masked+st.Detected() != st.N {
		t.Fatalf("outcome counts don't sum: %+v", st)
	}
	d := st.Detection()
	if d < 0 || d > 1 {
		t.Fatalf("detection %f out of range", d)
	}
	if st.Masked == 0 {
		t.Fatal("IRF transients with zero masking are implausible (most PRF entries are free)")
	}
	t.Log(st)
}

func TestTransientL1DCampaign(t *testing.T) {
	c := testProgram(t, 400, nil)
	c.Target = coverage.L1D
	c.Type = Transient
	c.N = 48
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Masked == 0 {
		t.Fatal("L1D transients with zero masking are implausible for a short program")
	}
	t.Log(st)
}

func TestPermanentIntAdderCampaign(t *testing.T) {
	c := testProgram(t, 300, nil)
	c.Target = coverage.IntAdder
	c.Type = Permanent
	c.N = 24
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Detected() == 0 {
		t.Fatal("no adder gate fault detected by a random ALU-heavy program")
	}
	t.Log(st)
}

func TestPermanentIntMulCampaign(t *testing.T) {
	c := testProgram(t, 200, nil)
	c.Target = coverage.IntMul
	c.Type = Permanent
	c.N = 12
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 12 {
		t.Fatal("wrong N")
	}
	t.Log(st)
}

func TestPermanentFPAddCampaign(t *testing.T) {
	c := testProgram(t, 300, nil)
	c.Target = coverage.FPAdd
	c.Type = Permanent
	c.N = 16
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(st)
}

func TestIntermittentIRFCampaign(t *testing.T) {
	c := testProgram(t, 300, nil)
	c.Target = coverage.IRF
	c.Type = Intermittent
	c.IntermittentLen = 100
	c.N = 24
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(st)
}

func TestCampaignDeterministic(t *testing.T) {
	run := func() *Stats {
		c := testProgram(t, 300, nil)
		c.Target = coverage.IRF
		c.Type = Transient
		c.N = 24
		c.Workers = 4
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatalf("campaigns with identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestGoldenMatchesNativeForIntUnits(t *testing.T) {
	// The golden config for integer-unit campaigns skips the netlist;
	// this is only sound if the netlist-routed run is bit-identical.
	c := testProgram(t, 300, nil)
	c.Target = coverage.IntAdder
	golden := c.Golden()

	cfg := c.goldenConfig()
	cfg.FU = FUHooksFor(coverage.IntAdder, nil)
	viaNetlist := uarch.Run(c.Prog, c.Init(), cfg)
	if golden.Signature != viaNetlist.Signature {
		t.Fatal("fault-free netlist adder diverges from native semantics")
	}
}

func TestDefaultFaultType(t *testing.T) {
	if DefaultFaultType(coverage.IRF) != Transient || DefaultFaultType(coverage.L1D) != Transient {
		t.Fatal("bit arrays must default to transient faults")
	}
	for st := coverage.IntAdder; st <= coverage.FPMul; st++ {
		if DefaultFaultType(st) != Permanent {
			t.Fatal("functional units must default to permanent faults")
		}
	}
	for st := coverage.Decoder; st < coverage.NumStructures; st++ {
		if DefaultFaultType(st) != Transient {
			t.Fatalf("microarchitectural site %v must default to transient faults", st)
		}
	}
}

func TestCampaignRejectsZeroN(t *testing.T) {
	c := testProgram(t, 50, nil)
	c.N = 0
	if _, err := c.Run(); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestCampaignObservability(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	c := testProgram(t, 400, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 48
	c.Obs = obs.New(reg, obs.NewTracer(&buf))
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Outcome counters must agree with the returned stats.
	load := func(name string) int64 { return reg.Counter(name).Load() }
	if load("inject.outcome.masked") != int64(st.Masked) ||
		load("inject.outcome.sdc") != int64(st.SDC) ||
		load("inject.outcome.crash") != int64(st.Crash) ||
		load("inject.outcome.hang") != int64(st.Hang) {
		t.Fatalf("outcome counters disagree with stats %+v", st)
	}
	// Every injection is either pre-classified or simulated, and every
	// simulated one either resumed from a checkpoint or restarted.
	pre, sim := load("inject.premasked"), load("inject.simulated")
	if pre+sim != int64(st.N) {
		t.Fatalf("premasked %d + simulated %d != N %d", pre, sim, st.N)
	}
	if pre == 0 {
		t.Fatal("transient IRF campaign pre-classified nothing (recorder broken?)")
	}
	if got := load("inject.resume.checkpoint") + load("inject.resume.reset"); got != sim {
		t.Fatalf("resume counters %d != simulated %d", got, sim)
	}

	// The trace must parse and carry exactly one campaign span pair.
	type rec struct {
		Ev   string `json:"ev"`
		Name string `json:"name"`
	}
	begins, ends := 0, 0
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("trace line %d unparseable: %v\n%s", i, err, line)
		}
		if r.Name == "campaign" {
			switch r.Ev {
			case "begin":
				begins++
			case "end":
				ends++
			}
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("campaign spans: %d begins, %d ends (want 1/1)", begins, ends)
	}

	// Observation must not change the statistics.
	plain := testProgram(t, 400, nil)
	plain.Target = coverage.IRF
	plain.Type = Transient
	plain.N = 48
	pst, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !pst.Equal(st) {
		t.Fatalf("observation changed campaign statistics: %+v vs %+v", pst, st)
	}
}

func TestRunRangeMergeBitIdentical(t *testing.T) {
	c := testProgram(t, 400, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 48
	whole, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Any contiguous partition of [0, N) merged in shard order must be
	// bit-identical to the single-process run — this is the property the
	// distributed coordinator relies on.
	for _, cuts := range [][]int{{0, 48}, {0, 17, 48}, {0, 1, 2, 48}, {0, 16, 32, 48}} {
		var parts []*Stats
		for i := 0; i+1 < len(cuts); i++ {
			st, err := c.RunRange(cuts[i], cuts[i+1])
			if err != nil {
				t.Fatalf("RunRange(%d, %d): %v", cuts[i], cuts[i+1], err)
			}
			if st.N != cuts[i+1]-cuts[i] {
				t.Fatalf("shard N = %d, want %d", st.N, cuts[i+1]-cuts[i])
			}
			parts = append(parts, st)
		}
		merged, err := MergeStats(parts)
		if err != nil {
			t.Fatal(err)
		}
		if !merged.Equal(whole) {
			t.Fatalf("cuts %v: merged %+v != whole %+v", cuts, merged, whole)
		}
	}
}

func TestRunRangeBounds(t *testing.T) {
	c := testProgram(t, 100, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 8
	for _, bad := range [][2]int{{-1, 4}, {0, 9}, {4, 4}, {5, 3}} {
		if _, err := c.RunRange(bad[0], bad[1]); err == nil {
			t.Fatalf("RunRange(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

func TestMergeStatsRejectsDivergence(t *testing.T) {
	if _, err := MergeStats(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeStats([]*Stats{{N: 1}, nil}); err == nil {
		t.Fatal("nil part accepted")
	}
	a := &Stats{N: 1, Masked: 1, GoldenCycles: 10, Outcomes: []Outcome{Masked}}
	b := &Stats{N: 1, Masked: 1, GoldenCycles: 11, Outcomes: []Outcome{Masked}}
	if _, err := MergeStats([]*Stats{a, b}); err == nil {
		t.Fatal("diverging golden runs accepted")
	}
}

func TestParseFaultType(t *testing.T) {
	for name, want := range map[string]FaultType{
		"transient": Transient, "intermittent": Intermittent, "permanent": Permanent,
		"Transient": Transient, "PERMANENT": Permanent, " Intermittent ": Intermittent,
	} {
		got, err := ParseFaultType(name)
		if err != nil || got != want {
			t.Fatalf("ParseFaultType(%q) = %v, %v", name, got, err)
		}
	}
	_, err := ParseFaultType("cosmic")
	if err == nil {
		t.Fatal("bad fault type accepted")
	}
	for _, ft := range []FaultType{Transient, Intermittent, Permanent} {
		if !strings.Contains(err.Error(), ft.String()) {
			t.Fatalf("error %q does not list valid name %q", err, ft)
		}
	}
}
