package inject

import (
	"bytes"
	"testing"
)

func TestStatsCodecRoundTrip(t *testing.T) {
	s := &Stats{
		N: 7, Masked: 2, SDC: 1, Crash: 1, Hang: 1, Trap: 2,
		GoldenCycles: 123456,
		Outcomes:     []Outcome{Masked, SDC, Crash, Hang, Trap, Trap, Masked},
	}
	enc := EncodeStats(s)
	got, err := DecodeStats(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip: got %+v, want %+v", got, s)
	}
	if !bytes.Equal(EncodeStats(got), enc) {
		t.Fatal("re-encoding is not byte-stable")
	}
}

func TestStatsCodecEmpty(t *testing.T) {
	s := &Stats{}
	got, err := DecodeStats(EncodeStats(s))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip: got %+v, want %+v", got, s)
	}
}

func TestStatsCodecRejects(t *testing.T) {
	good := EncodeStats(&Stats{N: 3, Masked: 3, Outcomes: []Outcome{Masked, Masked, Masked}})
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{1, 2, 3, 4}, good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{9, 0, 0, 0}, good[8:]...)...),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
	}
	for name, data := range cases {
		if _, err := DecodeStats(data); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}
}
