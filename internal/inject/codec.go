package inject

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Shard-result container format ("HXSR"): the compact, versioned binary
// codec for one campaign shard's Stats. It is the value format of the
// internal/queue content-addressed result cache and of the coordinator
// WAL's shard-completion records, so a cached or replayed shard result
// decodes to bytes-for-bytes the Stats the worker originally produced —
// which is what keeps cache-served campaigns bit-identical to uncached
// ones. The outcome byte values are the frozen wire values of Outcome
// (see the Outcome doc comment), so the format inherits the dist
// protocol's append-only evolution rule.
const (
	statsMagic   = 0x48585352 // "HXSR"
	statsVersion = 1

	// maxCodecOutcomes bounds a decoded outcome vector (a campaign far
	// larger than any real sweep; guards against corrupt length fields).
	maxCodecOutcomes = 1 << 28
)

// EncodeStats serializes shard statistics into the HXSR container.
func EncodeStats(s *Stats) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	put := func(v any) { _ = binary.Write(&buf, le, v) }
	put(uint32(statsMagic))
	put(uint32(statsVersion))
	put(uint32(s.N))
	put(uint32(s.Masked))
	put(uint32(s.SDC))
	put(uint32(s.Crash))
	put(uint32(s.Hang))
	put(uint32(s.Trap))
	put(uint32(s.Skipped))
	put(s.GoldenCycles)
	put(uint32(len(s.Outcomes)))
	for _, o := range s.Outcomes {
		put(uint8(o))
	}
	return buf.Bytes()
}

// DecodeStats deserializes an HXSR container written by EncodeStats,
// rejecting bad magic, unknown versions, truncated payloads,
// unreasonable lengths and trailing bytes.
func DecodeStats(data []byte) (*Stats, error) {
	r := bytes.NewReader(data)
	le := binary.LittleEndian
	get := func(v any) error { return binary.Read(r, le, v) }
	var magic, version uint32
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("inject: stats codec: %w", err)
	}
	if magic != statsMagic {
		return nil, fmt.Errorf("inject: bad stats magic %#x", magic)
	}
	if err := get(&version); err != nil {
		return nil, fmt.Errorf("inject: stats codec: %w", err)
	}
	if version != statsVersion {
		return nil, fmt.Errorf("inject: unsupported stats version %d", version)
	}
	var n, masked, sdc, crash, hang, trap, skipped, outcomes uint32
	s := &Stats{}
	for _, f := range []*uint32{&n, &masked, &sdc, &crash, &hang, &trap, &skipped} {
		if err := get(f); err != nil {
			return nil, fmt.Errorf("inject: stats codec: %w", err)
		}
	}
	if err := get(&s.GoldenCycles); err != nil {
		return nil, fmt.Errorf("inject: stats codec: %w", err)
	}
	if err := get(&outcomes); err != nil {
		return nil, fmt.Errorf("inject: stats codec: %w", err)
	}
	if outcomes > maxCodecOutcomes {
		return nil, fmt.Errorf("inject: unreasonable outcome count %d", outcomes)
	}
	s.N, s.Masked, s.SDC, s.Crash = int(n), int(masked), int(sdc), int(crash)
	s.Hang, s.Trap, s.Skipped = int(hang), int(trap), int(skipped)
	if outcomes > 0 {
		raw := make([]byte, outcomes)
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, fmt.Errorf("inject: stats codec: %w", err)
		}
		s.Outcomes = make([]Outcome, outcomes)
		for i, b := range raw {
			s.Outcomes[i] = Outcome(b)
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("inject: %d trailing stats bytes", r.Len())
	}
	return s, nil
}
