package inject

import (
	"container/list"
	"encoding/json"
	"sync"
	"time"

	"harpocrates/internal/ace"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
	"harpocrates/internal/obs"
	"harpocrates/internal/stats"
	"harpocrates/internal/uarch"
)

// Content-addressed golden artifact cache.
//
// Every RunRange pays for one instrumented golden run before it
// simulates a single fault, and the golden run depends only on the
// program and the scalar golden configuration — not on the target
// structure (modulo FP netlist routing), the fault type, the seed or
// the shard bounds. A six-structure ranking sweep over one program
// therefore used to run six bit-identical golden simulations; a pull
// worker leasing six shards of one campaign ran six more. The cache
// collapses all of them to one compute per (program, config) key:
//
//   - an in-process sharded LRU with single-flight, shared by every
//     campaign in the process (corpus ranking sweeps, the local
//     Workers-parallel path, queue workers), refcounted so pooled
//     resources never return to their pools while a campaign still
//     reads them;
//   - an optional disk tier (goldendisk.go) under the same key, so a
//     restarted worker process skips recomputation entirely.
//
// Bit-identity is the contract: a campaign served from the cache
// produces Stats equal to a cold campaign, injection by injection.
// That holds because the golden run is deterministic, its
// instrumentation (interval recorders, checkpoints, the delta
// trajectory) is purely observational, and the key captures exactly
// the inputs the golden run reads: the program bytes and the scalar
// fields of goldenConfig, with the FP-netlist class folded in. Knobs
// that steer only how faulty runs are accelerated — CheckpointInterval,
// DeltaInterval, NoCycleSkip — are deliberately excluded: bundles
// computed under different settings of those knobs are interchangeable
// (checkpoint resume and delta termination are outcome-preserving at
// any spacing, asserted by differential tests).

// GoldenKey identifies one golden run: the content hash of the encoded
// program and the hash of the scalar golden configuration (with the
// golden class folded in).
type GoldenKey struct {
	Program uint64
	Config  uint64
}

const (
	goldenShards = 16
	// DefaultGoldenCacheEntries is the default in-process capacity in
	// bundles. Bundles are heavyweight (checkpoint cores hold full
	// memory images), so the default is sized for "a handful of
	// programs in flight", not thousands.
	DefaultGoldenCacheEntries = 64
)

type goldenEntry struct {
	key     GoldenKey
	ready   chan struct{} // closed once ga/err are set
	ga      *uarch.GoldenArtifacts
	err     error
	refs    int // campaigns currently reading the bundle
	evicted bool
	elem    *list.Element
}

type goldenShard struct {
	mu  sync.Mutex
	m   map[GoldenKey]*goldenEntry
	lru *list.List // of *goldenEntry; front = most recently used
}

// GoldenCache is the process-wide golden artifact cache. The zero value
// is not usable; construct with NewGoldenCache.
type GoldenCache struct {
	shards   [goldenShards]goldenShard
	perShard int
	disk     *goldenDisk
}

// NewGoldenCache returns a cache holding at most maxEntries decoded
// bundles (<= 0 means DefaultGoldenCacheEntries). dir, when non-empty,
// adds a disk tier under dir that persists encoded bundles across
// process restarts; a disk tier that fails to open is reported and the
// cache runs memory-only.
func NewGoldenCache(maxEntries int, dir string) (*GoldenCache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultGoldenCacheEntries
	}
	per := (maxEntries + goldenShards - 1) / goldenShards
	g := &GoldenCache{perShard: per}
	for i := range g.shards {
		g.shards[i].m = make(map[GoldenKey]*goldenEntry)
		g.shards[i].lru = list.New()
	}
	if dir != "" {
		disk, err := openGoldenDisk(dir)
		if err != nil {
			return nil, err
		}
		g.disk = disk
	}
	return g, nil
}

// Close releases the disk tier (in-memory bundles stay usable).
func (g *GoldenCache) Close() error {
	if g == nil || g.disk == nil {
		return nil
	}
	return g.disk.close()
}

var (
	sharedGoldenOnce sync.Once
	sharedGolden     *GoldenCache
)

// SharedGoldenCache returns the lazily-created process-wide cache that
// campaign runners use by default (memory-only; daemons that want a
// disk tier build their own with NewGoldenCache).
func SharedGoldenCache() *GoldenCache {
	sharedGoldenOnce.Do(func() {
		sharedGolden, _ = NewGoldenCache(DefaultGoldenCacheEntries, "")
	})
	return sharedGolden
}

func (g *GoldenCache) shardFor(key GoldenKey) *goldenShard {
	return &g.shards[(key.Program^key.Config)%goldenShards]
}

// Acquire returns the golden bundle for key, computing it with compute
// on a cold miss (single-flight: concurrent campaigns on the same key
// block on one computation). The returned release must be called when
// the campaign is done reading the bundle — pooled resources inside it
// go back to their pools only after the last reader of an evicted entry
// releases. Counters land on ob (per caller, so a corpus sweep and a
// queue worker sharing one cache each see their own hit rates).
func (g *GoldenCache) Acquire(key GoldenKey, prog []isa.Inst, ob *obs.Observer,
	compute func() *uarch.GoldenArtifacts) (*uarch.GoldenArtifacts, func(), error) {
	sh := g.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		e.refs++
		sh.lru.MoveToFront(e.elem)
		sh.mu.Unlock()
		<-e.ready
		if e.err != nil {
			g.release(sh, e)
			return nil, nil, e.err
		}
		ob.Counter("inject.golden.cache.hits").Inc()
		return e.ga, func() { g.release(sh, e) }, nil
	}

	e := &goldenEntry{key: key, ready: make(chan struct{}), refs: 1}
	e.elem = sh.lru.PushFront(e)
	sh.m[key] = e
	g.evictLocked(sh, ob)
	sh.mu.Unlock()

	ob.Counter("inject.golden.cache.misses").Inc()
	ga, err := g.load(key, prog, ob, compute)

	sh.mu.Lock()
	if err != nil {
		// Drop the entry so a later campaign retries the computation.
		delete(sh.m, key)
		sh.lru.Remove(e.elem)
		e.evicted = true
	}
	e.ga, e.err = ga, err
	close(e.ready)
	sh.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	ob.Gauge("inject.golden.cache.bytes").Set(float64(g.approxBytes()))
	return ga, func() { g.release(sh, e) }, nil
}

// load fills a cold entry: disk tier first, then compute (persisting
// the encoded bundle for the next process).
func (g *GoldenCache) load(key GoldenKey, prog []isa.Inst, ob *obs.Observer,
	compute func() *uarch.GoldenArtifacts) (*uarch.GoldenArtifacts, error) {
	if g.disk != nil {
		if data, ok := g.disk.get(key); ok {
			ga, err := uarch.DecodeGoldenArtifacts(data, prog)
			if err == nil {
				ob.Counter("inject.golden.cache.disk_hits").Inc()
				return ga, nil
			}
			// A bundle that fails to decode (version skew, corruption the
			// CRC happened to collide on) is recomputed, never fatal.
			ob.Counter("inject.golden.cache.read_errors").Inc()
		}
	}
	start := time.Now()
	ga := compute()
	ob.Histogram("inject.golden.compute_ns").ObserveDuration(time.Since(start))
	if g.disk != nil {
		if data, err := uarch.EncodeGoldenArtifacts(ga); err == nil {
			g.disk.put(key, data, ob)
		}
	}
	return ga, nil
}

// evictLocked trims the shard to capacity, skipping entries that are
// still being computed or still referenced (the cache may transiently
// exceed capacity rather than yank a bundle out from under a campaign).
func (g *GoldenCache) evictLocked(sh *goldenShard, ob *obs.Observer) {
	for el := sh.lru.Back(); el != nil && sh.lru.Len() > g.perShard; {
		prev := el.Prev()
		e := el.Value.(*goldenEntry)
		ready := false
		select {
		case <-e.ready:
			ready = true
		default:
		}
		if ready && e.err == nil {
			delete(sh.m, e.key)
			sh.lru.Remove(el)
			e.evicted = true
			ob.Counter("inject.golden.cache.evictions").Inc()
			if e.refs == 0 {
				e.ga.Release()
				e.ga = nil
			}
		}
		el = prev
	}
}

// release drops one reader reference; the last reader of an evicted
// entry returns its pooled resources.
func (g *GoldenCache) release(sh *goldenShard, e *goldenEntry) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e.refs--
	if e.refs == 0 && e.evicted && e.ga != nil {
		e.ga.Release()
		e.ga = nil
	}
}

// Purge evicts every resident bundle that has finished computing,
// returning pooled resources of the unreferenced ones immediately and
// of the referenced ones when their last reader releases. In-flight
// computations survive. For memory-pressure relief and test hygiene.
func (g *GoldenCache) Purge() {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; {
			prev := el.Prev()
			e := el.Value.(*goldenEntry)
			select {
			case <-e.ready:
				delete(sh.m, e.key)
				sh.lru.Remove(el)
				e.evicted = true
				if e.refs == 0 && e.ga != nil {
					e.ga.Release()
					e.ga = nil
				}
			default:
			}
			el = prev
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of resident bundles (tests).
func (g *GoldenCache) Len() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

func (g *GoldenCache) approxBytes() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			select {
			case <-e.ready:
				n += e.ga.ApproxBytes()
			default:
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// goldenClass distinguishes golden runs whose functional-unit routing
// differs: FP targets execute through the fault-free netlists
// (goldenConfig installs the hooks), and hooks are invisible to the
// config's JSON form, so the class is folded into the key explicitly.
func (c *Campaign) goldenClass() uint64 {
	switch c.Target {
	case coverage.FPAdd:
		return 1
	case coverage.FPMul:
		return 2
	}
	return 0
}

// goldenKey derives the campaign's cache key. NoCycleSkip is normalized
// out: the golden run always executes the naive cycle loop (the
// checkpoint hook forces it), so the knob cannot change the bundle.
func (c *Campaign) goldenKey() GoldenKey {
	cfg := c.goldenConfig()
	cfg.NoCycleSkip = false
	h := stats.HashInit
	if b, err := json.Marshal(cfg); err == nil {
		h = stats.HashBytes(b)
	}
	return GoldenKey{Program: c.ProgramHash, Config: stats.Mix64(h, c.goldenClass())}
}

// goldenCacheable gates the cache. Beyond the obvious knobs, any
// configuration that attaches per-run instrumentation to the golden
// core (ACE/IBR trackers, a trace sink, a caller event schedule, debug
// scrubbing) is excluded: such state either escapes the serializable
// bundle or is invisible to the JSON key.
func (c *Campaign) goldenCacheable() bool {
	if c.GoldenCache == nil || c.NoGoldenCache || c.NoFastForward || c.ProgramHash == 0 {
		return false
	}
	cfg := &c.Cfg
	if cfg.TrackIRF || cfg.TrackL1D || cfg.TrackFPRF || cfg.TrackIBR ||
		cfg.DebugScrub || cfg.Trace != nil || len(cfg.Events) != 0 {
		return false
	}
	return true
}

// computeGoldenArtifacts runs the canonical shared-instrumentation
// golden: all three interval recorders on (any bit-array campaign
// sharing the bundle can pre-classify) and the delta trajectory always
// recorded at the default interval (any delta-eligible campaign can
// terminate against it). Checkpoints use the canonical spacing so the
// bundle is a pure function of (program, config). All of it is
// observational: the Result is bit-identical to Golden().
func (c *Campaign) computeGoldenArtifacts() *uarch.GoldenArtifacts {
	cfg := c.goldenConfig()
	cfg.RecordIRFIntervals = true
	cfg.RecordFPRFIntervals = true
	cfg.RecordL1DIntervals = true
	traj := uarch.GetDeltaTrajectory(0)
	cfg.DeltaRecord = traj
	var cks []*uarch.Checkpoint
	interval := uint64(defaultCheckpointInterval)
	next := interval
	cfg.OnCycle = func(core *uarch.Core, cyc uint64) {
		if cyc != next {
			return
		}
		if len(cks) >= maxCheckpoints {
			kept := cks[:0]
			for j := 1; j < len(cks); j += 2 {
				cks[j-1].Release()
				kept = append(kept, cks[j])
			}
			if len(cks)%2 == 1 {
				cks[len(cks)-1].Release()
			}
			cks = kept
			interval *= 2
		}
		cks = append(cks, core.Checkpoint())
		next = cyc + interval
	}
	golden := uarch.Run(c.Prog, c.Init(), cfg)
	return &uarch.GoldenArtifacts{Result: golden, Checkpoints: cks, Trajectory: traj}
}

// acquireGolden returns the campaign's golden result, checkpoints and
// (when delta-eligible) trajectory, plus the release the caller must
// run after the last read. The cached path shares one bundle across
// every campaign with the same key; the uncached path owns its
// instrumentation and the release returns it to the pools directly.
func (c *Campaign) acquireGolden() (*uarch.Result, []*uarch.Checkpoint, *uarch.DeltaTrajectory, func()) {
	if c.goldenCacheable() {
		ga, rel, err := c.GoldenCache.Acquire(c.goldenKey(), c.Prog, c.Obs, c.computeGoldenArtifacts)
		if err == nil {
			traj := ga.Trajectory
			if !c.deltaEligible() {
				traj = nil
			}
			return ga.Result, ga.Checkpoints, traj, rel
		}
		// A cache-layer error (cannot happen today — compute is
		// infallible — but the entry API reserves it) degrades to the
		// uncached path rather than failing the campaign.
	}
	golden, cks, traj := c.goldenInstrumented()
	release := func() {
		ace.ReleaseIntervalRecorder(golden.IRFIntervals)
		ace.ReleaseIntervalRecorder(golden.FPRFIntervals)
		ace.ReleaseIntervalRecorder(golden.L1DIntervals)
		for _, ck := range cks {
			ck.Release()
		}
		uarch.ReleaseDeltaTrajectory(traj)
	}
	return golden, cks, traj, release
}
