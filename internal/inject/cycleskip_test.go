package inject

import (
	"testing"

	"harpocrates/internal/coverage"
)

// TestCycleSkipBitIdenticalStats is the acceptance gate of the
// event-driven run loop at campaign level: for every structure and fault
// type, a campaign whose faulty runs use cycle skipping (the default —
// bit-array faults ride the sparse event schedule) must produce
// per-injection outcomes bit-identical to the same campaign forced onto
// the naive cycle-by-cycle loop.
func TestCycleSkipBitIdenticalStats(t *testing.T) {
	cases := []struct {
		target coverage.Structure
		typ    FaultType
		n      int
	}{
		{coverage.IRF, Transient, 48},
		{coverage.FPRF, Transient, 48},
		{coverage.L1D, Transient, 48},
		{coverage.IRF, Intermittent, 16},
		{coverage.FPRF, Intermittent, 12},
		{coverage.L1D, Intermittent, 12},
		{coverage.IntAdder, Permanent, 12},
		{coverage.IntMul, Permanent, 8},
		{coverage.IntAdder, Intermittent, 8},
		{coverage.FPAdd, Permanent, 8},
		{coverage.FPMul, Permanent, 8},
		{coverage.FPAdd, Intermittent, 6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.target.String()+"/"+tc.typ.String(), func(t *testing.T) {
			t.Parallel()
			run := func(noSkip bool) *Stats {
				c := testProgram(t, 350, nil)
				c.Target = tc.target
				c.Type = tc.typ
				c.IntermittentLen = 80
				c.N = tc.n
				c.Seed = 11
				c.Cfg.NoCycleSkip = noSkip
				st, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			naive, skip := run(true), run(false)
			if !naive.Equal(skip) {
				t.Fatalf("cycle skipping changed campaign statistics:\nnaive: %+v\nskip:  %+v", naive, skip)
			}
		})
	}
}

// TestCycleSkipHangOutcome: the watchdog fast path (a wedged run jumps
// straight to MaxCycles) must classify hangs identically to spinning the
// naive loop to the limit — the single most expensive case skipping
// collapses.
func TestCycleSkipHangOutcome(t *testing.T) {
	run := func(noSkip bool) *Stats {
		c := loopCampaign(t, 300)
		c.N = 40
		c.Seed = 3
		c.Cfg.NoCycleSkip = noSkip
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	skip := run(false)
	if skip.Hang == 0 {
		t.Fatalf("no hang among %d counter-loop flips: %+v", skip.N, skip)
	}
	if naive := run(true); !naive.Equal(skip) {
		t.Fatalf("hang statistics diverge: naive %+v, skip %+v", naive, skip)
	}
}
