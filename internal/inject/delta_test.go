package inject

import (
	"testing"

	"harpocrates/internal/ace"
	"harpocrates/internal/coverage"
	"harpocrates/internal/obs"
	"harpocrates/internal/uarch"
)

// TestDeltaTerminationBitIdenticalStats is the acceptance gate of delta
// resimulation: for every structure and fault type, a campaign with
// reconvergence-based early termination (the default) must produce
// per-injection outcomes bit-identical to the same campaign with
// NoDeltaTermination forcing every run to completion. The FU-permanent
// rows are delta-ineligible (the faulty netlist never quiesces) and pin
// that the knob is harmless there too.
func TestDeltaTerminationBitIdenticalStats(t *testing.T) {
	cases := []struct {
		target coverage.Structure
		typ    FaultType
		n      int
	}{
		{coverage.IRF, Transient, 48},
		{coverage.FPRF, Transient, 48},
		{coverage.L1D, Transient, 48},
		{coverage.IRF, Intermittent, 16},
		{coverage.FPRF, Intermittent, 12},
		{coverage.L1D, Intermittent, 12},
		{coverage.IntAdder, Permanent, 12},
		{coverage.IntMul, Permanent, 8},
		{coverage.IntAdder, Intermittent, 8},
		{coverage.FPAdd, Permanent, 8},
		{coverage.FPMul, Permanent, 8},
		{coverage.FPAdd, Intermittent, 6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.target.String()+"/"+tc.typ.String(), func(t *testing.T) {
			t.Parallel()
			run := func(noDelta bool) *Stats {
				c := testProgram(t, 350, nil)
				c.Target = tc.target
				c.Type = tc.typ
				c.IntermittentLen = 80
				c.N = tc.n
				c.Seed = 11
				c.NoDeltaTermination = noDelta
				st, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			full, delta := run(true), run(false)
			if !full.Equal(delta) {
				t.Fatalf("delta termination changed campaign statistics:\nfull:  %+v\ndelta: %+v", full, delta)
			}
		})
	}
}

// TestDeltaTerminationConverges: the optimization must actually fire —
// an IRF transient campaign (where most consumed-then-overwritten flips
// reconverge) must terminate at least one run early, count the cycles it
// saved, and classify every converged run without a full simulation.
func TestDeltaTerminationConverges(t *testing.T) {
	reg := obs.NewRegistry()
	c := testProgram(t, 350, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 64
	c.Seed = 11
	c.DeltaInterval = 64
	c.Obs = obs.New(reg, nil)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	conv := reg.Counter("inject.delta.converged").Load()
	div := reg.Counter("inject.delta.diverged").Load()
	saved := reg.Counter("inject.delta.cycles_saved").Load()
	if conv == 0 {
		t.Fatalf("no run reconverged (diverged=%d): delta termination never fired; %+v", div, st)
	}
	if saved == 0 {
		t.Fatal("runs reconverged but saved no cycles")
	}
	if conv+div != reg.Counter("inject.simulated").Load() {
		t.Fatalf("converged %d + diverged %d != simulated %d",
			conv, div, reg.Counter("inject.simulated").Load())
	}
	t.Logf("converged %d, diverged %d, saved %d cycles (golden %d)",
		conv, div, saved, st.GoldenCycles)
}

// TestDeltaTerminationHangInterplay: hang outcomes (the runs delta can
// never terminate early — they never reconverge) must be untouched, on
// the counter-loop workload whose flips produce real hangs.
func TestDeltaTerminationHangInterplay(t *testing.T) {
	run := func(noDelta bool) *Stats {
		c := loopCampaign(t, 300)
		c.N = 40
		c.Seed = 3
		c.NoDeltaTermination = noDelta
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	delta := run(false)
	if delta.Hang == 0 {
		t.Fatalf("no hang among %d counter-loop flips: %+v", delta.N, delta)
	}
	if full := run(true); !full.Equal(delta) {
		t.Fatalf("hang statistics diverge: full %+v, delta %+v", full, delta)
	}
}

// TestDeltaTerminationValidateAll: the soundness self-check re-simulates
// every delta-terminated run to completion and must find all of them
// Masked.
func TestDeltaTerminationValidateAll(t *testing.T) {
	reg := obs.NewRegistry()
	c := testProgram(t, 350, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 48
	c.Seed = 11
	c.DeltaInterval = 64
	c.ValidateAll = true
	c.Obs = obs.New(reg, nil)
	st, err := c.Run()
	if err != nil {
		t.Fatalf("delta validation failed: %v", err)
	}
	if reg.Counter("inject.delta.converged").Load() == 0 {
		t.Fatal("validation pass exercised no reconvergence")
	}

	plain := testProgram(t, 350, nil)
	plain.Target = coverage.IRF
	plain.Type = Transient
	plain.N = 48
	plain.Seed = 11
	plain.NoDeltaTermination = true
	pst, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !pst.Equal(st) {
		t.Fatalf("ValidateAll+delta changed statistics: %+v vs %+v", pst, st)
	}
}

// TestCampaignPoolHygiene: a campaign must hand every pooled resource
// back — interval recorders, checkpoint core snapshots and the delta
// trajectory — on the success path and on the golden-timeout error path.
// Not parallel: it compares global live counters around the calls, so no
// other campaign may run concurrently (package tests marked t.Parallel
// never overlap a non-parallel test).
func TestCampaignPoolHygiene(t *testing.T) {
	baseRec := ace.LiveIntervalRecorders()
	baseCk := uarch.LiveCheckpoints()
	baseTraj := uarch.LiveDeltaTrajectories()
	check := func(label string) {
		t.Helper()
		if got := ace.LiveIntervalRecorders(); got != baseRec {
			t.Fatalf("%s: %d interval recorders leaked", label, got-baseRec)
		}
		if got := uarch.LiveCheckpoints(); got != baseCk {
			t.Fatalf("%s: %d checkpoints leaked", label, got-baseCk)
		}
		if got := uarch.LiveDeltaTrajectories(); got != baseTraj {
			t.Fatalf("%s: %d delta trajectories leaked", label, got-baseTraj)
		}
	}

	// Success path, with caller-set Record* flags that goldenConfig must
	// strip (each faulty run would otherwise draw a recorder and leak it
	// through the discarded Result).
	c := testProgram(t, 350, nil)
	c.Target = coverage.IRF
	c.Type = Transient
	c.N = 32
	c.Seed = 11
	c.Cfg.RecordIRFIntervals = true
	c.Cfg.RecordFPRFIntervals = true
	c.Cfg.RecordL1DIntervals = true
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	check("success path")

	// Long enough to force the checkpoint-halving pass (which must
	// release the snapshots it drops).
	big := testProgram(t, 2000, nil)
	big.Target = coverage.IRF
	big.Type = Transient
	big.N = 8
	big.Seed = 11
	big.CheckpointInterval = 16
	if _, err := big.Run(); err != nil {
		t.Fatal(err)
	}
	check("checkpoint halving")

	// Golden-timeout error path: instrumentation is acquired before the
	// timeout is noticed and must still be released.
	bad := testProgram(t, 350, nil)
	bad.Target = coverage.IRF
	bad.Type = Transient
	bad.N = 8
	bad.Cfg.MaxCycles = 5
	if _, err := bad.Run(); err == nil {
		t.Fatal("golden timeout not reported")
	}
	check("golden-timeout path")
}
