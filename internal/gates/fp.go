package gates

// Gate-level floating-point units. These model the main datapath of an
// SSE-style FP adder and multiplier: operand unpacking, exponent
// compare/adjust, mantissa alignment (barrel shifter), the mantissa
// adder / multiplier array, normalization (leading-zero count + shifter)
// and repacking.
//
// Simplifications relative to full IEEE-754 hardware, documented in
// DESIGN.md: results truncate instead of rounding, subnormals/NaN/Inf
// are handled by a native bypass in the wrapping unit (golden and faulty
// runs take identical paths, so fault-detection semantics are exact),
// and exponent overflow wraps. These omissions remove corner-case
// control logic but keep the entire arithmetic datapath — where the
// overwhelming majority of the unit's gates live — at gate level.

// fpFields splits an input FP bus into (sign, exp, frac).
func fpFields(x Bus, expBits, mantBits int) (sign int, exp, frac Bus) {
	frac = x[:mantBits]
	exp = x[mantBits : mantBits+expBits]
	sign = x[mantBits+expBits]
	return
}

// zeroExtend pads a bus with constant zeros up to width w.
func (b *Builder) zeroExtend(x Bus, w int) Bus {
	if len(x) >= w {
		return x[:w]
	}
	out := make(Bus, w)
	copy(out, x)
	for i := len(x); i < w; i++ {
		out[i] = b.Const(false)
	}
	return out
}

// NewFPAdder builds a floating-point adder/subtractor netlist for a
// format with the given exponent and mantissa (fraction) widths.
// Inputs: a then b (each 1+expBits+mantBits, LSB first).
// Outputs: the result in the same packed layout.
func NewFPAdder(expBits, mantBits int) *Netlist {
	b := NewBuilder("fp-adder")
	total := 1 + expBits + mantBits
	aBus := b.InputBus(total)
	bBus := b.InputBus(total)
	signA, expA, fracA := fpFields(aBus, expBits, mantBits)
	signB, expB, fracB := fpFields(bBus, expBits, mantBits)

	// Work width: implicit-one + fraction + 3 guard bits.
	w := mantBits + 4
	mantOf := func(frac Bus) Bus {
		m := make(Bus, w)
		for i := 0; i < 3; i++ {
			m[i] = b.Const(false)
		}
		for i, g := range frac {
			m[3+i] = g
		}
		m[w-1] = b.Const(true) // implicit leading one
		return m
	}
	mantA := mantOf(fracA)
	mantB := mantOf(fracB)

	// Exponent comparison: swap so L has the larger exponent.
	dAB, noBorrowAB := b.SubBus(expA, expB)
	dBA, _ := b.SubBus(expB, expA)
	swap := b.Not(noBorrowAB) // expA < expB
	expL := b.MuxBus(swap, expB, expA)
	mantL := b.MuxBus(swap, mantB, mantA)
	mantS := b.MuxBus(swap, mantA, mantB)
	signL := b.Mux(swap, signB, signA)
	signS := b.Mux(swap, signA, signB)
	sh := b.MuxBus(swap, dBA, dAB)

	// Align the smaller mantissa.
	mantSAligned := b.ShiftRightBus(mantS, sh, b.Const(false))

	// Shared adder: for effective subtraction add the complement with
	// carry-in 1 (two's complement).
	effSub := b.Xor(signA, signB)
	y := b.MuxBus(effSub, b.NotBus(mantSAligned), mantSAligned)
	sum, cout := b.AddBus(mantL, y, effSub)

	topBit := b.And(cout, b.Not(effSub))     // add overflow: 1 extra bit
	neg := b.And(effSub, b.Not(cout))        // subtraction went negative
	mag := b.MuxBus(neg, b.NegBus(sum), sum) // magnitude of the result
	resultZero := b.And(b.IsZero(mag), b.Not(topBit))

	// Normalization.
	// Case 1 (topBit): shift right one, exponent + 1.
	shifted1 := make(Bus, w)
	for i := 0; i < w-1; i++ {
		shifted1[i] = mag[i+1]
	}
	shifted1[w-1] = topBit
	// Case 2: shift left by the leading-zero count, exponent - lz.
	lz := b.LeadingZeros(mag)
	normL := b.ShiftLeftBus(mag, lz, b.Const(false))
	norm := b.MuxBus(topBit, shifted1, normL)

	one := b.ConstBus(expBits, 1)
	expPlus, _ := b.AddBus(expL, one, b.Const(false))
	lzExt := b.zeroExtend(lz, expBits)
	expMinus, _ := b.SubBus(expL, lzExt)
	expRes := b.MuxBus(topBit, expPlus, expMinus)

	signRes := b.Mux(neg, signS, signL)

	// Pack, forcing +0 on complete cancellation.
	nz := b.Not(resultZero)
	out := make(Bus, total)
	for i := 0; i < mantBits; i++ {
		out[i] = b.And(norm[3+i], nz)
	}
	for i := 0; i < expBits; i++ {
		out[mantBits+i] = b.And(expRes[i], nz)
	}
	out[total-1] = b.And(signRes, nz)
	b.OutputBus(out)
	return b.Build()
}

// NewFPMultiplier builds a floating-point multiplier netlist.
// Inputs: a then b (packed); outputs: the packed product.
func NewFPMultiplier(expBits, mantBits int) *Netlist {
	b := NewBuilder("fp-multiplier")
	total := 1 + expBits + mantBits
	aBus := b.InputBus(total)
	bBus := b.InputBus(total)
	signA, expA, fracA := fpFields(aBus, expBits, mantBits)
	signB, expB, fracB := fpFields(bBus, expBits, mantBits)

	mw := mantBits + 1
	mantOf := func(frac Bus) Bus {
		m := make(Bus, mw)
		copy(m, frac)
		m[mw-1] = b.Const(true)
		return m
	}
	// Mantissa product: (mantBits+1) x (mantBits+1) array multiplier.
	p := b.MulArray(mantOf(fracA), mantOf(fracB)) // 2*mw bits
	top := p[2*mw-1]                              // product in [2,4): shift right one

	// Fraction selection with truncation.
	fracHi := p[mw : 2*mw-1]   // top set: bits below the leading 1 at 2mw-1
	fracLo := p[mw-1 : 2*mw-2] // top clear: leading 1 at 2mw-2
	frac := b.MuxBus(top, fracHi, fracLo)

	// Exponent: expA + expB - bias + top, computed at expBits+2 width.
	ew := expBits + 2
	bias := uint64(1)<<uint(expBits-1) - 1
	sum, _ := b.AddBus(b.zeroExtend(expA, ew), b.zeroExtend(expB, ew), b.Const(false))
	unb, _ := b.SubBus(sum, b.ConstBus(ew, bias))
	zero := b.ConstBus(ew, 0)
	withNorm, _ := b.AddBus(unb, zero, top)

	out := make(Bus, total)
	for i := 0; i < mantBits; i++ {
		out[i] = b.Buf(frac[i])
	}
	for i := 0; i < expBits; i++ {
		out[mantBits+i] = b.Buf(withNorm[i])
	}
	out[total-1] = b.Xor(signA, signB)
	b.OutputBus(out)
	return b.Build()
}

// NewIntAdder builds a width-bit ripple-carry adder with carry-in.
// Inputs: a, b (width bits each), cin. Outputs: sum (width bits), cout.
func NewIntAdder(width int) *Netlist {
	b := NewBuilder("int-adder")
	a := b.InputBus(width)
	y := b.InputBus(width)
	cin := b.Input()
	sum, cout := b.AddBus(a, y, cin)
	b.OutputBus(sum)
	b.Output(cout)
	return b.Build()
}

// NewIntMultiplier builds a width x width -> 2*width unsigned array
// multiplier. Inputs: a, b. Outputs: the 2*width-bit product.
func NewIntMultiplier(width int) *Netlist {
	b := NewBuilder("int-multiplier")
	a := b.InputBus(width)
	y := b.InputBus(width)
	b.OutputBus(b.MulArray(a, y))
	return b.Build()
}
