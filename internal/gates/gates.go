// Package gates implements structural gate-level models of CPU functional
// units, the substrate the paper grades permanent faults on ("All
// functional unit components are modeled at gate level", §III-C).
//
// A Netlist is a topologically-ordered array of two-input primitive gates.
// Evaluation is 64-lane bit-parallel: every wire carries a uint64 whose
// bits are 64 independent input patterns, so one pass over the gate array
// simulates 64 operand pairs (classic parallel-pattern single-fault
// propagation). Stuck-at-0/1 faults can be injected at any gate output;
// the override is applied mid-evaluation so all downstream logic sees the
// faulty value, giving exact logical masking behaviour.
package gates

import "fmt"

// GateType enumerates the primitive gates.
type GateType uint8

// Primitive gate types.
const (
	GInput GateType = iota // external input; A is the input ordinal
	GConst0
	GConst1
	GBuf // A
	GNot // A
	GAnd // A, B
	GOr
	GXor
	GNand
	GNor
	GXnor

	numGateTypes
)

var gateNames = [numGateTypes]string{
	"input", "const0", "const1", "buf", "not", "and", "or", "xor", "nand", "nor", "xnor",
}

func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("gate?%d", uint8(t))
}

// Gate is one primitive gate. A and B index earlier gates in the netlist
// (for GInput, A is the external input ordinal).
type Gate struct {
	Type GateType
	A, B int32
}

// Netlist is a topologically ordered combinational circuit.
type Netlist struct {
	Name    string
	Gates   []Gate
	NumIn   int   // number of external inputs
	Outputs []int // gate indices, in output-ordinal order
}

// NumGates returns the total gate count (inputs and constants included).
func (n *Netlist) NumGates() int { return len(n.Gates) }

// StuckAt is a permanent fault at a gate output.
type StuckAt struct {
	Gate  int
	Value bool // stuck-at-1 if true, stuck-at-0 if false
}

// Bus is an ordered list of gate indices, least-significant bit first.
type Bus []int

// Builder incrementally constructs a netlist.
type Builder struct {
	n *Netlist
}

// NewBuilder starts a new netlist.
func NewBuilder(name string) *Builder {
	return &Builder{n: &Netlist{Name: name}}
}

func (b *Builder) add(t GateType, a, bb int) int {
	b.n.Gates = append(b.n.Gates, Gate{Type: t, A: int32(a), B: int32(bb)})
	return len(b.n.Gates) - 1
}

// Input declares a new external input and returns its gate index.
func (b *Builder) Input() int {
	g := b.add(GInput, b.n.NumIn, 0)
	b.n.NumIn++
	return g
}

// InputBus declares w external inputs (LSB first).
func (b *Builder) InputBus(w int) Bus {
	bus := make(Bus, w)
	for i := range bus {
		bus[i] = b.Input()
	}
	return bus
}

// Const returns a constant wire.
func (b *Builder) Const(v bool) int {
	if v {
		return b.add(GConst1, 0, 0)
	}
	return b.add(GConst0, 0, 0)
}

// ConstBus returns a w-bit bus holding value v.
func (b *Builder) ConstBus(w int, v uint64) Bus {
	bus := make(Bus, w)
	for i := range bus {
		bus[i] = b.Const(v>>uint(i)&1 != 0)
	}
	return bus
}

// Primitive gate constructors.

func (b *Builder) Not(a int) int     { return b.add(GNot, a, 0) }
func (b *Builder) Buf(a int) int     { return b.add(GBuf, a, 0) }
func (b *Builder) And(a, c int) int  { return b.add(GAnd, a, c) }
func (b *Builder) Or(a, c int) int   { return b.add(GOr, a, c) }
func (b *Builder) Xor(a, c int) int  { return b.add(GXor, a, c) }
func (b *Builder) Nand(a, c int) int { return b.add(GNand, a, c) }
func (b *Builder) Nor(a, c int) int  { return b.add(GNor, a, c) }
func (b *Builder) Xnor(a, c int) int { return b.add(GXnor, a, c) }

// Mux returns sel ? a : b.
func (b *Builder) Mux(sel, a, c int) int {
	return b.Or(b.And(sel, a), b.And(b.Not(sel), c))
}

// MuxBus muxes two equal-width buses bit-wise.
func (b *Builder) MuxBus(sel int, a, c Bus) Bus {
	if len(a) != len(c) {
		panic("gates: MuxBus width mismatch")
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = b.Mux(sel, a[i], c[i])
	}
	return out
}

// Output appends a wire to the output list and returns its ordinal.
func (b *Builder) Output(sig int) int {
	b.n.Outputs = append(b.n.Outputs, sig)
	return len(b.n.Outputs) - 1
}

// OutputBus appends a whole bus to the outputs (LSB first).
func (b *Builder) OutputBus(bus Bus) {
	for _, g := range bus {
		b.Output(g)
	}
}

// Build finalizes and returns the netlist.
func (b *Builder) Build() *Netlist {
	// Validate topological order.
	for i, g := range b.n.Gates {
		switch g.Type {
		case GInput, GConst0, GConst1:
		case GBuf, GNot:
			if int(g.A) >= i {
				panic(fmt.Sprintf("gates: %s gate %d reads forward wire %d", g.Type, i, g.A))
			}
		default:
			if int(g.A) >= i || int(g.B) >= i {
				panic(fmt.Sprintf("gates: gate %d reads forward wire", i))
			}
		}
	}
	return b.n
}

// Eval is a reusable evaluation context (one per goroutine).
type Eval struct {
	n    *Netlist
	vals []uint64
}

// NewEval creates an evaluation context for n.
func NewEval(n *Netlist) *Eval {
	return &Eval{n: n, vals: make([]uint64, len(n.Gates))}
}

// Netlist returns the bound netlist.
func (e *Eval) Netlist() *Netlist { return e.n }

// Run evaluates the netlist. in holds one uint64 (64 lanes) per external
// input; out receives one uint64 per output ordinal. fault, if non-nil,
// forces the named gate's output to the stuck value in every lane.
func (e *Eval) Run(in []uint64, out []uint64, fault *StuckAt) {
	if len(in) != e.n.NumIn {
		panic(fmt.Sprintf("gates: %s: got %d inputs, want %d", e.n.Name, len(in), e.n.NumIn))
	}
	stop := len(e.n.Gates)
	if fault != nil {
		stop = fault.Gate + 1
	}
	e.runRange(in, 0, stop)
	if fault != nil {
		if fault.Value {
			e.vals[fault.Gate] = ^uint64(0)
		} else {
			e.vals[fault.Gate] = 0
		}
		e.runRange(in, stop, len(e.n.Gates))
	}
	for j, g := range e.n.Outputs {
		out[j] = e.vals[g]
	}
}

func (e *Eval) runRange(in []uint64, from, to int) {
	v := e.vals
	for i := from; i < to; i++ {
		g := e.n.Gates[i]
		switch g.Type {
		case GInput:
			v[i] = in[g.A]
		case GConst0:
			v[i] = 0
		case GConst1:
			v[i] = ^uint64(0)
		case GBuf:
			v[i] = v[g.A]
		case GNot:
			v[i] = ^v[g.A]
		case GAnd:
			v[i] = v[g.A] & v[g.B]
		case GOr:
			v[i] = v[g.A] | v[g.B]
		case GXor:
			v[i] = v[g.A] ^ v[g.B]
		case GNand:
			v[i] = ^(v[g.A] & v[g.B])
		case GNor:
			v[i] = ^(v[g.A] | v[g.B])
		case GXnor:
			v[i] = ^(v[g.A] ^ v[g.B])
		}
	}
}

// SetBusScalar broadcasts the bits of val across all 64 lanes of the
// inputs belonging to bus. The netlist must have been built so that bus
// consists of GInput gates.
func (n *Netlist) SetBusScalar(in []uint64, bus Bus, val uint64) {
	for i, g := range bus {
		ord := n.Gates[g].A
		if val>>uint(i)&1 != 0 {
			in[ord] = ^uint64(0)
		} else {
			in[ord] = 0
		}
	}
}

// SetBusLane sets the bits of val into a single lane of the bus inputs.
func (n *Netlist) SetBusLane(in []uint64, bus Bus, val uint64, lane uint) {
	bit := uint64(1) << lane
	for i, g := range bus {
		ord := n.Gates[g].A
		if val>>uint(i)&1 != 0 {
			in[ord] |= bit
		} else {
			in[ord] &^= bit
		}
	}
}

// GetScalar extracts lane 0 of count consecutive outputs starting at
// output ordinal first, LSB first.
func GetScalar(out []uint64, first, count int) uint64 {
	var v uint64
	for i := 0; i < count; i++ {
		v |= (out[first+i] & 1) << uint(i)
	}
	return v
}

// GetLane extracts one lane of count consecutive outputs.
func GetLane(out []uint64, first, count int, lane uint) uint64 {
	var v uint64
	for i := 0; i < count; i++ {
		v |= (out[first+i] >> lane & 1) << uint(i)
	}
	return v
}
