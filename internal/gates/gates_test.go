package gates

import (
	"math"
	"math/big"
	"math/bits"
	"math/rand/v2"
	"testing"
)

func TestIntAdder8Exhaustive(t *testing.T) {
	n := NewIntAdder(8)
	e := NewEval(n)
	in := make([]uint64, n.NumIn)
	out := make([]uint64, len(n.Outputs))
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			for cin := 0; cin < 2; cin++ {
				for i := 0; i < 8; i++ {
					in[i] = broadcast(uint64(a) >> uint(i) & 1)
					in[8+i] = broadcast(uint64(b) >> uint(i) & 1)
				}
				in[16] = broadcast(uint64(cin))
				e.Run(in, out, nil)
				sum := GetScalar(out, 0, 8)
				cout := GetScalar(out, 8, 1)
				want := uint64(a) + uint64(b) + uint64(cin)
				if sum != want&0xff || cout != want>>8 {
					t.Fatalf("add8(%d,%d,%d) = %d carry %d, want %d carry %d",
						a, b, cin, sum, cout, want&0xff, want>>8)
				}
			}
		}
	}
}

func TestIntAdder64Property(t *testing.T) {
	u := NewIntAdderUnit(nil)
	rng := rand.New(rand.NewPCG(31, 32))
	for i := 0; i < 3000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		cin := rng.IntN(2) == 1
		got := u.Add(a, b, cin)
		want := a + b
		if cin {
			want++
		}
		if got != want {
			t.Fatalf("netlist add(%#x,%#x,%v) = %#x, want %#x", a, b, cin, got, want)
		}
	}
}

func TestIntMul8Exhaustive(t *testing.T) {
	n := NewIntMultiplier(8)
	e := NewEval(n)
	in := make([]uint64, n.NumIn)
	out := make([]uint64, len(n.Outputs))
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			for i := 0; i < 8; i++ {
				in[i] = broadcast(uint64(a) >> uint(i) & 1)
				in[8+i] = broadcast(uint64(b) >> uint(i) & 1)
			}
			e.Run(in, out, nil)
			p := GetScalar(out, 0, 16)
			if p != uint64(a*b) {
				t.Fatalf("mul8(%d,%d) = %d, want %d", a, b, p, a*b)
			}
		}
	}
}

func TestIntMul64Property(t *testing.T) {
	u := NewIntMulUnit(nil)
	rng := rand.New(rand.NewPCG(33, 34))
	for i := 0; i < 300; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		lo, hi := u.Mul(a, b)
		whi, wlo := bits.Mul64(a, b)
		if lo != wlo || hi != whi {
			t.Fatalf("netlist mul(%#x,%#x) = %#x:%#x, want %#x:%#x", a, b, hi, lo, whi, wlo)
		}
	}
}

// refAddTrunc computes a+b in high precision and truncates toward zero at
// the target precision — the reference semantics of the guard-bit-
// truncating FP adder (exact when no alignment bits are lost).
func ulp64(x float64) float64 {
	return math.Nextafter(math.Abs(x), math.Inf(1)) - math.Abs(x)
}

func TestFPAdd64CloseToIEEE(t *testing.T) {
	u := NewFPAdd64Unit(nil)
	rng := rand.New(rand.NewPCG(35, 36))
	for i := 0; i < 2000; i++ {
		a := randNormal64(rng)
		b := randNormal64(rng)
		got := math.Float64frombits(u.Op64(math.Float64bits(a), math.Float64bits(b)))
		// Exact sum via big.Float.
		exact := new(big.Float).SetPrec(200).Add(big.NewFloat(a), big.NewFloat(b))
		ex, _ := exact.Float64()
		if ex == 0 {
			if got != 0 {
				t.Fatalf("%g + %g: got %g, want 0", a, b, got)
			}
			continue
		}
		if math.Abs(got-ex) > 8*ulp64(ex) {
			t.Fatalf("fpadd(%g, %g) = %g, want ~%g (err %g ulp)",
				a, b, got, ex, math.Abs(got-ex)/ulp64(ex))
		}
	}
}

func TestFPAdd64SameSignExact(t *testing.T) {
	// Same-sign addition with equal exponents loses no alignment bits, so
	// the only divergence from IEEE is the final truncation: at most 1 ulp
	// below the rounded result and never above the exact one.
	u := NewFPAdd64Unit(nil)
	rng := rand.New(rand.NewPCG(37, 38))
	for i := 0; i < 2000; i++ {
		a := randNormal64(rng)
		b := a * (1 + rng.Float64()) // same sign, same ballpark
		got := math.Float64frombits(u.Op64(math.Float64bits(a), math.Float64bits(b)))
		want := a + b
		if math.Abs(got-want) > 2*ulp64(want) {
			t.Fatalf("fpadd(%g, %g) = %g, want %g", a, b, got, want)
		}
	}
}

func TestFPMul64CloseToIEEE(t *testing.T) {
	u := NewFPMul64Unit(nil)
	rng := rand.New(rand.NewPCG(39, 40))
	for i := 0; i < 2000; i++ {
		a := randNormal64(rng)
		b := randNormal64(rng)
		got := math.Float64frombits(u.Op64(math.Float64bits(a), math.Float64bits(b)))
		want := a * b
		if want == 0 || math.IsInf(want, 0) {
			continue
		}
		if math.Abs(got-want) > 2*ulp64(want) {
			t.Fatalf("fpmul(%g, %g) = %g, want %g", a, b, got, want)
		}
	}
}

func TestFPAdd32CloseToIEEE(t *testing.T) {
	u := NewFPAdd32Unit(nil)
	rng := rand.New(rand.NewPCG(41, 42))
	for i := 0; i < 2000; i++ {
		a := float32(randUnit(rng) * 100)
		b := float32(randUnit(rng) * 100)
		if a == 0 || b == 0 {
			continue
		}
		got := math.Float32frombits(u.Op32(math.Float32bits(a), math.Float32bits(b)))
		want := a + b
		if want == 0 {
			continue
		}
		tol := math.Abs(float64(want)) * 1e-6
		if math.Abs(float64(got-want)) > tol {
			t.Fatalf("fpadd32(%g, %g) = %g, want %g", a, b, got, want)
		}
	}
}

func TestFPMul32CloseToIEEE(t *testing.T) {
	u := NewFPMul32Unit(nil)
	rng := rand.New(rand.NewPCG(43, 44))
	for i := 0; i < 2000; i++ {
		a := float32(randUnit(rng) * 100)
		b := float32(randUnit(rng) * 100)
		if a == 0 || b == 0 {
			continue
		}
		got := math.Float32frombits(u.Op32(math.Float32bits(a), math.Float32bits(b)))
		want := a * b
		tol := math.Abs(float64(want)) * 1e-6
		if math.Abs(float64(got-want)) > tol {
			t.Fatalf("fpmul32(%g, %g) = %g, want %g", a, b, got, want)
		}
	}
}

func TestFPSpecialOperandsBypass(t *testing.T) {
	u := NewFPAdd64Unit(nil)
	specials := []float64{0, math.Inf(1), math.Inf(-1), math.NaN(), 5e-310 /* subnormal */}
	for _, s := range specials {
		got := math.Float64frombits(u.Op64(math.Float64bits(s), math.Float64bits(1.5)))
		want := s + 1.5
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("NaN + 1.5: got %g", got)
			}
			continue
		}
		if got != want {
			t.Fatalf("special %g + 1.5 = %g, want %g", s, got, want)
		}
	}
}

func TestStuckAtFaultDetectable(t *testing.T) {
	// A stuck-at-1 on the adder's carry-in input wire must corrupt a+b
	// for inputs where cin=0 produces a different sum.
	n := IntAdder64Netlist()
	// Find the cin input gate: ordinal 128.
	cinGate := -1
	for i, g := range n.Gates {
		if g.Type == GInput && g.A == 128 {
			cinGate = i
		}
	}
	if cinGate < 0 {
		t.Fatal("cin input gate not found")
	}
	u := NewIntAdderUnit(&StuckAt{Gate: cinGate, Value: true})
	if got := u.Add(1, 2, false); got != 4 {
		t.Fatalf("stuck-at-1 cin: add(1,2,0) = %d, want 4", got)
	}
}

func TestStuckAtFaultLogicalMasking(t *testing.T) {
	// A stuck-at-0 on a partial-product AND gate is masked whenever that
	// partial product is 0 anyway (a=0 masks every pp gate).
	n := IntMul64Netlist()
	ppGate := -1
	for i, g := range n.Gates {
		if g.Type == GAnd {
			ppGate = i
			break
		}
	}
	u := NewIntMulUnit(&StuckAt{Gate: ppGate, Value: false})
	lo, hi := u.Mul(0, 0xdeadbeef)
	if lo != 0 || hi != 0 {
		t.Fatalf("masked fault changed output: %#x:%#x", hi, lo)
	}
}

func TestFaultActivationRate(t *testing.T) {
	// Random stuck-at faults in the multiplier must be activated by some
	// random inputs but not all (logical masking exists).
	rng := rand.New(rand.NewPCG(45, 46))
	n := IntMul64Netlist()
	detected, total := 0, 0
	for f := 0; f < 20; f++ {
		fault := &StuckAt{Gate: rng.IntN(n.NumGates()), Value: rng.IntN(2) == 1}
		uf := NewIntMulUnit(fault)
		ug := NewIntMulUnit(nil)
		for i := 0; i < 20; i++ {
			a, b := rng.Uint64(), rng.Uint64()
			flo, fhi := uf.Mul(a, b)
			glo, ghi := ug.Mul(a, b)
			total++
			if flo != glo || fhi != ghi {
				detected++
			}
		}
	}
	if detected == 0 {
		t.Fatal("no random fault was ever activated")
	}
	if detected == total {
		t.Fatal("every fault detected by every input: masking is not happening")
	}
	t.Logf("fault activation: %d/%d faulty evaluations diverged", detected, total)
}

func TestParallelLanesMatchScalar(t *testing.T) {
	// 64 operand pairs evaluated in one bit-parallel pass must equal 64
	// scalar evaluations.
	n := NewIntAdder(16)
	e := NewEval(n)
	rng := rand.New(rand.NewPCG(47, 48))
	in := make([]uint64, n.NumIn)
	out := make([]uint64, len(n.Outputs))
	var as, bs [64]uint64
	aBus := make(Bus, 16)
	bBus := make(Bus, 16)
	// Reconstruct the input buses from gate order (inputs are first).
	for i := 0; i < 16; i++ {
		aBus[i] = i
		bBus[i] = 16 + i
	}
	for lane := uint(0); lane < 64; lane++ {
		as[lane] = uint64(rng.Uint32() & 0xffff)
		bs[lane] = uint64(rng.Uint32() & 0xffff)
		n.SetBusLane(in, aBus, as[lane], lane)
		n.SetBusLane(in, bBus, bs[lane], lane)
	}
	e.Run(in, out, nil)
	for lane := uint(0); lane < 64; lane++ {
		got := GetLane(out, 0, 16, lane)
		want := (as[lane] + bs[lane]) & 0xffff
		if got != want {
			t.Fatalf("lane %d: %d + %d = %d, want %d", lane, as[lane], bs[lane], got, want)
		}
	}
}

func TestLeadingZerosCircuit(t *testing.T) {
	b := NewBuilder("lzc-test")
	x := b.InputBus(16)
	b.OutputBus(b.LeadingZeros(x))
	n := b.Build()
	e := NewEval(n)
	in := make([]uint64, n.NumIn)
	out := make([]uint64, len(n.Outputs))
	for v := 0; v < 1<<16; v += 7 {
		n.SetBusScalar(in, x, uint64(v))
		e.Run(in, out, nil)
		got := GetScalar(out, 0, len(n.Outputs))
		want := uint64(bits.LeadingZeros16(uint16(v)))
		if got != want {
			t.Fatalf("lzc(%#x) = %d, want %d", v, got, want)
		}
	}
}

func TestBarrelShifters(t *testing.T) {
	b := NewBuilder("shift-test")
	x := b.InputBus(32)
	sh := b.InputBus(6)
	b.OutputBus(b.ShiftRightBus(x, sh, b.Const(false)))
	b.OutputBus(b.ShiftLeftBus(x, sh, b.Const(false)))
	n := b.Build()
	e := NewEval(n)
	in := make([]uint64, n.NumIn)
	out := make([]uint64, len(n.Outputs))
	rng := rand.New(rand.NewPCG(49, 50))
	for i := 0; i < 3000; i++ {
		v := uint64(rng.Uint32())
		amt := uint64(rng.IntN(40))
		n.SetBusScalar(in, x, v)
		n.SetBusScalar(in, sh, amt)
		e.Run(in, out, nil)
		gotR := GetScalar(out, 0, 32)
		gotL := GetScalar(out, 32, 32)
		wantR := v >> amt
		wantL := v << amt & 0xffffffff
		if amt >= 64 {
			wantR, wantL = 0, 0
		}
		if gotR != wantR || gotL != wantL {
			t.Fatalf("shift(%#x, %d): right %#x want %#x, left %#x want %#x",
				v, amt, gotR, wantR, gotL, wantL)
		}
	}
}

func TestSubBusAndNeg(t *testing.T) {
	b := NewBuilder("sub-test")
	x := b.InputBus(16)
	y := b.InputBus(16)
	diff, noBorrow := b.SubBus(x, y)
	b.OutputBus(diff)
	b.Output(noBorrow)
	b.OutputBus(b.NegBus(x))
	n := b.Build()
	e := NewEval(n)
	in := make([]uint64, n.NumIn)
	out := make([]uint64, len(n.Outputs))
	rng := rand.New(rand.NewPCG(51, 52))
	for i := 0; i < 3000; i++ {
		a := uint64(rng.Uint32() & 0xffff)
		c := uint64(rng.Uint32() & 0xffff)
		n.SetBusScalar(in, x, a)
		n.SetBusScalar(in, y, c)
		e.Run(in, out, nil)
		if got := GetScalar(out, 0, 16); got != (a-c)&0xffff {
			t.Fatalf("sub(%d,%d) = %d", a, c, got)
		}
		if got := GetScalar(out, 16, 1); (got == 1) != (a >= c) {
			t.Fatalf("sub(%d,%d) borrow wrong", a, c)
		}
		if got := GetScalar(out, 17, 16); got != (-a)&0xffff {
			t.Fatalf("neg(%d) = %d", a, got)
		}
	}
}

func TestNetlistGateCounts(t *testing.T) {
	t.Logf("int adder 64:  %6d gates", IntAdder64Netlist().NumGates())
	t.Logf("int mul 64x64: %6d gates", IntMul64Netlist().NumGates())
	t.Logf("fp add 64:     %6d gates", FPAdd64Netlist().NumGates())
	t.Logf("fp mul 64:     %6d gates", FPMul64Netlist().NumGates())
	if IntMul64Netlist().NumGates() < 20000 {
		t.Error("64x64 array multiplier suspiciously small")
	}
	if FPAdd64Netlist().NumGates() < 3000 {
		t.Error("FP adder suspiciously small")
	}
}

func randNormal64(rng *rand.Rand) float64 {
	for {
		f := math.Float64frombits(rng.Uint64()>>2 | 0x3ff0000000000000)
		f = (f - 1.5) * math.Ldexp(1, rng.IntN(40)-20)
		if f != 0 && !math.IsInf(f, 0) && !math.IsNaN(f) && math.Abs(f) > 1e-300 {
			return f
		}
	}
}

func randUnit(rng *rand.Rand) float64 { return rng.Float64()*2 - 1 }

func BenchmarkGateEvalAdder64(b *testing.B) {
	u := NewIntAdderUnit(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Add(uint64(i)*0x9e3779b9, uint64(i)*0x85ebca6b, false)
	}
}

func BenchmarkGateEvalMul64(b *testing.B) {
	u := NewIntMulUnit(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Mul(uint64(i)*0x9e3779b9, uint64(i)*0x85ebca6b)
	}
}

func BenchmarkGateEvalScalarVsParallel(b *testing.B) {
	// Ablation for DESIGN.md decision 2: 64 patterns per pass via lanes
	// versus 64 scalar passes.
	n := IntAdder64Netlist()
	aBus := make(Bus, 64)
	bBus := make(Bus, 64)
	for i := 0; i < 64; i++ {
		aBus[i] = i
		bBus[i] = 64 + i
	}
	b.Run("scalar-64x", func(b *testing.B) {
		u := NewIntAdderUnit(nil)
		for i := 0; i < b.N; i++ {
			for k := 0; k < 64; k++ {
				u.Add(uint64(i+k), uint64(i*k), false)
			}
		}
	})
	b.Run("parallel-1x", func(b *testing.B) {
		e := NewEval(n)
		in := make([]uint64, n.NumIn)
		out := make([]uint64, len(n.Outputs))
		for i := 0; i < b.N; i++ {
			for k := uint(0); k < 64; k++ {
				n.SetBusLane(in, aBus, uint64(i)+uint64(k), k)
				n.SetBusLane(in, bBus, uint64(i)*uint64(k), k)
			}
			e.Run(in, out, nil)
		}
	})
}
