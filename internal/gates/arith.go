package gates

// Structural arithmetic building blocks: ripple-carry adders, a
// carry-save array multiplier, barrel shifters, and a leading-zero
// counter. These compose into the integer and floating-point functional
// units the fault campaigns target.

// HalfAdder returns (sum, carry) of two bits.
func (b *Builder) HalfAdder(x, y int) (sum, carry int) {
	return b.Xor(x, y), b.And(x, y)
}

// FullAdder returns (sum, carry) of three bits.
func (b *Builder) FullAdder(x, y, cin int) (sum, carry int) {
	s1 := b.Xor(x, y)
	sum = b.Xor(s1, cin)
	carry = b.Or(b.And(x, y), b.And(s1, cin))
	return sum, carry
}

// NotBus inverts every bit of a bus.
func (b *Builder) NotBus(x Bus) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

// AddBus builds a ripple-carry adder over two equal-width buses with a
// carry-in wire. It returns the sum bus and the carry-out wire.
func (b *Builder) AddBus(x, y Bus, cin int) (Bus, int) {
	if len(x) != len(y) {
		panic("gates: AddBus width mismatch")
	}
	sum := make(Bus, len(x))
	c := cin
	for i := range x {
		sum[i], c = b.FullAdder(x[i], y[i], c)
	}
	return sum, c
}

// SubBus computes x - y via two's complement (x + ^y + 1). The returned
// carry-out is 1 when no borrow occurred (x >= y, unsigned).
func (b *Builder) SubBus(x, y Bus) (Bus, int) {
	return b.AddBus(x, b.NotBus(y), b.Const(true))
}

// NegBus computes the two's complement of x.
func (b *Builder) NegBus(x Bus) Bus {
	zero := make(Bus, len(x))
	for i := range zero {
		zero[i] = b.Const(false)
	}
	d, _ := b.SubBus(zero, x)
	return d
}

// MulArray builds a carry-save array multiplier: the product of an
// n-bit and an m-bit unsigned bus as an (n+m)-bit bus. This is the
// gate-level model of the integer multiplier (paper §III-B2, structure
// (d)): one AND per partial-product bit plus a full-adder array.
func (b *Builder) MulArray(x, y Bus) Bus {
	n, m := len(x), len(y)
	res := make(Bus, n+m)
	for i := range res {
		res[i] = b.Const(false)
	}
	for i := 0; i < m; i++ {
		carry := b.Const(false)
		for j := 0; j < n; j++ {
			pp := b.And(x[j], y[i])
			res[i+j], carry = b.FullAdder(res[i+j], pp, carry)
		}
		// Position i+n is untouched by rows <= i, so the row's carry-out
		// lands there directly.
		res[i+n] = b.Buf(carry)
	}
	return res
}

// ShiftRightBus builds a logical right barrel shifter: out = x >> sh,
// with fill shifted in from the top. sh is interpreted as unsigned; a
// shift of len(x) or more yields all-fill.
func (b *Builder) ShiftRightBus(x Bus, sh Bus, fill int) Bus {
	cur := x
	for k := range sh {
		amt := 1 << uint(k)
		shifted := make(Bus, len(cur))
		for i := range cur {
			if i+amt < len(cur) {
				shifted[i] = cur[i+amt]
			} else {
				shifted[i] = fill
			}
		}
		cur = b.MuxBus(sh[k], shifted, cur)
	}
	return cur
}

// ShiftLeftBus builds a logical left barrel shifter.
func (b *Builder) ShiftLeftBus(x Bus, sh Bus, fill int) Bus {
	cur := x
	for k := range sh {
		amt := 1 << uint(k)
		shifted := make(Bus, len(cur))
		for i := range cur {
			if i-amt >= 0 {
				shifted[i] = cur[i-amt]
			} else {
				shifted[i] = fill
			}
		}
		cur = b.MuxBus(sh[k], shifted, cur)
	}
	return cur
}

// OrTree reduces a set of wires with a balanced OR tree.
func (b *Builder) OrTree(ws []int) int {
	if len(ws) == 0 {
		return b.Const(false)
	}
	for len(ws) > 1 {
		var next []int
		for i := 0; i+1 < len(ws); i += 2 {
			next = append(next, b.Or(ws[i], ws[i+1]))
		}
		if len(ws)%2 == 1 {
			next = append(next, ws[len(ws)-1])
		}
		ws = next
	}
	return ws[0]
}

// IsZero returns a wire that is 1 iff every bit of x is 0.
func (b *Builder) IsZero(x Bus) int {
	return b.Not(b.OrTree(x))
}

// clog2 returns the number of bits needed to represent values 0..n.
func clog2(n int) int {
	w := 0
	for 1<<uint(w) <= n {
		w++
	}
	return w
}

// LeadingZeros builds a leading-zero counter over x (MSB = x[len-1]).
// The result bus has clog2(len(x)) bits and saturates at len(x) when x
// is all zeros.
func (b *Builder) LeadingZeros(x Bus) Bus {
	w := len(x)
	cw := clog2(w)
	// ch[k] = the top k+1 bits are all zero.
	// p[k]  = first 1 is at distance k from the top.
	p := make([]int, w)
	ch := b.Not(x[w-1])
	p[0] = b.Buf(x[w-1])
	for k := 1; k < w; k++ {
		p[k] = b.And(ch, x[w-1-k])
		ch = b.And(ch, b.Not(x[w-1-k]))
	}
	allZero := ch
	count := make(Bus, cw)
	for j := 0; j < cw; j++ {
		var terms []int
		for k := 0; k < w; k++ {
			if k>>uint(j)&1 != 0 {
				terms = append(terms, p[k])
			}
		}
		enc := b.OrTree(terms)
		if w>>uint(j)&1 != 0 {
			// When all-zero, the count is w.
			count[j] = b.Or(enc, allZero)
		} else {
			count[j] = b.Buf(enc)
		}
	}
	return count
}
