package gates

import (
	"math"
	"sync"
)

// Cached netlists. Building the 64x64 multiplier array costs a few
// milliseconds; campaigns share one immutable netlist and create
// per-goroutine Eval contexts.
var (
	intAdderOnce sync.Once
	intAdderNet  *Netlist
	intMulOnce   sync.Once
	intMulNet    *Netlist
	fpAdd64Once  sync.Once
	fpAdd64Net   *Netlist
	fpMul64Once  sync.Once
	fpMul64Net   *Netlist
	fpAdd32Once  sync.Once
	fpAdd32Net   *Netlist
	fpMul32Once  sync.Once
	fpMul32Net   *Netlist
)

// IntAdder64Netlist returns the shared 64-bit integer adder netlist.
func IntAdder64Netlist() *Netlist {
	intAdderOnce.Do(func() { intAdderNet = NewIntAdder(64) })
	return intAdderNet
}

// IntMul64Netlist returns the shared 64x64 multiplier netlist.
func IntMul64Netlist() *Netlist {
	intMulOnce.Do(func() { intMulNet = NewIntMultiplier(64) })
	return intMulNet
}

// FPAdd64Netlist returns the shared double-precision adder netlist.
func FPAdd64Netlist() *Netlist {
	fpAdd64Once.Do(func() { fpAdd64Net = NewFPAdder(11, 52) })
	return fpAdd64Net
}

// FPMul64Netlist returns the shared double-precision multiplier netlist.
func FPMul64Netlist() *Netlist {
	fpMul64Once.Do(func() { fpMul64Net = NewFPMultiplier(11, 52) })
	return fpMul64Net
}

// FPAdd32Netlist returns the shared single-precision adder netlist.
func FPAdd32Netlist() *Netlist {
	fpAdd32Once.Do(func() { fpAdd32Net = NewFPAdder(8, 23) })
	return fpAdd32Net
}

// FPMul32Netlist returns the shared single-precision multiplier netlist.
func FPMul32Netlist() *Netlist {
	fpMul32Once.Do(func() { fpMul32Net = NewFPMultiplier(8, 23) })
	return fpMul32Net
}

// IntAdderUnit evaluates the gate-level 64-bit adder, optionally with a
// stuck-at fault. Not safe for concurrent use; create one per goroutine.
type IntAdderUnit struct {
	net   *Netlist
	eval  *Eval
	in    []uint64
	out   []uint64
	Fault *StuckAt
}

// NewIntAdderUnit creates an adder evaluation unit.
func NewIntAdderUnit(fault *StuckAt) *IntAdderUnit {
	n := IntAdder64Netlist()
	return &IntAdderUnit{net: n, eval: NewEval(n), in: make([]uint64, n.NumIn), out: make([]uint64, len(n.Outputs)), Fault: fault}
}

// aBus/bBus input ordinals are positional: a = inputs 0..63, b = 64..127,
// cin = 128. Outputs: sum = 0..63, cout = 64.

// Add computes a + b + cin through the netlist.
func (u *IntAdderUnit) Add(a, b uint64, cin bool) uint64 {
	for i := 0; i < 64; i++ {
		u.in[i] = broadcast(a >> uint(i) & 1)
		u.in[64+i] = broadcast(b >> uint(i) & 1)
	}
	u.in[128] = broadcast(b2u(cin))
	u.eval.Run(u.in, u.out, u.Fault)
	return GetScalar(u.out, 0, 64)
}

// IntMulUnit evaluates the gate-level 64x64 multiplier.
type IntMulUnit struct {
	net   *Netlist
	eval  *Eval
	in    []uint64
	out   []uint64
	Fault *StuckAt
}

// NewIntMulUnit creates a multiplier evaluation unit.
func NewIntMulUnit(fault *StuckAt) *IntMulUnit {
	n := IntMul64Netlist()
	return &IntMulUnit{net: n, eval: NewEval(n), in: make([]uint64, n.NumIn), out: make([]uint64, len(n.Outputs)), Fault: fault}
}

// Mul computes the full 128-bit unsigned product.
func (u *IntMulUnit) Mul(a, b uint64) (lo, hi uint64) {
	for i := 0; i < 64; i++ {
		u.in[i] = broadcast(a >> uint(i) & 1)
		u.in[64+i] = broadcast(b >> uint(i) & 1)
	}
	u.eval.Run(u.in, u.out, u.Fault)
	return GetScalar(u.out, 0, 64), GetScalar(u.out, 64, 64)
}

// FPUnit evaluates a gate-level FP adder or multiplier for one format.
type FPUnit struct {
	net      *Netlist
	eval     *Eval
	in       []uint64
	out      []uint64
	expBits  int
	mantBits int
	isAdder  bool
	Fault    *StuckAt
}

func newFPUnit(n *Netlist, expBits, mantBits int, isAdder bool, fault *StuckAt) *FPUnit {
	return &FPUnit{
		net: n, eval: NewEval(n),
		in: make([]uint64, n.NumIn), out: make([]uint64, len(n.Outputs)),
		expBits: expBits, mantBits: mantBits, isAdder: isAdder, Fault: fault,
	}
}

// NewFPAdd64Unit returns a double-precision adder unit.
func NewFPAdd64Unit(fault *StuckAt) *FPUnit { return newFPUnit(FPAdd64Netlist(), 11, 52, true, fault) }

// NewFPMul64Unit returns a double-precision multiplier unit.
func NewFPMul64Unit(fault *StuckAt) *FPUnit { return newFPUnit(FPMul64Netlist(), 11, 52, false, fault) }

// NewFPAdd32Unit returns a single-precision adder unit.
func NewFPAdd32Unit(fault *StuckAt) *FPUnit { return newFPUnit(FPAdd32Netlist(), 8, 23, true, fault) }

// NewFPMul32Unit returns a single-precision multiplier unit.
func NewFPMul32Unit(fault *StuckAt) *FPUnit { return newFPUnit(FPMul32Netlist(), 8, 23, false, fault) }

// special reports whether an operand's exponent field is all-zeros
// (zero/subnormal) or all-ones (Inf/NaN). Such operands bypass the
// netlist: the corner-case hardware is not modelled, and the bypass
// decision depends only on the inputs, so golden and faulty runs take
// identical paths.
func (u *FPUnit) special(bits uint64) bool {
	exp := bits >> uint(u.mantBits) & (1<<uint(u.expBits) - 1)
	return exp == 0 || exp == 1<<uint(u.expBits)-1
}

// Op64 applies the unit to two double bit patterns.
func (u *FPUnit) Op64(a, b uint64) uint64 {
	if u.special(a) || u.special(b) {
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		if u.isAdder {
			return math.Float64bits(fa + fb)
		}
		return math.Float64bits(fa * fb)
	}
	return u.run(a, b, 64)
}

// Op32 applies the unit to two single bit patterns.
func (u *FPUnit) Op32(a, b uint32) uint32 {
	if u.special(uint64(a)) || u.special(uint64(b)) {
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		if u.isAdder {
			return math.Float32bits(fa + fb)
		}
		return math.Float32bits(fa * fb)
	}
	return uint32(u.run(uint64(a), uint64(b), 32))
}

func (u *FPUnit) run(a, b uint64, total int) uint64 {
	for i := 0; i < total; i++ {
		u.in[i] = broadcast(a >> uint(i) & 1)
		u.in[total+i] = broadcast(b >> uint(i) & 1)
	}
	u.eval.Run(u.in, u.out, u.Fault)
	return GetScalar(u.out, 0, total)
}

func broadcast(bit uint64) uint64 {
	if bit != 0 {
		return ^uint64(0)
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
