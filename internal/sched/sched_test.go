package sched

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestBanditDeterministic: identical seeds and reward sequences produce
// identical selection trajectories.
func TestBanditDeterministic(t *testing.T) {
	run := func() []int {
		rng := rand.New(rand.NewPCG(42, 99))
		b := NewBandit(5, Config{})
		var picks []int
		for i := 0; i < 500; i++ {
			a := b.Select(rng)
			picks = append(picks, a)
			// Arm-dependent deterministic reward.
			r := 0.0
			if a == 2 || (a == 4 && i%3 == 0) {
				r = 1.0
			}
			b.Update(a, r)
		}
		return picks
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("bandit selection trajectory not deterministic under fixed seed")
	}
}

// TestBanditConverges: with one clearly best arm, UCB1 pulls it most.
func TestBanditConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	b := NewBandit(4, Config{})
	for i := 0; i < 2000; i++ {
		a := b.Select(rng)
		r := 0.0
		if a == 3 {
			r = 1.0
		}
		b.Update(a, r)
	}
	for i := 0; i < 3; i++ {
		if b.Pulls(3) <= b.Pulls(i) {
			t.Fatalf("best arm pulled %d times, arm %d pulled %d", b.Pulls(3), i, b.Pulls(i))
		}
	}
}

// TestBanditStarvationFloor: under adversarial rewards (one arm always
// wins), the ε-exploration floor still gives every other arm at least
// a non-trivial share of pulls — no operator is permanently abandoned.
func TestBanditStarvationFloor(t *testing.T) {
	const n, steps = 5, 10000
	rng := rand.New(rand.NewPCG(1, 2))
	b := NewBandit(n, Config{Explore: 0.1})
	for i := 0; i < steps; i++ {
		a := b.Select(rng)
		r := 0.0
		if a == 0 {
			r = 1.0
		}
		b.Update(a, r)
	}
	// Expected floor per non-best arm: steps * ε/n = 200 pulls. Allow a
	// wide margin for the deterministic-but-arbitrary PCG stream.
	floor := uint64(steps) / (n * 10) / 4 // 50
	for i := 1; i < n; i++ {
		if b.Pulls(i) < floor {
			t.Fatalf("arm %d starved: %d pulls < floor %d", i, b.Pulls(i), floor)
		}
	}
}

// TestBanditStateRoundTrip: State/Restore preserves the exact selection
// behavior — a restored bandit continues the same trajectory as the
// original under a shared RNG stream.
func TestBanditStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	b := NewBandit(4, Config{})
	for i := 0; i < 300; i++ {
		a := b.Select(rng)
		b.Update(a, float64(a%2))
	}
	st := b.State()

	b2 := NewBandit(4, Config{})
	if err := b2.Restore(st); err != nil {
		t.Fatal(err)
	}
	r1 := rand.New(rand.NewPCG(9, 9))
	r2 := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 300; i++ {
		a1, a2 := b.Select(r1), b2.Select(r2)
		if a1 != a2 {
			t.Fatalf("step %d: original picked %d, restored picked %d", i, a1, a2)
		}
		b.Update(a1, float64(i%3))
		b2.Update(a2, float64(i%3))
	}

	if err := b2.Restore(State{Pulls: []uint64{1}, Rewards: []float64{1}}); err == nil {
		t.Fatal("Restore accepted a state with the wrong arm count")
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 0}, true},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 0}, []float64{0, 1}, false}, // incomparable
		{[]float64{0, 0}, []float64{1, 0}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRank(t *testing.T) {
	vecs := [][]float64{
		{1, 5}, // front 0 (boundary)
		{5, 1}, // front 0 (boundary)
		{3, 3}, // front 0
		{1, 1}, // dominated by {3,3}: front 1
		{0, 0}, // dominated by {1,1}: front 2
	}
	rank, crowd := Rank(vecs)
	want := []int{0, 0, 0, 1, 2}
	if !reflect.DeepEqual(rank, want) {
		t.Fatalf("rank = %v, want %v", rank, want)
	}
	if !math.IsInf(crowd[0], 1) || !math.IsInf(crowd[1], 1) {
		t.Fatalf("boundary points must have +Inf crowding, got %v %v", crowd[0], crowd[1])
	}
	if math.IsInf(crowd[2], 1) {
		t.Fatalf("interior point must have finite crowding, got %v", crowd[2])
	}
}

// nonDominated verifies the archive invariant: no entry dominates (or
// equals) another.
func nonDominated(t *testing.T, a *Archive) {
	t.Helper()
	es := a.Entries()
	for i := range es {
		for j := range es {
			if i == j {
				continue
			}
			if Dominates(es[i].Vector, es[j].Vector) {
				t.Fatalf("archive not mutually non-dominated: %v dominates %v", es[i], es[j])
			}
			if vectorEqual(es[i].Vector, es[j].Vector) {
				t.Fatalf("archive holds duplicate vectors: %v and %v", es[i], es[j])
			}
		}
	}
}

func TestArchiveNonDominationInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	a := NewArchive(0)
	for k := uint64(0); k < 500; k++ {
		vec := []float64{
			math.Floor(rng.Float64() * 10),
			math.Floor(rng.Float64() * 10),
			math.Floor(rng.Float64() * 10),
		}
		a.Add(k, vec)
		if k%100 == 99 {
			nonDominated(t, a)
		}
	}
	nonDominated(t, a)
}

func TestArchiveDominanceEviction(t *testing.T) {
	a := NewArchive(0)
	if added, _ := a.Add(1, []float64{1, 1}); !added {
		t.Fatal("first entry rejected")
	}
	if added, _ := a.Add(2, []float64{0, 0}); added {
		t.Fatal("dominated offer admitted")
	}
	if added, _ := a.Add(3, []float64{1, 1}); added {
		t.Fatal("vector-equal offer admitted")
	}
	if added, _ := a.Add(1, []float64{5, 5}); added {
		t.Fatal("duplicate key admitted")
	}
	added, evicted := a.Add(4, []float64{2, 2})
	if !added || len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("dominating offer: added=%v evicted=%v, want admitted with [1] evicted", added, evicted)
	}
	if a.Len() != 1 {
		t.Fatalf("archive has %d entries, want 1", a.Len())
	}
}

func TestArchiveBound(t *testing.T) {
	a := NewArchive(3)
	// Mutually incomparable diagonal: x + y = 10.
	for k := uint64(0); k < 8; k++ {
		x := float64(k)
		added, evicted := a.Add(k, []float64{x, 10 - x})
		if !added {
			t.Fatalf("incomparable entry %d rejected", k)
		}
		if a.Len() > 3 {
			t.Fatalf("archive exceeded bound: %d entries", a.Len())
		}
		if a.Len() == 3 && k >= 3 && len(evicted) == 0 {
			t.Fatalf("entry %d: bound eviction did not report a victim", k)
		}
	}
	nonDominated(t, a)
	// Boundary (extreme) entries have +Inf crowding and survive
	// truncation: the min and max of the surviving keys must be the
	// diagonal extremes still seen.
	es := a.Entries()
	if es[0].Vector[0] != 0 {
		t.Fatalf("low-boundary entry evicted: surviving entries %v", es)
	}
	if es[len(es)-1].Vector[0] != 7 {
		t.Fatalf("high-boundary entry evicted: surviving entries %v", es)
	}
}

func TestScheduleSeedsGreedyCoverage(t *testing.T) {
	seeds := []SeedInfo{
		{Key: "a", Fitness: 0.9, Detected: []int{1, 2}},
		{Key: "b", Fitness: 0.5, Detected: []int{3, 4, 5}},
		{Key: "c", Fitness: 0.8, Detected: []int{1, 2, 3}},
		{Key: "d", Fitness: 0.7, Detected: []int{6}},
	}
	// Greedy marginal gain: c gains 3 (ties b's 3, but c's higher
	// fitness puts it first in the base order and strict > keeps it);
	// then b adds {4,5}, then d adds {6}; a gains nothing and fills
	// from the fitness order.
	got := ScheduleSeeds(seeds, 0)
	want := []int{2, 1, 3, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ScheduleSeeds = %v, want %v", got, want)
	}
}

func TestScheduleSeedsFitnessFallback(t *testing.T) {
	// Unranked seeds (no Detected vectors) fall back to pure
	// (fitness desc, key asc) ordering.
	seeds := []SeedInfo{
		{Key: "x", Fitness: 0.2},
		{Key: "y", Fitness: 0.9},
		{Key: "a", Fitness: 0.2},
	}
	got := ScheduleSeeds(seeds, 0)
	want := []int{1, 2, 0} // y, then a before x on key
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ScheduleSeeds = %v, want %v", got, want)
	}
	if got := ScheduleSeeds(seeds, 2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("ScheduleSeeds(k=2) = %v, want [1 2]", got)
	}
}

// TestScheduleSeedsMixedRanked: coverage-bearing seeds are scheduled
// before unranked ones even when the unranked have higher fitness.
func TestScheduleSeedsMixedRanked(t *testing.T) {
	seeds := []SeedInfo{
		{Key: "unranked", Fitness: 0.99},
		{Key: "ranked", Fitness: 0.1, Detected: []int{7}},
	}
	got := ScheduleSeeds(seeds, 0)
	want := []int{1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ScheduleSeeds = %v, want %v", got, want)
	}
}
