package sched

import "sort"

// SeedInfo describes one corpus candidate for warm-start scheduling.
type SeedInfo struct {
	// Key is a stable identity (corpus content hash) used as the final
	// deterministic tie-break.
	Key     string
	Fitness float64
	// Detected lists the injection indices this seed's SFI campaign
	// detected (corpus Meta.Detected). Nil/empty means unranked: the
	// seed carries no coverage measurement and competes by fitness only.
	Detected []int
}

// ScheduleSeeds orders candidates by marginal detected-fault coverage:
// greedy set cover, where each pick maximizes the number of injection
// indices not covered by earlier picks (ties: higher fitness, then
// lower key). Once no candidate adds new coverage, remaining slots fill
// in (fitness desc, key asc) order, so unranked seeds still warm-start
// behind the coverage-bearing ones. Returns indices into seeds, at most
// k of them (k <= 0 means all).
func ScheduleSeeds(seeds []SeedInfo, k int) []int {
	if k <= 0 || k > len(seeds) {
		k = len(seeds)
	}
	order := make([]int, len(seeds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := seeds[order[a]], seeds[order[b]]
		if sa.Fitness != sb.Fitness {
			return sa.Fitness > sb.Fitness
		}
		return sa.Key < sb.Key
	})

	picked := make([]int, 0, k)
	used := make([]bool, len(seeds))
	covered := make(map[int]struct{})
	for len(picked) < k {
		bestPos, bestGain := -1, 0
		for pos, idx := range order {
			if used[pos] {
				continue
			}
			gain := 0
			for _, f := range seeds[idx].Detected {
				if _, ok := covered[f]; !ok {
					gain++
				}
			}
			// Strict > keeps the first (highest-fitness, lowest-key)
			// candidate among equal gains.
			if gain > bestGain {
				bestPos, bestGain = pos, gain
			}
		}
		if bestPos < 0 {
			break // no candidate adds coverage: fall through to fitness order
		}
		used[bestPos] = true
		picked = append(picked, order[bestPos])
		for _, f := range seeds[order[bestPos]].Detected {
			covered[f] = struct{}{}
		}
	}
	for pos, idx := range order {
		if len(picked) >= k {
			break
		}
		if !used[pos] {
			used[pos] = true
			picked = append(picked, idx)
		}
	}
	return picked
}
