// NSGA-II style non-dominated sorting, crowding distance and a bounded
// global Pareto archive. All orderings are deterministic: fronts are
// filled in input order, crowding ties break by key, evictions pick the
// (lowest crowding, highest key) entry.
package sched

import (
	"math"
	"sort"
)

// Dominates reports whether a Pareto-dominates b: a is no worse in
// every objective and strictly better in at least one. Objectives are
// maximized.
func Dominates(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			better = true
		}
	}
	return better
}

// Rank computes each vector's non-dominated front index (0 = the
// Pareto-optimal front) and its crowding distance within that front.
// O(n²·m) dominance counting — exact and plenty for GA population
// sizes.
func Rank(vecs [][]float64) (rank []int, crowd []float64) {
	n := len(vecs)
	rank = make([]int, n)
	dominatedBy := make([]int, n) // how many vectors dominate i
	dominates := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case Dominates(vecs[i], vecs[j]):
				dominates[i] = append(dominates[i], j)
				dominatedBy[j]++
			case Dominates(vecs[j], vecs[i]):
				dominates[j] = append(dominates[j], i)
				dominatedBy[i]++
			}
		}
	}
	var front []int
	for i := 0; i < n; i++ {
		if dominatedBy[i] == 0 {
			rank[i] = 0
			front = append(front, i)
		}
	}
	for r := 0; len(front) > 0; r++ {
		var next []int
		for _, i := range front {
			for _, j := range dominates[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					rank[j] = r + 1
					next = append(next, j)
				}
			}
		}
		front = next
	}

	crowd = make([]float64, n)
	byFront := make(map[int][]int)
	for i, r := range rank {
		byFront[r] = append(byFront[r], i)
	}
	for _, members := range byFront {
		crowdingInto(vecs, members, crowd)
	}
	return rank, crowd
}

// crowdingInto writes the NSGA-II crowding distance of each member
// (indices into vecs) into out. Boundary points per objective get +Inf
// so extremes are always preserved under crowding-based truncation.
func crowdingInto(vecs [][]float64, members []int, out []float64) {
	if len(members) == 0 {
		return
	}
	m := len(vecs[members[0]])
	for obj := 0; obj < m; obj++ {
		order := append([]int(nil), members...)
		sort.SliceStable(order, func(a, b int) bool {
			return vecs[order[a]][obj] < vecs[order[b]][obj]
		})
		lo, hi := vecs[order[0]][obj], vecs[order[len(order)-1]][obj]
		out[order[0]] = math.Inf(1)
		out[order[len(order)-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < len(order)-1; k++ {
			if math.IsInf(out[order[k]], 1) {
				continue
			}
			out[order[k]] += (vecs[order[k+1]][obj] - vecs[order[k-1]][obj]) / (hi - lo)
		}
	}
}

// ArchiveEntry is one member of the global non-dominated set. Key is
// the member's stable identity (genotype hash) used for dedup and
// deterministic tie-breaks.
type ArchiveEntry struct {
	Key    uint64
	Vector []float64
}

// Archive maintains a bounded, mutually non-dominated set of objective
// vectors — the cross-generation Pareto front the refinement loop
// exports to the corpus. Insertion is deterministic; when the bound is
// exceeded the entry with the lowest crowding distance (ties: highest
// key) is evicted, preserving objective-space spread.
type Archive struct {
	bound   int
	entries []ArchiveEntry
}

// NewArchive returns an archive keeping at most bound entries
// (bound <= 0 means unbounded).
func NewArchive(bound int) *Archive {
	return &Archive{bound: bound}
}

// Len returns the current entry count.
func (a *Archive) Len() int { return len(a.entries) }

// Entries returns the archive contents sorted by key (a copy).
func (a *Archive) Entries() []ArchiveEntry {
	out := append([]ArchiveEntry(nil), a.entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Add offers one vector to the archive. It returns whether the entry
// was admitted and the keys evicted to make room (dominated members
// and, past the bound, the most crowded one). Duplicate keys and
// dominated offers are rejected.
func (a *Archive) Add(key uint64, vec []float64) (added bool, evicted []uint64) {
	for _, e := range a.entries {
		if e.Key == key {
			return false, nil
		}
		if Dominates(e.Vector, vec) || vectorEqual(e.Vector, vec) {
			return false, nil
		}
	}
	kept := a.entries[:0]
	for _, e := range a.entries {
		if Dominates(vec, e.Vector) {
			evicted = append(evicted, e.Key)
			continue
		}
		kept = append(kept, e)
	}
	a.entries = append(kept, ArchiveEntry{Key: key, Vector: append([]float64(nil), vec...)})

	if a.bound > 0 && len(a.entries) > a.bound {
		vecs := make([][]float64, len(a.entries))
		for i, e := range a.entries {
			vecs[i] = e.Vector
		}
		crowd := make([]float64, len(a.entries))
		members := make([]int, len(a.entries))
		for i := range members {
			members[i] = i
		}
		crowdingInto(vecs, members, crowd)
		victim := 0
		for i := 1; i < len(a.entries); i++ {
			if crowd[i] < crowd[victim] ||
				(crowd[i] == crowd[victim] && a.entries[i].Key > a.entries[victim].Key) {
				victim = i
			}
		}
		evicted = append(evicted, a.entries[victim].Key)
		a.entries = append(a.entries[:victim], a.entries[victim+1:]...)
	}
	return true, evicted
}

func vectorEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
