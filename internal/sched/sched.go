// Package sched holds the adaptive-search machinery of the refinement
// loop: a UCB1 multi-armed bandit over the mutation-operator portfolio
// (HiFuzz-style adaptive operator selection), NSGA-II non-dominated
// sorting plus a bounded Pareto archive for multi-structure search, and
// greedy marginal-coverage seed scheduling over corpus detected-fault
// vectors (the INSTILLER observation that seed order matters as much as
// mutation).
//
// Everything here is deterministic: the bandit draws randomness only
// from the caller-supplied *rand.Rand (the refinement loop's single PCG
// stream), tie-breaks resolve toward the lowest index or key, and the
// full bandit state round-trips through State/Restore so a resumed run
// replays bit-identically.
package sched

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Config tunes the bandit.
type Config struct {
	// Explore is the probability of a uniform exploration draw on every
	// selection (default 0.1). It is the starvation floor: every arm is
	// selected with probability at least Explore/NumArms at every step,
	// so no operator is ever permanently abandoned on early bad luck.
	Explore float64
	// UCBC scales the UCB1 confidence width (default 1.0).
	UCBC float64
}

// WithDefaults resolves zero fields to their defaults.
func (c Config) WithDefaults() Config {
	if c.Explore <= 0 {
		c.Explore = 0.1
	}
	if c.UCBC <= 0 {
		c.UCBC = 1.0
	}
	return c
}

// Bandit is a deterministic UCB1 multi-armed bandit with an
// ε-exploration floor. Select consumes randomness only from the
// caller's generator, and the mutable state is exactly what
// State/Restore carry, so checkpointed runs resume bit-identically.
type Bandit struct {
	cfg   Config
	pulls []uint64
	sums  []float64
	total uint64
}

// NewBandit returns a bandit over n arms.
func NewBandit(n int, cfg Config) *Bandit {
	if n <= 0 {
		panic("sched: bandit needs at least one arm")
	}
	return &Bandit{
		cfg:   cfg.WithDefaults(),
		pulls: make([]uint64, n),
		sums:  make([]float64, n),
	}
}

// NumArms returns the arm count.
func (b *Bandit) NumArms() int { return len(b.pulls) }

// Pulls returns how often arm i has been updated.
func (b *Bandit) Pulls(i int) uint64 { return b.pulls[i] }

// Mean returns arm i's empirical mean reward (0 before any pull).
func (b *Bandit) Mean(i int) float64 {
	if b.pulls[i] == 0 {
		return 0
	}
	return b.sums[i] / float64(b.pulls[i])
}

// Select picks the next arm. It always consumes exactly one Float64
// draw, plus one IntN draw when that lands in the exploration band —
// a fixed consumption pattern per branch, so trajectories are
// reproducible from the RNG state alone. Outside the exploration band
// untried arms go first (lowest index), then the UCB1 argmax with
// lowest-index tie-break.
func (b *Bandit) Select(rng *rand.Rand) int {
	if rng.Float64() < b.cfg.Explore {
		return rng.IntN(len(b.pulls))
	}
	for i, p := range b.pulls {
		if p == 0 {
			return i
		}
	}
	best, bestScore := 0, math.Inf(-1)
	lt := math.Log(float64(b.total))
	for i := range b.pulls {
		score := b.sums[i]/float64(b.pulls[i]) +
			b.cfg.UCBC*math.Sqrt(2*lt/float64(b.pulls[i]))
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Update feeds the reward observed for one pull of arm i.
func (b *Bandit) Update(i int, reward float64) {
	b.pulls[i]++
	b.sums[i] += reward
	b.total++
}

// State is the bandit's full mutable state, for checkpoints.
type State struct {
	Pulls   []uint64
	Rewards []float64
}

// State snapshots the bandit (copies, safe to retain).
func (b *Bandit) State() State {
	return State{
		Pulls:   append([]uint64(nil), b.pulls...),
		Rewards: append([]float64(nil), b.sums...),
	}
}

// Restore replaces the bandit's state with a snapshot taken from a
// bandit with the same arm count.
func (b *Bandit) Restore(s State) error {
	if len(s.Pulls) != len(b.pulls) || len(s.Rewards) != len(b.pulls) {
		return fmt.Errorf("sched: bandit state has %d/%d arms, want %d",
			len(s.Pulls), len(s.Rewards), len(b.pulls))
	}
	copy(b.pulls, s.Pulls)
	copy(b.sums, s.Rewards)
	b.total = 0
	for _, p := range b.pulls {
		b.total += p
	}
	return nil
}
