package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("queue.jobs.submitted").Add(3)
	r.Gauge("corpus.archive.size").Set(17.5)
	h := r.Histogram("queue.shard.ns")
	h.Observe(1) // bucket le="1"
	h.Observe(5) // bucket le="7"
	h.Observe(6) // bucket le="7"

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE harpo_queue_jobs_submitted counter\n",
		"harpo_queue_jobs_submitted 3\n",
		"# TYPE harpo_corpus_archive_size gauge\n",
		"harpo_corpus_archive_size 17.5\n",
		"# TYPE harpo_queue_shard_ns histogram\n",
		"harpo_queue_shard_ns_bucket{le=\"1\"} 1\n",
		"harpo_queue_shard_ns_bucket{le=\"7\"} 3\n", // cumulative
		"harpo_queue_shard_ns_bucket{le=\"+Inf\"} 3\n",
		"harpo_queue_shard_ns_sum 12\n",
		"harpo_queue_shard_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	r.WritePrometheus(&b) // must not panic
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("queue.cache.hits").Inc()

	srv := httptest.NewServer(PromHandler(r))
	defer srv.Close()

	rec := httptest.NewRecorder()
	PromHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "harpo_queue_cache_hits 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	PromHandler(r).ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestPromNameSanitization(t *testing.T) {
	if got := promName("dist.worker.127.0.0.1:9090.ns"); got != "harpo_dist_worker_127_0_0_1_9090_ns" {
		t.Fatalf("promName = %q", got)
	}
}
