package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promPrefix namespaces every exported metric so a shared Prometheus
// server can scrape a mixed fleet without collisions.
const promPrefix = "harpo_"

// promName sanitizes a registry metric name into a Prometheus metric
// name: dots and every other non-[a-zA-Z0-9_] byte become underscores,
// and the harpo_ namespace prefix is prepended.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every counter, gauge and histogram in the
// Prometheus text exposition format (version 0.0.4), each metric
// prefixed with "harpo_". Counters export as counters, gauges as
// gauges, and histograms as native cumulative histograms: one
// `_bucket{le="..."}` series per non-empty power-of-two bucket (the
// registry's internal bucketing), plus the mandatory le="+Inf" bucket,
// `_sum` and `_count`. Metric names are emitted in sorted order so the
// exposition is deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range names(r.counters) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, r.counters[name].Load())
	}
	for _, name := range names(r.gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(w, "%s %g\n", pn, r.gauges[name].Load())
	}
	for _, name := range names(r.hists) {
		writePromHistogram(w, promName(name), r.hists[name])
	}
}

// writePromHistogram renders one histogram. Bucket i of the registry's
// power-of-two scheme counts observations with bit length i, i.e.
// values <= 2^i - 1, which is exactly a cumulative upper bound once the
// per-bucket counts are summed left to right.
func writePromHistogram(w io.Writer, pn string, h *Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, upperBound(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())
	fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", pn, h.Count())
}

// upperBound is bucket i's inclusive upper bound (2^i - 1, saturating).
func upperBound(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(i) - 1
}

// PromHandler serves the registry in Prometheus text format — mount it
// at GET /metrics on the same listener as a coordinator or worker. A
// nil registry serves an empty (but valid) exposition.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
