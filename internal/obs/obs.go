// Package obs is the zero-dependency observability layer of the
// Harpocrates reproduction: a metrics registry (counters, gauges and
// histograms with atomic hot paths), a structured JSONL event log with
// run/iteration/campaign spans (trace.go), and wall-clock phase timers.
//
// Everything is nil-safe: a nil *Observer, *Registry, *Tracer, *Span,
// *Counter, *Gauge or *Histogram accepts every call as a no-op, so
// instrumented code needs no conditionals and pays only a nil check
// when observation is disabled. Instrumentation is purely
// observational — it never changes the trajectory of the loop or a
// campaign (the RNG streams are untouched).
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. Names ending in
// ".ns" or ".wall_ns" are rendered as durations by WriteSummary.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration accumulates d in nanoseconds.
func (c *Counter) AddDuration(d time.Duration) { c.Add(d.Nanoseconds()) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 holding the latest value of a measurement.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is one bucket per power of two of an int64 observation.
const histBuckets = 64

// Histogram aggregates int64 observations into power-of-two buckets
// (bucket i counts values whose bit length is i). It is lock-free on the
// observation path; quantiles are approximated by bucket upper bounds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	minP1   atomic.Int64 // min+1; 0 means no observation yet
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (clamped to [0, MaxInt64-1]).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if v == math.MaxInt64 {
		v--
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.minP1.Load()
		if old != 0 && old-1 <= v {
			break
		}
		if h.minP1.CompareAndSwap(old, v+1) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= v {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))%histBuckets].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile approximates the q-quantile (q in [0,1]) by the upper bound
// of the bucket holding the q-th observation.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return h.max.Load()
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// Registry is a concurrent-safe named collection of counters, gauges and
// histograms. Metrics are created on first use and live for the
// registry's lifetime; the per-metric hot paths are atomic and never
// touch the registry lock.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed (nil on a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// names returns the sorted keys of a metric map.
func names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// isDurationName reports whether a counter name denotes nanoseconds.
func isDurationName(name string) bool {
	return strings.HasSuffix(name, ".ns") || strings.HasSuffix(name, "_ns")
}

// WriteSummary renders the end-of-run metrics table: a per-component
// phase breakdown (wall-clock phase timers as a share of the measured
// total), then all counters, gauges and histograms in sorted order.
func (r *Registry) WriteSummary(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	r.writePhaseTables(w)

	if len(r.counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		for _, name := range names(r.counters) {
			v := r.counters[name].Load()
			if isDurationName(name) {
				fmt.Fprintf(w, "  %-40s %12v\n", name, time.Duration(v))
			} else {
				fmt.Fprintf(w, "  %-40s %12d\n", name, v)
			}
		}
	}
	if len(r.gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		for _, name := range names(r.gauges) {
			fmt.Fprintf(w, "  %-40s %12.4f\n", name, r.gauges[name].Load())
		}
	}
	if len(r.hists) > 0 {
		fmt.Fprintf(w, "histograms:            count         mean          p50          p90          max\n")
		for _, name := range names(r.hists) {
			h := r.hists[name]
			if isDurationName(name) {
				fmt.Fprintf(w, "  %-18s %9d %12v %12v %12v %12v\n", name, h.Count(),
					time.Duration(int64(h.Mean())), time.Duration(h.Quantile(0.5)),
					time.Duration(h.Quantile(0.9)), time.Duration(h.max.Load()))
			} else {
				fmt.Fprintf(w, "  %-18s %9d %12.1f %12d %12d %12d\n", name, h.Count(),
					h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.max.Load())
			}
		}
	}
}

// writePhaseTables groups counters named "<comp>.phase.<name>.wall_ns"
// into one table per component, each phase shown with its share of the
// component total ("<comp>.run.wall_ns" when recorded, else the phase
// sum). Caller holds r.mu.
func (r *Registry) writePhaseTables(w io.Writer) {
	type phase struct {
		name string
		ns   int64
	}
	comps := map[string][]phase{}
	for name, c := range r.counters {
		i := strings.Index(name, ".phase.")
		if i < 0 || !strings.HasSuffix(name, ".wall_ns") {
			continue
		}
		comp := name[:i]
		pname := strings.TrimSuffix(name[i+len(".phase."):], ".wall_ns")
		comps[comp] = append(comps[comp], phase{pname, c.Load()})
	}
	for _, comp := range names(comps) {
		ps := comps[comp]
		sort.Slice(ps, func(a, b int) bool { return ps[a].ns > ps[b].ns })
		var sum int64
		for _, p := range ps {
			sum += p.ns
		}
		total := sum
		if c, ok := r.counters[comp+".run.wall_ns"]; ok && c.Load() > 0 {
			total = c.Load()
		}
		fmt.Fprintf(w, "%s phases (wall clock, total %v):\n", comp, time.Duration(total))
		for _, p := range ps {
			fmt.Fprintf(w, "  %-24s %12v  %5.1f%%\n", p.name, time.Duration(p.ns),
				100*float64(p.ns)/float64(max(total, 1)))
		}
		fmt.Fprintf(w, "  %-24s %12v  %5.1f%% of wall clock accounted\n", "(sum)",
			time.Duration(sum), 100*float64(sum)/float64(max(total, 1)))
	}
}

// Observer bundles a metrics registry and a tracer; either may be nil.
// All methods are nil-safe, so a nil *Observer disables observation.
type Observer struct {
	reg *Registry
	tr  *Tracer
}

// New returns an observer over reg and tr, or nil when both are nil.
func New(reg *Registry, tr *Tracer) *Observer {
	if reg == nil && tr == nil {
		return nil
	}
	return &Observer{reg: reg, tr: tr}
}

// Enabled reports whether any observation sink is attached.
func (o *Observer) Enabled() bool { return o != nil && (o.reg != nil || o.tr != nil) }

// Registry returns the attached registry (nil-safe).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the attached tracer (nil-safe).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// Counter returns the named counter from the registry (nil-safe).
func (o *Observer) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge returns the named gauge from the registry (nil-safe).
func (o *Observer) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram returns the named histogram from the registry (nil-safe).
func (o *Observer) Histogram(name string) *Histogram { return o.Registry().Histogram(name) }

// Span starts a root trace span (nil-safe).
func (o *Observer) Span(name string, fields Fields) *Span { return o.Tracer().Span(name, fields) }

// Event emits a parentless point event (nil-safe).
func (o *Observer) Event(name string, fields Fields) { o.Tracer().Event(name, fields) }

// Phase starts a wall-clock phase timer; the returned stop function
// accumulates the elapsed time into the counter "<name>.wall_ns".
// Phases named "<comp>.phase.<p>" are grouped by WriteSummary into a
// per-component breakdown against "<comp>.run.wall_ns".
func (o *Observer) Phase(name string) func() {
	if o == nil || o.reg == nil {
		return func() {}
	}
	c := o.reg.Counter(name + ".wall_ns")
	start := time.Now()
	return func() { c.AddDuration(time.Since(start)) }
}
