package obs

import (
	"fmt"
	"io"
	"os"
)

// SetupCLI wires the standard observability command-line surface shared
// by the cmd/ binaries: a JSONL trace file ("" disables), an in-process
// metrics registry (off unless withMetrics), and a net/http/pprof server
// ("" disables). It returns the Observer to thread through the run (nil
// when everything is disabled — the zero-overhead path) and a finish
// function that closes the trace file, reports any deferred trace write
// error, and renders the metrics summary to w.
func SetupCLI(tracePath string, withMetrics bool, pprofAddr string) (*Observer, func(w io.Writer) error, error) {
	var (
		reg      *Registry
		tr       *Tracer
		f        *os.File
		stopProf func() error
	)
	if withMetrics {
		reg = NewRegistry()
	}
	if tracePath != "" {
		var err error
		f, err = os.Create(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: create trace file: %w", err)
		}
		tr = NewTracer(f)
	}
	if pprofAddr != "" {
		addr, shutdown, err := StartPprof(pprofAddr)
		if err != nil {
			if f != nil {
				f.Close()
			}
			return nil, nil, fmt.Errorf("obs: start pprof: %w", err)
		}
		stopProf = shutdown
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}
	finish := func(w io.Writer) error {
		var firstErr error
		if stopProf != nil {
			if err := stopProf(); err != nil {
				firstErr = fmt.Errorf("obs: stop pprof: %w", err)
			}
		}
		if tr != nil {
			if err := tr.Err(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: trace write: %w", err)
			}
		}
		if f != nil {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: close trace file: %w", err)
			}
		}
		if reg != nil && w != nil {
			reg.WriteSummary(w)
		}
		return firstErr
	}
	return New(reg, tr), finish, nil
}
