package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(0.25)
	if got := g.Load(); got != 0.25 {
		t.Fatalf("gauge = %f, want 0.25", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every call on nil observers/metrics/spans must be a no-op.
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer enabled")
	}
	o.Counter("x").Add(1)
	o.Gauge("x").Set(1)
	o.Histogram("x").Observe(1)
	o.Event("x", Fields{"a": 1})
	o.Phase("x")()
	sp := o.Span("x", nil)
	sp.Event("y", nil)
	sp.Child("z", nil).End(nil)
	sp.End(nil)
	if v := o.Counter("x").Load(); v != 0 {
		t.Fatalf("nil counter loaded %d", v)
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned a metric")
	}
	if New(nil, nil) != nil {
		t.Fatal("New(nil, nil) should be nil")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.minP1.Load()-1 != 1 || h.max.Load() != 1000 {
		t.Fatalf("min=%d max=%d", h.minP1.Load()-1, h.max.Load())
	}
	if q := h.Quantile(0); q > 1 {
		t.Fatalf("p0 = %d", q)
	}
	if q := h.Quantile(1); q < 1000 {
		t.Fatalf("p100 = %d, want >= max bucket bound", q)
	}
	if h.Mean() != 1106.0/5 {
		t.Fatalf("mean = %f", h.Mean())
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(int64(i))
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", r.Counter("c").Load())
	}
	if r.Histogram("h").Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", r.Histogram("h").Count())
	}
}

func TestTracerEmitsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	run := tr.Span("run", Fields{"structure": "IRF"})
	it := run.Child("iteration", Fields{"it": 0})
	it.Event("note", Fields{"x": 1.5})
	it.End(Fields{"best": 0.5})
	run.End(nil)
	tr.Event("standalone", nil)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	var evs []map[string]any
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q does not parse: %v", ln, err)
		}
		evs = append(evs, m)
	}
	if evs[0]["ev"] != "begin" || evs[0]["name"] != "run" {
		t.Fatalf("first record %v", evs[0])
	}
	// The iteration span must nest under the run span.
	if evs[1]["parent"] != evs[0]["id"] {
		t.Fatalf("iteration parent %v != run id %v", evs[1]["parent"], evs[0]["id"])
	}
	// begin/end ids of the iteration span must match.
	if evs[3]["id"] != evs[1]["id"] || evs[3]["ev"] != "end" {
		t.Fatalf("iteration end %v", evs[3])
	}
	if evs[3]["fields"].(map[string]any)["best"] != 0.5 {
		t.Fatalf("end fields %v", evs[3]["fields"])
	}
}

func TestPhaseTimersAndSummary(t *testing.T) {
	r := NewRegistry()
	o := New(r, nil)
	stopRun := o.Phase("core.run")
	stop := o.Phase("core.phase.evaluate")
	time.Sleep(2 * time.Millisecond)
	stop()
	stopRun()
	if r.Counter("core.phase.evaluate.wall_ns").Load() <= 0 {
		t.Fatal("phase timer recorded nothing")
	}
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "core phases") || !strings.Contains(out, "evaluate") {
		t.Fatalf("summary missing phase table:\n%s", out)
	}
	if !strings.Contains(out, "% of wall clock accounted") {
		t.Fatalf("summary missing accounted line:\n%s", out)
	}
}

func TestStartPprof(t *testing.T) {
	addr, shutdown, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener must actually be released: a second server can bind
	// the same address, and requests to the old one fail.
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Fatal("pprof server still serving after shutdown")
	}
	addr2, shutdown2, err := StartPprof(addr)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	if addr2 != addr {
		t.Fatalf("rebound to %s, want %s", addr2, addr)
	}
	if err := shutdown2(); err != nil {
		t.Fatal(err)
	}
}
