package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves the standard net/http/pprof endpoints on addr
// (e.g. "localhost:6060") from a background goroutine and returns the
// bound address, so callers can pass ":0" to pick a free port. The
// server lives until process exit — it exists for interactive profiling
// of long runs, not for production serving.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
