package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the standard net/http/pprof endpoints on addr
// (e.g. "localhost:6060") from a background goroutine and returns the
// bound address — callers can pass ":0" to pick a free port — plus a
// shutdown function that stops the server and releases the listener.
// The server carries a ReadHeaderTimeout so an idle client cannot pin a
// connection open forever (the slowloris class); it exists for
// interactive profiling of long runs, not for production serving.
func StartPprof(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
		return nil
	}
	return ln.Addr().String(), shutdown, nil
}
