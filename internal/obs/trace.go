package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Fields carries the structured payload of one trace record.
type Fields map[string]any

// record is the wire form of one JSONL line.
type record struct {
	US     int64  `json:"us"`           // microseconds since tracer start
	Ev     string `json:"ev"`           // "begin", "end" or "event"
	Name   string `json:"name"`         // span or event name
	ID     int64  `json:"id,omitempty"` // span id (begin/end and span-scoped events)
	Parent int64  `json:"parent,omitempty"`
	DurUS  int64  `json:"dur_us,omitempty"` // span duration (end records)
	Fields Fields `json:"fields,omitempty"`
}

// Tracer writes a structured event log: one JSON object per line.
// Records are spans ("begin"/"end" pairs sharing an id, optionally
// nested via parent) and point events ("event"). All methods are
// nil-safe and safe for concurrent use; timestamps are microseconds
// relative to the tracer's creation, so two traces of the same seed can
// be diffed offline.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	start  time.Time
	nextID atomic.Int64
}

// NewTracer returns a tracer emitting JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now()}
}

// Err returns the first write or encoding error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tracer) emit(rec record) {
	if t == nil {
		return
	}
	b, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

func (t *Tracer) sinceUS() int64 {
	return time.Since(t.start).Microseconds()
}

// Span begins a root span and returns it (nil on a nil tracer).
func (t *Tracer) Span(name string, fields Fields) *Span {
	return t.span(name, 0, fields)
}

func (t *Tracer) span(name string, parent int64, fields Fields) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.nextID.Add(1), name: name, start: time.Now()}
	t.emit(record{US: t.sinceUS(), Ev: "begin", Name: name, ID: s.id, Parent: parent, Fields: fields})
	return s
}

// Event emits a parentless point event.
func (t *Tracer) Event(name string, fields Fields) {
	if t == nil {
		return
	}
	t.emit(record{US: t.sinceUS(), Ev: "event", Name: name, Fields: fields})
}

// Span is one open interval in the trace. A nil span accepts all calls.
type Span struct {
	t     *Tracer
	id    int64
	name  string
	start time.Time
}

// Child begins a nested span.
func (s *Span) Child(name string, fields Fields) *Span {
	if s == nil {
		return nil
	}
	return s.t.span(name, s.id, fields)
}

// Event emits a point event scoped to this span.
func (s *Span) Event(name string, fields Fields) {
	if s == nil {
		return
	}
	s.t.emit(record{US: s.t.sinceUS(), Ev: "event", Name: name, Parent: s.id, Fields: fields})
}

// End closes the span, recording its duration and final fields.
func (s *Span) End(fields Fields) {
	if s == nil {
		return
	}
	s.t.emit(record{US: s.t.sinceUS(), Ev: "end", Name: s.name, ID: s.id,
		DurUS: time.Since(s.start).Microseconds(), Fields: fields})
}
