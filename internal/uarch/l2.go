package uarch

// l2tags is a tag-only model of a unified second-level cache. Data
// correctness is entirely handled by the L1D (which reads and writes the
// backing memory image); the L2 tag array determines *timing* — whether
// an L1 miss is served at L2 latency or memory latency — and receives
// next-line prefetches. Keeping it tag-only means the timing extension
// cannot perturb architectural results, which randomized differential
// tests against the functional emulator verify.
type l2tags struct {
	numSets   int
	ways      int
	lineBytes int
	valid     []bool
	tag       []uint64
	lastUse   []uint64

	hits, misses, prefetches uint64
}

// initL2Tags builds the L2 tag model, reusing a previous instance's
// arrays when the geometry matches (the pooled-core fast path).
func initL2Tags(t *l2tags, cfg CacheConfig) *l2tags {
	if cfg.SizeBytes == 0 {
		return nil
	}
	numSets := cfg.NumSets()
	n := numSets * cfg.Ways
	if t != nil && t.numSets == numSets && t.ways == cfg.Ways && t.lineBytes == cfg.LineBytes {
		// Invalidating is enough: tag and lastUse entries are only read
		// once a line is valid again (and thus rewritten by fill).
		clear(t.valid)
		t.hits, t.misses, t.prefetches = 0, 0, 0
		return t
	}
	return &l2tags{
		numSets:   numSets,
		ways:      cfg.Ways,
		lineBytes: cfg.LineBytes,
		valid:     make([]bool, n),
		tag:       make([]uint64, n),
		lastUse:   make([]uint64, n),
	}
}

func (t *l2tags) setAndTag(addr uint64) (int, uint64) {
	line := addr / uint64(t.lineBytes)
	return int(line) % t.numSets, line / uint64(t.numSets)
}

// access probes the L2 for the line containing addr, filling on miss.
// It returns whether the line was present.
func (t *l2tags) access(addr, cycle uint64) bool {
	set, tag := t.setAndTag(addr)
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.tag[base+w] == tag {
			t.hits++
			t.lastUse[base+w] = cycle
			return true
		}
	}
	t.misses++
	t.fill(set, tag, cycle)
	return false
}

// prefetch installs a line without touching the demand statistics.
func (t *l2tags) prefetch(addr, cycle uint64) {
	set, tag := t.setAndTag(addr)
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.tag[base+w] == tag {
			return
		}
	}
	t.prefetches++
	t.fill(set, tag, cycle)
}

func (t *l2tags) fill(set int, tag, cycle uint64) {
	base := set * t.ways
	victim := base
	for w := 0; w < t.ways; w++ {
		if !t.valid[base+w] {
			victim = base + w
			break
		}
		if t.lastUse[base+w] < t.lastUse[victim] {
			victim = base + w
		}
	}
	t.valid[victim] = true
	t.tag[victim] = tag
	t.lastUse[victim] = cycle
}
