package uarch

import (
	"math/rand/v2"
	"testing"

	"harpocrates/internal/isa"
)

// resultsIdentical compares every observable field of two results — cycle
// counts, signature, coverage snapshot, IBR, branch/cache/flush stats and
// the ACE interval logs — the bit-identity oracle of the naive-vs-skip
// differential tests.
func resultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Snapshot != b.Snapshot {
		t.Errorf("%s: snapshot diverged:\n naive %+v\n skip  %+v", label, a.Snapshot, b.Snapshot)
	}
	if a.Signature != b.Signature {
		t.Errorf("%s: signature diverged: %#x vs %#x", label, a.Signature, b.Signature)
	}
	if a.TimedOut != b.TimedOut {
		t.Errorf("%s: TimedOut diverged: %v vs %v", label, a.TimedOut, b.TimedOut)
	}
	switch {
	case (a.Crash == nil) != (b.Crash == nil):
		t.Errorf("%s: crash diverged: %v vs %v", label, a.Crash, b.Crash)
	case a.Crash != nil && *a.Crash != *b.Crash:
		t.Errorf("%s: crash diverged: %v vs %v", label, a.Crash, b.Crash)
	}
	if a.Branches != b.Branches || a.Mispredicts != b.Mispredicts || a.Flushes != b.Flushes {
		t.Errorf("%s: branch stats diverged: %d/%d/%d vs %d/%d/%d", label,
			a.Branches, a.Mispredicts, a.Flushes, b.Branches, b.Mispredicts, b.Flushes)
	}
	if a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses || a.Writebacks != b.Writebacks {
		t.Errorf("%s: cache stats diverged: %d/%d/%d vs %d/%d/%d", label,
			a.CacheHits, a.CacheMisses, a.Writebacks, b.CacheHits, b.CacheMisses, b.Writebacks)
	}
	if a.L2Hits != b.L2Hits || a.L2Misses != b.L2Misses || a.Prefetches != b.Prefetches {
		t.Errorf("%s: L2 stats diverged: %d/%d/%d vs %d/%d/%d", label,
			a.L2Hits, a.L2Misses, a.Prefetches, b.L2Hits, b.L2Misses, b.Prefetches)
	}
	if !a.IRFIntervals.Equal(b.IRFIntervals) {
		t.Errorf("%s: IRF interval log diverged", label)
	}
	if !a.FPRFIntervals.Equal(b.FPRFIntervals) {
		t.Errorf("%s: FPRF interval log diverged", label)
	}
	if !a.L1DIntervals.Equal(b.L1DIntervals) {
		t.Errorf("%s: L1D interval log diverged", label)
	}
}

// addMemVariant finds add r64, m64 — the fused load-ALU instruction the
// miss-heavy chain programs serialize on.
func addMemVariant(t testing.TB) isa.VariantID {
	t.Helper()
	for _, id := range isa.ByOp(isa.OpADD) {
		v := isa.Lookup(id)
		if v.Width == isa.W64 && len(v.Ops) == 2 &&
			v.Ops[0].Kind == isa.KReg && v.Ops[1].Kind == isa.KMem {
			return id
		}
	}
	t.Fatal("no add r64, m64 variant")
	return 0
}

// missChainProgram builds n copies of add rax, [rsi+disp] with the
// displacement striding whole cache lines across the data region. Every
// instruction depends on the previous one through RAX, so execution is a
// serial chain of load-use latencies — under a small L1D almost every
// link is a miss, and almost every cycle of the run is a stall the
// event-driven loop can skip.
func missChainProgram(t testing.TB, n int) []isa.Inst {
	id := addMemVariant(t)
	prog := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		disp := int32((i * 64 * 7) % (dataSize - 64))
		disp &^= 15
		in := isa.Inst{V: id, NOps: 2}
		in.Ops[0] = isa.RegOp(isa.RAX)
		in.Ops[1] = isa.MemOp(isa.RSI, disp)
		prog = append(prog, in)
	}
	return prog
}

// smallL1Config returns the default core with the L1D shrunk to 1 KB so
// the 32 KB test data region thrashes it (L2 disabled: every miss pays
// the full MissLatency).
func smallL1Config() Config {
	cfg := DefaultConfig()
	cfg.L1D.SizeBytes = 1024
	cfg.L1D.Ways = 2
	cfg.L2 = CacheConfig{}
	cfg.EnablePrefetch = false
	return cfg
}

// runDifferential executes prog under cfg twice — reference naive loop vs
// event-driven skipping — and requires bit-identical results. It returns
// the skipping run's skipped-cycle count.
func runDifferential(t *testing.T, label string, prog []isa.Inst, seed uint64, cfg Config) uint64 {
	t.Helper()
	naiveCfg := cfg
	naiveCfg.NoCycleSkip = true
	naive := NewCore(prog, newInitState(t, seed), naiveCfg)
	rn := naive.Run()
	if naive.SkippedCycles() != 0 {
		t.Fatalf("%s: naive loop skipped %d cycles", label, naive.SkippedCycles())
	}

	skip := NewCore(prog, newInitState(t, seed), cfg)
	rs := skip.Run()
	resultsIdentical(t, label, rn, rs)
	return skip.SkippedCycles()
}

func fullTracking(cfg Config) Config {
	cfg.TrackIRF = true
	cfg.TrackFPRF = true
	cfg.TrackL1D = true
	cfg.TrackIBR = true
	cfg.RecordIRFIntervals = true
	cfg.RecordFPRFIntervals = true
	cfg.RecordL1DIntervals = true
	return cfg
}

// TestSkipDifferentialRandomPrograms is the correctness backbone of the
// event-driven run loop: for random programs with full coverage
// instrumentation, the skipping loop must reproduce the naive loop
// bit-for-bit — fault-free and under scheduled transient flips and
// intermittent stuck-at windows on each bit array.
func TestSkipDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewPCG(7001, 7002))
	for trial := 0; trial < 8; trial++ {
		seed := rng.Uint64()
		prog := randomProgram(rng, 60+rng.IntN(120), false)
		cfg := fullTracking(DefaultConfig())

		// Fault-free baseline, and the golden cycle count that places the
		// faults below inside the run.
		base := NewCore(prog, newInitState(t, seed), cfg)
		cycles := base.Run().Cycles
		runDifferential(t, "fault-free", prog, seed, cfg)
		if cycles < 9 {
			continue
		}

		reg := rng.IntN(cfg.IntPRF)
		bit := rng.IntN(64)
		fpreg := rng.IntN(cfg.FPPRF)
		fpbit := rng.IntN(128)
		cbit := rng.IntN(cfg.L1D.SizeBytes * 8)
		at := 1 + rng.Uint64N(cycles)
		wstart := 1 + rng.Uint64N(cycles)
		wend := wstart + 1 + rng.Uint64N(64)
		val := rng.IntN(2) == 1

		cases := []struct {
			name string
			ev   CycleEvent
		}{
			{"irf-transient", CycleEvent{Start: at,
				Fire: func(c *Core, _ uint64) { c.FlipIntPRFBit(reg, bit) }}},
			{"fprf-transient", CycleEvent{Start: at,
				Fire: func(c *Core, _ uint64) { c.FlipFPPRFBit(fpreg, fpbit) }}},
			{"l1d-transient", CycleEvent{Start: at,
				Fire: func(c *Core, _ uint64) { c.FlipCacheBit(cbit) }}},
			{"irf-intermittent", CycleEvent{Start: wstart, End: wend,
				Fire: func(c *Core, _ uint64) { c.ForceIntPRFBit(reg, bit, val) }}},
			{"fprf-intermittent", CycleEvent{Start: wstart, End: wend,
				Fire: func(c *Core, _ uint64) { c.ForceFPPRFBit(fpreg, fpbit, val) }}},
			{"l1d-intermittent", CycleEvent{Start: wstart, End: wend,
				Fire: func(c *Core, _ uint64) { c.ForceCacheBit(cbit, val) }}},
		}
		for _, tc := range cases {
			fcfg := cfg
			fcfg.Events = []CycleEvent{tc.ev}
			fcfg.MaxCycles = cycles*4 + 100_000
			runDifferential(t, tc.name, prog, seed, fcfg)
		}
	}
}

// TestSkipDifferentialMissChain checks the case skipping exists for: a
// serialized miss chain where nearly every cycle is a stall. The skip
// loop must jump most of the run and still match the naive loop exactly.
func TestSkipDifferentialMissChain(t *testing.T) {
	prog := missChainProgram(t, 200)
	cfg := fullTracking(smallL1Config())
	skipped := runDifferential(t, "miss-chain", prog, 41, cfg)
	if skipped == 0 {
		t.Fatal("miss chain run skipped no cycles")
	}
}

// TestSkipDifferentialL2Prefetch exercises fill timing through the full
// hierarchy — L1 miss, L2 hit/miss, next-line prefetches — under
// skipping: a jump must never land past a fill-ready cycle, or hit/miss
// counts and latencies would shift.
func TestSkipDifferentialL2Prefetch(t *testing.T) {
	prog := missChainProgram(t, 300)
	cfg := fullTracking(DefaultConfig())
	cfg.L1D.SizeBytes = 1024
	cfg.L1D.Ways = 2
	// Default config keeps the 256 KB L2 and the next-line prefetcher.
	skipped := runDifferential(t, "l2-prefetch", prog, 43, cfg)
	if skipped == 0 {
		t.Fatal("L2 miss chain skipped no cycles")
	}
	r := Run(prog, newInitState(t, 43), cfg)
	if r.L2Hits == 0 || r.Prefetches == 0 {
		t.Fatalf("workload does not exercise the L2 (hits=%d prefetches=%d)", r.L2Hits, r.Prefetches)
	}
}

// TestOnCycleForcesNaive: an opaque OnCycle hook must disable skipping
// entirely — the hook observes every cycle number contiguously and the
// core reports zero skipped cycles.
func TestOnCycleForcesNaive(t *testing.T) {
	prog := missChainProgram(t, 50)
	cfg := smallL1Config()
	var seen []uint64
	cfg.OnCycle = func(_ *Core, cyc uint64) { seen = append(seen, cyc) }
	c := NewCore(prog, newInitState(t, 45), cfg)
	r := c.Run()
	if c.SkippedCycles() != 0 {
		t.Fatalf("OnCycle run skipped %d cycles", c.SkippedCycles())
	}
	if uint64(len(seen)) != r.Cycles {
		t.Fatalf("OnCycle fired %d times over %d cycles", len(seen), r.Cycles)
	}
	for i, cyc := range seen {
		if cyc != uint64(i) {
			t.Fatalf("OnCycle cycle %d observed as %d: not contiguous", i, cyc)
		}
	}
}

// TestWatchdogBoundary pins the documented MaxCycles semantics: a run
// simulates cycles 0..MaxCycles-1 and times out with Result.Cycles ==
// MaxCycles — exactly, under both loops, and when resuming from a
// checkpoint.
func TestWatchdogBoundary(t *testing.T) {
	prog := missChainProgram(t, 100)
	cfg := smallL1Config()
	seed := uint64(47)

	natural := Run(prog, newInitState(t, seed), cfg)
	if !natural.Clean() {
		t.Fatalf("baseline run not clean: %v %v", natural.Crash, natural.TimedOut)
	}

	for _, noSkip := range []bool{false, true} {
		cut := cfg
		cut.NoCycleSkip = noSkip
		cut.MaxCycles = natural.Cycles - 1
		r := Run(prog, newInitState(t, seed), cut)
		if !r.TimedOut || r.Cycles != cut.MaxCycles {
			t.Fatalf("noSkip=%v: MaxCycles=%d gave TimedOut=%v Cycles=%d; want timeout at exactly MaxCycles",
				noSkip, cut.MaxCycles, r.TimedOut, r.Cycles)
		}
		// At exactly the natural length the run finishes: the termination
		// check precedes the watchdog.
		exact := cfg
		exact.NoCycleSkip = noSkip
		exact.MaxCycles = natural.Cycles
		r = Run(prog, newInitState(t, seed), exact)
		if r.TimedOut || r.Cycles != natural.Cycles {
			t.Fatalf("noSkip=%v: MaxCycles==natural(%d) gave TimedOut=%v Cycles=%d",
				noSkip, natural.Cycles, r.TimedOut, r.Cycles)
		}
	}
}

// TestWatchdogBoundaryCheckpointResume: the >= watchdog semantics must
// survive checkpointed fast-forward — a run resumed mid-flight still
// times out at exactly the overridden MaxCycles, under both loops.
func TestWatchdogBoundaryCheckpointResume(t *testing.T) {
	prog := missChainProgram(t, 100)
	cfg := smallL1Config()
	seed := uint64(49)

	natural := Run(prog, newInitState(t, seed), cfg)
	ckAt := natural.Cycles / 2
	var ck *Checkpoint
	capCfg := cfg
	capCfg.OnCycle = func(core *Core, cyc uint64) {
		if cyc == ckAt && ck == nil {
			ck = core.Checkpoint()
		}
	}
	Run(prog, newInitState(t, seed), capCfg)
	if ck == nil {
		t.Fatalf("no checkpoint captured at cycle %d", ckAt)
	}

	for _, noSkip := range []bool{false, true} {
		over := Config{MaxCycles: natural.Cycles - 1, NoCycleSkip: noSkip}
		r := RunFromCheckpoint(ck, over)
		if !r.TimedOut || r.Cycles != over.MaxCycles {
			t.Fatalf("noSkip=%v: resumed run gave TimedOut=%v Cycles=%d; want timeout at %d",
				noSkip, r.TimedOut, r.Cycles, over.MaxCycles)
		}
		full := Config{MaxCycles: natural.Cycles, NoCycleSkip: noSkip}
		r = RunFromCheckpoint(ck, full)
		if r.TimedOut || r.Cycles != natural.Cycles || r.Signature != natural.Signature {
			t.Fatalf("noSkip=%v: resumed full run gave TimedOut=%v Cycles=%d sig=%#x; want clean %d/%#x",
				noSkip, r.TimedOut, r.Cycles, r.Signature, natural.Cycles, natural.Signature)
		}
	}
}

// TestSkipDifferentialCheckpointResume: events and skipping must compose
// with checkpoint restore — a faulty run resumed from mid-flight state is
// bit-identical between the two loops.
func TestSkipDifferentialCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewPCG(9101, 9102))
	prog := randomProgram(rng, 150, false)
	seed := uint64(51)
	cfg := fullTracking(DefaultConfig())

	natural := NewCore(prog, newInitState(t, seed), cfg).Run()
	if natural.Cycles < 16 {
		t.Skip("program too short")
	}
	ckAt := natural.Cycles / 3
	var ck *Checkpoint
	capCfg := cfg
	capCfg.OnCycle = func(core *Core, cyc uint64) {
		if cyc == ckAt && ck == nil {
			ck = core.Checkpoint()
		}
	}
	NewCore(prog, newInitState(t, seed), capCfg).Run()
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}

	reg, bit := rng.IntN(DefaultConfig().IntPRF), rng.IntN(64)
	at := ckAt + 1 + rng.Uint64N(natural.Cycles-ckAt)
	ev := []CycleEvent{{Start: at, Fire: func(c *Core, _ uint64) { c.FlipIntPRFBit(reg, bit) }}}

	run := func(noSkip bool) (*Result, uint64) {
		c := getPooledCore()
		defer putPooledCore(c)
		c.RestoreFrom(ck, Config{Events: ev, NoCycleSkip: noSkip,
			MaxCycles: natural.Cycles*4 + 100_000})
		return c.Run(), c.SkippedCycles()
	}
	rn, sn := run(true)
	rs, _ := run(false)
	if sn != 0 {
		t.Fatalf("naive resumed run skipped %d cycles", sn)
	}
	resultsIdentical(t, "checkpoint-resume", rn, rs)
}

// BenchmarkCoreRun measures the run loop on the miss-heavy serial chain —
// the workload class the event-driven loop targets. The skip variant must
// beat naive by at least 2x here (asserted offline via cmd/bench).
func BenchmarkCoreRun(b *testing.B) {
	prog := missChainProgram(b, 500)
	for _, bench := range []struct {
		name   string
		noSkip bool
	}{{"naive", true}, {"skip", false}} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := smallL1Config()
			cfg.NoCycleSkip = bench.noSkip
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := Run(prog, newInitState(b, 53), cfg)
				if !r.Clean() {
					b.Fatal("run not clean")
				}
			}
		})
	}
}
