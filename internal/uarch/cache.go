package uarch

import (
	"harpocrates/internal/ace"
	"harpocrates/internal/arch"
)

// cacheLine is one L1D line. Data is a slice into the cache's flat data
// array so bit-level fault injection can address the whole SRAM.
type cacheLine struct {
	valid   bool
	dirty   bool
	tag     uint64
	lastUse uint64
	data    []byte
}

// dcache models the L1 data cache: physically-addressed, write-back,
// write-allocate, LRU.
type dcache struct {
	cfg     CacheConfig
	numSets int
	lines   []cacheLine // set-major: lines[set*ways+way]
	data    []byte      // flat SRAM: (set*ways+way)*lineBytes + offset
	backing *arch.Memory
	tracker *ace.CacheTracker
	// rec logs per-byte consumed-value intervals at access time (fills
	// and stores are writes; loads, dirty evictions and the final flush
	// are consumptions). Nil unless Config.RecordL1DIntervals.
	rec *ace.IntervalRecorder

	// Second level (timing only) and latency table.
	l2       *l2tags
	l2HitLat int
	memLat   int
	prefetch bool

	hits, misses, writebacks uint64
}

// initDCache builds the L1D model, reusing the SRAM, line metadata and
// L2 tag arrays of a previous instance when the geometry matches (the
// pooled-core fast path).
func initDCache(d *dcache, full Config, backing *arch.Memory, tracker *ace.CacheTracker,
	rec *ace.IntervalRecorder) *dcache {
	cfg := full.L1D
	numSets := cfg.NumSets()
	n := numSets * cfg.Ways
	reuse := d != nil && d.cfg == cfg && len(d.lines) == n
	if !reuse {
		d = &dcache{
			cfg:     cfg,
			numSets: numSets,
			lines:   make([]cacheLine, n),
			data:    make([]byte, n*cfg.LineBytes),
		}
	}
	d.backing = backing
	d.tracker = tracker
	d.rec = rec
	d.l2 = initL2Tags(d.l2, full.L2)
	d.l2HitLat = full.L2.HitLatency
	d.memLat = full.MemLatency
	d.prefetch = full.EnablePrefetch
	d.hits, d.misses, d.writebacks = 0, 0, 0
	if d.memLat == 0 {
		d.memLat = cfg.MissLatency
	}
	// Clearing the SRAM is not required for correctness (invalid lines
	// are never read and always filled before use) but keeps every run
	// bit-for-bit independent of pool history, fault injection included.
	clear(d.data)
	for i := range d.lines {
		d.lines[i] = cacheLine{data: d.data[i*cfg.LineBytes : (i+1)*cfg.LineBytes]}
	}
	return d
}

// missLatency resolves an L1 miss through the L2 tag array and the
// next-line prefetcher, returning the latency of the fill.
func (d *dcache) missLatency(addr, cycle uint64) int {
	if d.l2 == nil {
		return d.cfg.MissLatency
	}
	lat := d.memLat
	if d.l2.access(addr, cycle) {
		lat = d.l2HitLat
	}
	if d.prefetch {
		d.l2.prefetch(addr+uint64(d.cfg.LineBytes), cycle)
	}
	return lat
}

func (d *dcache) setOf(addr uint64) int {
	return int(addr/uint64(d.cfg.LineBytes)) % d.numSets
}

func (d *dcache) tagOf(addr uint64) uint64 {
	return addr / uint64(d.cfg.LineBytes) / uint64(d.numSets)
}

// byteIndex returns the flat SRAM index of a line byte (for ACE tracking
// and fault injection).
func (d *dcache) byteIndex(lineIdx, off int) int { return lineIdx*d.cfg.LineBytes + off }

// lookup finds the line holding addr; returns the line index or -1.
func (d *dcache) lookup(addr uint64) int {
	set := d.setOf(addr)
	tag := d.tagOf(addr)
	base := set * d.cfg.Ways
	for w := 0; w < d.cfg.Ways; w++ {
		l := &d.lines[base+w]
		if l.valid && l.tag == tag {
			return base + w
		}
	}
	return -1
}

// fill brings the line containing addr into the cache, evicting the LRU
// way (writing back if dirty). Returns the line index.
func (d *dcache) fill(addr uint64, cycle uint64) (int, *arch.CrashError) {
	lb := uint64(d.cfg.LineBytes)
	lineAddr := addr &^ (lb - 1)
	set := d.setOf(addr)
	base := set * d.cfg.Ways
	victim := base
	for w := 0; w < d.cfg.Ways; w++ {
		l := &d.lines[base+w]
		if !l.valid {
			victim = base + w
			break
		}
		if l.lastUse < d.lines[victim].lastUse {
			victim = base + w
		}
	}
	v := &d.lines[victim]
	if v.valid {
		if err := d.evict(victim, cycle); err != nil {
			return -1, err
		}
	}
	if err := d.backing.ReadBytes(lineAddr, v.data); err != nil {
		return -1, err
	}
	v.valid = true
	v.dirty = false
	v.tag = d.tagOf(addr)
	v.lastUse = cycle
	if d.tracker != nil {
		d.tracker.OnFill(d.byteIndex(victim, 0), d.cfg.LineBytes, cycle)
	}
	if d.rec != nil {
		d.rec.WriteRange(d.byteIndex(victim, 0), d.cfg.LineBytes, cycle)
	}
	return victim, nil
}

// evict writes back a dirty line and invalidates it.
func (d *dcache) evict(lineIdx int, cycle uint64) *arch.CrashError {
	l := &d.lines[lineIdx]
	if !l.valid {
		return nil
	}
	if d.tracker != nil {
		d.tracker.OnEvict(d.byteIndex(lineIdx, 0), d.cfg.LineBytes, cycle, l.dirty)
	}
	if d.rec != nil && l.dirty {
		// A writeback consumes every byte of the line, including bytes
		// never stored to since the fill: their values reach memory.
		d.rec.ReadRange(d.byteIndex(lineIdx, 0), d.cfg.LineBytes, cycle)
	}
	if l.dirty {
		d.writebacks++
		addr := d.lineAddr(lineIdx)
		if err := d.backing.WriteBytes(addr, l.data); err != nil {
			return err
		}
	}
	l.valid = false
	l.dirty = false
	return nil
}

func (d *dcache) lineAddr(lineIdx int) uint64 {
	set := lineIdx / d.cfg.Ways
	l := &d.lines[lineIdx]
	return (l.tag*uint64(d.numSets) + uint64(set)) * uint64(d.cfg.LineBytes)
}

// access performs a read or write of size bytes at addr, splitting
// across line boundaries. For reads, buf receives the bytes; for writes,
// buf supplies them. The visit callback reports the flat byte ranges
// touched (for deferred ACE read events). It returns the worst latency
// among the lines touched (HitLatency when everything hit).
func (d *dcache) access(addr uint64, size int, write bool, buf []byte, cycle uint64,
	visit func(byteIdx, n int)) (int, *arch.CrashError) {
	lat := d.cfg.HitLatency
	off := 0
	for size > 0 {
		lb := d.cfg.LineBytes
		lineOff := int(addr) & (lb - 1)
		n := lb - lineOff
		if n > size {
			n = size
		}
		// Bounds/permission check against the backing map first, so a
		// wild address faults rather than filling garbage.
		if write {
			if err := d.backing.CheckWrite(addr, uint64(n)); err != nil {
				return lat, err
			}
		}
		li := d.lookup(addr)
		if li < 0 {
			d.misses++
			if l := d.missLatency(addr, cycle); l > lat {
				lat = l
			}
			var err *arch.CrashError
			li, err = d.fill(addr, cycle)
			if err != nil {
				return lat, err
			}
		} else {
			d.hits++
		}
		l := &d.lines[li]
		l.lastUse = cycle
		if write {
			copy(l.data[lineOff:lineOff+n], buf[off:off+n])
			l.dirty = true
			if d.tracker != nil {
				d.tracker.OnWrite(d.byteIndex(li, lineOff), n, cycle)
			}
			if d.rec != nil {
				d.rec.WriteRange(d.byteIndex(li, lineOff), n, cycle)
			}
		} else {
			copy(buf[off:off+n], l.data[lineOff:lineOff+n])
			if visit != nil {
				visit(d.byteIndex(li, lineOff), n)
			}
			if d.rec != nil {
				d.rec.ReadRange(d.byteIndex(li, lineOff), n, cycle)
			}
		}
		addr += uint64(n)
		off += n
		size -= n
	}
	return lat, nil
}

// flush writes back all dirty lines (end of simulation, before the
// memory signature is computed).
func (d *dcache) flush(cycle uint64) *arch.CrashError {
	if d.tracker != nil {
		d.tracker.Finish(func(idx int) bool {
			return d.lines[idx/d.cfg.LineBytes].dirty
		}, cycle)
	}
	for i := range d.lines {
		l := &d.lines[i]
		if l.valid && l.dirty {
			d.writebacks++
			if d.rec != nil {
				d.rec.ReadRange(d.byteIndex(i, 0), d.cfg.LineBytes, cycle)
			}
			if err := d.backing.WriteBytes(d.lineAddr(i), l.data); err != nil {
				return err
			}
			l.dirty = false
		}
	}
	return nil
}

// NumDataBits returns the number of data bits in the cache SRAM.
func (d *dcache) NumDataBits() int { return len(d.data) * 8 }

// FlipBit flips one bit of the cache data SRAM (transient fault). A flip
// in an invalid line is naturally masked.
func (d *dcache) FlipBit(bit int) {
	d.data[bit/8] ^= 1 << uint(bit%8)
}
