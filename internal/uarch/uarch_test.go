package uarch

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
)

const (
	dataBase  = 0x10000
	dataSize  = 32 * 1024
	stackBase = 0x60000
	stackSize = 8 * 1024
)

func newInitState(t testing.TB, seed uint64) *arch.State {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	mem := arch.NewMemory()
	data := make([]byte, dataSize)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	if err := mem.AddRegion(&arch.Region{Name: "data", Base: dataBase, Data: data, Writable: true}); err != nil {
		t.Fatal(err)
	}
	if err := mem.AddRegion(&arch.Region{Name: "stack", Base: stackBase, Data: make([]byte, stackSize), Writable: true}); err != nil {
		t.Fatal(err)
	}
	s := arch.NewState(mem)
	for i := range s.GPR {
		s.GPR[i] = rng.Uint64()
	}
	s.GPR[isa.RSP] = stackBase + stackSize/2
	s.GPR[isa.RSI] = dataBase
	s.GPR[isa.RDI] = dataBase + 16384
	for i := range s.XMM {
		s.XMM[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	return s
}

// randomProgram builds a plausible random program: deterministic
// variants, memory operands resolved inside the data region via RSI,
// branches with small forward offsets. With wild=true, a fraction of
// memory operands and branches are wild (crash-equivalence testing).
func randomProgram(rng *rand.Rand, n int, wild bool) []isa.Inst {
	det := isa.Deterministic()
	var prog []isa.Inst
	for len(prog) < n {
		id := det[rng.IntN(len(det))]
		v := isa.Lookup(id)
		if !wild && (v.Op == isa.OpDIV || v.Op == isa.OpIDIV) {
			// Wide division traps on random operands almost surely; keep
			// it for the crash-equivalence trials only.
			continue
		}
		// Keep RSP and the region base registers stable so the program
		// doesn't immediately wander off; allow everything else.
		in := isa.Inst{V: id, NOps: uint8(len(v.Ops))}
		ok := true
		for i, spec := range v.Ops {
			switch spec.Kind {
			case isa.KReg:
				r := isa.Reg(rng.IntN(isa.NumGPR))
				for spec.Acc&isa.AccW != 0 && (r == isa.RSP || r == isa.RSI || r == isa.RDI) {
					r = isa.Reg(rng.IntN(isa.NumGPR))
				}
				in.Ops[i] = isa.RegOp(r)
			case isa.KXmm:
				in.Ops[i] = isa.XmmOp(isa.XReg(rng.IntN(isa.NumXMM)))
			case isa.KImm:
				if v.IsBranch {
					in.Ops[i] = isa.ImmOp(int64(rng.IntN(4)))
					if wild && rng.IntN(50) == 0 {
						in.Ops[i] = isa.ImmOp(int64(rng.IntN(100000)))
					}
				} else {
					w := spec.Width
					if w > isa.W64 {
						w = isa.W64
					}
					sh := 64 - 8*uint(w)
					in.Ops[i] = isa.ImmOp(int64(rng.Uint64()<<sh) >> sh)
				}
			case isa.KMem:
				disp := int32(rng.IntN(dataSize - 64))
				disp &^= 15 // aligned so movapd works
				in.Ops[i] = isa.MemOp(isa.RSI, disp)
				if wild && rng.IntN(40) == 0 {
					in.Ops[i] = isa.MemOp(isa.Reg(rng.IntN(isa.NumGPR)), disp)
				}
			}
		}
		// Avoid clobbering base registers through implicit outputs.
		for _, r := range v.ImplicitOut {
			if r == isa.RSP || r == isa.RSI || r == isa.RDI {
				_ = r
			}
		}
		// MUL/DIV clobber RAX/RDX: fine, they are not base registers here.
		if ok {
			prog = append(prog, in)
		}
	}
	return prog
}

func runBoth(t *testing.T, prog []isa.Inst, seed uint64, cfg Config) (*Result, *arch.State, *arch.CrashError) {
	t.Helper()
	goldenState := newInitState(t, seed)
	_, goldenErr := arch.Run(prog, goldenState, 10_000_000)

	initState := newInitState(t, seed)
	cfg.DebugScrub = true
	res := Run(prog, initState, cfg)
	return res, goldenState, goldenErr
}

// TestEquivalenceWithEmulator is the core validation of the timing model:
// for random deterministic programs, the out-of-order core must produce
// bit-identical architectural outcomes (signature, or crash kind and PC)
// to the in-order functional emulator.
func TestEquivalenceWithEmulator(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for trial := 0; trial < 150; trial++ {
		seed := rng.Uint64()
		prog := randomProgram(rng, 200, trial%3 == 2)
		res, golden, goldenErr := runBoth(t, prog, seed, DefaultConfig())
		if res.TimedOut {
			t.Fatalf("trial %d: core timed out", trial)
		}
		if goldenErr != nil {
			if res.Crash == nil {
				t.Fatalf("trial %d: emulator crashed (%v) but core ran clean", trial, goldenErr)
			}
			if res.Crash.Kind != goldenErr.Kind || res.Crash.PC != goldenErr.PC {
				t.Fatalf("trial %d: crash mismatch: core %v, emulator %v", trial, res.Crash, goldenErr)
			}
			continue
		}
		if res.Crash != nil {
			t.Fatalf("trial %d: core crashed (%v) but emulator ran clean", trial, res.Crash)
		}
		if res.Signature != golden.Signature() {
			t.Fatalf("trial %d: signature mismatch: core %#x, emulator %#x",
				trial, res.Signature, golden.Signature())
		}
	}
}

// TestEquivalenceLoopHeavy exercises branch prediction, misprediction
// recovery, and store-to-load forwarding with a loop program.
func TestEquivalenceLoopHeavy(t *testing.T) {
	// for i = 100..1: mem[i%64] += i; i--
	find := func(op isa.Op, w isa.Width, kinds ...isa.OpKind) isa.VariantID {
		for _, id := range isa.ByOp(op) {
			v := isa.Lookup(id)
			if v.Width != w || len(v.Ops) != len(kinds) {
				continue
			}
			ok := true
			for i, k := range kinds {
				if v.Ops[i].Kind != k {
					ok = false
				}
			}
			if ok {
				return id
			}
		}
		t.Fatalf("variant not found")
		return 0
	}
	findCond := func(op isa.Op, c isa.Cond) isa.VariantID {
		for _, id := range isa.ByOp(op) {
			if isa.Lookup(id).Cond == c {
				return id
			}
		}
		t.Fatal("cond variant not found")
		return 0
	}
	movRI := find(isa.OpMOV, isa.W64, isa.KReg, isa.KImm)
	addMR := find(isa.OpADD, isa.W64, isa.KMem, isa.KReg)
	andRI := find(isa.OpAND, isa.W64, isa.KReg, isa.KImm)
	movRR := find(isa.OpMOV, isa.W64, isa.KReg, isa.KReg)
	shlRI := find(isa.OpSHL, isa.W64, isa.KReg, isa.KImm)
	addRR := find(isa.OpADD, isa.W64, isa.KReg, isa.KReg)
	decR := find(isa.OpDEC, isa.W64, isa.KReg)
	jne := findCond(isa.OpJcc, isa.CondNE)
	movLoad := find(isa.OpMOV, isa.W64, isa.KReg, isa.KMem)

	prog := []isa.Inst{
		isa.MakeInst(movRI, isa.RegOp(isa.RCX), isa.ImmOp(100)), // i = 100
		// loop:
		isa.MakeInst(movRR, isa.RegOp(isa.RBX), isa.RegOp(isa.RCX)),
		isa.MakeInst(andRI, isa.RegOp(isa.RBX), isa.ImmOp(63)),
		isa.MakeInst(shlRI, isa.RegOp(isa.RBX), isa.ImmOp(3)),
		isa.MakeInst(addRR, isa.RegOp(isa.RBX), isa.RegOp(isa.RSI)),
		isa.MakeInst(addMR, isa.MemOp(isa.RBX, 0), isa.RegOp(isa.RCX)), // mem[rbx] += i
		isa.MakeInst(movLoad, isa.RegOp(isa.RAX), isa.MemOp(isa.RBX, 0)),
		isa.MakeInst(decR, isa.RegOp(isa.RCX)),
		isa.MakeInst(jne, isa.ImmOp(-8)), // back to loop head
	}
	// Fix the base register usage: the program uses RBX as a computed
	// address, which randomProgram-style init already points into data
	// via RSI.
	res, golden, goldenErr := runBoth(t, prog, 7, DefaultConfig())
	if goldenErr != nil {
		t.Fatalf("emulator crashed: %v", goldenErr)
	}
	if res.Crash != nil || res.TimedOut {
		t.Fatalf("core failed: crash=%v timeout=%v", res.Crash, res.TimedOut)
	}
	if res.Signature != golden.Signature() {
		t.Fatal("loop program signature mismatch")
	}
	if res.Branches == 0 {
		t.Fatal("no branches committed")
	}
	if res.Instructions != 1+8*100 {
		t.Fatalf("retired %d instructions, want %d", res.Instructions, 1+8*100)
	}
}

func TestMispredictsHappenAndRecover(t *testing.T) {
	// Alternating taken/not-taken data-dependent branches defeat gshare
	// at first; correctness must be unaffected.
	rng := rand.New(rand.NewPCG(201, 202))
	for trial := 0; trial < 30; trial++ {
		prog := randomProgram(rng, 300, false)
		res, golden, goldenErr := runBoth(t, prog, uint64(trial), DefaultConfig())
		if goldenErr != nil {
			continue
		}
		if res.Crash != nil {
			t.Fatalf("trial %d: unexpected crash %v", trial, res.Crash)
		}
		if res.Signature != golden.Signature() {
			t.Fatalf("trial %d: signature mismatch with mispredicts=%d", trial, res.Mispredicts)
		}
	}
}

func TestIPCWithinPhysicalBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(203, 204))
	prog := randomProgram(rng, 2000, false)
	cfg := DefaultConfig()
	res := Run(prog, newInitState(t, 11), cfg)
	if !res.Clean() {
		t.Skipf("random program crashed: %v", res.Crash)
	}
	ipc := float64(res.Instructions) / float64(res.Cycles)
	if ipc <= 0 || ipc > float64(cfg.CommitWidth) {
		t.Fatalf("IPC %.2f outside (0, %d]", ipc, cfg.CommitWidth)
	}
	t.Logf("random program IPC: %.2f over %d cycles", ipc, res.Cycles)
}

func TestCacheStatsPlausible(t *testing.T) {
	rng := rand.New(rand.NewPCG(205, 206))
	prog := randomProgram(rng, 1000, false)
	res := Run(prog, newInitState(t, 12), DefaultConfig())
	if !res.Clean() {
		t.Skip("program crashed")
	}
	if res.CacheHits+res.CacheMisses == 0 {
		t.Fatal("no cache accesses despite memory operands")
	}
	t.Logf("L1D: %d hits, %d misses, %d writebacks", res.CacheHits, res.CacheMisses, res.Writebacks)
}

func TestIRFACETrackingSane(t *testing.T) {
	rng := rand.New(rand.NewPCG(207, 208))
	prog := randomProgram(rng, 2000, false)
	cfg := DefaultConfig()
	cfg.TrackIRF = true
	res := Run(prog, newInitState(t, 13), cfg)
	if !res.Clean() {
		t.Skip("program crashed")
	}
	if res.IRFVuln < 0 || res.IRFVuln > 1 {
		t.Fatalf("IRF vulnerability %f outside [0,1]", res.IRFVuln)
	}
	if res.IRFVuln == 0 {
		t.Fatal("IRF vulnerability is zero for a register-heavy program")
	}
	t.Logf("IRF ACE vulnerability: %.4f", res.IRFVuln)
}

func TestL1DACETrackingSane(t *testing.T) {
	rng := rand.New(rand.NewPCG(209, 210))
	prog := randomProgram(rng, 2000, false)
	cfg := DefaultConfig()
	cfg.TrackL1D = true
	res := Run(prog, newInitState(t, 14), cfg)
	if !res.Clean() {
		t.Skip("program crashed")
	}
	if res.L1DVuln < 0 || res.L1DVuln > 1 {
		t.Fatalf("L1D vulnerability %f outside [0,1]", res.L1DVuln)
	}
	if res.L1DVuln == 0 {
		t.Fatal("L1D vulnerability is zero for a memory-touching program")
	}
	t.Logf("L1D ACE vulnerability: %.4f", res.L1DVuln)
}

func TestIBRTrackingSane(t *testing.T) {
	rng := rand.New(rand.NewPCG(211, 212))
	prog := randomProgram(rng, 2000, false)
	cfg := DefaultConfig()
	cfg.TrackIBR = true
	res := Run(prog, newInitState(t, 15), cfg)
	if !res.Clean() {
		t.Skip("program crashed")
	}
	if res.UnitUses[coverage.IntAdder] == 0 {
		t.Fatal("no integer adder uses in a random program")
	}
	for s := coverage.IntAdder; s < coverage.NumStructures; s++ {
		if res.IBR[s] < 0 || res.IBR[s] > 1 {
			t.Fatalf("%v IBR %f outside [0,1]", s, res.IBR[s])
		}
	}
	t.Logf("IBR: adder=%.4f mul=%.4f fpadd=%.4f fpmul=%.4f",
		res.IBR[coverage.IntAdder], res.IBR[coverage.IntMul],
		res.IBR[coverage.FPAdd], res.IBR[coverage.FPMul])
}

func TestPRFInjectionChangesOutcome(t *testing.T) {
	// Flipping a bit of an architecturally-live physical register early
	// in the run must change the outcome for at least some (reg, bit)
	// choices, and flipping a free physical register must be masked.
	rng := rand.New(rand.NewPCG(213, 214))
	prog := randomProgram(rng, 500, false)
	cfg := DefaultConfig()
	goldenRes := Run(prog, newInitState(t, 16), cfg)
	if !goldenRes.Clean() {
		t.Skip("program crashed")
	}
	detected := 0
	for bit := 0; bit < 16; bit++ {
		cfg2 := cfg
		cfg2.OnCycle = func(c *Core, cycle uint64) {
			if cycle == 50 {
				c.FlipIntPRFBit(bit, bit*3%64)
			}
		}
		res := Run(prog, newInitState(t, 16), cfg2)
		if res.Detected(goldenRes) {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no PRF bit flip was ever detected")
	}
	t.Logf("PRF flips detected: %d/16", detected)
}

func TestCacheInjectionChangesOutcome(t *testing.T) {
	rng := rand.New(rand.NewPCG(215, 216))
	prog := randomProgram(rng, 800, false)
	cfg := DefaultConfig()
	goldenRes := Run(prog, newInitState(t, 17), cfg)
	if !goldenRes.Clean() {
		t.Skip("program crashed")
	}
	detected := 0
	trials := 200
	injRng := rand.New(rand.NewPCG(1, 1))
	nbits := NewCore(nil, newInitState(t, 17), cfg).NumCacheBits()
	for i := 0; i < trials; i++ {
		bit := injRng.IntN(nbits)
		cyc := uint64(10 + injRng.IntN(200))
		cfg2 := cfg
		cfg2.OnCycle = func(c *Core, cycle uint64) {
			if cycle == cyc {
				c.FlipCacheBit(bit)
			}
		}
		res := Run(prog, newInitState(t, 17), cfg2)
		if res.Detected(goldenRes) {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no cache bit flip was ever detected")
	}
	if detected == trials {
		t.Fatal("every cache flip detected: masking is implausibly absent")
	}
	t.Logf("cache flips detected: %d/%d", detected, trials)
}

func TestDeterministicRepeatability(t *testing.T) {
	rng := rand.New(rand.NewPCG(217, 218))
	prog := randomProgram(rng, 500, false)
	cfg := DefaultConfig()
	cfg.TrackIRF = true
	cfg.TrackL1D = true
	cfg.TrackIBR = true
	r1 := Run(prog, newInitState(t, 18), cfg)
	r2 := Run(prog, newInitState(t, 18), cfg)
	if r1.Signature != r2.Signature || r1.Cycles != r2.Cycles ||
		r1.IRFVuln != r2.IRFVuln || r1.L1DVuln != r2.L1DVuln {
		t.Fatal("identical runs diverged")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// store then immediately load the same address: the load must see the
	// store's value even though the store has not committed.
	var movMR, movRM, movRI isa.VariantID
	for _, id := range isa.ByOp(isa.OpMOV) {
		v := isa.Lookup(id)
		if v.Width != isa.W64 || len(v.Ops) != 2 {
			continue
		}
		switch {
		case v.Ops[0].Kind == isa.KMem && v.Ops[1].Kind == isa.KReg:
			movMR = id
		case v.Ops[0].Kind == isa.KReg && v.Ops[1].Kind == isa.KMem:
			movRM = id
		case v.Ops[0].Kind == isa.KReg && v.Ops[1].Kind == isa.KImm && v.Ops[1].Width == isa.W32:
			movRI = id
		}
	}
	prog := []isa.Inst{
		isa.MakeInst(movRI, isa.RegOp(isa.RBX), isa.ImmOp(0x1234)),
		isa.MakeInst(movMR, isa.MemOp(isa.RSI, 128), isa.RegOp(isa.RBX)),
		isa.MakeInst(movRM, isa.RegOp(isa.RCX), isa.MemOp(isa.RSI, 128)),
	}
	init := newInitState(t, 19)
	res, golden, goldenErr := runBoth(t, prog, 19, DefaultConfig())
	if goldenErr != nil || res.Crash != nil {
		t.Fatalf("unexpected crash: %v / %v", goldenErr, res.Crash)
	}
	if res.Signature != golden.Signature() {
		t.Fatal("forwarding produced wrong architectural state")
	}
	_ = init
}

func TestWatchdogOnInfiniteLoop(t *testing.T) {
	jmp := isa.ByOp(isa.OpJMP)[0]
	prog := []isa.Inst{isa.MakeInst(jmp, isa.ImmOp(-1))}
	cfg := DefaultConfig()
	cfg.MaxCycles = 10000
	res := Run(prog, newInitState(t, 20), cfg)
	if !res.TimedOut {
		t.Fatal("infinite loop did not trip the watchdog")
	}
}

func BenchmarkCoreALUProgram(b *testing.B) {
	rng := rand.New(rand.NewPCG(301, 302))
	prog := randomProgram(rng, 5000, false)
	cfg := DefaultConfig()
	cfg.TrackIRF = true
	cfg.TrackIBR = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(prog, newInitState(b, 21), cfg)
		if res.TimedOut {
			b.Fatal("timeout")
		}
	}
}

func TestL2AndPrefetcher(t *testing.T) {
	// Find a seed whose random program runs cleanly.
	var prog []isa.Inst
	var res *Result
	var seed uint64
	with := DefaultConfig()
	for seed = 30; seed < 60; seed++ {
		rng := rand.New(rand.NewPCG(219, seed))
		prog = randomProgram(rng, 2000, false)
		res = Run(prog, newInitState(t, seed), with)
		if res.Clean() {
			break
		}
	}
	if !res.Clean() {
		t.Fatal("no clean random program found")
	}
	if res.L2Hits+res.L2Misses == 0 {
		t.Fatal("no L2 activity despite L1 misses")
	}
	if res.Prefetches == 0 {
		t.Fatal("next-line prefetcher never fired")
	}
	// Disabling the L2 must not change architectural results, only
	// timing.
	without := DefaultConfig()
	without.L2.SizeBytes = 0
	without.EnablePrefetch = false
	res2 := Run(prog, newInitState(t, seed), without)
	if res2.Signature != res.Signature {
		t.Fatal("L2 changed architectural results")
	}
	if res2.L2Hits != 0 {
		t.Fatal("disabled L2 recorded hits")
	}
	t.Logf("L2: %d hits, %d misses, %d prefetches; cycles %d (with) vs %d (without)",
		res.L2Hits, res.L2Misses, res.Prefetches, res.Cycles, res2.Cycles)
}

func TestFPRFTrackingAndInjection(t *testing.T) {
	rng := rand.New(rand.NewPCG(221, 222))
	prog := randomProgram(rng, 1500, false)
	cfg := DefaultConfig()
	cfg.TrackFPRF = true
	res := Run(prog, newInitState(t, 31), cfg)
	if !res.Clean() {
		t.Skip("program crashed")
	}
	if res.FPRFVuln <= 0 || res.FPRFVuln > 1 {
		t.Fatalf("FPRF vulnerability %f out of range", res.FPRFVuln)
	}
	t.Logf("FPRF ACE vulnerability: %.4f", res.FPRFVuln)

	// Injection into a mapped architectural XMM register early on must be
	// detectable for some bits.
	golden := Run(prog, newInitState(t, 31), DefaultConfig())
	detected := 0
	for bit := 0; bit < 32; bit++ {
		cfg2 := DefaultConfig()
		bit := bit
		cfg2.OnCycle = func(c *Core, cycle uint64) {
			if cycle == 20 {
				c.FlipFPPRFBit(bit%16, bit*4%128)
			}
		}
		r := Run(prog, newInitState(t, 31), cfg2)
		if r.Detected(golden) {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no FP PRF flip was ever detected")
	}
	t.Logf("FPRF flips detected: %d/32", detected)
}

func TestCommitTrace(t *testing.T) {
	rng := rand.New(rand.NewPCG(223, 224))
	prog := randomProgram(rng, 50, false)
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.Trace = &buf
	res := Run(prog, newInitState(t, 33), cfg)
	if !res.Clean() {
		t.Skip("program crashed")
	}
	lines := strings.Count(buf.String(), "\n")
	if uint64(lines) != res.Instructions {
		t.Fatalf("trace has %d lines, want %d", lines, res.Instructions)
	}
	if !strings.Contains(buf.String(), "pc=0") {
		t.Fatal("trace missing first instruction")
	}
}
