package uarch

import (
	"math/rand/v2"
	"testing"

	"harpocrates/internal/gen"
)

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func TestWithDefaultsFullyZeroMatchesDefault(t *testing.T) {
	got := Config{}.WithDefaults()
	want := DefaultConfig()
	// Compare the comparable structural portion field by field (Config
	// itself is not comparable: it carries hook funcs).
	if got.ROBSize != want.ROBSize || got.IntPRF != want.IntPRF ||
		got.L1D != want.L1D || got.L2 != want.L2 ||
		got.EnablePrefetch != want.EnablePrefetch ||
		got.MemLatency != want.MemLatency ||
		got.FetchWidth != want.FetchWidth || got.GshareBits != want.GshareBits {
		t.Fatalf("zero config defaulted to %+v, want DefaultConfig", got)
	}
}

func TestWithDefaultsPreservesSetFields(t *testing.T) {
	// Setting one field must not clobber it, and the rest must default.
	c := Config{L1D: CacheConfig{SizeBytes: 16 * 1024}}.WithDefaults()
	if c.L1D.SizeBytes != 16*1024 {
		t.Fatalf("caller's L1D size clobbered: %d", c.L1D.SizeBytes)
	}
	d := DefaultConfig()
	if c.ROBSize != d.ROBSize || c.IntPRF != d.IntPRF || c.FetchWidth != d.FetchWidth {
		t.Fatalf("unset fields not defaulted: ROB=%d IntPRF=%d Fetch=%d", c.ROBSize, c.IntPRF, c.FetchWidth)
	}
	if c.L1D.Ways != d.L1D.Ways || c.L1D.HitLatency != d.L1D.HitLatency {
		t.Fatalf("L1D subfields not defaulted: %+v", c.L1D)
	}
	// The caller set a structural field, so a zero L2 stays disabled.
	if c.L2.SizeBytes != 0 {
		t.Fatalf("L2 enabled behind the caller's back: %+v", c.L2)
	}
}

func TestWithDefaultsPartialL2(t *testing.T) {
	c := Config{L2: CacheConfig{SizeBytes: 512 * 1024}}.WithDefaults()
	d := DefaultConfig()
	if c.L2.SizeBytes != 512*1024 {
		t.Fatalf("L2 size clobbered: %d", c.L2.SizeBytes)
	}
	if c.L2.Ways != d.L2.Ways || c.L2.LineBytes != d.L2.LineBytes || c.L2.HitLatency != d.L2.HitLatency {
		t.Fatalf("enabled L2 subfields not defaulted: %+v", c.L2)
	}
}

func TestWithDefaultsRunsClean(t *testing.T) {
	// A sparse config must be runnable after defaulting (the old
	// behaviour silently required all-or-nothing configuration).
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 200
	p := gen.Materialize(gen.NewRandom(&cfg, testRNG(1)), &cfg)
	c := Config{ROBSize: 64}.WithDefaults()
	c.TrackIRF = true
	r := Run(p.Insts, p.NewState(), c)
	if !r.Clean() {
		t.Fatalf("sparse defaulted config produced unclean run: crash=%v timeout=%v", r.Crash, r.TimedOut)
	}
	if r.Instructions == 0 || r.IPC() <= 0 {
		t.Fatalf("no progress: instrs=%d ipc=%f", r.Instructions, r.IPC())
	}
}

func TestFlushCounterMatchesMispredictedBranches(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.NumInstrs = 2000
	p := gen.Materialize(gen.NewRandom(&cfg, testRNG(7)), &cfg)
	r := Run(p.Insts, p.NewState(), DefaultConfig())
	if !r.Clean() {
		t.Fatal("golden run not clean")
	}
	// Every execute-time mispredict squashes; the model flushes exactly
	// once per mispredicted branch.
	if r.Flushes != r.Mispredicts {
		t.Fatalf("flushes %d != mispredicts %d", r.Flushes, r.Mispredicts)
	}
}
