package uarch

import "harpocrates/internal/isa"

// corruptInst models a bit flip on the fetch path: the instruction is
// re-encoded to its HX86 byte representation, one bit of those bytes is
// flipped, and the result is decoded again. The flip can land in a
// don't-care position (identical decode — masked), change the variant
// or an operand (silent corruption, crash or trap downstream), or
// render the bytes undecodable (ok=false — the fetcher turns that into
// a #UD trap at execute).
//
// HX86 PCs are instruction indices, not byte addresses, so a corrupted
// encoding whose length differs from the original's does not shift
// subsequent fetches; the re-decoded instruction simply replaces the
// original in its slot. The bit index is reduced modulo the actual
// encoded length, so any fault-spec bit draws a valid position.
func corruptInst(in isa.Inst, bit int) (ci isa.Inst, ok bool) {
	var buf [2 + isa.MaxOperands*8]byte
	enc := isa.Encode(buf[:0], in)
	b := bit % (8 * len(enc))
	enc[b/8] ^= 1 << uint(b%8)
	ci, _, err := isa.Decode(enc)
	return ci, err == nil
}
