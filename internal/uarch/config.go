// Package uarch implements an execution-driven out-of-order core model:
// the "detailed simulation-based microarchitecture engine" at the heart
// of the Harpocrates loop (the role gem5 plays in the paper).
//
// The model renames onto physical register files, issues out of order
// from an issue queue across latency-accurate functional units, executes
// loads through a write-back L1 data cache with store-to-load forwarding,
// predicts branches with a gshare predictor and squashes mispredicted
// wrong-path work, and retires in order through a reorder buffer.
// Architectural semantics come from internal/arch, so the timing model
// and the golden reference can never disagree about values.
//
// Hardware coverage (ACE lifetime analysis of the physical integer
// register file and L1D data array, IBR of the functional units) is
// measured with events credited at commit, and fault injection hooks
// allow flipping any PRF or cache data bit at any cycle and rerouting
// arithmetic through gate-level unit models.
//
// Documented simplifications (see DESIGN.md): memory-operand instructions
// execute as a single fused micro-op with combined latency; loads wait
// until all older stores have executed (no memory-dependence
// speculation); store commits do not stall on misses; wrong-path
// instructions execute but cannot raise faults or coverage events.
package uarch

import (
	"io"

	"harpocrates/internal/arch"
)

// CycleEvent is one scheduled state mutation of the sparse fault-event
// schedule (Config.Events). Fire is invoked at the start of every cycle
// in [Start, End); End == 0 is shorthand for Start+1 (a one-shot event,
// e.g. a transient bit flip). While a multi-cycle window is active the
// run loop ticks cycle by cycle so the forcing semantics match the old
// per-cycle OnCycle hooks exactly; outside every window the loop is free
// to skip stalled cycles.
type CycleEvent struct {
	Start, End uint64
	Fire       func(c *Core, cycle uint64)
}

// last returns the first cycle past the event's active window.
func (e *CycleEvent) last() uint64 {
	if e.End == 0 {
		return e.Start + 1
	}
	return e.End
}

// CacheConfig describes the L1 data cache.
type CacheConfig struct {
	SizeBytes   int
	Ways        int
	LineBytes   int
	HitLatency  int
	MissLatency int
}

// NumSets returns the number of cache sets.
func (c CacheConfig) NumSets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Config parameterizes the core. The defaults mirror a modern x86
// out-of-order core (paper §III-B1: "microarchitectural parameters and
// sizes based on publicly available data for commercial x86 CPUs").
type Config struct {
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int
	FetchQueue  int

	ROBSize int
	IQSize  int
	LQSize  int
	SQSize  int

	IntPRF  int // physical integer register file entries (ACE target)
	FPPRF   int
	FlagPRF int

	NumIntALU  int
	NumIntMul  int
	NumIntDiv  int
	NumFPAdd   int
	NumFPMul   int
	NumFPDiv   int
	NumVecALU  int
	NumBranch  int
	NumMemPort int

	GshareBits        int
	MispredictPenalty int

	L1D CacheConfig
	// L2 is a unified second-level cache modelled as a tag array (timing
	// only; SizeBytes 0 disables it, making L1 misses cost
	// L1D.MissLatency).
	L2 CacheConfig
	// MemLatency is the cost of an access missing both levels.
	MemLatency int
	// EnablePrefetch turns on the L2 next-line prefetcher.
	EnablePrefetch bool

	// MaxCycles is the watchdog limit: a run simulates at most MaxCycles
	// cycles (cycle numbers 0..MaxCycles-1) and reports TimedOut with
	// Result.Cycles == MaxCycles when it reaches the limit unfinished.
	// 0 means a generous default.
	MaxCycles uint64

	// TrackIRF / TrackL1D / TrackFPRF / TrackIBR enable coverage
	// instrumentation.
	TrackIRF  bool
	TrackL1D  bool
	TrackFPRF bool
	TrackIBR  bool
	// ACEIgnoreWidths disables per-read width masks in the IRF ACE
	// analysis (ablation; see internal/ace).
	ACEIgnoreWidths bool

	// RecordIRFIntervals / RecordFPRFIntervals / RecordL1DIntervals
	// attach an ace.IntervalRecorder to the corresponding bit array,
	// logging consumed-value intervals directly at access time (including
	// wrong-path work, so the log is conservative). The fault injector
	// uses the recorders, surfaced on Result, to prove transient flips
	// masked without simulating them. Pure observation: enabling a
	// recorder cannot change simulated behaviour.
	RecordIRFIntervals  bool
	RecordFPRFIntervals bool
	RecordL1DIntervals  bool

	// FU reroutes arithmetic through external functional-unit models
	// (gate-level netlists carrying permanent faults). FUWindow bounds
	// the cycles in which the hooks are active (intermittent faults);
	// a zero window means always active. FUOutside, if set, applies
	// outside the window (e.g. the fault-free netlist, so golden and
	// faulty runs share arithmetic semantics).
	//
	// The hook and writer fields are excluded from JSON so the scalar
	// configuration can travel over the internal/dist wire protocol;
	// workers rebuild hooks locally from the campaign parameters.
	FU        *arch.FUHooks `json:"-"`
	FUOutside *arch.FUHooks `json:"-"`
	FUWindow  [2]uint64

	// DebugScrub poisons the scratch execution state before each µop so
	// that a missing source dependency shows up as a wrong value instead
	// of being hidden by stale-but-plausible data. Test-only (slow).
	DebugScrub bool

	// NondetSalt seeds nondeterministic instructions, as in arch.State.
	NondetSalt uint64

	// OnCycle, if set, is invoked at the start of every cycle; fault
	// injectors use it to corrupt PRF or cache state mid-run. Because the
	// hook is opaque — the core cannot know which cycles it cares about —
	// setting it forces the naive cycle-by-cycle run loop. New code
	// should prefer Events, whose sparse schedule keeps event-driven
	// cycle skipping available; OnCycle remains as the skip-disabling
	// fallback so checkpoint capture and existing callers are untouched.
	OnCycle func(c *Core, cycle uint64) `json:"-"`

	// Events is a sparse schedule of state mutations: each event's Fire
	// hook runs at the start of every cycle in [Start, End) (End == 0
	// means Start+1, a one-shot). Unlike OnCycle the schedule tells the
	// run loop exactly which cycles need forcing, so the loop may jump
	// over stalled cycles outside every window: a transient flip is one
	// event at its cycle, an intermittent stuck-at window is one event
	// spanning it (forced every cycle inside, skip-free), and everything
	// between events can fast-forward. Excluded from JSON like the other
	// hook fields (workers rebuild events from campaign parameters).
	Events []CycleEvent `json:"-"`

	// DeltaRecord, if set, makes the run record a golden-trajectory point
	// (cycle, retire count, committed-stream digest, machine-state hash)
	// every DeltaRecord.Interval cycles — the reference side of delta
	// resimulation (see delta.go). Purely observational. Excluded from
	// JSON like the other instrumentation fields.
	DeltaRecord *DeltaTrajectory `json:"-"`

	// DeltaCompare, if set, makes the run compare itself against the
	// given golden trajectory at every point cycle at or after
	// DeltaQuiesce: a full match means every subsequent cycle would be
	// identical to the golden run's, so the run stops immediately with
	// Result.Reconverged set (outcome Masked by construction).
	DeltaCompare *DeltaTrajectory `json:"-"`

	// DeltaQuiesce is the first cycle at which the run's fault can no
	// longer mutate state (one past a transient flip, the end of an
	// intermittent window); compare points before it are ignored —
	// matching the golden hash before the fault has finished manifesting
	// proves nothing.
	DeltaQuiesce uint64 `json:"-"`

	// NoCycleSkip forces the naive cycle-by-cycle loop even when no
	// OnCycle hook is set — the ablation/debug knob the differential
	// tests and benchmarks use to compare the event-driven loop against
	// the reference loop.
	NoCycleSkip bool

	// Trace, if set, receives one line per committed instruction
	// (cycle, sequence number, PC, disassembly) — a debugging aid, slow.
	Trace io.Writer `json:"-"`
}

// WithDefaults returns c with every unset (zero) width, capacity and
// latency field filled from DefaultConfig, field-wise — fields the
// caller did set (cache geometry, tracking flags, hooks, a custom PRF
// size) are preserved. Optional features follow two special rules:
//
//   - A configuration with no structural field set at all ("give me the
//     reference core") additionally takes the default L2 and prefetcher,
//     matching DefaultConfig exactly.
//   - Once any structural field is set, L2.SizeBytes == 0 keeps the L2
//     disabled and EnablePrefetch == false keeps the prefetcher off; a
//     partially specified enabled L2 (SizeBytes > 0) has its remaining
//     zero fields filled from the default L2.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	structZero := c.FetchWidth == 0 && c.RenameWidth == 0 && c.IssueWidth == 0 &&
		c.CommitWidth == 0 && c.FetchQueue == 0 &&
		c.ROBSize == 0 && c.IQSize == 0 && c.LQSize == 0 && c.SQSize == 0 &&
		c.IntPRF == 0 && c.FPPRF == 0 && c.FlagPRF == 0 &&
		c.NumIntALU == 0 && c.NumIntMul == 0 && c.NumIntDiv == 0 &&
		c.NumFPAdd == 0 && c.NumFPMul == 0 && c.NumFPDiv == 0 &&
		c.NumVecALU == 0 && c.NumBranch == 0 && c.NumMemPort == 0 &&
		c.GshareBits == 0 && c.MispredictPenalty == 0 &&
		c.L1D == (CacheConfig{}) && c.L2 == (CacheConfig{}) && c.MemLatency == 0
	if structZero {
		c.L2 = d.L2
		c.EnablePrefetch = d.EnablePrefetch
	}
	fill := func(p *int, def int) {
		if *p == 0 {
			*p = def
		}
	}
	fill(&c.FetchWidth, d.FetchWidth)
	fill(&c.RenameWidth, d.RenameWidth)
	fill(&c.IssueWidth, d.IssueWidth)
	fill(&c.CommitWidth, d.CommitWidth)
	fill(&c.FetchQueue, d.FetchQueue)
	fill(&c.ROBSize, d.ROBSize)
	fill(&c.IQSize, d.IQSize)
	fill(&c.LQSize, d.LQSize)
	fill(&c.SQSize, d.SQSize)
	fill(&c.IntPRF, d.IntPRF)
	fill(&c.FPPRF, d.FPPRF)
	fill(&c.FlagPRF, d.FlagPRF)
	fill(&c.NumIntALU, d.NumIntALU)
	fill(&c.NumIntMul, d.NumIntMul)
	fill(&c.NumIntDiv, d.NumIntDiv)
	fill(&c.NumFPAdd, d.NumFPAdd)
	fill(&c.NumFPMul, d.NumFPMul)
	fill(&c.NumFPDiv, d.NumFPDiv)
	fill(&c.NumVecALU, d.NumVecALU)
	fill(&c.NumBranch, d.NumBranch)
	fill(&c.NumMemPort, d.NumMemPort)
	fill(&c.GshareBits, d.GshareBits)
	fill(&c.MispredictPenalty, d.MispredictPenalty)
	fill(&c.L1D.SizeBytes, d.L1D.SizeBytes)
	fill(&c.L1D.Ways, d.L1D.Ways)
	fill(&c.L1D.LineBytes, d.L1D.LineBytes)
	fill(&c.L1D.HitLatency, d.L1D.HitLatency)
	fill(&c.L1D.MissLatency, d.L1D.MissLatency)
	if c.L2.SizeBytes > 0 {
		fill(&c.L2.Ways, d.L2.Ways)
		fill(&c.L2.LineBytes, d.L2.LineBytes)
		fill(&c.L2.HitLatency, d.L2.HitLatency)
	}
	fill(&c.MemLatency, d.MemLatency)
	return c
}

// DefaultConfig returns the reference core configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  8,
		CommitWidth: 4,
		FetchQueue:  16,

		ROBSize: 224,
		IQSize:  96,
		LQSize:  72,
		SQSize:  56,

		IntPRF:  180,
		FPPRF:   168,
		FlagPRF: 48,

		NumIntALU:  3,
		NumIntMul:  1,
		NumIntDiv:  1,
		NumFPAdd:   1,
		NumFPMul:   1,
		NumFPDiv:   1,
		NumVecALU:  2,
		NumBranch:  1,
		NumMemPort: 2,

		GshareBits:        12,
		MispredictPenalty: 12,

		L1D: CacheConfig{
			SizeBytes:   32 * 1024,
			Ways:        8,
			LineBytes:   64,
			HitLatency:  4,
			MissLatency: 40, // used when the L2 is disabled
		},
		L2: CacheConfig{
			SizeBytes:  256 * 1024,
			Ways:       8,
			LineBytes:  64,
			HitLatency: 14,
		},
		MemLatency:     120,
		EnablePrefetch: true,
	}
}
