package uarch

import (
	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

// Register classes for renaming.
const (
	clsInt  = 0
	clsFP   = 1
	clsFlag = 2
)

// archRef is an architectural register reference gathered from a
// variant's operand specs before renaming.
type archRef struct {
	cls  uint8
	arch uint8
	bits uint16 // read width in bits (sources)
}

// rsrc is a renamed source operand.
type rsrc struct {
	cls  uint8
	arch uint8
	bits uint16
	phys uint16
}

// rdst is a renamed destination operand.
type rdst struct {
	cls  uint8
	arch uint8
	phys uint16
	old  uint16 // previous mapping, freed at commit
}

// uop states.
type uopState uint8

const (
	uWaiting uopState = iota
	uIssued
	uDone
)

// storeWrite is one captured store (applied to the cache at commit).
type storeWrite struct {
	addr uint64
	data uint64
	size uint8
}

// ACE event kinds, buffered per uop and credited at commit.
const (
	evPRFWrite = iota
	evPRFRead
	evCacheRead
	evFPRFWrite
	evFPRFRead
)

type aceEvent struct {
	kind  uint8
	a     int32 // phys reg, or flat cache byte index
	n     int32 // width bits, or byte count
	cycle uint64
}

type ibrEvent struct {
	unit uint8
	a, b uint64
}

// ratSnapshot captures the rename maps at a branch for recovery.
type ratSnapshot struct {
	intRAT  [isa.NumGPR]uint16
	fpRAT   [isa.NumXMM]uint16
	flagRAT uint16
}

// uop is one in-flight instruction (fused micro-op).
type uop struct {
	seq  uint64
	pc   int
	v    *isa.Variant
	inst *isa.Inst

	srcs []rsrc
	dsts []rdst

	st      uopState
	doneAt  uint64
	memLat  int
	waitSrc uint8 // first source not yet ready (srcsReady memo)
	isLoad  bool
	isStore bool
	poison  bool // fetched from an invalid PC: crashes if committed
	mutated bool // decoder fault: inst is the core's corrupted decInst
	bad     bool // decoder fault: fetched bytes undecodable, #UD at execute

	predNext   int
	actualNext int

	snapValid bool
	snap      ratSnapshot

	err      *arch.CrashError
	writes   []storeWrite
	events   []aceEvent
	ibr      []ibrEvent
	squashed bool
}

func (u *uop) reset() {
	u.srcs = u.srcs[:0]
	u.dsts = u.dsts[:0]
	u.writes = u.writes[:0]
	u.events = u.events[:0]
	u.ibr = u.ibr[:0]
	u.st = uWaiting
	u.doneAt = 0
	u.memLat = 0
	u.waitSrc = 0
	u.isLoad = false
	u.isStore = false
	u.poison = false
	u.mutated = false
	u.bad = false
	u.snapValid = false
	u.err = nil
	u.squashed = false
}

// collectRefs gathers the architectural sources and destinations of an
// instruction, including implicit operands, partial-width merges and
// flags — the dependence information the renamer needs (and exactly the
// hazards the paper's §V-B discussion of implicit x86 operands is about).
func collectRefs(in *isa.Inst, v *isa.Variant, srcs []archRef, dsts []archRef) ([]archRef, []archRef) {
	addSrc := func(cls, arch uint8, bits uint16) {
		srcs = append(srcs, archRef{cls: cls, arch: arch, bits: bits})
	}
	addDst := func(cls, arch uint8) {
		dsts = append(dsts, archRef{cls: cls, arch: arch})
	}

	for i := 0; i < int(in.NOps); i++ {
		spec := v.Ops[i]
		op := &in.Ops[i]
		switch spec.Kind {
		case isa.KReg:
			if spec.Acc&isa.AccR != 0 {
				bits := uint16(spec.Width.Bits())
				if spec.Acc&isa.AccW != 0 && spec.Width < isa.W32 {
					// A partial-width read-modify-write merges the full
					// old register into the new physical register, so
					// all 64 bits are architecturally consumed.
					bits = 64
				}
				addSrc(clsInt, uint8(op.Reg), bits)
			}
			if spec.Acc&isa.AccW != 0 {
				if spec.Width < isa.W32 && spec.Acc&isa.AccR == 0 {
					// Partial-width write merges with the old value.
					addSrc(clsInt, uint8(op.Reg), 64)
				}
				addDst(clsInt, uint8(op.Reg))
			}
		case isa.KXmm:
			if spec.Acc&isa.AccR != 0 {
				bits := uint16(64)
				if spec.Width == isa.W128 {
					bits = 128
				}
				addSrc(clsFP, uint8(op.X), bits)
			}
			if spec.Acc&isa.AccW != 0 {
				if spec.Width != isa.W128 && !xmmFullWrite(v, in) && spec.Acc&isa.AccR == 0 {
					// Scalar writes preserve the upper lane.
					addSrc(clsFP, uint8(op.X), 128)
				}
				addDst(clsFP, uint8(op.X))
			}
		case isa.KMem:
			addSrc(clsInt, uint8(op.Mem.Base), 64)
			if op.Mem.HasIndex {
				addSrc(clsInt, uint8(op.Mem.Index), 64)
			}
		}
	}
	for _, r := range v.ImplicitIn {
		addSrc(clsInt, uint8(r), 64)
	}
	for _, r := range v.ImplicitOut {
		if v.Width < isa.W32 {
			addSrc(clsInt, uint8(r), 64) // partial-width merge
		}
		addDst(clsInt, uint8(r))
	}
	if v.FlagsRead != 0 {
		addSrc(clsFlag, 0, 8)
	}
	if v.FlagsWritten != 0 {
		if v.FlagsRead == 0 && (v.FlagsWritten != isa.AllFlags || flagsCondWritten(v)) {
			addSrc(clsFlag, 0, 8) // partial or conditional flag update merges
		}
		addDst(clsFlag, 0)
	}
	return srcs, dsts
}

// flagsCondWritten marks variants that may leave the flags untouched at
// runtime despite declaring them written (shifts by a count of zero).
func flagsCondWritten(v *isa.Variant) bool {
	switch v.Op {
	case isa.OpSHL, isa.OpSHR, isa.OpSAR, isa.OpROL, isa.OpROR:
		return true
	}
	return false
}

// xmmFullWrite reports variants whose xmm destination is fully written
// even at scalar width (no upper-lane merge).
func xmmFullWrite(v *isa.Variant, in *isa.Inst) bool {
	switch v.Op {
	case isa.OpMOVQXR:
		return true
	case isa.OpMOVSD:
		// movsd xmm, m64 zeroes the upper lane; movsd xmm, xmm merges.
		return in.Ops[1].Kind == isa.KMem
	}
	return false
}
