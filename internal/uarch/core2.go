package uarch

import (
	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
)

// --- issue + execute ----------------------------------------------------

// unitCapacity returns how many operations of a unit class can issue per
// cycle.
func (c *Core) unitCapacity(u isa.Unit) int {
	switch u {
	case isa.UIntALU, isa.UNone:
		return c.cfg.NumIntALU
	case isa.UIntMul:
		return c.cfg.NumIntMul
	case isa.UIntDiv:
		return c.cfg.NumIntDiv
	case isa.UFPAdd:
		return c.cfg.NumFPAdd
	case isa.UFPMul:
		return c.cfg.NumFPMul
	case isa.UFPDiv:
		return c.cfg.NumFPDiv
	case isa.UBranch:
		return c.cfg.NumBranch
	case isa.UVecALU:
		return c.cfg.NumVecALU
	}
	return 1
}

// srcsReady reports whether all of u's renamed sources are ready. A
// source's readiness is monotonic for the lifetime of a waiting µop (a
// physical register it reads cannot be reallocated before the µop issues
// or is squashed), so the index of the first not-ready source is
// memoized in u.waitSrc: the common retry re-checks one register instead
// of rescanning the whole list.
func (c *Core) srcsReady(u *uop) bool {
	for i := int(u.waitSrc); i < len(u.srcs); i++ {
		s := &u.srcs[i]
		ready := false
		switch s.cls {
		case clsInt:
			ready = c.intReady[s.phys]
		case clsFP:
			ready = c.fpReady[s.phys]
		case clsFlag:
			ready = c.flagRdy[s.phys]
		}
		if !ready {
			u.waitSrc = uint8(i)
			return false
		}
	}
	return true
}

func (c *Core) computeOldestUnexecStore() {
	c.oldestUnexecStore = ^uint64(0)
	for _, si := range c.sq {
		su := &c.rob[si]
		if !su.squashed && su.st == uWaiting {
			c.oldestUnexecStore = su.seq
			return
		}
	}
}

func (c *Core) issue() {
	c.memPortsUsed = 0
	for i := range c.unitUsed {
		c.unitUsed[i] = 0
	}
	c.computeOldestUnexecStore()
	issued := 0
	kept := c.iq[:0]
	for _, idx := range c.iq {
		u := &c.rob[idx]
		if u.squashed {
			continue
		}
		if issued >= c.cfg.IssueWidth {
			kept = append(kept, idx)
			continue
		}
		unit := u.v.Unit
		needMem := u.isLoad || u.isStore
		if !c.srcsReady(u) ||
			c.unitUsed[unit] >= c.unitCapacity(unit) ||
			(needMem && c.memPortsUsed >= c.cfg.NumMemPort) ||
			(unit == isa.UIntDiv && c.divBusyUntil[0] > c.cycle) ||
			(unit == isa.UFPDiv && c.divBusyUntil[1] > c.cycle) ||
			(u.isLoad && c.oldestUnexecStore < u.seq) {
			kept = append(kept, idx)
			continue
		}
		c.unitUsed[unit]++
		if needMem {
			c.memPortsUsed++
		}
		c.execUop(idx)
		issued++
	}
	c.iq = kept
}

// activeFU returns the functional-unit hook set in force at the current
// cycle: cfg.FU inside the fault window, cfg.FUOutside elsewhere. A zero
// window means cfg.FU is always active.
func (c *Core) activeFU() *arch.FUHooks {
	if c.cfg.FUWindow[0] == 0 && c.cfg.FUWindow[1] == 0 {
		return c.cfg.FU
	}
	if c.cycle >= c.cfg.FUWindow[0] && c.cycle < c.cfg.FUWindow[1] {
		return c.cfg.FU
	}
	return c.cfg.FUOutside
}

func (c *Core) execUop(idx int) {
	u := &c.rob[idx]
	ms := &c.execState
	c.bus.u = u
	ms.Mem = &c.bus
	ms.PC = u.pc
	ms.Flags = 0
	if c.cfg.DebugScrub {
		for i := range ms.GPR {
			ms.GPR[i] = 0xdead4dead4dead
		}
		for i := range ms.XMM {
			ms.XMM[i] = [2]uint64{0xdead, 0xdead}
		}
	}
	for _, s := range u.srcs {
		switch s.cls {
		case clsInt:
			ms.GPR[s.arch] = c.intPRF[s.phys]
			if c.irf != nil {
				// Only buffer the commit-time ACE event when a tracker
				// will consume it (commit drops it otherwise anyway).
				u.events = append(u.events, aceEvent{kind: evPRFRead, a: int32(s.phys), n: int32(s.bits), cycle: c.cycle})
			}
			if c.recIRF != nil {
				// Width-limited is sound: the executor masks operands to
				// the declared read width, so higher bits cannot reach
				// architectural state through this read.
				c.recIRF.ReadRange(int(s.phys)*64, min(int(s.bits), 64), c.cycle)
			}
		case clsFP:
			ms.XMM[s.arch] = c.fpPRF[s.phys]
			if c.fprf != nil {
				u.events = append(u.events, aceEvent{kind: evFPRFRead, a: int32(2 * s.phys), n: 64, cycle: c.cycle})
				if s.bits > 64 {
					u.events = append(u.events, aceEvent{kind: evFPRFRead, a: int32(2*s.phys + 1), n: 64, cycle: c.cycle})
				}
			}
			if c.recFPRF != nil {
				c.recFPRF.ReadRange(2*int(s.phys)*64, min(int(s.bits), 128), c.cycle)
			}
		case clsFlag:
			ms.Flags = c.flagPRF[s.phys]
		}
	}
	if c.cfg.TrackIBR && u.inst != nil {
		c.captureIBR(u, ms)
	}
	ms.FU = c.activeFU()
	u.memLat = 0

	var err *arch.CrashError
	switch {
	case u.poison:
		err = &arch.CrashError{Kind: arch.CrashBadBranch, PC: u.pc}
	case u.bad:
		// The fetched bytes did not decode: architecturally a #UD trap.
		err = &arch.CrashError{Kind: arch.CrashInvalidOpcode, PC: u.pc, Exc: isa.ExcInvalidOpcode}
	default:
		// u.inst is &c.prog[u.pc] for clean fetches and the core's
		// decoder-corrupted instruction for mutated ones; either way it
		// executes with the original PC's control-flow context.
		err = ms.StepInst(c.prog, u.inst)
	}
	if err != nil {
		u.err = err
		u.actualNext = u.pc + 1
	} else {
		u.actualNext = ms.PC
		for _, d := range u.dsts {
			switch d.cls {
			case clsInt:
				c.intPRF[d.phys] = ms.GPR[d.arch]
				if c.irf != nil {
					u.events = append(u.events, aceEvent{kind: evPRFWrite, a: int32(d.phys), cycle: c.cycle})
				}
				if c.recIRF != nil {
					c.recIRF.WriteRange(int(d.phys)*64, 64, c.cycle)
				}
			case clsFP:
				c.fpPRF[d.phys] = ms.XMM[d.arch]
				if c.fprf != nil {
					u.events = append(u.events,
						aceEvent{kind: evFPRFWrite, a: int32(2 * d.phys), cycle: c.cycle},
						aceEvent{kind: evFPRFWrite, a: int32(2*d.phys + 1), cycle: c.cycle})
				}
				if c.recFPRF != nil {
					c.recFPRF.WriteRange(2*int(d.phys)*64, 128, c.cycle)
				}
			case clsFlag:
				c.flagPRF[d.phys] = ms.Flags
			}
		}
	}
	lat := u.v.Latency + u.memLat
	if lat < 1 {
		lat = 1
	}
	u.st = uIssued
	u.doneAt = c.cycle + uint64(lat)
	if u.v.Unit == isa.UIntDiv {
		c.divBusyUntil[0] = u.doneAt
	}
	if u.v.Unit == isa.UFPDiv {
		c.divBusyUntil[1] = u.doneAt
	}
	if u.doneAt < c.wbReadyAt {
		c.wbReadyAt = u.doneAt
	}
	c.progressed = true
	c.inflight = append(c.inflight, idx)
}

// captureIBR records the effective input bits fed to the functional unit
// this operation exercises (paper §II-D footnote 5). Memory operands are
// approximated at full operation width.
func (c *Core) captureIBR(u *uop, ms *arch.State) {
	st, ok := coverage.FUOf(u.v)
	if !ok {
		return
	}
	in := u.inst
	v := u.v
	intOp := func(i int) uint64 {
		op := &in.Ops[i]
		switch op.Kind {
		case isa.KReg:
			return ms.GPR[op.Reg] & v.Width.Mask()
		case isa.KImm:
			return uint64(op.Imm) & v.Width.Mask()
		default:
			return v.Width.Mask()
		}
	}
	xmmLane := func(i, lane int) uint64 {
		op := &in.Ops[i]
		if op.Kind == isa.KXmm {
			return ms.XMM[op.X][lane]
		}
		return ^uint64(0)
	}
	add := func(a, b uint64) {
		u.ibr = append(u.ibr, ibrEvent{unit: uint8(st), a: a, b: b})
	}
	switch st {
	case coverage.IntAdder:
		switch v.Op {
		case isa.OpINC, isa.OpDEC:
			add(intOp(0), 1)
		case isa.OpNEG:
			add(0, intOp(0))
		case isa.OpCMPXCHG:
			add(ms.GPR[isa.RAX]&v.Width.Mask(), intOp(0))
		default:
			add(intOp(0), intOp(1))
		}
	case coverage.IntMul:
		switch v.Op {
		case isa.OpMUL, isa.OpIMUL:
			add(ms.GPR[isa.RAX]&v.Width.Mask(), intOp(0))
		case isa.OpIMULRR:
			add(intOp(0), intOp(1))
		case isa.OpIMULRRI:
			add(intOp(1), uint64(in.Ops[2].Imm)&v.Width.Mask())
		}
	case coverage.FPAdd, coverage.FPMul:
		switch v.Width {
		case isa.W128:
			add(xmmLane(0, 0), xmmLane(1, 0))
			add(xmmLane(0, 1), xmmLane(1, 1))
		case isa.W32:
			add(xmmLane(0, 0)&0xffffffff, xmmLane(1, 0)&0xffffffff)
		default:
			add(xmmLane(0, 0), xmmLane(1, 0))
		}
	}
}

// --- rename ---------------------------------------------------------------

func (c *Core) rename() {
	for k := 0; k < c.cfg.RenameWidth && len(c.fq) > 0; k++ {
		if !c.renameOne(c.fq[0]) {
			return
		}
		c.progressed = true
		c.fq = c.fq[1:]
	}
}

func (c *Core) renameOne(f fqEntry) bool {
	if c.robCnt == len(c.rob) || len(c.iq) >= c.cfg.IQSize {
		return false
	}
	var v *isa.Variant
	var in *isa.Inst
	switch {
	case f.poison, f.bad:
		// Poison and bad-decode entries carry no decodable instruction;
		// they occupy a slot and raise their error at execute.
		v = isa.Lookup(0)
	case f.mutated:
		in = &c.decInst
		v = isa.Lookup(in.V)
	default:
		in = &c.prog[f.pc]
		v = isa.Lookup(in.V)
	}
	c.scratchSrc = c.scratchSrc[:0]
	c.scratchDst = c.scratchDst[:0]
	if in != nil {
		c.scratchSrc, c.scratchDst = collectRefs(in, v, c.scratchSrc, c.scratchDst)
	}
	// Resource checks.
	var needInt, needFP, needFlag int
	for _, d := range c.scratchDst {
		switch d.cls {
		case clsInt:
			needInt++
		case clsFP:
			needFP++
		case clsFlag:
			needFlag++
		}
	}
	if needInt > len(c.intFree) || needFP > len(c.fpFree) || needFlag > len(c.flagFree) {
		return false
	}
	isLoad := in != nil && (v.ReadsMem() || v.Op == isa.OpPOP)
	isStore := in != nil && (v.WritesMem() || v.Op == isa.OpPUSH)
	if isLoad && c.nLoads >= c.cfg.LQSize {
		return false
	}
	if isStore && c.nStores >= c.cfg.SQSize {
		return false
	}

	idx := (c.robHead + c.robCnt) % len(c.rob)
	u := &c.rob[idx]
	u.reset()
	u.seq = c.seq
	c.seq++
	u.pc = f.pc
	u.v = v
	u.inst = in
	u.poison = f.poison
	u.mutated = f.mutated
	u.bad = f.bad
	u.predNext = f.predNext
	u.isLoad = isLoad
	u.isStore = isStore

	for _, s := range c.scratchSrc {
		var phys uint16
		switch s.cls {
		case clsInt:
			phys = c.rat.intRAT[s.arch]
		case clsFP:
			phys = c.rat.fpRAT[s.arch]
		case clsFlag:
			phys = c.rat.flagRAT
		}
		u.srcs = append(u.srcs, rsrc{cls: s.cls, arch: s.arch, bits: s.bits, phys: phys})
	}
	for _, d := range c.scratchDst {
		var phys, old uint16
		switch d.cls {
		case clsInt:
			phys = c.intFree[len(c.intFree)-1]
			c.intFree = c.intFree[:len(c.intFree)-1]
			old = c.rat.intRAT[d.arch]
			c.rat.intRAT[d.arch] = phys
			c.intReady[phys] = false
		case clsFP:
			phys = c.fpFree[len(c.fpFree)-1]
			c.fpFree = c.fpFree[:len(c.fpFree)-1]
			old = c.rat.fpRAT[d.arch]
			c.rat.fpRAT[d.arch] = phys
			c.fpReady[phys] = false
		case clsFlag:
			phys = c.flagFree[len(c.flagFree)-1]
			c.flagFree = c.flagFree[:len(c.flagFree)-1]
			old = c.rat.flagRAT
			c.rat.flagRAT = phys
			c.flagRdy[phys] = false
		}
		u.dsts = append(u.dsts, rdst{cls: d.cls, arch: d.arch, phys: phys, old: old})
	}
	if v.IsBranch || f.poison {
		u.snap = c.rat
		u.snapValid = true
	}
	if isStore {
		c.sq = append(c.sq, idx)
		c.nStores++
	}
	if isLoad {
		c.nLoads++
	}
	c.iq = append(c.iq, idx)
	c.robCnt++
	return true
}

// --- fetch ------------------------------------------------------------------

func (c *Core) fetch() {
	if c.cycle < c.fetchStallUntil {
		return
	}
	for i := 0; i < c.cfg.FetchWidth && len(c.fq) < c.cfg.FetchQueue; i++ {
		pc := c.fetchPC
		if pc == len(c.prog) {
			return
		}
		if pc < 0 || pc > len(c.prog) {
			// Wild (wrong-path or truly bad) target: a poison µop crashes
			// at commit if it turns out to be on the correct path.
			c.fq = append(c.fq, fqEntry{pc: pc, predNext: len(c.prog), poison: true})
			c.fetchPC = len(c.prog)
			c.progressed = true
			return
		}
		in := &c.prog[pc]
		var mutated bool
		if c.decArmed {
			// One-shot: the first in-range fetch (wrong-path or not)
			// consumes the armed decoder fault.
			c.decArmed = false
			if ci, ok := corruptInst(*in, c.decBit); ok {
				c.decInst = ci
				in = &c.decInst
				mutated = true
			} else {
				// Undecodable bytes: the entry still occupies a pipeline
				// slot and raises #UD when it reaches execute.
				c.fq = append(c.fq, fqEntry{pc: pc, predNext: pc + 1, bad: true})
				c.fetchPC = pc + 1
				c.progressed = true
				continue
			}
		}
		v := isa.Lookup(in.V)
		next := pc + 1
		if v.IsBranch {
			target := pc + 1 + int(in.Ops[0].Imm)
			if v.Op == isa.OpJMP || c.bp.predict(pc) {
				next = target
			}
			c.fq = append(c.fq, fqEntry{pc: pc, predNext: next, mutated: mutated})
			c.fetchPC = next
			c.progressed = true
			return // at most one branch fetched per cycle
		}
		c.fq = append(c.fq, fqEntry{pc: pc, predNext: next, mutated: mutated})
		c.fetchPC = next
		c.progressed = true
	}
}

// --- execution-time memory bus ------------------------------------------------

// execBus is the arch.MemBus the execute stage sees: loads go through the
// L1D with store-to-load forwarding from uncommitted older stores, and
// stores are captured into the µop's write set (applied at commit).
type execBus struct {
	c *Core
	u *uop
}

var _ arch.MemBus = (*execBus)(nil)

func (b *execBus) Read(addr, size uint64) (uint64, *arch.CrashError) {
	c := b.c
	var buf [8]byte
	// Only materialize the visit closure when an L1D tracker will consume
	// the commit-time events it buffers (the closure escapes, so building
	// it unconditionally allocates on every load).
	var visit func(bi, n int)
	if c.cache.tracker != nil {
		visit = func(bi, n int) {
			b.u.events = append(b.u.events, aceEvent{kind: evCacheRead, a: int32(bi), n: int32(n), cycle: c.cycle})
		}
	}
	lat, err := c.cache.access(addr, int(size), false, buf[:size], c.cycle, visit)
	if err != nil {
		return 0, err
	}
	// Forward bytes from older uncommitted stores, oldest first so the
	// youngest write wins.
	for _, si := range c.sq {
		su := &c.rob[si]
		if su.seq >= b.u.seq {
			break
		}
		if su.squashed || su.st == uWaiting {
			continue
		}
		for _, w := range su.writes {
			lo := max(addr, w.addr)
			hi := min(addr+size, w.addr+uint64(w.size))
			for a := lo; a < hi; a++ {
				buf[a-addr] = byte(w.data >> (8 * (a - w.addr)))
			}
		}
	}
	if lat > b.u.memLat {
		b.u.memLat = lat
	}
	var v uint64
	for i := uint64(0); i < size; i++ {
		v |= uint64(buf[i]) << (8 * i)
	}
	return v, nil
}

func (b *execBus) Write(addr, size, val uint64) *arch.CrashError {
	if err := b.c.mem.CheckWrite(addr, size); err != nil {
		return err
	}
	b.u.writes = append(b.u.writes, storeWrite{addr: addr, data: val, size: uint8(size)})
	if b.u.memLat < b.c.cfg.L1D.HitLatency {
		b.u.memLat = 1 // address generation only; the write retires later
	}
	return nil
}

func (b *execBus) Read128(addr uint64) ([2]uint64, *arch.CrashError) {
	lo, err := b.Read(addr, 8)
	if err != nil {
		return [2]uint64{}, err
	}
	hi, err := b.Read(addr+8, 8)
	if err != nil {
		return [2]uint64{}, err
	}
	return [2]uint64{lo, hi}, nil
}

func (b *execBus) Write128(addr uint64, v [2]uint64) *arch.CrashError {
	if err := b.Write(addr, 8, v[0]); err != nil {
		return err
	}
	return b.Write(addr+8, 8, v[1])
}

func (b *execBus) Regions() []*arch.Region { return b.c.mem.Regions() }
