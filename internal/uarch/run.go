package uarch

import (
	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

// Run simulates prog from the given initial architectural state under
// cfg and returns the result. The initial state's memory is mutated;
// clone it first if it must survive.
func Run(prog []isa.Inst, init *arch.State, cfg Config) *Result {
	return NewCore(prog, init, cfg).Run()
}
