package uarch

import (
	"sync"

	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

// corePool recycles cores across runs so the big allocations — PRFs,
// ROB entries and their per-µop slices, the 32 KB L1D SRAM, L2 tags,
// predictor table, ACE trackers — are reused instead of churning the
// garbage collector. Core.init fully re-establishes every piece of state
// a run can observe, so pooled runs are bit-identical to fresh ones
// (asserted by TestPooledRunDeterministic).
var corePool = sync.Pool{New: func() any { return new(Core) }}

func getPooledCore() *Core  { return corePool.Get().(*Core) }
func putPooledCore(c *Core) { corePool.Put(c) }

// Run simulates prog from the given initial architectural state under
// cfg and returns the result. The initial state's memory is mutated;
// clone it first if it must survive. Runs execute on pooled cores;
// results never alias pooled storage.
func Run(prog []isa.Inst, init *arch.State, cfg Config) *Result {
	c := getPooledCore()
	c.init(prog, init, cfg)
	r := c.Run()
	putPooledCore(c)
	return r
}
