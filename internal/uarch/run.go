package uarch

import (
	"sync"

	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

// corePool recycles cores across runs so the big allocations — PRFs,
// ROB entries and their per-µop slices, the 32 KB L1D SRAM, L2 tags,
// predictor table, ACE trackers — are reused instead of churning the
// garbage collector. Core.init fully re-establishes every piece of state
// a run can observe, so pooled runs are bit-identical to fresh ones
// (asserted by TestPooledRunDeterministic).
var corePool = sync.Pool{New: func() any { return new(Core) }}

func getPooledCore() *Core  { return corePool.Get().(*Core) }
func putPooledCore(c *Core) { corePool.Put(c) }

// Run simulates prog from the given initial architectural state under
// cfg and returns the result. The initial state's memory is mutated;
// clone it first if it must survive. Runs execute on pooled cores;
// results never alias pooled storage.
func Run(prog []isa.Inst, init *arch.State, cfg Config) *Result {
	c := getPooledCore()
	c.init(prog, init, cfg)
	r := c.Run()
	putPooledCore(c)
	return r
}

// --- run loops ---------------------------------------------------------
//
// Two loops share the five pipeline stages. runNaive ticks every cycle —
// required when an opaque OnCycle hook may mutate state at any cycle,
// and kept as the reference loop for differential testing (NoCycleSkip).
// runSkipping is event-driven: after a cycle in which no stage made
// progress it jumps the cycle counter straight to the next cycle at
// which anything *can* happen. The jump is exact, never a heuristic:
//
//   - During an idle cycle no µop executes, no value is written, no
//     cache line moves and no coverage event fires, so the machine state
//     (minus the cycle counter) is a fixed point: the naive loop would
//     reproduce the identical idle cycle until some time-based condition
//     changes stage eligibility.
//   - Every time-based condition is enumerated by nextWake: completion
//     of an in-flight µop (writeback, and transitively commit/issue/
//     rename), a divider becoming free, fetch-stall expiry, the watchdog
//     limit, and the start or continuation of a scheduled fault event.
//   - Waking early is harmless (the cycle re-runs idle and re-computes
//     the next wake); nextWake never wakes late because every candidate
//     below is a conservative lower bound.
//
// Together these make runSkipping bit-identical to runNaive in cycle
// counts, signature, coverage, IBR, branch/cache/flush statistics and
// ACE interval logs — asserted over randomized programs, all target
// structures and all fault types by the differential tests.

func (c *Core) runNaive() {
	for {
		if c.finished || (c.robCnt == 0 && len(c.fq) == 0 && c.fetchPC == len(c.prog)) {
			return
		}
		if c.cycle >= c.cfg.MaxCycles {
			c.timedOut = true
			return
		}
		if c.deltaHashOn && c.deltaTick() {
			return // reconverged with the golden trajectory
		}
		if c.cfg.OnCycle != nil {
			c.cfg.OnCycle(c, c.cycle)
		}
		c.fireEvents()
		c.commit()
		if c.crash != nil {
			return
		}
		c.writeback()
		c.issue()
		c.rename()
		c.fetch()
		c.cycle++
	}
}

func (c *Core) runSkipping() {
	for {
		if c.finished || (c.robCnt == 0 && len(c.fq) == 0 && c.fetchPC == len(c.prog)) {
			return
		}
		if c.cycle >= c.cfg.MaxCycles {
			c.timedOut = true
			return
		}
		if c.deltaHashOn && c.deltaTick() {
			return // reconverged with the golden trajectory
		}
		c.fireEvents()
		c.progressed = false
		c.commit()
		if c.crash != nil {
			return
		}
		c.writeback()
		c.issue()
		c.rename()
		c.fetch()
		if c.progressed {
			c.cycle++
			continue
		}
		next := c.nextWake()
		c.skipped += next - (c.cycle + 1)
		c.cycle = next
	}
}

// fireEvents applies every scheduled fault event whose window covers the
// current cycle (run-loop counterpart of the per-cycle OnCycle hook, but
// with a schedule the skipping loop can reason about).
func (c *Core) fireEvents() {
	for i := range c.cfg.Events {
		e := &c.cfg.Events[i]
		if c.cycle >= e.Start && c.cycle < e.last() {
			e.Fire(c, c.cycle)
		}
	}
}

// nextWake returns the earliest cycle after the current (fully idle) one
// at which any pipeline stage could make progress or a scheduled event
// must fire. It is called at most once per stall episode, so the
// in-flight scan here costs far less than the per-cycle stage scans it
// replaces.
func (c *Core) nextWake() uint64 {
	// The watchdog is always a wake point: a wedged machine (nothing in
	// flight, nothing scheduled) jumps straight to the timeout cycle,
	// reproducing the naive loop's hang verdict at identical cycle
	// counts.
	next := c.cfg.MaxCycles
	consider := func(t uint64) {
		if t > c.cycle && t < next {
			next = t
		}
	}
	for _, idx := range c.inflight {
		u := &c.rob[idx]
		if !u.squashed && u.st == uIssued {
			consider(u.doneAt)
		}
	}
	// A done-but-future ROB head cannot arise today (writeback marks µops
	// done only once doneAt has passed), but guard it anyway: waking
	// early is free, missing a commit would not be.
	if c.robCnt > 0 {
		if head := &c.rob[c.robHead]; head.st == uDone {
			consider(head.doneAt)
		}
	}
	// Dividers can hold back ready µops even after the occupying µop was
	// squashed out of the in-flight list, so their busy-until times are
	// wake points of their own.
	consider(c.divBusyUntil[0])
	consider(c.divBusyUntil[1])
	consider(c.fetchStallUntil)
	// Delta trajectory cycles are wake points: a recording run must
	// sample at every interval multiple, a comparing run must visit each
	// armed compare point at its exact cycle (delta.go).
	if c.deltaNextRec != 0 {
		consider(c.deltaNextRec)
	}
	if cmp := c.cfg.DeltaCompare; cmp != nil && c.deltaCmpIdx < len(cmp.Points) {
		consider(cmp.Points[c.deltaCmpIdx].Cycle)
	}
	for i := range c.cfg.Events {
		e := &c.cfg.Events[i]
		if e.Start > c.cycle {
			consider(e.Start) // upcoming event: wake to apply it
		} else if c.cycle+1 < e.last() {
			consider(c.cycle + 1) // active window: no skipping inside
		}
	}
	return max(next, c.cycle+1)
}
