package uarch

// gshare is a global-history branch direction predictor with 2-bit
// saturating counters. Targets are always known at fetch in HX86
// (branches are direct, instruction-index relative), so no BTB is
// modelled.
type gshare struct {
	history uint64
	mask    uint64
	table   []uint8
}

func newGshare(bits int) *gshare {
	return &gshare{
		mask:  (1 << uint(bits)) - 1,
		table: make([]uint8, 1<<uint(bits)),
	}
}

// reset clears history and counters for reuse by a pooled core.
func (g *gshare) reset() {
	g.history = 0
	clear(g.table)
}

func (g *gshare) index(pc int) uint64 {
	return (uint64(pc) ^ g.history) & g.mask
}

// predict returns the predicted direction and speculatively updates the
// history (restored on squash via re-sync at redirect).
func (g *gshare) predict(pc int) bool {
	taken := g.table[g.index(pc)] >= 2
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
	return taken
}

// update trains the counter with the resolved direction (at commit).
func (g *gshare) update(pc int, taken bool) {
	// Note: trained with the *current* history rather than the fetch-time
	// history — a standard simulator simplification.
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
}
