package uarch

import (
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

// findV locates an ISA variant by op, width and operand kinds.
func findV(t testing.TB, op isa.Op, w isa.Width, kinds ...isa.OpKind) isa.VariantID {
	t.Helper()
	for _, id := range isa.ByOp(op) {
		v := isa.Lookup(id)
		if v.Width != w || len(v.Ops) != len(kinds) {
			continue
		}
		ok := true
		for i, k := range kinds {
			if v.Ops[i].Kind != k {
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	t.Fatalf("no variant for op=%d w=%v kinds=%v", op, w, kinds)
	return 0
}

// TestCorruptInstDeterministic pins the decoder-fault mutation model:
// corruptInst is a pure function of (instruction, bit), the bit index
// wraps modulo the encoded length, and at least one bit position of a
// real instruction produces undecodable bytes (the #UD path).
func TestCorruptInstDeterministic(t *testing.T) {
	mov := findV(t, isa.OpMOV, isa.W64, isa.KReg, isa.KImm)
	in := isa.MakeInst(mov, isa.RegOp(isa.RAX), isa.ImmOp(0x1234))
	nbits := 8 * len(isa.Encode(nil, in))
	sawBad := false
	for bit := 0; bit < nbits; bit++ {
		a, okA := corruptInst(in, bit)
		b, okB := corruptInst(in, bit)
		if okA != okB || a != b {
			t.Fatalf("bit %d: corruptInst not deterministic", bit)
		}
		w, okW := corruptInst(in, bit+nbits)
		if okW != okA || w != a {
			t.Fatalf("bit %d: index does not wrap modulo encoded length", bit)
		}
		if !okA {
			sawBad = true
		}
	}
	if !sawBad {
		t.Fatal("no bit flip produced undecodable bytes (#UD path unreachable)")
	}
}

// decoderRun simulates prog with a decoder fault armed before the first
// fetch (so instruction 0 is fetched corrupted), under both the naive
// and the event-driven loop, requires the two runs bit-identical, and
// returns the result.
func decoderRun(t *testing.T, prog []isa.Inst, init func() *arch.State, bit int) *Result {
	t.Helper()
	run := func(noSkip bool) *Result {
		cfg := DefaultConfig()
		cfg.NoCycleSkip = noSkip
		cfg.MaxCycles = 100_000
		cfg.Events = []CycleEvent{{Start: 0,
			Fire: func(c *Core, _ uint64) { c.ArmDecoderFault(bit) }}}
		return Run(prog, init(), cfg)
	}
	naive, skip := run(true), run(false)
	resultsIdentical(t, "decoder-fault", naive, skip)
	if naive.Trap != skip.Trap {
		t.Fatalf("Trap diverged across loops: %v vs %v", naive.Trap, skip.Trap)
	}
	return skip
}

// TestDecoderFaultTrapKinds sweeps every bit position of hand-built
// single-instruction programs and checks the architectural-exception
// plumbing end to end: whenever a corrupted fetch crashes the run,
// Result.Trap must equal the crash's exception, the naive and skipping
// loops must agree bit-for-bit, and across the sweep at least three
// distinct exception kinds must be exercised — #UD from undecodable
// bytes plus data-dependent traps (#DE, #PF, ...) from flips that
// decode into a different valid instruction.
func TestDecoderFaultTrapKinds(t *testing.T) {
	divInit := func() *arch.State {
		s := arch.NewState(arch.NewMemory())
		s.GPR[isa.RBX] = 7 // divisor; every other GPR is zero (#DE bait)
		s.GPR[isa.RAX] = 42
		return s
	}
	loadInit := func() *arch.State {
		m := arch.NewMemory()
		data := make([]byte, 4096)
		if err := m.AddRegion(&arch.Region{Name: "data", Base: dataBase, Data: data, Writable: true}); err != nil {
			t.Fatal(err)
		}
		s := arch.NewState(m)
		s.GPR[isa.RSI] = dataBase
		return s
	}
	div := findV(t, isa.OpDIV, isa.W64, isa.KReg)
	mov := findV(t, isa.OpMOV, isa.W64, isa.KReg, isa.KMem)
	programs := []struct {
		name string
		prog []isa.Inst
		init func() *arch.State
	}{
		{"div", []isa.Inst{isa.MakeInst(div, isa.RegOp(isa.RBX))}, divInit},
		{"load", []isa.Inst{isa.MakeInst(mov, isa.RegOp(isa.RAX), isa.MemOp(isa.RSI, 64))}, loadInit},
	}

	kinds := map[isa.Exception]bool{}
	for _, p := range programs {
		nbits := 8 * len(isa.Encode(nil, p.prog[0]))
		for bit := 0; bit < nbits; bit++ {
			res := decoderRun(t, p.prog, p.init, bit)
			if res.Crash != nil {
				if res.Trap != res.Crash.Exception() {
					t.Fatalf("%s bit %d: Trap %v != crash exception %v (%v)",
						p.name, bit, res.Trap, res.Crash.Exception(), res.Crash)
				}
				if res.Trap != isa.ExcNone {
					kinds[res.Trap] = true
				}
			} else if res.Trap != isa.ExcNone {
				t.Fatalf("%s bit %d: clean run reports trap %v", p.name, bit, res.Trap)
			}
		}
	}
	if !kinds[isa.ExcInvalidOpcode] {
		t.Fatal("no bit flip raised #UD")
	}
	if len(kinds) < 3 {
		t.Fatalf("decoder faults exercised only %d exception kinds (%v); want >= 3", len(kinds), kinds)
	}
	t.Logf("exception kinds observed: %v", kinds)
}

// TestDecoderFaultUnconsumedIsClean: an armed decoder fault that no
// fetch ever consumes (armed after the last fetch) must leave the run's
// architectural results untouched — the arm is pipeline state, not an
// outcome.
func TestDecoderFaultUnconsumedIsClean(t *testing.T) {
	mov := findV(t, isa.OpMOV, isa.W64, isa.KReg, isa.KImm)
	prog := []isa.Inst{isa.MakeInst(mov, isa.RegOp(isa.RAX), isa.ImmOp(5))}
	init := func() *arch.State { return arch.NewState(arch.NewMemory()) }

	clean := Run(prog, init(), DefaultConfig())
	if !clean.Clean() {
		t.Fatalf("baseline not clean: %v", clean.Crash)
	}
	cfg := DefaultConfig()
	cfg.Events = []CycleEvent{{Start: clean.Cycles + 10,
		Fire: func(c *Core, _ uint64) { c.ArmDecoderFault(3) }}}
	late := Run(prog, init(), cfg)
	if late.Signature != clean.Signature || late.Crash != nil || late.Trap != isa.ExcNone {
		t.Fatalf("unconsumed decoder arm changed the run: %+v", late)
	}
}

// TestWatchdogBoundaryStuckLoop: a genuinely stuck loop (counter far
// beyond the cycle budget) must time out at exactly MaxCycles under both
// loops, with bit-identical results — the commit/cycle-boundary watchdog
// semantics the Hang outcome classification depends on.
func TestWatchdogBoundaryStuckLoop(t *testing.T) {
	mov := findV(t, isa.OpMOV, isa.W64, isa.KReg, isa.KImm)
	dec := findV(t, isa.OpDEC, isa.W64, isa.KReg)
	var jne isa.VariantID
	for _, id := range isa.ByOp(isa.OpJcc) {
		if v := isa.Lookup(id); v.Cond == isa.CondNE {
			jne = id
			break
		}
	}
	if jne == 0 {
		t.Fatal("no jne variant")
	}
	prog := []isa.Inst{
		isa.MakeInst(mov, isa.RegOp(isa.RCX), isa.ImmOp(1<<40)),
		isa.MakeInst(dec, isa.RegOp(isa.RCX)),
		isa.MakeInst(jne, isa.ImmOp(-2)),
	}
	init := func() *arch.State { return arch.NewState(arch.NewMemory()) }
	for _, noSkip := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.NoCycleSkip = noSkip
		cfg.MaxCycles = 5000
		r := Run(prog, init(), cfg)
		if !r.TimedOut || r.Cycles != cfg.MaxCycles {
			t.Fatalf("noSkip=%v: stuck loop gave TimedOut=%v Cycles=%d; want timeout at exactly %d",
				noSkip, r.TimedOut, r.Cycles, cfg.MaxCycles)
		}
	}
}
