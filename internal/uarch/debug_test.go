package uarch

import (
	"math/rand/v2"
	"testing"

	"harpocrates/internal/arch"
	"harpocrates/internal/isa"
)

// TestDebugDivergence bisects the first diverging instruction of the
// equivalence failure (debug helper, cheap, kept as a regression net).
func TestDebugDivergence(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for trial := 0; trial <= 36; trial++ {
		seed := rng.Uint64()
		prog := randomProgram(rng, 200, trial%3 == 2)
		if trial != 36 {
			continue
		}
		// Find earliest prefix with divergence.
		for n := 1; n <= len(prog); n++ {
			p := prog[:n]
			gs := newInitState(t, seed)
			_, gerr := arch.Run(p, gs, 10_000_000)
			is := newInitState(t, seed)
			cfg := DefaultConfig()
			cfg.DebugScrub = true
			res := Run(p, is, cfg)
			gsig := gs.Signature()
			ok := true
			if gerr != nil || res.Crash != nil {
				ok = (gerr != nil) == (res.Crash != nil) && (gerr == nil || (gerr.Kind == res.Crash.Kind && gerr.PC == res.Crash.PC))
			} else if res.Signature != gsig {
				ok = false
			}
			if !ok {
				t.Logf("first divergence at prefix %d; instruction %d: %v", n, n-1, prog[n-1])
				for i := max(0, n-5); i < n; i++ {
					t.Logf("  [%3d] %v", i, prog[i])
				}
				// Compare architectural registers.
				is2 := newInitState(t, seed)
				cfg2 := DefaultConfig()
				cfg2.DebugScrub = true
				c := NewCore(p, is2, cfg2)
				c.Run()
				for r := 0; r < isa.NumGPR; r++ {
					cv := c.intPRF[c.rat.intRAT[r]]
					if cv != gs.GPR[r] {
						t.Logf("  GPR %v: core %#x emu %#x", isa.Reg(r), cv, gs.GPR[r])
					}
				}
				for x := 0; x < isa.NumXMM; x++ {
					cv := c.fpPRF[c.rat.fpRAT[x]]
					if cv != gs.XMM[x] {
						t.Logf("  XMM%d: core %#x emu %#x", x, cv, gs.XMM[x])
					}
				}
				cf := c.flagPRF[c.rat.flagRAT]
				if cf != gs.Flags {
					t.Logf("  FLAGS: core %v emu %v", cf, gs.Flags)
				}
				t.FailNow()
			}
		}
		t.Log("no divergence found on any prefix")
	}
}
