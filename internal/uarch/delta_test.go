package uarch

import (
	"math/rand/v2"
	"testing"
)

// TestDeltaRecordingObservational: recording a trajectory must not
// change the run (the instrumentation only reads state), must be
// deterministic, and must sample exactly at interval multiples in
// ascending order.
func TestDeltaRecordingObservational(t *testing.T) {
	prog := missChainProgram(t, 200)
	cfg := fullTracking(smallL1Config())
	seed := uint64(61)

	plain := Run(prog, newInitState(t, seed), cfg)
	if !plain.Clean() {
		t.Fatalf("baseline not clean: %v %v", plain.Crash, plain.TimedOut)
	}

	record := func() (*Result, *DeltaTrajectory) {
		traj := GetDeltaTrajectory(64)
		rcfg := cfg
		rcfg.DeltaRecord = traj
		return Run(prog, newInitState(t, seed), rcfg), traj
	}
	r1, t1 := record()
	r2, t2 := record()
	defer ReleaseDeltaTrajectory(t1)
	defer ReleaseDeltaTrajectory(t2)

	resultsIdentical(t, "recorded-vs-plain", plain, r1)
	resultsIdentical(t, "recorded-deterministic", r1, r2)
	if r1.Cycles != plain.Cycles {
		t.Fatalf("recording changed cycle count: %d vs %d", r1.Cycles, plain.Cycles)
	}
	want := int(plain.Cycles / 64)
	if len(t1.Points) != want {
		t.Fatalf("trajectory has %d points over %d cycles at interval 64, want %d",
			len(t1.Points), plain.Cycles, want)
	}
	if len(t1.Points) != len(t2.Points) {
		t.Fatalf("recordings disagree on length: %d vs %d", len(t1.Points), len(t2.Points))
	}
	for i := range t1.Points {
		if t1.Points[i] != t2.Points[i] {
			t.Fatalf("point %d diverges across identical recordings: %+v vs %+v",
				i, t1.Points[i], t2.Points[i])
		}
		if wantCyc := uint64(i+1) * 64; t1.Points[i].Cycle != wantCyc {
			t.Fatalf("point %d at cycle %d, want %d", i, t1.Points[i].Cycle, wantCyc)
		}
	}
}

// TestDeltaRecordingLoopsAgree: the naive and skipping loops must record
// identical trajectories — the compare points are wake candidates, so
// the skipping loop lands on every one exactly.
func TestDeltaRecordingLoopsAgree(t *testing.T) {
	prog := missChainProgram(t, 200)
	cfg := smallL1Config()
	seed := uint64(63)

	record := func(noSkip bool) *DeltaTrajectory {
		traj := GetDeltaTrajectory(64)
		rcfg := cfg
		rcfg.NoCycleSkip = noSkip
		rcfg.DeltaRecord = traj
		Run(prog, newInitState(t, seed), rcfg)
		return traj
	}
	tn, ts := record(true), record(false)
	defer ReleaseDeltaTrajectory(tn)
	defer ReleaseDeltaTrajectory(ts)
	if len(tn.Points) != len(ts.Points) {
		t.Fatalf("naive recorded %d points, skip %d", len(tn.Points), len(ts.Points))
	}
	for i := range tn.Points {
		if tn.Points[i] != ts.Points[i] {
			t.Fatalf("point %d: naive %+v vs skip %+v", i, tn.Points[i], ts.Points[i])
		}
	}
}

// TestDeltaReconvergeNoFault: a comparing run that never diverged (no
// fault at all) must reconverge at the very first armed compare point —
// the cheapest possible exercise of the full state hash on both loops.
func TestDeltaReconvergeNoFault(t *testing.T) {
	prog := missChainProgram(t, 200)
	cfg := smallL1Config()
	seed := uint64(65)

	traj := GetDeltaTrajectory(64)
	defer ReleaseDeltaTrajectory(traj)
	rcfg := cfg
	rcfg.DeltaRecord = traj
	golden := Run(prog, newInitState(t, seed), rcfg)
	if !golden.Clean() || len(traj.Points) == 0 {
		t.Fatalf("golden run unusable: clean=%v points=%d", golden.Clean(), len(traj.Points))
	}

	for _, noSkip := range []bool{true, false} {
		ccfg := cfg
		ccfg.NoCycleSkip = noSkip
		ccfg.DeltaCompare = traj
		ccfg.DeltaQuiesce = 1
		r := Run(prog, newInitState(t, seed), ccfg)
		if !r.Reconverged {
			t.Fatalf("noSkip=%v: identical run did not reconverge", noSkip)
		}
		if r.Detected(golden) {
			t.Fatalf("noSkip=%v: reconverged run classifies as detected", noSkip)
		}
		if r.Cycles != traj.Points[0].Cycle {
			t.Fatalf("noSkip=%v: reconverged at cycle %d, want first point %d",
				noSkip, r.Cycles, traj.Points[0].Cycle)
		}
	}
}

// TestDeltaQuiesceGate: compare points strictly before DeltaQuiesce must
// be skipped. With quiesce pushed past the whole trajectory, even an
// identical run must run to completion (and report the golden
// signature) instead of reconverging.
func TestDeltaQuiesceGate(t *testing.T) {
	prog := missChainProgram(t, 200)
	cfg := smallL1Config()
	seed := uint64(67)

	traj := GetDeltaTrajectory(64)
	defer ReleaseDeltaTrajectory(traj)
	rcfg := cfg
	rcfg.DeltaRecord = traj
	golden := Run(prog, newInitState(t, seed), rcfg)

	ccfg := cfg
	ccfg.DeltaCompare = traj
	ccfg.DeltaQuiesce = golden.Cycles + 1
	r := Run(prog, newInitState(t, seed), ccfg)
	if r.Reconverged {
		t.Fatal("run reconverged at a point before its quiesce cycle")
	}
	if r.Cycles != golden.Cycles || r.Signature != golden.Signature {
		t.Fatalf("gated run diverged from golden: %d/%#x vs %d/%#x",
			r.Cycles, r.Signature, golden.Cycles, golden.Signature)
	}
}

// TestDeltaFaultDifferential is the loop-level correctness backbone of
// delta termination: for random programs with random transient flips and
// intermittent windows, a comparing run must behave bit-identically
// under the naive and skipping loops — same reconvergence decision, same
// stop cycle, same outcome-relevant results — and across enough trials
// both reconvergence and divergence must actually occur.
func TestDeltaFaultDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(7301, 7302))
	reconverged, diverged := 0, 0
	for trial := 0; trial < 12; trial++ {
		seed := rng.Uint64()
		prog := randomProgram(rng, 80+rng.IntN(80), false)
		cfg := DefaultConfig()

		traj := GetDeltaTrajectory(32)
		rcfg := cfg
		rcfg.DeltaRecord = traj
		golden := Run(prog, newInitState(t, seed), rcfg)
		if !golden.Clean() || golden.Cycles < 8 {
			ReleaseDeltaTrajectory(traj)
			continue
		}

		reg, bit := rng.IntN(cfg.IntPRF), rng.IntN(64)
		at := 1 + rng.Uint64N(golden.Cycles)
		fire := func(c *Core, _ uint64) { c.FlipIntPRFBit(reg, bit) }
		if trial%3 == 2 {
			// Every third trial clobbers the whole integer PRF — live
			// registers included — so the diverged path is exercised too.
			fire = func(c *Core, _ uint64) {
				for r := 0; r < cfg.IntPRF; r++ {
					c.FlipIntPRFBit(r, bit)
				}
			}
		}
		ev := []CycleEvent{{Start: at, Fire: fire}}

		run := func(noSkip bool) *Result {
			ccfg := cfg
			ccfg.NoCycleSkip = noSkip
			ccfg.Events = ev
			ccfg.DeltaCompare = traj
			ccfg.DeltaQuiesce = at + 1
			ccfg.MaxCycles = golden.Cycles*4 + 100_000
			return Run(prog, newInitState(t, seed), ccfg)
		}
		rn, rs := run(true), run(false)
		if rn.Reconverged != rs.Reconverged || rn.Cycles != rs.Cycles ||
			rn.Signature != rs.Signature || rn.TimedOut != rs.TimedOut ||
			(rn.Crash == nil) != (rs.Crash == nil) {
			t.Fatalf("trial %d: loops disagree: naive {rec=%v cyc=%d sig=%#x} vs skip {rec=%v cyc=%d sig=%#x}",
				trial, rn.Reconverged, rn.Cycles, rn.Signature,
				rs.Reconverged, rs.Cycles, rs.Signature)
		}
		if rs.Reconverged {
			reconverged++
			if rs.Cycles >= golden.Cycles {
				t.Fatalf("trial %d: reconverged at cycle %d, not before golden end %d",
					trial, rs.Cycles, golden.Cycles)
			}
		} else {
			diverged++
			// A run that did not reconverge must classify exactly as a
			// delta-free run would: full-length simulation is untouched.
			pcfg := cfg
			pcfg.Events = ev
			pcfg.MaxCycles = golden.Cycles*4 + 100_000
			plain := Run(prog, newInitState(t, seed), pcfg)
			if plain.Signature != rs.Signature || plain.Cycles != rs.Cycles {
				t.Fatalf("trial %d: comparing changed a diverged run: %d/%#x vs %d/%#x",
					trial, rs.Cycles, rs.Signature, plain.Cycles, plain.Signature)
			}
		}
		ReleaseDeltaTrajectory(traj)
	}
	if reconverged == 0 {
		t.Fatal("no trial reconverged: delta termination never fired")
	}
	if diverged == 0 {
		t.Fatal("every trial reconverged: fault visibility implausible")
	}
	t.Logf("%d reconverged, %d diverged", reconverged, diverged)
}

// TestDeltaCheckpointResume: the committed-stream digest must travel
// with checkpoints — a run resumed mid-flight with a trajectory armed
// reconverges exactly as a from-reset comparing run does. The checkpoint
// is captured during the recording run itself, exactly as the injector
// does it (a checkpoint from a non-recording run carries a stale digest
// and would never match).
func TestDeltaCheckpointResume(t *testing.T) {
	prog := missChainProgram(t, 200)
	cfg := smallL1Config()
	seed := uint64(69)

	plain := Run(prog, newInitState(t, seed), cfg)
	if plain.Cycles < 200 {
		t.Fatalf("run too short (%d cycles)", plain.Cycles)
	}
	ckAt := plain.Cycles / 2

	traj := GetDeltaTrajectory(64)
	defer ReleaseDeltaTrajectory(traj)
	var ck *Checkpoint
	rcfg := cfg
	rcfg.DeltaRecord = traj
	rcfg.OnCycle = func(core *Core, cyc uint64) {
		if cyc == ckAt && ck == nil {
			ck = core.Checkpoint()
		}
	}
	golden := Run(prog, newInitState(t, seed), rcfg)
	if golden.Cycles != plain.Cycles {
		t.Fatalf("instrumented golden diverged: %d vs %d cycles", golden.Cycles, plain.Cycles)
	}
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}
	defer ck.Release()

	for _, noSkip := range []bool{true, false} {
		r := RunFromCheckpoint(ck, Config{
			NoCycleSkip:  noSkip,
			DeltaCompare: traj,
			DeltaQuiesce: ckAt + 1,
			MaxCycles:    golden.Cycles*4 + 100_000,
		})
		if !r.Reconverged {
			t.Fatalf("noSkip=%v: resumed fault-free run did not reconverge", noSkip)
		}
		// First point at or after the quiesce cycle.
		want := uint64(0)
		for _, p := range traj.Points {
			if p.Cycle >= ckAt+1 {
				want = p.Cycle
				break
			}
		}
		if want == 0 || r.Cycles != want {
			t.Fatalf("noSkip=%v: reconverged at cycle %d, want %d", noSkip, r.Cycles, want)
		}
	}
}

// TestDeltaPoolHygiene: trajectory Get/Release must balance and reuse
// pooled storage; Checkpoint/Release likewise.
func TestDeltaPoolHygiene(t *testing.T) {
	base := LiveDeltaTrajectories()
	tr := GetDeltaTrajectory(0)
	if tr.Interval != DefaultDeltaInterval {
		t.Fatalf("zero interval not defaulted: %d", tr.Interval)
	}
	if LiveDeltaTrajectories() != base+1 {
		t.Fatalf("live count %d after Get, want %d", LiveDeltaTrajectories(), base+1)
	}
	tr.Points = append(tr.Points, DeltaPoint{Cycle: 1})
	ReleaseDeltaTrajectory(tr)
	ReleaseDeltaTrajectory(nil) // no-op
	if LiveDeltaTrajectories() != base {
		t.Fatalf("live count %d after Release, want %d", LiveDeltaTrajectories(), base)
	}
	tr2 := GetDeltaTrajectory(128)
	if len(tr2.Points) != 0 {
		t.Fatal("pooled trajectory not reset")
	}
	ReleaseDeltaTrajectory(tr2)

	ckBase := LiveCheckpoints()
	c := NewCore(missChainProgram(t, 10), newInitState(t, 71), smallL1Config())
	ck := c.Checkpoint()
	if LiveCheckpoints() != ckBase+1 {
		t.Fatalf("live checkpoints %d after Checkpoint, want %d", LiveCheckpoints(), ckBase+1)
	}
	ck.Release()
	ck.Release() // idempotent
	var nilCk *Checkpoint
	nilCk.Release() // nil-safe
	if LiveCheckpoints() != ckBase {
		t.Fatalf("live checkpoints %d after Release, want %d", LiveCheckpoints(), ckBase)
	}
}
