package uarch

import (
	"fmt"

	"harpocrates/internal/ace"
	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
)

// Result is the outcome of one simulated run.
type Result struct {
	coverage.Snapshot

	// Crash is non-nil if the program crashed architecturally.
	Crash *arch.CrashError
	// TimedOut reports that the watchdog fired (hang).
	TimedOut bool

	// Signature is the architectural output digest (registers + memory).
	Signature uint64

	Branches    uint64
	Mispredicts uint64
	CacheHits   uint64
	CacheMisses uint64
	Writebacks  uint64
	L2Hits      uint64
	L2Misses    uint64
	Prefetches  uint64
}

// Clean reports a run that neither crashed nor hung.
func (r *Result) Clean() bool { return r.Crash == nil && !r.TimedOut }

// Detected compares a faulty run against a golden run: any deviation
// (different signature, crash, or hang) counts as detection (§II-C).
func (r *Result) Detected(golden *Result) bool {
	if r.Crash != nil || r.TimedOut {
		return true
	}
	return r.Signature != golden.Signature
}

type fqEntry struct {
	pc       int
	predNext int
	poison   bool
}

// Core is the out-of-order core simulator.
type Core struct {
	cfg  Config
	prog []isa.Inst
	mem  *arch.Memory

	cache *dcache
	bp    *gshare
	irf   *ace.RegFileTracker
	// fprf tracks the FP register file as 2x64-bit lanes per entry
	// (pseudo-register 2p for the low lane, 2p+1 for the high).
	fprf *ace.RegFileTracker
	ibrC [coverage.NumStructures]coverage.IBRCounter

	intPRF   []uint64
	intReady []bool
	intFree  []uint16
	fpPRF    [][2]uint64
	fpReady  []bool
	fpFree   []uint16
	flagPRF  []isa.Flags
	flagRdy  []bool
	flagFree []uint16

	rat ratSnapshot

	rob     []uop
	robHead int
	robCnt  int

	iq       []int // rob indices, program order
	sq       []int // rob indices of in-flight stores, program order
	inflight []int // rob indices issued but not written back

	fq              []fqEntry
	fetchPC         int
	fetchStallUntil uint64

	cycle   uint64
	seq     uint64
	instret uint64

	nLoads, nStores int
	memPortsUsed    int
	unitUsed        [isa.NumUnits]int
	divBusyUntil    [2]uint64 // int div, fp div

	oldestUnexecStore uint64 // seq of oldest unexecuted store (or ^0)

	execState arch.State
	bus       execBus

	branches, mispredicts uint64

	crash    *arch.CrashError
	timedOut bool
	finished bool

	scratchSrc []archRef
	scratchDst []archRef
}

// NewCore builds a core for one run. init provides the initial
// architectural state; its memory must be a plain *arch.Memory and is
// used directly (clone beforehand if you need to keep it pristine).
func NewCore(prog []isa.Inst, init *arch.State, cfg Config) *Core {
	mem, ok := init.Mem.(*arch.Memory)
	if !ok {
		panic("uarch: initial state must use a plain *arch.Memory")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200*uint64(len(prog)) + 1_000_000
	}
	c := &Core{
		cfg:  cfg,
		prog: prog,
		mem:  mem,
		bp:   newGshare(cfg.GshareBits),

		intPRF:   make([]uint64, cfg.IntPRF),
		intReady: make([]bool, cfg.IntPRF),
		fpPRF:    make([][2]uint64, cfg.FPPRF),
		fpReady:  make([]bool, cfg.FPPRF),
		flagPRF:  make([]isa.Flags, cfg.FlagPRF),
		flagRdy:  make([]bool, cfg.FlagPRF),

		rob: make([]uop, cfg.ROBSize),
		fq:  make([]fqEntry, 0, cfg.FetchQueue),
	}
	var l1dTracker *ace.CacheTracker
	if cfg.TrackL1D {
		l1dTracker = ace.NewCacheTracker(cfg.L1D.SizeBytes)
	}
	c.cache = newDCache(cfg, mem, l1dTracker)
	if cfg.TrackIRF {
		c.irf = ace.NewRegFileTracker(cfg.IntPRF)
		c.irf.IgnoreWidths = cfg.ACEIgnoreWidths
	}
	if cfg.TrackFPRF {
		c.fprf = ace.NewRegFileTracker(2 * cfg.FPPRF)
	}

	// Initial rename map: arch register r -> physical r.
	for r := 0; r < isa.NumGPR; r++ {
		c.rat.intRAT[r] = uint16(r)
		c.intPRF[r] = init.GPR[r]
		c.intReady[r] = true
		if c.irf != nil {
			c.irf.OnWrite(r, 0)
		}
	}
	for r := isa.NumGPR; r < cfg.IntPRF; r++ {
		c.intFree = append(c.intFree, uint16(r))
	}
	for x := 0; x < isa.NumXMM; x++ {
		c.rat.fpRAT[x] = uint16(x)
		c.fpPRF[x] = init.XMM[x]
		c.fpReady[x] = true
		if c.fprf != nil {
			c.fprf.OnWrite(2*x, 0)
			c.fprf.OnWrite(2*x+1, 0)
		}
	}
	for x := isa.NumXMM; x < cfg.FPPRF; x++ {
		c.fpFree = append(c.fpFree, uint16(x))
	}
	c.rat.flagRAT = 0
	c.flagPRF[0] = init.Flags
	c.flagRdy[0] = true
	for f := 1; f < cfg.FlagPRF; f++ {
		c.flagFree = append(c.flagFree, uint16(f))
	}

	c.execState.NondetSalt = cfg.NondetSalt
	c.bus.c = c
	return c
}

// Cycle returns the current cycle (for injection hooks).
func (c *Core) Cycle() uint64 { return c.cycle }

// NumIntPRF returns the physical integer register file size.
func (c *Core) NumIntPRF() int { return c.cfg.IntPRF }

// FlipIntPRFBit flips one bit of a physical integer register (transient
// fault injection).
func (c *Core) FlipIntPRFBit(reg, bit int) {
	c.intPRF[reg] ^= 1 << uint(bit)
}

// ForceIntPRFBit forces one bit of a physical integer register
// (intermittent stuck-at).
func (c *Core) ForceIntPRFBit(reg, bit int, val bool) {
	if val {
		c.intPRF[reg] |= 1 << uint(bit)
	} else {
		c.intPRF[reg] &^= 1 << uint(bit)
	}
}

// NumFPPRF returns the FP physical register file size.
func (c *Core) NumFPPRF() int { return c.cfg.FPPRF }

// FlipFPPRFBit flips one bit of a 128-bit FP physical register.
func (c *Core) FlipFPPRFBit(reg, bit int) {
	c.fpPRF[reg][bit/64] ^= 1 << uint(bit%64)
}

// ForceFPPRFBit forces one bit of a FP physical register.
func (c *Core) ForceFPPRFBit(reg, bit int, val bool) {
	if val {
		c.fpPRF[reg][bit/64] |= 1 << uint(bit%64)
	} else {
		c.fpPRF[reg][bit/64] &^= 1 << uint(bit%64)
	}
}

// NumCacheBits returns the number of data bits in the L1D SRAM.
func (c *Core) NumCacheBits() int { return c.cache.NumDataBits() }

// FlipCacheBit flips one bit of the L1D data SRAM.
func (c *Core) FlipCacheBit(bit int) { c.cache.FlipBit(bit) }

// ForceCacheBit forces one bit of the L1D data SRAM.
func (c *Core) ForceCacheBit(bit int, val bool) {
	mask := byte(1) << uint(bit%8)
	if val {
		c.cache.data[bit/8] |= mask
	} else {
		c.cache.data[bit/8] &^= mask
	}
}

// Run simulates to completion and returns the result.
func (c *Core) Run() *Result {
	for {
		if c.finished || (c.robCnt == 0 && len(c.fq) == 0 && c.fetchPC == len(c.prog)) {
			break
		}
		if c.cycle > c.cfg.MaxCycles {
			c.timedOut = true
			break
		}
		if c.cfg.OnCycle != nil {
			c.cfg.OnCycle(c, c.cycle)
		}
		c.commit()
		if c.crash != nil {
			break
		}
		c.writeback()
		c.issue()
		c.rename()
		c.fetch()
		c.cycle++
	}
	return c.buildResult()
}

func (c *Core) buildResult() *Result {
	if err := c.cache.flush(c.cycle); err != nil && c.crash == nil {
		c.crash = err
	}
	fs := arch.State{Mem: c.mem}
	for r := 0; r < isa.NumGPR; r++ {
		fs.GPR[r] = c.intPRF[c.rat.intRAT[r]]
	}
	for x := 0; x < isa.NumXMM; x++ {
		fs.XMM[x] = c.fpPRF[c.rat.fpRAT[x]]
	}
	fs.Flags = c.flagPRF[c.rat.flagRAT]

	r := &Result{
		Crash:       c.crash,
		TimedOut:    c.timedOut,
		Signature:   fs.Signature(),
		Branches:    c.branches,
		Mispredicts: c.mispredicts,
		CacheHits:   c.cache.hits,
		CacheMisses: c.cache.misses,
		Writebacks:  c.cache.writebacks,
	}
	if c.cache.l2 != nil {
		r.L2Hits = c.cache.l2.hits
		r.L2Misses = c.cache.l2.misses
		r.Prefetches = c.cache.l2.prefetches
	}
	r.Cycles = c.cycle
	r.Instructions = c.instret
	if c.irf != nil {
		r.IRFVuln = c.irf.Vulnerability(c.cycle)
	}
	if c.fprf != nil {
		r.FPRFVuln = c.fprf.Vulnerability(c.cycle)
	}
	if c.cache.tracker != nil {
		r.L1DVuln = c.cache.tracker.Vulnerability(c.cycle)
	}
	for s := coverage.Structure(0); s < coverage.NumStructures; s++ {
		r.IBR[s] = c.ibrC[s].Value(c.cycle)
		r.UnitUses[s] = c.ibrC[s].Uses
	}
	return r
}

// traceCommit writes one retired-instruction line to the trace sink.
func (c *Core) traceCommit(u *uop) {
	text := "(poison)"
	if u.inst != nil {
		text = u.inst.String()
	}
	fmt.Fprintf(c.cfg.Trace, "cyc=%-8d seq=%-6d pc=%-6d issued@%-8d %s\n",
		c.cycle, u.seq, u.pc, u.doneAt-uint64(u.v.Latency+u.memLat), text)
}

// --- commit -----------------------------------------------------------

func (c *Core) commit() {
	for k := 0; k < c.cfg.CommitWidth && c.robCnt > 0; k++ {
		u := &c.rob[c.robHead]
		if u.st != uDone || u.doneAt > c.cycle {
			return
		}
		if u.err != nil {
			err := *u.err
			err.PC = u.pc
			c.crash = &err
			return
		}
		if u.isStore {
			for _, w := range u.writes {
				var buf [8]byte
				for i := 0; i < int(w.size); i++ {
					buf[i] = byte(w.data >> (8 * uint(i)))
				}
				if _, err := c.cache.access(w.addr, int(w.size), true, buf[:w.size], c.cycle, nil); err != nil {
					e := *err
					e.PC = u.pc
					c.crash = &e
					return
				}
			}
			c.nStores--
			// Pop from the store queue (it must be the oldest entry).
			if len(c.sq) > 0 && c.sq[0] == c.robHead {
				c.sq = c.sq[1:]
			}
		}
		if u.isLoad {
			c.nLoads--
		}
		if u.v != nil && u.v.IsBranch {
			c.bp.update(u.pc, u.actualNext != u.pc+1)
			c.branches++
		}
		for _, d := range u.dsts {
			switch d.cls {
			case clsInt:
				c.intFree = append(c.intFree, d.old)
				if c.irf != nil {
					c.irf.OnFree(int(d.old), c.cycle)
				}
			case clsFP:
				c.fpFree = append(c.fpFree, d.old)
				if c.fprf != nil {
					c.fprf.OnFree(2*int(d.old), c.cycle)
					c.fprf.OnFree(2*int(d.old)+1, c.cycle)
				}
			case clsFlag:
				c.flagFree = append(c.flagFree, d.old)
			}
		}
		for _, e := range u.events {
			switch e.kind {
			case evPRFWrite:
				if c.irf != nil {
					c.irf.OnWrite(int(e.a), e.cycle)
				}
			case evPRFRead:
				if c.irf != nil {
					c.irf.OnRead(int(e.a), int(e.n), e.cycle)
				}
			case evCacheRead:
				if c.cache.tracker != nil {
					c.cache.tracker.OnRead(int(e.a), int(e.n), e.cycle)
				}
			case evFPRFWrite:
				if c.fprf != nil {
					c.fprf.OnWrite(int(e.a), e.cycle)
				}
			case evFPRFRead:
				if c.fprf != nil {
					c.fprf.OnRead(int(e.a), int(e.n), e.cycle)
				}
			}
		}
		for _, e := range u.ibr {
			c.ibrC[e.unit].OnUse(e.a, e.b)
		}
		if c.cfg.Trace != nil {
			c.traceCommit(u)
		}
		c.instret++
		if u.actualNext == len(c.prog) {
			c.finished = true
		}
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCnt--
		if c.finished {
			return
		}
	}
}

// --- writeback --------------------------------------------------------

func (c *Core) writeback() {
	kept := c.inflight[:0]
	for _, idx := range c.inflight {
		u := &c.rob[idx]
		if u.squashed || u.st != uIssued {
			continue // squashed entries drop out of the in-flight set
		}
		if u.doneAt > c.cycle {
			kept = append(kept, idx)
			continue
		}
		u.st = uDone
		for _, d := range u.dsts {
			switch d.cls {
			case clsInt:
				c.intReady[d.phys] = true
			case clsFP:
				c.fpReady[d.phys] = true
			case clsFlag:
				c.flagRdy[d.phys] = true
			}
		}
		if u.v != nil && u.v.IsBranch && u.err == nil && u.actualNext != u.predNext {
			c.squashAfter(idx, u.actualNext)
			c.mispredicts++
			// Entries after the branch were removed; the in-flight list
			// is rebuilt below to drop squashed ones.
		}
	}
	c.inflight = kept
}

// squashAfter removes every µop younger than the branch at rob index
// bIdx, restores the rename map from the branch's snapshot, and
// redirects fetch.
func (c *Core) squashAfter(bIdx int, redirect int) {
	b := &c.rob[bIdx]
	// Walk from the youngest entry back to the branch.
	tail := (c.robHead + c.robCnt - 1) % len(c.rob)
	for c.robCnt > 0 {
		u := &c.rob[tail]
		if u.seq <= b.seq {
			break
		}
		if !u.squashed {
			for i := len(u.dsts) - 1; i >= 0; i-- {
				d := u.dsts[i]
				switch d.cls {
				case clsInt:
					c.intFree = append(c.intFree, d.phys)
				case clsFP:
					c.fpFree = append(c.fpFree, d.phys)
				case clsFlag:
					c.flagFree = append(c.flagFree, d.phys)
				}
			}
			if u.isLoad {
				c.nLoads--
			}
			if u.isStore {
				c.nStores--
			}
			u.squashed = true
		}
		c.robCnt--
		tail--
		if tail < 0 {
			tail += len(c.rob)
		}
	}
	if !b.snapValid {
		panic("uarch: mispredicted branch without RAT snapshot")
	}
	c.rat = b.snap
	// Drop squashed stores from the store queue.
	for len(c.sq) > 0 {
		last := c.sq[len(c.sq)-1]
		if c.rob[last].squashed {
			c.sq = c.sq[:len(c.sq)-1]
		} else {
			break
		}
	}
	// Drop squashed entries from the issue queue.
	kept := c.iq[:0]
	for _, idx := range c.iq {
		if !c.rob[idx].squashed {
			kept = append(kept, idx)
		}
	}
	c.iq = kept
	c.fq = c.fq[:0]
	c.fetchPC = redirect
	c.fetchStallUntil = c.cycle + uint64(c.cfg.MispredictPenalty)
}
