package uarch

import (
	"fmt"

	"harpocrates/internal/ace"
	"harpocrates/internal/arch"
	"harpocrates/internal/coverage"
	"harpocrates/internal/isa"
)

// Result is the outcome of one simulated run.
type Result struct {
	coverage.Snapshot

	// Crash is non-nil if the program crashed architecturally.
	Crash *arch.CrashError
	// Trap is the architectural exception the crash corresponds to
	// (isa.ExcNone when the run did not crash, or crashed without trap
	// semantics — wild branch, watchdog). A non-ExcNone trap is the
	// "detected by trap" channel: real hardware reports it through the
	// exception machinery with no software signature comparison.
	Trap isa.Exception
	// TimedOut reports that the watchdog fired (hang).
	TimedOut bool

	// Signature is the architectural output digest (registers + memory).
	// Undefined (zero) when Reconverged is set: a reconverged run stopped
	// mid-program, and its final state is by construction the golden
	// run's.
	Signature uint64

	// Reconverged reports that the run was cut short by delta
	// resimulation (Config.DeltaCompare): at cycle Cycles its entire
	// machine state matched the golden trajectory, so every cycle that
	// would have followed is identical to the golden run's and the
	// outcome is Masked by construction.
	Reconverged bool

	Branches    uint64
	Mispredicts uint64
	// Flushes counts pipeline squashes (every mispredicted branch that
	// reached execute flushes the younger ROB entries and redirects
	// fetch).
	Flushes     uint64
	CacheHits   uint64
	CacheMisses uint64
	Writebacks  uint64
	L2Hits      uint64
	L2Misses    uint64
	Prefetches  uint64

	// IRFIntervals / FPRFIntervals / L1DIntervals are the consumed-value
	// interval logs of the bit arrays, present when the corresponding
	// Record*Intervals config flag was set. The fault injector queries
	// them to prove transient flips masked without simulation.
	IRFIntervals  *ace.IntervalRecorder
	FPRFIntervals *ace.IntervalRecorder
	L1DIntervals  *ace.IntervalRecorder
}

// Clean reports a run that neither crashed nor hung.
func (r *Result) Clean() bool { return r.Crash == nil && !r.TimedOut }

// IPC returns the committed instructions per cycle (0 for an empty run).
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Detected compares a faulty run against a golden run: any deviation
// (different signature, crash, or hang) counts as detection (§II-C). A
// reconverged run finishes exactly like the golden run and is never
// detected.
func (r *Result) Detected(golden *Result) bool {
	if r.Reconverged {
		return false
	}
	if r.Crash != nil || r.TimedOut {
		return true
	}
	return r.Signature != golden.Signature
}

type fqEntry struct {
	pc       int
	predNext int
	poison   bool
	// mutated marks an instruction whose fetched bytes were corrupted by
	// an armed decoder fault but still decoded: rename substitutes the
	// core's decInst for the program image's instruction.
	mutated bool
	// bad marks fetched bytes that no longer decode at all: the entry
	// flows through the pipeline and raises #UD at execute.
	bad bool
}

// Core is the out-of-order core simulator.
type Core struct {
	cfg  Config
	prog []isa.Inst
	mem  *arch.Memory

	cache *dcache
	bp    *gshare
	irf   *ace.RegFileTracker
	// fprf tracks the FP register file as 2x64-bit lanes per entry
	// (pseudo-register 2p for the low lane, 2p+1 for the high).
	fprf *ace.RegFileTracker
	// recIRF / recFPRF log consumed-value intervals per PRF bit at access
	// time (cell = phys*64+bit; FP registers as two 64-bit lanes). The
	// L1D recorder lives on the dcache.
	recIRF  *ace.IntervalRecorder
	recFPRF *ace.IntervalRecorder
	ibrC    [coverage.NumStructures]coverage.IBRCounter

	intPRF   []uint64
	intReady []bool
	intFree  []uint16
	fpPRF    [][2]uint64
	fpReady  []bool
	fpFree   []uint16
	flagPRF  []isa.Flags
	flagRdy  []bool
	flagFree []uint16

	rat ratSnapshot

	rob     []uop
	robHead int
	robCnt  int

	iq       []int // rob indices, program order
	sq       []int // rob indices of in-flight stores, program order
	inflight []int // rob indices issued but not written back

	fq              []fqEntry
	fetchPC         int
	fetchStallUntil uint64

	// Decoder fault: while decArmed, the next fetched instruction's
	// encoded bytes get bit decBit flipped before decoding (one-shot;
	// consumed by the first fetch, wrong-path or not). decInst holds the
	// corrupted-but-decodable instruction for mutated fq/ROB entries.
	decArmed bool
	decBit   int
	decInst  isa.Inst

	cycle   uint64
	seq     uint64
	instret uint64

	nLoads, nStores int
	memPortsUsed    int
	unitUsed        [isa.NumUnits]int
	divBusyUntil    [2]uint64 // int div, fp div

	oldestUnexecStore uint64 // seq of oldest unexecuted store (or ^0)

	// progressed is set by any stage that does work in the current cycle;
	// the event-driven loop skips ahead only after a fully idle cycle.
	progressed bool
	// wbReadyAt is a lower bound on the earliest doneAt among in-flight
	// µops: writeback skips its scan entirely while wbReadyAt > cycle.
	// Stale-low values (after a squash) only cost a wasted scan.
	wbReadyAt uint64
	// skipped counts cycles the event-driven loop jumped over (perf
	// telemetry for tests/benchmarks; no architectural effect).
	skipped uint64

	// streamDigest folds every committed instruction (PC, next PC,
	// destination values, store writes) since the last trajectory point;
	// maintained only while delta trajectory recording or comparison is
	// active (deltaHashOn).
	streamDigest uint64
	deltaHashOn  bool
	// deltaNextRec is the next trajectory-record cycle (0 = not
	// recording); deltaCmpIdx indexes the next trajectory point (window
	// boundary); deltaCmpFrom is the first cycle comparison applies at.
	deltaNextRec uint64
	deltaCmpIdx  int
	deltaCmpFrom uint64
	// reconverged is set when a compare point fully matched: the run
	// stops and reports Masked-by-construction (see delta.go).
	reconverged bool
	// deltaScratch is free-list membership scratch for stateHash.
	deltaScratch []bool

	execState arch.State
	bus       execBus

	branches, mispredicts, flushes uint64

	crash    *arch.CrashError
	timedOut bool
	finished bool

	scratchSrc []archRef
	scratchDst []archRef
}

// NewCore builds a core for one run. init provides the initial
// architectural state; its memory must be a plain *arch.Memory and is
// used directly (clone beforehand if you need to keep it pristine).
func NewCore(prog []isa.Inst, init *arch.State, cfg Config) *Core {
	c := &Core{}
	c.init(prog, init, cfg)
	return c
}

// grow reslices s to length n, reusing its backing array when possible.
// Surviving elements are retained (so pooled ROB entries keep the
// capacity of their per-µop slices); callers reset whatever state needs
// resetting.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]T, n)
	copy(ns, s)
	return ns
}

// init (re)initializes the core for one run, reusing any allocations a
// pooled core carries from earlier runs: the PRF/ready arrays, free
// lists, ROB entries (and their per-µop slices), cache SRAM and line
// metadata, L2 tag arrays, predictor table and ACE trackers all survive,
// so repeated runs stop churning the garbage collector.
func (c *Core) init(prog []isa.Inst, init *arch.State, cfg Config) {
	mem, ok := init.Mem.(*arch.Memory)
	if !ok {
		panic("uarch: initial state must use a plain *arch.Memory")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200*uint64(len(prog)) + 1_000_000
	}
	c.cfg = cfg
	c.prog = prog
	c.mem = mem

	if c.bp != nil && len(c.bp.table) == 1<<uint(cfg.GshareBits) {
		c.bp.reset()
	} else {
		c.bp = newGshare(cfg.GshareBits)
	}

	c.intPRF = grow(c.intPRF, cfg.IntPRF)
	clear(c.intPRF)
	c.intReady = grow(c.intReady, cfg.IntPRF)
	clear(c.intReady)
	c.fpPRF = grow(c.fpPRF, cfg.FPPRF)
	clear(c.fpPRF)
	c.fpReady = grow(c.fpReady, cfg.FPPRF)
	clear(c.fpReady)
	c.flagPRF = grow(c.flagPRF, cfg.FlagPRF)
	clear(c.flagPRF)
	c.flagRdy = grow(c.flagRdy, cfg.FlagPRF)
	clear(c.flagRdy)
	c.intFree = c.intFree[:0]
	c.fpFree = c.fpFree[:0]
	c.flagFree = c.flagFree[:0]
	c.rat = ratSnapshot{}

	c.rob = grow(c.rob, cfg.ROBSize)
	c.robHead, c.robCnt = 0, 0
	c.iq = c.iq[:0]
	c.sq = c.sq[:0]
	c.inflight = c.inflight[:0]
	if cap(c.fq) < cfg.FetchQueue {
		c.fq = make([]fqEntry, 0, cfg.FetchQueue)
	} else {
		c.fq = c.fq[:0]
	}
	c.fetchPC = 0
	c.fetchStallUntil = 0
	c.decArmed = false
	c.decBit = 0
	c.decInst = isa.Inst{}
	c.cycle, c.seq, c.instret = 0, 0, 0
	c.nLoads, c.nStores = 0, 0
	c.memPortsUsed = 0
	c.unitUsed = [isa.NumUnits]int{}
	c.divBusyUntil = [2]uint64{}
	c.oldestUnexecStore = 0
	c.progressed = false
	c.wbReadyAt = 0
	c.skipped = 0
	c.streamDigest = deltaOffset
	c.armDelta()
	c.execState = arch.State{NondetSalt: cfg.NondetSalt}
	c.bus = execBus{c: c}
	c.branches, c.mispredicts, c.flushes = 0, 0, 0
	c.crash = nil
	c.timedOut = false
	c.finished = false
	c.ibrC = [coverage.NumStructures]coverage.IBRCounter{}

	var l1dTracker *ace.CacheTracker
	if cfg.TrackL1D {
		if c.cache != nil && c.cache.tracker != nil && c.cache.tracker.NumBytes() == cfg.L1D.SizeBytes {
			l1dTracker = c.cache.tracker
			l1dTracker.Reset()
		} else {
			l1dTracker = ace.NewCacheTracker(cfg.L1D.SizeBytes)
		}
	}
	// Interval recorders escape through Result, so a pooled core must
	// never reuse them: one per run from the recorder pool (callers that
	// finish with a Result hand them back via ace.ReleaseIntervalRecorder;
	// callers that keep the Result simply never release).
	var recL1D *ace.IntervalRecorder
	if cfg.RecordL1DIntervals {
		recL1D = ace.GetIntervalRecorder(cfg.L1D.SizeBytes)
	}
	c.cache = initDCache(c.cache, cfg, mem, l1dTracker, recL1D)
	if cfg.TrackIRF {
		if c.irf != nil && c.irf.NumRegs() == cfg.IntPRF {
			c.irf.Reset()
		} else {
			c.irf = ace.NewRegFileTracker(cfg.IntPRF)
		}
		c.irf.IgnoreWidths = cfg.ACEIgnoreWidths
	} else {
		c.irf = nil
	}
	if cfg.TrackFPRF {
		if c.fprf != nil && c.fprf.NumRegs() == 2*cfg.FPPRF {
			c.fprf.Reset()
		} else {
			c.fprf = ace.NewRegFileTracker(2 * cfg.FPPRF)
		}
	} else {
		c.fprf = nil
	}
	c.recIRF, c.recFPRF = nil, nil
	if cfg.RecordIRFIntervals {
		c.recIRF = ace.GetIntervalRecorder(cfg.IntPRF * 64)
	}
	if cfg.RecordFPRFIntervals {
		c.recFPRF = ace.GetIntervalRecorder(2 * cfg.FPPRF * 64)
	}

	// Initial rename map: arch register r -> physical r.
	for r := 0; r < isa.NumGPR; r++ {
		c.rat.intRAT[r] = uint16(r)
		c.intPRF[r] = init.GPR[r]
		c.intReady[r] = true
		if c.irf != nil {
			c.irf.OnWrite(r, 0)
		}
	}
	for r := isa.NumGPR; r < cfg.IntPRF; r++ {
		c.intFree = append(c.intFree, uint16(r))
	}
	for x := 0; x < isa.NumXMM; x++ {
		c.rat.fpRAT[x] = uint16(x)
		c.fpPRF[x] = init.XMM[x]
		c.fpReady[x] = true
		if c.fprf != nil {
			c.fprf.OnWrite(2*x, 0)
			c.fprf.OnWrite(2*x+1, 0)
		}
	}
	for x := isa.NumXMM; x < cfg.FPPRF; x++ {
		c.fpFree = append(c.fpFree, uint16(x))
	}
	c.rat.flagRAT = 0
	c.flagPRF[0] = init.Flags
	c.flagRdy[0] = true
	for f := 1; f < cfg.FlagPRF; f++ {
		c.flagFree = append(c.flagFree, uint16(f))
	}
}

// Cycle returns the current cycle (for injection hooks).
func (c *Core) Cycle() uint64 { return c.cycle }

// SkippedCycles returns how many cycles the event-driven run loop jumped
// over instead of simulating (0 under the naive loop). Telemetry only —
// deliberately not part of Result, so naive and skipping results stay
// comparable field-for-field.
func (c *Core) SkippedCycles() uint64 { return c.skipped }

// NumIntPRF returns the physical integer register file size.
func (c *Core) NumIntPRF() int { return c.cfg.IntPRF }

// FlipIntPRFBit flips one bit of a physical integer register (transient
// fault injection).
func (c *Core) FlipIntPRFBit(reg, bit int) {
	c.intPRF[reg] ^= 1 << uint(bit)
}

// ForceIntPRFBit forces one bit of a physical integer register
// (intermittent stuck-at).
func (c *Core) ForceIntPRFBit(reg, bit int, val bool) {
	if val {
		c.intPRF[reg] |= 1 << uint(bit)
	} else {
		c.intPRF[reg] &^= 1 << uint(bit)
	}
}

// NumFPPRF returns the FP physical register file size.
func (c *Core) NumFPPRF() int { return c.cfg.FPPRF }

// FlipFPPRFBit flips one bit of a 128-bit FP physical register.
func (c *Core) FlipFPPRFBit(reg, bit int) {
	c.fpPRF[reg][bit/64] ^= 1 << uint(bit%64)
}

// ForceFPPRFBit forces one bit of a FP physical register.
func (c *Core) ForceFPPRFBit(reg, bit int, val bool) {
	if val {
		c.fpPRF[reg][bit/64] |= 1 << uint(bit%64)
	} else {
		c.fpPRF[reg][bit/64] &^= 1 << uint(bit%64)
	}
}

// NumCacheBits returns the number of data bits in the L1D SRAM.
func (c *Core) NumCacheBits() int { return c.cache.NumDataBits() }

// FlipCacheBit flips one bit of the L1D data SRAM.
func (c *Core) FlipCacheBit(bit int) { c.cache.FlipBit(bit) }

// ForceCacheBit forces one bit of the L1D data SRAM.
func (c *Core) ForceCacheBit(bit int, val bool) {
	mask := byte(1) << uint(bit%8)
	if val {
		c.cache.data[bit/8] |= mask
	} else {
		c.cache.data[bit/8] &^= mask
	}
}

// ArmDecoderFault arms a one-shot fault on the instruction-fetch path:
// the next instruction fetched (wrong-path or not) has bit `bit` of its
// encoded byte representation flipped before decoding. Depending on
// where the flip lands the instruction may decode to a different
// operation or operand (SDC/crash/trap territory), fail to decode at
// all (#UD trap), or decode identically in a don't-care bit (masked).
// The bit index is reduced modulo the actual encoded length at fetch.
func (c *Core) ArmDecoderFault(bit int) {
	c.decArmed = true
	c.decBit = bit
}

// NumGshareStateBits returns the number of state bits in the branch
// predictor's pattern-history table (2 bits per counter).
func (c *Core) NumGshareStateBits() int { return 2 * len(c.bp.table) }

// FlipGshareBit flips one bit of a 2-bit gshare counter. The predictor
// is purely speculative state, so the flip can only perturb timing —
// architectural results must stay byte-identical (asserted by tests).
func (c *Core) FlipGshareBit(bit int) {
	c.bp.table[(bit/2)%len(c.bp.table)] ^= 1 << uint(bit%2)
}

// NumL2Tags returns the number of tag entries in the L2 (0 without L2).
func (c *Core) NumL2Tags() int {
	if c.cache.l2 == nil {
		return 0
	}
	return len(c.cache.l2.tag)
}

// FlipL2TagBit flips one bit of an L2 tag entry. The L2 is a tag-only
// timing model (data always comes from backing memory), so like gshare
// faults this perturbs hit/miss latency at most; a flip in an invalid
// entry's tag is dead state.
func (c *Core) FlipL2TagBit(entry, bit int) {
	if c.cache.l2 == nil {
		return
	}
	c.cache.l2.tag[entry%len(c.cache.l2.tag)] ^= 1 << uint(bit%64)
}

// FlipStoreBufferBit flips one bit of a pending store-buffer entry:
// entry selects (modulo occupancy) an in-flight store in the store
// queue, and bit addresses its captured write as a 128-bit record —
// bits 0..63 hit the data word, 64..127 the target address. Flipping
// the address can redirect the store outside the image (#PF trap at
// commit) or silently corrupt another location (SDC). Stores not yet
// executed have no captured write; the flip is then a no-op (the value
// has not entered the buffer).
func (c *Core) FlipStoreBufferBit(entry, bit int) {
	if len(c.sq) == 0 {
		return
	}
	u := &c.rob[c.sq[entry%len(c.sq)]]
	if u.squashed || len(u.writes) == 0 {
		return
	}
	w := &u.writes[(bit/128)%len(u.writes)]
	if b := bit % 128; b < 64 {
		w.data ^= 1 << uint(b)
	} else {
		w.addr ^= 1 << uint(b-64)
	}
}

// FlipROBNextBit flips one bit of a ROB entry's next-PC metadata: entry
// selects (modulo occupancy) a live ROB µop; unexecuted entries take
// the flip in their predicted next PC (possibly triggering a spurious
// squash at writeback), executed ones in their resolved next PC
// (possibly redirecting retirement off the program image — a
// bad-branch crash — or finishing the program early). Bits are reduced
// modulo 31 to keep the PC an int on 32-bit hosts.
func (c *Core) FlipROBNextBit(entry, bit int) {
	if c.robCnt == 0 {
		return
	}
	u := &c.rob[(c.robHead+entry%c.robCnt)%len(c.rob)]
	if u.squashed {
		return
	}
	mask := 1 << uint(bit%31)
	if u.st == uWaiting {
		u.predNext ^= mask
	} else {
		u.actualNext ^= mask
	}
}

// Run simulates to completion and returns the result. With no opaque
// OnCycle hook (and NoCycleSkip unset) the event-driven loop is used:
// fully stalled cycles are jumped over instead of ticked, with results
// bit-identical to the naive loop (see run.go).
func (c *Core) Run() *Result {
	if c.cfg.OnCycle != nil || c.cfg.NoCycleSkip {
		c.runNaive()
	} else {
		c.runSkipping()
	}
	return c.buildResult()
}

func (c *Core) buildResult() *Result {
	var sig uint64
	// A reconverged run stopped mid-program: its cache stays unflushed
	// and its signature undefined — the final state is by construction
	// the golden run's (delta.go).
	if !c.reconverged {
		if err := c.cache.flush(c.cycle); err != nil && c.crash == nil {
			c.crash = err
		}
		// The final architectural state is itself a consumer: physical
		// registers still mapped at the end of the run feed the output
		// signature, so their last values must be logged as read or the
		// pre-classifier would wrongly prove end-of-run flips masked. RSP
		// is excluded from the signature, so it is soundly skipped.
		if c.recIRF != nil {
			for r := 0; r < isa.NumGPR; r++ {
				if isa.Reg(r) == isa.RSP {
					continue
				}
				c.recIRF.ReadRange(int(c.rat.intRAT[r])*64, 64, c.cycle)
			}
		}
		if c.recFPRF != nil {
			for x := 0; x < isa.NumXMM; x++ {
				c.recFPRF.ReadRange(2*int(c.rat.fpRAT[x])*64, 128, c.cycle)
			}
		}
		fs := arch.State{Mem: c.mem}
		for r := 0; r < isa.NumGPR; r++ {
			fs.GPR[r] = c.intPRF[c.rat.intRAT[r]]
		}
		for x := 0; x < isa.NumXMM; x++ {
			fs.XMM[x] = c.fpPRF[c.rat.fpRAT[x]]
		}
		fs.Flags = c.flagPRF[c.rat.flagRAT]
		sig = fs.Signature()
	}

	r := &Result{
		Crash:       c.crash,
		Trap:        c.crash.Exception(),
		TimedOut:    c.timedOut,
		Signature:   sig,
		Reconverged: c.reconverged,
		Branches:    c.branches,
		Mispredicts: c.mispredicts,
		Flushes:     c.flushes,
		CacheHits:   c.cache.hits,
		CacheMisses: c.cache.misses,
		Writebacks:  c.cache.writebacks,
	}
	if c.cache.l2 != nil {
		r.L2Hits = c.cache.l2.hits
		r.L2Misses = c.cache.l2.misses
		r.Prefetches = c.cache.l2.prefetches
	}
	r.IRFIntervals = c.recIRF
	r.FPRFIntervals = c.recFPRF
	r.L1DIntervals = c.cache.rec
	r.Cycles = c.cycle
	r.Instructions = c.instret
	if c.irf != nil {
		r.IRFVuln = c.irf.Vulnerability(c.cycle)
	}
	if c.fprf != nil {
		r.FPRFVuln = c.fprf.Vulnerability(c.cycle)
	}
	if c.cache.tracker != nil {
		r.L1DVuln = c.cache.tracker.Vulnerability(c.cycle)
	}
	for s := coverage.Structure(0); s < coverage.NumStructures; s++ {
		r.IBR[s] = c.ibrC[s].Value(c.cycle)
		r.UnitUses[s] = c.ibrC[s].Uses
	}
	return r
}

// traceCommit writes one retired-instruction line to the trace sink.
func (c *Core) traceCommit(u *uop) {
	text := "(poison)"
	switch {
	case u.bad:
		text = "(bad-decode)"
	case u.inst != nil:
		text = u.inst.String()
	}
	fmt.Fprintf(c.cfg.Trace, "cyc=%-8d seq=%-6d pc=%-6d issued@%-8d %s\n",
		c.cycle, u.seq, u.pc, u.doneAt-uint64(u.v.Latency+u.memLat), text)
}

// --- commit -----------------------------------------------------------

func (c *Core) commit() {
	for k := 0; k < c.cfg.CommitWidth && c.robCnt > 0; k++ {
		u := &c.rob[c.robHead]
		if u.st != uDone || u.doneAt > c.cycle {
			return
		}
		c.progressed = true
		if u.err != nil {
			err := *u.err
			err.PC = u.pc
			c.crash = &err
			return
		}
		if u.isStore {
			for _, w := range u.writes {
				var buf [8]byte
				for i := 0; i < int(w.size); i++ {
					buf[i] = byte(w.data >> (8 * uint(i)))
				}
				if _, err := c.cache.access(w.addr, int(w.size), true, buf[:w.size], c.cycle, nil); err != nil {
					e := *err
					e.PC = u.pc
					c.crash = &e
					return
				}
			}
			c.nStores--
			// Pop from the store queue (it must be the oldest entry).
			if len(c.sq) > 0 && c.sq[0] == c.robHead {
				c.sq = c.sq[1:]
			}
		}
		if u.isLoad {
			c.nLoads--
		}
		if u.v != nil && u.v.IsBranch {
			c.bp.update(u.pc, u.actualNext != u.pc+1)
			c.branches++
		}
		if c.deltaHashOn {
			c.foldCommit(u)
		}
		for _, d := range u.dsts {
			switch d.cls {
			case clsInt:
				c.intFree = append(c.intFree, d.old)
				if c.irf != nil {
					c.irf.OnFree(int(d.old), c.cycle)
				}
			case clsFP:
				c.fpFree = append(c.fpFree, d.old)
				if c.fprf != nil {
					c.fprf.OnFree(2*int(d.old), c.cycle)
					c.fprf.OnFree(2*int(d.old)+1, c.cycle)
				}
			case clsFlag:
				c.flagFree = append(c.flagFree, d.old)
			}
		}
		for _, e := range u.events {
			switch e.kind {
			case evPRFWrite:
				if c.irf != nil {
					c.irf.OnWrite(int(e.a), e.cycle)
				}
			case evPRFRead:
				if c.irf != nil {
					c.irf.OnRead(int(e.a), int(e.n), e.cycle)
				}
			case evCacheRead:
				if c.cache.tracker != nil {
					c.cache.tracker.OnRead(int(e.a), int(e.n), e.cycle)
				}
			case evFPRFWrite:
				if c.fprf != nil {
					c.fprf.OnWrite(int(e.a), e.cycle)
				}
			case evFPRFRead:
				if c.fprf != nil {
					c.fprf.OnRead(int(e.a), int(e.n), e.cycle)
				}
			}
		}
		for _, e := range u.ibr {
			c.ibrC[e.unit].OnUse(e.a, e.b)
		}
		if c.cfg.Trace != nil {
			c.traceCommit(u)
		}
		c.instret++
		if u.actualNext == len(c.prog) {
			c.finished = true
		}
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCnt--
		if c.finished {
			return
		}
	}
}

// --- writeback --------------------------------------------------------

func (c *Core) writeback() {
	if c.wbReadyAt > c.cycle {
		return // nothing in flight can complete yet: skip the scan
	}
	minDone := ^uint64(0)
	kept := c.inflight[:0]
	for _, idx := range c.inflight {
		u := &c.rob[idx]
		if u.squashed || u.st != uIssued {
			continue // squashed entries drop out of the in-flight set
		}
		if u.doneAt > c.cycle {
			if u.doneAt < minDone {
				minDone = u.doneAt
			}
			kept = append(kept, idx)
			continue
		}
		c.progressed = true
		u.st = uDone
		for _, d := range u.dsts {
			switch d.cls {
			case clsInt:
				c.intReady[d.phys] = true
			case clsFP:
				c.fpReady[d.phys] = true
			case clsFlag:
				c.flagRdy[d.phys] = true
			}
		}
		if u.v != nil && u.v.IsBranch && u.err == nil && u.actualNext != u.predNext {
			c.squashAfter(idx, u.actualNext)
			c.mispredicts++
			// Entries after the branch were removed; the in-flight list
			// is rebuilt below to drop squashed ones.
		}
	}
	c.inflight = kept
	// minDone covers entries kept before any squash this cycle; a squash
	// can only leave it stale-low (a wasted future scan), never stale-
	// high, so the early-out above stays conservative.
	c.wbReadyAt = minDone
}

// squashAfter removes every µop younger than the branch at rob index
// bIdx, restores the rename map from the branch's snapshot, and
// redirects fetch.
func (c *Core) squashAfter(bIdx int, redirect int) {
	c.flushes++
	b := &c.rob[bIdx]
	// Walk from the youngest entry back to the branch.
	tail := (c.robHead + c.robCnt - 1) % len(c.rob)
	for c.robCnt > 0 {
		u := &c.rob[tail]
		if u.seq <= b.seq {
			break
		}
		if !u.squashed {
			for i := len(u.dsts) - 1; i >= 0; i-- {
				d := u.dsts[i]
				switch d.cls {
				case clsInt:
					c.intFree = append(c.intFree, d.phys)
				case clsFP:
					c.fpFree = append(c.fpFree, d.phys)
				case clsFlag:
					c.flagFree = append(c.flagFree, d.phys)
				}
			}
			if u.isLoad {
				c.nLoads--
			}
			if u.isStore {
				c.nStores--
			}
			u.squashed = true
		}
		c.robCnt--
		tail--
		if tail < 0 {
			tail += len(c.rob)
		}
	}
	if !b.snapValid {
		panic("uarch: mispredicted branch without RAT snapshot")
	}
	c.rat = b.snap
	// Drop squashed stores from the store queue.
	for len(c.sq) > 0 {
		last := c.sq[len(c.sq)-1]
		if c.rob[last].squashed {
			c.sq = c.sq[:len(c.sq)-1]
		} else {
			break
		}
	}
	// Drop squashed entries from the issue queue.
	kept := c.iq[:0]
	for _, idx := range c.iq {
		if !c.rob[idx].squashed {
			kept = append(kept, idx)
		}
	}
	c.iq = kept
	c.fq = c.fq[:0]
	c.fetchPC = redirect
	c.fetchStallUntil = c.cycle + uint64(c.cfg.MispredictPenalty)
}
