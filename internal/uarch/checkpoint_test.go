package uarch

import (
	"math/rand/v2"
	"testing"
)

// resultsEqual compares every scalar field of two results (the interval
// recorder pointers are per-run instrumentation and excluded).
func resultsEqual(a, b *Result) bool {
	return a.Signature == b.Signature &&
		a.TimedOut == b.TimedOut &&
		(a.Crash == nil) == (b.Crash == nil) &&
		a.Cycles == b.Cycles &&
		a.Instructions == b.Instructions &&
		a.Branches == b.Branches &&
		a.Mispredicts == b.Mispredicts &&
		a.CacheHits == b.CacheHits &&
		a.CacheMisses == b.CacheMisses &&
		a.Writebacks == b.Writebacks &&
		a.L2Hits == b.L2Hits &&
		a.L2Misses == b.L2Misses &&
		a.Prefetches == b.Prefetches &&
		a.IRFVuln == b.IRFVuln &&
		a.L1DVuln == b.L1DVuln &&
		a.FPRFVuln == b.FPRFVuln &&
		a.IBR == b.IBR &&
		a.UnitUses == b.UnitUses
}

// TestCheckpointResumeBitIdentical runs a program once uninstrumented,
// then again taking checkpoints mid-run, resumes from each checkpoint,
// and requires every observable result field — signature, cycle and
// instruction counts, cache/predictor statistics, ACE vulnerability, IBR
// — to be bit-identical to the straight-through run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	prog := randomProgram(rng, 400, false)
	cfg := DefaultConfig()
	cfg.TrackIRF = true
	cfg.TrackL1D = true
	cfg.TrackFPRF = true
	cfg.TrackIBR = true

	ref := Run(prog, newInitState(t, 3), cfg)
	if ref.Crash != nil || ref.TimedOut {
		t.Fatalf("reference run not clean: %v timedOut=%v", ref.Crash, ref.TimedOut)
	}
	if ref.Cycles < 40 {
		t.Fatalf("program too short for checkpointing: %d cycles", ref.Cycles)
	}

	ckCfg := cfg
	var cks []*Checkpoint
	interval := ref.Cycles / 5
	ckCfg.OnCycle = func(c *Core, cyc uint64) {
		if cyc > 0 && cyc%interval == 0 {
			cks = append(cks, c.Checkpoint())
		}
	}
	instrumented := Run(prog, newInitState(t, 3), ckCfg)
	if !resultsEqual(ref, instrumented) {
		t.Fatalf("taking checkpoints perturbed the run:\nref:  %+v\ninst: %+v", ref.Snapshot, instrumented.Snapshot)
	}
	if len(cks) < 3 {
		t.Fatalf("expected >=3 checkpoints, got %d", len(cks))
	}

	for i, ck := range cks {
		if ck.Cycle() != uint64(i+1)*interval {
			t.Fatalf("checkpoint %d at cycle %d, want %d", i, ck.Cycle(), uint64(i+1)*interval)
		}
		resumeCfg := cfg
		resumeCfg.OnCycle = nil
		got := RunFromCheckpoint(ck, resumeCfg)
		if !resultsEqual(ref, got) {
			t.Errorf("resume from checkpoint %d (cycle %d) diverged:\nref: sig=%#x cyc=%d instr=%d vuln=%v/%v/%v\ngot: sig=%#x cyc=%d instr=%d vuln=%v/%v/%v",
				i, ck.Cycle(),
				ref.Signature, ref.Cycles, ref.Instructions, ref.IRFVuln, ref.L1DVuln, ref.FPRFVuln,
				got.Signature, got.Cycles, got.Instructions, got.IRFVuln, got.L1DVuln, got.FPRFVuln)
		}
	}

	// A checkpoint stays reusable: a second restore from the same
	// snapshot must agree with the first.
	again := RunFromCheckpoint(cks[0], cfg)
	if !resultsEqual(ref, again) {
		t.Fatal("second restore from the same checkpoint diverged")
	}
}

// TestCheckpointResumeWithInjection checks the fast-forward contract the
// injector relies on: a flip applied at cycle T >= ck.Cycle() through a
// resumed run gives the same outcome as applying it to a run from cycle
// 0 — including a flip at exactly the checkpoint cycle (OnCycle re-fires
// for the re-entered cycle).
func TestCheckpointResumeWithInjection(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	prog := randomProgram(rng, 300, false)
	cfg := DefaultConfig()

	ref := Run(prog, newInitState(t, 5), cfg)
	if ref.Crash != nil || ref.TimedOut {
		t.Fatalf("reference run not clean: %v", ref.Crash)
	}

	ckCfg := cfg
	var ck *Checkpoint
	ckCycle := ref.Cycles / 2
	ckCfg.OnCycle = func(c *Core, cyc uint64) {
		if cyc == ckCycle && ck == nil {
			ck = c.Checkpoint()
		}
	}
	Run(prog, newInitState(t, 5), ckCfg)
	if ck == nil {
		t.Fatal("no checkpoint taken")
	}

	for _, flipCycle := range []uint64{ckCycle, ckCycle + 1, ckCycle + ref.Cycles/4} {
		for reg := 0; reg < 16; reg += 5 {
			for _, bit := range []int{0, 17, 63} {
				inj := cfg
				fc, fr, fb := flipCycle, reg, bit
				inj.OnCycle = func(c *Core, cyc uint64) {
					if cyc == fc {
						c.FlipIntPRFBit(fr, fb)
					}
				}
				full := Run(prog, newInitState(t, 5), inj)
				fast := RunFromCheckpoint(ck, inj)
				if !resultsEqual(full, fast) {
					t.Fatalf("flip (reg=%d bit=%d cycle=%d): full sig=%#x crash=%v cyc=%d; resumed sig=%#x crash=%v cyc=%d",
						fr, fb, fc, full.Signature, full.Crash, full.Cycles,
						fast.Signature, fast.Crash, fast.Cycles)
				}
			}
		}
	}
}

// TestPooledRunDeterministic re-runs the same program many times through
// the pooled Run path (forcing pool reuse) and requires bit-identical
// results, tracking enabled and disabled.
func TestPooledRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	prog := randomProgram(rng, 350, false)
	for _, track := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.TrackIRF = track
		cfg.TrackL1D = track
		cfg.TrackFPRF = track
		cfg.TrackIBR = track
		ref := Run(prog, newInitState(t, 9), cfg)
		for i := 0; i < 8; i++ {
			got := Run(prog, newInitState(t, 9), cfg)
			if !resultsEqual(ref, got) {
				t.Fatalf("track=%v: pooled run %d diverged (sig %#x vs %#x, cycles %d vs %d)",
					track, i, ref.Signature, got.Signature, ref.Cycles, got.Cycles)
			}
		}
		// Alternating a different program through the pool must not leak
		// state into the next run of the original.
		other := randomProgram(rng, 120, false)
		Run(other, newInitState(t, 77), cfg)
		got := Run(prog, newInitState(t, 9), cfg)
		if !resultsEqual(ref, got) {
			t.Fatalf("track=%v: run after pool cross-use diverged", track)
		}
	}
}
