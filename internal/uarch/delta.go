package uarch

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"harpocrates/internal/isa"
)

// Delta resimulation: reconvergence-based early termination of faulty
// runs (DESIGN.md §4.12).
//
// The instrumented golden run records a DeltaTrajectory — a sparse
// sequence of (cycle, instret, committed-stream digest, machine-state
// hash) points taken every Interval cycles. A faulty run carrying the
// same trajectory as Config.DeltaCompare checks itself against the next
// point whenever its cycle counter reaches one (the points are wake
// candidates of the event-driven loop, so the check piggybacks on the
// PR 5 schedule instead of forcing per-cycle work): if the committed
// instruction stream, retire count and full machine-state hash all match
// the golden run's at the same cycle, every cycle that follows is — by
// determinism of the simulator — identical to the golden run's, so the
// run is Masked by construction and stops immediately.
//
// Soundness leans on the state hash covering *everything* that can
// influence future behaviour (PRF values and ready bits of live
// registers, free-list order, rename maps, the live ROB window with
// per-µop pipeline state, issue/store/in-flight queues, fetch queue and
// stall timers, branch predictor, L1D lines with LRU timestamps, L2
// tags, the architectural memory image, the nondeterminism counter) and
// on excluding only state that provably cannot: values of free physical
// registers (no reader can hold a freed mapping — any µop that renamed
// against it must have committed before the overwriter freed it),
// recomputed-per-cycle scratch (oldestUnexecStore, unit/port counters),
// scan lower bounds (wbReadyAt), expired timestamps (normalized to 0),
// per-µop fields that are dead in the µop's current pipeline state, and
// pure telemetry (hit/miss counters, ACE buffers, skipped-cycle counts).
// Sequence numbers are hashed relative to the core's counter so a faulty
// run that renamed extra wrong-path µops before squashing back onto the
// golden trajectory still matches.
//
// The comparison is staged cheap-to-expensive: the per-commit stream
// digest (pc, next pc, destination values, store writes folded at
// retirement) and the retire count are compared first — one branch for
// runs that have visibly diverged — and the full state scan runs only
// when both match. A masked run therefore pays one or two state scans;
// a detected run pays eight bytes of comparison per point.
//
// The stream digest is *windowed*, not cumulative: it resets at every
// trajectory point, so a point's Stream covers only the commits since
// the previous point. This matters for the most important win class —
// a corrupted value that is consumed, committed and later overwritten
// (logically masked). A cumulative digest would remember the corrupted
// commit forever and block reconvergence; the windowed digest forgets it
// as soon as a window closes with identical commits, costing at most the
// one point whose window straddles the last corrupted commit. A
// comparing run resets its digest at every point cycle it passes —
// including points before its quiesce cycle, which are never compared —
// so its windows stay aligned with the golden run's.

// DefaultDeltaInterval is the default spacing (in cycles) between
// trajectory compare points.
const DefaultDeltaInterval = 512

// DeltaPoint is one golden-run trajectory sample: start-of-cycle state
// at Cycle, before that cycle's pipeline stages run.
type DeltaPoint struct {
	Cycle   uint64
	Instret uint64
	Stream  uint64 // committed-stream digest of this point's window
	State   uint64 // full machine-state hash at this cycle
}

// DeltaTrajectory is the golden run's recorded compare-point sequence.
// Recording appends points in cycle order; comparing runs read it
// concurrently (the injector records once, then shares it read-only
// across worker goroutines).
type DeltaTrajectory struct {
	// Interval is the spacing between points in cycles (0 on a recording
	// config means DefaultDeltaInterval).
	Interval uint64
	Points   []DeltaPoint
}

// deltaTrajPool recycles trajectories across campaigns, mirroring the
// interval-recorder pool: the points slice is the only allocation and is
// reused at full capacity.
var deltaTrajPool sync.Pool

// liveDeltaTrajectories counts Get minus Release — the pool-hygiene
// leak detector used by tests.
var liveDeltaTrajectories atomic.Int64

// GetDeltaTrajectory returns an empty trajectory with the given interval
// (0 means DefaultDeltaInterval), reusing pooled storage when available.
func GetDeltaTrajectory(interval uint64) *DeltaTrajectory {
	if interval == 0 {
		interval = DefaultDeltaInterval
	}
	liveDeltaTrajectories.Add(1)
	if v := deltaTrajPool.Get(); v != nil {
		t := v.(*DeltaTrajectory)
		t.Interval = interval
		t.Points = t.Points[:0]
		return t
	}
	return &DeltaTrajectory{Interval: interval}
}

// ReleaseDeltaTrajectory returns a trajectory to the pool (nil is a
// no-op). The caller must not retain references to it afterwards.
func ReleaseDeltaTrajectory(t *DeltaTrajectory) {
	if t == nil {
		return
	}
	liveDeltaTrajectories.Add(-1)
	deltaTrajPool.Put(t)
}

// LiveDeltaTrajectories returns the number of trajectories handed out
// and not yet released (leak-test hook).
func LiveDeltaTrajectories() int64 { return liveDeltaTrajectories.Load() }

// FNV-1a parameters, folded a word at a time (the same scheme as
// stats.Mix64; duplicated here to keep uarch dependency-free).
const (
	deltaOffset uint64 = 14695981039346656037
	deltaPrime  uint64 = 1099511628211
)

func deltaMix(h, v uint64) uint64 { return (h ^ v) * deltaPrime }

func deltaMixBytes(h uint64, b []byte) uint64 {
	for len(b) >= 8 {
		h = deltaMix(h, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * uint(i))
		}
		h = deltaMix(h, tail)
	}
	return h
}

// armDelta (re)initializes the per-run delta state from the config:
// the next record cycle for a recording run, and for a comparing run the
// first trajectory point ahead of the current cycle (deltaCmpIdx, which
// paces both window resets and comparisons) plus the first cycle at
// which comparison is meaningful (deltaCmpFrom). Points strictly before
// the quiesce cycle reset the digest window but are never compared —
// before the fault has finished manifesting, matching the golden hash
// means nothing (worse: for a not-yet-fired one-shot event it would
// "reconverge" a run whose fault never fired). Called at the end of init
// and of RestoreFrom (c.cycle is 0 or the checkpoint cycle
// respectively).
func (c *Core) armDelta() {
	c.reconverged = false
	c.deltaNextRec = 0
	c.deltaCmpIdx = 0
	c.deltaCmpFrom = 0
	c.deltaHashOn = c.cfg.DeltaRecord != nil || c.cfg.DeltaCompare != nil
	if rec := c.cfg.DeltaRecord; rec != nil {
		if rec.Interval == 0 {
			rec.Interval = DefaultDeltaInterval
		}
		c.deltaNextRec = (c.cycle/rec.Interval + 1) * rec.Interval
	}
	if cmp := c.cfg.DeltaCompare; cmp != nil {
		// A point at exactly the resume cycle was already processed by the
		// recording run before the checkpoint was captured (deltaTick runs
		// before the OnCycle hook), so its window reset is in the restored
		// digest; start strictly after.
		for c.deltaCmpIdx < len(cmp.Points) && cmp.Points[c.deltaCmpIdx].Cycle <= c.cycle {
			c.deltaCmpIdx++
		}
		c.deltaCmpFrom = max(c.cfg.DeltaQuiesce, c.cycle+1)
	}
}

// foldCommit folds one retired instruction into the committed-stream
// digest: its PC, the next PC it chose, the values it left in its
// destination registers and the stores it performed. Called from commit
// after the µop's effects are applied, so a corrupted value that reaches
// architectural state diverges the digest at the very instruction that
// committed it.
func (c *Core) foldCommit(u *uop) {
	d := c.streamDigest
	d = deltaMix(d, uint64(int64(u.pc)))
	d = deltaMix(d, uint64(int64(u.actualNext)))
	for _, dst := range u.dsts {
		switch dst.cls {
		case clsInt:
			d = deltaMix(d, c.intPRF[dst.phys])
		case clsFP:
			v := c.fpPRF[dst.phys]
			d = deltaMix(d, v[0])
			d = deltaMix(d, v[1])
		case clsFlag:
			d = deltaMix(d, uint64(c.flagPRF[dst.phys]))
		}
	}
	for _, w := range u.writes {
		d = deltaMix(d, w.addr)
		d = deltaMix(d, w.data)
	}
	c.streamDigest = d
}

// deltaTick runs the trajectory instrumentation for the current cycle —
// called at the top of both run loops, before the cycle's events fire
// and stages run, so a recorded point and a compared point see the same
// start-of-cycle state. Returns true when the run has reconverged with
// the golden trajectory and must stop.
func (c *Core) deltaTick() bool {
	if rec := c.cfg.DeltaRecord; rec != nil && c.cycle == c.deltaNextRec {
		rec.Points = append(rec.Points, DeltaPoint{
			Cycle:   c.cycle,
			Instret: c.instret,
			Stream:  c.streamDigest,
			State:   c.stateHash(),
		})
		c.deltaNextRec += rec.Interval
		c.streamDigest = deltaOffset // close the window
	}
	cmp := c.cfg.DeltaCompare
	if cmp == nil {
		return false
	}
	// Both loops visit every trajectory point exactly (they are wake
	// candidates); the catch-up scan is defensive only.
	for c.deltaCmpIdx < len(cmp.Points) && cmp.Points[c.deltaCmpIdx].Cycle < c.cycle {
		c.deltaCmpIdx++
	}
	if c.deltaCmpIdx >= len(cmp.Points) {
		return false
	}
	p := &cmp.Points[c.deltaCmpIdx]
	if p.Cycle != c.cycle {
		return false
	}
	c.deltaCmpIdx++
	stream := c.streamDigest
	c.streamDigest = deltaOffset // close the window, compared or not
	if p.Cycle < c.deltaCmpFrom {
		return false // pre-quiesce: window kept aligned, no comparison
	}
	if p.Instret != c.instret || p.Stream != stream {
		return false // visibly diverged: no point scanning state
	}
	if p.State != c.stateHash() {
		return false
	}
	c.reconverged = true
	return true
}

// hashFreeList folds a free list in order (pop order is behavioural:
// future allocations come off the tail, so two states with the same free
// set but different order diverge at the next rename) and returns a
// membership bitmap so the caller can skip the dead values of free
// registers. The bitmap storage is reused across the three register
// classes of one scan.
func (c *Core) hashFreeList(h *uint64, free []uint16, n int) []bool {
	s := grow(c.deltaScratch, n)
	c.deltaScratch = s
	clear(s)
	hh := deltaMix(*h, uint64(len(free)))
	for _, r := range free {
		hh = deltaMix(hh, uint64(r))
		s[r] = true
	}
	*h = hh
	return s
}

// normExpired maps a timestamp that no longer binds (at or before now)
// to 0, so two states differing only in how long ago a stall expired
// still hash equal.
func normExpired(t, now uint64) uint64 {
	if t <= now {
		return 0
	}
	return t
}

// stateHash digests every piece of machine state that can influence
// future architectural or timing behaviour (see the package comment at
// the top of this file for the exclusion argument). Two runs of this
// simulator whose state hashes match at the same cycle — assuming no
// hash collision — evolve identically from that cycle on, provided
// their configs schedule no further events.
func (c *Core) stateHash() uint64 {
	h := deltaOffset
	mix := func(v uint64) { h = (h ^ v) * deltaPrime }
	mixBool := func(v bool) {
		if v {
			mix(1)
		} else {
			mix(0)
		}
	}
	mixInt := func(v int) { mix(uint64(int64(v))) }

	// Front end, counters and timers.
	mixInt(c.fetchPC)
	mix(normExpired(c.fetchStallUntil, c.cycle))
	mix(c.instret)
	mixInt(c.nLoads)
	mixInt(c.nStores)
	mix(normExpired(c.divBusyUntil[0], c.cycle))
	mix(normExpired(c.divBusyUntil[1], c.cycle))
	mix(c.execState.NondetCounter())
	mix(uint64(len(c.fq)))
	for i := range c.fq {
		e := &c.fq[i]
		mixInt(e.pc)
		mixInt(e.predNext)
		mixBool(e.poison)
		mixBool(e.mutated)
		mixBool(e.bad)
	}
	// Decoder-fault latch: an armed-but-unconsumed fault will corrupt a
	// future fetch, and any live mutated entry executes the corrupted
	// decInst rather than the program image — both bind future behaviour.
	mixBool(c.decArmed)
	if c.decArmed {
		mixInt(c.decBit)
	}

	// Rename maps.
	for _, p := range c.rat.intRAT {
		mix(uint64(p))
	}
	for _, p := range c.rat.fpRAT {
		mix(uint64(p))
	}
	mix(uint64(c.rat.flagRAT))

	// Physical register files: free-list order plus the value and ready
	// bit of every live (non-free) register. Free registers hold stale
	// garbage that legitimately differs after wrong-path work and can
	// never be read before being rewritten, so their values are excluded.
	free := c.hashFreeList(&h, c.intFree, len(c.intPRF))
	for r, v := range c.intPRF {
		if free[r] {
			continue
		}
		mix(v)
		mixBool(c.intReady[r])
	}
	free = c.hashFreeList(&h, c.fpFree, len(c.fpPRF))
	for r, v := range c.fpPRF {
		if free[r] {
			continue
		}
		mix(v[0])
		mix(v[1])
		mixBool(c.fpReady[r])
	}
	free = c.hashFreeList(&h, c.flagFree, len(c.flagPRF))
	for r, v := range c.flagPRF {
		if free[r] {
			continue
		}
		mix(uint64(v))
		mixBool(c.flagRdy[r])
	}

	// The live ROB window (robHead itself is instret mod ROB size, so
	// hashing instret pins it; squashed entries never appear inside the
	// window — a squash removes a contiguous youngest suffix). Sequence
	// numbers are hashed relative to the allocation counter so extra
	// squashed-away wrong-path renames do not shift them.
	mix(uint64(c.robCnt))
	n := len(c.rob)
	for k := 0; k < c.robCnt; k++ {
		u := &c.rob[(c.robHead+k)%n]
		mix(c.seq - u.seq)
		mixInt(u.pc)
		mix(uint64(u.st))
		mixBool(u.poison)
		mixBool(u.bad)
		mixBool(u.mutated)
		if u.mutated {
			// The corrupted instruction lives outside the program image;
			// its contents decide this µop's entire future behaviour.
			hashInst(&h, u.inst)
		}
		mixBool(u.isLoad)
		mixBool(u.isStore)
		mixInt(u.predNext)
		if u.st != uWaiting {
			// Execution results. doneAt of an already-done µop records
			// *when* it completed — history, not future — and is
			// normalized away; an issued µop's doneAt is its pending
			// completion time and very much binds.
			if u.st == uIssued {
				mix(u.doneAt)
			} else {
				mix(0)
			}
			mixInt(u.actualNext)
			if u.err != nil {
				mix(uint64(u.err.Kind))
				mix(uint64(u.err.Exception()))
				mix(u.err.Addr)
			} else {
				mix(^uint64(0))
			}
			mix(uint64(len(u.writes)))
			for _, w := range u.writes {
				mix(w.addr)
				mix(w.data)
				mix(uint64(w.size))
			}
		}
		mix(uint64(len(u.srcs)))
		for _, s := range u.srcs {
			mix(uint64(s.cls) | uint64(s.arch)<<8 | uint64(s.bits)<<16 | uint64(s.phys)<<32)
		}
		mix(uint64(len(u.dsts)))
		for _, d := range u.dsts {
			mix(uint64(d.cls) | uint64(d.arch)<<8 | uint64(d.phys)<<16 | uint64(d.old)<<32)
		}
		mixBool(u.snapValid)
		if u.snapValid {
			for _, p := range u.snap.intRAT {
				mix(uint64(p))
			}
			for _, p := range u.snap.fpRAT {
				mix(uint64(p))
			}
			mix(uint64(u.snap.flagRAT))
		}
	}

	// Scheduler queues hold ROB indices; with instret pinned above, raw
	// indices compare like relative ones. The in-flight list is filtered
	// the same way writeback filters it (squashed or already-written-back
	// entries are pruned lazily and carry no behaviour).
	mix(uint64(len(c.iq)))
	for _, idx := range c.iq {
		mixInt(idx)
	}
	mix(uint64(len(c.sq)))
	for _, idx := range c.sq {
		mixInt(idx)
	}
	for _, idx := range c.inflight {
		u := &c.rob[idx]
		if u.squashed || u.st != uIssued {
			continue
		}
		mixInt(idx)
	}
	mix(^uint64(0)) // in-flight terminator (filtered length varies)

	// Branch predictor (trained only at commit, but hashed rather than
	// derived from the stream digest so the state hash stands alone).
	mix(c.bp.history)
	h = deltaMixBytes(h, c.bp.table)

	// L1D: validity pattern, tags, dirty bits, LRU timestamps and data of
	// valid lines. Invalid lines' data is dead (always refilled before
	// use) and excluded — which also naturally masks flips into invalid
	// lines. LRU timestamps are behavioural: they pick future victims,
	// and a dirty eviction writes memory.
	for i := range c.cache.lines {
		l := &c.cache.lines[i]
		mixBool(l.valid)
		if !l.valid {
			continue
		}
		mixBool(l.dirty)
		mix(l.tag)
		mix(l.lastUse)
		h = deltaMixBytes(h, l.data)
	}
	if l2 := c.cache.l2; l2 != nil {
		for i, v := range l2.valid {
			mixBool(v)
			if v {
				mix(l2.tag[i])
				mix(l2.lastUse[i])
			}
		}
	}

	// Architectural memory image (writable regions; read-only regions
	// cannot change — dirty lines only exist for regions that accepted
	// the original store). The incremental digest makes this O(1) after
	// the first scan; it travels with checkpoints and core copies, so
	// faulty runs resumed mid-campaign never rescan the image.
	mix(c.mem.Digest())
	return h
}

// hashInst folds a full instruction instance into the state hash. Only
// decoder-mutated µops need it: every other µop's instruction is
// determined by its PC and the (shared, immutable) program image.
func hashInst(h *uint64, in *isa.Inst) {
	hh := deltaMix(*h, uint64(in.V)|uint64(in.NOps)<<32)
	for i := range in.Ops {
		op := &in.Ops[i]
		hh = deltaMix(hh, uint64(op.Kind)|uint64(op.Reg)<<8|uint64(op.X)<<16)
		hh = deltaMix(hh, uint64(op.Imm))
		hh = deltaMix(hh, uint64(op.Mem.Base)|uint64(op.Mem.Index)<<8|uint64(op.Mem.Scale)<<16|uint64(uint32(op.Mem.Disp))<<24)
		if op.Mem.HasIndex {
			hh = deltaMix(hh, 1)
		}
	}
	*h = hh
}
